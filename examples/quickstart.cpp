// Quickstart: bring up a simulated Draconis deployment — programmable switch,
// pull-based executors, a client — submit a job, and watch it complete.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cluster/client.h"
#include "cluster/executor.h"
#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"

using namespace draconis;

int main() {
  std::printf("Draconis quickstart: 1 switch, 8 executors, 1 client\n\n");

  // 1. The simulation substrate: a Testbed bundles the discrete-event clock,
  //    the network fabric, the metrics hub, and the rack topology.
  cluster::TestbedConfig testbed_config;
  testbed_config.num_workers = 2;
  testbed_config.horizon = FromSeconds(1);
  cluster::Testbed testbed(testbed_config);
  sim::Simulator& simulator = testbed.simulator();

  // 2. The in-network scheduler: a cFCFS policy compiled into the Draconis
  //    switch program, installed on a pipeline that enforces the Tofino
  //    register rules (one access per register per packet).
  core::FcfsPolicy policy;
  core::DraconisConfig switch_config;
  switch_config.queue_capacity = 1024;
  core::DraconisProgram program(&policy, switch_config);
  p4::SwitchPipeline pipeline(testbed, &program, p4::PipelineConfig{});
  const net::NodeId scheduler = pipeline.node_id();

  // 3. Pull-based executors. Each executor asks the switch for work whenever
  //    it is free, and reports into the testbed's metrics hub.
  std::vector<std::unique_ptr<cluster::Executor>> executors;
  for (uint32_t i = 0; i < 8; ++i) {
    cluster::ExecutorConfig config;
    config.worker_node = i / 4;  // two simulated worker machines
    executors.push_back(std::make_unique<cluster::Executor>(&testbed, config));
    executors.back()->Start(scheduler, /*at=*/1 + i * 200);
  }

  // 4. A client that submits a job of twelve 100 us tasks at t = 50 us.
  //    (A relaxed timeout: with 12 tasks on 8 executors, some tasks wait a
  //    full service time in the queue by design.)
  cluster::ClientConfig client_config;
  client_config.timeout_multiplier = 10.0;
  cluster::Client client(&testbed, client_config);
  client.SetScheduler(scheduler);
  simulator.ScheduleAt(FromMicros(50), [&] {
    std::vector<cluster::TaskSpec> job(12);
    for (auto& task : job) {
      task.duration = FromMicros(100);
    }
    client.SubmitJob(job);
    std::printf("t=%-8s submitted a job of %zu tasks\n",
                FormatDuration(simulator.Now()).c_str(), job.size());
  });

  // 5. Run until the cluster drains.
  simulator.RunUntil(FromMillis(2));

  cluster::MetricsHub& metrics = *testbed.metrics();
  std::printf("t=%-8s all done: %llu completions\n\n",
              FormatDuration(simulator.Now()).c_str(),
              static_cast<unsigned long long>(client.completions()));
  std::printf("scheduling delay: %s\n", metrics.sched_delay().Summary().c_str());
  std::printf("end-to-end:       %s\n", metrics.e2e_delay().Summary().c_str());
  std::printf("switch counters:  %llu enqueued, %llu assigned, %llu no-ops\n",
              static_cast<unsigned long long>(program.counters().tasks_enqueued),
              static_cast<unsigned long long>(program.counters().tasks_assigned),
              static_cast<unsigned long long>(program.counters().noops_sent));
  std::printf("\nWith 8 executors and 12 tasks, the first 8 start immediately and the rest\n"
              "are parked in the switch queue until an executor pulls them — no task ever\n"
              "waits behind a busy executor while another is free.\n");
  return client.completions() == 12 ? 0 : 1;
}
