// cluster_sim: a configurable command-line driver for the simulated testbed.
//
// Run any scheduler/policy/workload combination and get a one-page report:
//
//   ./build/examples/cluster_sim --scheduler=draconis --policy=fcfs
//       --workers=10 --executors-per-worker=16 --task-us=500
//       --utilization=0.8 --duration-ms=40       (one command line)
//
//   ./build/examples/cluster_sim --scheduler=r2p2 --jbsq-k=1 --utilization=0.95
//
//   ./build/examples/cluster_sim --trace=mytrace.csv --scheduler=racksched
//
// Trace files use the CSV format documented in workload/trace_io.h.

#include <cstdio>
#include <string>

#include "cluster/experiment.h"
#include "common/flags.h"
#include "workload/generators.h"
#include "workload/trace_io.h"

using namespace draconis;
using namespace draconis::cluster;

namespace {

bool ParseScheduler(const std::string& name, SchedulerKind* kind) {
  if (name == "draconis") *kind = SchedulerKind::kDraconis;
  else if (name == "dpdk-server") *kind = SchedulerKind::kDraconisDpdkServer;
  else if (name == "socket-server") *kind = SchedulerKind::kDraconisSocketServer;
  else if (name == "r2p2") *kind = SchedulerKind::kR2P2;
  else if (name == "racksched") *kind = SchedulerKind::kRackSched;
  else if (name == "sparrow") *kind = SchedulerKind::kSparrow;
  else return false;
  return true;
}

bool ParsePolicy(const std::string& name, PolicyKind* kind) {
  if (name == "fcfs") *kind = PolicyKind::kFcfs;
  else if (name == "priority") *kind = PolicyKind::kPriority;
  else if (name == "locality") *kind = PolicyKind::kLocality;
  else if (name == "resource") *kind = PolicyKind::kResource;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheduler_name = "draconis";
  std::string policy_name = "fcfs";
  std::string trace_path;
  int64_t workers = 10;
  int64_t executors_per_worker = 16;
  int64_t racks = 3;
  int64_t jbsq_k = 3;
  int64_t priority_levels = 4;
  double task_us = 500.0;
  double utilization = 0.5;
  double duration_ms = 40.0;
  double warmup_ms = 5.0;
  int64_t tasks_per_job = 1;
  int64_t seed = 42;
  bool locality_access = false;
  bool racksched_ps = false;

  flags::Parser parser(
      "cluster_sim — run one scheduling experiment on the simulated testbed");
  parser.AddString("scheduler", &scheduler_name,
                   "draconis | dpdk-server | socket-server | r2p2 | racksched | sparrow");
  parser.AddString("policy", &policy_name,
                   "Draconis policy: fcfs | priority | locality | resource");
  parser.AddString("trace", &trace_path,
                   "CSV trace to replay instead of the synthetic workload");
  parser.AddInt64("workers", &workers, "worker machines");
  parser.AddInt64("executors-per-worker", &executors_per_worker, "cores per worker");
  parser.AddInt64("racks", &racks, "racks (locality policy)");
  parser.AddInt64("jbsq-k", &jbsq_k, "R2P2 bounded queue depth");
  parser.AddInt64("priority-levels", &priority_levels, "class-of-service levels");
  parser.AddDouble("task-us", &task_us, "fixed task service time (microseconds)");
  parser.AddDouble("utilization", &utilization, "offered load as a fraction of capacity");
  parser.AddDouble("duration-ms", &duration_ms, "submission window (milliseconds)");
  parser.AddDouble("warmup-ms", &warmup_ms, "measurement warmup (milliseconds)");
  parser.AddInt64("tasks-per-job", &tasks_per_job, "batch size of each submitted job");
  parser.AddInt64("seed", &seed, "workload seed");
  parser.AddBool("locality-access", &locality_access,
                 "charge 0/20/100 us data-access penalties by placement");
  parser.AddBool("racksched-ps", &racksched_ps,
                 "RackSched intra-node Processor Sharing instead of cFCFS");

  std::string error;
  if (!parser.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(), parser.Usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::printf("%s", parser.Usage().c_str());
    return 0;
  }

  ExperimentConfig config;
  if (!ParseScheduler(scheduler_name, &config.scheduler)) {
    std::fprintf(stderr, "unknown --scheduler '%s'\n", scheduler_name.c_str());
    return 2;
  }
  if (!ParsePolicy(policy_name, &config.policy)) {
    std::fprintf(stderr, "unknown --policy '%s'\n", policy_name.c_str());
    return 2;
  }
  config.num_workers = static_cast<size_t>(workers);
  config.executors_per_worker = static_cast<size_t>(executors_per_worker);
  config.num_racks = static_cast<size_t>(racks);
  config.jbsq_k = static_cast<uint32_t>(jbsq_k);
  config.priority_levels = static_cast<size_t>(priority_levels);
  config.locality_access_model = locality_access;
  config.racksched_intra_policy = racksched_ps
                                      ? baselines::IntraNodePolicy::kProcessorSharing
                                      : baselines::IntraNodePolicy::kFcfs;
  config.max_tasks_per_packet = 1;
  config.warmup = FromMillis(warmup_ms);
  config.horizon = FromMillis(duration_ms);
  config.seed = static_cast<uint64_t>(seed);
  config.timeout_multiplier = 5.0;

  const size_t total_executors = config.num_workers * config.executors_per_worker;
  if (!trace_path.empty()) {
    if (!workload::LoadJobStream(trace_path, &config.stream, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (!config.stream.empty()) {
      config.horizon = config.stream.back().at + FromMillis(10);
    }
  } else {
    workload::OpenLoopSpec spec;
    spec.tasks_per_second =
        utilization * static_cast<double>(total_executors) / (task_us * 1e-6);
    spec.duration = config.horizon;
    spec.tasks_per_job = static_cast<size_t>(tasks_per_job);
    spec.service = workload::ServiceTime::Fixed(FromMicros(task_us));
    spec.seed = config.seed;
    config.stream = workload::GenerateOpenLoop(spec);
    if (config.policy == PolicyKind::kLocality) {
      workload::TagLocality(config.stream, static_cast<uint32_t>(workers), config.seed);
    } else if (config.policy == PolicyKind::kPriority) {
      workload::TagPriorities(config.stream, workload::PaperPriorityMix(), config.seed);
    }
  }

  std::printf("scheduler=%s policy=%s workers=%zu executors=%zu tasks=%zu\n",
              SchedulerKindName(config.scheduler), policy_name.c_str(), config.num_workers,
              total_executors, workload::TotalTasks(config.stream));

  ExperimentResult result = RunExperiment(config);

  const auto& sched = result.metrics->sched_delay();
  std::printf("\noffered load        %5.1f%% of cluster capacity (%.0f tasks/s)\n",
              result.offered_utilization * 100, result.offered_tasks_per_second);
  std::printf("completed          %llu of %llu submitted in-window tasks\n",
              static_cast<unsigned long long>(result.metrics->tasks_completed()),
              static_cast<unsigned long long>(result.metrics->tasks_submitted()));
  std::printf("sched delay        p50=%s  p90=%s  p99=%s  max=%s\n",
              FormatDuration(sched.Percentile(0.5)).c_str(),
              FormatDuration(sched.Percentile(0.9)).c_str(),
              FormatDuration(sched.Percentile(0.99)).c_str(),
              FormatDuration(sched.max()).c_str());
  std::printf("end-to-end         p50=%s  p99=%s\n",
              FormatDuration(result.metrics->e2e_delay().Percentile(0.5)).c_str(),
              FormatDuration(result.metrics->e2e_delay().Percentile(0.99)).c_str());
  std::printf("executor busy      %5.1f%%\n", result.executor_busy_fraction * 100);
  std::printf("recirculation      %5.2f%% of switch passes; %llu packets dropped\n",
              result.recirculation_share * 100,
              static_cast<unsigned long long>(result.recirc_drops));
  std::printf("client recoveries  %llu timeouts, %llu queue-full retries\n",
              static_cast<unsigned long long>(result.metrics->timeout_resubmissions()),
              static_cast<unsigned long long>(result.metrics->queue_full_retries()));
  return 0;
}
