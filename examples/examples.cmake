# Example binaries land directly in build/examples/.

function(draconis_add_example name)
  add_executable(example_${name} ${CMAKE_SOURCE_DIR}/examples/${name}.cpp)
  target_link_libraries(example_${name} PRIVATE
    draconis_cluster draconis_baselines draconis_core draconis_workload draconis_p4
    draconis_net draconis_metrics draconis_stats draconis_sim draconis_common)
  set_target_properties(example_${name}
    PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/examples OUTPUT_NAME ${name})
endfunction()

draconis_add_example(quickstart)
draconis_add_example(priority_analytics)
draconis_add_example(locality_cache)
draconis_add_example(gpu_inference)
draconis_add_example(cluster_sim)
draconis_add_example(list_schedulers)

# Smoke-test the examples as part of ctest (each asserts on its own output).
add_test(NAME example_quickstart COMMAND example_quickstart)
add_test(NAME example_gpu_inference COMMAND example_gpu_inference)
add_test(NAME example_cluster_sim
         COMMAND example_cluster_sim --utilization=0.4 --duration-ms=10)
add_test(NAME example_list_schedulers COMMAND example_list_schedulers)
