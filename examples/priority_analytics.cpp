// Example: a latency-tiered analytics service on Draconis' priority policy.
//
// An interactive dashboard (priority 1) shares the cluster with ad-hoc
// analyst queries (priority 2) and a bulk report backfill (priority 4). The
// cluster runs hot; class-of-service queueing keeps the dashboard fast while
// the backfill soaks up the leftover capacity — the same effect as the
// paper's Fig. 12, driven through the public API.
//
//   ./build/examples/priority_analytics

#include <cstdio>

#include "cluster/experiment.h"
#include "workload/generators.h"

using namespace draconis;
using namespace draconis::cluster;

int main() {
  std::printf("Priority-tiered analytics on a 64-executor cluster (~1.2x overloaded)\n\n");

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.policy = PolicyKind::kPriority;
  config.priority_levels = 4;
  config.num_workers = 4;
  config.executors_per_worker = 16;
  config.num_clients = 3;
  config.max_tasks_per_packet = 1;
  config.warmup = 1;
  config.horizon = FromSeconds(4);
  config.run_to_completion = true;
  config.timeout_multiplier = 1e6;  // queueing is the point of the demo

  // Three tenants, one workload stream: 5% dashboard refreshes, 15% analyst
  // queries, 80% backfill chunks. 2 ms mean tasks, offered at ~1.2x capacity
  // for one second so queues actually form.
  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 1.2 * 64 / 2e-3;
  spec.duration = FromSeconds(1);
  spec.service = workload::ServiceTime::Exponential(FromMillis(2));
  spec.seed = 7;
  config.stream = workload::GenerateOpenLoop(spec);
  workload::TagPriorities(config.stream, {5, 15, 0, 80}, 11);

  ExperimentResult result = RunExperiment(config);

  std::printf("%-22s %12s %12s %12s\n", "tenant", "p50 queue", "p90 queue", "p99 queue");
  const char* names[] = {"dashboard (prio 1)", "analysts  (prio 2)", "(unused   prio 3)",
                         "backfill  (prio 4)"};
  for (size_t level = 1; level <= 4; ++level) {
    const auto& h = result.metrics->priority_queueing(level);
    if (h.count() == 0) {
      continue;
    }
    std::printf("%-22s %12s %12s %12s\n", names[level - 1],
                FormatDuration(h.Percentile(0.5)).c_str(),
                FormatDuration(h.Percentile(0.9)).c_str(),
                FormatDuration(h.Percentile(0.99)).c_str());
  }
  std::printf("\nall %llu tasks completed by %s; cluster drained with zero drops.\n",
              static_cast<unsigned long long>(result.metrics->tasks_completed()),
              FormatDuration(result.drain_time).c_str());
  std::printf("The dashboard's queueing stays orders of magnitude below the backfill's\n"
              "even though every task funnels through the same switch.\n");
  return result.metrics->tasks_completed() > 0 ? 0 : 1;
}
