// Enumerates the scheduler deployments registered in the DeploymentRegistry —
// the single source of truth for scheduler-kind names, --scheduler flag
// spellings, supported policies, and replication. A scheduler added through
// one deployment file pair shows up here (and in every bench's --scheduler
// choices) without touching this file.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/list_schedulers            # human-readable table
//   ./build/examples/list_schedulers --flags-only   # one flag spelling per line

#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/deployment.h"
#include "cluster/experiment.h"
#include "core/rank_function.h"

using namespace draconis;

int main(int argc, char** argv) {
  const cluster::DeploymentRegistry& registry = cluster::DeploymentRegistry::Get();

  // --flags-only: the machine-readable spelling list, for shell loops like
  // the CI per-scheduler bench smoke.
  if (argc > 1 && std::strcmp(argv[1], "--flags-only") == 0) {
    for (const std::string& flag : registry.FlagChoices()) {
      std::printf("%s\n", flag.c_str());
    }
    return registry.all().empty() ? 1 : 0;
  }

  // --switch-policies <kind>: the kind's supported switch queueing
  // disciplines (docs/pifo.md), one flag spelling per line, "fifo" first —
  // the inner axis of the CI per-scheduler bench smoke loop.
  if (argc > 2 && std::strcmp(argv[1], "--switch-policies") == 0) {
    const cluster::DeploymentInfo* info = registry.FindByName(argv[2]);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown scheduler kind: %s\n", argv[2]);
      return 1;
    }
    for (core::SwitchPolicy policy : info->switch_policies) {
      std::printf("%s\n", core::SwitchPolicyName(policy));
    }
    return 0;
  }

  std::printf("%zu registered scheduler deployments:\n\n", registry.all().size());
  std::printf("%-24s %-16s %-10s %-36s %s\n", "scheduler", "--scheduler", "replicas",
              "policies", "switch-policies");
  for (const cluster::DeploymentInfo& info : registry.all()) {
    std::string policies;
    for (cluster::PolicyKind policy : info.policies) {
      if (!policies.empty()) {
        policies += ", ";
      }
      policies += cluster::PolicyKindName(policy);
    }
    std::string switch_policies;
    for (core::SwitchPolicy policy : info.switch_policies) {
      if (!switch_policies.empty()) {
        switch_policies += ", ";
      }
      switch_policies += core::SwitchPolicyName(policy);
    }
    std::printf("%-24s %-16s %-10s %-36s %s\n", info.canonical_name, info.flag_name,
                info.multi_scheduler ? "yes" : "no", policies.c_str(),
                switch_policies.c_str());
  }
  std::printf("\nAdd a scheduler by writing one deployment file pair next to it and\n"
              "registering it in the DeploymentRegistry constructor — every bench,\n"
              "name lookup, and the experiment smoke matrix pick it up from there.\n");
  return registry.all().size() == 6 ? 0 : 1;
}
