// Example: scheduling compute next to a sharded in-memory cache.
//
// A 9-node, 3-rack cluster holds an unreplicated in-memory dataset, sharded
// one partition per node (the paper's §4.4 "store the input data on an
// in-memory storage system, put a pointer in FN_PAR" pattern). Scan tasks
// read their partition: free if they run on the owning node, 20 us over the
// rack switch, 100 us across racks. We run the same scan twice — FCFS vs the
// locality-aware policy — and compare placement and end-to-end latency.
//
//   ./build/examples/locality_cache

#include <cstdio>

#include "cluster/experiment.h"
#include "workload/generators.h"

using namespace draconis;
using namespace draconis::cluster;

namespace {

ExperimentResult RunScan(PolicyKind policy) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.policy = policy;
  config.num_workers = 9;
  config.num_racks = 3;
  config.executors_per_worker = 8;
  config.num_clients = 2;
  config.max_tasks_per_packet = 1;
  config.locality_access_model = true;  // 0 / 20us / 100us data access
  config.locality_limits = core::LocalityPolicy::Limits{3, 9};
  config.timeout_multiplier = 10.0;
  config.warmup = FromMillis(5);
  config.horizon = FromMillis(60);

  // A scan: 200 us of compute per partition chunk, ~40% CPU load.
  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 0.4 * 72 / 200e-6;
  spec.duration = config.horizon;
  spec.service = workload::ServiceTime::Fixed(FromMicros(200));
  spec.seed = 5;
  config.stream = workload::GenerateOpenLoop(spec);
  // Each chunk's partition lives on one node; TPROPS carries the owner.
  workload::TagLocality(config.stream, 9, 23);
  return RunExperiment(config);
}

void Report(const char* name, const ExperimentResult& result) {
  const auto count = [&](net::TaskInfo::Placement p) {
    return static_cast<double>(result.metrics->placements(p));
  };
  const double total = count(net::TaskInfo::Placement::kLocal) +
                       count(net::TaskInfo::Placement::kSameRack) +
                       count(net::TaskInfo::Placement::kRemote);
  std::printf("%-18s  %5.1f%% on-node  %5.1f%% in-rack  %5.1f%% cross-rack\n", name,
              100 * count(net::TaskInfo::Placement::kLocal) / total,
              100 * count(net::TaskInfo::Placement::kSameRack) / total,
              100 * count(net::TaskInfo::Placement::kRemote) / total);
  std::printf("%-18s  chunk latency: p50=%s p90=%s p99=%s\n\n", "",
              FormatDuration(result.metrics->e2e_delay().Percentile(0.5)).c_str(),
              FormatDuration(result.metrics->e2e_delay().Percentile(0.9)).c_str(),
              FormatDuration(result.metrics->e2e_delay().Percentile(0.99)).c_str());
}

}  // namespace

int main() {
  std::printf("Cache-sharded scan on 9 nodes / 3 racks: FCFS vs locality-aware\n\n");

  ExperimentResult fcfs = RunScan(PolicyKind::kFcfs);
  ExperimentResult locality = RunScan(PolicyKind::kLocality);

  Report("FCFS", fcfs);
  Report("Locality-aware", locality);

  const double speedup = static_cast<double>(fcfs.metrics->e2e_delay().Median()) /
                         static_cast<double>(locality.metrics->e2e_delay().Median());
  std::printf("median chunk speedup from locality: %.2fx\n", speedup);
  std::printf("The switch delays hard-to-place chunks a bounded number of pulls\n"
              "(rack_start_limit=3, global_start_limit=9) hoping a partition owner\n"
              "frees up — and falls back rack-local, then anywhere.\n");
  return speedup > 1.0 ? 0 : 1;
}
