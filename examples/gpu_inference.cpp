// Example: mixed CPU/GPU inference fleet with hard resource constraints.
//
// A 6-node cluster serves two models: a small CPU model anyone can run, and
// a large model that needs a GPU (only 2 nodes have one). The resource-aware
// policy (§5.2) routes by EXEC_RSRC/TPROPS bitmaps: GPU requests never land
// on CPU-only nodes, and CPU requests soak up whatever is free — including
// spare GPU-node capacity.
//
//   ./build/examples/gpu_inference

#include <cstdio>

#include "cluster/experiment.h"
#include "workload/generators.h"

using namespace draconis;
using namespace draconis::cluster;

namespace {
constexpr uint32_t kCpu = 0b01;
constexpr uint32_t kGpu = 0b10;
}  // namespace

int main() {
  std::printf("Inference fleet: 4 CPU nodes + 2 GPU nodes, resource-aware scheduling\n\n");

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.policy = PolicyKind::kResource;
  config.num_workers = 6;
  config.executors_per_worker = 8;
  config.num_clients = 2;
  config.max_tasks_per_packet = 1;
  // Nodes 0-3: CPU only. Nodes 4-5: CPU and GPU.
  config.worker_resources = {kCpu, kCpu, kCpu, kCpu, kCpu | kGpu, kCpu | kGpu};
  config.warmup = 1;
  config.horizon = FromSeconds(4);
  config.run_to_completion = true;
  config.timeout_multiplier = 1e6;
  config.executor_template.max_retry = FromMicros(200);

  // 70% small-model requests (300 us, CPU), 30% large-model (1.5 ms, GPU).
  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 60000.0;
  spec.duration = FromMillis(500);
  spec.service = workload::ServiceTime::Fixed(FromMicros(300));
  spec.seed = 3;
  config.stream = workload::GenerateOpenLoop(spec);
  Rng rng(99);
  for (auto& job : config.stream) {
    for (auto& task : job.tasks) {
      if (rng.NextBool(0.3)) {
        task.tprops = kGpu;
        task.duration = FromMillis(1.5) / 1;  // large model
      } else {
        task.tprops = kCpu;
      }
    }
  }

  ExperimentResult result = RunExperiment(config);

  std::printf("tasks completed: %llu (drained at %s)\n\n",
              static_cast<unsigned long long>(result.metrics->tasks_completed()),
              FormatDuration(result.drain_time).c_str());
  std::printf("%-10s %14s\n", "node", "tasks executed");
  for (uint32_t node = 0; node < 6; ++node) {
    double executed = 0;
    const auto& series = result.metrics->node_completions(node);
    for (size_t b = 0; b < series.NumBuckets(); ++b) {
      executed += series.BucketSum(b);
    }
    std::printf("node %-5u %14.0f   (%s)\n", node, executed,
                node >= 4 ? "CPU+GPU" : "CPU only");
  }
  std::printf("\nGPU requests were confined to nodes 4-5 by the TPROPS/EXEC_RSRC bitmap\n"
              "match in the switch; CPU requests filled every node. No scheduler server\n"
              "was involved — the placement decisions happened at line rate.\n");
  return result.metrics->tasks_completed() > 0 ? 0 : 1;
}
