#include "cluster/client.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace draconis::cluster {

Client::Client(Testbed* testbed, const ClientConfig& config)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      metrics_(testbed->metrics()),
      recorder_(testbed->recorder()),
      config_(config) {
  DRACONIS_CHECK(metrics_ != nullptr);
  if (config_.max_tasks_per_packet == 0) {
    config_.max_tasks_per_packet = net::MaxTasksPerPacket();
  }
  node_id_ = network_->Register(this, config.host_profile);
}

uint32_t Client::SubmitJob(const std::vector<TaskSpec>& specs) {
  DRACONIS_CHECK_MSG(scheduler_ != net::kInvalidNode, "client has no scheduler configured");
  DRACONIS_CHECK(!specs.empty());
  const uint32_t jid = next_jid_++;
  const TimeNs now = simulator_->Now();

  std::vector<net::TaskInfo> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    net::TaskInfo task;
    task.id = net::TaskId{config_.uid, jid, static_cast<uint32_t>(i)};
    if (specs[i].oversized_param_bytes > 0) {
      // §4.4: submit a transmission function; the executor fetches the real
      // parameters (FN_PAR carries their size).
      task.fn_id = net::kTransmissionFnId;
      task.fn_par = specs[i].oversized_param_bytes;
    } else {
      task.fn_id = specs[i].fn_id;
      task.fn_par = specs[i].fn_par;
    }
    task.tprops = specs[i].tprops;
    task.meta.exec_duration = specs[i].duration;
    task.meta.first_submit_time = now;
    task.meta.submit_time = now;
    metrics_->RecordSubmission(now);
    if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
      recorder_->Record(task.id, trace::Kind::kSubmit, now, now, specs.size(), node_id_);
    }
    if (!config_.fire_and_forget) {
      ArmTimeout(task);
    }
    tasks.push_back(std::move(task));
  }
  SendTasks(std::move(tasks));
  return jid;
}

void Client::SendTasks(std::vector<net::TaskInfo> tasks) {
  // Split the job across as many job_submission packets as the MTU requires
  // (§4.3 "Handling Large Jobs").
  size_t offset = 0;
  while (offset < tasks.size()) {
    const size_t n = std::min(config_.max_tasks_per_packet, tasks.size() - offset);
    net::Packet pkt;
    pkt.op = net::OpCode::kJobSubmission;
    // Multi-rack placement routes each submission packet (the home ToR unless
    // its queue depth tripped the overflow watermark); legacy clients go
    // straight to their scheduler.
    pkt.dst = config_.router != nullptr ? config_.router->Route(scheduler_) : scheduler_;
    pkt.uid = config_.uid;
    pkt.jid = tasks[offset].id.jid;
    pkt.tasks.assign(std::make_move_iterator(tasks.begin() + offset),
                     std::make_move_iterator(tasks.begin() + offset + n));
    if (recorder_ != nullptr) {
      for (const net::TaskInfo& t : pkt.tasks) {
        if (recorder_->Sampled(t.id)) {
          recorder_->Record(t.id, trace::Kind::kClientSend, simulator_->Now(),
                            simulator_->Now(), pkt.tasks.size(), pkt.dst,
                            t.meta.attempt, 0);
        }
      }
    }
    network_->Send(node_id_, std::move(pkt));
    offset += n;
  }
}

void Client::HandlePacket(net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kJobAck:
      return;  // informational only
    case net::OpCode::kErrorQueueFull: {
      // Retry the rejected tasks after a short wait (§4.3).
      std::vector<net::TaskInfo> retry;
      retry.reserve(pkt.tasks.size());
      for (net::TaskInfo& task : pkt.tasks) {
        auto it = outstanding_.find(task.id);
        if (it == outstanding_.end()) {
          continue;  // completed in the meantime (stale duplicate)
        }
        metrics_->RecordQueueFullRetry();
        task.meta.submit_time = simulator_->Now() + config_.queue_full_retry_wait;
        task.meta.attempt += 1;
        if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
          recorder_->Record(task.id, trace::Kind::kQueueFullRetry, simulator_->Now(),
                            simulator_->Now(), config_.queue_full_retry_wait, node_id_,
                            task.meta.attempt, 0);
        }
        retry.push_back(task);
      }
      if (!retry.empty()) {
        simulator_->ScheduleAfter(config_.queue_full_retry_wait,
                          [this, retry = std::move(retry)]() mutable {
                            SendTasks(std::move(retry));
                          });
      }
      return;
    }
    case net::OpCode::kParamFetch: {
      // §4.4: an executor asks for a transmission-function task's real
      // parameters; reply with the bulk payload (stateless — the fetch
      // carries the TASK_INFO, whose FN_PAR is the parameter size).
      DRACONIS_CHECK(!pkt.tasks.empty());
      net::Packet data;
      data.op = net::OpCode::kParamData;
      data.dst = pkt.src;
      data.tasks = {pkt.tasks[0]};
      data.payload_bytes = static_cast<uint32_t>(pkt.tasks[0].fn_par);
      network_->Send(node_id_, std::move(data));
      return;
    }
    case net::OpCode::kCompletionNotice: {
      DRACONIS_CHECK(!pkt.tasks.empty());
      const net::TaskInfo& task = pkt.tasks[0];
      auto it = outstanding_.find(task.id);
      if (it == outstanding_.end()) {
        // Duplicate completion after a timeout resubmission. (Fire-and-forget
        // clients track nothing, so every notice would land here — skip.)
        if (!config_.fire_and_forget && recorder_ != nullptr &&
            recorder_->Sampled(task.id)) {
          recorder_->Record(task.id, trace::Kind::kDuplicateComplete, simulator_->Now(),
                            simulator_->Now(), 0, node_id_, task.meta.attempt, 0);
        }
        return;
      }
      it->second.timeout.Cancel();
      metrics_->RecordEndToEnd(task, simulator_->Now());
      ++completions_;
      consecutive_timeouts_ = 0;
      if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
        recorder_->Record(task.id, trace::Kind::kComplete, simulator_->Now(),
                          simulator_->Now(), 0, node_id_, task.meta.attempt, 0);
      }
      outstanding_.erase(it);
      return;
    }
    default:
      return;
  }
}

TimeNs Client::TimeoutFor(const net::TaskInfo& task) const {
  const auto scaled = static_cast<TimeNs>(config_.timeout_multiplier *
                                          static_cast<double>(task.meta.exec_duration));
  const TimeNs base = std::max(scaled, config_.timeout_floor);
  // Exponential backoff across resubmissions so a congested scheduler is not
  // fed an unbounded duplicate storm.
  const uint32_t shift = std::min<uint32_t>(task.meta.attempt, 6);
  return base << shift;
}

void Client::ArmTimeout(const net::TaskInfo& task) {
  Pending pending;
  pending.task = task;
  pending.timeout = simulator_->ScheduleAfter(
      TimeoutFor(task), [this, id = task.id] { OnTimeout(id); },
      sim::kCancellable);
  outstanding_[task.id] = std::move(pending);
}

void Client::OnTimeout(net::TaskId id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    return;
  }
  // The task (or its completion) was lost: resubmit it as a fresh
  // single-task job_submission, keeping first_submit_time so the measured
  // latency includes the loss (§8.3).
  metrics_->RecordTimeoutResubmission();
  // §3.3: a timeout is evidence against the *current* scheduler only when the
  // timed-out attempt was sent after the last rehome — stale timeouts of
  // attempts addressed to the previous scheduler must not flip the client
  // back toward a dead switch.
  if (standby_ != net::kInvalidNode && it->second.task.meta.submit_time >= last_rehome_time_ &&
      ++consecutive_timeouts_ >= config_.rehome_after_timeouts) {
    // The scheduler looks dead from here; resubmit toward the standby. The
    // swap ping-pongs, so a spurious rehome self-corrects on the next streak.
    consecutive_timeouts_ = 0;
    last_rehome_time_ = simulator_->Now();
    std::swap(scheduler_, standby_);
    ++rehomes_;
    metrics_->RecordClientRehome();
    if (recorder_ != nullptr) {
      recorder_->RecordGlobal(trace::Kind::kRehome, simulator_->Now(), scheduler_, node_id_);
    }
  }
  net::TaskInfo task = it->second.task;
  task.meta.submit_time = simulator_->Now();
  task.meta.attempt += 1;
  if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
    recorder_->Record(task.id, trace::Kind::kTimeoutResubmit, simulator_->Now(),
                      simulator_->Now(), 0, node_id_, task.meta.attempt, 0);
  }
  it->second.task = task;
  it->second.timeout = simulator_->ScheduleAfter(
      TimeoutFor(task), [this, id] { OnTimeout(id); }, sim::kCancellable);
  SendTasks({std::move(task)});
}

}  // namespace draconis::cluster
