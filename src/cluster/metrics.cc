#include "cluster/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace draconis::cluster {

MetricsHub::MetricsHub(TimeNs measure_start, TimeNs measure_end, size_t num_nodes,
                       size_t priority_levels, TimeNs node_series_bucket)
    : measure_start_(measure_start), measure_end_(measure_end) {
  DRACONIS_CHECK(measure_start >= 0 && measure_end > measure_start);
  priority_queueing_.resize(priority_levels);
  priority_get_task_.resize(priority_levels);
  node_completions_.reserve(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    node_completions_.emplace_back(node_series_bucket);
  }
}

bool MetricsHub::FirstExecution(const net::TaskId& id) { return executed_.insert(id).second; }

void MetricsHub::RecordExecutionStart(const net::TaskInfo& task, TimeNs exec_start) {
  if (!InWindow(task.meta.first_submit_time)) {
    return;
  }
  sched_delay_.Record(std::max<TimeNs>(0, exec_start - task.meta.first_submit_time));
}

void MetricsHub::RecordAssignment(const net::TaskInfo& task, TimeNs assign_time) {
  if (!InWindow(task.meta.first_submit_time) || task.meta.enqueue_time < 0) {
    return;
  }
  const TimeNs delay = std::max<TimeNs>(0, assign_time - task.meta.enqueue_time);
  queueing_delay_.Record(delay);
  if (!priority_queueing_.empty()) {
    const size_t level =
        std::clamp<size_t>(task.tprops, 1, priority_queueing_.size());
    priority_queueing_[level - 1].Record(delay);
  }
}

void MetricsHub::RecordGetTask(uint32_t priority_level, TimeNs delay) {
  get_task_delay_.Record(std::max<TimeNs>(0, delay));
  if (!priority_get_task_.empty()) {
    const size_t level = std::clamp<size_t>(priority_level, 1, priority_get_task_.size());
    priority_get_task_[level - 1].Record(std::max<TimeNs>(0, delay));
  }
}

void MetricsHub::RecordPlacement(net::TaskInfo::Placement placement) {
  const auto index = static_cast<size_t>(placement);
  if (index < 3) {
    ++placement_counts_[index];
  }
}

void MetricsHub::RecordNodeCompletion(uint32_t worker_node, TimeNs at) {
  ++total_node_completions_;
  if (worker_node < node_completions_.size()) {
    node_completions_[worker_node].Record(at);
  }
}

void MetricsHub::RecordEndToEnd(const net::TaskInfo& task, TimeNs completion_time) {
  if (!InWindow(task.meta.first_submit_time)) {
    return;
  }
  const TimeNs delay = std::max<TimeNs>(0, completion_time - task.meta.first_submit_time);
  e2e_delay_.Record(delay);
  if (task.meta.exec_duration > 0) {
    slowdown_milli_.Record(delay * 1000 / task.meta.exec_duration);
  }
  if (fault_start_ < 0) {
    return;
  }
  if (completion_time < fault_start_) {
    e2e_pre_fault_.Record(delay);
    last_completion_before_fault_ = std::max(last_completion_before_fault_, completion_time);
    return;
  }
  if (first_completion_after_fault_ < 0 || completion_time < first_completion_after_fault_) {
    first_completion_after_fault_ = completion_time;
  }
  if (completion_time < fault_clear_) {
    e2e_during_fault_.Record(delay);
  } else {
    e2e_post_fault_.Record(delay);
  }
}

void MetricsHub::ConfigureFaultWindow(TimeNs start, TimeNs clear) {
  DRACONIS_CHECK(start >= 0 && clear >= start);
  fault_start_ = start;
  fault_clear_ = clear;
}

TimeNs MetricsHub::TimeToRecover() const {
  if (fault_start_ < 0 || first_completion_after_fault_ < 0) {
    return -1;
  }
  return first_completion_after_fault_ - fault_start_;
}

TimeNs MetricsHub::UnavailabilityGap() const {
  if (last_completion_before_fault_ < 0 || first_completion_after_fault_ < 0) {
    return -1;
  }
  return first_completion_after_fault_ - last_completion_before_fault_;
}

void MetricsHub::RecordSubmission(TimeNs first_submit) {
  if (InWindow(first_submit)) {
    ++tasks_submitted_;
  }
}

void MetricsHub::RecordTimeoutResubmission() { ++timeout_resubmissions_; }

void MetricsHub::RecordQueueFullRetry() { ++queue_full_retries_; }

void MetricsHub::RecordBusyInterval(TimeNs start, TimeNs end) {
  // Clamp the busy interval to the measurement window.
  const TimeNs lo = std::max(start, measure_start_);
  const TimeNs hi = std::min(end, measure_end_);
  if (hi > lo) {
    total_busy_ += hi - lo;
  }
}

const stats::Histogram& MetricsHub::priority_queueing(size_t level_1based) const {
  DRACONIS_CHECK(level_1based >= 1 && level_1based <= priority_queueing_.size());
  return priority_queueing_[level_1based - 1];
}

const stats::Histogram& MetricsHub::priority_get_task(size_t level_1based) const {
  DRACONIS_CHECK(level_1based >= 1 && level_1based <= priority_get_task_.size());
  return priority_get_task_[level_1based - 1];
}

const stats::TimeSeries& MetricsHub::node_completions(uint32_t node) const {
  DRACONIS_CHECK(node < node_completions_.size());
  return node_completions_[node];
}

uint64_t MetricsHub::placements(net::TaskInfo::Placement p) const {
  const auto index = static_cast<size_t>(p);
  return index < 3 ? placement_counts_[index] : 0;
}

double MetricsHub::CompletionThroughput() const {
  const double window = ToSeconds(measure_end_ - measure_start_);
  return window > 0.0 ? static_cast<double>(tasks_completed()) / window : 0.0;
}

}  // namespace draconis::cluster
