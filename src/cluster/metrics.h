// Shared measurement sink for a simulation run.
//
// Executors, workers, and clients record into one MetricsHub. Recording is
// filtered by the measurement window: only tasks whose *first* submission
// falls inside [measure_start, measure_end) count, which excludes warmup and
// draining artifacts. Delay definitions follow DESIGN.md §5.

#ifndef DRACONIS_CLUSTER_METRICS_H_
#define DRACONIS_CLUSTER_METRICS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "net/packet.h"
#include "stats/histogram.h"
#include "stats/timeseries.h"

namespace draconis::cluster {

class MetricsHub {
 public:
  // `num_nodes` sizes the per-node completion time series (Fig. 11);
  // `priority_levels` > 0 enables per-priority histograms (Figs. 12, 13).
  MetricsHub(TimeNs measure_start, TimeNs measure_end, size_t num_nodes = 0,
             size_t priority_levels = 0,
             TimeNs node_series_bucket = kSecond);

  bool InWindow(TimeNs first_submit) const {
    return first_submit >= measure_start_ && first_submit < measure_end_;
  }

  TimeNs measure_start() const { return measure_start_; }
  TimeNs measure_end() const { return measure_end_; }

  // --- Recording (no-ops when the task is outside the window) --------------

  // True the first time a task id reaches an executor. Timeout resubmissions
  // can execute a task twice; only the first execution is measured, matching
  // what the client observes (it counts the first completion).
  bool FirstExecution(const net::TaskId& id);

  // Called by an executor when a task begins service.
  void RecordExecutionStart(const net::TaskInfo& task, TimeNs exec_start);

  // Called by an executor when an assignment arrives (queueing delay).
  void RecordAssignment(const net::TaskInfo& task, TimeNs assign_time);

  // Request -> assignment latency at the executor, bucketed by the assigned
  // task's priority level when priorities are tracked.
  void RecordGetTask(uint32_t priority_level, TimeNs delay);

  void RecordPlacement(net::TaskInfo::Placement placement);

  // Called by an executor when a task finishes, attributed to its worker node.
  void RecordNodeCompletion(uint32_t worker_node, TimeNs at);

  // Called by the client when the completion notice arrives.
  void RecordEndToEnd(const net::TaskInfo& task, TimeNs completion_time);

  void RecordSubmission(TimeNs first_submit);
  void RecordTimeoutResubmission();
  void RecordQueueFullRetry();

  // --- §3.3 fault / recovery accounting (src/fault/) ------------------------

  // Declares the fault window [start, clear). Once set, RecordEndToEnd also
  // buckets each completion into the pre/during/post-fault histograms by its
  // *completion* time, and tracks the completion gap spanning `start` (the
  // unavailability window) for the recovery metrics below.
  void ConfigureFaultWindow(TimeNs start, TimeNs clear);
  bool fault_window_configured() const { return fault_start_ >= 0; }
  TimeNs fault_start() const { return fault_start_; }
  TimeNs fault_clear() const { return fault_clear_; }

  // A client or executor re-pointed itself at a standby scheduler (§3.3).
  void RecordClientRehome() { ++client_rehomes_; }
  void RecordExecutorRehome() { ++executor_rehomes_; }

  // Executor busy-time accounting for the CPU-efficiency analysis (§3.1).
  void RecordBusyInterval(TimeNs start, TimeNs end);

  // --- Results --------------------------------------------------------------

  const stats::Histogram& sched_delay() const { return sched_delay_; }
  const stats::Histogram& queueing_delay() const { return queueing_delay_; }
  const stats::Histogram& e2e_delay() const { return e2e_delay_; }
  // Per-task slowdown (end-to-end delay / declared execution time), recorded
  // in 1/1000ths so the integer histogram keeps 3 decimal digits; tasks with
  // no declared duration (no-ops) are skipped. The policy-comparison metric
  // of bench/fig_pifo_policies (SRPT optimizes mean slowdown, not latency).
  const stats::Histogram& slowdown_milli() const { return slowdown_milli_; }
  const stats::Histogram& get_task_delay() const { return get_task_delay_; }
  const stats::Histogram& priority_queueing(size_t level_1based) const;
  const stats::Histogram& priority_get_task(size_t level_1based) const;
  const stats::TimeSeries& node_completions(uint32_t node) const;
  size_t num_nodes() const { return node_completions_.size(); }
  // Total executions finished across all workers (counted regardless of the
  // measurement window; used by throughput benches to delta across it).
  uint64_t total_node_completions() const { return total_node_completions_; }
  size_t priority_levels() const { return priority_queueing_.size(); }

  // Phase-split end-to-end histograms; empty until ConfigureFaultWindow.
  const stats::Histogram& e2e_pre_fault() const { return e2e_pre_fault_; }
  const stats::Histogram& e2e_during_fault() const { return e2e_during_fault_; }
  const stats::Histogram& e2e_post_fault() const { return e2e_post_fault_; }

  // -1 while no in-window completion landed on that side of the fault onset.
  TimeNs last_completion_before_fault() const { return last_completion_before_fault_; }
  TimeNs first_completion_after_fault() const { return first_completion_after_fault_; }

  // Time from the fault onset to the first completion at/after it; -1 when
  // nothing completed after the onset (the cluster never recovered).
  TimeNs TimeToRecover() const;

  // Width of the completion gap spanning the onset (last completion before it
  // to the first at/after it); -1 when either side is missing.
  TimeNs UnavailabilityGap() const;

  uint64_t client_rehomes() const { return client_rehomes_; }
  uint64_t executor_rehomes() const { return executor_rehomes_; }

  uint64_t placements(net::TaskInfo::Placement p) const;
  uint64_t tasks_submitted() const { return tasks_submitted_; }
  uint64_t tasks_completed() const { return e2e_delay_.count(); }
  uint64_t timeout_resubmissions() const { return timeout_resubmissions_; }
  uint64_t queue_full_retries() const { return queue_full_retries_; }
  TimeNs total_busy() const { return total_busy_; }

  // Completed tasks per second of measurement window.
  double CompletionThroughput() const;

 private:
  TimeNs measure_start_;
  TimeNs measure_end_;

  stats::Histogram sched_delay_;
  stats::Histogram queueing_delay_;
  stats::Histogram e2e_delay_;
  stats::Histogram slowdown_milli_;
  stats::Histogram get_task_delay_;
  std::vector<stats::Histogram> priority_queueing_;
  std::vector<stats::Histogram> priority_get_task_;
  std::vector<stats::TimeSeries> node_completions_;

  // §3.3 recovery accounting; inert (fault_start_ == -1) until configured.
  TimeNs fault_start_ = -1;
  TimeNs fault_clear_ = -1;
  stats::Histogram e2e_pre_fault_;
  stats::Histogram e2e_during_fault_;
  stats::Histogram e2e_post_fault_;
  TimeNs last_completion_before_fault_ = -1;
  TimeNs first_completion_after_fault_ = -1;
  uint64_t client_rehomes_ = 0;
  uint64_t executor_rehomes_ = 0;

  std::unordered_set<net::TaskId, net::TaskIdHash> executed_;
  uint64_t total_node_completions_ = 0;
  uint64_t placement_counts_[3] = {0, 0, 0};
  uint64_t tasks_submitted_ = 0;
  uint64_t timeout_resubmissions_ = 0;
  uint64_t queue_full_retries_ = 0;
  TimeNs total_busy_ = 0;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_METRICS_H_
