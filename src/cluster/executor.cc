#include "cluster/executor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/policy.h"

namespace draconis::cluster {

Executor::Executor(Testbed* testbed, const ExecutorConfig& config)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      metrics_(testbed->metrics()),
      recorder_(testbed->recorder()),
      config_(config),
      rng_(config.worker_node * 1000003ULL + config.exec_props + 17),
      retry_interval_(config.initial_retry) {
  DRACONIS_CHECK(metrics_ != nullptr);
  node_id_ = network_->Register(this, config.host_profile);
  pull_timer_.Bind(simulator_, [this] { SendRequest(); });
  fetch_timer_.Bind(simulator_, [this] {
    if (fetch_pending_) {
      SendParamFetch();  // the fetch or its reply was lost
    }
  });
}

void Executor::Start(net::NodeId scheduler, TimeNs at) {
  scheduler_ = scheduler;
  pull_timer_.ScheduleAt(at);
}

void Executor::Rehome(net::NodeId scheduler) {
  if (recorder_ != nullptr && scheduler != scheduler_) {
    recorder_->RecordGlobal(trace::Kind::kRehome, simulator_->Now(), scheduler, node_id_);
  }
  scheduler_ = scheduler;
}

void Executor::SendRequest() {
  net::Packet request;
  request.op = net::OpCode::kTaskRequest;
  request.dst = scheduler_;
  request.exec_props = config_.exec_props;
  request.rtrv_prio = 1;
  last_request_time_ = simulator_->Now();
  network_->Send(node_id_, std::move(request));
  pull_timer_.ScheduleAfter(config_.request_timeout);
}

void Executor::HandlePacket(net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kTaskAssignment:
      pull_timer_.Cancel();
      retry_interval_ = config_.initial_retry;
      RunTask(std::move(pkt));
      return;
    case net::OpCode::kParamData: {
      // §4.4: the client shipped the real parameters; run the held task.
      if (!fetch_pending_ || !(pkt.tasks.at(0).id == fetch_task_.id)) {
        return;  // stale duplicate
      }
      fetch_timer_.Cancel();
      fetch_pending_ = false;
      Execute(std::move(fetch_task_), fetch_client_, fetch_access_, fetch_record_);
      return;
    }
    case net::OpCode::kNoOpTask: {
      // Nothing to do yet; ask again after the current backoff, jittered by
      // +-50% so an idle fleet's polls stay desynchronized (a fixed period
      // phase-locks the pollers and opens dead zones as long as the period).
      const TimeNs wait =
          retry_interval_ / 2 + static_cast<TimeNs>(rng_.NextBelow(retry_interval_));
      retry_interval_ = std::min(retry_interval_ * 2, config_.max_retry);
      pull_timer_.ScheduleAfter(std::max<TimeNs>(wait, 1));
      return;
    }
    default:
      // Stray packet (e.g. traffic addressed elsewhere in tests); ignore.
      return;
  }
}

void Executor::RunTask(net::Packet assignment) {
  DRACONIS_CHECK_MSG(!assignment.tasks.empty(), "assignment without a task");
  net::TaskInfo task = std::move(assignment.tasks[0]);
  const TimeNs now = simulator_->Now();
  const bool in_window = now >= metrics_->measure_start() && now < metrics_->measure_end();
  // Duplicate executions (timeout resubmissions) run but are not measured.
  const bool first = metrics_->FirstExecution(task.id);

  if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
    const uint64_t wait =
        last_request_time_ >= 0 ? static_cast<uint64_t>(now - last_request_time_) : 0;
    recorder_->Record(task.id, trace::Kind::kExecArrive, now, now, wait, node_id_,
                      task.meta.attempt, first ? 0 : 1);
  }

  if (first && in_window && last_request_time_ >= 0) {
    metrics_->RecordGetTask(task.tprops, now - last_request_time_);
  }
  if (first) {
    metrics_->RecordAssignment(task, now);
  }

  // Data-access penalty for locality experiments.
  TimeNs access = 0;
  if (config_.topology != nullptr) {
    const auto placement =
        core::ClassifyPlacement(*config_.topology, task.tprops, config_.worker_node);
    if (first && metrics_->InWindow(task.meta.first_submit_time)) {
      metrics_->RecordPlacement(placement);
    }
    switch (placement) {
      case net::TaskInfo::Placement::kLocal:
        access = config_.local_access;
        break;
      case net::TaskInfo::Placement::kSameRack:
        access = config_.rack_access;
        break;
      default:
        access = config_.remote_access;
        break;
    }
  }

  if (config_.drop_tasks) {
    // Fig. 5b no-op mode: drop the task and immediately request the next one
    // (no completion notice; the loop rate is what the benchmark measures).
    ++tasks_executed_;
    SendRequest();
    return;
  }

  const net::NodeId client = assignment.client_addr;
  if (task.fn_id == net::kTransmissionFnId && client != net::kInvalidNode) {
    // §4.4: a transmission-function task — hold it and fetch the real
    // parameters from the client before running. The executor stays occupied
    // during the fetch round trip.
    fetch_pending_ = true;
    fetch_task_ = std::move(task);
    fetch_client_ = client;
    fetch_access_ = access;
    fetch_record_ = first;
    SendParamFetch();
    return;
  }

  Execute(std::move(task), client, access, first);
}

void Executor::SendParamFetch() {
  net::Packet fetch;
  fetch.op = net::OpCode::kParamFetch;
  fetch.dst = fetch_client_;
  fetch.tasks = {fetch_task_};
  network_->Send(node_id_, std::move(fetch));
  fetch_timer_.ScheduleAfter(config_.request_timeout);
}

void Executor::Execute(net::TaskInfo task, net::NodeId client, TimeNs access, bool record) {
  const TimeNs now = simulator_->Now();
  const TimeNs pickup = config_.pickup_overhead;
  const TimeNs service = access + task.meta.exec_duration;
  const TimeNs exec_start = now + pickup;
  if (record) {
    metrics_->RecordExecutionStart(task, exec_start);
  }

  if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
    recorder_->Record(task.id, trace::Kind::kExecPickup, now, exec_start,
                      static_cast<uint64_t>(access), node_id_, task.meta.attempt, 0);
    recorder_->Record(task.id, trace::Kind::kExecService, exec_start, exec_start + service,
                      static_cast<uint64_t>(task.meta.exec_duration), node_id_,
                      task.meta.attempt, 0);
  }

  const TimeNs done = exec_start + service;
  busy_time_ += done - now;
  metrics_->RecordBusyInterval(now, done);
  ++tasks_executed_;

  simulator_->ScheduleAt(done, [this, task = std::move(task), client]() mutable {
    metrics_->RecordNodeCompletion(config_.worker_node, simulator_->Now());
    // Completion + piggybacked request for the next task.
    net::Packet completion;
    completion.op = net::OpCode::kTaskCompletion;
    completion.dst = scheduler_;
    completion.tasks = {std::move(task)};
    completion.client_addr = client;
    completion.exec_props = config_.exec_props;
    completion.rtrv_prio = 1;
    last_request_time_ = simulator_->Now();
    network_->Send(node_id_, std::move(completion));
    pull_timer_.ScheduleAfter(config_.request_timeout);
  });
}

}  // namespace draconis::cluster
