// Scheduler-agnostic counter aggregate harvested after a run.
//
// Every scheduler kind (the Draconis switch program, the push-based
// baselines, the central servers, Sparrow) reports into this one flat
// struct, so ExperimentResult — and every bench TU including it — no longer
// depends on the per-scheduler headers. Fields a scheduler does not produce
// stay zero; adding a scheduler means harvesting into existing fields (or
// appending one here), not widening the public experiment API.

#ifndef DRACONIS_CLUSTER_SCHEDULER_COUNTERS_H_
#define DRACONIS_CLUSTER_SCHEDULER_COUNTERS_H_

#include <cstdint>

namespace draconis::cluster {

struct SchedulerCounters {
  // Queue/decision path (Draconis switch + central servers).
  uint64_t tasks_enqueued = 0;
  uint64_t tasks_assigned = 0;
  uint64_t noops_sent = 0;
  uint64_t queue_full_errors = 0;
  uint64_t acks_sent = 0;

  // Draconis pointer-repair and swap machinery (§4.5, locality/resource).
  uint64_t add_repairs = 0;
  uint64_t retrieve_repairs = 0;
  uint64_t swap_walks_started = 0;
  uint64_t swap_exchanges = 0;
  uint64_t swap_requeues = 0;
  uint64_t priority_probes = 0;  // task_request recirculations across levels

  // Push-based baselines (R2P2 / RackSched).
  uint64_t tasks_pushed = 0;
  uint64_t credit_wait_recirculations = 0;
  uint64_t credits = 0;

  // Sparrow.
  uint64_t probes_sent = 0;
  uint64_t tasks_launched = 0;
  uint64_t empty_get_tasks = 0;  // reservations cancelled by late binding

  // Central server.
  uint64_t parked_requests = 0;  // pulls that waited for a task

  // §3.3 failover (src/fault/): standby promotions executed this run.
  uint64_t failovers = 0;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_SCHEDULER_COUNTERS_H_
