// The simulated testbed: one context object owning the shared substrate of
// an experiment run — the event engine, the network fabric, the metrics hub,
// the (optional) task-lifecycle recorder, and the rack topology — plus the
// named-domain seed deriver every randomized component draws from.
//
// Every layer of the cluster (clients, executors, the switch pipeline, the
// baseline schedulers and workers) takes a single Testbed* instead of the
// 4-5 loose pointers it used to; a SchedulerDeployment (cluster/deployment.h)
// builds its scheduler on top of one. The Testbed lives in the shared
// substrate library (with MetricsHub) so that both the p4 layer and the
// baselines can link it without a dependency cycle.

#ifndef DRACONIS_CLUSTER_TESTBED_H_
#define DRACONIS_CLUSTER_TESTBED_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "cluster/metrics.h"
#include "common/time.h"
#include "core/topology.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "trace/recorder.h"

namespace draconis::cluster {

// Named seed domains. Each randomized component derives its seed from the
// experiment seed through its own domain, so adding a domain never perturbs
// the streams of the existing ones. The derivations preserve the historical
// per-component constants bit for bit (tests/determinism_test.cc pins
// per-scheduler golden results against them).
enum class SeedDomain {
  kNetwork,    // fabric jitter
  kRackSched,  // power-of-two sampling
  kSparrow,    // probe targets (per-scheduler-instance via `index`)
  kFault,      // fault-injection decisions (src/fault/); never consumed
               // unless a fault rule actually draws, so a faultless run is
               // bit-identical with or without the domain
  kPlacement,  // cross-rack placement (src/topology/), rack-indexed: rack
               // r's stream depends only on (seed, r), so growing the
               // cluster by a rack never perturbs racks 0..r
};

// The substrate shape: everything the Testbed needs that is independent of
// which scheduler runs on it. RunExperiment fills one from ExperimentConfig;
// tests build small ones directly.
struct TestbedConfig {
  uint64_t seed = 1;
  size_t num_workers = 10;
  size_t num_racks = 3;
  // Event-queue backend for the simulator. Both produce bit-identical runs
  // (sim/event_queue.h); the choice is purely a speed knob.
  sim::QueueBackend sim_queue = sim::kDefaultQueueBackend;
  // Measurement window for the MetricsHub.
  TimeNs warmup = 0;
  TimeNs horizon = FromSeconds(10);
  // > 0 enables per-priority-level histograms.
  size_t priority_levels = 0;
  TimeNs node_series_bucket = kSecond;
  net::NetworkConfig network{};
  // trace.enabled creates the recorder and threads it through the network;
  // sampling is a pure hash of the task id, so results never change.
  trace::TraceConfig trace{};
};

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return *network_; }
  MetricsHub* metrics() { return metrics_.get(); }
  // Nullable: only non-null when config.trace.enabled.
  trace::Recorder* recorder() { return recorder_.get(); }
  const core::Topology& topology() const { return topology_; }
  const TestbedConfig& config() const { return config_; }

  TimeNs warmup() const { return config_.warmup; }
  TimeNs horizon() const { return config_.horizon; }
  uint64_t seed() const { return config_.seed; }

  // Derives the seed for one randomized component. `index` distinguishes
  // replicated instances within a domain (e.g. Sparrow scheduler #2).
  uint64_t SeedFor(SeedDomain domain, uint64_t index = 0) const;

  // Harvest: hands the hub / recorder over to the ExperimentResult once the
  // run is finished. The testbed must not record after this.
  std::unique_ptr<MetricsHub> TakeMetrics() { return std::move(metrics_); }
  std::unique_ptr<trace::Recorder> TakeRecorder() { return std::move(recorder_); }

 private:
  TestbedConfig config_;
  sim::Simulator simulator_;
  std::unique_ptr<trace::Recorder> recorder_;  // before network_: wired into it
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<MetricsHub> metrics_;
  core::Topology topology_;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_TESTBED_H_
