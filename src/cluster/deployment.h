// The scheduler-deployment seam.
//
// A SchedulerDeployment packages everything that is specific to one
// SchedulerKind — how the scheduler is constructed on a Testbed, how its
// worker side is wired, which client quirks it needs, and how its counters
// are harvested — behind one interface, so RunExperiment stays a kind-blind
// orchestrator and adding a scheduler means adding one deployment file pair
// next to the scheduler (see DESIGN.md §"Testbed & deployments").
//
// Deployments register in the DeploymentRegistry, which is the single source
// of truth for scheduler-kind names (SchedulerKindName/FromName), the bench
// --scheduler flag choices, the policies each kind honors, and the factory
// RunExperiment resolves kinds through.

#ifndef DRACONIS_CLUSTER_DEPLOYMENT_H_
#define DRACONIS_CLUSTER_DEPLOYMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/executor.h"
#include "cluster/experiment.h"
#include "cluster/testbed.h"
#include "net/network.h"

namespace draconis::cluster {

// One scheduler kind deployed on a testbed. Lifecycle (driven by
// RunExperiment, in order): Build -> WireWorkers -> ConfigureClient (once per
// client) -> [simulation runs] -> Harvest.
class SchedulerDeployment {
 public:
  virtual ~SchedulerDeployment() = default;

  // Constructs the scheduler component(s) and registers them on the fabric.
  // Must leave at least one address in scheduler_nodes().
  virtual void Build(Testbed& testbed) = 0;

  // Constructs and wires the worker side (pull-based executor fleets or the
  // baselines' push-based worker endpoints).
  virtual void WireWorkers(Testbed& testbed) = 0;

  // Applies kind-specific client quirks (packetization, host profile).
  // `client` arrives pre-filled with the kind-agnostic settings.
  virtual void ConfigureClient(ClientConfig& client) { (void)client; }

  // Copies the scheduler's counters into the flat result aggregate (and, for
  // switch-hosted kinds, the pipeline counters).
  virtual void Harvest(ExperimentResult& result) { (void)result; }

  // Scheduling decisions made so far — the quantity the no-op throughput
  // benches (Fig. 5b) delta across the measurement window. Defaults to
  // completed executions; pull-based kinds add the tasks their no-op
  // executors dropped.
  virtual uint64_t DecisionCount(Testbed& testbed) const {
    return testbed.metrics()->total_node_completions();
  }

  // Fabric addresses of the worker-side endpoints, in wiring order; the
  // fault injector resolves `executor` node references through this. Kinds
  // whose worker side is not individually addressable return empty.
  virtual std::vector<net::NodeId> WorkerNodes() const { return {}; }

  // §3.3 failover: promote the standby scheduler after the active instance
  // was disconnected by a fault plan. Implementations must swap the standby
  // into scheduler_nodes()[0] and rehome their worker side; clients rehome on
  // their own through timeouts. Returns false when the kind has no standby
  // (the default); plans requesting a failover are rejected for such kinds by
  // ExperimentConfig::Validate (see DeploymentInfo::failover).
  virtual bool Failover(Testbed& testbed) {
    (void)testbed;
    return false;
  }

  // Fabric addresses of the scheduler instances; clients are assigned
  // round-robin across them.
  const std::vector<net::NodeId>& scheduler_nodes() const { return scheduler_nodes_; }

  // Standby scheduler addresses (non-empty only when the deployment built a
  // standby for a failover plan); clients arm their rehome fallback with [0].
  const std::vector<net::NodeId>& standby_nodes() const { return standby_nodes_; }

 protected:
  explicit SchedulerDeployment(const ExperimentConfig& config) : config_(&config) {}

  const ExperimentConfig& config() const { return *config_; }

  std::vector<net::NodeId> scheduler_nodes_;
  std::vector<net::NodeId> standby_nodes_;

 private:
  const ExperimentConfig* config_;
};

// Shared worker side of the pull-based kinds (the Draconis switch and the
// central servers): one Executor per worker core, started with staggered
// initial pulls toward its rack's scheduler address. Legacy (no
// ClusterTopology) configs wire one rack toward scheduler_nodes()[0];
// multi-rack configs expect one scheduler per rack, in rack order.
class PullBasedDeployment : public SchedulerDeployment {
 public:
  void WireWorkers(Testbed& testbed) override;
  uint64_t DecisionCount(Testbed& testbed) const override;
  std::vector<net::NodeId> WorkerNodes() const override;

 protected:
  using SchedulerDeployment::SchedulerDeployment;

  // §3.3: point one rack's executor fleet at `scheduler` (each executor's
  // pull watchdog re-issues any request lost to the failed switch). Legacy
  // single-switch configs are rack 0.
  void RehomeRackExecutors(Testbed& testbed, size_t rack, net::NodeId scheduler);

 private:
  // The policy-specific executor property word (EXEC_RSRC bitmap for the
  // resource policy, the worker-node id for locality).
  uint32_t ExecPropsFor(size_t worker) const;

  std::vector<std::unique_ptr<Executor>> executors_;
  // rack r's executors are [rack_first_executor_[r], rack_first_executor_[r+1]).
  std::vector<size_t> rack_first_executor_;
};

using DeploymentFactory =
    std::function<std::unique_ptr<SchedulerDeployment>(const ExperimentConfig&)>;

// Registry metadata for one scheduler kind.
struct DeploymentInfo {
  SchedulerKind kind;
  // Canonical display name ("Draconis", "R2P2", ...). Parsed
  // case-insensitively by SchedulerKindFromName.
  const char* canonical_name;
  // The --scheduler flag spelling ("draconis", "dpdk-server", ...).
  const char* flag_name;
  // PolicyKinds this kind honors; any other policy is a config error.
  std::vector<PolicyKind> policies;
  // Switch queueing disciplines the kind supports. Every kind runs the
  // implicit FIFO; only PIFO-capable kinds (the in-network Draconis) list
  // the rank-ordered family (docs/pifo.md). Drives the --switch-policy flag
  // validation and the list_schedulers --switch-policies output.
  std::vector<core::SwitchPolicy> switch_policies = {core::SwitchPolicy::kFifo};
  // Whether num_schedulers > 1 deploys replicated instances (Sparrow).
  bool multi_scheduler = false;
  // Whether the kind can build a standby and honor a §3.3 scheduler_failover
  // fault event (currently only the in-network Draconis deployment).
  bool failover = false;
  // Whether the kind can deploy one scheduler instance per rack of a
  // multi-rack ClusterTopology (docs/topology.md); configs with
  // cluster.enabled() are rejected for other kinds by Validate.
  bool multi_rack = false;
  DeploymentFactory make;
};

class DeploymentRegistry {
 public:
  // The process-wide registry, built once from the per-scheduler
  // registration functions.
  static const DeploymentRegistry& Get();

  // Registration order, which is also the canonical enumeration order.
  const std::vector<DeploymentInfo>& all() const { return infos_; }

  const DeploymentInfo& Info(SchedulerKind kind) const;

  // Case-insensitive lookup by canonical or flag name; nullptr when unknown.
  const DeploymentInfo* FindByName(const std::string& name) const;

  // The --scheduler flag spellings, in registration order.
  std::vector<std::string> FlagChoices() const;

  std::unique_ptr<SchedulerDeployment> Make(const ExperimentConfig& config) const;

 private:
  DeploymentRegistry();

  std::vector<DeploymentInfo> infos_;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_DEPLOYMENT_H_
