// Incremental arrival feeder: replays a generated JobStream into a set of
// clients, scheduling one simulator event at a time so huge job streams don't
// materialize as a million queued closures. Jobs are assigned to clients
// round-robin in arrival order.

#ifndef DRACONIS_CLUSTER_FEEDER_H_
#define DRACONIS_CLUSTER_FEEDER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "workload/spec.h"

namespace draconis::cluster {

class Feeder {
 public:
  // Called once per job arrival with the round-robin client index and the
  // job's tasks.
  using Sink = std::function<void(size_t client, const std::vector<workload::TaskSpec>&)>;

  // `stream` must outlive the feeder and must be sorted by arrival time (as
  // the workload generators emit it). `num_clients` must be >= 1.
  Feeder(sim::Simulator* simulator, const workload::JobStream* stream, size_t num_clients,
         Sink sink);

  // Schedules the first arrival; a no-op for an empty stream.
  void Start();

  // True once every job in the stream has been fed.
  bool done() const { return next_ >= stream_->size(); }

  size_t jobs_fed() const { return next_; }

 private:
  void ScheduleNext();
  void Fire();

  sim::Simulator* simulator_;
  const workload::JobStream* stream_;
  size_t num_clients_;
  Sink sink_;
  size_t next_ = 0;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_FEEDER_H_
