// One-call experiment harness. RunExperiment is a kind-blind orchestrator:
// it builds a cluster::Testbed (cluster/testbed.h) from the config, resolves
// the configured SchedulerKind through the DeploymentRegistry
// (cluster/deployment.h) into a SchedulerDeployment — which owns all
// kind-specific construction, wiring, client quirks, and counter harvest —
// replays the generated job stream through round-robin clients, and derives
// the summary statistics. Every figure-reproduction bench in bench/ is a
// thin sweep over RunExperiment (see src/sweep/ for the parallel sweep
// engine that drives it).
//
// This header is the public experiment API: it deliberately avoids the
// per-scheduler baseline headers (their counters are flattened into
// SchedulerCounters) so that adding or reworking a scheduler does not ripple
// through every bench TU. Adding a scheduler kind means adding one
// deployment file pair next to the scheduler and one registry line — see
// DESIGN.md ("Testbed & deployments").

#ifndef DRACONIS_CLUSTER_EXPERIMENT_H_
#define DRACONIS_CLUSTER_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/intra_node_policy.h"
#include "cluster/executor.h"
#include "cluster/metrics.h"
#include "cluster/scheduler_counters.h"
#include "core/policy.h"
#include "core/rank_function.h"
#include "fault/plan.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "sim/event_queue.h"
#include "topology/topology.h"
#include "trace/recorder.h"
#include "workload/spec.h"

namespace draconis::cluster {

enum class SchedulerKind {
  kDraconis,            // in-network scheduler on the switch model
  kDraconisDpdkServer,  // same protocol, DPDK server
  kDraconisSocketServer,
  kR2P2,
  kRackSched,
  kSparrow,
};

// Canonical display name ("Draconis", "R2P2", ...).
const char* SchedulerKindName(SchedulerKind kind);

// Parses a scheduler name — the canonical display name or its lower-case
// flag spelling ("draconis", "dpdk-server", "socket-server", "r2p2",
// "racksched", "sparrow") — into *out. Returns false on an unknown name.
bool SchedulerKindFromName(const std::string& name, SchedulerKind* out);

enum class PolicyKind { kFcfs, kPriority, kResource, kLocality };

// Round-trippable policy name ("fcfs", "priority", "resource", "locality").
const char* PolicyKindName(PolicyKind kind);
bool PolicyKindFromName(const std::string& name, PolicyKind* out);

struct ExperimentConfig {
  SchedulerKind scheduler = SchedulerKind::kDraconis;
  PolicyKind policy = PolicyKind::kFcfs;

  // Cluster shape (paper testbed: 10 workers x 16 executors).
  size_t num_workers = 10;
  size_t executors_per_worker = 16;
  size_t num_racks = 3;
  size_t num_clients = 4;
  size_t num_schedulers = 1;  // Sparrow deployments may run several

  // Multi-rack physical topology (docs/topology.md). When enabled (>= 1
  // rack), the rack specs replace num_workers/executors_per_worker as the
  // cluster shape, the deployment builds one ToR switch per rack, and
  // clients home to racks per cluster.client_homing. Disabled (empty) runs
  // the legacy single-switch layout. Not to be confused with num_racks,
  // which is the locality *policy's* data-rack count.
  topology::ClusterTopology cluster{};

  // Scheduler-specific knobs.
  uint32_t jbsq_k = 3;                                   // R2P2
  baselines::IntraNodePolicy racksched_intra_policy =
      baselines::IntraNodePolicy::kFcfs;                 // RackSched (§2.2)
  size_t priority_levels = 4;                            // Draconis priority
  core::LocalityPolicy::Limits locality_limits{};        // Draconis locality
  bool locality_access_model = false;                    // data-fetch penalty
  std::vector<uint32_t> worker_resources;                // resource bitmaps
  size_t queue_capacity = 164 * 1024;
  bool shadow_copy_dequeue = true;  // false: the paper's §4.5 textbook dequeue
  bool parallel_priority_stages = false;  // Tofino-2 layout (§6.1/§8.7)
  // Switch queueing discipline (docs/pifo.md). kFifo is the paper's circular
  // queue; any other value replaces it with a rank-ordered PIFO and needs a
  // PIFO-capable kind (DeploymentInfo::switch_policies) plus the fcfs policy
  // (rank order replaces the per-level/swap machinery of the other policies).
  core::SwitchPolicy switch_policy = core::SwitchPolicy::kFifo;
  std::vector<uint32_t> wfq_weights = {1, 1};  // per-tenant weights (TPROPS = tenant)

  // Workload and run control.
  workload::JobStream stream;
  TimeNs warmup = FromMillis(20);
  TimeNs horizon = 0;            // 0: last arrival + 50 ms
  TimeNs drain_margin = FromMillis(50);  // extra sim time past the horizon
  bool run_to_completion = false;  // stop when all clients drain (Figs. 11/12)
  bool noop_executors = false;     // Fig. 5b throughput mode
  // The paper uses 2x the execution time and notes typical clients use
  // 5-10x; 3x keeps baseline resubmission storms from dominating on our
  // slightly slower simulated substrate.
  double timeout_multiplier = 3.0;
  TimeNs timeout_floor = FromMicros(50);
  size_t max_tasks_per_packet = 0;  // 0: kind-appropriate default
  TimeNs node_series_bucket = kSecond;

  p4::PipelineConfig pipeline{};
  net::NetworkConfig network{};
  ExecutorConfig executor_template{};
  uint64_t seed = 1;

  // Event-queue backend for the simulator (sim/event_queue.h). Both backends
  // produce bit-identical results; ladder is faster on large runs, so this
  // is a speed knob, not a behaviour knob (--sim-queue on the benches).
  sim::QueueBackend sim_queue = sim::kDefaultQueueBackend;

  // Task-lifecycle tracing (docs/observability.md). Sampling is a pure hash
  // of the task id, so enabling it cannot perturb results.
  trace::TraceConfig trace{};

  // Deterministic fault timeline (docs/fault_injection.md). An empty plan is
  // bit-identical to no plan; a scheduler_failover event additionally builds
  // a standby scheduler and is only valid for kinds whose deployment
  // supports it (DeploymentInfo::failover).
  fault::FaultPlan fault_plan{};
  // During->post boundary for the phase-split latency histograms when the
  // plan's last event never clears (e.g. a failover): completions after
  // `last event start + fault_settle` count as post-fault.
  TimeNs fault_settle = FromMillis(5);

  // Checks the config for contradictions the simulation would otherwise hide
  // (zero-sized cluster, a policy the chosen scheduler silently ignores, a
  // short worker_resources table, replicating a single-instance scheduler, a
  // warmup past the horizon). Returns an empty string when valid, a
  // descriptive error otherwise. RunExperiment refuses invalid configs.
  std::string Validate() const;
};

// §3.3 recovery metrics, filled only when the config carried a fault plan.
// Times are -1 when the underlying event never happened (nothing completed
// after the onset, ...). See docs/fault_injection.md for definitions.
struct RecoveryStats {
  bool fault_plan_active = false;
  TimeNs fault_start = -1;          // earliest event onset
  TimeNs fault_clear = -1;          // during->post boundary used for phases
  TimeNs time_to_recover = -1;      // onset -> first completion after it
  TimeNs unavailability = -1;       // completion gap spanning the onset
  uint64_t tasks_resubmitted = 0;   // timeout resubmissions over the run
  uint64_t tasks_lost = 0;          // submitted tasks never completed
  uint64_t client_rehomes = 0;      // clients that fell back to the standby
  uint64_t executor_rehomes = 0;    // executors re-pointed at the standby
  uint64_t packets_dropped = 0;     // fabric drops (faults + disconnects)
  uint64_t fault_events_started = 0;
  uint64_t fault_events_cleared = 0;
};

struct ExperimentResult {
  std::unique_ptr<MetricsHub> metrics;

  // Populated (and finalized) when config.trace.enabled; null otherwise.
  std::unique_ptr<trace::Recorder> trace;

  // Switch-side observability (zeroed for pure server schedulers).
  p4::PipelineCounters switch_counters{};

  // Whichever scheduler ran reports into this flat aggregate; fields the
  // scheduler does not produce stay zero.
  SchedulerCounters counters{};

  double recirculation_share = 0.0;  // recirculated / processed passes
  uint64_t recirc_drops = 0;
  double drop_fraction = 0.0;  // tasks dropped at the switch / tasks offered

  double offered_tasks_per_second = 0.0;
  double offered_utilization = 0.0;  // offered work / cluster service capacity
  double throughput_tps = 0.0;       // completions (or no-op pulls) per second
  double executor_busy_fraction = 0.0;
  TimeNs drain_time = -1;  // when the last task completed (run_to_completion)

  // Multi-rack topology results; num_racks stays 0 for legacy single-switch
  // runs (the sweep JSON emits the block only when it is set).
  size_t num_racks = 0;
  std::vector<uint64_t> rack_decisions;  // per-rack tasks_assigned
  uint64_t home_submissions = 0;         // routed to the client's home ToR
  uint64_t cross_rack_submissions = 0;   // forwarded to a sibling rack
  double cross_rack_fraction = 0.0;      // cross / (home + cross)
  uint64_t summary_packets = 0;          // queue-depth summaries broadcast
  uint64_t cross_rack_packets = 0;       // all fabric packets that crossed racks

  RecoveryStats recovery{};
};

// The per-rack shape an experiment actually runs: the configured topology's
// racks when cluster.enabled(), otherwise one legacy rack built from
// num_workers/executors_per_worker. Deployments and benches share this so
// wiring order (and thus NodeId assignment) has a single source of truth.
std::vector<topology::RackSpec> EffectiveRackSpecs(const ExperimentConfig& config);

ExperimentResult RunExperiment(const ExperimentConfig& config);

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_EXPERIMENT_H_
