#include "cluster/testbed.h"

#include "common/check.h"

namespace draconis::cluster {

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      simulator_(config.sim_queue),
      topology_(core::Topology::Uniform(config.num_workers, config.num_racks)) {
  if (config_.trace.enabled) {
    recorder_ = std::make_unique<trace::Recorder>(config_.trace);
  }
  net::NetworkConfig net_config = config_.network;
  net_config.seed = SeedFor(SeedDomain::kNetwork);
  net_config.fault_seed = SeedFor(SeedDomain::kFault);
  network_ = std::make_unique<net::Network>(&simulator_, net_config);
  network_->SetRecorder(recorder_.get());
  metrics_ = std::make_unique<MetricsHub>(config_.warmup, config_.horizon, config_.num_workers,
                                          config_.priority_levels, config_.node_series_bucket);
}

uint64_t Testbed::SeedFor(SeedDomain domain, uint64_t index) const {
  // The multipliers predate the Testbed; keeping them bit-identical keeps
  // every pinned golden and published EXPERIMENTS.md number valid.
  switch (domain) {
    case SeedDomain::kNetwork:
      return config_.seed * 7919 + 1;
    case SeedDomain::kRackSched:
      return config_.seed * 31 + 5;
    case SeedDomain::kSparrow:
      return config_.seed * 131 + index;
    case SeedDomain::kFault:
      return config_.seed * 6151 + 11 + index;
    case SeedDomain::kPlacement:
      // Rack-indexed: a pure function of (seed, index) with a golden-ratio
      // index spread, so rack streams are mutually independent and stable
      // under rack-count changes (pinned in tests/topology_test.cc).
      return config_.seed * 9973 + 257 + index * 0x9E3779B97F4A7C15ULL;
  }
  DRACONIS_CHECK_MSG(false, "unknown seed domain");
  return config_.seed;
}

}  // namespace draconis::cluster
