// Pull-based executor (paper §3.1).
//
// One Executor models one worker-core process. It requests a task from the
// scheduler when free, runs the task (data-access penalty + service time),
// then sends the completion — with the next task request piggybacked — back
// through the scheduler. On a no-op reply it retries periodically, with
// exponential backoff capped at a small bound so an idle fleet doesn't melt
// the simulator while still picking up new work within a microsecond or two
// in aggregate.

#ifndef DRACONIS_CLUSTER_EXECUTOR_H_
#define DRACONIS_CLUSTER_EXECUTOR_H_

#include <cstdint>

#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "common/rng.h"
#include "core/topology.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "trace/recorder.h"

namespace draconis::cluster {

struct ExecutorConfig {
  uint32_t worker_node = 0;  // which worker machine this core belongs to
  uint32_t exec_props = 0;   // EXEC_RSRC bitmap or worker-node id (policy-specific)

  TimeNs pickup_overhead = TimeNs{200};  // assignment arrival -> service start

  // No-op retry backoff. The paper's DPDK executors re-poll every few
  // microseconds (their no-op pull loop runs at ~280 k/s, i.e. a ~3.6 us
  // round trip); the mild backoff cap keeps a fully idle simulated fleet
  // affordable while idle executors still absorb arriving bursts within a
  // few microseconds.
  TimeNs initial_retry = FromMicros(2);
  TimeNs max_retry = FromMicros(8);

  // Watchdog: if neither a task nor a no-op arrives within this bound after
  // a request, re-request (covers lost packets).
  TimeNs request_timeout = FromMillis(1);

  // Data-access model: when `topology` is set, service is preceded by a data
  // fetch whose latency depends on where the task landed relative to its
  // data-local node (Fig. 10's 20 us / 100 us intra/inter-rack accesses).
  const core::Topology* topology = nullptr;
  TimeNs local_access = 0;
  TimeNs rack_access = FromMicros(20);
  TimeNs remote_access = FromMicros(100);

  // No-op executor mode for the throughput benchmark (Fig. 5b): drop the
  // task immediately and request the next one.
  bool drop_tasks = false;

  net::HostProfile host_profile = net::HostProfile::Dpdk(TimeNs{150});
};

class Executor : public net::Endpoint {
 public:
  // Registers itself on the testbed's fabric. The testbed must outlive the
  // executor.
  Executor(Testbed* testbed, const ExecutorConfig& config);

  net::NodeId node_id() const { return node_id_; }

  // Schedules the first task request toward `scheduler` at time `at`.
  void Start(net::NodeId scheduler, TimeNs at);

  // §3.3 failover: point future pulls at a replacement scheduler. The
  // request watchdog re-issues any pull lost to the failed switch.
  void Rehome(net::NodeId scheduler);

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

  uint64_t tasks_executed() const { return tasks_executed_; }
  TimeNs busy_time() const { return busy_time_; }

 private:
  void SendRequest();
  void RunTask(net::Packet assignment);
  // Runs the task body (data access + service) and sends the completion.
  void Execute(net::TaskInfo task, net::NodeId client, TimeNs access, bool record);
  void SendParamFetch();

  sim::Simulator* simulator_;
  net::Network* network_;
  MetricsHub* metrics_;
  trace::Recorder* recorder_ = nullptr;
  ExecutorConfig config_;
  net::NodeId node_id_;
  net::NodeId scheduler_ = net::kInvalidNode;

  Rng rng_;
  TimeNs retry_interval_;
  TimeNs last_request_time_ = -1;
  // Reusable pull timer: serves both the request watchdog and the no-op
  // retry backoff (both re-issue the pull), so the hottest periodic path in
  // the simulation never allocates per occurrence.
  sim::Timer pull_timer_;

  // In-flight §4.4 parameter fetch (at most one task is held at a time).
  bool fetch_pending_ = false;
  net::TaskInfo fetch_task_;
  net::NodeId fetch_client_ = net::kInvalidNode;
  TimeNs fetch_access_ = 0;
  bool fetch_record_ = false;
  sim::Timer fetch_timer_;
  uint64_t tasks_executed_ = 0;
  TimeNs busy_time_ = 0;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_EXECUTOR_H_
