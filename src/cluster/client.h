// Draconis client (paper §3.1, §4.3).
//
// Submits single tasks or batches of independent tasks as job_submission
// packets (large jobs are split across packets at the MTU boundary), tracks
// outstanding tasks, retries queue-full errors after a short wait, and
// resubmits tasks whose completion notice does not arrive within the timeout
// (2x the task's execution time by default, matching §8.3).

#ifndef DRACONIS_CLUSTER_CLIENT_H_
#define DRACONIS_CLUSTER_CLIENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "topology/fabric.h"
#include "trace/recorder.h"
#include "workload/spec.h"

namespace draconis::cluster {

using TaskSpec = workload::TaskSpec;

struct ClientConfig {
  uint32_t uid = 0;
  double timeout_multiplier = 2.0;          // timeout = multiplier x duration
  TimeNs timeout_floor = FromMicros(50);    // lower bound (covers no-op tasks)
  TimeNs queue_full_retry_wait = FromMicros(50);
  size_t max_tasks_per_packet = 0;          // 0: use the MTU-derived maximum
  // Fire-and-forget mode for closed-loop throughput benches: no outstanding
  // tracking, no timeouts, errors ignored.
  bool fire_and_forget = false;
  // §3.3: consecutive timeouts (no completion in between) before the client
  // falls back to the standby scheduler, when one is set via SetStandby.
  uint32_t rehome_after_timeouts = 2;
  // Multi-rack placement (docs/topology.md): when set, every submission
  // packet's destination ToR is chosen by the home rack's router instead of
  // going straight to `scheduler_`. Owned by the deployment; must outlive
  // the client. Null = legacy single-switch routing.
  topology::SubmissionRouter* router = nullptr;
  net::HostProfile host_profile = net::HostProfile::Dpdk(TimeNs{150});
};

class Client : public net::Endpoint {
 public:
  // Registers itself on the testbed's fabric; records into its metrics hub
  // and (when tracing) its recorder. The testbed must outlive the client.
  Client(Testbed* testbed, const ClientConfig& config);

  net::NodeId node_id() const { return node_id_; }

  // The scheduler address all submissions go to.
  void SetScheduler(net::NodeId scheduler) { scheduler_ = scheduler; }

  // §3.3 failover fallback. Clients are not told about a failover; after
  // `rehome_after_timeouts` consecutive timeouts they swap scheduler and
  // standby (ping-pong, so a spurious rehome can never strand the client on
  // a dead standby — the next timeout streak swaps back).
  void SetStandby(net::NodeId standby) { standby_ = standby; }

  // Submits a batch of independent tasks as one job (possibly multiple
  // packets). Returns the job id.
  uint32_t SubmitJob(const std::vector<TaskSpec>& tasks);

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

  // Tasks submitted but not yet completed.
  size_t outstanding() const { return outstanding_.size(); }
  uint64_t completions() const { return completions_; }
  uint64_t rehomes() const { return rehomes_; }

 private:
  struct Pending {
    net::TaskInfo task;
    sim::EventHandle timeout;
  };

  void SendTasks(std::vector<net::TaskInfo> tasks);
  void ArmTimeout(const net::TaskInfo& task);
  void OnTimeout(net::TaskId id);
  TimeNs TimeoutFor(const net::TaskInfo& task) const;

  sim::Simulator* simulator_;
  net::Network* network_;
  MetricsHub* metrics_;
  trace::Recorder* recorder_ = nullptr;
  ClientConfig config_;
  net::NodeId node_id_;
  net::NodeId scheduler_ = net::kInvalidNode;
  net::NodeId standby_ = net::kInvalidNode;
  uint32_t next_jid_ = 0;
  uint64_t completions_ = 0;
  uint32_t consecutive_timeouts_ = 0;
  uint64_t rehomes_ = 0;
  TimeNs last_rehome_time_ = -1;  // timeouts of older attempts don't rehome
  std::unordered_map<net::TaskId, Pending, net::TaskIdHash> outstanding_;
};

}  // namespace draconis::cluster

#endif  // DRACONIS_CLUSTER_CLIENT_H_
