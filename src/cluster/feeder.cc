#include "cluster/feeder.h"

#include <utility>

#include "common/check.h"

namespace draconis::cluster {

Feeder::Feeder(sim::Simulator* simulator, const workload::JobStream* stream,
               size_t num_clients, Sink sink)
    : simulator_(simulator),
      stream_(stream),
      num_clients_(num_clients),
      sink_(std::move(sink)) {
  DRACONIS_CHECK(simulator != nullptr && stream != nullptr);
  DRACONIS_CHECK(num_clients >= 1);
  DRACONIS_CHECK(sink_ != nullptr);
}

void Feeder::Start() { ScheduleNext(); }

void Feeder::ScheduleNext() {
  if (done()) {
    return;
  }
  simulator_->ScheduleAt((*stream_)[next_].at, [this] { Fire(); });
}

void Feeder::Fire() {
  const workload::JobArrival& job = (*stream_)[next_];
  sink_(next_ % num_clients_, job.tasks);
  ++next_;
  ScheduleNext();
}

}  // namespace draconis::cluster
