#include "cluster/experiment.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "baselines/central_server.h"
#include "baselines/r2p2.h"
#include "baselines/racksched.h"
#include "baselines/sparrow.h"
#include "cluster/client.h"
#include "common/check.h"
#include "core/draconis_program.h"
#include "core/topology.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace draconis::cluster {

namespace {

// Incremental arrival feeder: schedules one event at a time so huge job
// streams don't materialize as a million queued closures.
class Feeder {
 public:
  Feeder(sim::Simulator* simulator, const workload::JobStream* stream,
         std::vector<Client*> clients)
      : simulator_(simulator), stream_(stream), clients_(std::move(clients)) {}

  void Start() { ScheduleNext(); }
  bool done() const { return next_ >= stream_->size(); }

 private:
  void ScheduleNext() {
    if (done()) {
      return;
    }
    simulator_->At((*stream_)[next_].at, [this] { Fire(); });
  }

  void Fire() {
    const workload::JobArrival& job = (*stream_)[next_];
    clients_[rr_ % clients_.size()]->SubmitJob(job.tasks);
    ++rr_;
    ++next_;
    ScheduleNext();
  }

  sim::Simulator* simulator_;
  const workload::JobStream* stream_;
  std::vector<Client*> clients_;
  size_t next_ = 0;
  size_t rr_ = 0;
};

uint32_t ExecPropsFor(const ExperimentConfig& config, size_t worker) {
  switch (config.policy) {
    case PolicyKind::kLocality:
      return static_cast<uint32_t>(worker);
    case PolicyKind::kResource:
      DRACONIS_CHECK_MSG(worker < config.worker_resources.size(),
                         "resource policy needs worker_resources for every worker");
      return config.worker_resources[worker];
    default:
      return 0;
  }
}

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDraconis:
      return "Draconis";
    case SchedulerKind::kDraconisDpdkServer:
      return "Draconis-DPDK-Server";
    case SchedulerKind::kDraconisSocketServer:
      return "Draconis-Socket-Server";
    case SchedulerKind::kR2P2:
      return "R2P2";
    case SchedulerKind::kRackSched:
      return "RackSched";
    case SchedulerKind::kSparrow:
      return "Sparrow";
  }
  return "unknown";
}

bool SchedulerKindFromName(const std::string& name, SchedulerKind* out) {
  DRACONIS_CHECK(out != nullptr);
  static constexpr SchedulerKind kAll[] = {
      SchedulerKind::kDraconis,           SchedulerKind::kDraconisDpdkServer,
      SchedulerKind::kDraconisSocketServer, SchedulerKind::kR2P2,
      SchedulerKind::kRackSched,          SchedulerKind::kSparrow,
  };
  const std::string lower = AsciiLower(name);
  for (SchedulerKind kind : kAll) {
    if (lower == AsciiLower(SchedulerKindName(kind))) {
      *out = kind;
      return true;
    }
  }
  // Short flag spellings.
  if (lower == "dpdk-server") {
    *out = SchedulerKind::kDraconisDpdkServer;
    return true;
  }
  if (lower == "socket-server") {
    *out = SchedulerKind::kDraconisSocketServer;
    return true;
  }
  return false;
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFcfs:
      return "fcfs";
    case PolicyKind::kPriority:
      return "priority";
    case PolicyKind::kResource:
      return "resource";
    case PolicyKind::kLocality:
      return "locality";
  }
  return "unknown";
}

bool PolicyKindFromName(const std::string& name, PolicyKind* out) {
  DRACONIS_CHECK(out != nullptr);
  for (PolicyKind kind : {PolicyKind::kFcfs, PolicyKind::kPriority, PolicyKind::kResource,
                          PolicyKind::kLocality}) {
    if (AsciiLower(name) == PolicyKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  DRACONIS_CHECK(config.num_workers >= 1 && config.executors_per_worker >= 1);
  DRACONIS_CHECK(config.num_clients >= 1);

  const workload::JobStream& stream = config.stream;
  const TimeNs last_arrival = stream.empty() ? 0 : stream.back().at;
  const TimeNs horizon =
      config.horizon > 0 ? config.horizon : last_arrival + FromMillis(50);
  DRACONIS_CHECK_MSG(config.warmup < horizon, "warmup must end before the horizon");

  sim::Simulator simulator;
  net::NetworkConfig net_config = config.network;
  net_config.seed = config.seed * 7919 + 1;
  net::Network network(&simulator, net_config);

  // Task-lifecycle tracing: one recorder threaded through every layer.
  // Sampling is deterministic in the task id, so this cannot change results.
  std::unique_ptr<trace::Recorder> recorder;
  if (config.trace.enabled) {
    recorder = std::make_unique<trace::Recorder>(config.trace);
    network.SetRecorder(recorder.get());
  }

  const size_t total_executors = config.num_workers * config.executors_per_worker;
  const size_t priority_tracking =
      config.policy == PolicyKind::kPriority ? config.priority_levels : 0;
  auto metrics = std::make_unique<MetricsHub>(config.warmup, horizon, config.num_workers,
                                              priority_tracking, config.node_series_bucket);

  core::Topology topology = core::Topology::Uniform(config.num_workers, config.num_racks);

  // --- Scheduler construction ------------------------------------------------
  std::unique_ptr<core::SchedulingPolicy> policy;
  std::unique_ptr<core::DraconisProgram> draconis_program;
  std::unique_ptr<baselines::R2P2Program> r2p2_program;
  std::unique_ptr<baselines::RackSchedProgram> racksched_program;
  std::unique_ptr<p4::SwitchPipeline> pipeline;
  std::unique_ptr<baselines::CentralServerScheduler> server;
  std::vector<std::unique_ptr<baselines::SparrowScheduler>> sparrow_schedulers;

  std::vector<net::NodeId> scheduler_nodes;

  switch (config.scheduler) {
    case SchedulerKind::kDraconis: {
      switch (config.policy) {
        case PolicyKind::kFcfs:
          policy = std::make_unique<core::FcfsPolicy>();
          break;
        case PolicyKind::kPriority:
          policy = std::make_unique<core::PriorityPolicy>(config.priority_levels);
          break;
        case PolicyKind::kResource:
          policy = std::make_unique<core::ResourcePolicy>();
          break;
        case PolicyKind::kLocality:
          policy = std::make_unique<core::LocalityPolicy>(&topology, config.locality_limits);
          break;
      }
      core::DraconisConfig dc;
      dc.queue_capacity = config.queue_capacity;
      dc.shadow_copy_dequeue = config.shadow_copy_dequeue;
      dc.parallel_priority_stages = config.parallel_priority_stages;
      draconis_program = std::make_unique<core::DraconisProgram>(policy.get(), dc);
      draconis_program->SetRecorder(recorder.get());
      pipeline =
          std::make_unique<p4::SwitchPipeline>(&simulator, draconis_program.get(), config.pipeline);
      scheduler_nodes.push_back(pipeline->AttachNetwork(&network));
      break;
    }
    case SchedulerKind::kDraconisDpdkServer:
    case SchedulerKind::kDraconisSocketServer: {
      baselines::CentralServerConfig sc;
      sc.transport = config.scheduler == SchedulerKind::kDraconisDpdkServer
                         ? baselines::CentralServerConfig::Transport::kDpdk
                         : baselines::CentralServerConfig::Transport::kSocket;
      server = std::make_unique<baselines::CentralServerScheduler>(&simulator, &network, sc);
      server->SetRecorder(recorder.get());
      scheduler_nodes.push_back(server->node_id());
      break;
    }
    case SchedulerKind::kR2P2: {
      baselines::R2P2Config rc;
      rc.num_executors = total_executors;
      rc.jbsq_k = config.jbsq_k;
      r2p2_program = std::make_unique<baselines::R2P2Program>(rc);
      pipeline =
          std::make_unique<p4::SwitchPipeline>(&simulator, r2p2_program.get(), config.pipeline);
      scheduler_nodes.push_back(pipeline->AttachNetwork(&network));
      break;
    }
    case SchedulerKind::kRackSched: {
      baselines::RackSchedConfig rc;
      rc.num_nodes = config.num_workers;
      rc.seed = config.seed * 31 + 5;
      racksched_program = std::make_unique<baselines::RackSchedProgram>(rc);
      pipeline = std::make_unique<p4::SwitchPipeline>(&simulator, racksched_program.get(),
                                                      config.pipeline);
      scheduler_nodes.push_back(pipeline->AttachNetwork(&network));
      break;
    }
    case SchedulerKind::kSparrow: {
      baselines::SparrowConfig sc;
      for (size_t s = 0; s < std::max<size_t>(1, config.num_schedulers); ++s) {
        sc.seed = config.seed * 131 + s;
        sparrow_schedulers.push_back(
            std::make_unique<baselines::SparrowScheduler>(&simulator, &network, sc));
        scheduler_nodes.push_back(sparrow_schedulers.back()->node_id());
      }
      break;
    }
  }

  if (pipeline != nullptr) {
    pipeline->SetRecorder(recorder.get());
  }

  // --- Workers / executors ---------------------------------------------------
  std::vector<std::unique_ptr<Executor>> executors;
  std::vector<std::unique_ptr<baselines::R2P2Worker>> r2p2_workers;
  std::vector<std::unique_ptr<baselines::RackSchedWorker>> racksched_workers;
  std::vector<std::unique_ptr<baselines::SparrowWorker>> sparrow_workers;

  const bool pull_based = config.scheduler == SchedulerKind::kDraconis ||
                          config.scheduler == SchedulerKind::kDraconisDpdkServer ||
                          config.scheduler == SchedulerKind::kDraconisSocketServer;

  if (pull_based) {
    executors.reserve(total_executors);
    for (size_t w = 0; w < config.num_workers; ++w) {
      for (size_t e = 0; e < config.executors_per_worker; ++e) {
        ExecutorConfig ec = config.executor_template;
        ec.worker_node = static_cast<uint32_t>(w);
        ec.exec_props = ExecPropsFor(config, w);
        ec.drop_tasks = config.noop_executors;
        if (config.locality_access_model) {
          ec.topology = &topology;
        }
        ec.recorder = recorder.get();
        executors.push_back(std::make_unique<Executor>(&simulator, &network, metrics.get(), ec));
      }
    }
    // Stagger the initial pulls so the fleet doesn't arrive in lockstep.
    for (size_t i = 0; i < executors.size(); ++i) {
      executors[i]->Start(scheduler_nodes[0], static_cast<TimeNs>(1 + i * 211));
    }
  } else if (config.scheduler == SchedulerKind::kR2P2) {
    for (size_t w = 0; w < config.num_workers; ++w) {
      std::vector<size_t> slots;
      for (size_t e = 0; e < config.executors_per_worker; ++e) {
        slots.push_back(w * config.executors_per_worker + e);
      }
      r2p2_workers.push_back(std::make_unique<baselines::R2P2Worker>(
          &simulator, &network, metrics.get(), slots, static_cast<uint32_t>(w),
          scheduler_nodes[0]));
      for (size_t slot : slots) {
        r2p2_program->BindExecutor(slot, r2p2_workers.back()->node_id());
      }
    }
  } else if (config.scheduler == SchedulerKind::kRackSched) {
    for (size_t w = 0; w < config.num_workers; ++w) {
      racksched_workers.push_back(std::make_unique<baselines::RackSchedWorker>(
          &simulator, &network, metrics.get(), config.executors_per_worker,
          static_cast<uint32_t>(w), scheduler_nodes[0], TimeNs{3500}, TimeNs{200},
          config.racksched_intra_policy));
      racksched_program->BindNode(w, racksched_workers.back()->node_id());
    }
  } else {  // Sparrow
    std::vector<net::NodeId> worker_nodes;
    for (size_t w = 0; w < config.num_workers; ++w) {
      sparrow_workers.push_back(std::make_unique<baselines::SparrowWorker>(
          &simulator, &network, metrics.get(), config.executors_per_worker,
          static_cast<uint32_t>(w)));
      worker_nodes.push_back(sparrow_workers.back()->node_id());
    }
    for (auto& scheduler : sparrow_schedulers) {
      scheduler->SetWorkers(worker_nodes);
    }
  }

  // --- Clients ----------------------------------------------------------------
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client*> client_ptrs;
  for (size_t c = 0; c < config.num_clients; ++c) {
    ClientConfig cc;
    cc.uid = static_cast<uint32_t>(c);
    cc.timeout_multiplier = config.timeout_multiplier;
    cc.timeout_floor = config.timeout_floor;
    cc.fire_and_forget = config.noop_executors;
    if (config.max_tasks_per_packet > 0) {
      cc.max_tasks_per_packet = config.max_tasks_per_packet;
    } else if (config.scheduler == SchedulerKind::kR2P2 ||
               config.scheduler == SchedulerKind::kRackSched) {
      cc.max_tasks_per_packet = 1;  // these route one RPC per packet
    }
    if (config.scheduler == SchedulerKind::kSparrow) {
      cc.host_profile = baselines::SparrowConfig::Profile();
    }
    cc.recorder = recorder.get();
    clients.push_back(std::make_unique<Client>(&simulator, &network, metrics.get(), cc));
    clients.back()->SetScheduler(scheduler_nodes[c % scheduler_nodes.size()]);
    client_ptrs.push_back(clients.back().get());
  }

  Feeder feeder(&simulator, &stream, client_ptrs);
  feeder.Start();

  // No-op throughput accounting: snapshot decision counts at the window
  // edges (executor pulls for pull-based kinds, worker completions for
  // push-based ones).
  uint64_t pulls_at_warmup = 0;
  uint64_t pulls_at_end = 0;
  if (config.noop_executors) {
    const auto count_decisions = [&] {
      uint64_t total = metrics->total_node_completions();
      for (const auto& ex : executors) {
        total += ex->tasks_executed();
      }
      return total;
    };
    simulator.At(config.warmup, [&] { pulls_at_warmup = count_decisions(); });
    simulator.At(horizon, [&] { pulls_at_end = count_decisions(); });
  }

  ExperimentResult result;

  // Poll for drain; once everything is done, drop the remaining events
  // (idle executor polling would otherwise run forever). A reusable timer
  // whose callback re-arms it replaces the old heap-allocated
  // self-referencing closure.
  sim::Timer drain_check;
  if (config.run_to_completion) {
    const TimeNs poll = FromMillis(10);
    drain_check.Bind(&simulator, [&, poll] {
      size_t outstanding = 0;
      for (const auto& client : clients) {
        outstanding += client->outstanding();
      }
      if (feeder.done() && outstanding == 0 && simulator.Now() > last_arrival) {
        result.drain_time = simulator.Now();
        simulator.Clear();
        return;
      }
      drain_check.ScheduleAfter(poll);
    });
    drain_check.ScheduleAfter(poll);
  }

  simulator.RunUntil(horizon + config.drain_margin);

  if (recorder != nullptr) {
    recorder->FinalizeAt(simulator.Now());
    result.trace = std::move(recorder);
  }

  // --- Harvest -----------------------------------------------------------------
  if (pipeline != nullptr) {
    result.switch_counters = pipeline->counters();
    result.recirculation_share = result.switch_counters.RecirculationShare();
    result.recirc_drops = result.switch_counters.recirc_drops;
  }
  if (draconis_program != nullptr) {
    const core::DraconisCounters& c = draconis_program->counters();
    result.counters.tasks_enqueued = c.tasks_enqueued;
    result.counters.tasks_assigned = c.tasks_assigned;
    result.counters.noops_sent = c.noops_sent;
    result.counters.queue_full_errors = c.queue_full_errors;
    result.counters.acks_sent = c.acks_sent;
    result.counters.add_repairs = c.add_repairs;
    result.counters.retrieve_repairs = c.retrieve_repairs;
    result.counters.swap_walks_started = c.swap_walks_started;
    result.counters.swap_exchanges = c.swap_exchanges;
    result.counters.swap_requeues = c.swap_requeues;
    result.counters.priority_probes = c.priority_probes;
  }
  if (r2p2_program != nullptr) {
    const baselines::R2P2Counters& c = r2p2_program->counters();
    result.counters.tasks_pushed = c.tasks_pushed;
    result.counters.credit_wait_recirculations = c.credit_wait_recirculations;
    result.counters.credits = c.credits;
  }
  if (racksched_program != nullptr) {
    const baselines::RackSchedCounters& c = racksched_program->counters();
    result.counters.tasks_pushed = c.tasks_pushed;
    result.counters.credits = c.credits;
  }
  for (const auto& s : sparrow_schedulers) {
    result.counters.probes_sent += s->counters().probes_sent;
    result.counters.tasks_launched += s->counters().tasks_launched;
    result.counters.empty_get_tasks += s->counters().empty_get_tasks;
  }
  if (server != nullptr) {
    const baselines::CentralServerCounters& c = server->counters();
    result.counters.tasks_enqueued = c.tasks_enqueued;
    result.counters.tasks_assigned = c.tasks_assigned;
    result.counters.parked_requests = c.parked_requests;
    result.counters.queue_full_errors = c.queue_full_errors;
  }

  const size_t offered_tasks = workload::TotalTasks(stream);
  const double stream_seconds = last_arrival > 0 ? ToSeconds(last_arrival) : 1.0;
  result.offered_tasks_per_second = static_cast<double>(offered_tasks) / stream_seconds;
  result.offered_utilization =
      static_cast<double>(workload::TotalWork(stream)) /
      (static_cast<double>(last_arrival > 0 ? last_arrival : 1) *
       static_cast<double>(total_executors));
  if (offered_tasks > 0) {
    result.drop_fraction =
        static_cast<double>(result.recirc_drops) / static_cast<double>(offered_tasks);
  }

  const double window_seconds = ToSeconds(horizon - config.warmup);
  if (config.noop_executors) {
    result.throughput_tps =
        static_cast<double>(pulls_at_end - pulls_at_warmup) / window_seconds;
  } else {
    result.throughput_tps = metrics->CompletionThroughput();
  }
  result.executor_busy_fraction =
      static_cast<double>(metrics->total_busy()) /
      (static_cast<double>(horizon - config.warmup) * static_cast<double>(total_executors));

  result.metrics = std::move(metrics);
  return result;
}

}  // namespace draconis::cluster
