#include "cluster/experiment.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <utility>

#include "cluster/client.h"
#include "cluster/deployment.h"
#include "cluster/feeder.h"
#include "cluster/testbed.h"
#include "common/check.h"
#include "fault/injector.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace draconis::cluster {

namespace {

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

TimeNs EffectiveHorizon(const ExperimentConfig& config, TimeNs last_arrival) {
  return config.horizon > 0 ? config.horizon : last_arrival + FromMillis(50);
}

}  // namespace

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFcfs:
      return "fcfs";
    case PolicyKind::kPriority:
      return "priority";
    case PolicyKind::kResource:
      return "resource";
    case PolicyKind::kLocality:
      return "locality";
  }
  return "unknown";
}

std::vector<topology::RackSpec> EffectiveRackSpecs(const ExperimentConfig& config) {
  if (config.cluster.enabled()) {
    return config.cluster.racks;
  }
  // Legacy single-switch layout: one rack shaped by the flat knobs.
  return {topology::RackSpec{config.num_workers, config.executors_per_worker}};
}

bool PolicyKindFromName(const std::string& name, PolicyKind* out) {
  DRACONIS_CHECK(out != nullptr);
  for (PolicyKind kind : {PolicyKind::kFcfs, PolicyKind::kPriority, PolicyKind::kResource,
                          PolicyKind::kLocality}) {
    if (AsciiLower(name) == PolicyKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string ExperimentConfig::Validate() const {
  if (num_workers < 1) {
    return "num_workers must be >= 1";
  }
  if (executors_per_worker < 1) {
    return "executors_per_worker must be >= 1";
  }
  if (num_clients < 1) {
    return "num_clients must be >= 1";
  }
  if (num_schedulers < 1) {
    return "num_schedulers must be >= 1";
  }

  const DeploymentInfo& info = DeploymentRegistry::Get().Info(scheduler);
  if (num_schedulers > 1 && !info.multi_scheduler) {
    return std::string(info.canonical_name) +
           " deploys a single scheduler; num_schedulers > 1 is only valid for "
           "multi-scheduler kinds (Sparrow)";
  }
  bool policy_supported = false;
  for (PolicyKind p : info.policies) {
    policy_supported = policy_supported || p == policy;
  }
  if (!policy_supported) {
    return std::string(info.canonical_name) + " ignores policy '" +
           PolicyKindName(policy) + "'; it only supports its own scheduling discipline";
  }
  if (policy == PolicyKind::kResource && worker_resources.size() < num_workers) {
    return "resource policy needs a worker_resources bitmap for every worker (" +
           std::to_string(worker_resources.size()) + " given, " +
           std::to_string(num_workers) + " workers)";
  }

  if (switch_policy != core::SwitchPolicy::kFifo) {
    bool switch_policy_supported = false;
    for (core::SwitchPolicy p : info.switch_policies) {
      switch_policy_supported = switch_policy_supported || p == switch_policy;
    }
    if (!switch_policy_supported) {
      return std::string(info.canonical_name) + " runs the fixed FIFO switch queue; "
             "switch policy '" + core::SwitchPolicyName(switch_policy) +
             "' needs a PIFO-capable scheduler kind (draconis)";
    }
    if (policy != PolicyKind::kFcfs) {
      return std::string("switch policy '") + core::SwitchPolicyName(switch_policy) +
             "' replaces the retrieval discipline; combine it with the fcfs policy "
             "(priority/resource/locality need the per-level queues and swap walks)";
    }
    if (parallel_priority_stages) {
      return "parallel_priority_stages is a per-level-queue layout; the single PIFO "
             "has no levels to probe";
    }
  }
  if (switch_policy == core::SwitchPolicy::kWfq) {
    if (wfq_weights.empty()) {
      return "wfq switch policy needs at least one tenant weight";
    }
    for (uint32_t w : wfq_weights) {
      if (w == 0) {
        return "wfq tenant weights must be positive";
      }
    }
  }

  const std::string cluster_error = cluster.Validate();
  if (!cluster_error.empty()) {
    return "cluster topology: " + cluster_error;
  }
  if (cluster.enabled()) {
    if (!info.multi_rack) {
      return std::string(info.canonical_name) +
             " deploys a single switch; a multi-rack ClusterTopology needs a "
             "multi-rack-capable scheduler kind (draconis)";
    }
    if (num_schedulers > 1) {
      return "a multi-rack ClusterTopology already deploys one scheduler per rack; "
             "num_schedulers must be 1";
    }
    if (policy != PolicyKind::kFcfs) {
      return std::string("policy '") + PolicyKindName(policy) +
             "' keeps per-switch state the cross-rack placement layer does not shard; "
             "combine a ClusterTopology with the fcfs policy";
    }
    if (locality_access_model) {
      return "locality_access_model maps workers onto the locality policy's data racks, "
             "which a multi-rack ClusterTopology replaces; disable one of the two";
    }
  }

  const TimeNs last_arrival = stream.empty() ? 0 : stream.back().at;
  if (warmup >= EffectiveHorizon(*this, last_arrival)) {
    return "warmup must end before the horizon (warmup=" + std::to_string(warmup) +
           " ns, horizon=" + std::to_string(EffectiveHorizon(*this, last_arrival)) + " ns)";
  }

  const std::string fault_error = fault_plan.Validate();
  if (!fault_error.empty()) {
    return "fault plan: " + fault_error;
  }
  if (fault_plan.has_scheduler_failover() && !info.failover) {
    return std::string(info.canonical_name) +
           " has no standby deployment; scheduler_failover fault events need a "
           "failover-capable scheduler kind";
  }
  if (!fault_plan.empty() && fault_settle <= 0) {
    return "fault_settle must be > 0 when a fault plan is set";
  }
  return "";
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  const std::string error = config.Validate();
  DRACONIS_CHECK_MSG(error.empty(), "invalid ExperimentConfig: " + error);

  const workload::JobStream& stream = config.stream;
  const TimeNs last_arrival = stream.empty() ? 0 : stream.back().at;
  const TimeNs horizon = EffectiveHorizon(config, last_arrival);

  const std::vector<topology::RackSpec> rack_specs = EffectiveRackSpecs(config);
  const size_t num_racks_eff = rack_specs.size();
  size_t total_workers = 0;
  size_t total_executors = 0;
  for (const topology::RackSpec& rack : rack_specs) {
    total_workers += rack.num_workers;
    total_executors += rack.executors();
  }

  TestbedConfig tc;
  tc.seed = config.seed;
  tc.num_workers = total_workers;
  tc.num_racks = config.num_racks;
  tc.warmup = config.warmup;
  tc.horizon = horizon;
  tc.priority_levels =
      config.policy == PolicyKind::kPriority ? config.priority_levels : 0;
  tc.node_series_bucket = config.node_series_bucket;
  tc.network = config.network;
  if (config.cluster.enabled()) {
    // The aggregation tier is part of the topology spec; thread it into the
    // fabric's two-tier latency model.
    tc.network.aggregation_latency = config.cluster.aggregation_latency;
    tc.network.agg_ns_per_byte = config.cluster.agg_ns_per_byte;
  }
  tc.trace = config.trace;
  tc.sim_queue = config.sim_queue;
  Testbed testbed(tc);
  sim::Simulator& simulator = testbed.simulator();

  // Kind-specific construction lives entirely in the deployment: scheduler
  // first, then workers, then clients (registration order fixes fabric
  // NodeIds, which the determinism goldens pin).
  std::unique_ptr<SchedulerDeployment> deployment = DeploymentRegistry::Get().Make(config);
  deployment->Build(testbed);
  deployment->WireWorkers(testbed);
  const std::vector<net::NodeId>& scheduler_nodes = deployment->scheduler_nodes();
  DRACONIS_CHECK_MSG(!scheduler_nodes.empty(), "deployment built no scheduler");

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client*> client_ptrs;
  for (size_t c = 0; c < config.num_clients; ++c) {
    ClientConfig cc;
    cc.uid = static_cast<uint32_t>(c);
    cc.timeout_multiplier = config.timeout_multiplier;
    cc.timeout_floor = config.timeout_floor;
    cc.fire_and_forget = config.noop_executors;
    if (config.max_tasks_per_packet > 0) {
      cc.max_tasks_per_packet = config.max_tasks_per_packet;
    }
    deployment->ConfigureClient(cc);
    clients.push_back(std::make_unique<Client>(&testbed, cc));
    // Round-robin homing; under a multi-rack topology scheduler_nodes is the
    // rack-ordered ToR table, so this is also the client's home rack.
    size_t sched_index = c % scheduler_nodes.size();
    if (config.cluster.enabled() &&
        config.cluster.client_homing == topology::ClientHoming::kFirstRack) {
      sched_index = 0;
    }
    clients.back()->SetScheduler(scheduler_nodes[sched_index]);
    if (num_racks_eff > 1) {
      testbed.network().SetNodeRack(clients.back()->node_id(),
                                    static_cast<uint32_t>(sched_index));
    }
    // The standby (when built) protects scheduler_nodes[0]; only clients
    // homed there arm the timeout-rehome fallback. Legacy single-switch
    // configs have sched_index == 0 for every client.
    if (!deployment->standby_nodes().empty() && sched_index == 0) {
      clients.back()->SetStandby(deployment->standby_nodes()[0]);
    }
    client_ptrs.push_back(clients.back().get());
  }

  // §3.3: arm the fault plan. Fault randomness draws from its own seed
  // domain and an empty plan schedules nothing, so a fault-free run stays
  // bit-identical to one without the fault layer (determinism_test pins it).
  fault::Injector injector(
      &testbed, config.fault_plan,
      fault::InjectorHooks{
          [&](const fault::NodeRef& ref) -> std::vector<net::NodeId> {
            switch (ref.role) {
              case fault::NodeRef::Role::kScheduler:
                return deployment->scheduler_nodes();
              case fault::NodeRef::Role::kStandby:
                return deployment->standby_nodes();
              case fault::NodeRef::Role::kExecutor:
                return deployment->WorkerNodes();
              case fault::NodeRef::Role::kClient: {
                std::vector<net::NodeId> nodes;
                nodes.reserve(clients.size());
                for (const auto& client : clients) {
                  nodes.push_back(client->node_id());
                }
                return nodes;
              }
              case fault::NodeRef::Role::kNode:
                break;  // resolved by the injector itself
            }
            return {};
          },
          [&] { deployment->Failover(testbed); }});
  injector.Arm();
  if (!config.fault_plan.empty()) {
    // During->post boundary: an event that never clears (a failover) counts
    // as cleared `fault_settle` after its onset for the phase histograms.
    TimeNs fault_clear = 0;
    for (const fault::FaultEvent& e : config.fault_plan.events()) {
      fault_clear = std::max(
          fault_clear, e.end != fault::FaultEvent::kNever ? e.end : e.start + config.fault_settle);
    }
    testbed.metrics()->ConfigureFaultWindow(config.fault_plan.first_onset(), fault_clear);
  }

  Feeder feeder(&simulator, &stream, client_ptrs.size(),
                [&client_ptrs](size_t client, const std::vector<workload::TaskSpec>& tasks) {
                  client_ptrs[client]->SubmitJob(tasks);
                });
  feeder.Start();

  // No-op throughput accounting: snapshot the deployment's decision count at
  // the window edges (executor pulls for pull-based kinds, worker
  // completions for push-based ones).
  uint64_t decisions_at_warmup = 0;
  uint64_t decisions_at_end = 0;
  if (config.noop_executors) {
    simulator.ScheduleAt(config.warmup,
                 [&] { decisions_at_warmup = deployment->DecisionCount(testbed); });
    simulator.ScheduleAt(horizon, [&] { decisions_at_end = deployment->DecisionCount(testbed); });
  }

  ExperimentResult result;

  // Poll for drain; once everything is done, drop the remaining events
  // (idle executor polling would otherwise run forever).
  sim::Timer drain_check;
  if (config.run_to_completion) {
    const TimeNs poll = FromMillis(10);
    drain_check.Bind(&simulator, [&, poll] {
      size_t outstanding = 0;
      for (const auto& client : clients) {
        outstanding += client->outstanding();
      }
      if (feeder.done() && outstanding == 0 && simulator.Now() > last_arrival) {
        result.drain_time = simulator.Now();
        simulator.Clear();
        return;
      }
      drain_check.ScheduleAfter(poll);
    });
    drain_check.ScheduleAfter(poll);
  }

  simulator.RunUntil(horizon + config.drain_margin);

  if (testbed.recorder() != nullptr) {
    testbed.recorder()->FinalizeAt(simulator.Now());
    result.trace = testbed.TakeRecorder();
  }

  deployment->Harvest(result);

  MetricsHub* metrics = testbed.metrics();
  const size_t offered_tasks = workload::TotalTasks(stream);
  const double stream_seconds = last_arrival > 0 ? ToSeconds(last_arrival) : 1.0;
  result.offered_tasks_per_second = static_cast<double>(offered_tasks) / stream_seconds;
  result.offered_utilization =
      static_cast<double>(workload::TotalWork(stream)) /
      (static_cast<double>(last_arrival > 0 ? last_arrival : 1) *
       static_cast<double>(total_executors));
  if (offered_tasks > 0) {
    result.drop_fraction =
        static_cast<double>(result.recirc_drops) / static_cast<double>(offered_tasks);
  }

  const double window_seconds = ToSeconds(horizon - config.warmup);
  if (config.noop_executors) {
    result.throughput_tps =
        static_cast<double>(decisions_at_end - decisions_at_warmup) / window_seconds;
  } else {
    result.throughput_tps = metrics->CompletionThroughput();
  }
  result.executor_busy_fraction =
      static_cast<double>(metrics->total_busy()) /
      (static_cast<double>(horizon - config.warmup) * static_cast<double>(total_executors));
  if (config.cluster.enabled()) {
    result.cross_rack_packets = testbed.network().cross_rack_packets();
  }

  if (!config.fault_plan.empty()) {
    RecoveryStats& rec = result.recovery;
    rec.fault_plan_active = true;
    rec.fault_start = metrics->fault_start();
    rec.fault_clear = metrics->fault_clear();
    rec.time_to_recover = metrics->TimeToRecover();
    rec.unavailability = metrics->UnavailabilityGap();
    rec.tasks_resubmitted = metrics->timeout_resubmissions();
    for (const auto& client : clients) {
      rec.tasks_lost += client->outstanding();
    }
    rec.client_rehomes = metrics->client_rehomes();
    rec.executor_rehomes = metrics->executor_rehomes();
    rec.packets_dropped = testbed.network().packets_dropped();
    rec.fault_events_started = injector.events_started();
    rec.fault_events_cleared = injector.events_cleared();
  }

  result.metrics = testbed.TakeMetrics();
  return result;
}

}  // namespace draconis::cluster
