#include "cluster/deployment.h"

#include <cctype>
#include <utility>

#include "baselines/central_server_deployment.h"
#include "baselines/r2p2_deployment.h"
#include "baselines/racksched_deployment.h"
#include "baselines/sparrow_deployment.h"
#include "common/check.h"
#include "core/draconis_deployment.h"

namespace draconis::cluster {

namespace {

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// PullBasedDeployment
// ---------------------------------------------------------------------------

uint32_t PullBasedDeployment::ExecPropsFor(size_t worker) const {
  switch (config().policy) {
    case PolicyKind::kLocality:
      return static_cast<uint32_t>(worker);
    case PolicyKind::kResource:
      DRACONIS_CHECK_MSG(worker < config().worker_resources.size(),
                         "resource policy needs worker_resources for every worker");
      return config().worker_resources[worker];
    default:
      return 0;
  }
}

void PullBasedDeployment::WireWorkers(Testbed& testbed) {
  DRACONIS_CHECK_MSG(!scheduler_nodes_.empty(), "WireWorkers before Build");
  const ExperimentConfig& cfg = config();
  executors_.reserve(cfg.num_workers * cfg.executors_per_worker);
  for (size_t w = 0; w < cfg.num_workers; ++w) {
    for (size_t e = 0; e < cfg.executors_per_worker; ++e) {
      ExecutorConfig ec = cfg.executor_template;
      ec.worker_node = static_cast<uint32_t>(w);
      ec.exec_props = ExecPropsFor(w);
      ec.drop_tasks = cfg.noop_executors;
      if (cfg.locality_access_model) {
        ec.topology = &testbed.topology();
      }
      executors_.push_back(std::make_unique<Executor>(&testbed, ec));
    }
  }
  // Stagger the initial pulls so the fleet doesn't arrive in lockstep.
  for (size_t i = 0; i < executors_.size(); ++i) {
    executors_[i]->Start(scheduler_nodes_[0], static_cast<TimeNs>(1 + i * 211));
  }
}

std::vector<net::NodeId> PullBasedDeployment::WorkerNodes() const {
  std::vector<net::NodeId> nodes;
  nodes.reserve(executors_.size());
  for (const auto& ex : executors_) {
    nodes.push_back(ex->node_id());
  }
  return nodes;
}

void PullBasedDeployment::RehomeExecutors(Testbed& testbed, net::NodeId scheduler) {
  for (auto& ex : executors_) {
    ex->Rehome(scheduler);
    testbed.metrics()->RecordExecutorRehome();
  }
}

uint64_t PullBasedDeployment::DecisionCount(Testbed& testbed) const {
  uint64_t total = testbed.metrics()->total_node_completions();
  for (const auto& ex : executors_) {
    total += ex->tasks_executed();
  }
  return total;
}

// ---------------------------------------------------------------------------
// DeploymentRegistry
// ---------------------------------------------------------------------------

DeploymentRegistry::DeploymentRegistry() {
  // Registration order == SchedulerKind enumeration order; Info() depends on
  // it. Static self-registration would be dead-stripped out of the static
  // library, so the kinds are aggregated explicitly here.
  infos_.push_back(core::DraconisDeploymentInfo());
  infos_.push_back(baselines::DpdkServerDeploymentInfo());
  infos_.push_back(baselines::SocketServerDeploymentInfo());
  infos_.push_back(baselines::R2P2DeploymentInfo());
  infos_.push_back(baselines::RackSchedDeploymentInfo());
  infos_.push_back(baselines::SparrowDeploymentInfo());
  for (size_t i = 0; i < infos_.size(); ++i) {
    DRACONIS_CHECK_MSG(static_cast<size_t>(infos_[i].kind) == i,
                       "registry order must match the SchedulerKind enum");
  }
}

const DeploymentRegistry& DeploymentRegistry::Get() {
  static const DeploymentRegistry registry;
  return registry;
}

const DeploymentInfo& DeploymentRegistry::Info(SchedulerKind kind) const {
  const size_t index = static_cast<size_t>(kind);
  DRACONIS_CHECK(index < infos_.size());
  return infos_[index];
}

const DeploymentInfo* DeploymentRegistry::FindByName(const std::string& name) const {
  const std::string lower = AsciiLower(name);
  for (const DeploymentInfo& info : infos_) {
    if (lower == AsciiLower(info.canonical_name) || lower == info.flag_name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> DeploymentRegistry::FlagChoices() const {
  std::vector<std::string> choices;
  choices.reserve(infos_.size());
  for (const DeploymentInfo& info : infos_) {
    choices.push_back(info.flag_name);
  }
  return choices;
}

std::unique_ptr<SchedulerDeployment> DeploymentRegistry::Make(
    const ExperimentConfig& config) const {
  return Info(config.scheduler).make(config);
}

// ---------------------------------------------------------------------------
// Registry-backed name round trips (declared in experiment.h)
// ---------------------------------------------------------------------------

const char* SchedulerKindName(SchedulerKind kind) {
  return DeploymentRegistry::Get().Info(kind).canonical_name;
}

bool SchedulerKindFromName(const std::string& name, SchedulerKind* out) {
  DRACONIS_CHECK(out != nullptr);
  const DeploymentInfo* info = DeploymentRegistry::Get().FindByName(name);
  if (info == nullptr) {
    return false;
  }
  *out = info->kind;
  return true;
}

}  // namespace draconis::cluster
