#include "cluster/deployment.h"

#include <cctype>
#include <utility>

#include "baselines/central_server_deployment.h"
#include "baselines/r2p2_deployment.h"
#include "baselines/racksched_deployment.h"
#include "baselines/sparrow_deployment.h"
#include "common/check.h"
#include "core/draconis_deployment.h"

namespace draconis::cluster {

namespace {

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// PullBasedDeployment
// ---------------------------------------------------------------------------

uint32_t PullBasedDeployment::ExecPropsFor(size_t worker) const {
  switch (config().policy) {
    case PolicyKind::kLocality:
      return static_cast<uint32_t>(worker);
    case PolicyKind::kResource:
      DRACONIS_CHECK_MSG(worker < config().worker_resources.size(),
                         "resource policy needs worker_resources for every worker");
      return config().worker_resources[worker];
    default:
      return 0;
  }
}

void PullBasedDeployment::WireWorkers(Testbed& testbed) {
  DRACONIS_CHECK_MSG(!scheduler_nodes_.empty(), "WireWorkers before Build");
  const ExperimentConfig& cfg = config();
  const std::vector<topology::RackSpec> racks = EffectiveRackSpecs(cfg);
  const bool multi_rack = cfg.cluster.enabled();
  DRACONIS_CHECK_MSG(!multi_rack || scheduler_nodes_.size() == racks.size(),
                     "multi-rack deployment must build one scheduler per rack");
  size_t total_executors = 0;
  for (const topology::RackSpec& rack : racks) {
    total_executors += rack.executors();
  }
  executors_.reserve(total_executors);
  rack_first_executor_.clear();
  size_t worker = 0;  // global worker index: unique across racks
  for (size_t r = 0; r < racks.size(); ++r) {
    rack_first_executor_.push_back(executors_.size());
    for (size_t w = 0; w < racks[r].num_workers; ++w, ++worker) {
      for (size_t e = 0; e < racks[r].executors_per_worker; ++e) {
        ExecutorConfig ec = cfg.executor_template;
        ec.worker_node = static_cast<uint32_t>(worker);
        ec.exec_props = ExecPropsFor(worker);
        ec.drop_tasks = cfg.noop_executors;
        if (cfg.locality_access_model) {
          ec.topology = &testbed.topology();
        }
        executors_.push_back(std::make_unique<Executor>(&testbed, ec));
        if (multi_rack) {
          testbed.network().SetNodeRack(executors_.back()->node_id(), static_cast<uint32_t>(r));
        }
      }
    }
  }
  rack_first_executor_.push_back(executors_.size());
  // Stagger the initial pulls so the fleet doesn't arrive in lockstep; each
  // executor pulls from its own rack's ToR. Legacy (no ClusterTopology)
  // configs keep the unwrapped global stagger the determinism goldens pin.
  // Topology configs wrap a rack-local stagger: an unwrapped 10^5-executor
  // fleet would spread its first pulls over tens of milliseconds — past any
  // microsecond-scale measurement window — while the wrap keeps every start
  // inside ~54 us and degenerates to the legacy schedule below 256 executors
  // (which is what keeps the 1-rack topology bit-identical to the
  // single-switch golden).
  constexpr size_t kStaggerWrap = 256;
  for (size_t r = 0; r < racks.size(); ++r) {
    const net::NodeId tor = scheduler_nodes_[multi_rack ? r : 0];
    for (size_t i = rack_first_executor_[r]; i < rack_first_executor_[r + 1]; ++i) {
      const size_t slot = multi_rack ? (i - rack_first_executor_[r]) % kStaggerWrap : i;
      executors_[i]->Start(tor, static_cast<TimeNs>(1 + slot * 211));
    }
  }
}

std::vector<net::NodeId> PullBasedDeployment::WorkerNodes() const {
  std::vector<net::NodeId> nodes;
  nodes.reserve(executors_.size());
  for (const auto& ex : executors_) {
    nodes.push_back(ex->node_id());
  }
  return nodes;
}

void PullBasedDeployment::RehomeRackExecutors(Testbed& testbed, size_t rack,
                                              net::NodeId scheduler) {
  DRACONIS_CHECK(rack + 1 < rack_first_executor_.size());
  for (size_t i = rack_first_executor_[rack]; i < rack_first_executor_[rack + 1]; ++i) {
    executors_[i]->Rehome(scheduler);
    testbed.metrics()->RecordExecutorRehome();
  }
}

uint64_t PullBasedDeployment::DecisionCount(Testbed& testbed) const {
  uint64_t total = testbed.metrics()->total_node_completions();
  for (const auto& ex : executors_) {
    total += ex->tasks_executed();
  }
  return total;
}

// ---------------------------------------------------------------------------
// DeploymentRegistry
// ---------------------------------------------------------------------------

DeploymentRegistry::DeploymentRegistry() {
  // Registration order == SchedulerKind enumeration order; Info() depends on
  // it. Static self-registration would be dead-stripped out of the static
  // library, so the kinds are aggregated explicitly here.
  infos_.push_back(core::DraconisDeploymentInfo());
  infos_.push_back(baselines::DpdkServerDeploymentInfo());
  infos_.push_back(baselines::SocketServerDeploymentInfo());
  infos_.push_back(baselines::R2P2DeploymentInfo());
  infos_.push_back(baselines::RackSchedDeploymentInfo());
  infos_.push_back(baselines::SparrowDeploymentInfo());
  for (size_t i = 0; i < infos_.size(); ++i) {
    DRACONIS_CHECK_MSG(static_cast<size_t>(infos_[i].kind) == i,
                       "registry order must match the SchedulerKind enum");
  }
}

const DeploymentRegistry& DeploymentRegistry::Get() {
  static const DeploymentRegistry registry;
  return registry;
}

const DeploymentInfo& DeploymentRegistry::Info(SchedulerKind kind) const {
  const size_t index = static_cast<size_t>(kind);
  DRACONIS_CHECK(index < infos_.size());
  return infos_[index];
}

const DeploymentInfo* DeploymentRegistry::FindByName(const std::string& name) const {
  const std::string lower = AsciiLower(name);
  for (const DeploymentInfo& info : infos_) {
    if (lower == AsciiLower(info.canonical_name) || lower == info.flag_name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> DeploymentRegistry::FlagChoices() const {
  std::vector<std::string> choices;
  choices.reserve(infos_.size());
  for (const DeploymentInfo& info : infos_) {
    choices.push_back(info.flag_name);
  }
  return choices;
}

std::unique_ptr<SchedulerDeployment> DeploymentRegistry::Make(
    const ExperimentConfig& config) const {
  return Info(config.scheduler).make(config);
}

// ---------------------------------------------------------------------------
// Registry-backed name round trips (declared in experiment.h)
// ---------------------------------------------------------------------------

const char* SchedulerKindName(SchedulerKind kind) {
  return DeploymentRegistry::Get().Info(kind).canonical_name;
}

bool SchedulerKindFromName(const std::string& name, SchedulerKind* out) {
  DRACONIS_CHECK(out != nullptr);
  const DeploymentInfo* info = DeploymentRegistry::Get().FindByName(name);
  if (info == nullptr) {
    return false;
  }
  *out = info->kind;
  return true;
}

}  // namespace draconis::cluster
