#include "topology/topology.h"

#include <cctype>

namespace draconis::topology {

namespace {

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* PlacementKindName(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kHome:
      return "home";
    case PlacementKind::kPowerOfTwo:
      return "power-of-two";
  }
  return "unknown";
}

bool PlacementKindFromName(const std::string& name, PlacementKind* out) {
  const std::string lower = AsciiLower(name);
  for (PlacementKind kind : {PlacementKind::kHome, PlacementKind::kPowerOfTwo}) {
    if (lower == PlacementKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

size_t ClusterTopology::total_workers() const {
  size_t total = 0;
  for (const RackSpec& rack : racks) {
    total += rack.num_workers;
  }
  return total;
}

size_t ClusterTopology::total_executors() const {
  size_t total = 0;
  for (const RackSpec& rack : racks) {
    total += rack.executors();
  }
  return total;
}

ClusterTopology ClusterTopology::Uniform(size_t num_racks, size_t workers_per_rack,
                                         size_t executors_per_worker) {
  ClusterTopology topo;
  topo.racks.assign(num_racks, RackSpec{workers_per_rack, executors_per_worker});
  return topo;
}

std::string ClusterTopology::Validate() const {
  if (!enabled()) {
    return "";
  }
  for (size_t r = 0; r < racks.size(); ++r) {
    if (racks[r].num_workers < 1) {
      return "rack " + std::to_string(r) + " has no workers";
    }
    if (racks[r].executors_per_worker < 1) {
      return "rack " + std::to_string(r) + " has no executors per worker";
    }
  }
  if (aggregation_latency < 0) {
    return "aggregation_latency must be >= 0";
  }
  if (agg_ns_per_byte < 0.0) {
    return "agg_ns_per_byte must be >= 0";
  }
  if (summary_period <= 0) {
    return "summary_period must be > 0";
  }
  return "";
}

}  // namespace draconis::topology
