// Cross-rack placement: the pluggable policy that decides, per submission,
// which rack's ToR a client-side packet is sent to (docs/topology.md).
//
// Contract: ChooseRack must return the home rack whenever the home ToR's
// summarized queue depth is at or below the overflow watermark, and it must
// not draw randomness on that fast path — a cluster that never overflows is
// bit-identical whatever policy is installed. Policies see only the
// DepthDirectory (the local rack's possibly-stale view of every ToR's queue
// depth, refreshed by real summary packets), never live switch state.

#ifndef DRACONIS_TOPOLOGY_PLACEMENT_H_
#define DRACONIS_TOPOLOGY_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "topology/topology.h"

namespace draconis::topology {

// One rack's view of a sibling ToR queue depth. updated_at is the simulation
// time the summary was *generated* (not received), so policies could reason
// about staleness; -1 means no summary has arrived yet (treated as depth 0).
struct RackDepthSummary {
  uint64_t depth = 0;
  TimeNs updated_at = -1;
};

// Per-rack replicated summary table: rack r's DepthDirectory holds r's local
// depth (refreshed synchronously by its SummaryPublisher) and the last
// summary received from each sibling.
class DepthDirectory {
 public:
  explicit DepthDirectory(size_t num_racks) : racks_(num_racks) {}

  void Update(uint32_t rack, uint64_t depth, TimeNs updated_at) {
    racks_[rack].depth = depth;
    racks_[rack].updated_at = updated_at;
  }

  const RackDepthSummary& rack(uint32_t r) const { return racks_[r]; }
  size_t num_racks() const { return racks_.size(); }

 private:
  std::vector<RackDepthSummary> racks_;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Picks the destination rack for one submission from a client homed on
  // `home`, given the home rack's current directory.
  virtual uint32_t ChooseRack(uint32_t home, const DepthDirectory& depths) = 0;
};

// Always the home ToR (placement disabled; the 1-rack degenerate case).
class HomeOnlyPlacement : public PlacementPolicy {
 public:
  uint32_t ChooseRack(uint32_t home, const DepthDirectory& depths) override {
    (void)depths;
    return home;
  }
};

// Power-of-two-choices over the replicated summaries (RackSched-style): when
// the home ToR's summarized depth exceeds the watermark, sample two sibling
// racks and forward to the one with the smaller summarized depth — unless
// even that sibling looks as loaded as home, in which case stay home (never
// forward onto a hotter rack on stale data).
class PowerOfTwoPlacement : public PlacementPolicy {
 public:
  PowerOfTwoPlacement(uint64_t overflow_watermark, uint64_t seed)
      : watermark_(overflow_watermark), rng_(seed) {}

  uint32_t ChooseRack(uint32_t home, const DepthDirectory& depths) override;

 private:
  uint64_t watermark_;
  Rng rng_;
};

// Builds the policy configured by `topo` for one rack. `seed` comes from the
// rack-indexed SeedDomain::kPlacement so adding racks never perturbs the
// streams of existing ones.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const ClusterTopology& topo, uint64_t seed);

}  // namespace draconis::topology

#endif  // DRACONIS_TOPOLOGY_PLACEMENT_H_
