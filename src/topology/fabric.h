// Runtime pieces of the multi-rack topology (docs/topology.md): the per-rack
// summary exchange (receives sibling queue-depth summaries), the per-rack
// summary publisher (broadcasts the local ToR depth as real packets on a
// timer), and the per-rack submission router clients consult per packet.
//
// All three are built by the deployment (core/draconis_deployment.cc) only
// when the topology has two or more racks; a 1-rack topology registers no
// extra endpoints and schedules no extra events, which is what keeps it
// bit-identical to the legacy single-switch layout.

#ifndef DRACONIS_TOPOLOGY_FABRIC_H_
#define DRACONIS_TOPOLOGY_FABRIC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "topology/placement.h"

namespace draconis::topology {

// Rack-local receiver for kQueueDepthSummary packets: updates this rack's
// DepthDirectory with the sender's (now stale by the flight time) depth.
class SummaryExchange : public net::Endpoint {
 public:
  // Registers itself on the fabric. The directory must outlive the exchange.
  SummaryExchange(net::Network* network, DepthDirectory* directory);

  net::NodeId node_id() const { return node_id_; }
  uint64_t summaries_received() const { return summaries_received_; }

  void HandlePacket(net::Packet pkt) override;

 private:
  DepthDirectory* directory_;
  net::NodeId node_id_;
  uint64_t summaries_received_ = 0;
};

// Periodically probes the local ToR queue depth, refreshes the local
// directory synchronously, and broadcasts the depth to every sibling
// exchange as real packets — so remote views pay serialization, the
// aggregation tier, and jitter like any other traffic.
class SummaryPublisher {
 public:
  using DepthProbe = std::function<uint64_t()>;

  SummaryPublisher(sim::Simulator* simulator, net::Network* network, uint32_t rack,
                   net::NodeId tor_node, DepthProbe probe, TimeNs period);

  void AddSubscriber(net::NodeId exchange_node) { subscribers_.push_back(exchange_node); }
  void SetLocalDirectory(DepthDirectory* directory) { local_directory_ = directory; }

  // First publish fires at `first_at`; callers stagger racks so ticks don't
  // collide (ordering between same-time events is still deterministic, this
  // just keeps the fabric from seeing synchronized bursts).
  void Start(TimeNs first_at);

  // §3.3 ToR failover: re-point the publisher at the promoted standby (new
  // source address + new depth probe). Subscribers are unchanged.
  void Retarget(net::NodeId tor_node, DepthProbe probe);

  uint64_t summaries_sent() const { return summaries_sent_; }

 private:
  void Tick();

  sim::Simulator* simulator_;
  net::Network* network_;
  uint32_t rack_;
  net::NodeId tor_node_;
  DepthProbe probe_;
  TimeNs period_;
  sim::Timer timer_;
  std::vector<net::NodeId> subscribers_;
  DepthDirectory* local_directory_ = nullptr;
  uint64_t summaries_sent_ = 0;
};

// Per-rack submission router: clients homed on this rack call Route once per
// job_submission packet. The ToR table is shared with the deployment, which
// swaps the entry for a failed ToR to its promoted standby.
class SubmissionRouter {
 public:
  SubmissionRouter(uint32_t home_rack, const std::vector<net::NodeId>* rack_tors,
                   const DepthDirectory* directory, PlacementPolicy* policy);

  // `home_tor` is the client's current scheduler address (it may have swapped
  // to the standby through timeout rehoming); it is returned verbatim for
  // home placements so the router never undoes a client-side rehome.
  net::NodeId Route(net::NodeId home_tor);

  uint32_t home_rack() const { return home_rack_; }
  uint64_t routed_home() const { return routed_home_; }
  uint64_t routed_cross() const { return routed_cross_; }

 private:
  uint32_t home_rack_;
  const std::vector<net::NodeId>* rack_tors_;
  const DepthDirectory* directory_;
  PlacementPolicy* policy_;
  uint64_t routed_home_ = 0;
  uint64_t routed_cross_ = 0;
};

}  // namespace draconis::topology

#endif  // DRACONIS_TOPOLOGY_FABRIC_H_
