#include "topology/fabric.h"

#include <utility>

#include "common/check.h"

namespace draconis::topology {

// ---------------------------------------------------------------------------
// SummaryExchange
// ---------------------------------------------------------------------------

SummaryExchange::SummaryExchange(net::Network* network, DepthDirectory* directory)
    : directory_(directory) {
  DRACONIS_CHECK(network != nullptr && directory != nullptr);
  node_id_ = network->Register(this, net::HostProfile::Wire());
}

void SummaryExchange::HandlePacket(net::Packet pkt) {
  if (pkt.op != net::OpCode::kQueueDepthSummary) {
    return;  // stray traffic; summaries are the only expected opcode
  }
  ++summaries_received_;
  // created_at is the generation time, so the recorded view is stale by
  // exactly the summary's flight time.
  directory_->Update(pkt.summary_rack, pkt.summary_depth, pkt.created_at);
}

// ---------------------------------------------------------------------------
// SummaryPublisher
// ---------------------------------------------------------------------------

SummaryPublisher::SummaryPublisher(sim::Simulator* simulator, net::Network* network, uint32_t rack,
                                   net::NodeId tor_node, DepthProbe probe, TimeNs period)
    : simulator_(simulator),
      network_(network),
      rack_(rack),
      tor_node_(tor_node),
      probe_(std::move(probe)),
      period_(period) {
  DRACONIS_CHECK(simulator != nullptr && network != nullptr && probe_ != nullptr);
  DRACONIS_CHECK(period > 0);
  timer_.Bind(simulator_, [this] { Tick(); });
}

void SummaryPublisher::Start(TimeNs first_at) { timer_.ScheduleAt(first_at); }

void SummaryPublisher::Retarget(net::NodeId tor_node, DepthProbe probe) {
  tor_node_ = tor_node;
  probe_ = std::move(probe);
}

void SummaryPublisher::Tick() {
  const uint64_t depth = probe_();
  if (local_directory_ != nullptr) {
    local_directory_->Update(rack_, depth, simulator_->Now());
  }
  for (net::NodeId subscriber : subscribers_) {
    net::Packet pkt;
    pkt.op = net::OpCode::kQueueDepthSummary;
    pkt.dst = subscriber;
    pkt.summary_rack = rack_;
    pkt.summary_depth = depth;
    // rack id + depth ride as payload so the summary pays a real (if tiny)
    // serialization delay.
    pkt.payload_bytes = 12;
    network_->Send(tor_node_, std::move(pkt));
    ++summaries_sent_;
  }
  timer_.ScheduleAfter(period_);
}

// ---------------------------------------------------------------------------
// SubmissionRouter
// ---------------------------------------------------------------------------

SubmissionRouter::SubmissionRouter(uint32_t home_rack, const std::vector<net::NodeId>* rack_tors,
                                   const DepthDirectory* directory, PlacementPolicy* policy)
    : home_rack_(home_rack), rack_tors_(rack_tors), directory_(directory), policy_(policy) {
  DRACONIS_CHECK(rack_tors != nullptr && directory != nullptr && policy != nullptr);
}

net::NodeId SubmissionRouter::Route(net::NodeId home_tor) {
  const uint32_t rack = policy_->ChooseRack(home_rack_, *directory_);
  if (rack == home_rack_) {
    ++routed_home_;
    return home_tor;
  }
  ++routed_cross_;
  return (*rack_tors_)[rack];
}

}  // namespace draconis::topology
