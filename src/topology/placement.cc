#include "topology/placement.h"

#include "common/check.h"

namespace draconis::topology {

uint32_t PowerOfTwoPlacement::ChooseRack(uint32_t home, const DepthDirectory& depths) {
  const size_t n = depths.num_racks();
  const uint64_t home_depth = depths.rack(home).depth;
  // Fast path — and the determinism guarantee: below the watermark no
  // randomness is drawn, so an overflow-free run is bit-identical to one
  // with placement disabled.
  if (n <= 1 || home_depth <= watermark_) {
    return home;
  }
  // Sample two siblings (with replacement when there is only one).
  uint32_t a;
  uint32_t b;
  if (n == 2) {
    a = b = home == 0 ? 1 : 0;
  } else {
    a = static_cast<uint32_t>(rng_.NextBelow(n - 1));
    if (a >= home) {
      ++a;
    }
    b = static_cast<uint32_t>(rng_.NextBelow(n - 1));
    if (b >= home) {
      ++b;
    }
  }
  const uint32_t best = depths.rack(a).depth <= depths.rack(b).depth ? a : b;
  // Stale summaries can make every sibling look hot; forwarding onto a rack
  // that looks no better than home only adds aggregation-tier latency.
  if (depths.rack(best).depth >= home_depth) {
    return home;
  }
  return best;
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const ClusterTopology& topo, uint64_t seed) {
  switch (topo.placement) {
    case PlacementKind::kHome:
      return std::make_unique<HomeOnlyPlacement>();
    case PlacementKind::kPowerOfTwo:
      return std::make_unique<PowerOfTwoPlacement>(topo.overflow_watermark, seed);
  }
  DRACONIS_CHECK_MSG(false, "unknown placement kind");
  return nullptr;
}

}  // namespace draconis::topology
