// Physical multi-rack cluster topology (docs/topology.md).
//
// A ClusterTopology describes N racks, each fronted by its own ToR Draconis
// switch (one SwitchPipeline + DraconisProgram instance per rack) with a
// private executor pool, joined by an aggregation tier. Packets whose
// endpoints sit in different racks pay two extra aggregation-tier hops plus
// (optionally) serialization on a per-rack uplink of finite capacity — see
// net::NetworkConfig::aggregation_latency / agg_ns_per_byte.
//
// This is deliberately distinct from core::Topology, which is the *locality
// policy's* worker -> data-rack map; ClusterTopology shards the scheduler
// itself. An empty (disabled) ClusterTopology leaves every experiment
// bit-identical to the single-switch configuration the determinism goldens
// pin.

#ifndef DRACONIS_TOPOLOGY_TOPOLOGY_H_
#define DRACONIS_TOPOLOGY_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace draconis::topology {

// Selects the cross-rack placement policy (placement.h).
enum class PlacementKind {
  kHome,        // always submit to the client's home ToR
  kPowerOfTwo,  // overflow to the less-loaded of two sampled siblings
};

const char* PlacementKindName(PlacementKind kind);
bool PlacementKindFromName(const std::string& name, PlacementKind* out);

// One rack: a ToR Draconis switch fronting a private executor pool.
struct RackSpec {
  size_t num_workers = 0;
  size_t executors_per_worker = 0;

  size_t executors() const { return num_workers * executors_per_worker; }
};

// How clients are homed onto racks. Round-robin spreads client c to rack
// c % racks (the balanced default); first-rack homes every client on rack 0,
// which exists to stress the overflow balancer (the hot rack must shed load
// through the placement layer for the cluster to scale).
enum class ClientHoming { kRoundRobin, kFirstRack };

struct ClusterTopology {
  // Empty = topology disabled: the experiment runs the legacy single-switch
  // layout built from ExperimentConfig::num_workers/executors_per_worker.
  std::vector<RackSpec> racks;

  // Aggregation tier: a cross-rack packet pays 2 x aggregation_latency (ToR
  // -> aggregation -> ToR) on top of the normal edge hops.
  TimeNs aggregation_latency = FromMicros(1);
  // Per-rack uplink serialization (ns per wire byte) through the aggregation
  // tier, modeled as a single busy server per source rack; 0 = infinite
  // uplink capacity.
  double agg_ns_per_byte = 0.0;

  // Cross-rack placement (placement.h). The home ToR's queue depth must
  // exceed overflow_watermark (per the local, possibly stale summary) before
  // any submission is forwarded to a sibling rack.
  PlacementKind placement = PlacementKind::kPowerOfTwo;
  uint64_t overflow_watermark = 128;
  // Queue-depth summary refresh period. Each rack broadcasts its ToR depth to
  // every sibling as real packets (net::OpCode::kQueueDepthSummary), so
  // sibling views are stale by at least the cross-rack flight time.
  TimeNs summary_period = FromMicros(50);

  ClientHoming client_homing = ClientHoming::kRoundRobin;

  bool enabled() const { return !racks.empty(); }
  size_t num_racks() const { return racks.size(); }
  size_t total_workers() const;
  size_t total_executors() const;

  // N identical racks.
  static ClusterTopology Uniform(size_t num_racks, size_t workers_per_rack,
                                 size_t executors_per_worker);

  // Empty string when consistent, a descriptive error otherwise. An empty
  // (disabled) topology is always valid.
  std::string Validate() const;
};

}  // namespace draconis::topology

#endif  // DRACONIS_TOPOLOGY_TOPOLOGY_H_
