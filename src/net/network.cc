#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace draconis::net {

namespace {
uint64_t PairKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}
}  // namespace

Network::Network(sim::Simulator* simulator, const NetworkConfig& config)
    : simulator_(simulator),
      config_(config),
      rng_(config.seed),
      fault_rng_(config.fault_seed != 0 ? config.fault_seed
                                        : config.seed * 0x9E3779B97F4A7C15ULL + 3) {
  DRACONIS_CHECK(simulator != nullptr);
}

NodeId Network::Register(Endpoint* endpoint, const HostProfile& profile) {
  DRACONIS_CHECK(endpoint != nullptr);
  hosts_.push_back(Host{endpoint, profile, 0});
  rack_of_.push_back(0);
  return static_cast<NodeId>(hosts_.size() - 1);
}

void Network::SetNodeRack(NodeId node, uint32_t rack) {
  DRACONIS_CHECK(node < rack_of_.size());
  rack_of_[node] = rack;
  if (rack >= uplink_busy_.size()) {
    uplink_busy_.resize(rack + 1, 0);
  }
}

uint32_t Network::NodeRack(NodeId node) const {
  DRACONIS_CHECK(node < rack_of_.size());
  return rack_of_[node];
}

bool Network::IsSwitch(NodeId node) const {
  if (node == switch_node_) {
    return true;
  }
  for (NodeId s : switch_nodes_) {
    if (s == node) {
      return true;
    }
  }
  return false;
}

void Network::Send(NodeId from, Packet pkt) {
  DRACONIS_CHECK_MSG(from < hosts_.size(), "unknown sender");
  DRACONIS_CHECK_MSG(pkt.dst < hosts_.size(), "unknown destination");
  pkt.src = from;
  if (pkt.created_at < 0) {
    pkt.created_at = simulator_->Now();
  }

  if (hosts_[from].disconnected || hosts_[pkt.dst].disconnected) {
    ++packets_dropped_;
    RecordNetDrops(pkt);
    return;
  }
  if (!drop_rules_.empty()) {
    auto it = drop_rules_.find(PairKey(from, pkt.dst));
    if (it != drop_rules_.end() && fault_rng_.NextBool(it->second)) {
      ++packets_dropped_;
      RecordNetDrops(pkt);
      return;
    }
  }

  Host& tx = hosts_[from];

  // Transmit-side CPU occupancy: the sender's core serializes its sends.
  const TimeNs now = simulator_->Now();
  tx.busy_until = std::max(tx.busy_until, now) + tx.profile.tx_cost;
  const TimeNs departs = tx.busy_until;

  const int hops = (IsSwitch(from) || IsSwitch(pkt.dst)) ? 1 : 2;
  const auto serialization =
      static_cast<TimeNs>(config_.ns_per_byte * static_cast<double>(pkt.WireSize()));

  // Two-tier model: endpoints in different racks route via the aggregation
  // tier — two extra tier hops plus queueing/serialization on the source
  // rack's uplink (a single busy server per rack). Same-rack traffic (the
  // only kind on an unconfigured fabric) pays nothing here.
  TimeNs tier_extra = 0;
  if (rack_of_[from] != rack_of_[pkt.dst]) {
    ++cross_rack_packets_;
    tier_extra = 2 * config_.aggregation_latency;
    if (config_.agg_ns_per_byte > 0.0) {
      TimeNs& uplink = uplink_busy_[rack_of_[from]];
      uplink = std::max(uplink, departs) +
               static_cast<TimeNs>(config_.agg_ns_per_byte * static_cast<double>(pkt.WireSize()));
      tier_extra += uplink - departs;
    }
  }

  const TimeNs jitter =
      config_.max_jitter > 0 ? static_cast<TimeNs>(rng_.NextBelow(config_.max_jitter)) : 0;
  const TimeNs arrives =
      departs + hops * config_.propagation + serialization + tier_extra + jitter + latency_penalty_;

  if (recorder_ != nullptr) {
    // One wire span per sampled task: send initiation -> fabric arrival.
    // detail carries the tx-occupancy delay; aux the opcode for attribution.
    for (const TaskInfo& t : pkt.tasks) {
      if (recorder_->Sampled(t.id)) {
        recorder_->Record(t.id, trace::Kind::kWire, now, arrives,
                          static_cast<uint64_t>(departs - now), pkt.dst,
                          t.meta.attempt, static_cast<uint16_t>(pkt.op));
      }
    }
  }

  // Receive-side CPU occupancy plus stack latency. The destination may have
  // crashed while the packet was in flight; a disconnected host cannot take
  // delivery, so `disconnected` is re-checked at NIC arrival and again at
  // hand-off (a crashed switch must not keep serving queued packets).
  const NodeId dst = pkt.dst;
  simulator_->ScheduleAt(arrives, [this, dst, pkt = std::move(pkt)]() mutable {
    Host& host = hosts_[dst];
    if (host.disconnected) {
      ++packets_dropped_;
      RecordNetDrops(pkt);
      return;
    }
    const TimeNs now_rx = simulator_->Now();
    host.busy_until = std::max(host.busy_until, now_rx) + host.profile.rx_cost;
    const TimeNs deliver_at = host.busy_until + host.profile.stack_latency;
    if (recorder_ != nullptr && deliver_at > now_rx) {
      for (const TaskInfo& t : pkt.tasks) {
        if (recorder_->Sampled(t.id)) {
          recorder_->Record(t.id, trace::Kind::kHostRx, now_rx, deliver_at,
                            static_cast<uint64_t>(host.profile.rx_cost), dst,
                            t.meta.attempt, static_cast<uint16_t>(pkt.op));
        }
      }
    }
    simulator_->ScheduleAt(deliver_at, [this, dst, pkt = std::move(pkt)]() mutable {
      if (hosts_[dst].disconnected) {
        ++packets_dropped_;
        RecordNetDrops(pkt);
        return;
      }
      ++packets_delivered_;
      hosts_[dst].endpoint->HandlePacket(std::move(pkt));
    });
  });
}

void Network::RecordNetDrops(const Packet& pkt) {
  if (recorder_ == nullptr) {
    return;
  }
  const TimeNs now = simulator_->Now();
  for (const TaskInfo& t : pkt.tasks) {
    if (recorder_->Sampled(t.id)) {
      recorder_->Record(t.id, trace::Kind::kNetDrop, now, now, 0, pkt.dst,
                        t.meta.attempt, static_cast<uint16_t>(pkt.op));
    }
  }
}

void Network::InjectDrop(NodeId from, NodeId to, double probability) {
  DRACONIS_CHECK(probability >= 0.0 && probability <= 1.0);
  drop_rules_[PairKey(from, to)] = probability;
}

void Network::RemoveDrop(NodeId from, NodeId to) { drop_rules_.erase(PairKey(from, to)); }

void Network::ClearDropRules() { drop_rules_.clear(); }

void Network::AddLatencyPenalty(TimeNs delta) {
  latency_penalty_ += delta;
  DRACONIS_CHECK_MSG(latency_penalty_ >= 0, "latency penalty went negative");
}

void Network::Disconnect(NodeId node) {
  DRACONIS_CHECK(node < hosts_.size());
  hosts_[node].disconnected = true;
}

void Network::Reconnect(NodeId node) {
  DRACONIS_CHECK(node < hosts_.size());
  hosts_[node].disconnected = false;
}

bool Network::IsDisconnected(NodeId node) const {
  DRACONIS_CHECK(node < hosts_.size());
  return hosts_[node].disconnected;
}

}  // namespace draconis::net
