// Draconis wire protocol (paper §4.1).
//
// The protocol is an application-layer header embedded in a UDP payload. The
// simulation carries packets as structs rather than byte buffers, but wire
// sizes are accounted for exactly (WireSize) so that serialization delays and
// MTU limits behave like the real system.
//
// Fields that exist only for measurement (timestamps) are kept in a separate
// `meta` block and do not count toward the wire size.

#ifndef DRACONIS_NET_PACKET_H_
#define DRACONIS_NET_PACKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace draconis::net {

// Identifies a network endpoint (client, worker/executor NIC, switch CPU
// port, or a server scheduler).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

// OP_CODE values of the Draconis application protocol, plus the auxiliary
// packet kinds the switch program generates internally (swap/repair) and the
// kinds used by the baseline schedulers.
enum class OpCode : uint8_t {
  // Client -> scheduler.
  kJobSubmission = 1,
  // Scheduler -> client.
  kJobAck = 2,
  kErrorQueueFull = 3,
  // Executor -> scheduler.
  kTaskRequest = 4,
  // Scheduler -> executor.
  kTaskAssignment = 5,
  kNoOpTask = 6,
  // Executor -> scheduler (completion + piggybacked task request).
  kTaskCompletion = 7,
  // Scheduler -> client (forwarded completion).
  kCompletionNotice = 8,
  // Switch-internal, recirculated only.
  kSwapTask = 9,
  kRepair = 10,
  // Baseline-specific messages (probes, credits, queue-length reports).
  kProbe = 11,
  kProbeReply = 12,
  kGetTask = 13,
  kCredit = 14,
  // Any non-Draconis traffic; the switch forwards it unchanged.
  kOther = 15,
  // §4.4 large-parameter handling: an executor assigned a "transmission
  // function" task fetches the real parameters from the client directly.
  kParamFetch = 16,
  kParamData = 17,
  // Multi-rack topology (src/topology/): a ToR broadcasts its queue depth to
  // the sibling racks' summary exchanges.
  kQueueDepthSummary = 18,
};

// FN_ID of the special transmission function (§4.4): the submitted task
// carries no parameters; the executor contacts the client to retrieve them
// (FN_PAR holds the parameter size).
inline constexpr uint32_t kTransmissionFnId = 0xFFFFFFF0u;

const char* OpCodeName(OpCode op);

// <UID, JID, TID> uniquely identifies a task in the system.
struct TaskId {
  uint32_t uid = 0;
  uint32_t jid = 0;
  uint32_t tid = 0;

  bool operator==(const TaskId&) const = default;
};

// A hash usable as a key in unordered containers.
struct TaskIdHash {
  size_t operator()(const TaskId& id) const {
    uint64_t h = (static_cast<uint64_t>(id.uid) << 40) ^ (static_cast<uint64_t>(id.jid) << 20) ^
                 id.tid;
    h *= 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

// TASK_INFO (paper Fig. 3): what a job_submission carries per task and what
// the switch stores per queue entry.
struct TaskInfo {
  TaskId id;
  uint32_t fn_id = 0;   // pre-compiled function identifier
  uint64_t fn_par = 0;  // inline parameter (pointer into cluster storage, etc.)
  uint32_t tprops = 0;  // policy-specific: resource bitmap | priority | data-local node

  // How a task was placed relative to its data (locality experiments).
  enum class Placement : uint8_t { kLocal = 0, kSameRack = 1, kRemote = 2, kUnknown = 255 };

  // --- Simulation metadata (not on the wire) ---------------------------------
  struct Meta {
    TimeNs exec_duration = 0;       // service time of the pre-compiled function
    TimeNs first_submit_time = -1;  // first client send (survives resubmission)
    TimeNs submit_time = -1;        // most recent client send
    TimeNs enqueue_time = -1;       // enqueued at the scheduler
    NodeId client = kInvalidNode;   // submitting client (scheduler fills this in)
    uint32_t attempt = 0;           // resubmission count
    Placement placement = Placement::kUnknown;
  } meta;

  // Wire footprint of one TASK_INFO entry: TID + FN_ID + FN_PAR + TPROPS.
  static constexpr size_t kWireSize = 4 + 4 + 8 + 4;
};

// Which pointer a kRepair packet corrects.
enum class RepairTarget : uint8_t { kAddPtr = 0, kRetrievePtr = 1 };

// A simulated packet. One struct covers all opcodes; only the fields relevant
// to the opcode are meaningful, mirroring a union-style header layout.
struct Packet {
  OpCode op = OpCode::kOther;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;

  // kJobSubmission / kErrorQueueFull: UID, JID and the task list (#TASKS ==
  // tasks.size()). kTaskAssignment / kSwapTask / kCompletionNotice carry
  // exactly one task in tasks[0].
  uint32_t uid = 0;
  uint32_t jid = 0;
  std::vector<TaskInfo> tasks;

  // kTaskRequest / kTaskCompletion: the executor's properties — a resource
  // bitmap (EXEC_RSRC) or the node id, depending on the active policy — and
  // the retrieve priority (RTRV_PRIO, 1 = highest).
  uint32_t exec_props = 0;
  uint8_t rtrv_prio = 1;

  // kTaskAssignment: the submitting client, so the executor's completion can
  // be routed back.
  NodeId client_addr = kInvalidNode;

  // kSwapTask: index of the next queue entry to examine, the retrieve-pointer
  // value observed when the walk started, the number of swap passes done, and
  // the carried task's skip counter (§5.3).
  uint64_t swap_indx = 0;
  uint64_t pkt_retrieve_ptr = 0;
  uint32_t swap_count = 0;
  uint32_t skip_counter = 0;
  // Set when a swap walk was converted back into a submission (§5.1); such a
  // submission must not be acknowledged to the client a second time.
  bool from_swap = false;

  // kRepair: which pointer to overwrite, with what value, in which queue.
  RepairTarget repair_target = RepairTarget::kAddPtr;
  uint64_t repair_value = 0;

  // Which class-of-service queue the packet addresses (0-based level index).
  uint8_t queue_index = 0;

  // kParamData: bulk payload riding with the packet (task parameters); it
  // counts toward the wire size and hence the serialization delay.
  uint32_t payload_bytes = 0;

  // kQueueDepthSummary: the sender's rack and its ToR queue depth (the
  // summary rides as payload_bytes for wire accounting).
  uint32_t summary_rack = 0;
  uint64_t summary_depth = 0;

  // --- Simulation metadata ----------------------------------------------------
  TimeNs created_at = -1;     // when the original packet was sent
  uint32_t pipeline_passes = 0;  // pipeline traversals so far (recirculations)

  // Payload bytes on the wire: Ethernet+IP+UDP framing plus the Draconis
  // header and per-task TASK_INFO entries.
  size_t WireSize() const;

  // Human-readable one-liner for logs and test failures.
  std::string Describe() const;
};

// Conventional datagram MTU; job submissions must fit within it.
inline constexpr size_t kMtuBytes = 1500;

// Frame overhead: Ethernet (14+4) + IPv4 (20) + UDP (8) + Draconis base
// header (OP_CODE + UID + JID + #TASKS + misc fields, 16 bytes).
inline constexpr size_t kFrameOverheadBytes = 18 + 20 + 8 + 16;

// Maximum number of TASK_INFO entries that fit in one job_submission.
size_t MaxTasksPerPacket();

}  // namespace draconis::net

#endif  // DRACONIS_NET_PACKET_H_
