// Simulated network fabric.
//
// The fabric connects endpoints (clients, executors/workers, server
// schedulers, and the programmable switch) with a latency model:
//
//   delivery = tx host occupancy + propagation x hops + serialization
//            + jitter + rx host occupancy + stack latency
//
// Each endpoint has a HostProfile describing its packet-processing cost.
// This is how the paper's server-based schedulers are reproduced: a
// DPDK-based server spends ~0.45 us of CPU per packet (saturating around
// 1.1 M scheduling decisions/s), a sockets-based server ~3.1 us (~160 k/s),
// and the switch itself costs nothing here because its timing is modeled by
// the pipeline in src/p4/. Host occupancy is modeled as a single busy server
// per endpoint (M/D/1-style), which produces the queueing-delay explosions
// the paper reports when server schedulers saturate.

#ifndef DRACONIS_NET_NETWORK_H_
#define DRACONIS_NET_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "trace/recorder.h"

namespace draconis::net {

// Anything that can receive packets from the fabric.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Invoked when a packet is delivered to this endpoint. The packet is moved
  // in; the endpoint owns it from here.
  virtual void HandlePacket(Packet pkt) = 0;
};

// Per-endpoint packet-processing characteristics.
struct HostProfile {
  TimeNs tx_cost = 0;        // CPU occupancy per transmitted packet
  TimeNs rx_cost = 0;        // CPU occupancy per received packet
  TimeNs stack_latency = 0;  // extra per-packet latency (kernel stack), no occupancy

  // A kernel-bypass endpoint (executors, clients, DPDK servers).
  static HostProfile Dpdk(TimeNs per_packet_cost) {
    return HostProfile{per_packet_cost, per_packet_cost, 0};
  }
  // A POSIX-sockets endpoint: slower per packet and with stack latency.
  static HostProfile Socket(TimeNs per_packet_cost, TimeNs stack_latency) {
    return HostProfile{per_packet_cost, per_packet_cost, stack_latency};
  }
  // The switch data plane: free at this layer (timed by the p4 pipeline).
  static HostProfile Wire() { return HostProfile{}; }
};

struct NetworkConfig {
  TimeNs propagation = TimeNs{1100};  // one hop: NIC + cable + forwarding
  double ns_per_byte = 0.08;          // 100 Gbps serialization
  TimeNs max_jitter = TimeNs{100};    // uniform [0, max_jitter)
  // Two-tier topology (src/topology/): a packet whose endpoints sit in
  // different racks pays two extra aggregation-tier hops of this latency
  // (ToR -> aggregation -> ToR) ...
  TimeNs aggregation_latency = 0;
  // ... plus serialization on the source rack's uplink, modeled as a single
  // busy server per rack; 0 = infinite uplink capacity. Both knobs are inert
  // while every node sits in rack 0 (the default), so single-rack runs are
  // bit-identical to the pre-topology fabric.
  double agg_ns_per_byte = 0.0;
  uint64_t seed = 1;
  // Seed of the fault-decision stream (drop-probability draws). Kept apart
  // from `seed` (the jitter stream) so installing fault rules never perturbs
  // the delivery times of surviving packets; 0 derives a default from `seed`.
  // Testbeds set it from SeedDomain::kFault.
  uint64_t fault_seed = 0;
};

class Network {
 public:
  Network(sim::Simulator* simulator, const NetworkConfig& config);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers an endpoint and returns its address. The endpoint must outlive
  // the network.
  NodeId Register(Endpoint* endpoint, const HostProfile& profile);

  // Marks `node` as the switch so that endpoint-to-endpoint traffic that does
  // not terminate at the switch is charged two propagation hops.
  void SetSwitchNode(NodeId node) { switch_node_ = node; }

  // Multi-rack topology: additionally marks `node` as a switch for hop
  // accounting (every ToR is one edge hop from its rack), without displacing
  // the legacy primary switch set via SetSwitchNode.
  void AddSwitchNode(NodeId node) { switch_nodes_.push_back(node); }

  // Assigns `node` to a rack for the two-tier latency model; every node
  // starts in rack 0, so an unassigned fabric never pays aggregation costs.
  void SetNodeRack(NodeId node, uint32_t rack);
  uint32_t NodeRack(NodeId node) const;

  // Cross-rack packets sent so far (delivered or not).
  uint64_t cross_rack_packets() const { return cross_rack_packets_; }

  // Optional task-lifecycle recorder (nullable; never affects behaviour).
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

  // Sends a packet from `from` to `pkt.dst`, applying the latency model.
  // `pkt.src` is stamped with `from`.
  void Send(NodeId from, Packet pkt);

  // Fault injection: every packet from -> to is dropped with `probability`.
  // Probability draws come from the dedicated fault stream (fault_seed), so a
  // rule — even with p=0 — never perturbs the jitter of surviving packets.
  void InjectDrop(NodeId from, NodeId to, double probability);
  void RemoveDrop(NodeId from, NodeId to);
  void ClearDropRules();

  // Fault injection: the node fails hard — every packet to or from it is
  // dropped until Reconnect, including packets already in flight toward it
  // (re-checked at delivery time). Models the paper's §3.3 switch failure.
  void Disconnect(NodeId node);
  void Reconnect(NodeId node);
  bool IsDisconnected(NodeId node) const;

  // Fault injection: adds `delta` (may be negative to undo) to the delivery
  // latency of every subsequently sent packet. Degradation windows stack.
  void AddLatencyPenalty(TimeNs delta);
  TimeNs latency_penalty() const { return latency_penalty_; }

  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_dropped_; }

  sim::Simulator* simulator() const { return simulator_; }

 private:
  struct Host {
    Endpoint* endpoint = nullptr;
    HostProfile profile;
    TimeNs busy_until = 0;  // single packet-processing core
    bool disconnected = false;
  };

  void RecordNetDrops(const Packet& pkt);
  bool IsSwitch(NodeId node) const;

  sim::Simulator* simulator_;
  NetworkConfig config_;
  Rng rng_;        // jitter stream
  Rng fault_rng_;  // drop-probability stream; only consumed by drop rules
  trace::Recorder* recorder_ = nullptr;
  std::vector<Host> hosts_;
  NodeId switch_node_ = kInvalidNode;
  std::vector<NodeId> switch_nodes_;  // additional ToR switches (multi-rack)
  std::vector<uint32_t> rack_of_;     // parallel to hosts_; all 0 by default
  std::vector<TimeNs> uplink_busy_;   // per-rack aggregation uplink server
  std::unordered_map<uint64_t, double> drop_rules_;  // (from << 32 | to) -> p
  TimeNs latency_penalty_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t cross_rack_packets_ = 0;
};

}  // namespace draconis::net

#endif  // DRACONIS_NET_NETWORK_H_
