#include "net/packet.h"

#include <sstream>

namespace draconis::net {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kJobSubmission:
      return "job_submission";
    case OpCode::kJobAck:
      return "job_ack";
    case OpCode::kErrorQueueFull:
      return "error_queue_full";
    case OpCode::kTaskRequest:
      return "task_request";
    case OpCode::kTaskAssignment:
      return "task_assignment";
    case OpCode::kNoOpTask:
      return "no_op_task";
    case OpCode::kTaskCompletion:
      return "task_completion";
    case OpCode::kCompletionNotice:
      return "completion_notice";
    case OpCode::kSwapTask:
      return "swap_task";
    case OpCode::kRepair:
      return "repair";
    case OpCode::kProbe:
      return "probe";
    case OpCode::kProbeReply:
      return "probe_reply";
    case OpCode::kGetTask:
      return "get_task";
    case OpCode::kCredit:
      return "credit";
    case OpCode::kOther:
      return "other";
    case OpCode::kParamFetch:
      return "param_fetch";
    case OpCode::kParamData:
      return "param_data";
    case OpCode::kQueueDepthSummary:
      return "queue_depth_summary";
  }
  return "unknown";
}

size_t Packet::WireSize() const {
  return kFrameOverheadBytes + tasks.size() * TaskInfo::kWireSize + payload_bytes;
}

std::string Packet::Describe() const {
  std::ostringstream os;
  os << OpCodeName(op) << " src=" << src << " dst=" << dst;
  if (!tasks.empty()) {
    os << " tasks=" << tasks.size() << " first=<" << tasks[0].id.uid << "," << tasks[0].id.jid
       << "," << tasks[0].id.tid << ">";
  }
  if (op == OpCode::kTaskRequest || op == OpCode::kTaskCompletion) {
    os << " exec_props=" << exec_props << " rtrv_prio=" << static_cast<int>(rtrv_prio);
  }
  if (op == OpCode::kSwapTask) {
    os << " swap_indx=" << swap_indx << " pkt_rptr=" << pkt_retrieve_ptr
       << " swaps=" << swap_count;
  }
  if (op == OpCode::kRepair) {
    os << " target=" << (repair_target == RepairTarget::kAddPtr ? "add_ptr" : "retrieve_ptr")
       << " value=" << repair_value << " queue=" << static_cast<int>(queue_index);
  }
  return os.str();
}

size_t MaxTasksPerPacket() { return (kMtuBytes - kFrameOverheadBytes) / TaskInfo::kWireSize; }

}  // namespace draconis::net
