#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"

namespace draconis::sweep {

size_t EffectiveParallelism(size_t requested, size_t num_points) {
  size_t parallelism = requested;
  if (parallelism == 0) {
    parallelism = std::thread::hardware_concurrency();
  }
  parallelism = std::max<size_t>(1, parallelism);
  if (num_points > 0) {
    parallelism = std::min(parallelism, num_points);
  }
  return parallelism;
}

std::vector<SweepPointResult> RunSweep(const SweepSpec& spec, const SweepOptions& options) {
  const size_t total = spec.points.size();
  std::vector<SweepPointResult> results(total);
  if (total == 0) {
    return results;
  }

  const auto run_point = [&spec](const cluster::ExperimentConfig& config) {
    return spec.run ? spec.run(config) : cluster::RunExperiment(config);
  };

  // Work distribution: an atomic cursor hands out point indices; each worker
  // writes only its own results[i] slot, so the result vector needs no lock.
  // Progress and error collection do.
  std::atomic<size_t> cursor{0};
  std::mutex mu;
  size_t completed = 0;
  size_t first_error_index = total;
  std::exception_ptr first_error;

  const auto worker = [&] {
    while (true) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) {
        return;
      }
      const SweepPoint& point = spec.points[i];
      SweepPointResult& out = results[i];
      out.index = i;
      out.label = point.label;
      out.series = point.series;
      out.x = point.x;
      try {
        out.result = run_point(point.config);
      } catch (...) {
        // Stop handing out new points; in-flight ones run to completion.
        cursor.store(total, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
        continue;
      }
      std::lock_guard<std::mutex> lock(mu);
      ++completed;
      if (options.on_progress) {
        options.on_progress(completed, total, out);
      }
    }
  };

  const size_t parallelism = EffectiveParallelism(options.parallelism, total);
  if (parallelism == 1) {
    worker();  // inline: byte-for-byte the plain serial loop
  } else {
    std::vector<std::thread> threads;
    threads.reserve(parallelism);
    for (size_t t = 0; t < parallelism; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace draconis::sweep
