// Structured output for sweep results: one JSON document per sweep and
// optional per-point CDF CSV dumps. This is the first-class replacement for
// the old DRACONIS_BENCH_CSV_DIR env-var side channel — benches expose it as
// --json=<path> / --csv-dir=<path>.
//
// JSON schema (schema_version 1):
//   {
//     "bench": "<spec.name>", "title": ..., "schema_version": 1,
//     "axis": {"name": ..., "unit": ...},
//     "quick": bool, "parallelism": N,
//     "points": [
//       {
//         "label": ..., "series": ..., "x": ...,
//         "scheduler": ..., "policy": ..., "seed": ...,
//         "offered_tasks_per_second": ..., "offered_utilization": ...,
//         "throughput_tps": ..., "executor_busy_fraction": ...,
//         "recirculation_share": ..., "drop_fraction": ...,
//         "recirc_drops": ..., "drain_time_ns": ...,
//         "tasks_submitted": ..., "tasks_completed": ...,
//         "sched_delay": {histogram}, "queueing_delay": {histogram},
//         "e2e_delay": {histogram}, "get_task_delay": {histogram},
//         "counters": {flat SchedulerCounters},
//         "extra": {bench-specific scalars}
//       }, ...
//     ]
//   }
// Histogram objects are stats::Histogram::ToJson(): {"count", "mean_ns",
// "min_ns", "max_ns", "p50_ns", "p90_ns", "p95_ns", "p99_ns", "p999_ns"}
// (quantiles omitted when count is 0).

#ifndef DRACONIS_SWEEP_REPORT_H_
#define DRACONIS_SWEEP_REPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "sweep/sweep.h"

namespace draconis::sweep {

struct ReportOptions {
  size_t parallelism = 1;  // recorded in the document, not acted on
  bool quick = false;      // DRACONIS_BENCH_QUICK at run time
};

// One experiment result as a standalone JSON object (no point identity).
std::string ToJson(const cluster::ExperimentResult& result);

// The full sweep document as a string.
std::string RenderJson(const SweepSpec& spec, const std::vector<SweepPointResult>& results,
                       const ReportOptions& options);

// Writes RenderJson to `path`. Returns false (after logging to stderr) if
// the file cannot be written.
bool WriteJsonFile(const std::string& path, const SweepSpec& spec,
                   const std::vector<SweepPointResult>& results,
                   const ReportOptions& options);

// Dumps each point's non-empty latency CDFs to
// <dir>/<spec.name>_<label>_<metric>.csv (value_ns,fraction), including the
// per-priority histograms when the run tracked them. Returns the number of
// files written, or -1 if the directory is unwritable.
int WriteCsvDir(const std::string& dir, const SweepSpec& spec,
                const std::vector<SweepPointResult>& results);

}  // namespace draconis::sweep

#endif  // DRACONIS_SWEEP_REPORT_H_
