#include "sweep/report.h"

#include <cstdio>

#include "sim/event_queue.h"
#include "stats/histogram.h"

namespace draconis::sweep {

namespace {

std::string SanitizeForFilename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_';
    if (!keep) {
      c = '_';
    }
  }
  return out;
}

void WriteCounters(json::Writer& w, const cluster::SchedulerCounters& c) {
  w.BeginObject();
  w.Key("tasks_enqueued").UInt(c.tasks_enqueued);
  w.Key("tasks_assigned").UInt(c.tasks_assigned);
  w.Key("noops_sent").UInt(c.noops_sent);
  w.Key("queue_full_errors").UInt(c.queue_full_errors);
  w.Key("acks_sent").UInt(c.acks_sent);
  w.Key("add_repairs").UInt(c.add_repairs);
  w.Key("retrieve_repairs").UInt(c.retrieve_repairs);
  w.Key("swap_walks_started").UInt(c.swap_walks_started);
  w.Key("swap_exchanges").UInt(c.swap_exchanges);
  w.Key("swap_requeues").UInt(c.swap_requeues);
  w.Key("priority_probes").UInt(c.priority_probes);
  w.Key("tasks_pushed").UInt(c.tasks_pushed);
  w.Key("credit_wait_recirculations").UInt(c.credit_wait_recirculations);
  w.Key("credits").UInt(c.credits);
  w.Key("probes_sent").UInt(c.probes_sent);
  w.Key("tasks_launched").UInt(c.tasks_launched);
  w.Key("empty_get_tasks").UInt(c.empty_get_tasks);
  w.Key("parked_requests").UInt(c.parked_requests);
  w.EndObject();
}

void WriteResultBody(json::Writer& w, const cluster::ExperimentResult& result) {
  w.Key("offered_tasks_per_second").Double(result.offered_tasks_per_second);
  w.Key("offered_utilization").Double(result.offered_utilization);
  w.Key("throughput_tps").Double(result.throughput_tps);
  w.Key("executor_busy_fraction").Double(result.executor_busy_fraction);
  w.Key("recirculation_share").Double(result.recirculation_share);
  w.Key("drop_fraction").Double(result.drop_fraction);
  w.Key("recirc_drops").UInt(result.recirc_drops);
  w.Key("drain_time_ns").Int(result.drain_time);
  if (result.metrics != nullptr) {
    const cluster::MetricsHub& m = *result.metrics;
    w.Key("tasks_submitted").UInt(m.tasks_submitted());
    w.Key("tasks_completed").UInt(m.tasks_completed());
    w.Key("timeout_resubmissions").UInt(m.timeout_resubmissions());
    w.Key("sched_delay");
    m.sched_delay().WriteJson(w);
    w.Key("queueing_delay");
    m.queueing_delay().WriteJson(w);
    w.Key("e2e_delay");
    m.e2e_delay().WriteJson(w);
    w.Key("slowdown_milli");
    m.slowdown_milli().WriteJson(w);
    w.Key("get_task_delay");
    m.get_task_delay().WriteJson(w);
    if (m.priority_levels() > 0) {
      w.Key("priority_queueing").BeginArray();
      for (size_t level = 1; level <= m.priority_levels(); ++level) {
        m.priority_queueing(level).WriteJson(w);
      }
      w.EndArray();
      w.Key("priority_get_task").BeginArray();
      for (size_t level = 1; level <= m.priority_levels(); ++level) {
        m.priority_get_task(level).WriteJson(w);
      }
      w.EndArray();
    }
  }
  w.Key("counters");
  WriteCounters(w, result.counters);
  // Emitted only for multi-rack topology runs (num_racks stays 0 otherwise),
  // so legacy sweep output keeps its byte-identical golden.
  if (result.num_racks > 0) {
    w.Key("num_racks").UInt(result.num_racks);
    w.Key("cross_rack_fraction").Double(result.cross_rack_fraction);
    w.Key("home_submissions").UInt(result.home_submissions);
    w.Key("cross_rack_submissions").UInt(result.cross_rack_submissions);
    w.Key("cross_rack_packets").UInt(result.cross_rack_packets);
    w.Key("summary_packets").UInt(result.summary_packets);
    w.Key("rack_decisions").BeginArray();
    for (uint64_t decisions : result.rack_decisions) {
      w.UInt(decisions);
    }
    w.EndArray();
  }
  // Emitted only for fault-plan runs, so fault-free sweep output (and its
  // golden in tests/sweep_test.cc) is byte-identical to before.
  if (result.recovery.fault_plan_active) {
    const cluster::RecoveryStats& rec = result.recovery;
    w.Key("recovery").BeginObject();
    w.Key("fault_start_ns").Int(rec.fault_start);
    w.Key("fault_clear_ns").Int(rec.fault_clear);
    w.Key("time_to_recover_ns").Int(rec.time_to_recover);
    w.Key("unavailability_ns").Int(rec.unavailability);
    w.Key("tasks_resubmitted").UInt(rec.tasks_resubmitted);
    w.Key("tasks_lost").UInt(rec.tasks_lost);
    w.Key("client_rehomes").UInt(rec.client_rehomes);
    w.Key("executor_rehomes").UInt(rec.executor_rehomes);
    w.Key("failovers").UInt(result.counters.failovers);
    w.Key("packets_dropped").UInt(rec.packets_dropped);
    w.Key("fault_events_started").UInt(rec.fault_events_started);
    w.Key("fault_events_cleared").UInt(rec.fault_events_cleared);
    if (result.metrics != nullptr) {
      const cluster::MetricsHub& m = *result.metrics;
      w.Key("e2e_pre_fault");
      m.e2e_pre_fault().WriteJson(w);
      w.Key("e2e_during_fault");
      m.e2e_during_fault().WriteJson(w);
      w.Key("e2e_post_fault");
      m.e2e_post_fault().WriteJson(w);
    }
    w.EndObject();
  }
}

}  // namespace

std::string ToJson(const cluster::ExperimentResult& result) {
  json::Writer w;
  w.BeginObject();
  WriteResultBody(w, result);
  w.EndObject();
  return w.str();
}

std::string RenderJson(const SweepSpec& spec, const std::vector<SweepPointResult>& results,
                       const ReportOptions& options) {
  json::Writer w;
  w.BeginObject();
  w.Key("bench").String(spec.name);
  w.Key("title").String(spec.title);
  w.Key("schema_version").Int(1);
  w.Key("axis").BeginObject();
  w.Key("name").String(spec.axis.name);
  w.Key("unit").String(spec.axis.unit);
  w.EndObject();
  w.Key("quick").Bool(options.quick);
  w.Key("parallelism").UInt(options.parallelism);
  w.Key("points").BeginArray();
  for (const SweepPointResult& point : results) {
    w.BeginObject();
    w.Key("label").String(point.label);
    w.Key("series").String(point.series);
    w.Key("x").Double(point.x);
    if (point.index < spec.points.size()) {
      const cluster::ExperimentConfig& config = spec.points[point.index].config;
      w.Key("scheduler").String(cluster::SchedulerKindName(config.scheduler));
      w.Key("policy").String(cluster::PolicyKindName(config.policy));
      // Emitted only in PIFO mode, so pre-PIFO sweep output (and its golden
      // in tests/sweep_test.cc) stays byte-identical.
      if (config.switch_policy != core::SwitchPolicy::kFifo) {
        w.Key("switch_policy").String(core::SwitchPolicyName(config.switch_policy));
      }
      w.Key("sim_queue").String(sim::QueueBackendName(config.sim_queue));
      w.Key("seed").UInt(config.seed);
    }
    WriteResultBody(w, point.result);
    if (!point.scalars.empty()) {
      w.Key("extra").BeginObject();
      for (const auto& [key, value] : point.scalars) {
        w.Key(key).Double(value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

bool WriteJsonFile(const std::string& path, const SweepSpec& spec,
                   const std::vector<SweepPointResult>& results,
                   const ReportOptions& options) {
  const std::string doc = RenderJson(spec, results, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "sweep: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return true;
}

namespace {

bool DumpCdf(const std::string& dir, const SweepSpec& spec, const SweepPointResult& point,
             const char* metric, const stats::Histogram& h) {
  if (h.count() == 0) {
    return false;
  }
  const std::string path = dir + "/" + SanitizeForFilename(spec.name) + "_" +
                           SanitizeForFilename(point.label) + "_" + metric + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f, "value_ns,fraction\n");
  for (const stats::CdfPoint& p : h.Cdf()) {
    std::fprintf(f, "%lld,%.6f\n", static_cast<long long>(p.value), p.fraction);
  }
  std::fclose(f);
  return true;
}

}  // namespace

int WriteCsvDir(const std::string& dir, const SweepSpec& spec,
                const std::vector<SweepPointResult>& results) {
  // Probe writability once so a bad --csv-dir fails loudly, not per file.
  const std::string probe = dir + "/.draconis_sweep_probe";
  std::FILE* f = std::fopen(probe.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "sweep: csv dir %s is not writable\n", dir.c_str());
    return -1;
  }
  std::fclose(f);
  std::remove(probe.c_str());

  int written = 0;
  for (const SweepPointResult& point : results) {
    if (point.result.metrics == nullptr) {
      continue;
    }
    const cluster::MetricsHub& m = *point.result.metrics;
    written += DumpCdf(dir, spec, point, "sched_delay", m.sched_delay()) ? 1 : 0;
    written += DumpCdf(dir, spec, point, "queueing_delay", m.queueing_delay()) ? 1 : 0;
    written += DumpCdf(dir, spec, point, "e2e_delay", m.e2e_delay()) ? 1 : 0;
    written += DumpCdf(dir, spec, point, "slowdown_milli", m.slowdown_milli()) ? 1 : 0;
    written += DumpCdf(dir, spec, point, "get_task_delay", m.get_task_delay()) ? 1 : 0;
    for (size_t level = 1; level <= m.priority_levels(); ++level) {
      char name[40];
      std::snprintf(name, sizeof(name), "priority%zu_queueing", level);
      written += DumpCdf(dir, spec, point, name, m.priority_queueing(level)) ? 1 : 0;
      std::snprintf(name, sizeof(name), "priority%zu_get_task", level);
      written += DumpCdf(dir, spec, point, name, m.priority_get_task(level)) ? 1 : 0;
    }
    if (point.result.recovery.fault_plan_active) {
      written += DumpCdf(dir, spec, point, "e2e_pre_fault", m.e2e_pre_fault()) ? 1 : 0;
      written += DumpCdf(dir, spec, point, "e2e_during_fault", m.e2e_during_fault()) ? 1 : 0;
      written += DumpCdf(dir, spec, point, "e2e_post_fault", m.e2e_post_fault()) ? 1 : 0;
    }
  }
  return written;
}

}  // namespace draconis::sweep
