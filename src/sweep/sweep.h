// Declarative, parallel experiment sweeps.
//
// Every figure and table in the paper's evaluation is a sweep over
// independent RunExperiment points. A SweepSpec names those points once —
// label, series (the table row it belongs to), x (the axis value), and the
// full ExperimentConfig — and RunSweep executes them across a thread pool.
//
// Determinism guarantee: each point owns its Simulator, Network, RNG streams
// and MetricsHub, all seeded from its own config, and no simulator state is
// shared between points — so a parallel run produces bit-identical per-point
// metrics to `parallelism = 1` (enforced by tests/sweep_test.cc). Results
// come back in point order regardless of completion order.

#ifndef DRACONIS_SWEEP_SWEEP_H_
#define DRACONIS_SWEEP_SWEEP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/experiment.h"

namespace draconis::sweep {

// One experiment point on the sweep's axis.
struct SweepPoint {
  std::string label;   // unique within the sweep; used in progress lines + CSV names
  std::string series;  // row grouping for reports ("Draconis", "R2P2-3", ...)
  double x = 0.0;      // position on the sweep axis (load, utilization, ...)
  cluster::ExperimentConfig config;
};

// Axis metadata, carried into the JSON report.
struct SweepAxis {
  std::string name;  // e.g. "offered load"
  std::string unit;  // e.g. "ktasks/s"
};

struct SweepSpec {
  std::string name;   // short id, e.g. "fig05a"; keys output file names
  std::string title;  // human description for headers and reports
  SweepAxis axis;
  std::vector<SweepPoint> points;

  // Per-point runner; defaults to cluster::RunExperiment. Benches that
  // measure something other than a full experiment (or tests injecting
  // failures) substitute their own. Must be callable concurrently.
  std::function<cluster::ExperimentResult(const cluster::ExperimentConfig&)> run;
};

// A point's result: the experiment output plus the point identity it came
// from, and a slot for bench-specific derived scalars that should land in
// the JSON report.
struct SweepPointResult {
  size_t index = 0;
  std::string label;
  std::string series;
  double x = 0.0;
  cluster::ExperimentResult result;
  std::map<std::string, double> scalars;  // serialized under "extra"
};

struct SweepOptions {
  // Worker threads; 0 means std::thread::hardware_concurrency(). 1 runs
  // every point inline on the calling thread.
  size_t parallelism = 0;

  // Called after each point completes (under an internal lock, so it may
  // print without interleaving). `completed` counts finished points, which
  // is not necessarily `done.index + 1` when running in parallel.
  std::function<void(size_t completed, size_t total, const SweepPointResult& done)>
      on_progress;
};

// Executes every point and returns results in point order. If a point
// throws, no further points are started, in-flight points finish, and the
// earliest-indexed exception is rethrown.
std::vector<SweepPointResult> RunSweep(const SweepSpec& spec,
                                       const SweepOptions& options = {});

// Resolved thread count for an options value (0 -> hardware_concurrency).
size_t EffectiveParallelism(size_t requested, size_t num_points);

}  // namespace draconis::sweep

#endif  // DRACONIS_SWEEP_SWEEP_H_
