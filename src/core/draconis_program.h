// The Draconis switch program (paper §4–§6): the packet-processing logic that
// turns the circular queue + a scheduling policy into an in-network
// scheduler. One instance is installed into a p4::SwitchPipeline.
//
// Packet handling per opcode:
//   job_submission  enqueue the first task; recirculate for the rest (§4.3);
//                   trigger pointer repairs (§4.5); error to client when full.
//   task_request    dequeue and policy-check; assign, start a swap walk
//                   (§5.1), probe the next priority queue (§6.1), or no-op.
//   task_completion forward the completion to the client and treat the rest
//                   of the packet as a piggybacked task_request (§3.1).
//   swap_task       continue a task-swapping walk.
//   repair          apply a pointer correction and clear the repair flag.
//   anything else   forwarded unchanged: Draconis is colocation-safe (§4.1).

#ifndef DRACONIS_CORE_DRACONIS_PROGRAM_H_
#define DRACONIS_CORE_DRACONIS_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "core/queue_entry.h"
#include "core/rank_function.h"
#include "core/switch_queue.h"
#include "p4/pifo.h"
#include "p4/pipeline.h"
#include "p4/register.h"
#include "trace/recorder.h"

namespace draconis::core {

struct DraconisConfig {
  // Entries per class-of-service queue. The paper's Tofino-1 deployment
  // supports 164 K entries (§7).
  size_t queue_capacity = 164 * 1024;
  // Production shadow-copy dequeue vs the paper's textbook overrun-and-
  // repair dequeue (see switch_queue.h; false is kept for tests and the
  // design-choice ablation).
  bool shadow_copy_dequeue = true;
  // §6.1/§8.7: "newer switches ... can house each task queue in separate
  // stages, eliminating the need for packet recirculation". When set, a
  // task_request probes every priority level within one pass (each level's
  // queue is its own register set, so the one-access rule still holds; the
  // shadow-copy dequeue makes the speculative probes of empty levels free).
  // Requires shadow_copy_dequeue.
  bool parallel_priority_stages = false;
};

// Packet handling is identical in PIFO mode (docs/pifo.md) except that the
// per-level circular queues are replaced by one rank-ordered p4::Pifo: a
// submission computes the task's rank and pushes (full -> the same
// error-to-client path, minus the pointer repairs the circular queue needs);
// a task_request pops the minimum-rank task and always assigns it (the rank
// order *is* the policy, so there is no policy-mismatch swap walk and no
// per-level probe). Swap and repair packets cannot occur and are dropped
// defensively.

struct DraconisCounters {
  uint64_t tasks_enqueued = 0;
  uint64_t tasks_assigned = 0;
  uint64_t noops_sent = 0;
  uint64_t queue_full_errors = 0;
  uint64_t acks_sent = 0;
  uint64_t add_repairs = 0;
  uint64_t retrieve_repairs = 0;
  uint64_t swap_walks_started = 0;
  uint64_t swap_exchanges = 0;
  uint64_t swap_requeues = 0;  // walks that ended by re-enqueueing the task
  uint64_t priority_probes = 0;  // task_request recirculations across levels
};

class DraconisProgram : public p4::SwitchProgram {
 public:
  // `policy` must outlive the program. `ledger` (optional) accounts register
  // memory. A non-null `rank_function` (which must also outlive the program)
  // selects PIFO mode; it requires a single-queue policy (the rank order
  // replaces per-level queues) and is incompatible with
  // parallel_priority_stages.
  DraconisProgram(SchedulingPolicy* policy, const DraconisConfig& config,
                  p4::ResourceLedger* ledger = nullptr, RankFunction* rank_function = nullptr);

  void OnPass(p4::PassContext& ctx, net::Packet pkt) override;

  const DraconisCounters& counters() const { return counters_; }
  const SwitchQueue& queue(size_t i) const { return *queues_[i]; }
  size_t num_queues() const { return queues_.size(); }
  SchedulingPolicy* policy() const { return policy_; }
  bool pifo_mode() const { return pifo_ != nullptr; }
  const p4::Pifo<QueueEntry>& pifo() const { return *pifo_; }

  // Control-plane view of the total queued-task count across all class
  // queues (or the PIFO), as published in kQueueDepthSummary packets by the
  // multi-rack summary layer (src/topology/).
  uint64_t cp_queue_depth() const {
    if (pifo_ != nullptr) {
      return pifo_->cp_size();
    }
    uint64_t depth = 0;
    for (const auto& q : queues_) {
      depth += q->cp_occupancy();
    }
    return depth;
  }

  // Optional task-lifecycle recorder (nullable; never affects behaviour).
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

 private:
  void HandleSubmission(p4::PassContext& ctx, net::Packet pkt);
  void HandleTaskRequest(p4::PassContext& ctx, net::Packet pkt);
  void HandleSwap(p4::PassContext& ctx, net::Packet pkt);
  void HandleRepair(p4::PassContext& ctx, net::Packet pkt);

  // Emits a task_assignment for `entry` to the executor at `executor`.
  void Assign(p4::PassContext& ctx, const QueueEntry& entry, net::NodeId executor);

  // Emits a no-op task to the executor.
  void SendNoOp(p4::PassContext& ctx, net::NodeId executor);

  // Converts a finished swap walk back into a (non-acked) job_submission and
  // notifies the executor with a no-op (§5.1 last paragraph).
  void RequeueCarriedTask(p4::PassContext& ctx, net::Packet pkt);

  // Recirculates a pointer-repair packet for queue `q`.
  void LaunchRepair(p4::PassContext& ctx, size_t q, net::RepairTarget target, uint64_t value);

  SchedulingPolicy* policy_;
  bool parallel_priority_stages_;
  trace::Recorder* recorder_ = nullptr;
  std::vector<std::unique_ptr<SwitchQueue>> queues_;
  RankFunction* rank_function_ = nullptr;
  std::unique_ptr<p4::Pifo<QueueEntry>> pifo_;  // non-null only in PIFO mode
  DraconisCounters counters_;
};

}  // namespace draconis::core

#endif  // DRACONIS_CORE_DRACONIS_PROGRAM_H_
