// Deploys the Draconis in-network scheduler (the DraconisProgram on a
// SwitchPipeline, plus the pull-based executor fleet) on a Testbed. Lives
// next to the scheduler it deploys; registered in the DeploymentRegistry
// (cluster/deployment.cc).
//
// With a multi-rack ClusterTopology (docs/topology.md) the deployment builds
// one switch instance per rack (each rack's ToR runs its own pipeline,
// program, and — in PIFO mode — rank function), plus the cross-rack
// placement runtime: per-rack depth directories, summary exchanges and
// publishers, and the submission routers clients consult per packet.

#ifndef DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_
#define DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "cluster/deployment.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "p4/pipeline.h"
#include "topology/fabric.h"
#include "topology/placement.h"

namespace draconis::core {

class DraconisDeployment : public cluster::PullBasedDeployment {
 public:
  explicit DraconisDeployment(const cluster::ExperimentConfig& config);

  void Build(cluster::Testbed& testbed) override;
  void ConfigureClient(cluster::ClientConfig& client) override;
  void Harvest(cluster::ExperimentResult& result) override;
  bool Failover(cluster::Testbed& testbed) override;

 private:
  // One scheduler instance: a policy, the rank function (PIFO mode only),
  // the program running them, and the pipeline hosting the program. One per
  // rack, plus a cold standby when a §3.3 fault plan asks for a failover.
  struct Instance {
    std::unique_ptr<SchedulingPolicy> policy;
    std::unique_ptr<RankFunction> rank_function;
    std::unique_ptr<DraconisProgram> program;
    std::unique_ptr<p4::SwitchPipeline> pipeline;
  };

  Instance BuildInstance(cluster::Testbed& testbed, bool attach_as_switch);

  // The per-rack instances; racks_[0] is the legacy single-switch active
  // instance (built through the testbed-attach path so fault-free 1-rack
  // runs keep the exact node-id assignment order the goldens pin).
  std::vector<Instance> racks_;
  // §3.3 standby for rack 0's ToR. Starts empty (queue state is *not*
  // replicated: the single-access register model has no cross-switch
  // mirroring primitive, so queued state on the failed switch is
  // reconstructed by client timeout resubmission — safe because duplicate
  // completions are suppressed, §8.3).
  Instance standby_;

  // Cross-rack placement runtime; all empty unless the topology has >= 2
  // racks (a 1-rack topology registers no extra endpoints and schedules no
  // extra events, which is what keeps it bit-identical to the legacy
  // single-switch layout).
  std::vector<std::unique_ptr<topology::DepthDirectory>> directories_;
  std::vector<std::unique_ptr<topology::SummaryExchange>> exchanges_;
  std::vector<std::unique_ptr<topology::SummaryPublisher>> publishers_;
  std::vector<std::unique_ptr<topology::PlacementPolicy>> policies_;
  std::vector<std::unique_ptr<topology::SubmissionRouter>> routers_;

  uint64_t failovers_ = 0;
};

cluster::DeploymentInfo DraconisDeploymentInfo();

}  // namespace draconis::core

#endif  // DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_
