// Deploys the Draconis in-network scheduler (the DraconisProgram on a
// SwitchPipeline, plus the pull-based executor fleet) on a Testbed. Lives
// next to the scheduler it deploys; registered in the DeploymentRegistry
// (cluster/deployment.cc).

#ifndef DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_
#define DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_

#include <memory>

#include "cluster/deployment.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "p4/pipeline.h"

namespace draconis::core {

class DraconisDeployment : public cluster::PullBasedDeployment {
 public:
  explicit DraconisDeployment(const cluster::ExperimentConfig& config);

  void Build(cluster::Testbed& testbed) override;
  void Harvest(cluster::ExperimentResult& result) override;

 private:
  std::unique_ptr<SchedulingPolicy> policy_;
  std::unique_ptr<DraconisProgram> program_;
  std::unique_ptr<p4::SwitchPipeline> pipeline_;
};

cluster::DeploymentInfo DraconisDeploymentInfo();

}  // namespace draconis::core

#endif  // DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_
