// Deploys the Draconis in-network scheduler (the DraconisProgram on a
// SwitchPipeline, plus the pull-based executor fleet) on a Testbed. Lives
// next to the scheduler it deploys; registered in the DeploymentRegistry
// (cluster/deployment.cc).

#ifndef DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_
#define DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_

#include <memory>

#include "cluster/deployment.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "p4/pipeline.h"

namespace draconis::core {

class DraconisDeployment : public cluster::PullBasedDeployment {
 public:
  explicit DraconisDeployment(const cluster::ExperimentConfig& config);

  void Build(cluster::Testbed& testbed) override;
  void Harvest(cluster::ExperimentResult& result) override;
  bool Failover(cluster::Testbed& testbed) override;

 private:
  // One scheduler instance: a policy, the rank function (PIFO mode only),
  // the program running them, and the pipeline hosting the program. Built
  // twice when a §3.3 fault plan asks for a failover (active switch + cold
  // standby).
  struct Instance {
    std::unique_ptr<SchedulingPolicy> policy;
    std::unique_ptr<RankFunction> rank_function;
    std::unique_ptr<DraconisProgram> program;
    std::unique_ptr<p4::SwitchPipeline> pipeline;
  };

  Instance BuildInstance(cluster::Testbed& testbed, bool attach_as_switch);

  Instance active_;
  // §3.3 standby. Starts empty (queue state is *not* replicated: the
  // single-access register model has no cross-switch mirroring primitive, so
  // queued state on the failed switch is reconstructed by client timeout
  // resubmission — safe because duplicate completions are suppressed, §8.3).
  Instance standby_;
  uint64_t failovers_ = 0;
};

cluster::DeploymentInfo DraconisDeploymentInfo();

}  // namespace draconis::core

#endif  // DRACONIS_CORE_DRACONIS_DEPLOYMENT_H_
