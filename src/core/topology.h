// Cluster topology: the worker-node -> rack mapping used by the
// locality-aware policy (paper §5.3) and by the data-access latency model in
// the executors. On the real system this mapping is a match-action table
// installed by the network controller.

#ifndef DRACONIS_CORE_TOPOLOGY_H_
#define DRACONIS_CORE_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace draconis::core {

class Topology {
 public:
  explicit Topology(std::vector<uint32_t> rack_of_node)
      : rack_of_node_(std::move(rack_of_node)) {}

  // num_nodes workers spread round-robin across num_racks racks.
  static Topology Uniform(size_t num_nodes, size_t num_racks) {
    DRACONIS_CHECK(num_racks > 0);
    std::vector<uint32_t> map(num_nodes);
    for (size_t n = 0; n < num_nodes; ++n) {
      map[n] = static_cast<uint32_t>(n % num_racks);
    }
    return Topology(std::move(map));
  }

  uint32_t RackOf(uint32_t node) const {
    DRACONIS_CHECK_MSG(node < rack_of_node_.size(), "unknown worker node");
    return rack_of_node_[node];
  }

  bool SameRack(uint32_t a, uint32_t b) const { return RackOf(a) == RackOf(b); }

  size_t num_nodes() const { return rack_of_node_.size(); }

  size_t num_racks() const {
    uint32_t max_rack = 0;
    for (uint32_t r : rack_of_node_) {
      max_rack = r > max_rack ? r : max_rack;
    }
    return rack_of_node_.empty() ? 0 : max_rack + 1;
  }

 private:
  std::vector<uint32_t> rack_of_node_;
};

}  // namespace draconis::core

#endif  // DRACONIS_CORE_TOPOLOGY_H_
