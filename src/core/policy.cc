#include "core/policy.h"

#include <algorithm>

#include "common/check.h"

namespace draconis::core {

PriorityPolicy::PriorityPolicy(size_t levels) : levels_(levels) {
  DRACONIS_CHECK_MSG(levels >= 1, "priority policy needs at least one level");
}

size_t PriorityPolicy::QueueForTask(const net::TaskInfo& task) const {
  // TPROPS holds the 1-based priority level; clamp malformed values into
  // range rather than dropping the task.
  const uint32_t level = std::clamp<uint32_t>(task.tprops, 1, static_cast<uint32_t>(levels_));
  return level - 1;
}

bool ResourcePolicy::ShouldAssign(QueueEntry& entry, uint32_t exec_props) {
  const bool satisfied = (entry.task.tprops & ~exec_props) == 0;
  if (!satisfied) {
    ++entry.skip_counter;
  }
  return satisfied;
}

LocalityPolicy::LocalityPolicy(const Topology* topology, Limits limits, uint32_t max_swaps)
    : topology_(topology), limits_(limits), max_swaps_(max_swaps) {
  DRACONIS_CHECK(topology != nullptr);
  DRACONIS_CHECK_MSG(limits.rack_start_limit <= limits.global_start_limit,
                     "rack_start_limit must not exceed global_start_limit");
}

bool LocalityPolicy::ShouldAssign(QueueEntry& entry, uint32_t exec_props) {
  const uint32_t data_node = entry.task.tprops;
  const uint32_t exec_node = exec_props;

  if (exec_node == data_node) {
    entry.task.meta.placement = net::TaskInfo::Placement::kLocal;
    return true;
  }

  // §5.3: the counter is incremented, then examined.
  ++entry.skip_counter;
  const uint32_t skips = entry.skip_counter;

  if (skips <= limits_.rack_start_limit) {
    return false;  // still insisting on the data-local node
  }
  if (skips <= limits_.global_start_limit) {
    if (topology_->SameRack(exec_node, data_node)) {
      entry.task.meta.placement = net::TaskInfo::Placement::kSameRack;
      return true;
    }
    return false;
  }
  // Past the global limit: run anywhere.
  entry.task.meta.placement = ClassifyPlacement(*topology_, data_node, exec_node);
  return true;
}

net::TaskInfo::Placement ClassifyPlacement(const Topology& topology, uint32_t data_node,
                                           uint32_t exec_node) {
  if (exec_node == data_node) {
    return net::TaskInfo::Placement::kLocal;
  }
  if (topology.SameRack(exec_node, data_node)) {
    return net::TaskInfo::Placement::kSameRack;
  }
  return net::TaskInfo::Placement::kRemote;
}

}  // namespace draconis::core
