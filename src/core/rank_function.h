// Rank functions: the policy side of the PIFO platform (docs/pifo.md).
//
// A RankFunction maps an arriving task to the 64-bit rank that orders it in
// the p4::Pifo — the "programmable packet scheduling" split (Sivaraman et
// al.): the PIFO block is policy-free, the policy lives entirely in the rank
// computation performed by the match-action stages of the same enqueue pass.
// Lower ranks dequeue first; rank ties resolve FIFO by arrival order (the
// PIFO's contract), so every rank function below is automatically
// work-conserving and starvation-ordered within a rank.
//
// Comparator laws (after *Formal Abstractions for Packet Scheduling*): the
// order induced by (rank, arrival seq) must be total and transitive — free
// here because ranks are integers — and each policy must be monotone in its
// key (priority level, remaining service, absolute deadline, virtual start
// time). tests/rank_function_test.cc pins all of these.
//
// Rank computation happens inside an enqueue pass and may touch the rank
// function's own register groups (WFQ keeps per-tenant finish tags and a
// virtual clock); the one-access-per-register rule of register.h applies
// unchanged, which keeps every policy implementable in real stages.

#ifndef DRACONIS_CORE_RANK_FUNCTION_H_
#define DRACONIS_CORE_RANK_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "net/packet.h"
#include "p4/register.h"

namespace draconis::core {

// The switch queueing discipline. kFifo is the paper's circular queue
// (switch_queue.h); every other value replaces it with a rank-ordered
// p4::Pifo driven by the matching RankFunction.
enum class SwitchPolicy : uint8_t {
  kFifo,
  kStrictPriority,  // rank = TPROPS priority level (1 = most urgent)
  kSrpt,            // rank = declared execution time (shortest first)
  kEdf,             // rank = now + TPROPS-as-relative-deadline (µs)
  kWfq,             // rank = per-tenant virtual start time (TPROPS = tenant)
};

// Enumeration order == flag/wire order (mirrors the DeploymentRegistry
// convention for scheduler kinds).
const std::vector<SwitchPolicy>& AllSwitchPolicies();

// Round-trippable flag spelling ("fifo", "sp", "srpt", "edf", "wfq").
const char* SwitchPolicyName(SwitchPolicy policy);
bool SwitchPolicyFromName(const std::string& name, SwitchPolicy* out);

class RankFunction {
 public:
  virtual ~RankFunction() = default;

  virtual const char* name() const = 0;

  // The rank for `task`, computed during its enqueue pass. May perform this
  // rank function's own register accesses within the same pass.
  virtual uint64_t Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) = 0;

  // Dequeue observation hook, called in the pass that popped a task of rank
  // `rank` (WFQ advances its virtual clock here). Default: stateless no-op.
  virtual void OnDequeue(p4::PacketPass& pass, uint64_t rank) {
    (void)pass;
    (void)rank;
  }
};

// Today's hard-coded pipeline behaviour as a rank function: rank = the
// TPROPS priority level, so an all-default (TPROPS = 0) workload degenerates
// to pure FIFO — bit-identical to the circular queue (determinism_test.cc).
class StrictPriorityRank : public RankFunction {
 public:
  const char* name() const override { return "sp"; }
  uint64_t Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) override;
};

// Shortest remaining processing time. The switch never sees progress, so
// "remaining" is the client-declared execution time riding in TASK_INFO —
// the same field the executors use to run the task.
class SrptRank : public RankFunction {
 public:
  const char* name() const override { return "srpt"; }
  uint64_t Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) override;
};

// Earliest deadline first. TPROPS carries the task's relative deadline in
// microseconds (workload::TagDeadlines); rank = enqueue time + deadline, an
// absolute nanosecond deadline. TPROPS = 0 degenerates to FIFO.
class EdfRank : public RankFunction {
 public:
  const char* name() const override { return "edf"; }
  uint64_t Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) override;
};

// Per-tenant weighted fair queueing via start-time fair queueing (SFQ):
// TPROPS is the tenant id, rank = max(virtual clock, tenant finish tag), and
// the tenant's finish tag advances by cost / weight. The virtual clock — one
// register — advances to the start tag of each dequeued task (OnDequeue), so
// an idle tenant re-enters at the current virtual time instead of burning
// saved-up credit. Finish tags live in one register per tenant; both groups
// obey the one-access rule (clock is read in the enqueue pass, written in
// the dequeue pass).
class WfqRank : public RankFunction {
 public:
  // `weights` must be non-empty and positive; tenant ids clamp to the last
  // entry (mirroring the queue-index clamp in the FIFO pipeline). `ledger`
  // (optional) accounts the tag and clock registers.
  explicit WfqRank(std::vector<uint32_t> weights, p4::ResourceLedger* ledger = nullptr);

  const char* name() const override { return "wfq"; }
  uint64_t Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) override;
  void OnDequeue(p4::PacketPass& pass, uint64_t rank) override;

  uint64_t cp_virtual_time() const { return virtual_clock_.ControlPlaneRead(0); }
  uint64_t cp_finish_tag(size_t tenant) const { return finish_tags_.ControlPlaneRead(tenant); }

 private:
  std::vector<uint32_t> weights_;
  p4::RegisterArray<uint64_t> finish_tags_;
  p4::RegisterArray<uint64_t> virtual_clock_;
};

// Per-policy knobs a deployment forwards from its ExperimentConfig.
struct RankFunctionConfig {
  std::vector<uint32_t> wfq_weights = {1, 1};
};

// Builds the rank function for `policy`; nullptr for kFifo (no PIFO).
std::unique_ptr<RankFunction> MakeRankFunction(SwitchPolicy policy,
                                               const RankFunctionConfig& config,
                                               p4::ResourceLedger* ledger = nullptr);

}  // namespace draconis::core

#endif  // DRACONIS_CORE_RANK_FUNCTION_H_
