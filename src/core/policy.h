// Scheduling policies (paper §4.8, §5, §6).
//
// A policy customizes the Draconis switch program along three axes:
//   - queue replication: how many class-of-service queues exist and which one
//     a task is inserted into (§6);
//   - the per-retrieval examination: whether a dequeued task may run on the
//     requesting executor, updating the task's skip counter (§5);
//   - the swap bound: how many task-swapping recirculations a single
//     task_request may spend before the walk gives up (§5.1).
//
// The meaning of the packet fields is policy-specific: TPROPS carries a
// resource bitmap, a priority level, or a data-local node id; EXEC_PROPS
// carries the executor's resource bitmap or its worker-node id.

#ifndef DRACONIS_CORE_POLICY_H_
#define DRACONIS_CORE_POLICY_H_

#include <cstdint>

#include "core/queue_entry.h"
#include "core/topology.h"
#include "net/packet.h"

namespace draconis::core {

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual const char* name() const = 0;

  // Number of replicated class-of-service queues (1 unless priority-aware).
  virtual size_t num_queues() const { return 1; }

  // Queue a submitted task is inserted into (0-based).
  virtual size_t QueueForTask(const net::TaskInfo& task) const {
    (void)task;
    return 0;
  }

  // Examines a retrieved entry against the requesting executor's EXEC_PROPS.
  // Returns true to assign; returning false asks the program to swap the task
  // back and look deeper. May mutate the entry (skip counter, placement tag).
  virtual bool ShouldAssign(QueueEntry& entry, uint32_t exec_props) {
    (void)entry;
    (void)exec_props;
    return true;
  }

  // Upper bound on swap recirculations per task_request (0: never swap).
  virtual uint32_t max_swaps() const { return 0; }
};

// §4.8 — centralized first-come-first-served. Every task is assignable to
// every executor.
class FcfsPolicy : public SchedulingPolicy {
 public:
  const char* name() const override { return "fcfs"; }
};

// §6.1 — task-level priorities via queue replication. TPROPS is the priority
// level (1 = highest). Tasks within a level run FCFS.
class PriorityPolicy : public SchedulingPolicy {
 public:
  explicit PriorityPolicy(size_t levels);

  const char* name() const override { return "priority"; }
  size_t num_queues() const override { return levels_; }
  size_t QueueForTask(const net::TaskInfo& task) const override;

  size_t levels() const { return levels_; }

 private:
  size_t levels_;
};

// §5.2 — hard resource constraints. TPROPS and EXEC_PROPS are bitmaps; a task
// is assignable iff the executor offers every resource the task demands.
class ResourcePolicy : public SchedulingPolicy {
 public:
  explicit ResourcePolicy(uint32_t max_swaps = 16) : max_swaps_(max_swaps) {}

  const char* name() const override { return "resource"; }
  bool ShouldAssign(QueueEntry& entry, uint32_t exec_props) override;
  uint32_t max_swaps() const override { return max_swaps_; }

 private:
  uint32_t max_swaps_;
};

// §5.3 — data-locality preference with escalation. TPROPS is the data-local
// worker node; EXEC_PROPS is the requesting executor's worker node. Each time
// a task is examined and skipped its skip counter grows, progressively
// relaxing the constraint from node-local to rack-local to anywhere.
class LocalityPolicy : public SchedulingPolicy {
 public:
  struct Limits {
    uint32_t rack_start_limit = 3;
    uint32_t global_start_limit = 9;
  };

  // `topology` must outlive the policy.
  LocalityPolicy(const Topology* topology, Limits limits, uint32_t max_swaps = 16);

  const char* name() const override { return "locality"; }
  bool ShouldAssign(QueueEntry& entry, uint32_t exec_props) override;
  uint32_t max_swaps() const override { return max_swaps_; }

  const Limits& limits() const { return limits_; }

 private:
  const Topology* topology_;
  Limits limits_;
  uint32_t max_swaps_;
};

// Computes the placement tag of an assignment: where the executor's node sits
// relative to the task's data-local node. Used by every policy (including
// FCFS when run on a locality-tagged workload) for Fig. 10's metrics.
net::TaskInfo::Placement ClassifyPlacement(const Topology& topology, uint32_t data_node,
                                           uint32_t exec_node);

}  // namespace draconis::core

#endif  // DRACONIS_CORE_POLICY_H_
