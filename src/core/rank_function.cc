#include "core/rank_function.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/check.h"

namespace draconis::core {

namespace {

// A no-op task (declared duration 0) still has to move a tenant's finish tag
// forward, or a no-op flood would never be charged; bill it as 1 µs.
constexpr TimeNs kWfqMinCost = FromMicros(1);

std::string AsciiLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const std::vector<SwitchPolicy>& AllSwitchPolicies() {
  static const std::vector<SwitchPolicy> kAll = {
      SwitchPolicy::kFifo, SwitchPolicy::kStrictPriority, SwitchPolicy::kSrpt,
      SwitchPolicy::kEdf, SwitchPolicy::kWfq};
  return kAll;
}

const char* SwitchPolicyName(SwitchPolicy policy) {
  switch (policy) {
    case SwitchPolicy::kFifo:
      return "fifo";
    case SwitchPolicy::kStrictPriority:
      return "sp";
    case SwitchPolicy::kSrpt:
      return "srpt";
    case SwitchPolicy::kEdf:
      return "edf";
    case SwitchPolicy::kWfq:
      return "wfq";
  }
  return "unknown";
}

bool SwitchPolicyFromName(const std::string& name, SwitchPolicy* out) {
  DRACONIS_CHECK(out != nullptr);
  for (SwitchPolicy policy : AllSwitchPolicies()) {
    if (AsciiLower(name) == SwitchPolicyName(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

uint64_t StrictPriorityRank::Rank(p4::PacketPass& pass, const net::TaskInfo& task,
                                  TimeNs now) {
  (void)pass;
  (void)now;
  return task.tprops;
}

uint64_t SrptRank::Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) {
  (void)pass;
  (void)now;
  return static_cast<uint64_t>(std::max<TimeNs>(0, task.meta.exec_duration));
}

uint64_t EdfRank::Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) {
  (void)pass;
  return static_cast<uint64_t>(now) + static_cast<uint64_t>(FromMicros(task.tprops));
}

WfqRank::WfqRank(std::vector<uint32_t> weights, p4::ResourceLedger* ledger)
    : weights_(std::move(weights)),
      finish_tags_("wfq_finish_tags", std::max<size_t>(1, weights_.size()), 0, ledger,
                   /*wire_bytes_per_element=*/8),
      virtual_clock_("wfq_virtual_clock", 1, 0, ledger, /*wire_bytes_per_element=*/8) {
  DRACONIS_CHECK_MSG(!weights_.empty(), "WFQ needs at least one tenant weight");
  for (uint32_t w : weights_) {
    DRACONIS_CHECK_MSG(w > 0, "WFQ weights must be positive");
  }
}

uint64_t WfqRank::Rank(p4::PacketPass& pass, const net::TaskInfo& task, TimeNs now) {
  (void)now;
  const size_t tenant = std::min<size_t>(task.tprops, weights_.size() - 1);
  const uint64_t cost =
      static_cast<uint64_t>(std::max<TimeNs>(kWfqMinCost, task.meta.exec_duration)) /
      weights_[tenant];
  // Stage order on hardware: the clock is read in an earlier stage and rides
  // as packet metadata into the finish-tag stage's stateful ALU.
  const uint64_t vnow = virtual_clock_.Read(pass, 0);
  uint64_t start = 0;
  finish_tags_.Update(pass, tenant, [&](uint64_t finish) {
    start = std::max(vnow, finish);
    return start + cost;
  });
  return start;
}

void WfqRank::OnDequeue(p4::PacketPass& pass, uint64_t rank) {
  // SFQ: virtual time is the start tag of the task entering service. The max
  // keeps it monotone when a stale (smaller-rank) pop lands late.
  virtual_clock_.Update(pass, 0,
                        [rank](uint64_t v) { return std::max(v, rank); });
}

std::unique_ptr<RankFunction> MakeRankFunction(SwitchPolicy policy,
                                               const RankFunctionConfig& config,
                                               p4::ResourceLedger* ledger) {
  switch (policy) {
    case SwitchPolicy::kFifo:
      return nullptr;
    case SwitchPolicy::kStrictPriority:
      return std::make_unique<StrictPriorityRank>();
    case SwitchPolicy::kSrpt:
      return std::make_unique<SrptRank>();
    case SwitchPolicy::kEdf:
      return std::make_unique<EdfRank>();
    case SwitchPolicy::kWfq:
      return std::make_unique<WfqRank>(config.wfq_weights, ledger);
  }
  return nullptr;
}

}  // namespace draconis::core
