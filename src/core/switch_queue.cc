#include "core/switch_queue.h"

#include "common/check.h"

namespace draconis::core {

SwitchQueue::SwitchQueue(const std::string& name, size_t capacity, p4::ResourceLedger* ledger,
                         bool shadow_copy_dequeue)
    : capacity_(capacity),
      shadow_copy_dequeue_(shadow_copy_dequeue),
      add_ptr_(name + ".add_ptr", 1, 0, ledger, 8),
      add_shadow_(name + ".add_shadow", 1, 0, ledger, 8),
      retrieve_ptr_(name + ".retrieve_ptr", 1, 0, ledger, 8),
      repair_state_(name + ".repair_state", 1, RepairState{}, ledger, RepairState::kWireSize),
      entries_(name + ".entries", capacity, QueueEntry{}, ledger, QueueEntry::kWireSize) {
  DRACONIS_CHECK_MSG(capacity > 0, "queue capacity must be positive");
}

SwitchQueue::EnqueueResult SwitchQueue::Enqueue(p4::PacketPass& pass, const QueueEntry& entry) {
  DRACONIS_CHECK_MSG(entry.valid, "cannot enqueue an invalid entry");
  EnqueueResult result;

  // Stage 1: optimistic read-and-increment of add_ptr — the only access to
  // that register this pass, so fullness cannot be checked first.
  const uint64_t old_add = add_ptr_.ReadAndAdd(pass, 0, 1);
  const uint64_t rptr = retrieve_ptr_.Read(pass, 0);

  // retrieve_ptr may legitimately exceed add_ptr after dequeues on an empty
  // queue (§4.5), and stays garbage until the repair lands.
  const bool overrun = rptr > old_add;

  // Stage 3: one atomic pass over the repair state decides the outcome.
  //   - A pending add repair means add_ptr is inflated: refuse (the repair
  //     in flight covers our mistaken increment too).
  //   - Fullness is judged against the best available retrieve value: the
  //     raw pointer normally, the published repair target (hint) while a
  //     retrieve repair is in flight, or our own slot when we are the
  //     overrun detector (the overrun means the queue is empty right now).
  //     A genuinely full queue sets the add-pending bit; the setter owns the
  //     add repair (§4.7.1).
  //   - An undetected overrun makes this submission the detector: it may
  //     write (the queue is empty) and owns the retrieve repair, publishing
  //     its slot as the hint (§4.5).
  enum class Outcome { kWrite, kWriteOwnRetrieveRepair, kRefuseQuiet, kRefuseOwnAddRepair };
  Outcome outcome = Outcome::kWrite;
  repair_state_.Update(pass, 0, [&](RepairState state) {
    uint64_t effective_rptr;
    if (state.retrieve_pending) {
      effective_rptr = state.hint;
    } else if (overrun) {
      effective_rptr = old_add;
    } else {
      effective_rptr = rptr;
    }
    const bool full =
        static_cast<int64_t>(old_add - effective_rptr) >= static_cast<int64_t>(capacity_);

    if (state.add_pending) {
      outcome = Outcome::kRefuseQuiet;
    } else if (full) {
      state.add_pending = true;
      outcome = Outcome::kRefuseOwnAddRepair;
    } else if (overrun && !state.retrieve_pending) {
      state.retrieve_pending = true;
      state.hint = old_add;
      outcome = Outcome::kWriteOwnRetrieveRepair;
    }
    return state;
  });

  if (outcome == Outcome::kRefuseQuiet) {
    return result;
  }
  if (outcome == Outcome::kRefuseOwnAddRepair) {
    result.need_add_repair = true;
    result.add_repair_value = old_add;
    return result;
  }

  // Stage 5: write the task into its slot, then publish the new add pointer
  // to the shadow register the dequeue path conditions on. (The shadow is
  // written only on successful adds, so a full-queue mistake never inflates
  // it.)
  entries_.Write(pass, old_add % capacity_, entry);
  if (shadow_copy_dequeue_) {
    add_shadow_.Write(pass, 0, old_add + 1);
  }
  result.added = true;
  result.slot = old_add;

  // §4.5: the task we just wrote sits behind the overrun retrieve pointer
  // and would never be scheduled; snap retrieve_ptr back to it via a repair
  // packet (we own the repair: we set the pending bit above).
  if (outcome == Outcome::kWriteOwnRetrieveRepair) {
    result.need_retrieve_repair = true;
    result.retrieve_repair_value = old_add;
  }
  return result;
}

SwitchQueue::DequeueResult SwitchQueue::Dequeue(p4::PacketPass& pass) {
  DequeueResult result;

  // §4.7.2: a pending retrieve repair means retrieve_ptr is currently
  // meaningless; answer no-op and let the repair land. (This state read is an
  // earlier stage than the pointer, so the shadow-mode dequeue can predicate
  // the pointer access on it.)
  if (repair_state_.Read(pass, 0).retrieve_pending) {
    result.repair_pending = true;
    if (!shadow_copy_dequeue_) {
      // The textbook pipeline already incremented the pointer in stage 1;
      // model that by taking the access anyway.
      result.slot = retrieve_ptr_.ReadAndAdd(pass, 0, 1);
    }
    return result;
  }

  uint64_t old_r;
  if (shadow_copy_dequeue_) {
    // Production dequeue: increment only while retrieve_ptr trails the
    // shadow add pointer, so polling an empty queue never over-runs.
    const uint64_t limit = add_shadow_.Read(pass, 0);
    if (limit == 0) {
      return result;  // nothing ever enqueued
    }
    const auto [old_value, claimed] = retrieve_ptr_.AddIfAtMost(pass, 0, limit - 1, 1);
    if (!claimed) {
      return result;  // empty: no mistake made, no repair needed
    }
    old_r = old_value;
  } else {
    // Textbook §4.2/§4.5 dequeue: optimistic read-and-increment; an invalid
    // slot below means the increment was a mistake, repaired by the next
    // enqueue.
    old_r = retrieve_ptr_.ReadAndAdd(pass, 0, 1);
  }
  result.slot = old_r;

  // Read the slot and clear it in one atomic exchange. Clearing is what
  // makes a dequeue-on-empty detectable (the stale entry's valid flag would
  // otherwise cause a double dispatch after pointer wraparound).
  QueueEntry taken = entries_.Exchange(pass, old_r % capacity_, QueueEntry{});
  if (taken.valid) {
    result.got_task = true;
    result.entry = std::move(taken);
  }
  return result;
}

SwitchQueue::SwapResult SwitchQueue::SwapAt(p4::PacketPass& pass, uint64_t pkt_retrieve_ptr,
                                            uint64_t swap_indx, const QueueEntry& incoming) {
  DRACONIS_CHECK_MSG(incoming.valid, "cannot swap in an invalid entry");
  SwapResult result;

  // Read-only views of both pointers (a swap pass never moves them).
  const uint64_t cur_r = retrieve_ptr_.Read(pass, 0);
  const uint64_t cur_add = add_ptr_.Read(pass, 0);
  result.head = cur_r;

  // Staleness rule (§5.1): if the retrieve pointer advanced past the value
  // recorded in the packet, the walk's target may already have been passed
  // over; swapping there would strand the carried task. Swap with the head
  // instead.
  const uint64_t target = (pkt_retrieve_ptr < cur_r) ? cur_r : swap_indx;

  if (target >= cur_add) {
    result.past_end = true;
    return result;
  }

  QueueEntry previous = entries_.Exchange(pass, target % capacity_, incoming);
  result.slot = target;
  if (previous.valid) {
    result.swapped = true;
    result.previous = std::move(previous);
  }
  // !previous.valid is a defensive corner: the carried task is now stored in
  // a retrievable slot, so the caller just ends the walk.
  return result;
}

void SwitchQueue::ApplyRepair(p4::PacketPass& pass, net::RepairTarget target, uint64_t value) {
  if (target == net::RepairTarget::kAddPtr) {
    add_ptr_.Write(pass, 0, value);
    repair_state_.Update(pass, 0, [](RepairState state) {
      state.add_pending = false;
      return state;
    });
  } else {
    retrieve_ptr_.Write(pass, 0, value);
    repair_state_.Update(pass, 0, [](RepairState state) {
      state.retrieve_pending = false;
      return state;
    });
  }
}

uint64_t SwitchQueue::cp_occupancy() const {
  const uint64_t add = cp_add_ptr();
  const uint64_t rptr = cp_retrieve_ptr();
  return add > rptr ? add - rptr : 0;
}

}  // namespace draconis::core
