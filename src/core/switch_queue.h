// The paper's P4-compatible circular queue (§4.2–§4.7).
//
// The queue is built from register arrays that obey the one-access-per-packet
// rule, so neither enqueue nor dequeue can "check, then update" a pointer.
// Instead, both paths optimistically read-and-increment their pointer and
// repair mistakes afterwards:
//
//   - Enqueue increments add_ptr first, then discovers the queue is full. A
//     repair packet (recirculated, deduplicated by a repair flag) resets
//     add_ptr to its pre-mistake value. While the flag is set, further
//     submissions are refused: add_ptr is known-inflated, so a write through
//     it could be silently undone by the in-flight repair.
//   - Dequeue increments retrieve_ptr first, then discovers the slot is
//     invalid (queue empty). The correction is deferred to the next
//     job_submission (§4.5), which detects retrieve_ptr > add_ptr and
//     recirculates a repair that snaps retrieve_ptr to the index of the task
//     it just added. Requests that observe the pending-repair flag return
//     no-ops (§4.7.2).
//
// Shadow-copy dequeue (enabled by default): a busy cluster polls an *empty*
// queue tens of millions of times per second, and with the textbook §4.5
// scheme every one of those polls over-runs retrieve_ptr, so every enqueue
// into an empty queue costs a repair recirculation — and while the repair
// flag is set all retrievals answer no-ops (§4.7.2), starving the queue
// under churn. The production fix keeps a *shadow copy* of add_ptr in a
// second register (written by the enqueue pass one stage later): the dequeue
// conditions its increment on retrieve_ptr < shadow (a single predicated
// fetch-and-add, P4-legal), so polling an empty queue no longer over-runs
// the pointer at all. The §4.5 delayed-repair machinery remains — it still
// covers the full-queue add_ptr mistake, and the textbook variant can be
// selected (shadow_copy_dequeue = false) for tests and the design-choice
// ablation bench.
//
// Pointers are 64-bit monotonically increasing; the slot index is ptr mod
// capacity. (The paper uses 32-bit pointers; 64-bit is behaviourally
// identical within any run and sidesteps wraparound arithmetic.)
//
// Tie-break contract: within one queue, dequeue order is exactly the order
// in which entries were ADMITTED (Enqueue returned added) — strict FIFO. In
// the priority pipeline each level owns its own SwitchQueue, so
// equal-priority tasks dequeue in arrival order. Repair episodes refuse or
// no-op operations but never reorder admitted entries, in either dequeue
// mode. The PIFO platform (docs/pifo.md) leans on this: its rank-tie
// resolution is FIFO-by-arrival precisely so the strict-priority rank
// function reproduces this queue bit for bit, and
// switch_queue_test.EqualPriorityTasksDequeueInArrivalOrderAcrossRepairs
// pins the contract.
//
// All methods that take a PacketPass perform register accesses and must be
// called at most once per pass, per queue.

#ifndef DRACONIS_CORE_SWITCH_QUEUE_H_
#define DRACONIS_CORE_SWITCH_QUEUE_H_

#include <cstdint>
#include <string>

#include "core/queue_entry.h"
#include "net/packet.h"
#include "p4/register.h"

namespace draconis::core {

class SwitchQueue {
 public:
  // Pointer-repair bookkeeping, held in ONE register so a pass can read and
  // update it atomically (a stateful-ALU register pair: two pending bits and
  // the 32-bit repair target). Split flag registers cannot coordinate the
  // two repair types atomically: an overrun detector could set the retrieve
  // flag and then discover a pending add repair forbids its write, leaving a
  // flag set that no repair packet will ever clear.
  struct RepairState {
    bool add_pending = false;
    bool retrieve_pending = false;
    uint64_t hint = 0;  // where the pending retrieve repair will snap rptr

    static constexpr size_t kWireSize = 8;  // 32-bit hint + flags, padded
  };

  // `ledger` (optional) accumulates the switch SRAM this queue consumes.
  // `shadow_copy_dequeue` selects the production dequeue (see above); false
  // gives the paper's textbook overrun-and-repair behaviour.
  SwitchQueue(const std::string& name, size_t capacity, p4::ResourceLedger* ledger = nullptr,
              bool shadow_copy_dequeue = true);

  SwitchQueue(const SwitchQueue&) = delete;
  SwitchQueue& operator=(const SwitchQueue&) = delete;

  size_t capacity() const { return capacity_; }

  struct EnqueueResult {
    bool added = false;    // the entry was written into the queue
    uint64_t slot = 0;     // absolute position written (valid when added)
    // The caller must recirculate a repair packet for the given pointer.
    bool need_add_repair = false;
    uint64_t add_repair_value = 0;
    bool need_retrieve_repair = false;
    uint64_t retrieve_repair_value = 0;
  };

  // Enqueue path for one task (the first task of a job_submission pass).
  // When !added the submission must be refused (queue full or an add-pointer
  // repair is in flight).
  EnqueueResult Enqueue(p4::PacketPass& pass, const QueueEntry& entry);

  struct DequeueResult {
    bool got_task = false;
    QueueEntry entry;        // valid when got_task
    uint64_t slot = 0;       // absolute position the entry came from
    bool repair_pending = false;  // retrieve repair in flight: answer no-op
  };

  // Dequeue path for a task_request pass. A miss on an empty queue leaves
  // retrieve_ptr over-incremented on purpose (corrected by the next enqueue).
  DequeueResult Dequeue(p4::PacketPass& pass);

  struct SwapResult {
    bool swapped = false;   // a valid entry came out; `previous` holds it
    QueueEntry previous;
    uint64_t slot = 0;      // absolute position of the exchange
    uint64_t head = 0;      // retrieve_ptr observed during this pass
    bool past_end = false;  // target >= add_ptr: nothing left to examine
  };

  // Task-swapping pass (§5.1). Exchanges `incoming` with the entry at
  // `swap_indx` — or at the head if `pkt_retrieve_ptr` is stale — without
  // touching either pointer. When past_end, no register write happened and
  // the caller re-enqueues the carried task as a job_submission.
  SwapResult SwapAt(p4::PacketPass& pass, uint64_t pkt_retrieve_ptr, uint64_t swap_indx,
                    const QueueEntry& incoming);

  // Repair-packet pass: overwrite a pointer with an absolute value and clear
  // the corresponding repair flag.
  void ApplyRepair(p4::PacketPass& pass, net::RepairTarget target, uint64_t value);

  // --- Control-plane observability (tests and capacity accounting) ---------
  uint64_t cp_add_ptr() const { return add_ptr_.ControlPlaneRead(0); }
  uint64_t cp_retrieve_ptr() const { return retrieve_ptr_.ControlPlaneRead(0); }
  bool cp_add_repair_flag() const { return repair_state_.ControlPlaneRead(0).add_pending; }
  bool cp_retrieve_repair_flag() const {
    return repair_state_.ControlPlaneRead(0).retrieve_pending;
  }
  const QueueEntry& cp_entry(uint64_t absolute_index) const {
    return entries_.ControlPlaneRead(absolute_index % capacity_);
  }
  // Number of retrievable tasks right now (clamped at 0 during an overrun).
  uint64_t cp_occupancy() const;

 private:
  size_t capacity_;
  bool shadow_copy_dequeue_;
  p4::RegisterArray<uint64_t> add_ptr_;
  p4::RegisterArray<uint64_t> add_shadow_;
  p4::RegisterArray<uint64_t> retrieve_ptr_;
  p4::RegisterArray<RepairState> repair_state_;
  p4::RegisterArray<QueueEntry> entries_;
};

}  // namespace draconis::core

#endif  // DRACONIS_CORE_SWITCH_QUEUE_H_
