#include "core/draconis_program.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace draconis::core {

DraconisProgram::DraconisProgram(SchedulingPolicy* policy, const DraconisConfig& config,
                                 p4::ResourceLedger* ledger, RankFunction* rank_function)
    : policy_(policy),
      parallel_priority_stages_(config.parallel_priority_stages),
      rank_function_(rank_function) {
  DRACONIS_CHECK(policy != nullptr);
  DRACONIS_CHECK_MSG(!config.parallel_priority_stages || config.shadow_copy_dequeue,
                     "parallel priority stages need the shadow-copy dequeue (a textbook "
                     "dequeue would over-run every empty level it probes)");
  if (rank_function != nullptr) {
    // PIFO mode: the rank order carries the whole discipline, so per-level
    // queues (and the per-level probe/stage machinery) make no sense here.
    DRACONIS_CHECK_MSG(policy->num_queues() == 1,
                       "PIFO mode replaces per-level queues; use a single-queue policy");
    DRACONIS_CHECK_MSG(!config.parallel_priority_stages,
                       "parallel priority stages are a per-level-queue layout; the single "
                       "PIFO has no levels to probe");
    pifo_ = std::make_unique<p4::Pifo<QueueEntry>>(
        "pifo", config.queue_capacity, p4::PifoOverflow::kRejectArrival, ledger,
        QueueEntry::kWireSize);
    return;
  }
  const size_t levels = policy->num_queues();
  DRACONIS_CHECK(levels >= 1);
  queues_.reserve(levels);
  for (size_t q = 0; q < levels; ++q) {
    queues_.push_back(std::make_unique<SwitchQueue>(
        "queue" + std::to_string(q), config.queue_capacity, ledger,
        config.shadow_copy_dequeue));
  }
}

void DraconisProgram::OnPass(p4::PassContext& ctx, net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kJobSubmission:
      HandleSubmission(ctx, std::move(pkt));
      return;
    case net::OpCode::kTaskCompletion: {
      // Forward the completion notice to the client, then treat the rest of
      // the packet as the piggybacked task request (§3.1).
      net::Packet notice;
      notice.op = net::OpCode::kCompletionNotice;
      notice.dst = pkt.client_addr;
      notice.tasks = {pkt.tasks.at(0)};
      ctx.Emit(std::move(notice));
      pkt.op = net::OpCode::kTaskRequest;
      pkt.tasks.clear();
      HandleTaskRequest(ctx, std::move(pkt));
      return;
    }
    case net::OpCode::kTaskRequest:
      HandleTaskRequest(ctx, std::move(pkt));
      return;
    case net::OpCode::kSwapTask:
      HandleSwap(ctx, std::move(pkt));
      return;
    case net::OpCode::kRepair:
      HandleRepair(ctx, std::move(pkt));
      return;
    default:
      // Non-scheduler traffic: behave like a regular switch (§4.1). A packet
      // whose final destination is the switch itself is unroutable.
      if (pkt.dst == ctx.SwitchNode() || pkt.dst == net::kInvalidNode) {
        ctx.Drop(pkt, "info_unroutable");
      } else {
        ctx.Emit(std::move(pkt));
      }
      return;
  }
}

void DraconisProgram::HandleSubmission(p4::PassContext& ctx, net::Packet pkt) {
  if (pkt.tasks.empty()) {
    ctx.Drop(pkt, "malformed_empty_submission");
    return;
  }

  QueueEntry entry;
  entry.task = pkt.tasks.front();
  entry.client = pkt.client_addr != net::kInvalidNode ? pkt.client_addr : pkt.src;
  entry.skip_counter = pkt.from_swap ? pkt.skip_counter : 0;
  entry.valid = true;
  if (entry.task.meta.enqueue_time < 0) {
    entry.task.meta.enqueue_time = ctx.Now();
  }

  size_t q = 0;
  bool added = false;
  uint64_t occupancy = 0;  // control-plane occupancy right after the insert
  if (pifo_ != nullptr) {
    // PIFO mode: rank first (match-action stages), then the single
    // admit-or-reject port. A full PIFO refuses the arrival — no pointer
    // repair exists or is needed, the client retries exactly as for a full
    // circular queue.
    const uint64_t rank = rank_function_->Rank(ctx.registers(), entry.task, ctx.Now());
    added = pifo_->Push(ctx.registers(), rank, entry).admitted;
    occupancy = pifo_->cp_size();
  } else {
    q = std::min(policy_->QueueForTask(entry.task), queues_.size() - 1);
    const SwitchQueue::EnqueueResult res = queues_[q]->Enqueue(ctx.registers(), entry);
    added = res.added;
    occupancy = queues_[q]->cp_occupancy();

    if (res.need_add_repair) {
      LaunchRepair(ctx, q, net::RepairTarget::kAddPtr, res.add_repair_value);
      if (recorder_ != nullptr && recorder_->Sampled(entry.task.id)) {
        recorder_->Record(entry.task.id, trace::Kind::kRepairLaunch, ctx.Now(), ctx.Now(),
                          res.add_repair_value, ctx.SwitchNode(), entry.task.meta.attempt, 0);
      }
    }
    if (res.need_retrieve_repair) {
      LaunchRepair(ctx, q, net::RepairTarget::kRetrievePtr, res.retrieve_repair_value);
      if (recorder_ != nullptr && recorder_->Sampled(entry.task.id)) {
        recorder_->Record(entry.task.id, trace::Kind::kRepairLaunch, ctx.Now(), ctx.Now(),
                          res.retrieve_repair_value, ctx.SwitchNode(),
                          entry.task.meta.attempt, 1);
      }
    }
  }

  if (!added) {
    // Queue full (or a repair in flight): return every not-yet-enqueued task
    // to the client, which retries after a short wait (§4.3).
    ++counters_.queue_full_errors;
    if (recorder_ != nullptr) {
      for (const net::TaskInfo& t : pkt.tasks) {
        if (recorder_->Sampled(t.id)) {
          recorder_->Record(t.id, trace::Kind::kQueueFullError, ctx.Now(), ctx.Now(), 0,
                            ctx.SwitchNode(), t.meta.attempt, static_cast<uint16_t>(q));
        }
      }
    }
    net::Packet error;
    error.op = net::OpCode::kErrorQueueFull;
    error.dst = entry.client;
    error.uid = pkt.uid;
    error.jid = pkt.jid;
    error.tasks = std::move(pkt.tasks);
    ctx.Emit(std::move(error));
    return;
  }

  ++counters_.tasks_enqueued;
  if (recorder_ != nullptr && recorder_->Sampled(entry.task.id)) {
    // detail: control-plane occupancy of the queue right after this insert
    // (i.e. including this task) — the congestion seen at enqueue time.
    recorder_->Record(entry.task.id, trace::Kind::kEnqueue, ctx.Now(), ctx.Now(), occupancy,
                      ctx.SwitchNode(), entry.task.meta.attempt, static_cast<uint16_t>(q));
  }
  pkt.tasks.erase(pkt.tasks.begin());
  if (!pkt.tasks.empty()) {
    // More tasks in the packet: one enqueue per pass (§4.3).
    ctx.Recirculate(std::move(pkt));
    return;
  }
  if (pkt.from_swap) {
    // A re-enqueued swap task; the client was acked when it was first
    // submitted.
    ctx.Drop(pkt, "info_swap_requeued");
    return;
  }
  ++counters_.acks_sent;
  net::Packet ack;
  ack.op = net::OpCode::kJobAck;
  ack.dst = entry.client;
  ack.uid = pkt.uid;
  ack.jid = pkt.jid;
  ctx.Emit(std::move(ack));
}

void DraconisProgram::HandleTaskRequest(p4::PassContext& ctx, net::Packet pkt) {
  DRACONIS_CHECK_MSG(pkt.rtrv_prio >= 1, "RTRV_PRIO is 1-based");
  if (pifo_ != nullptr) {
    // PIFO mode: the head is by construction the task the policy wants next,
    // so a successful pop always assigns (no swap walks, no level probes).
    const p4::Pifo<QueueEntry>::PopResult pop = pifo_->Pop(ctx.registers());
    if (!pop.got) {
      SendNoOp(ctx, pkt.src);
      return;
    }
    rank_function_->OnDequeue(ctx.registers(), pop.rank);
    Assign(ctx, pop.value, pkt.src);
    return;
  }
  size_t q = std::min<size_t>(pkt.rtrv_prio - 1, queues_.size() - 1);
  const net::NodeId executor = pkt.src;

  SwitchQueue::DequeueResult dq = queues_[q]->Dequeue(ctx.registers());

  // Tofino-2 layout (§6.1/§8.7): each level lives in its own stages, so one
  // pass can keep probing lower levels without recirculating. Each queue's
  // registers are touched at most once — the pass budget allows it.
  while (!dq.got_task && parallel_priority_stages_ && q + 1 < queues_.size()) {
    ++q;
    dq = queues_[q]->Dequeue(ctx.registers());
  }

  if (!dq.got_task) {
    // Empty level (or a retrieve repair in flight, §4.7.2). Probe the next
    // priority level if there is one; otherwise answer a no-op.
    if (q + 1 < queues_.size()) {
      ++counters_.priority_probes;
      pkt.rtrv_prio = static_cast<uint8_t>(q + 2);
      ctx.Recirculate(std::move(pkt));
    } else {
      SendNoOp(ctx, executor);
    }
    return;
  }

  QueueEntry entry = std::move(dq.entry);
  if (policy_->ShouldAssign(entry, pkt.exec_props)) {
    Assign(ctx, entry, executor);
    return;
  }

  // Policy mismatch: start a task-swapping walk at the next entry (§5.1).
  ++counters_.swap_walks_started;
  net::Packet swap;
  swap.op = net::OpCode::kSwapTask;
  swap.src = executor;  // preserved so the eventual reply finds the executor
  swap.tasks = {entry.task};
  swap.client_addr = entry.client;
  swap.skip_counter = entry.skip_counter;
  swap.exec_props = pkt.exec_props;
  swap.queue_index = static_cast<uint8_t>(q);
  swap.swap_indx = dq.slot + 1;
  swap.pkt_retrieve_ptr = dq.slot + 1;  // the retrieve pointer after our increment
  swap.swap_count = 0;
  swap.created_at = pkt.created_at;
  // Swap packets carry a live task; like repairs, they ride the loopback
  // port's lossless class (dropping one would silently lose the task).
  ctx.Recirculate(std::move(swap), /*guaranteed=*/true);
}

void DraconisProgram::HandleSwap(p4::PassContext& ctx, net::Packet pkt) {
  if (pifo_ != nullptr) {
    // PIFO mode never starts a swap walk; a stray swap packet is a bug in
    // the sender, not in the queue, so drop it instead of crashing.
    ctx.Drop(pkt, "info_pifo_unexpected_swap");
    return;
  }
  const size_t q = std::min<size_t>(pkt.queue_index, queues_.size() - 1);

  QueueEntry carried;
  carried.task = pkt.tasks.at(0);
  carried.client = pkt.client_addr;
  carried.skip_counter = pkt.skip_counter;
  carried.valid = true;

  SwitchQueue::SwapResult res =
      queues_[q]->SwapAt(ctx.registers(), pkt.pkt_retrieve_ptr, pkt.swap_indx, carried);

  if (res.past_end) {
    // No queued task can run on this executor: put the carried task back via
    // the submission path and release the executor with a no-op.
    RequeueCarriedTask(ctx, std::move(pkt));
    return;
  }
  if (!res.swapped) {
    // Defensive corner: the slot was invalid, so the carried task has been
    // absorbed into a retrievable position. End the walk.
    SendNoOp(ctx, pkt.src);
    ctx.Drop(pkt, "swap_absorbed");
    return;
  }

  ++counters_.swap_exchanges;
  QueueEntry candidate = std::move(res.previous);
  if (recorder_ != nullptr) {
    if (recorder_->Sampled(carried.task.id)) {
      recorder_->Record(carried.task.id, trace::Kind::kSwapExchange, ctx.Now(), ctx.Now(),
                        res.slot, ctx.SwitchNode(), carried.task.meta.attempt, 0);
    }
    if (recorder_->Sampled(candidate.task.id)) {
      recorder_->Record(candidate.task.id, trace::Kind::kSwapExchange, ctx.Now(), ctx.Now(),
                        res.slot, ctx.SwitchNode(), candidate.task.meta.attempt, 1);
    }
  }
  if (policy_->ShouldAssign(candidate, pkt.exec_props)) {
    Assign(ctx, candidate, pkt.src);
    return;
  }

  pkt.swap_count += 1;
  if (pkt.swap_count >= policy_->max_swaps()) {
    // Bounded walk exhausted (starvation avoidance, §5.1).
    pkt.tasks = {candidate.task};
    pkt.client_addr = candidate.client;
    pkt.skip_counter = candidate.skip_counter;
    RequeueCarriedTask(ctx, std::move(pkt));
    return;
  }

  pkt.tasks = {candidate.task};
  pkt.client_addr = candidate.client;
  pkt.skip_counter = candidate.skip_counter;
  pkt.swap_indx = res.slot + 1;
  pkt.pkt_retrieve_ptr = res.head;  // refresh the staleness reference
  ctx.Recirculate(std::move(pkt), /*guaranteed=*/true);
}

void DraconisProgram::HandleRepair(p4::PassContext& ctx, net::Packet pkt) {
  if (pifo_ != nullptr) {
    // No pointers to repair in PIFO mode (see HandleSwap).
    ctx.Drop(pkt, "info_pifo_unexpected_repair");
    return;
  }
  const size_t q = std::min<size_t>(pkt.queue_index, queues_.size() - 1);
  queues_[q]->ApplyRepair(ctx.registers(), pkt.repair_target, pkt.repair_value);
  if (pkt.repair_target == net::RepairTarget::kAddPtr) {
    ++counters_.add_repairs;
  } else {
    ++counters_.retrieve_repairs;
  }
  if (recorder_ != nullptr) {
    recorder_->RecordGlobal(trace::Kind::kRepairApply, ctx.Now(), pkt.repair_value,
                            static_cast<uint32_t>(q));
  }
  ctx.Drop(pkt, "info_repair_consumed");
}

void DraconisProgram::Assign(p4::PassContext& ctx, const QueueEntry& entry,
                             net::NodeId executor) {
  ++counters_.tasks_assigned;
  if (recorder_ != nullptr && recorder_->Sampled(entry.task.id)) {
    if (entry.task.meta.enqueue_time >= 0) {
      // Queue residency: enqueue -> the pass that dequeued-and-matched it.
      recorder_->Record(entry.task.id, trace::Kind::kQueueWait,
                        entry.task.meta.enqueue_time, ctx.Now(), 0, ctx.SwitchNode(),
                        entry.task.meta.attempt, 0);
    }
    recorder_->Record(entry.task.id, trace::Kind::kAssign, ctx.Now(), ctx.Now(), 0,
                      executor, entry.task.meta.attempt, 0);
  }
  net::Packet assignment;
  assignment.op = net::OpCode::kTaskAssignment;
  assignment.dst = executor;
  assignment.tasks = {entry.task};
  assignment.client_addr = entry.client;
  ctx.Emit(std::move(assignment));
}

void DraconisProgram::SendNoOp(p4::PassContext& ctx, net::NodeId executor) {
  ++counters_.noops_sent;
  net::Packet noop;
  noop.op = net::OpCode::kNoOpTask;
  noop.dst = executor;
  ctx.Emit(std::move(noop));
}

void DraconisProgram::LaunchRepair(p4::PassContext& ctx, size_t q, net::RepairTarget target,
                                   uint64_t value) {
  net::Packet repair;
  repair.op = net::OpCode::kRepair;
  repair.queue_index = static_cast<uint8_t>(q);
  repair.repair_target = target;
  repair.repair_value = value;
  // Repairs ride the loopback port's high-priority class: dropping one would
  // leave a repair flag set forever and wedge the queue.
  ctx.Recirculate(std::move(repair), /*guaranteed=*/true);
}

void DraconisProgram::RequeueCarriedTask(p4::PassContext& ctx, net::Packet pkt) {
  ++counters_.swap_requeues;
  if (recorder_ != nullptr && !pkt.tasks.empty() && recorder_->Sampled(pkt.tasks[0].id)) {
    recorder_->Record(pkt.tasks[0].id, trace::Kind::kSwapRequeue, ctx.Now(), ctx.Now(),
                      pkt.swap_count, ctx.SwitchNode(), pkt.tasks[0].meta.attempt, 0);
  }
  SendNoOp(ctx, pkt.src);
  net::Packet resubmit = std::move(pkt);
  resubmit.op = net::OpCode::kJobSubmission;
  resubmit.from_swap = true;
  resubmit.swap_count = 0;
  ctx.Recirculate(std::move(resubmit), /*guaranteed=*/true);
}

}  // namespace draconis::core
