// One entry of the switch-resident task queue (paper §4.2): the TASK_INFO of
// a queued task, the submitting client's identity, the locality skip counter
// (§5.3), and a validity flag used to detect dequeue-on-empty mistakes.

#ifndef DRACONIS_CORE_QUEUE_ENTRY_H_
#define DRACONIS_CORE_QUEUE_ENTRY_H_

#include <cstdint>

#include "net/packet.h"

namespace draconis::core {

struct QueueEntry {
  net::TaskInfo task;
  net::NodeId client = net::kInvalidNode;
  uint32_t skip_counter = 0;
  bool valid = false;

  // Hardware footprint: TASK_INFO + client IP/port (6 B) + skip counter and
  // valid bit packed into 4 B.
  static constexpr size_t kWireSize = net::TaskInfo::kWireSize + 6 + 4;
};

}  // namespace draconis::core

#endif  // DRACONIS_CORE_QUEUE_ENTRY_H_
