#include "core/draconis_deployment.h"

#include <utility>

namespace draconis::core {

DraconisDeployment::DraconisDeployment(const cluster::ExperimentConfig& config)
    : cluster::PullBasedDeployment(config) {}

void DraconisDeployment::Build(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  switch (cfg.policy) {
    case cluster::PolicyKind::kFcfs:
      policy_ = std::make_unique<FcfsPolicy>();
      break;
    case cluster::PolicyKind::kPriority:
      policy_ = std::make_unique<PriorityPolicy>(cfg.priority_levels);
      break;
    case cluster::PolicyKind::kResource:
      policy_ = std::make_unique<ResourcePolicy>();
      break;
    case cluster::PolicyKind::kLocality:
      policy_ = std::make_unique<LocalityPolicy>(&testbed.topology(), cfg.locality_limits);
      break;
  }
  DraconisConfig dc;
  dc.queue_capacity = cfg.queue_capacity;
  dc.shadow_copy_dequeue = cfg.shadow_copy_dequeue;
  dc.parallel_priority_stages = cfg.parallel_priority_stages;
  program_ = std::make_unique<DraconisProgram>(policy_.get(), dc);
  program_->SetRecorder(testbed.recorder());
  pipeline_ = std::make_unique<p4::SwitchPipeline>(testbed, program_.get(), cfg.pipeline);
  scheduler_nodes_.push_back(pipeline_->node_id());
}

void DraconisDeployment::Harvest(cluster::ExperimentResult& result) {
  result.switch_counters = pipeline_->counters();
  result.recirculation_share = result.switch_counters.RecirculationShare();
  result.recirc_drops = result.switch_counters.recirc_drops;

  const DraconisCounters& c = program_->counters();
  result.counters.tasks_enqueued = c.tasks_enqueued;
  result.counters.tasks_assigned = c.tasks_assigned;
  result.counters.noops_sent = c.noops_sent;
  result.counters.queue_full_errors = c.queue_full_errors;
  result.counters.acks_sent = c.acks_sent;
  result.counters.add_repairs = c.add_repairs;
  result.counters.retrieve_repairs = c.retrieve_repairs;
  result.counters.swap_walks_started = c.swap_walks_started;
  result.counters.swap_exchanges = c.swap_exchanges;
  result.counters.swap_requeues = c.swap_requeues;
  result.counters.priority_probes = c.priority_probes;
}

cluster::DeploymentInfo DraconisDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kDraconis;
  info.canonical_name = "Draconis";
  info.flag_name = "draconis";
  info.policies = {cluster::PolicyKind::kFcfs, cluster::PolicyKind::kPriority,
                   cluster::PolicyKind::kResource, cluster::PolicyKind::kLocality};
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<DraconisDeployment>(config);
  };
  return info;
}

}  // namespace draconis::core
