#include "core/draconis_deployment.h"

#include <memory>
#include <utility>

namespace draconis::core {

DraconisDeployment::DraconisDeployment(const cluster::ExperimentConfig& config)
    : cluster::PullBasedDeployment(config) {}

DraconisDeployment::Instance DraconisDeployment::BuildInstance(cluster::Testbed& testbed,
                                                               bool attach_as_switch) {
  const cluster::ExperimentConfig& cfg = config();
  Instance inst;
  switch (cfg.policy) {
    case cluster::PolicyKind::kFcfs:
      inst.policy = std::make_unique<FcfsPolicy>();
      break;
    case cluster::PolicyKind::kPriority:
      inst.policy = std::make_unique<PriorityPolicy>(cfg.priority_levels);
      break;
    case cluster::PolicyKind::kResource:
      inst.policy = std::make_unique<ResourcePolicy>();
      break;
    case cluster::PolicyKind::kLocality:
      inst.policy = std::make_unique<LocalityPolicy>(&testbed.topology(), cfg.locality_limits);
      break;
  }
  DraconisConfig dc;
  dc.queue_capacity = cfg.queue_capacity;
  dc.shadow_copy_dequeue = cfg.shadow_copy_dequeue;
  dc.parallel_priority_stages = cfg.parallel_priority_stages;
  // PIFO mode (docs/pifo.md): a non-FIFO switch policy swaps the circular
  // queue for a rank-ordered PIFO; Validate() already pinned policy == fcfs.
  RankFunctionConfig rank_config;
  rank_config.wfq_weights = cfg.wfq_weights;
  inst.rank_function = MakeRankFunction(cfg.switch_policy, rank_config);
  inst.program = std::make_unique<DraconisProgram>(inst.policy.get(), dc, nullptr,
                                                   inst.rank_function.get());
  inst.program->SetRecorder(testbed.recorder());
  if (attach_as_switch) {
    inst.pipeline = std::make_unique<p4::SwitchPipeline>(testbed, inst.program.get(), cfg.pipeline);
  } else {
    inst.pipeline =
        std::make_unique<p4::SwitchPipeline>(&testbed.simulator(), inst.program.get(), cfg.pipeline);
    inst.pipeline->SetRecorder(testbed.recorder());
    inst.pipeline->AttachNetwork(&testbed.network());
  }
  return inst;
}

void DraconisDeployment::Build(cluster::Testbed& testbed) {
  active_ = BuildInstance(testbed, /*attach_as_switch=*/true);
  scheduler_nodes_.push_back(active_.pipeline->node_id());
  // The standby is built only when a fault plan will promote it, so fault-free
  // configs keep the exact node-id assignment order (and thus results) they
  // had before the fault layer existed.
  if (config().fault_plan.has_scheduler_failover()) {
    standby_ = BuildInstance(testbed, /*attach_as_switch=*/false);
    // AttachNetwork made the standby the fabric's switch node; the active
    // instance keeps that role until Failover promotes the standby.
    testbed.network().SetSwitchNode(active_.pipeline->node_id());
    standby_nodes_.push_back(standby_.pipeline->node_id());
  }
}

bool DraconisDeployment::Failover(cluster::Testbed& testbed) {
  if (standby_.pipeline == nullptr) {
    return false;
  }
  ++failovers_;
  const net::NodeId standby = standby_.pipeline->node_id();
  testbed.network().SetSwitchNode(standby);
  scheduler_nodes_[0] = standby;
  RehomeExecutors(testbed, standby);
  return true;
}

void DraconisDeployment::Harvest(cluster::ExperimentResult& result) {
  result.switch_counters = active_.pipeline->counters();
  if (standby_.pipeline != nullptr) {
    const p4::PipelineCounters& s = standby_.pipeline->counters();
    result.switch_counters.packets_in += s.packets_in;
    result.switch_counters.passes += s.passes;
    result.switch_counters.recirculations += s.recirculations;
    result.switch_counters.recirc_drops += s.recirc_drops;
    result.switch_counters.emitted += s.emitted;
    for (const auto& [reason, count] : s.program_drops) {
      result.switch_counters.program_drops[reason] += count;
    }
  }
  result.recirculation_share = result.switch_counters.RecirculationShare();
  result.recirc_drops = result.switch_counters.recirc_drops;

  // Both instances report into the same flat aggregate; before the failover
  // the standby's counters are all zero.
  for (const DraconisProgram* program :
       {active_.program.get(), standby_.program.get()}) {
    if (program == nullptr) {
      continue;
    }
    const DraconisCounters& c = program->counters();
    result.counters.tasks_enqueued += c.tasks_enqueued;
    result.counters.tasks_assigned += c.tasks_assigned;
    result.counters.noops_sent += c.noops_sent;
    result.counters.queue_full_errors += c.queue_full_errors;
    result.counters.acks_sent += c.acks_sent;
    result.counters.add_repairs += c.add_repairs;
    result.counters.retrieve_repairs += c.retrieve_repairs;
    result.counters.swap_walks_started += c.swap_walks_started;
    result.counters.swap_exchanges += c.swap_exchanges;
    result.counters.swap_requeues += c.swap_requeues;
    result.counters.priority_probes += c.priority_probes;
  }
  result.counters.failovers = failovers_;
}

cluster::DeploymentInfo DraconisDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kDraconis;
  info.canonical_name = "Draconis";
  info.flag_name = "draconis";
  info.policies = {cluster::PolicyKind::kFcfs, cluster::PolicyKind::kPriority,
                   cluster::PolicyKind::kResource, cluster::PolicyKind::kLocality};
  info.switch_policies = AllSwitchPolicies();
  info.failover = true;
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<DraconisDeployment>(config);
  };
  return info;
}

}  // namespace draconis::core
