#include "core/draconis_deployment.h"

#include <memory>
#include <utility>

#include "common/check.h"

namespace draconis::core {

DraconisDeployment::DraconisDeployment(const cluster::ExperimentConfig& config)
    : cluster::PullBasedDeployment(config) {}

DraconisDeployment::Instance DraconisDeployment::BuildInstance(cluster::Testbed& testbed,
                                                               bool attach_as_switch) {
  const cluster::ExperimentConfig& cfg = config();
  Instance inst;
  switch (cfg.policy) {
    case cluster::PolicyKind::kFcfs:
      inst.policy = std::make_unique<FcfsPolicy>();
      break;
    case cluster::PolicyKind::kPriority:
      inst.policy = std::make_unique<PriorityPolicy>(cfg.priority_levels);
      break;
    case cluster::PolicyKind::kResource:
      inst.policy = std::make_unique<ResourcePolicy>();
      break;
    case cluster::PolicyKind::kLocality:
      inst.policy = std::make_unique<LocalityPolicy>(&testbed.topology(), cfg.locality_limits);
      break;
  }
  DraconisConfig dc;
  dc.queue_capacity = cfg.queue_capacity;
  dc.shadow_copy_dequeue = cfg.shadow_copy_dequeue;
  dc.parallel_priority_stages = cfg.parallel_priority_stages;
  // PIFO mode (docs/pifo.md): a non-FIFO switch policy swaps the circular
  // queue for a rank-ordered PIFO; Validate() already pinned policy == fcfs.
  RankFunctionConfig rank_config;
  rank_config.wfq_weights = cfg.wfq_weights;
  inst.rank_function = MakeRankFunction(cfg.switch_policy, rank_config);
  inst.program = std::make_unique<DraconisProgram>(inst.policy.get(), dc, nullptr,
                                                   inst.rank_function.get());
  inst.program->SetRecorder(testbed.recorder());
  if (attach_as_switch) {
    inst.pipeline = std::make_unique<p4::SwitchPipeline>(testbed, inst.program.get(), cfg.pipeline);
  } else {
    inst.pipeline =
        std::make_unique<p4::SwitchPipeline>(&testbed.simulator(), inst.program.get(), cfg.pipeline);
    inst.pipeline->SetRecorder(testbed.recorder());
    inst.pipeline->AttachNetwork(&testbed.network());
  }
  return inst;
}

void DraconisDeployment::Build(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  const std::vector<topology::RackSpec> specs = cluster::EffectiveRackSpecs(cfg);
  const size_t num_racks = specs.size();
  const bool multi_rack = num_racks > 1;

  // One ToR switch per rack, in rack order. Rack 0 uses the testbed-attach
  // path so a 1-rack (or legacy) build keeps the exact construction and
  // node-id order the determinism goldens pin.
  racks_.reserve(num_racks);
  for (size_t r = 0; r < num_racks; ++r) {
    racks_.push_back(BuildInstance(testbed, /*attach_as_switch=*/r == 0));
    const net::NodeId tor = racks_[r].pipeline->node_id();
    scheduler_nodes_.push_back(tor);
    if (multi_rack) {
      testbed.network().SetNodeRack(tor, static_cast<uint32_t>(r));
    }
  }

  // The standby is built only when a fault plan will promote it, so fault-free
  // configs keep the exact node-id assignment order (and thus results) they
  // had before the fault layer existed. It protects rack 0's ToR.
  if (cfg.fault_plan.has_scheduler_failover()) {
    standby_ = BuildInstance(testbed, /*attach_as_switch=*/false);
    // AttachNetwork made the standby the fabric's primary switch node; the
    // active instance keeps that role until Failover promotes the standby.
    testbed.network().SetSwitchNode(racks_[0].pipeline->node_id());
    standby_nodes_.push_back(standby_.pipeline->node_id());
  }

  if (!multi_rack) {
    return;
  }

  // Cross-rack placement runtime (docs/topology.md). Registration order —
  // ToRs, standby, then the summary exchanges — is part of the pinned
  // multi-rack node-id layout.
  directories_.reserve(num_racks);
  exchanges_.reserve(num_racks);
  for (size_t r = 0; r < num_racks; ++r) {
    directories_.push_back(std::make_unique<topology::DepthDirectory>(num_racks));
  }
  for (size_t r = 0; r < num_racks; ++r) {
    exchanges_.push_back(
        std::make_unique<topology::SummaryExchange>(&testbed.network(), directories_[r].get()));
    testbed.network().SetNodeRack(exchanges_[r]->node_id(), static_cast<uint32_t>(r));
  }
  for (size_t r = 0; r < num_racks; ++r) {
    policies_.push_back(topology::MakePlacementPolicy(
        cfg.cluster, testbed.SeedFor(cluster::SeedDomain::kPlacement, r)));
    routers_.push_back(std::make_unique<topology::SubmissionRouter>(
        static_cast<uint32_t>(r), &scheduler_nodes_, directories_[r].get(), policies_[r].get()));
  }
  for (size_t r = 0; r < num_racks; ++r) {
    DraconisProgram* program = racks_[r].program.get();
    publishers_.push_back(std::make_unique<topology::SummaryPublisher>(
        &testbed.simulator(), &testbed.network(), static_cast<uint32_t>(r),
        racks_[r].pipeline->node_id(), [program] { return program->cp_queue_depth(); },
        cfg.cluster.summary_period));
    publishers_[r]->SetLocalDirectory(directories_[r].get());
    for (size_t s = 0; s < num_racks; ++s) {
      if (s != r) {
        publishers_[r]->AddSubscriber(exchanges_[s]->node_id());
      }
    }
    // Stagger first publishes so the racks' broadcasts don't arrive in
    // lockstep (the offset is deterministic, not random).
    publishers_[r]->Start(static_cast<TimeNs>(1 + r * 157));
  }
}

void DraconisDeployment::ConfigureClient(cluster::ClientConfig& client) {
  if (routers_.empty()) {
    return;
  }
  // RunExperiment fills client.uid before calling; home the client on the
  // same rack RunExperiment points its scheduler at.
  const size_t rack = config().cluster.client_homing == topology::ClientHoming::kFirstRack
                          ? 0
                          : client.uid % routers_.size();
  client.router = routers_[rack].get();
}

bool DraconisDeployment::Failover(cluster::Testbed& testbed) {
  if (standby_.pipeline == nullptr) {
    return false;
  }
  ++failovers_;
  const net::NodeId standby = standby_.pipeline->node_id();
  testbed.network().SetSwitchNode(standby);
  scheduler_nodes_[0] = standby;
  RehomeRackExecutors(testbed, 0, standby);
  // Cross-rack submissions toward rack 0 follow scheduler_nodes_[0] (the
  // routers share the table); the depth summaries must now come from (and
  // probe) the promoted standby.
  if (!publishers_.empty()) {
    DraconisProgram* program = standby_.program.get();
    publishers_[0]->Retarget(standby, [program] { return program->cp_queue_depth(); });
  }
  return true;
}

void DraconisDeployment::Harvest(cluster::ExperimentResult& result) {
  result.switch_counters = p4::PipelineCounters{};
  result.counters = cluster::SchedulerCounters{};
  std::vector<const Instance*> instances;
  instances.reserve(racks_.size() + 1);
  for (const Instance& inst : racks_) {
    instances.push_back(&inst);
  }
  if (standby_.pipeline != nullptr) {
    instances.push_back(&standby_);
  }
  for (const Instance* inst : instances) {
    const p4::PipelineCounters& s = inst->pipeline->counters();
    result.switch_counters.packets_in += s.packets_in;
    result.switch_counters.passes += s.passes;
    result.switch_counters.recirculations += s.recirculations;
    result.switch_counters.recirc_drops += s.recirc_drops;
    result.switch_counters.emitted += s.emitted;
    for (const auto& [reason, count] : s.program_drops) {
      result.switch_counters.program_drops[reason] += count;
    }
    const DraconisCounters& c = inst->program->counters();
    result.counters.tasks_enqueued += c.tasks_enqueued;
    result.counters.tasks_assigned += c.tasks_assigned;
    result.counters.noops_sent += c.noops_sent;
    result.counters.queue_full_errors += c.queue_full_errors;
    result.counters.acks_sent += c.acks_sent;
    result.counters.add_repairs += c.add_repairs;
    result.counters.retrieve_repairs += c.retrieve_repairs;
    result.counters.swap_walks_started += c.swap_walks_started;
    result.counters.swap_exchanges += c.swap_exchanges;
    result.counters.swap_requeues += c.swap_requeues;
    result.counters.priority_probes += c.priority_probes;
  }
  result.recirculation_share = result.switch_counters.RecirculationShare();
  result.recirc_drops = result.switch_counters.recirc_drops;
  result.counters.failovers = failovers_;

  if (config().cluster.enabled()) {
    result.num_racks = racks_.size();
    result.rack_decisions.clear();
    for (size_t r = 0; r < racks_.size(); ++r) {
      uint64_t assigned = racks_[r].program->counters().tasks_assigned;
      if (r == 0 && standby_.program != nullptr) {
        assigned += standby_.program->counters().tasks_assigned;
      }
      result.rack_decisions.push_back(assigned);
    }
    for (const auto& router : routers_) {
      result.home_submissions += router->routed_home();
      result.cross_rack_submissions += router->routed_cross();
    }
    const uint64_t routed = result.home_submissions + result.cross_rack_submissions;
    result.cross_rack_fraction =
        routed > 0 ? static_cast<double>(result.cross_rack_submissions) / routed : 0.0;
    for (const auto& publisher : publishers_) {
      result.summary_packets += publisher->summaries_sent();
    }
  }
}

cluster::DeploymentInfo DraconisDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kDraconis;
  info.canonical_name = "Draconis";
  info.flag_name = "draconis";
  info.policies = {cluster::PolicyKind::kFcfs, cluster::PolicyKind::kPriority,
                   cluster::PolicyKind::kResource, cluster::PolicyKind::kLocality};
  info.switch_policies = AllSwitchPolicies();
  info.failover = true;
  info.multi_rack = true;
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<DraconisDeployment>(config);
  };
  return info;
}

}  // namespace draconis::core
