#include "stats/timeseries.h"

#include "common/check.h"

namespace draconis::stats {

TimeSeries::TimeSeries(TimeNs bucket_width) : bucket_width_(bucket_width) {
  DRACONIS_CHECK(bucket_width > 0);
}

void TimeSeries::Record(TimeNs at, double weight) {
  DRACONIS_CHECK(at >= 0);
  const auto index = static_cast<size_t>(at / bucket_width_);
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0.0);
  }
  buckets_[index] += weight;
}

double TimeSeries::BucketSum(size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0.0;
}

double TimeSeries::BucketRate(size_t i) const {
  return BucketSum(i) / ToSeconds(bucket_width_);
}

}  // namespace draconis::stats
