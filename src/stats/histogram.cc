#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.h"

namespace draconis::stats {

Histogram::Histogram() = default;

size_t Histogram::BucketIndex(TimeNs value) {
  DRACONIS_CHECK_MSG(value >= 0, "histogram values must be non-negative");
  const auto v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<size_t>(v);
  }
  // Octave = position of the highest set bit above the sub-bucket range.
  const int high_bit = 63 - std::countl_zero(v);
  const int octave = high_bit - kSubBucketBits + 1;
  const uint64_t sub = v >> octave;  // in [kSubBuckets/2 .. kSubBuckets)
  return static_cast<size_t>(octave) * (kSubBuckets / 2) + static_cast<size_t>(sub);
}

TimeNs Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) {
    return static_cast<TimeNs>(index);
  }
  const size_t octave = (index - kSubBuckets / 2) / (kSubBuckets / 2);
  const size_t sub = index - octave * (kSubBuckets / 2);
  return static_cast<TimeNs>(((sub + 1) << octave) - 1);
}

void Histogram::Record(TimeNs value) { RecordN(value, 1); }

void Histogram::RecordN(TimeNs value, uint64_t n) {
  if (n == 0) {
    return;
  }
  const size_t index = BucketIndex(value);
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0);
  }
  buckets_[index] += n;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (count_ == 0 || other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

TimeNs Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

TimeNs Histogram::Percentile(double q) const {
  DRACONIS_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::vector<CdfPoint> Histogram::Cdf() const {
  std::vector<CdfPoint> points;
  if (count_ == 0) {
    return points;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    cumulative += buckets_[i];
    points.push_back(
        {std::min(BucketUpperBound(i), max_),
         static_cast<double>(cumulative) / static_cast<double>(count_)});
  }
  return points;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ > 0) {
    os << " mean=" << FormatDuration(static_cast<TimeNs>(Mean()))
       << " p50=" << FormatDuration(Percentile(0.50))
       << " p99=" << FormatDuration(Percentile(0.99)) << " max=" << FormatDuration(max_);
  }
  return os.str();
}

void Histogram::WriteJson(json::Writer& writer) const {
  writer.BeginObject();
  writer.Key("count").UInt(count_);
  if (count_ > 0) {
    writer.Key("mean_ns").Double(Mean());
    writer.Key("min_ns").Int(min());
    writer.Key("max_ns").Int(max_);
    writer.Key("p50_ns").Int(Percentile(0.50));
    writer.Key("p90_ns").Int(Percentile(0.90));
    writer.Key("p95_ns").Int(Percentile(0.95));
    writer.Key("p99_ns").Int(Percentile(0.99));
    writer.Key("p999_ns").Int(Percentile(0.999));
  }
  writer.EndObject();
}

std::string Histogram::ToJson() const {
  json::Writer writer;
  WriteJson(writer);
  return writer.str();
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace draconis::stats
