// Fixed-interval time series of event counts (e.g. tasks completed per node
// per second), used for throughput-over-time figures such as the paper's
// resource-constraint experiment (Fig. 11).

#ifndef DRACONIS_STATS_TIMESERIES_H_
#define DRACONIS_STATS_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace draconis::stats {

class TimeSeries {
 public:
  // bucket_width: width of each aggregation interval (> 0).
  explicit TimeSeries(TimeNs bucket_width);

  // Adds `weight` to the bucket containing `at`.
  void Record(TimeNs at, double weight = 1.0);

  // Number of buckets spanned so far (index of last recorded bucket + 1).
  size_t NumBuckets() const { return buckets_.size(); }

  // Sum recorded in bucket i (0 if never touched).
  double BucketSum(size_t i) const;

  // Recorded sum divided by the bucket width in seconds, i.e. a rate.
  double BucketRate(size_t i) const;

  TimeNs bucket_width() const { return bucket_width_; }

 private:
  TimeNs bucket_width_;
  std::vector<double> buckets_;
};

}  // namespace draconis::stats

#endif  // DRACONIS_STATS_TIMESERIES_H_
