// Latency histogram with HDR-style log-linear buckets.
//
// Values (nanoseconds) are bucketed with a bounded relative error (~1/64 by
// default): each power-of-two range is split into 64 linear sub-buckets.
// This keeps memory tiny, recording O(1), and percentile queries accurate to
// ~1.5 % — plenty for reproducing the paper's latency distributions.

#ifndef DRACONIS_STATS_HISTOGRAM_H_
#define DRACONIS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/time.h"

namespace draconis::stats {

// A (value, cumulative fraction) point of a CDF.
struct CdfPoint {
  TimeNs value;
  double fraction;
};

class Histogram {
 public:
  Histogram();

  void Record(TimeNs value);
  void RecordN(TimeNs value, uint64_t count);

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  TimeNs min() const;
  TimeNs max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; e.g. Percentile(0.99) is the p99.
  // Returns 0 for an empty histogram.
  TimeNs Percentile(double q) const;

  TimeNs Median() const { return Percentile(0.5); }

  // CDF sampled at every non-empty bucket boundary (at most one point per
  // bucket), suitable for plotting.
  std::vector<CdfPoint> Cdf() const;

  // "n=..., mean=..., p50=..., p99=..., max=..." one-line summary.
  std::string Summary() const;

  // Structured summary — count, mean, min/max and the standard quantiles —
  // written as one JSON object (the sweep report layer's histogram schema).
  void WriteJson(json::Writer& writer) const;
  std::string ToJson() const;

  void Reset();

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static size_t BucketIndex(TimeNs value);
  static TimeNs BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  TimeNs min_ = 0;
  TimeNs max_ = 0;
  double sum_ = 0.0;
};

}  // namespace draconis::stats

#endif  // DRACONIS_STATS_HISTOGRAM_H_
