#include "trace/export.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/json.h"

namespace draconis::trace {
namespace {

// Stable per-task process ids: 1 is the synthetic "system" process that holds
// records not tied to a task (rehoming, repair application); sampled tasks get
// 2.. in first-seen order.
constexpr uint64_t kSystemPid = 1;

uint32_t ThreadIdFor(const SpanRecord& rec) {
  const auto lane = static_cast<uint32_t>(LaneFor(rec.kind));
  return lane * 8 + std::min<uint32_t>(rec.attempt, 7);
}

std::string TaskName(const net::TaskId& id) {
  std::ostringstream os;
  os << "task " << id.uid << ":" << id.jid << ":" << id.tid;
  return os.str();
}

void WriteEventArgs(json::Writer& w, const SpanRecord& rec) {
  w.Key("args").BeginObject();
  w.Key("detail").UInt(rec.detail);
  w.Key("node").UInt(rec.node);
  w.Key("attempt").UInt(rec.attempt);
  w.Key("aux").UInt(rec.aux);
  w.EndObject();
}

void WriteSpanRecordJson(json::Writer& w, const SpanRecord& rec) {
  w.BeginObject();
  w.Key("kind").String(KindName(rec.kind));
  w.Key("lane").String(LaneName(LaneFor(rec.kind)));
  w.Key("begin_ns").Int(rec.begin);
  w.Key("end_ns").Int(rec.end);
  w.Key("detail").UInt(rec.detail);
  w.Key("node").UInt(rec.node);
  w.Key("attempt").UInt(rec.attempt);
  w.Key("aux").UInt(rec.aux);
  w.EndObject();
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace

std::string SanitizeForFilename(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) || c == '.' || c == '-' || c == '_') {
      out.push_back(static_cast<char>(std::tolower(u)));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

std::string RenderChromeTrace(const Recorder& recorder, const std::string& bench) {
  const auto& records = recorder.records();

  // Assign process ids in first-seen order so output is deterministic.
  std::unordered_map<net::TaskId, uint64_t, net::TaskIdHash> pids;
  std::vector<net::TaskId> task_order;
  bool has_system = false;
  for (const SpanRecord& rec : records) {
    if (rec.id == kGlobalTaskId) {
      has_system = true;
      continue;
    }
    if (pids.emplace(rec.id, 2 + task_order.size()).second) {
      task_order.push_back(rec.id);
    }
  }

  // Expand each record into its trace events, then stable-sort by timestamp.
  // Stability keeps generation order for ties: a span's B precedes its E, and
  // back-to-back same-name spans on one thread close before the next opens.
  struct Ev {
    TimeNs ts;
    size_t rec;
    char ph;  // 'B', 'E', or 'i'
  };
  std::vector<Ev> events;
  events.reserve(records.size() * 2);
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    if (IsInstant(rec.kind)) {
      events.push_back({rec.begin, i, 'i'});
    } else {
      events.push_back({rec.begin, i, 'B'});
      events.push_back({rec.end, i, 'E'});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.ts < b.ts; });

  json::Writer w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ns");
  w.Key("bench").String(bench);
  w.Key("samplePeriod").UInt(recorder.config().sample_period);
  w.Key("sampledTasks").UInt(pids.size());
  w.Key("droppedRecords").UInt(recorder.dropped_records());
  w.Key("traceEvents").BeginArray();

  // Metadata: process names first, then thread names for every (pid, tid).
  auto process_name = [&w](uint64_t pid, const std::string& name) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("process_name");
    w.Key("pid").UInt(pid);
    w.Key("tid").UInt(0);
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  };
  if (has_system) {
    process_name(kSystemPid, "system");
  }
  for (const net::TaskId& id : task_order) {
    process_name(pids.at(id), TaskName(id));
  }
  std::unordered_set<uint64_t> named_threads;
  for (const SpanRecord& rec : records) {
    const uint64_t pid = rec.id == kGlobalTaskId ? kSystemPid : pids.at(rec.id);
    const uint32_t tid = ThreadIdFor(rec);
    if (!named_threads.insert(pid << 8 | tid).second) {
      continue;
    }
    std::ostringstream os;
    os << LaneName(LaneFor(rec.kind)) << "/a" << static_cast<uint32_t>(rec.attempt);
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("thread_name");
    w.Key("pid").UInt(pid);
    w.Key("tid").UInt(tid);
    w.Key("args").BeginObject().Key("name").String(os.str()).EndObject();
    w.EndObject();
  }

  for (const Ev& ev : events) {
    const SpanRecord& rec = records[ev.rec];
    const uint64_t pid = rec.id == kGlobalTaskId ? kSystemPid : pids.at(rec.id);
    w.BeginObject();
    w.Key("name").String(KindName(rec.kind));
    w.Key("cat").String(LaneName(LaneFor(rec.kind)));
    w.Key("ph").String(std::string(1, ev.ph));
    w.Key("ts").Double(static_cast<double>(ev.ts) / 1000.0);  // microseconds
    w.Key("pid").UInt(pid);
    w.Key("tid").UInt(ThreadIdFor(rec));
    if (ev.ph == 'i') {
      w.Key("s").String("t");
    }
    if (ev.ph != 'E') {
      WriteEventArgs(w, rec);
    }
    w.EndObject();
  }

  w.EndArray();
  w.EndObject();
  return w.str();
}

bool WriteChromeTraceFile(const std::string& path, const Recorder& recorder,
                          const std::string& bench) {
  return WriteFile(path, RenderChromeTrace(recorder, bench));
}

AttributionReport BuildAttribution(const Recorder& recorder, size_t top_k) {
  AttributionReport report;
  report.sample_period = recorder.config().sample_period;
  report.dropped_records = recorder.dropped_records();

  // Group records per task, preserving first-seen task order and the
  // generation order of each task's records.
  std::unordered_map<net::TaskId, size_t, net::TaskIdHash> index;
  std::vector<std::vector<const SpanRecord*>> timelines;
  std::vector<net::TaskId> ids;
  for (const SpanRecord& rec : recorder.records()) {
    if (rec.id == kGlobalTaskId) {
      continue;
    }
    auto [it, inserted] = index.emplace(rec.id, timelines.size());
    if (inserted) {
      timelines.emplace_back();
      ids.push_back(rec.id);
    }
    timelines[it->second].push_back(&rec);
  }

  constexpr TimeNs kUnset = -1;
  const auto submission_aux = static_cast<uint16_t>(net::OpCode::kJobSubmission);
  for (size_t t = 0; t < timelines.size(); ++t) {
    ++report.sampled_tasks;
    const auto& recs = timelines[t];

    const SpanRecord* complete = nullptr;
    for (const SpanRecord* r : recs) {
      if (r->kind == Kind::kComplete) {
        complete = r;
        break;
      }
      if (r->kind == Kind::kCensored) {
        ++report.censored_tasks;
        break;
      }
    }
    if (complete == nullptr) {
      continue;
    }
    ++report.completed_tasks;

    const uint32_t win = complete->attempt;
    TimeNs first_submit = kUnset, send_w = kUnset, switch_in = kUnset;
    TimeNs enqueue = kUnset, assign = kUnset, exec_arrive = kUnset;
    TimeNs exec_done = kUnset;
    const TimeNs done = complete->begin;
    for (const SpanRecord* r : recs) {
      switch (r->kind) {
        case Kind::kSubmit:
          if (first_submit == kUnset) first_submit = r->begin;
          break;
        case Kind::kClientSend:
          if (send_w == kUnset && r->attempt == win) send_w = r->begin;
          break;
        case Kind::kWire:
          if (switch_in == kUnset && r->attempt == win && r->aux == submission_aux) {
            switch_in = r->end;
          }
          break;
        case Kind::kEnqueue:
          if (enqueue == kUnset && r->attempt == win) enqueue = r->begin;
          break;
        case Kind::kAssign:
          if (assign == kUnset && r->attempt == win) assign = r->begin;
          break;
        case Kind::kExecArrive:
          if (exec_arrive == kUnset && r->attempt == win) exec_arrive = r->begin;
          break;
        case Kind::kExecService:
          if (exec_done == kUnset && r->attempt == win) exec_done = r->end;
          break;
        default:
          break;
      }
    }
    if (first_submit == kUnset && !recs.empty()) {
      first_submit = recs.front()->begin;
    }
    if (first_submit == kUnset || send_w == kUnset || switch_in == kUnset ||
        enqueue == kUnset || assign == kUnset || exec_arrive == kUnset ||
        exec_done == kUnset) {
      ++report.partial_timelines;
      continue;
    }

    TaskAttribution attr;
    attr.id = ids[t];
    attr.attempt = win;
    attr.first_submit = first_submit;
    attr.completed = done;
    // Telescoping milestones: the five stages sum exactly to `total`.
    attr.stages.client = send_w - first_submit;
    attr.stages.scheduling = enqueue - switch_in;
    attr.stages.queue = assign - enqueue;
    attr.stages.executor = exec_done - exec_arrive;
    attr.stages.wire =
        (switch_in - send_w) + (exec_arrive - assign) + (done - exec_done);
    attr.stages.total = done - first_submit;
    if (attr.stages.client < 0 || attr.stages.scheduling < 0 ||
        attr.stages.queue < 0 || attr.stages.executor < 0 ||
        attr.stages.wire < 0) {
      ++report.partial_timelines;  // out-of-order milestones; do not attribute
      continue;
    }
    report.client.Record(attr.stages.client);
    report.wire.Record(attr.stages.wire);
    report.scheduling.Record(attr.stages.scheduling);
    report.queue.Record(attr.stages.queue);
    report.executor.Record(attr.stages.executor);
    report.total.Record(attr.stages.total);
    report.tasks.push_back(attr);
  }

  report.slowest.resize(report.tasks.size());
  for (size_t i = 0; i < report.slowest.size(); ++i) {
    report.slowest[i] = i;
  }
  std::stable_sort(report.slowest.begin(), report.slowest.end(),
                   [&report](size_t a, size_t b) {
                     return report.tasks[a].stages.total > report.tasks[b].stages.total;
                   });
  if (report.slowest.size() > top_k) {
    report.slowest.resize(top_k);
  }
  return report;
}

std::string RenderAttribution(const AttributionReport& report, const Recorder& recorder,
                              const std::string& bench) {
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("kind").String("trace_attribution");
  w.Key("bench").String(bench);
  w.Key("sample_period").UInt(report.sample_period);
  w.Key("sampled_tasks").UInt(report.sampled_tasks);
  w.Key("completed_tasks").UInt(report.completed_tasks);
  w.Key("censored_tasks").UInt(report.censored_tasks);
  w.Key("partial_timelines").UInt(report.partial_timelines);
  w.Key("dropped_records").UInt(report.dropped_records);
  w.Key("attributed_tasks").UInt(report.tasks.size());

  w.Key("stages").BeginObject();
  w.Key("client");
  report.client.WriteJson(w);
  w.Key("wire");
  report.wire.WriteJson(w);
  w.Key("scheduling");
  report.scheduling.WriteJson(w);
  w.Key("queue");
  report.queue.WriteJson(w);
  w.Key("executor");
  report.executor.WriteJson(w);
  w.Key("total");
  report.total.WriteJson(w);
  w.EndObject();

  auto write_task = [&w](const TaskAttribution& attr) {
    w.Key("uid").UInt(attr.id.uid);
    w.Key("jid").UInt(attr.id.jid);
    w.Key("tid").UInt(attr.id.tid);
    w.Key("attempt").UInt(attr.attempt);
    w.Key("first_submit_ns").Int(attr.first_submit);
    w.Key("completed_ns").Int(attr.completed);
    w.Key("client_ns").Int(attr.stages.client);
    w.Key("wire_ns").Int(attr.stages.wire);
    w.Key("scheduling_ns").Int(attr.stages.scheduling);
    w.Key("queue_ns").Int(attr.stages.queue);
    w.Key("executor_ns").Int(attr.stages.executor);
    w.Key("total_ns").Int(attr.stages.total);
  };

  w.Key("tasks").BeginArray();
  for (const TaskAttribution& attr : report.tasks) {
    w.BeginObject();
    write_task(attr);
    w.EndObject();
  }
  w.EndArray();

  // Full timelines for the slowest tasks: one recorder pass, filtered by id.
  std::unordered_map<net::TaskId, size_t, net::TaskIdHash> slow_ids;
  for (size_t idx : report.slowest) {
    slow_ids.emplace(report.tasks[idx].id, idx);
  }
  std::unordered_map<size_t, std::vector<const SpanRecord*>> slow_timelines;
  for (const SpanRecord& rec : recorder.records()) {
    auto it = slow_ids.find(rec.id);
    if (it != slow_ids.end()) {
      slow_timelines[it->second].push_back(&rec);
    }
  }
  w.Key("top_slowest").BeginArray();
  for (size_t idx : report.slowest) {
    const TaskAttribution& attr = report.tasks[idx];
    w.BeginObject();
    write_task(attr);
    w.Key("timeline").BeginArray();
    for (const SpanRecord* rec : slow_timelines[idx]) {
      WriteSpanRecordJson(w, *rec);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

bool WriteAttributionFile(const std::string& path, const AttributionReport& report,
                          const Recorder& recorder, const std::string& bench) {
  return WriteFile(path, RenderAttribution(report, recorder, bench));
}

}  // namespace draconis::trace
