// Task-lifecycle span records.
//
// One SpanRecord captures one observable edge of a sampled task's life —
// either an interval ([begin, end), e.g. a wire flight or queue residency)
// or an instant (begin == end, e.g. an enqueue or a completion notice). The
// record is a fixed-size POD so the hot path appends into a flat vector with
// no per-event allocation, unlike p4::TracingProgram's old per-event string.
// Everything human-readable (names, lanes, Perfetto tracks) is derived at
// export time from the Kind.

#ifndef DRACONIS_TRACE_SPAN_H_
#define DRACONIS_TRACE_SPAN_H_

#include <cstdint>
#include <type_traits>

#include "common/time.h"
#include "net/packet.h"

namespace draconis::trace {

// Every edge of the task lifecycle the tracer can observe. Duration kinds
// carry [begin, end); instant kinds have end == begin (see IsInstant).
enum class Kind : uint8_t {
  // Client (src/cluster/client.cc).
  kSubmit = 0,         // first SubmitJob for this task (detail = job size)
  kClientSend,         // a job_submission left the client (any attempt)
  kTimeoutResubmit,    // timeout fired; the task was resubmitted (§8.3)
  kQueueFullRetry,     // queue-full error received; retry scheduled (§4.3)
  kComplete,           // terminal: completion notice accepted
  kDuplicateComplete,  // suppressed duplicate notice (timeout resubmission)
  kCensored,           // terminal: still in flight when the trace closed

  // Fabric (src/net/network.cc).
  kWire,    // span: send -> arrival at the destination NIC (detail = tx wait)
  kHostRx,  // span: arrival -> delivery (rx occupancy + stack latency)
  kNetDrop, // fault-injected or disconnected-host drop

  // Switch pipeline (src/p4/pipeline.cc).
  kSwitchPass,   // span: one match-action traversal (detail = pass number)
  kRecirc,       // span: loopback-port residency (detail = port backlog)
  kRecircDrop,   // lost at a saturated loopback port
  kProgramDrop,  // dropped by the switch program

  // Draconis program (src/core/draconis_program.cc).
  kEnqueue,         // entry written (detail = queue occupancy incl. this task)
  kQueueFullError,  // submission refused, error returned to the client
  kRepairLaunch,    // this task's enqueue launched a pointer repair (§4.5)
  kRepairApply,     // global: a repair packet corrected a pointer
  kSwapExchange,    // §5.1 swap walk exchanged this task at a slot
  kSwapRequeue,     // walk exhausted; task re-entered the submission path
  kQueueWait,       // span: enqueue -> dequeue (queue residency)
  kAssign,          // dequeued and assigned (node = executor)

  // Executor (src/cluster/executor.cc).
  kExecArrive,   // assignment delivered (detail = pull round-trip)
  kExecPickup,   // span: arrival -> service start (incl. §4.4 param fetch)
  kExecService,  // span: data access + function execution

  // Control plane (global records, no task id).
  kRehome,       // §3.3: an executor/client re-pointed at a standby scheduler
  kFaultWindow,  // span: a fault-plan event was active (detail = EventKind);
                 // Perfetto renders it as the outage band on the system track
};

inline constexpr uint8_t kNumKinds = static_cast<uint8_t>(Kind::kFaultWindow) + 1;

// Stable lower_snake_case name; doubles as the Chrome trace-event name.
const char* KindName(Kind kind);

// True for zero-width kinds (rendered as Perfetto instants, not B/E pairs).
constexpr bool IsInstant(Kind kind) {
  switch (kind) {
    case Kind::kWire:
    case Kind::kHostRx:
    case Kind::kSwitchPass:
    case Kind::kRecirc:
    case Kind::kQueueWait:
    case Kind::kExecPickup:
    case Kind::kExecService:
    case Kind::kFaultWindow:
      return false;
    default:
      return true;
  }
}

// True for kinds that end a task's timeline.
constexpr bool IsTerminal(Kind kind) {
  return kind == Kind::kComplete || kind == Kind::kCensored;
}

// Layer a record belongs to; one Perfetto thread track per (lane, attempt).
enum class Lane : uint8_t { kClient = 0, kNet, kSwitch, kQueue, kExecutor };
inline constexpr uint8_t kNumLanes = static_cast<uint8_t>(Lane::kExecutor) + 1;

const char* LaneName(Lane lane);
Lane LaneFor(Kind kind);

// One recorded edge. Fixed-size and trivially copyable: the recorder's hot
// path is a bounds check plus a 48-byte append.
struct SpanRecord {
  net::TaskId id;     // sampled task (kGlobalTaskId for global records)
  uint32_t node = 0;  // fabric node involved (kind-specific)
  TimeNs begin = 0;
  TimeNs end = 0;       // == begin for instants
  uint64_t detail = 0;  // kind-specific scalar (occupancy, backlog, ...)
  Kind kind = Kind::kSubmit;
  uint8_t attempt = 0;  // resubmission attempt the record belongs to
  uint16_t aux = 0;     // kind-specific small scalar (opcode, queue index)
};

static_assert(std::is_trivially_copyable_v<SpanRecord>);
static_assert(sizeof(SpanRecord) <= 48, "keep the hot-path append compact");

// Sentinel id for records not tied to a task (kRehome, kRepairApply).
inline constexpr net::TaskId kGlobalTaskId{0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu};

struct TraceConfig {
  bool enabled = false;
  // Record one of every `sample_period` task ids, selected by a
  // deterministic hash of <UID, JID, TID> (seed-independent; 1 = every task).
  uint64_t sample_period = 64;
  // Hard cap on retained records; appends beyond it are counted as dropped.
  size_t max_records = size_t{1} << 21;
};

}  // namespace draconis::trace

#endif  // DRACONIS_TRACE_SPAN_H_
