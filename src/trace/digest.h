// Fixed-size packet digest.
//
// PacketDigest captures everything p4::TracingProgram's ring needs to render
// a packet one-liner later — opcode, addressing, task identity, walk state —
// without the per-event std::string the old ring allocated on the data path.
// Render() materializes the human-readable line on demand (dump/test time).

#ifndef DRACONIS_TRACE_DIGEST_H_
#define DRACONIS_TRACE_DIGEST_H_

#include <cstdint>
#include <string>

#include "net/packet.h"

namespace draconis::trace {

struct PacketDigest {
  net::TaskId first_task{};  // tasks[0] when num_tasks > 0
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  uint32_t uid = 0;
  uint32_t jid = 0;
  uint32_t num_tasks = 0;
  uint32_t pipeline_passes = 0;
  uint32_t payload_bytes = 0;
  uint32_t exec_props = 0;
  uint32_t swap_count = 0;
  net::OpCode op = net::OpCode::kOther;
  uint8_t queue_index = 0;
  uint8_t rtrv_prio = 1;
  bool from_swap = false;

  static PacketDigest Of(const net::Packet& pkt);

  // "job_submission src=3 dst=0 uid=1 jid=4 tasks=2 first=<1,4,0>" — same
  // vocabulary as net::Packet::Describe, rebuilt from the digest.
  std::string Render() const;
};

static_assert(std::is_trivially_copyable_v<PacketDigest>);

}  // namespace draconis::trace

#endif  // DRACONIS_TRACE_DIGEST_H_
