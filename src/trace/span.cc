#include "trace/span.h"

namespace draconis::trace {

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kSubmit:
      return "submit";
    case Kind::kClientSend:
      return "client_send";
    case Kind::kTimeoutResubmit:
      return "timeout_resubmit";
    case Kind::kQueueFullRetry:
      return "queue_full_retry";
    case Kind::kComplete:
      return "complete";
    case Kind::kDuplicateComplete:
      return "duplicate_complete";
    case Kind::kCensored:
      return "censored";
    case Kind::kWire:
      return "wire";
    case Kind::kHostRx:
      return "host_rx";
    case Kind::kNetDrop:
      return "net_drop";
    case Kind::kSwitchPass:
      return "switch_pass";
    case Kind::kRecirc:
      return "recirculation";
    case Kind::kRecircDrop:
      return "recirc_drop";
    case Kind::kProgramDrop:
      return "program_drop";
    case Kind::kEnqueue:
      return "enqueue";
    case Kind::kQueueFullError:
      return "queue_full_error";
    case Kind::kRepairLaunch:
      return "repair_launch";
    case Kind::kRepairApply:
      return "repair_apply";
    case Kind::kSwapExchange:
      return "swap_exchange";
    case Kind::kSwapRequeue:
      return "swap_requeue";
    case Kind::kQueueWait:
      return "queue_wait";
    case Kind::kAssign:
      return "assign";
    case Kind::kExecArrive:
      return "exec_arrive";
    case Kind::kExecPickup:
      return "exec_pickup";
    case Kind::kExecService:
      return "exec_service";
    case Kind::kRehome:
      return "rehome";
    case Kind::kFaultWindow:
      return "fault_window";
  }
  return "unknown";
}

const char* LaneName(Lane lane) {
  switch (lane) {
    case Lane::kClient:
      return "client";
    case Lane::kNet:
      return "net";
    case Lane::kSwitch:
      return "switch";
    case Lane::kQueue:
      return "queue";
    case Lane::kExecutor:
      return "executor";
  }
  return "unknown";
}

Lane LaneFor(Kind kind) {
  switch (kind) {
    case Kind::kSubmit:
    case Kind::kClientSend:
    case Kind::kTimeoutResubmit:
    case Kind::kQueueFullRetry:
    case Kind::kComplete:
    case Kind::kDuplicateComplete:
    case Kind::kCensored:
      return Lane::kClient;
    case Kind::kWire:
    case Kind::kHostRx:
    case Kind::kNetDrop:
    case Kind::kFaultWindow:
      return Lane::kNet;
    case Kind::kSwitchPass:
    case Kind::kRecirc:
    case Kind::kRecircDrop:
    case Kind::kProgramDrop:
    case Kind::kEnqueue:
    case Kind::kQueueFullError:
    case Kind::kRepairLaunch:
    case Kind::kRepairApply:
    case Kind::kSwapExchange:
    case Kind::kSwapRequeue:
    case Kind::kRehome:
      return Lane::kSwitch;
    case Kind::kQueueWait:
    case Kind::kAssign:
      return Lane::kQueue;
    case Kind::kExecArrive:
    case Kind::kExecPickup:
    case Kind::kExecService:
      return Lane::kExecutor;
  }
  return Lane::kClient;
}

}  // namespace draconis::trace
