#include "trace/digest.h"

#include <sstream>

namespace draconis::trace {

PacketDigest PacketDigest::Of(const net::Packet& pkt) {
  PacketDigest d;
  if (!pkt.tasks.empty()) {
    d.first_task = pkt.tasks[0].id;
  }
  d.src = pkt.src;
  d.dst = pkt.dst;
  d.uid = pkt.uid;
  d.jid = pkt.jid;
  d.num_tasks = static_cast<uint32_t>(pkt.tasks.size());
  d.pipeline_passes = pkt.pipeline_passes;
  d.payload_bytes = pkt.payload_bytes;
  d.exec_props = pkt.exec_props;
  d.swap_count = pkt.swap_count;
  d.op = pkt.op;
  d.queue_index = pkt.queue_index;
  d.rtrv_prio = pkt.rtrv_prio;
  d.from_swap = pkt.from_swap;
  return d;
}

std::string PacketDigest::Render() const {
  std::ostringstream os;
  os << net::OpCodeName(op) << " src=" << src << " dst=" << dst;
  if (num_tasks > 0) {
    os << " tasks=" << num_tasks << " first=<" << first_task.uid << "," << first_task.jid
       << "," << first_task.tid << ">";
  }
  if (op == net::OpCode::kTaskRequest || op == net::OpCode::kTaskCompletion) {
    os << " exec_props=" << exec_props << " rtrv_prio=" << static_cast<int>(rtrv_prio);
  }
  if (op == net::OpCode::kSwapTask) {
    os << " swaps=" << swap_count << " queue=" << static_cast<int>(queue_index);
  }
  if (from_swap) {
    os << " from_swap";
  }
  return os.str();
}

}  // namespace draconis::trace
