// Central task-lifecycle recorder (one per experiment).
//
// The recorder is threaded — as a nullable pointer, beside the MetricsHub —
// through Client, Executor, net::Network, the switch pipeline and the
// Draconis program. Each layer asks Sampled(id) and, when true, appends a
// fixed-size SpanRecord. Recording never branches simulation behaviour,
// never schedules events, and never consumes randomness:
//
//   * Sampling is a pure hash of <UID, JID, TID> — independent of every
//     seed and RNG stream — so tracing on/off/at-any-rate is bit-identical
//     to an untraced run (tests/determinism_test.cc enforces this).
//   * The hot path is `recorder != nullptr`, a multiply-xor hash, and a
//     48-byte vector append. Disabled tracing costs one null check
//     (bench/micro_trace.cc gates this at < 2%).
//
// The hot-path methods are inline so layers that only *record* (net, p4,
// core) need no link dependency on the trace library; only consumers of
// FinalizeAt and the exporters (cluster, bench, tests) link draconis_trace.

#ifndef DRACONIS_TRACE_RECORDER_H_
#define DRACONIS_TRACE_RECORDER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/time.h"
#include "net/packet.h"
#include "trace/span.h"

namespace draconis::trace {

class Recorder {
 public:
  explicit Recorder(const TraceConfig& config) : config_(config) {
    if (config_.sample_period == 0) {
      config_.sample_period = 1;
    }
    records_.reserve(std::min<size_t>(config_.max_records, 4096));
  }

  // Deterministic, seed-independent task-id mix (distinct multiplier from
  // net::TaskIdHash so sampling does not correlate with container layout).
  static uint64_t HashOf(const net::TaskId& id) {
    uint64_t h = (static_cast<uint64_t>(id.uid) << 40) ^
                 (static_cast<uint64_t>(id.jid) << 20) ^ id.tid;
    h *= 0xD6E8FEB86659FD93ULL;
    h ^= h >> 32;
    h *= 0xD6E8FEB86659FD93ULL;
    h ^= h >> 32;
    return h;
  }

  // Whether this task's lifecycle is recorded. Pure function of the id.
  bool Sampled(const net::TaskId& id) const {
    return config_.sample_period <= 1 || HashOf(id) % config_.sample_period == 0;
  }

  // Appends one record. Callers gate on Sampled(id) themselves so multi-task
  // packets pay one hash per task, not one virtual call per packet.
  void Record(const net::TaskId& id, Kind kind, TimeNs begin, TimeNs end,
              uint64_t detail = 0, uint32_t node = 0, uint32_t attempt = 0,
              uint16_t aux = 0) {
    if (records_.size() >= config_.max_records) {
      ++dropped_;
      return;
    }
    SpanRecord rec;
    rec.id = id;
    rec.node = node;
    rec.begin = begin;
    rec.end = end;
    rec.detail = detail;
    rec.kind = kind;
    rec.attempt = static_cast<uint8_t>(std::min<uint32_t>(attempt, 255));
    rec.aux = aux;
    records_.push_back(rec);
  }

  // A record not tied to any task (kRehome, kRepairApply).
  void RecordGlobal(Kind kind, TimeNs at, uint64_t detail = 0, uint32_t node = 0) {
    Record(kGlobalTaskId, kind, at, at, detail, node);
  }

  // Appends a kCensored terminal at `horizon` for every sampled task whose
  // timeline has no terminal record. Call once, after the run.
  void FinalizeAt(TimeNs horizon);

  const std::vector<SpanRecord>& records() const { return records_; }
  uint64_t dropped_records() const { return dropped_; }
  const TraceConfig& config() const { return config_; }

 private:
  TraceConfig config_;
  std::vector<SpanRecord> records_;
  uint64_t dropped_ = 0;
};

}  // namespace draconis::trace

#endif  // DRACONIS_TRACE_RECORDER_H_
