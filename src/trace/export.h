// Trace exporters: Chrome trace-event JSON and latency attribution.
//
// Two consumers of a finalized Recorder:
//
//   * RenderChromeTrace — the Chrome trace-event format (one "process" per
//     sampled task, one "thread" per lane×attempt), loadable directly in
//     Perfetto / chrome://tracing for visual timeline inspection.
//   * BuildAttribution — a per-task latency breakdown that telescopes each
//     completed task's end-to-end latency into client / wire / scheduling /
//     queue / executor stages summing *exactly* (integer nanoseconds) to the
//     measured total, aggregated into per-stage histograms plus the top-K
//     slowest tasks with their full span timelines.
//
// Both are validated by scripts/trace_stats.py; the schema is documented in
// docs/observability.md.

#ifndef DRACONIS_TRACE_EXPORT_H_
#define DRACONIS_TRACE_EXPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.h"
#include "net/packet.h"
#include "stats/histogram.h"
#include "trace/recorder.h"

namespace draconis::trace {

// Per-task stage breakdown; the five stages sum exactly to `total`.
struct StageBreakdown {
  TimeNs client = 0;      // submit -> winning attempt leaves the client
  TimeNs wire = 0;        // all network segments (to switch, to executor, back)
  TimeNs scheduling = 0;  // switch ingress -> enqueued (passes, repairs, recirc)
  TimeNs queue = 0;       // queue residency: enqueue -> assigned
  TimeNs executor = 0;    // executor arrival -> service done
  TimeNs total = 0;       // submit -> completion notice at the client
};

struct TaskAttribution {
  net::TaskId id{};
  uint32_t attempt = 0;  // winning (completing) attempt
  TimeNs first_submit = 0;
  TimeNs completed = 0;
  StageBreakdown stages;
};

struct AttributionReport {
  uint64_t sample_period = 1;
  uint64_t sampled_tasks = 0;
  uint64_t completed_tasks = 0;
  uint64_t censored_tasks = 0;
  // Completed tasks whose timeline lacks a milestone (e.g. schedulers that do
  // not record enqueue/assign); counted but excluded from `tasks`.
  uint64_t partial_timelines = 0;
  uint64_t dropped_records = 0;

  stats::Histogram client;
  stats::Histogram wire;
  stats::Histogram scheduling;
  stats::Histogram queue;
  stats::Histogram executor;
  stats::Histogram total;

  std::vector<TaskAttribution> tasks;   // every fully-attributed task
  std::vector<size_t> slowest;          // indices into `tasks`, total desc
};

// Builds the attribution report from a finalized recorder.
AttributionReport BuildAttribution(const Recorder& recorder, size_t top_k = 10);

// Chrome trace-event JSON ({"traceEvents": [...]}) for the whole recorder.
std::string RenderChromeTrace(const Recorder& recorder, const std::string& bench);
bool WriteChromeTraceFile(const std::string& path, const Recorder& recorder,
                          const std::string& bench);

// Attribution-report JSON. The recorder is re-scanned to attach the full span
// timeline of each top-K slowest task.
std::string RenderAttribution(const AttributionReport& report, const Recorder& recorder,
                              const std::string& bench);
bool WriteAttributionFile(const std::string& path, const AttributionReport& report,
                          const Recorder& recorder, const std::string& bench);

// Lowercases and maps non-[a-z0-9._-] characters to '_' for output filenames.
std::string SanitizeForFilename(const std::string& label);

}  // namespace draconis::trace

#endif  // DRACONIS_TRACE_EXPORT_H_
