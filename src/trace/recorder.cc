#include "trace/recorder.h"

#include <unordered_map>
#include <utility>

namespace draconis::trace {

void Recorder::FinalizeAt(TimeNs horizon) {
  // First-seen order keeps the appended kCensored records deterministic.
  std::unordered_map<net::TaskId, size_t, net::TaskIdHash> index;
  std::vector<std::pair<net::TaskId, bool>> tasks;  // (id, has terminal)
  for (const SpanRecord& rec : records_) {
    if (rec.id == kGlobalTaskId) {
      continue;
    }
    auto [it, inserted] = index.emplace(rec.id, tasks.size());
    if (inserted) {
      tasks.emplace_back(rec.id, false);
    }
    if (IsTerminal(rec.kind)) {
      tasks[it->second].second = true;
    }
  }
  for (const auto& [id, terminal] : tasks) {
    if (!terminal) {
      Record(id, Kind::kCensored, horizon, horizon);
    }
  }
}

}  // namespace draconis::trace
