// PIFO (push-in-first-out) queue model of a programmable switch.
//
// Sivaraman et al., "Programmable Packet Scheduling at Line Rate": a single
// hardware primitive — a bounded priority queue that admits an element at the
// position its *rank* dictates and only ever dequeues from the head — can
// express strict priority, SRPT, EDF, weighted fairness, and most other
// work-conserving disciplines purely by changing the rank computation. The
// rank is computed in the match-action stages *before* the PIFO block, so the
// block itself stays policy-free.
//
// This model follows the same register discipline as RegisterArray
// (register.h): the whole PIFO block counts as ONE register group, so a
// packet pass may either Push or Pop once — a second operation throws
// CheckFailure, exactly like touching a RegisterArray twice. That matches the
// hardware, where the PIFO is a dedicated block with a single
// admit-or-dequeue port per packet time.
//
// Ordering contract (pinned by tests/pifo_property_test.cc):
//   - Pop returns the element with the smallest rank.
//   - Equal ranks dequeue in arrival order (FIFO): every Push consumes one
//     arrival sequence number, admitted or not, and ties are broken by it.
//   - At capacity, kRejectArrival refuses the incoming element;
//     kEvictLowestPriority evicts the worst-ordered resident element
//     (largest rank, youngest arrival) if the incoming element orders before
//     it, and refuses the arrival otherwise.
//
// Register budget: `capacity` elements of `wire_bytes_per_element` payload
// plus an 8-byte rank per element, accounted in the ResourceLedger like any
// other register group (paper §7 capacity analysis).

#ifndef DRACONIS_P4_PIFO_H_
#define DRACONIS_P4_PIFO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "p4/register.h"

namespace draconis::p4 {

enum class PifoOverflow : uint8_t {
  kRejectArrival,         // full: refuse the incoming element
  kEvictLowestPriority,   // full: displace the worst-ordered resident element
};

template <typename T>
class Pifo {
 public:
  Pifo(std::string name, size_t capacity,
       PifoOverflow overflow = PifoOverflow::kRejectArrival, ResourceLedger* ledger = nullptr,
       size_t wire_bytes_per_element = sizeof(T))
      : name_(std::move(name)), capacity_(capacity), overflow_(overflow) {
    DRACONIS_CHECK(capacity > 0);
    if (ledger != nullptr) {
      // Payload registers plus the per-element 8-byte rank store.
      ledger->Account(name_, capacity, capacity * (wire_bytes_per_element + 8));
    }
    heap_.reserve(capacity);
  }

  Pifo(const Pifo&) = delete;
  Pifo& operator=(const Pifo&) = delete;

  struct PushResult {
    bool admitted = false;
    // kEvictLowestPriority displaced a resident element to make room.
    bool evicted = false;
    T evicted_value{};
    uint64_t evicted_rank = 0;
  };

  // Admits `value` at the position `rank` dictates. Consumes this pass's
  // single access to the PIFO block and one arrival sequence number.
  PushResult Push(PacketPass& pass, uint64_t rank, T value) {
    Claim(pass);
    const uint64_t seq = next_seq_++;
    PushResult result;
    if (heap_.size() == capacity_) {
      if (overflow_ == PifoOverflow::kRejectArrival) {
        ++rejects_;
        return result;
      }
      // kEvictLowestPriority: the incoming element carries the youngest
      // arrival, so on a rank tie with the worst resident it is the one
      // refused — FIFO-within-rank holds even across evictions.
      const size_t worst = WorstIndex();
      if (heap_[worst].rank <= rank) {
        ++rejects_;
        return result;
      }
      result.evicted = true;
      result.evicted_value = std::move(heap_[worst].value);
      result.evicted_rank = heap_[worst].rank;
      ++evictions_;
      RemoveAt(worst);
    }
    heap_.push_back(Item{rank, seq, std::move(value)});
    SiftUp(heap_.size() - 1);
    ++pushes_;
    result.admitted = true;
    return result;
  }

  struct PopResult {
    bool got = false;
    T value{};
    uint64_t rank = 0;
  };

  // Dequeues the head (smallest rank, earliest arrival). Consumes this
  // pass's single access to the PIFO block.
  PopResult Pop(PacketPass& pass) {
    Claim(pass);
    PopResult result;
    if (heap_.empty()) {
      ++empty_pops_;
      return result;
    }
    result.got = true;
    result.value = std::move(heap_.front().value);
    result.rank = heap_.front().rank;
    RemoveAt(0);
    ++pops_;
    return result;
  }

  // --- Control-plane observability (switch CPU; not pass-limited) ----------

  const std::string& name() const { return name_; }
  size_t capacity() const { return capacity_; }
  PifoOverflow overflow_policy() const { return overflow_; }
  size_t cp_size() const { return heap_.size(); }
  bool cp_empty() const { return heap_.empty(); }
  uint64_t cp_min_rank() const {
    DRACONIS_CHECK_MSG(!heap_.empty(), "cp_min_rank on empty PIFO: " + name_);
    return heap_.front().rank;
  }
  uint64_t cp_pushes() const { return pushes_; }
  uint64_t cp_pops() const { return pops_; }
  uint64_t cp_empty_pops() const { return empty_pops_; }
  uint64_t cp_rejects() const { return rejects_; }
  uint64_t cp_evictions() const { return evictions_; }

 private:
  struct Item {
    uint64_t rank = 0;
    uint64_t seq = 0;
    T value{};
  };

  static bool Before(const Item& a, const Item& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.seq < b.seq;
  }

  void Claim(PacketPass& pass) {
    DRACONIS_CHECK_MSG(pass.TryMarkAccess(this),
                       "PIFO accessed twice in one packet pass: " + name_);
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Before(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    for (;;) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t smallest = i;
      if (left < heap_.size() && Before(heap_[left], heap_[smallest])) {
        smallest = left;
      }
      if (right < heap_.size() && Before(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == i) {
        break;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  // Index of the worst-ordered element. In a min-heap it is always a leaf,
  // so the scan is bounded to the bottom level; it only runs on overflow.
  size_t WorstIndex() const {
    size_t worst = heap_.size() / 2;
    for (size_t i = worst + 1; i < heap_.size(); ++i) {
      if (Before(heap_[worst], heap_[i])) {
        worst = i;
      }
    }
    return worst;
  }

  void RemoveAt(size_t i) {
    heap_[i] = std::move(heap_.back());
    heap_.pop_back();
    if (i < heap_.size()) {
      SiftDown(i);
      SiftUp(i);
    }
  }

  std::string name_;
  size_t capacity_;
  PifoOverflow overflow_;
  std::vector<Item> heap_;
  uint64_t next_seq_ = 0;
  uint64_t pushes_ = 0;
  uint64_t pops_ = 0;
  uint64_t empty_pops_ = 0;
  uint64_t rejects_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace draconis::p4

#endif  // DRACONIS_P4_PIFO_H_
