// Register model of a programmable switch.
//
// The defining restriction of Tofino-class hardware (paper §2.1.1): a
// register (stateful memory) can be operated on AT MOST ONCE per packet
// traversal, and the single operation must be one of the stateful-ALU shapes
// (read, write, read-modify-write with simple arithmetic, or a predicated
// exchange). Two reads, or a read followed by a write, of the same register
// for the same packet are impossible in hardware.
//
// RegisterArray enforces that restriction at runtime: every operation takes a
// PacketPass context, and a second operation on the same array within one
// pass throws CheckFailure. This makes the paper's delayed-pointer-correction
// queue design load-bearing — a textbook circular queue written against this
// API fails its tests.
//
// A RegisterArray<T> with a struct T stands for a group of parallel per-field
// 32/64-bit register arrays living in adjacent stages, each accessed once for
// the same index — which is how multi-field queue entries are laid out on
// real hardware. The single-access rule is enforced on the group.

#ifndef DRACONIS_P4_REGISTER_H_
#define DRACONIS_P4_REGISTER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace draconis::p4 {

// Tracks which register arrays a packet has touched during one pipeline
// traversal. Recirculating a packet starts a new pass with a fresh budget,
// which is exactly the loophole the paper's design exploits.
class PacketPass {
 public:
  PacketPass() = default;
  PacketPass(const PacketPass&) = delete;
  PacketPass& operator=(const PacketPass&) = delete;

  // Returns true if this is the first access to `reg` in this pass.
  bool TryMarkAccess(const void* reg) {
    for (const void* seen : accessed_) {
      if (seen == reg) {
        return false;
      }
    }
    accessed_.push_back(reg);
    return true;
  }

  size_t accesses() const { return accessed_.size(); }

 private:
  std::vector<const void*> accessed_;
};

// Accounts switch SRAM consumed by register arrays; used by the capacity
// analysis bench (paper §7).
class ResourceLedger {
 public:
  struct Entry {
    std::string name;
    size_t elements;
    size_t bytes;
  };

  void Account(std::string name, size_t elements, size_t bytes) {
    total_bytes_ += bytes;
    entries_.push_back(Entry{std::move(name), elements, bytes});
  }

  size_t total_bytes() const { return total_bytes_; }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  size_t total_bytes_ = 0;
  std::vector<Entry> entries_;
};

template <typename T>
class RegisterArray {
 public:
  // `wire_bytes_per_element` is the hardware footprint of one element, which
  // can be smaller than sizeof(T) because T carries simulation metadata.
  RegisterArray(std::string name, size_t size, T initial = T{},
                ResourceLedger* ledger = nullptr, size_t wire_bytes_per_element = sizeof(T))
      : name_(std::move(name)), values_(size, initial) {
    DRACONIS_CHECK(size > 0);
    if (ledger != nullptr) {
      ledger->Account(name_, size, size * wire_bytes_per_element);
    }
  }

  RegisterArray(const RegisterArray&) = delete;
  RegisterArray& operator=(const RegisterArray&) = delete;

  size_t size() const { return values_.size(); }
  const std::string& name() const { return name_; }

  // --- Stateful-ALU operations (each consumes this pass's single access) ----

  T Read(PacketPass& pass, size_t i) {
    Claim(pass, i);
    return values_[i];
  }

  void Write(PacketPass& pass, size_t i, T value) {
    Claim(pass, i);
    values_[i] = std::move(value);
  }

  // Atomic fetch-and-add; returns the previous value.
  T ReadAndAdd(PacketPass& pass, size_t i, T delta) {
    Claim(pass, i);
    T old = values_[i];
    values_[i] = old + delta;
    return old;
  }

  // Atomic exchange; returns the previous value.
  T Exchange(PacketPass& pass, size_t i, T value) {
    Claim(pass, i);
    T old = std::move(values_[i]);
    values_[i] = std::move(value);
    return old;
  }

  // Predicated exchange: writes only if `condition` (a predicate computed
  // from packet metadata in earlier stages); always returns the old value.
  T ConditionalExchange(PacketPass& pass, size_t i, bool condition, T value) {
    Claim(pass, i);
    T old = values_[i];
    if (condition) {
      values_[i] = std::move(value);
    }
    return old;
  }

  // General predicated read-modify-write: applies `fn` to the stored value
  // and returns the previous value. This models a stateful-ALU RegisterAction
  // (predicate on own fields, select among a few update expressions) — keep
  // `fn` within that envelope: compare/select/add on the stored fields, no
  // loops, no external state mutation.
  template <typename Fn>
  T Update(PacketPass& pass, size_t i, Fn fn) {
    Claim(pass, i);
    T old = values_[i];
    values_[i] = fn(old);
    return old;
  }

  // Conditional fetch-and-add: adds only when the current value satisfies
  // `current <= ceiling` (the stateful-ALU comparison). Returns {old value,
  // whether the add happened}.
  std::pair<T, bool> AddIfAtMost(PacketPass& pass, size_t i, T ceiling, T delta) {
    Claim(pass, i);
    T old = values_[i];
    const bool applied = !(ceiling < old);
    if (applied) {
      values_[i] = old + delta;
    }
    return {old, applied};
  }

  // --- Control-plane access (not subject to the per-packet limit) ----------
  // The switch CPU can read/write registers out of band; the paper's control
  // plane uses this for initialization and monitoring only.

  const T& ControlPlaneRead(size_t i) const {
    DRACONIS_CHECK(i < values_.size());
    return values_[i];
  }

  void ControlPlaneWrite(size_t i, T value) {
    DRACONIS_CHECK(i < values_.size());
    values_[i] = std::move(value);
  }

 private:
  void Claim(PacketPass& pass, size_t i) {
    DRACONIS_CHECK_MSG(i < values_.size(), "register index out of range: " + name_);
    DRACONIS_CHECK_MSG(pass.TryMarkAccess(this),
                       "register accessed twice in one packet pass: " + name_);
  }

  std::string name_;
  std::vector<T> values_;
};

}  // namespace draconis::p4

#endif  // DRACONIS_P4_REGISTER_H_
