// Switch pipeline model.
//
// A SwitchPipeline is the network endpoint standing in for the Tofino data
// plane. Packets delivered to it traverse the match-action pipeline: the
// installed SwitchProgram runs once per pass, operating on registers under
// the single-access rule and emitting actions (forward, recirculate, drop).
//
// Timing model:
//   - A pass takes `pass_latency` from ingress to egress (the paper measures
//     sub-microsecond pipeline traversal).
//   - The front-panel packet rate is astronomically high (4.7 B pps on the
//     paper's switch) and is not modeled as a bottleneck.
//   - Recirculation goes through a loopback port with a *bounded* service
//     rate and queue. When the recirculation port is saturated, packets are
//     dropped — this is the mechanism behind R2P2-1's task drops in the
//     paper's Fig. 7/8 and the reason Draconis uses recirculation sparingly.

#ifndef DRACONIS_P4_PIPELINE_H_
#define DRACONIS_P4_PIPELINE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/time.h"
#include "net/network.h"
#include "net/packet.h"
#include "p4/register.h"
#include "sim/simulator.h"
#include "trace/recorder.h"

namespace draconis::cluster {
class Testbed;
}  // namespace draconis::cluster

namespace draconis::p4 {

class SwitchPipeline;

// Handed to the program on every pass; carries the action interface and the
// register-access guard.
class PassContext {
 public:
  // Simulated time at which this pass entered the ingress pipeline.
  TimeNs Now() const;

  // How many times this packet has traversed the pipeline before (0 for a
  // fresh packet).
  uint32_t pass_number() const { return pass_number_; }

  // The switch's own fabric address (for programs that plain-forward other
  // traffic: a packet addressed to the switch itself has nowhere to go).
  net::NodeId SwitchNode() const;

  // Sends `pkt` out of the switch toward pkt.dst (after the pipeline delay).
  void Emit(net::Packet pkt);

  // Feeds `pkt` back through the loopback port for another pass. May drop the
  // packet if the recirculation port is saturated, unless `guaranteed` is set
  // (used for pointer-repair packets, which ride the port's high-priority
  // class: losing one would wedge the queue).
  void Recirculate(net::Packet pkt, bool guaranteed = false);

  // Discards the packet, counting the reason.
  void Drop(const net::Packet& pkt, const std::string& reason);

  // The register-access guard for this pass.
  PacketPass& registers() { return registers_; }

 private:
  friend class SwitchPipeline;
  PassContext(SwitchPipeline* pipeline, uint32_t pass_number)
      : pipeline_(pipeline), pass_number_(pass_number) {}

  SwitchPipeline* pipeline_;
  uint32_t pass_number_;
  PacketPass registers_;
};

// A P4 program: invoked once per pipeline pass.
class SwitchProgram {
 public:
  virtual ~SwitchProgram() = default;

  // Process one traversal of `pkt`. The implementation must finish the packet
  // by calling exactly one of ctx.Emit / ctx.Recirculate / ctx.Drop (it may
  // additionally Emit cloned packets, mirroring the hardware's packet-clone
  // capability).
  virtual void OnPass(PassContext& ctx, net::Packet pkt) = 0;
};

struct PipelineConfig {
  TimeNs pass_latency = TimeNs{450};
  // Extra latency for one trip through the loopback port (paper §8.7:
  // "recirculation typically takes less than a microsecond").
  TimeNs recirc_latency = TimeNs{750};
  // Loopback-port service rate in packets per second. Far below the
  // front-panel bandwidth, which is what makes recirculation a scarce
  // resource.
  double recirc_rate_pps = 8e6;
  // Backlog the loopback port can absorb before dropping. The shallow queue
  // is what drops R2P2-1's spinning tasks when a burst exhausts its credits
  // (Figs. 7/8); Draconis' repair/swap traffic rides the lossless class and
  // never outruns the port.
  size_t recirc_queue_depth = 64;
};

struct PipelineCounters {
  uint64_t packets_in = 0;       // fresh packets from the fabric
  uint64_t passes = 0;           // total pipeline traversals
  uint64_t recirculations = 0;   // passes that came from the loopback port
  uint64_t recirc_drops = 0;     // packets lost at the loopback port
  uint64_t emitted = 0;          // packets sent out of the switch
  std::map<std::string, uint64_t> program_drops;

  // Fraction of all processed packets that were recirculations (Fig. 7's
  // y-axis).
  double RecirculationShare() const {
    return passes == 0 ? 0.0 : static_cast<double>(recirculations) / static_cast<double>(passes);
  }
};

class SwitchPipeline : public net::Endpoint {
 public:
  // Deploys the pipeline on a testbed: registers on its fabric (becoming the
  // fabric's switch node) and picks up its recorder. The testbed and the
  // program must outlive the pipeline.
  SwitchPipeline(cluster::Testbed& testbed, SwitchProgram* program, const PipelineConfig& config);

  // Low-level form for switch-layer unit tests that run without a testbed.
  // The program must outlive the pipeline. Call AttachNetwork before any
  // traffic arrives.
  SwitchPipeline(sim::Simulator* simulator, SwitchProgram* program,
                 const PipelineConfig& config);

  // Registers the pipeline on the fabric and remembers its own address.
  net::NodeId AttachNetwork(net::Network* network);

  net::NodeId node_id() const { return node_id_; }
  const PipelineCounters& counters() const { return counters_; }
  ResourceLedger& ledger() { return ledger_; }

  // Optional task-lifecycle recorder (nullable; never affects behaviour).
  void SetRecorder(trace::Recorder* recorder) { recorder_ = recorder; }

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

 private:
  friend class PassContext;

  void RunPass(net::Packet pkt, uint32_t pass_number);
  void EmitFromPass(net::Packet pkt);
  void RecirculateFromPass(net::Packet pkt, bool guaranteed);
  void DropFromPass(const net::Packet& pkt, const std::string& reason);
  void RecordPerTask(const net::Packet& pkt, trace::Kind kind, TimeNs begin, TimeNs end,
                     uint64_t detail);

  sim::Simulator* simulator_;
  SwitchProgram* program_;
  PipelineConfig config_;
  trace::Recorder* recorder_ = nullptr;
  net::Network* network_ = nullptr;
  net::NodeId node_id_ = net::kInvalidNode;
  PipelineCounters counters_;
  ResourceLedger ledger_;

  TimeNs recirc_interval_;
  TimeNs recirc_next_free_ = 0;
  size_t recirc_backlog_ = 0;
};

}  // namespace draconis::p4

#endif  // DRACONIS_P4_PIPELINE_H_
