// register.h is header-only; this TU exists so the library has an archive
// member even when no other source is compiled.
#include "p4/register.h"
