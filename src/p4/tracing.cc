#include "p4/tracing.h"

#include <utility>

#include "common/check.h"

namespace draconis::p4 {

TracingProgram::TracingProgram(SwitchProgram* inner, size_t capacity)
    : inner_(inner), capacity_(capacity) {
  DRACONIS_CHECK(inner != nullptr && capacity > 0);
  ring_.reserve(capacity);
}

void TracingProgram::SetFilter(std::function<bool(const net::Packet&)> filter) {
  filter_ = std::move(filter);
}

void TracingProgram::Clear() {
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::vector<TracingProgram::Event> TracingProgram::events() const {
  std::vector<Event> ordered;
  ordered.reserve(ring_.size());
  // Once the ring has wrapped, next_ points at the oldest retained event.
  const size_t start = ring_.size() == capacity_ ? next_ : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(start + i) % ring_.size()]);
  }
  return ordered;
}

void TracingProgram::Dump(std::FILE* out) const {
  for (const Event& event : events()) {
    std::fprintf(out, "%12s pass=%-2u %s\n", FormatDuration(event.at).c_str(),
                 event.pass_number, event.summary().c_str());
  }
}

void TracingProgram::OnPass(PassContext& ctx, net::Packet pkt) {
  if (!filter_ || filter_(pkt)) {
    ++recorded_;
    Event event{ctx.Now(), ctx.pass_number(), pkt.op, trace::PacketDigest::Of(pkt)};
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
    }
    next_ = (next_ + 1) % capacity_;
  }
  inner_->OnPass(ctx, std::move(pkt));
}

}  // namespace draconis::p4
