#include "p4/tracing.h"

#include <utility>

#include "common/check.h"

namespace draconis::p4 {

TracingProgram::TracingProgram(SwitchProgram* inner, size_t capacity)
    : inner_(inner), capacity_(capacity) {
  DRACONIS_CHECK(inner != nullptr && capacity > 0);
}

void TracingProgram::SetFilter(std::function<bool(const net::Packet&)> filter) {
  filter_ = std::move(filter);
}

void TracingProgram::Clear() {
  events_.clear();
  recorded_ = 0;
}

void TracingProgram::Dump(std::FILE* out) const {
  for (const Event& event : events_) {
    std::fprintf(out, "%12s pass=%-2u %s\n", FormatDuration(event.at).c_str(),
                 event.pass_number, event.summary.c_str());
  }
}

void TracingProgram::OnPass(PassContext& ctx, net::Packet pkt) {
  if (!filter_ || filter_(pkt)) {
    ++recorded_;
    if (events_.size() == capacity_) {
      events_.pop_front();
    }
    events_.push_back(Event{ctx.Now(), ctx.pass_number(), pkt.op, pkt.Describe()});
  }
  inner_->OnPass(ctx, std::move(pkt));
}

}  // namespace draconis::p4
