// Packet-level tracing for switch programs.
//
// TracingProgram wraps any SwitchProgram and records a bounded ring of
// per-pass events (time, pass number, packet summary), optionally filtered.
// It is the tool for debugging scheduler behaviour ("what did the switch see
// around t=1.4ms?") without printf-ing from the data path.

#ifndef DRACONIS_P4_TRACING_H_
#define DRACONIS_P4_TRACING_H_

#include <cstdio>
#include <deque>
#include <functional>
#include <string>

#include "common/time.h"
#include "p4/pipeline.h"

namespace draconis::p4 {

class TracingProgram : public SwitchProgram {
 public:
  struct Event {
    TimeNs at;
    uint32_t pass_number;
    net::OpCode op;
    std::string summary;
  };

  // `inner` must outlive the tracer. At most `capacity` events are retained
  // (oldest evicted first).
  TracingProgram(SwitchProgram* inner, size_t capacity = 4096);

  // Record only packets the predicate accepts (default: everything).
  void SetFilter(std::function<bool(const net::Packet&)> filter);

  const std::deque<Event>& events() const { return events_; }
  uint64_t recorded() const { return recorded_; }  // total, including evicted
  void Clear();

  // Writes the retained events to `out`, one per line.
  void Dump(std::FILE* out) const;

  // SwitchProgram:
  void OnPass(PassContext& ctx, net::Packet pkt) override;

 private:
  SwitchProgram* inner_;
  size_t capacity_;
  std::function<bool(const net::Packet&)> filter_;
  std::deque<Event> events_;
  uint64_t recorded_ = 0;
};

}  // namespace draconis::p4

#endif  // DRACONIS_P4_TRACING_H_
