// Packet-level tracing for switch programs.
//
// TracingProgram wraps any SwitchProgram and records a bounded ring of
// per-pass events (time, pass number, packet digest), optionally filtered.
// It is the tool for debugging scheduler behaviour ("what did the switch see
// around t=1.4ms?") without printf-ing from the data path.
//
// The ring stores fixed-size trace::PacketDigest records in a preallocated
// buffer: the steady-state record path allocates nothing (the old ring built
// a std::string summary per event). The human-readable one-liner is rendered
// on demand by Event::summary().

#ifndef DRACONIS_P4_TRACING_H_
#define DRACONIS_P4_TRACING_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "p4/pipeline.h"
#include "trace/digest.h"

namespace draconis::p4 {

class TracingProgram : public SwitchProgram {
 public:
  struct Event {
    TimeNs at;
    uint32_t pass_number;
    net::OpCode op;
    trace::PacketDigest digest;

    // The packet one-liner ("job_submission src=3 dst=0 ..."), materialized
    // from the digest at dump/inspection time rather than on the data path.
    std::string summary() const { return digest.Render(); }
  };

  // `inner` must outlive the tracer. At most `capacity` events are retained
  // (oldest evicted first).
  TracingProgram(SwitchProgram* inner, size_t capacity = 4096);

  // Record only packets the predicate accepts (default: everything).
  void SetFilter(std::function<bool(const net::Packet&)> filter);

  // The retained events, oldest first.
  std::vector<Event> events() const;
  uint64_t recorded() const { return recorded_; }  // total, including evicted
  void Clear();

  // Writes the retained events to `out`, one per line.
  void Dump(std::FILE* out) const;

  // SwitchProgram:
  void OnPass(PassContext& ctx, net::Packet pkt) override;

 private:
  SwitchProgram* inner_;
  size_t capacity_;
  std::function<bool(const net::Packet&)> filter_;
  std::vector<Event> ring_;  // wraps at capacity_; next_ is the write cursor
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

}  // namespace draconis::p4

#endif  // DRACONIS_P4_TRACING_H_
