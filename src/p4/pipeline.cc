#include "p4/pipeline.h"

#include <algorithm>
#include <utility>

#include "cluster/testbed.h"
#include "common/check.h"

namespace draconis::p4 {

TimeNs PassContext::Now() const { return pipeline_->simulator_->Now(); }

net::NodeId PassContext::SwitchNode() const { return pipeline_->node_id_; }

void PassContext::Emit(net::Packet pkt) { pipeline_->EmitFromPass(std::move(pkt)); }

void PassContext::Recirculate(net::Packet pkt, bool guaranteed) {
  pipeline_->RecirculateFromPass(std::move(pkt), guaranteed);
}

void PassContext::Drop(const net::Packet& pkt, const std::string& reason) {
  pipeline_->DropFromPass(pkt, reason);
}

SwitchPipeline::SwitchPipeline(cluster::Testbed& testbed, SwitchProgram* program,
                               const PipelineConfig& config)
    : SwitchPipeline(&testbed.simulator(), program, config) {
  SetRecorder(testbed.recorder());
  AttachNetwork(&testbed.network());
}

SwitchPipeline::SwitchPipeline(sim::Simulator* simulator, SwitchProgram* program,
                               const PipelineConfig& config)
    : simulator_(simulator), program_(program), config_(config) {
  DRACONIS_CHECK(simulator != nullptr && program != nullptr);
  DRACONIS_CHECK(config.recirc_rate_pps > 0.0);
  recirc_interval_ = std::max<TimeNs>(1, static_cast<TimeNs>(kSecond / config.recirc_rate_pps));
}

net::NodeId SwitchPipeline::AttachNetwork(net::Network* network) {
  DRACONIS_CHECK(network != nullptr);
  network_ = network;
  node_id_ = network->Register(this, net::HostProfile::Wire());
  network->SetSwitchNode(node_id_);
  // Multi-rack topologies attach several pipelines; every one of them is a
  // switch for hop accounting even after SetSwitchNode moves on.
  network->AddSwitchNode(node_id_);
  return node_id_;
}

void SwitchPipeline::HandlePacket(net::Packet pkt) {
  ++counters_.packets_in;
  const uint32_t pass_number = pkt.pipeline_passes;
  RunPass(std::move(pkt), pass_number);
}

void SwitchPipeline::RunPass(net::Packet pkt, uint32_t pass_number) {
  ++counters_.passes;
  if (pass_number > 0) {
    ++counters_.recirculations;
  }
  RecordPerTask(pkt, trace::Kind::kSwitchPass, simulator_->Now(),
                simulator_->Now() + config_.pass_latency, pass_number);
  PassContext ctx(this, pass_number);
  program_->OnPass(ctx, std::move(pkt));
}

void SwitchPipeline::RecordPerTask(const net::Packet& pkt, trace::Kind kind, TimeNs begin,
                                   TimeNs end, uint64_t detail) {
  if (recorder_ == nullptr) {
    return;
  }
  for (const net::TaskInfo& t : pkt.tasks) {
    if (recorder_->Sampled(t.id)) {
      recorder_->Record(t.id, kind, begin, end, detail, node_id_, t.meta.attempt,
                        static_cast<uint16_t>(pkt.op));
    }
  }
}

void SwitchPipeline::EmitFromPass(net::Packet pkt) {
  ++counters_.emitted;
  DRACONIS_CHECK_MSG(network_ != nullptr, "pipeline not attached to a network");
  // Egress after the remaining pipeline traversal time.
  auto* network = network_;
  const net::NodeId self = node_id_;
  simulator_->ScheduleAfter(config_.pass_latency,
                    [network, self, pkt = std::move(pkt)]() mutable {
                      network->Send(self, std::move(pkt));
                    });
}

void SwitchPipeline::RecirculateFromPass(net::Packet pkt, bool guaranteed) {
  const TimeNs now = simulator_->Now();
  // Backlog check: how many packets are queued at the loopback port right
  // now. The port serves one packet every recirc_interval_.
  const TimeNs start = std::max(recirc_next_free_, now);
  const auto backlog = static_cast<size_t>((start - now) / recirc_interval_);
  if (backlog >= config_.recirc_queue_depth && !guaranteed) {
    ++counters_.recirc_drops;
    RecordPerTask(pkt, trace::Kind::kRecircDrop, now, now, backlog);
    return;
  }
  // Loopback residency: pass egress -> re-ingress on the next traversal.
  RecordPerTask(pkt, trace::Kind::kRecirc, now + config_.pass_latency,
                start + config_.recirc_latency, backlog);
  recirc_next_free_ = start + recirc_interval_;
  pkt.pipeline_passes += 1;
  const uint32_t next_pass = pkt.pipeline_passes;
  simulator_->ScheduleAt(start + config_.recirc_latency,
                 [this, next_pass, pkt = std::move(pkt)]() mutable {
                   RunPass(std::move(pkt), next_pass);
                 });
}

void SwitchPipeline::DropFromPass(const net::Packet& pkt, const std::string& reason) {
  ++counters_.program_drops[reason];
  // Bookkeeping drops ("info_*") end packets whose tasks live on elsewhere;
  // they are not task losses, so only genuine drops are traced.
  if (reason.rfind("info_", 0) != 0) {
    RecordPerTask(pkt, trace::Kind::kProgramDrop, simulator_->Now(), simulator_->Now(), 0);
  }
}

}  // namespace draconis::p4
