#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "common/check.h"

namespace draconis::workload {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool SaveJobStream(const std::string& path, const JobStream& stream) {
  File file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) {
    return false;
  }
  std::fprintf(file.get(), "# job,arrival_ns,duration_ns,tprops,fn_id,fn_par,oversized\n");
  uint64_t job_id = 0;
  for (const JobArrival& job : stream) {
    for (const TaskSpec& task : job.tasks) {
      std::fprintf(file.get(), "%" PRIu64 ",%" PRId64 ",%" PRId64 ",%u,%u,%" PRIu64 ",%u\n",
                   job_id, job.at, task.duration, task.tprops, task.fn_id, task.fn_par,
                   task.oversized_param_bytes);
    }
    ++job_id;
  }
  return std::ferror(file.get()) == 0;
}

bool LoadJobStream(const std::string& path, JobStream* stream, std::string* error) {
  DRACONIS_CHECK(stream != nullptr && error != nullptr);
  File file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  stream->clear();

  char line[512];
  uint64_t current_job = 0;
  bool have_job = false;
  int line_number = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    ++line_number;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') {
      continue;
    }
    uint64_t job_id = 0;
    int64_t arrival = 0;
    int64_t duration = 0;
    uint32_t tprops = 0;
    uint32_t fn_id = 0;
    uint64_t fn_par = 0;
    uint32_t oversized = 0;
    const int fields =
        std::sscanf(line, "%" SCNu64 ",%" SCNd64 ",%" SCNd64 ",%u,%u,%" SCNu64 ",%u",
                    &job_id, &arrival, &duration, &tprops, &fn_id, &fn_par, &oversized);
    if (fields < 3) {
      *error = path + ": parse error at line " + std::to_string(line_number);
      return false;
    }
    if (arrival < 0 || duration < 0) {
      *error = path + ": negative time at line " + std::to_string(line_number);
      return false;
    }
    if (!stream->empty() && arrival < stream->back().at) {
      *error = path + ": arrivals not sorted at line " + std::to_string(line_number);
      return false;
    }

    if (!have_job || job_id != current_job) {
      stream->push_back(JobArrival{arrival, {}});
      current_job = job_id;
      have_job = true;
    }
    TaskSpec task;
    task.duration = duration;
    task.tprops = tprops;
    task.fn_id = fn_id;
    task.fn_par = fn_par;
    task.oversized_param_bytes = oversized;
    stream->back().tasks.push_back(task);
  }
  return true;
}

}  // namespace draconis::workload
