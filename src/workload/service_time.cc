#include "workload/service_time.h"

#include <numeric>

#include "common/check.h"

namespace draconis::workload {

ServiceTime ServiceTime::Fixed(TimeNs value) {
  DRACONIS_CHECK(value >= 0);
  ServiceTime st(Kind::kFixed, FormatDuration(value) + " fixed");
  st.fixed_value_ = value;
  return st;
}

ServiceTime ServiceTime::Mixture(std::vector<TimeNs> values, std::vector<double> weights,
                                 std::string label) {
  DRACONIS_CHECK(!values.empty() && values.size() == weights.size());
  ServiceTime st(Kind::kMixture, std::move(label));
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  DRACONIS_CHECK(total > 0.0);
  double cumulative = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    cumulative += weights[i] / total;
    st.values_.push_back(values[i]);
    st.cumulative_.push_back(cumulative);
  }
  st.cumulative_.back() = 1.0;
  return st;
}

ServiceTime ServiceTime::Exponential(TimeNs mean) {
  DRACONIS_CHECK(mean > 0);
  ServiceTime st(Kind::kExponential, FormatDuration(mean) + " exponential");
  st.mean_ = mean;
  return st;
}

ServiceTime ServiceTime::Lognormal(TimeNs mean, double sigma) {
  DRACONIS_CHECK(mean > 0 && sigma > 0.0);
  ServiceTime st(Kind::kLognormal, FormatDuration(mean) + " lognormal");
  st.mean_ = mean;
  st.sigma_ = sigma;
  return st;
}

ServiceTime ServiceTime::PaperBimodal() {
  return Mixture({FromMicros(100), FromMicros(500)}, {0.5, 0.5}, "bimodal 100/500us");
}

ServiceTime ServiceTime::PaperTrimodal() {
  return Mixture({FromMicros(100), FromMicros(250), FromMicros(500)}, {1.0, 1.0, 1.0},
                 "trimodal 100/250/500us");
}

ServiceTime ServiceTime::PaperExponential() { return Exponential(FromMicros(250)); }

TimeNs ServiceTime::Sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return fixed_value_;
    case Kind::kMixture: {
      const double u = rng.NextDouble();
      for (size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i]) {
          return values_[i];
        }
      }
      return values_.back();
    }
    case Kind::kExponential: {
      const auto v = static_cast<TimeNs>(rng.NextExponential(static_cast<double>(mean_)));
      return v > 0 ? v : 1;
    }
    case Kind::kLognormal: {
      const auto v =
          static_cast<TimeNs>(rng.NextLognormalWithMean(static_cast<double>(mean_), sigma_));
      return v > 0 ? v : 1;
    }
  }
  return 0;
}

TimeNs ServiceTime::Mean() const {
  switch (kind_) {
    case Kind::kFixed:
      return fixed_value_;
    case Kind::kMixture: {
      double mean = 0.0;
      double prev = 0.0;
      for (size_t i = 0; i < values_.size(); ++i) {
        mean += static_cast<double>(values_[i]) * (cumulative_[i] - prev);
        prev = cumulative_[i];
      }
      return static_cast<TimeNs>(mean);
    }
    case Kind::kExponential:
    case Kind::kLognormal:
      return mean_;
  }
  return 0;
}

}  // namespace draconis::workload
