#include "workload/generators.h"

#include "common/check.h"
#include "common/rng.h"

namespace draconis::workload {

size_t TotalTasks(const JobStream& stream) {
  size_t total = 0;
  for (const JobArrival& job : stream) {
    total += job.tasks.size();
  }
  return total;
}

TimeNs TotalWork(const JobStream& stream) {
  TimeNs total = 0;
  for (const JobArrival& job : stream) {
    for (const TaskSpec& task : job.tasks) {
      total += task.duration;
    }
  }
  return total;
}

JobStream GenerateOpenLoop(const OpenLoopSpec& spec) {
  DRACONIS_CHECK(spec.tasks_per_second > 0.0);
  DRACONIS_CHECK(spec.tasks_per_job >= 1);
  Rng rng(spec.seed);
  JobStream stream;
  const double jobs_per_second =
      spec.tasks_per_second / static_cast<double>(spec.tasks_per_job);
  TimeNs at = rng.NextPoissonGap(jobs_per_second);
  while (at < spec.duration) {
    JobArrival job;
    job.at = at;
    job.tasks.reserve(spec.tasks_per_job);
    for (size_t i = 0; i < spec.tasks_per_job; ++i) {
      TaskSpec task;
      task.duration = spec.service.Sample(rng);
      job.tasks.push_back(task);
    }
    stream.push_back(std::move(job));
    at += rng.NextPoissonGap(jobs_per_second);
  }
  return stream;
}

void TagLocality(JobStream& stream, uint32_t num_nodes, uint64_t seed) {
  DRACONIS_CHECK(num_nodes > 0);
  Rng rng(seed);
  for (JobArrival& job : stream) {
    for (TaskSpec& task : job.tasks) {
      task.tprops = static_cast<uint32_t>(rng.NextBelow(num_nodes));
    }
  }
}

void TagPriorities(JobStream& stream, const std::vector<double>& mix, uint64_t seed) {
  DRACONIS_CHECK(!mix.empty());
  double total = 0.0;
  for (double w : mix) {
    DRACONIS_CHECK(w >= 0.0);
    total += w;
  }
  DRACONIS_CHECK(total > 0.0);
  Rng rng(seed);
  for (JobArrival& job : stream) {
    for (TaskSpec& task : job.tasks) {
      double u = rng.NextDouble() * total;
      uint32_t level = static_cast<uint32_t>(mix.size());
      for (size_t i = 0; i < mix.size(); ++i) {
        if (u < mix[i]) {
          level = static_cast<uint32_t>(i + 1);
          break;
        }
        u -= mix[i];
      }
      task.tprops = level;
    }
  }
}

const std::vector<double>& PaperPriorityMix() {
  static const std::vector<double> kMix = {1.2, 1.7, 64.6, 32.2};
  return kMix;
}

void TagDeadlines(JobStream& stream, double slack, uint32_t jitter_us, uint64_t seed) {
  DRACONIS_CHECK(slack > 0.0);
  Rng rng(seed);
  for (JobArrival& job : stream) {
    for (TaskSpec& task : job.tasks) {
      const double service_us = static_cast<double>(task.duration) / 1000.0;
      uint64_t deadline_us = static_cast<uint64_t>(service_us * slack);
      if (deadline_us < 1) {
        deadline_us = 1;
      }
      deadline_us += rng.NextBelow(static_cast<uint64_t>(jitter_us) + 1);
      task.tprops = static_cast<uint32_t>(deadline_us);
    }
  }
}

void TagTenants(JobStream& stream, uint32_t num_tenants, uint64_t seed) {
  DRACONIS_CHECK(num_tenants > 0);
  Rng rng(seed);
  for (JobArrival& job : stream) {
    const uint32_t tenant = static_cast<uint32_t>(rng.NextBelow(num_tenants));
    for (TaskSpec& task : job.tasks) {
      task.tprops = tenant;
    }
  }
}

JobStream GenerateResourcePhases(const ResourcePhasesSpec& spec) {
  Rng rng(spec.seed);
  JobStream stream;
  const TimeNs total = 3 * spec.phase_duration;
  TimeNs at = rng.NextPoissonGap(spec.tasks_per_second);
  while (at < total) {
    const auto phase = static_cast<uint32_t>(at / spec.phase_duration);  // 0, 1, 2
    JobArrival job;
    job.at = at;
    TaskSpec task;
    task.duration = spec.service.Sample(rng);
    task.tprops = 1u << phase;  // A=1, B=2, C=4
    job.tasks.push_back(task);
    stream.push_back(std::move(job));
    at += rng.NextPoissonGap(spec.tasks_per_second);
  }
  return stream;
}

}  // namespace draconis::workload
