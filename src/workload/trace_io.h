// Job-stream (trace) file I/O.
//
// A trace is a CSV with one task per row, grouped into jobs by the job
// column:
//
//   # job,arrival_ns,duration_ns,tprops,fn_id,fn_par,oversized_param_bytes
//   0,12500,100000,0,1,0,0
//   0,12500,250000,2,1,0,0
//   1,31750,100000,0,1,0,0
//
// This lets users run real traces through the simulator and lets generated
// workloads be archived for exact reruns.

#ifndef DRACONIS_WORKLOAD_TRACE_IO_H_
#define DRACONIS_WORKLOAD_TRACE_IO_H_

#include <string>

#include "workload/spec.h"

namespace draconis::workload {

// Writes the stream to `path`. Returns false on I/O failure.
bool SaveJobStream(const std::string& path, const JobStream& stream);

// Reads a trace written by SaveJobStream (or hand-authored in the same
// format). Comment lines start with '#'. Returns false (and fills *error)
// on I/O or parse failure.
bool LoadJobStream(const std::string& path, JobStream* stream, std::string* error);

}  // namespace draconis::workload

#endif  // DRACONIS_WORKLOAD_TRACE_IO_H_
