// Task service-time distributions of the paper's synthetic suite (§8):
// fixed 100/250/500 us, bimodal (50% 100 us + 50% 500 us), trimodal
// (1/3 each of 100/250/500 us), and exponential with mean 250 us.

#ifndef DRACONIS_WORKLOAD_SERVICE_TIME_H_
#define DRACONIS_WORKLOAD_SERVICE_TIME_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace draconis::workload {

class ServiceTime {
 public:
  // A point mass at `value`.
  static ServiceTime Fixed(TimeNs value);
  // A discrete mixture: values[i] with probability weights[i] (normalized).
  static ServiceTime Mixture(std::vector<TimeNs> values, std::vector<double> weights,
                             std::string label);
  // Exponential with the given mean.
  static ServiceTime Exponential(TimeNs mean);
  // Lognormal with the given arithmetic mean and shape sigma.
  static ServiceTime Lognormal(TimeNs mean, double sigma);

  // --- The paper's named workloads -----------------------------------------
  static ServiceTime PaperBimodal();   // 50% 100 us, 50% 500 us
  static ServiceTime PaperTrimodal();  // 1/3 each of 100/250/500 us
  static ServiceTime PaperExponential();  // mean 250 us

  TimeNs Sample(Rng& rng) const;
  TimeNs Mean() const;
  const std::string& label() const { return label_; }

 private:
  enum class Kind { kFixed, kMixture, kExponential, kLognormal };

  ServiceTime(Kind kind, std::string label) : kind_(kind), label_(std::move(label)) {}

  Kind kind_;
  std::string label_;
  TimeNs fixed_value_ = 0;
  std::vector<TimeNs> values_;
  std::vector<double> cumulative_;
  TimeNs mean_ = 0;
  double sigma_ = 0.0;
};

}  // namespace draconis::workload

#endif  // DRACONIS_WORKLOAD_SERVICE_TIME_H_
