#include "workload/google_trace.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "workload/generators.h"

namespace draconis::workload {

JobStream GenerateGoogleTrace(const GoogleTraceSpec& spec) {
  DRACONIS_CHECK(spec.mean_tasks_per_second > 0.0);
  DRACONIS_CHECK(spec.max_job_size >= 1);
  Rng rng(spec.seed);
  JobStream stream;

  TimeNs at = 0;
  while (at < spec.duration) {
    const auto burst = static_cast<size_t>(rng.NextBoundedPareto(
        1.0, static_cast<double>(spec.max_job_size) + 0.999, spec.burst_alpha));
    JobArrival job;
    job.at = at;
    job.tasks.reserve(burst);
    for (size_t i = 0; i < burst; ++i) {
      TaskSpec task;
      task.duration = static_cast<TimeNs>(rng.NextLognormalWithMean(
          static_cast<double>(spec.mean_task_duration), spec.duration_sigma));
      if (task.duration < 1) {
        task.duration = 1;
      }
      job.tasks.push_back(task);
    }
    stream.push_back(std::move(job));

    // Keep the long-run task rate at the target: the mean gap to the next
    // burst carries this burst's worth of tasks.
    const double gap_seconds =
        rng.NextExponential(static_cast<double>(burst) / spec.mean_tasks_per_second);
    TimeNs gap = static_cast<TimeNs>(gap_seconds * kSecond);
    at += gap > 0 ? gap : 1;
  }

  if (spec.priority_levels > 0) {
    DRACONIS_CHECK_MSG(spec.priority_levels == 4,
                       "the paper's mapping produces exactly 4 levels");
    TagPriorities(stream, PaperPriorityMix(), rng.NextU64());
  }
  return stream;
}

}  // namespace draconis::workload
