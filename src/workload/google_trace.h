// Synthetic stand-in for the accelerated Google 2011 cluster trace (§8.4).
//
// The real trace is proprietary-ish bulk data we do not ship; what the
// paper's evaluation actually uses from it is (a) bursty job arrivals that
// "may submit hundreds of tasks at once", (b) a skewed task-duration
// distribution accelerated to a target mean (500 us or 5 ms), and (c) the
// 12-level priority labels mapped onto 4 levels with the observed mix. This
// generator reproduces those three properties: bounded-Pareto job sizes,
// lognormal task durations, and the paper's priority mix.

#ifndef DRACONIS_WORKLOAD_GOOGLE_TRACE_H_
#define DRACONIS_WORKLOAD_GOOGLE_TRACE_H_

#include <cstdint>

#include "workload/spec.h"

namespace draconis::workload {

struct GoogleTraceSpec {
  TimeNs duration = FromSeconds(1);
  double mean_tasks_per_second = 200000.0;
  TimeNs mean_task_duration = FromMicros(500);
  double duration_sigma = 1.2;  // lognormal shape: skewed, moderate tail
  // Job (burst) sizes: bounded Pareto [1, max_job_size], shape alpha.
  double burst_alpha = 1.3;
  uint32_t max_job_size = 300;
  // 0: leave tasks untagged; otherwise tag with the paper's 4-level mix.
  uint32_t priority_levels = 0;
  uint64_t seed = 42;
};

JobStream GenerateGoogleTrace(const GoogleTraceSpec& spec);

}  // namespace draconis::workload

#endif  // DRACONIS_WORKLOAD_GOOGLE_TRACE_H_
