// Workload primitives: what a generated task/job looks like before it is
// handed to a client for submission.

#ifndef DRACONIS_WORKLOAD_SPEC_H_
#define DRACONIS_WORKLOAD_SPEC_H_

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace draconis::workload {

struct TaskSpec {
  TimeNs duration = 0;
  uint32_t tprops = 0;  // priority level / resource bitmap / data-local node
  uint32_t fn_id = 0;
  uint64_t fn_par = 0;
  // §4.4: parameters too large for the FN_PAR field. When > 0 the task is
  // submitted as a transmission function and the executor fetches this many
  // bytes from the client before running.
  uint32_t oversized_param_bytes = 0;
};

// One job: a batch of independent tasks arriving together.
struct JobArrival {
  TimeNs at = 0;
  std::vector<TaskSpec> tasks;
};

using JobStream = std::vector<JobArrival>;

// Total tasks across a stream.
size_t TotalTasks(const JobStream& stream);

// Sum of task service time across a stream (for utilization bookkeeping).
TimeNs TotalWork(const JobStream& stream);

}  // namespace draconis::workload

#endif  // DRACONIS_WORKLOAD_SPEC_H_
