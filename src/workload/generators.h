// Job-stream generators for the paper's experiments.

#ifndef DRACONIS_WORKLOAD_GENERATORS_H_
#define DRACONIS_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "workload/service_time.h"
#include "workload/spec.h"

namespace draconis::workload {

// Open-loop Poisson arrivals: tasks_per_second on average over [0, duration),
// grouped into jobs of `tasks_per_job`.
struct OpenLoopSpec {
  double tasks_per_second = 100000.0;
  TimeNs duration = FromMillis(100);
  size_t tasks_per_job = 1;
  ServiceTime service = ServiceTime::Fixed(FromMicros(500));
  uint64_t seed = 42;
};

JobStream GenerateOpenLoop(const OpenLoopSpec& spec);

// Tags every task with a uniformly random data-local node in [0, num_nodes)
// (Fig. 10: unreplicated data, evenly partitioned across the nodes).
void TagLocality(JobStream& stream, uint32_t num_nodes, uint64_t seed);

// Tags every task with a 1-based priority level drawn from `mix` (fractions
// per level; normalized).
void TagPriorities(JobStream& stream, const std::vector<double>& mix, uint64_t seed);

// The paper's 4-level priority mix after mapping Google's 12 levels onto 4
// (§8.6): 1.2% / 1.7% / 64.6% / 32.2%.
const std::vector<double>& PaperPriorityMix();

// Tags every task with a relative deadline in TPROPS, in microseconds (the
// EDF rank function's input, docs/pifo.md): `slack` x the task's own service
// time plus up to `jitter_us` of uniform extra laxity, floored at 1 µs.
void TagDeadlines(JobStream& stream, double slack, uint32_t jitter_us, uint64_t seed);

// Tags each job with a uniformly random tenant id in [0, num_tenants) in
// TPROPS (all tasks of a job belong to one tenant) — the WFQ rank function's
// input.
void TagTenants(JobStream& stream, uint32_t num_tenants, uint64_t seed);

// Fig. 11's phased resource workload: three consecutive phases of equal
// length; tasks in phase p require resource bit p (A=1, B=2, C=4).
struct ResourcePhasesSpec {
  double tasks_per_second = 2600.0;
  TimeNs phase_duration = FromSeconds(30);
  ServiceTime service = ServiceTime::Fixed(FromMillis(10));
  uint64_t seed = 42;
};

JobStream GenerateResourcePhases(const ResourcePhasesSpec& spec);

}  // namespace draconis::workload

#endif  // DRACONIS_WORKLOAD_GENERATORS_H_
