// Lightweight runtime-check macros.
//
// DRACONIS_CHECK throws draconis::CheckFailure instead of aborting so that
// unit tests can assert that a contract violation is detected (notably the
// one-register-access-per-packet guard in src/p4/). Checks stay enabled in
// all build types: the simulation is not perf-critical enough to justify
// compiling out its safety net.

#ifndef DRACONIS_COMMON_CHECK_H_
#define DRACONIS_COMMON_CHECK_H_

#include <stdexcept>
#include <string>

namespace draconis {

// Thrown when a DRACONIS_CHECK fails. Deriving from std::logic_error keeps
// the failure catchable in tests while still terminating by default.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace internal

}  // namespace draconis

#define DRACONIS_CHECK(expr)                                                    \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::draconis::internal::CheckFailed(#expr, __FILE__, __LINE__, "");         \
    }                                                                           \
  } while (0)

#define DRACONIS_CHECK_MSG(expr, msg)                                           \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::draconis::internal::CheckFailed(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                           \
  } while (0)

#endif  // DRACONIS_COMMON_CHECK_H_
