#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace draconis {

uint64_t Rng::NextU64() {
  state_ += kGamma;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  DRACONIS_CHECK(bound > 0);
  // Multiply-shift; bias is negligible for simulation bounds (< 2^32).
  return static_cast<uint64_t>((static_cast<__uint128_t>(NextU64()) * bound) >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  DRACONIS_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextExponential(double mean) {
  DRACONIS_CHECK(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::NextLognormalWithMean(double mean, double sigma) {
  DRACONIS_CHECK(mean > 0.0);
  // If X = exp(N(mu, sigma)), E[X] = exp(mu + sigma^2/2); solve for mu.
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return std::exp(NextNormal(mu, sigma));
}

double Rng::NextBoundedPareto(double lo, double hi, double alpha) {
  DRACONIS_CHECK(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

TimeNs Rng::NextPoissonGap(double events_per_second) {
  DRACONIS_CHECK(events_per_second > 0.0);
  const double gap_seconds = NextExponential(1.0 / events_per_second);
  const auto gap = static_cast<TimeNs>(gap_seconds * kSecond);
  return gap > 0 ? gap : 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace draconis
