// Minimal streaming JSON writer for bench/report output.
//
// Builds a pretty-printed (2-space indent) UTF-8 document in memory with
// deterministic number formatting, so emitted files are stable across runs
// and diffable in golden tests. No parsing, no DOM — the output layers only
// ever serialize.

#ifndef DRACONIS_COMMON_JSON_H_
#define DRACONIS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace draconis::json {

class Writer {
 public:
  // Containers. The first call must open the root object or array.
  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();

  // Object member key; must be followed by exactly one value or container.
  Writer& Key(const std::string& name);

  // Values.
  Writer& String(const std::string& value);
  Writer& Int(int64_t value);
  Writer& UInt(uint64_t value);
  Writer& Double(double value);
  Writer& Bool(bool value);
  Writer& Null();

  // The finished document; valid once every container is closed.
  const std::string& str() const { return out_; }
  bool done() const { return !out_.empty() && stack_.empty(); }

  // Shortest decimal representation that round-trips to `value`.
  static std::string FormatDouble(double value);

 private:
  enum class Frame : uint8_t { kObject, kArray };

  void BeforeValue();  // comma / newline / indent bookkeeping
  void Indent();
  void AppendEscaped(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<uint64_t> counts_;  // values emitted per open container
  bool key_pending_ = false;
};

}  // namespace draconis::json

#endif  // DRACONIS_COMMON_JSON_H_
