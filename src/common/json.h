// Minimal JSON support: a streaming writer for bench/report output and a
// small recursive-descent reader for declarative inputs (fault plans).
//
// The Writer builds a pretty-printed (2-space indent) UTF-8 document in
// memory with deterministic number formatting, so emitted files are stable
// across runs and diffable in golden tests. The reader (json::Parse into a
// json::Value DOM) exists for the handful of places that consume JSON — it
// favors clear errors over speed and supports exactly the JSON subset the
// writer emits (objects, arrays, strings with \-escapes, numbers, bools,
// null).

#ifndef DRACONIS_COMMON_JSON_H_
#define DRACONIS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace draconis::json {

class Writer {
 public:
  // Containers. The first call must open the root object or array.
  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();

  // Object member key; must be followed by exactly one value or container.
  Writer& Key(const std::string& name);

  // Values.
  Writer& String(const std::string& value);
  Writer& Int(int64_t value);
  Writer& UInt(uint64_t value);
  Writer& Double(double value);
  Writer& Bool(bool value);
  Writer& Null();

  // The finished document; valid once every container is closed.
  const std::string& str() const { return out_; }
  bool done() const { return !out_.empty() && stack_.empty(); }

  // Shortest decimal representation that round-trips to `value`.
  static std::string FormatDouble(double value);

 private:
  enum class Frame : uint8_t { kObject, kArray };

  void BeforeValue();  // comma / newline / indent bookkeeping
  void Indent();
  void AppendEscaped(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<uint64_t> counts_;  // values emitted per open container
  bool key_pending_ = false;
};

// Parsed JSON value. A small tagged DOM: good enough for config-sized
// documents (fault plans), not a serialization layer — reports still go
// through the Writer.
class Value {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; the caller checks the type first (they CHECK-fail on a
  // mismatch rather than coerce).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;  // CHECK-fails when the number has a fraction
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;

  // Object member lookup; nullptr when absent (or when not an object).
  const Value* Find(const std::string& key) const;
  // Member names in document order (for unknown-key diagnostics).
  std::vector<std::string> Keys() const;

  // Factories used by the parser (and tests).
  static Value Null();
  static Value MakeBool(bool b);
  static Value Number(double d);
  static Value Str(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;  // document order
};

// Parses a complete JSON document. Returns false (and a "line N: ..." error
// when `error` is non-null) on malformed input or trailing garbage.
bool Parse(const std::string& text, Value* out, std::string* error);

}  // namespace draconis::json

#endif  // DRACONIS_COMMON_JSON_H_
