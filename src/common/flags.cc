#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace draconis::flags {

Parser::Parser(std::string program_description)
    : description_(std::move(program_description)) {}

void Parser::AddDouble(const std::string& name, double* out, const std::string& help) {
  DRACONIS_CHECK(out != nullptr && Find(name) == nullptr);
  registered_.push_back(Flag{name, Kind::kDouble, out, help, std::to_string(*out)});
}

void Parser::AddInt64(const std::string& name, int64_t* out, const std::string& help) {
  DRACONIS_CHECK(out != nullptr && Find(name) == nullptr);
  registered_.push_back(Flag{name, Kind::kInt64, out, help, std::to_string(*out)});
}

void Parser::AddBool(const std::string& name, bool* out, const std::string& help) {
  DRACONIS_CHECK(out != nullptr && Find(name) == nullptr);
  registered_.push_back(Flag{name, Kind::kBool, out, help, *out ? "true" : "false"});
}

void Parser::AddString(const std::string& name, std::string* out, const std::string& help) {
  DRACONIS_CHECK(out != nullptr && Find(name) == nullptr);
  registered_.push_back(Flag{name, Kind::kString, out, help, *out, {}});
}

void Parser::AddDuration(const std::string& name, TimeNs* out, const std::string& help) {
  DRACONIS_CHECK(out != nullptr && Find(name) == nullptr);
  registered_.push_back(Flag{name, Kind::kDuration, out, help, FormatDuration(*out), {}});
}

void Parser::AddChoice(const std::string& name, std::string* out,
                       std::vector<std::string> choices, const std::string& help) {
  DRACONIS_CHECK(out != nullptr && Find(name) == nullptr && !choices.empty());
  bool default_listed = false;
  for (const std::string& choice : choices) {
    default_listed = default_listed || choice == *out;
  }
  DRACONIS_CHECK_MSG(default_listed, "the default must be one of the choices");
  registered_.push_back(Flag{name, Kind::kChoice, out, help, *out, std::move(choices)});
}

const Parser::Flag* Parser::Find(const std::string& name) const {
  for (const Flag& flag : registered_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool Parser::Assign(const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kDouble: {
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<double*>(flag.target) = parsed;
      return true;
    }
    case Kind::kInt64: {
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      return true;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
    }
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
    case Kind::kDuration:
      return ParseDuration(value, static_cast<TimeNs*>(flag.target));
    case Kind::kChoice:
      for (const std::string& choice : flag.choices) {
        if (value == choice) {
          *static_cast<std::string*>(flag.target) = value;
          return true;
        }
      }
      return false;
  }
  return false;
}

bool Parser::Parse(int argc, const char* const* argv, std::string* error) {
  DRACONIS_CHECK(error != nullptr);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);

    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const Flag* flag = Find(name);
      if (flag != nullptr && flag->kind == Kind::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        *error = "missing value for --" + name;
        return false;
      }
    }

    const Flag* flag = Find(name);
    if (flag == nullptr) {
      *error = "unknown flag --" + name;
      return false;
    }
    if (!Assign(*flag, value)) {
      *error = "bad value for --" + name + ": '" + value + "'";
      return false;
    }
  }
  return true;
}

std::string Parser::Usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const Flag& flag : registered_) {
    os << "  --" << flag.name << "  (default: " << flag.default_text << ")";
    if (flag.kind == Kind::kChoice) {
      os << "  [";
      for (size_t i = 0; i < flag.choices.size(); ++i) {
        os << (i > 0 ? "|" : "") << flag.choices[i];
      }
      os << "]";
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace draconis::flags
