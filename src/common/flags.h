// Minimal command-line flag parsing for the bench/example binaries.
//
// Supports --name=value and --name value forms, plus --help. Flags bind to
// caller-owned variables so defaults read naturally at the call site.

#ifndef DRACONIS_COMMON_FLAGS_H_
#define DRACONIS_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace draconis::flags {

class Parser {
 public:
  explicit Parser(std::string program_description);

  // Registration: `out` must outlive Parse and already hold the default.
  void AddDouble(const std::string& name, double* out, const std::string& help);
  void AddInt64(const std::string& name, int64_t* out, const std::string& help);
  void AddBool(const std::string& name, bool* out, const std::string& help);
  void AddString(const std::string& name, std::string* out, const std::string& help);

  // A duration with a unit suffix: accepts "500us", "40ms", "1.5s", "250ns".
  void AddDuration(const std::string& name, TimeNs* out, const std::string& help);

  // A string restricted to a fixed choice set; parsing rejects anything else
  // and Usage() lists the alternatives. `*out` must be one of `choices`.
  void AddChoice(const std::string& name, std::string* out,
                 std::vector<std::string> choices, const std::string& help);

  // Parses argv. On error fills *error and returns false. "--help" sets
  // help_requested() and returns true without touching other flags.
  bool Parse(int argc, const char* const* argv, std::string* error);

  bool help_requested() const { return help_requested_; }
  std::string Usage() const;

 private:
  enum class Kind { kDouble, kInt64, kBool, kString, kDuration, kChoice };

  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
    std::vector<std::string> choices;  // kChoice only
  };

  const Flag* Find(const std::string& name) const;
  static bool Assign(const Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> registered_;
  bool help_requested_ = false;
};

}  // namespace draconis::flags

#endif  // DRACONIS_COMMON_FLAGS_H_
