#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace draconis::json {

std::string Writer::FormatDouble(double value) {
  DRACONIS_CHECK_MSG(std::isfinite(value), "JSON cannot represent NaN/Inf");
  char buf[40];
  // Shortest of the standard precisions that parses back exactly.
  for (int precision : {9, 15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

void Writer::Indent() {
  out_.append(stack_.size() * 2, ' ');
}

void Writer::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // "key": already emitted the separator
  }
  DRACONIS_CHECK_MSG(stack_.empty() ? out_.empty() : stack_.back() == Frame::kArray,
                     "object members need a Key(), one root value only");
  if (!stack_.empty()) {
    if (counts_.back() > 0) {
      out_ += ',';
    }
    out_ += '\n';
    Indent();
    ++counts_.back();
  }
}

Writer& Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  counts_.push_back(0);
  return *this;
}

Writer& Writer::EndObject() {
  DRACONIS_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_);
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  counts_.push_back(0);
  return *this;
}

Writer& Writer::EndArray() {
  DRACONIS_CHECK(!stack_.empty() && stack_.back() == Frame::kArray && !key_pending_);
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  return *this;
}

Writer& Writer::Key(const std::string& name) {
  DRACONIS_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_,
                     "Key() is only valid directly inside an object");
  if (counts_.back() > 0) {
    out_ += ',';
  }
  out_ += '\n';
  Indent();
  ++counts_.back();
  out_ += '"';
  AppendEscaped(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

void Writer::AppendEscaped(const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

Writer& Writer::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  AppendEscaped(value);
  out_ += '"';
  return *this;
}

Writer& Writer::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Double(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
  return *this;
}

Writer& Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace draconis::json
