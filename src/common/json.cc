#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace draconis::json {

std::string Writer::FormatDouble(double value) {
  DRACONIS_CHECK_MSG(std::isfinite(value), "JSON cannot represent NaN/Inf");
  char buf[40];
  // Shortest of the standard precisions that parses back exactly.
  for (int precision : {9, 15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

void Writer::Indent() {
  out_.append(stack_.size() * 2, ' ');
}

void Writer::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // "key": already emitted the separator
  }
  DRACONIS_CHECK_MSG(stack_.empty() ? out_.empty() : stack_.back() == Frame::kArray,
                     "object members need a Key(), one root value only");
  if (!stack_.empty()) {
    if (counts_.back() > 0) {
      out_ += ',';
    }
    out_ += '\n';
    Indent();
    ++counts_.back();
  }
}

Writer& Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  counts_.push_back(0);
  return *this;
}

Writer& Writer::EndObject() {
  DRACONIS_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_);
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  counts_.push_back(0);
  return *this;
}

Writer& Writer::EndArray() {
  DRACONIS_CHECK(!stack_.empty() && stack_.back() == Frame::kArray && !key_pending_);
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  return *this;
}

Writer& Writer::Key(const std::string& name) {
  DRACONIS_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_,
                     "Key() is only valid directly inside an object");
  if (counts_.back() > 0) {
    out_ += ',';
  }
  out_ += '\n';
  Indent();
  ++counts_.back();
  out_ += '"';
  AppendEscaped(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

void Writer::AppendEscaped(const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

Writer& Writer::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  AppendEscaped(value);
  out_ += '"';
  return *this;
}

Writer& Writer::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Double(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
  return *this;
}

Writer& Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

bool Value::AsBool() const {
  DRACONIS_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::AsDouble() const {
  DRACONIS_CHECK_MSG(is_number(), "JSON value is not a number");
  return number_;
}

int64_t Value::AsInt() const {
  DRACONIS_CHECK_MSG(is_number(), "JSON value is not a number");
  const auto i = static_cast<int64_t>(number_);
  DRACONIS_CHECK_MSG(static_cast<double>(i) == number_, "JSON number is not an integer");
  return i;
}

const std::string& Value::AsString() const {
  DRACONIS_CHECK_MSG(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<Value>& Value::AsArray() const {
  DRACONIS_CHECK_MSG(is_array(), "JSON value is not an array");
  return array_;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::vector<std::string> Value::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(members_.size());
  for (const auto& [name, value] : members_) {
    keys.push_back(name);
  }
  return keys;
}

Value Value::Null() { return Value{}; }

Value Value::MakeBool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

namespace {

// Hand-rolled recursive-descent parser. Sized for config documents: one pass,
// positions tracked for error messages, depth-capped against pathological
// nesting.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  bool Run(Value* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      Fill(error);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after the JSON document";
      Fill(error);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Fill(std::string* error) const {
    if (error == nullptr) {
      return;
    }
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      line += text_[i] == '\n' ? 1 : 0;
    }
    *error = "line " + std::to_string(line) + ": " + error_;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) {
      error_ = std::string("invalid literal, expected '") + word + "'";
      return false;
    }
    pos_ += len;
    return true;
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) {
      error_ = "nesting too deep";
      return false;
    }
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of document";
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = Value::Str(std::move(s));
        return true;
      }
      case 't':
        *out = Value::MakeBool(true);
        return Literal("true", 4);
      case 'f':
        *out = Value::MakeBool(false);
        return Literal("false", 5);
      case 'n':
        *out = Value::Null();
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = Value::Object(std::move(members));
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        error_ = "expected a string object key";
        return false;
      }
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error_ = "expected ':' after object key \"" + key + "\"";
        return false;
      }
      ++pos_;
      SkipWs();
      Value value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        error_ = "unterminated object";
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = Value::Object(std::move(members));
        return true;
      }
      error_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = Value::Array(std::move(items));
      return true;
    }
    while (true) {
      SkipWs();
      Value value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      items.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        error_ = "unterminated array";
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = Value::Array(std::move(items));
        return true;
      }
      error_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          s += esc;
          break;
        case 'n':
          s += '\n';
          break;
        case 't':
          s += '\t';
          break;
        case 'r':
          s += '\r';
          break;
        case 'b':
          s += '\b';
          break;
        case 'f':
          s += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error_ = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              error_ = "invalid \\u escape";
              return false;
            }
          }
          // The writer only ever emits \u00xx control escapes; encode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xC0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          error_ = std::string("invalid escape '\\") + esc + "'";
          return false;
      }
    }
    error_ = "unterminated string";
    return false;
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                               c == '+' || c == '-';
      if (!number_char) {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) {
      error_ = std::string("unexpected character '") + text_[pos_] + "'";
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      error_ = "malformed number '" + token + "'";
      return false;
    }
    *out = Value::Number(value);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* error) {
  DRACONIS_CHECK(out != nullptr);
  return Reader(text).Run(out, error);
}

}  // namespace draconis::json
