// Deterministic pseudo-random number generation for the simulation.
//
// Every experiment takes an explicit seed so runs are exactly reproducible.
// The generator is SplitMix64: tiny state, excellent statistical quality for
// simulation purposes, and trivially seedable.

#ifndef DRACONIS_COMMON_RNG_H_
#define DRACONIS_COMMON_RNG_H_

#include <cstdint>

#include "common/time.h"

namespace draconis {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + kGamma) {}

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Standard normal via Box-Muller (no caching; simplicity over speed).
  double NextNormal(double mean, double stddev);

  // Lognormal parameterized by the *target* mean and sigma of the underlying
  // normal. mean is the desired arithmetic mean of the lognormal output.
  double NextLognormalWithMean(double mean, double sigma);

  // Bounded Pareto on [lo, hi] with shape alpha (> 0).
  double NextBoundedPareto(double lo, double hi, double alpha);

  // True with probability p.
  bool NextBool(double p);

  // Exponential inter-arrival gap for a Poisson process of the given rate
  // (events per second), returned as a duration in nanoseconds (>= 1).
  TimeNs NextPoissonGap(double events_per_second);

  // Derives an independent stream; handy for giving each node its own RNG.
  Rng Fork();

 private:
  static constexpr uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
  uint64_t state_;
};

}  // namespace draconis

#endif  // DRACONIS_COMMON_RNG_H_
