#include "common/check.h"

#include <sstream>

namespace draconis::internal {

void CheckFailed(const char* expr, const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << "DRACONIS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw CheckFailure(os.str());
}

}  // namespace draconis::internal
