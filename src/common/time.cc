#include "common/time.h"

#include <cmath>
#include <cstdio>

namespace draconis {

std::string FormatDuration(TimeNs t) {
  const bool negative = t < 0;
  const double abs_ns = std::fabs(static_cast<double>(t));
  char buf[48];
  if (abs_ns < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%s%.0fns", negative ? "-" : "", abs_ns);
  } else if (abs_ns < 1000.0 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fus", negative ? "-" : "", abs_ns / kMicrosecond);
  } else if (abs_ns < 1000.0 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", negative ? "-" : "", abs_ns / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", negative ? "-" : "", abs_ns / kSecond);
  }
  return buf;
}

}  // namespace draconis
