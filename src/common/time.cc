#include "common/time.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace draconis {

std::string FormatDuration(TimeNs t) {
  const bool negative = t < 0;
  const double abs_ns = std::fabs(static_cast<double>(t));
  char buf[48];
  if (abs_ns < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%s%.0fns", negative ? "-" : "", abs_ns);
  } else if (abs_ns < 1000.0 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fus", negative ? "-" : "", abs_ns / kMicrosecond);
  } else if (abs_ns < 1000.0 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", negative ? "-" : "", abs_ns / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", negative ? "-" : "", abs_ns / kSecond);
  }
  return buf;
}

bool ParseDuration(const std::string& text, TimeNs* out) {
  if (out == nullptr || text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !std::isfinite(value) || value < 0.0) {
    return false;
  }
  double scale = 0.0;
  if (*end == '\0') {
    if (value != 0.0) {
      return false;  // a bare number is ambiguous; only "0" needs no unit
    }
    scale = 1.0;
  } else if (std::strcmp(end, "ns") == 0) {
    scale = 1.0;
  } else if (std::strcmp(end, "us") == 0) {
    scale = static_cast<double>(kMicrosecond);
  } else if (std::strcmp(end, "ms") == 0) {
    scale = static_cast<double>(kMillisecond);
  } else if (std::strcmp(end, "s") == 0) {
    scale = static_cast<double>(kSecond);
  } else {
    return false;
  }
  *out = static_cast<TimeNs>(value * scale);
  return true;
}

}  // namespace draconis
