// Simulated-time primitives.
//
// All simulated time in this project is an absolute number of nanoseconds
// since the start of the simulation, held in a signed 64-bit integer. A
// signed representation makes interval arithmetic (deltas, comparisons with
// subtraction) safe without casts. 2^63 ns is ~292 years, far beyond any run.

#ifndef DRACONIS_COMMON_TIME_H_
#define DRACONIS_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace draconis {

// Absolute simulated time or a duration, in nanoseconds.
using TimeNs = int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1000;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;

constexpr double ToMicros(TimeNs t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / kSecond; }

constexpr TimeNs FromMicros(double us) { return static_cast<TimeNs>(us * kMicrosecond); }
constexpr TimeNs FromMillis(double ms) { return static_cast<TimeNs>(ms * kMillisecond); }
constexpr TimeNs FromSeconds(double s) { return static_cast<TimeNs>(s * kSecond); }

// Renders a duration with an adaptive unit, e.g. "4.7us", "1.35ms", "2.1s".
std::string FormatDuration(TimeNs t);

// Parses a duration with an explicit unit suffix — "500us", "40ms", "1.5s",
// "250ns" — into nanoseconds. "0" is accepted without a unit. Returns false
// (leaving *out untouched) on malformed or negative input.
bool ParseDuration(const std::string& text, TimeNs* out);

}  // namespace draconis

#endif  // DRACONIS_COMMON_TIME_H_
