// Discrete-event simulator.
//
// The simulator owns a priority queue of (time, sequence, closure) events and
// a virtual clock. Events scheduled for the same instant run in scheduling
// order (the sequence number breaks ties), which gives the deterministic
// serial packet ordering the switch model relies on.

#ifndef DRACONIS_SIM_SIMULATOR_H_
#define DRACONIS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace draconis::sim {

// Handle for a scheduled event that may be cancelled before it fires.
// Cancellation is O(1): the event stays in the heap but is skipped when
// popped. Copies share the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // default-constructed handles.
  void Cancel();

  // True if the event is still going to fire.
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules fn at absolute time `at` (>= Now()).
  void At(TimeNs at, std::function<void()> fn);

  // Schedules fn after a relative delay (>= 0).
  void After(TimeNs delay, std::function<void()> fn);

  // Like At/After but returns a handle that can cancel the event.
  EventHandle CancellableAt(TimeNs at, std::function<void()> fn);
  EventHandle CancellableAfter(TimeNs delay, std::function<void()> fn);

  // Runs events until the queue drains or the clock passes `until`.
  // Events scheduled exactly at `until` still run. Returns the number of
  // events executed.
  uint64_t RunUntil(TimeNs until);

  // Runs until the queue is completely empty.
  uint64_t RunAll();

  // Drops every pending event (used to tear down a run that has reached its
  // measurement horizon without draining executor loops).
  void Clear();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs at = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;  // null for non-cancellable events

    // Min-heap by (at, seq).
    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  void Push(TimeNs at, std::function<void()> fn, std::shared_ptr<bool> cancelled);

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_SIMULATOR_H_
