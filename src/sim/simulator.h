// Discrete-event simulator.
//
// The simulator owns a virtual clock and a slab of event slots indexed by a
// binary heap of (time, sequence, slot) keys. Events scheduled for the same
// instant run in scheduling order (the sequence number breaks ties), which
// gives the deterministic serial packet ordering the switch model relies on.
//
// Engine layout:
//  - Slots live in a free-listed slab and hold the closure; they are
//    recycled after an event fires or is cancelled, so steady-state
//    scheduling does not grow any container.
//  - The heap orders trivially copyable 24-byte keys (see event_heap.h);
//    the closure never moves during sifts.
//  - Cancellation is O(1) and allocation-free: handles carry the slot index
//    plus the generation the slot had when the event was scheduled. A
//    cancelled or fired slot bumps to a new generation on reuse, so a stale
//    handle can never touch the slot's next occupant. Cancelled events are
//    dropped lazily when their heap key surfaces.
//  - `Timer` is the reusable-event path for high-frequency periodic callers
//    (executor pull loops and the like): the callback is stored once and
//    re-arming costs one heap push — no per-occurrence allocation at all.
//
// Handles and timers index into the simulator's slab and must not outlive
// it (in practice they are members of objects that already hold the
// `Simulator*`, declared after the simulator and destroyed before it).

#ifndef DRACONIS_SIM_SIMULATOR_H_
#define DRACONIS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_heap.h"

namespace draconis::sim {

class Simulator;

// Handle for a scheduled event that may be cancelled before it fires.
// Copies refer to the same underlying event and observe each other's
// cancellation. After the event fires or is cancelled, every copy reports
// !pending() and further Cancel() calls are no-ops — including when the
// slot has been recycled for a newer event (the generation check).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // default-constructed handles.
  void Cancel();

  // True if the event is still going to fire.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, uint32_t slot, uint64_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t gen_ = 0;
};

// A reusable scheduled callback: bind the closure once, then arm it as often
// as needed. At most one occurrence is pending at a time — re-arming
// replaces the previous one. Firing and re-arming are allocation-free,
// which is what the highest-frequency periodic callers (executor pull
// watchdogs, drain polls) want. The callback may re-arm its own timer.
// Non-copyable and non-movable: the simulator holds a pointer to it.
class Timer {
 public:
  Timer() = default;
  Timer(Simulator* sim, std::function<void()> fn) { Bind(sim, std::move(fn)); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer();

  // Registers the timer with `sim` and stores its callback. Must be called
  // exactly once before arming (two-phase init for members whose callback
  // captures `this`).
  void Bind(Simulator* sim, std::function<void()> fn);

  // Arms the timer to fire at `at` / after `delay`, replacing any pending
  // occurrence.
  void ScheduleAt(TimeNs at);
  void ScheduleAfter(TimeNs delay);

  // Disarms the pending occurrence, if any.
  void Cancel();

  // True if an occurrence is armed and has not fired yet.
  bool pending() const;

 private:
  friend class Simulator;
  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  std::function<void()> fn_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules fn at absolute time `at` (>= Now()).
  void At(TimeNs at, std::function<void()> fn);

  // Schedules fn after a relative delay (>= 0).
  void After(TimeNs delay, std::function<void()> fn);

  // Like At/After but returns a handle that can cancel the event.
  EventHandle CancellableAt(TimeNs at, std::function<void()> fn);
  EventHandle CancellableAfter(TimeNs delay, std::function<void()> fn);

  // Runs events until the queue drains or the clock passes `until`.
  // Events scheduled exactly at `until` still run. Returns the number of
  // events executed.
  uint64_t RunUntil(TimeNs until);

  // Runs until the queue is completely empty.
  uint64_t RunAll();

  // Drops every pending event (used to tear down a run that has reached its
  // measurement horizon without draining executor loops). Outstanding
  // handles and timers all report !pending() afterwards.
  void Clear();

  // Number of live (scheduled, not yet fired or cancelled) events.
  size_t pending_events() const { return live_; }
  uint64_t executed_events() const { return executed_; }

 private:
  friend class EventHandle;
  friend class Timer;

  static constexpr uint32_t kNilSlot = UINT32_MAX;

  struct Slot {
    // Generation + liveness in one word: `seq + 1` of the current occupancy
    // while it is armed, 0 once it fires / is cancelled / is disarmed. A
    // heap key or handle is live iff this equals its own seq + 1, which
    // makes pop-validation and stale-handle rejection a single compare.
    uint64_t live_gen = 0;
    std::function<void()> fn;  // one-shot payload; empty for timer slots
    Timer* timer = nullptr;    // set for slots pinned by a Timer
    uint32_t next_free = kNilSlot;
  };

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  // Schedules a one-shot event and returns (slot, gen) for handle creation.
  EventKey Push(TimeNs at, std::function<void()> fn);
  uint64_t Run(bool bounded, TimeNs until);

  // Timer plumbing.
  uint32_t RegisterTimer(Timer* timer);
  void UnregisterTimer(const Timer& timer);
  void ArmTimer(const Timer& timer, TimeNs at);
  void DisarmTimer(const Timer& timer);
  bool TimerPending(const Timer& timer) const;

  // EventHandle plumbing.
  void CancelHandle(const EventHandle& handle);
  bool HandlePending(const EventHandle& handle) const;

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  uint32_t free_head_ = kNilSlot;
  std::vector<Slot> slots_;
  EventHeap heap_;
};

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_SIMULATOR_H_
