// Discrete-event simulator.
//
// The simulator owns a virtual clock and a slab of event slots indexed by a
// pluggable event queue of (time, sequence, slot) keys. Events scheduled for
// the same instant run in scheduling order (the sequence number breaks
// ties), which gives the deterministic serial packet ordering the switch
// model relies on.
//
// Scheduling surface: one orthogonal pair.
//
//   sim.ScheduleAt(at, fn);                  // fire-and-forget
//   sim.ScheduleAfter(delay, fn);
//   EventHandle h = sim.ScheduleAt(at, fn, kCancellable);   // cancellable
//   EventHandle h = sim.ScheduleAfter(delay, fn, kCancellable);
//
// The fire-and-forget default is the zero-overhead path; passing
// `kCancellable` opts into a handle. `Timer` is the reusable-event path for
// high-frequency periodic callers (executor pull loops and the like): the
// callback is stored once and re-arming costs one queue push — no
// per-occurrence allocation at all.
//
// Engine layout:
//  - Slots live in a free-listed slab split into a hot generation array
//    (one word per slot — all the dequeue validation scan ever touches) and
//    a cold payload array (closure, timer pointer, freelist link). Slots are
//    recycled after an event fires or is cancelled, so steady-state
//    scheduling does not grow any container.
//  - The queue orders trivially copyable 24-byte keys; the closure never
//    moves. Two backends — the ladder queue (default) and the binary heap —
//    are selected at construction and produce bit-identical execution order
//    (see event_queue.h). Both are held as concrete `final` members behind
//    an enum dispatch, so the run loop is fully devirtualized.
//  - Cancellation is O(1) and allocation-free: handles carry the slot index
//    plus the generation the slot had when the event was scheduled. A
//    cancelled or fired slot bumps to a new generation on reuse, so a stale
//    handle can never touch the slot's next occupant. Cancelled events are
//    dropped lazily when their queue key surfaces.
//
// Handles and timers index into the simulator's slab and must not outlive
// it (in practice they are members of objects that already hold the
// `Simulator*`, declared after the simulator and destroyed before it).

#ifndef DRACONIS_SIM_SIMULATOR_H_
#define DRACONIS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_heap.h"
#include "sim/event_queue.h"
#include "sim/ladder_queue.h"

namespace draconis::sim {

class Simulator;

// Tag selecting the cancellable Schedule{At,After} overloads:
//   sim.ScheduleAfter(delay, fn, kCancellable)
struct CancellableTag {
  explicit CancellableTag() = default;
};
inline constexpr CancellableTag kCancellable{};

// Handle for a scheduled event that may be cancelled before it fires.
// Copies refer to the same underlying event and observe each other's
// cancellation. After the event fires or is cancelled, every copy reports
// !pending() and further Cancel() calls are no-ops — including when the
// slot has been recycled for a newer event (the generation check).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // default-constructed handles.
  void Cancel();

  // True if the event is still going to fire.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, uint32_t slot, uint64_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t gen_ = 0;
};

// A reusable scheduled callback: bind the closure once, then arm it as often
// as needed. At most one occurrence is pending at a time — re-arming
// replaces the previous one. Firing and re-arming are allocation-free,
// which is what the highest-frequency periodic callers (executor pull
// watchdogs, drain polls) want. The callback may re-arm its own timer.
// Non-copyable and non-movable: the simulator holds a pointer to it.
class Timer {
 public:
  Timer() = default;
  Timer(Simulator* sim, std::function<void()> fn) { Bind(sim, std::move(fn)); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer();

  // Registers the timer with `sim` and stores its callback. Must be called
  // exactly once before arming (two-phase init for members whose callback
  // captures `this`).
  void Bind(Simulator* sim, std::function<void()> fn);

  // Arms the timer to fire at `at` / after `delay`, replacing any pending
  // occurrence.
  void ScheduleAt(TimeNs at);
  void ScheduleAfter(TimeNs delay);

  // Disarms the pending occurrence, if any.
  void Cancel();

  // True if an occurrence is armed and has not fired yet.
  bool pending() const;

 private:
  friend class Simulator;
  Simulator* sim_ = nullptr;
  uint32_t slot_ = 0;
  std::function<void()> fn_;
};

class Simulator {
 public:
  explicit Simulator(QueueBackend backend = kDefaultQueueBackend)
      : backend_(backend) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }
  QueueBackend queue_backend() const { return backend_; }

  // Schedules fn at absolute time `at` (>= Now()), fire-and-forget.
  void ScheduleAt(TimeNs at, std::function<void()> fn);

  // Schedules fn after a relative delay (>= 0), fire-and-forget.
  void ScheduleAfter(TimeNs delay, std::function<void()> fn);

  // Cancellable variants: return a handle that can cancel the event.
  EventHandle ScheduleAt(TimeNs at, std::function<void()> fn, CancellableTag);
  EventHandle ScheduleAfter(TimeNs delay, std::function<void()> fn,
                            CancellableTag);

  // Runs events until the queue drains or the clock passes `until`.
  // Events scheduled exactly at `until` still run. Returns the number of
  // events executed.
  uint64_t RunUntil(TimeNs until);

  // Runs until the queue is completely empty.
  uint64_t RunAll();

  // Drops every pending event (used to tear down a run that has reached its
  // measurement horizon without draining executor loops). Outstanding
  // handles and timers all report !pending() afterwards.
  void Clear();

  // Number of live (scheduled, not yet fired or cancelled) events.
  size_t pending_events() const { return live_; }
  uint64_t executed_events() const { return executed_; }

 private:
  friend class EventHandle;
  friend class Timer;

  static constexpr uint32_t kNilSlot = UINT32_MAX;

  // Cold per-slot state; the hot liveness word lives in gens_ so the run
  // loop's stale-key scan touches one cache line per ~8 keys instead of one
  // per slot.
  struct Payload {
    std::function<void()> fn;  // one-shot payload; empty for timer slots
    Timer* timer = nullptr;    // set for slots pinned by a Timer
    uint32_t next_free = kNilSlot;
  };

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  // Schedules a one-shot event and returns (slot, gen) for handle creation.
  EventKey Push(TimeNs at, std::function<void()> fn);
  // Enum dispatch to a concrete backend; both calls devirtualize.
  void QueuePush(EventKey key);
  uint64_t Run(bool bounded, TimeNs until);
  template <typename Queue>
  uint64_t RunLoop(Queue& queue, bool bounded, TimeNs until);

  // Timer plumbing.
  uint32_t RegisterTimer(Timer* timer);
  void UnregisterTimer(const Timer& timer);
  void ArmTimer(const Timer& timer, TimeNs at);
  void DisarmTimer(const Timer& timer);
  bool TimerPending(const Timer& timer) const;

  // EventHandle plumbing.
  void CancelHandle(const EventHandle& handle);
  bool HandlePending(const EventHandle& handle) const;

  const QueueBackend backend_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  uint32_t free_head_ = kNilSlot;
  // Hot: generation + liveness in one word per slot — `seq + 1` of the
  // current occupancy while armed, 0 once it fires / is cancelled /
  // is disarmed. A queue key or handle is live iff this equals its own
  // seq + 1, which makes pop-validation and stale-handle rejection a single
  // compare.
  std::vector<uint64_t> gens_;
  std::vector<Payload> payloads_;  // cold, parallel to gens_
  EventHeap heap_;
  LadderQueue ladder_;
};

// The scheduling fast path is header-inline: benches and the cluster layers
// schedule millions of events per run, and the slab + queue push should
// flatten into the caller.

inline uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = payloads_[slot].next_free;
    return slot;
  }
  gens_.push_back(0);
  payloads_.emplace_back();
  return static_cast<uint32_t>(gens_.size() - 1);
}

inline void Simulator::QueuePush(EventKey key) {
  if (backend_ == QueueBackend::kLadder) {
    ladder_.Push(key);
  } else {
    heap_.Push(key);
  }
}

inline EventKey Simulator::Push(TimeNs at, std::function<void()> fn) {
  DRACONIS_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  const uint64_t seq = next_seq_++;
  const uint32_t slot = AllocSlot();
  gens_[slot] = seq + 1;
  payloads_[slot].fn = std::move(fn);
  QueuePush(EventKey{at, seq, slot});
  ++live_;
  return EventKey{at, seq, slot};
}

inline void Simulator::ScheduleAt(TimeNs at, std::function<void()> fn) {
  Push(at, std::move(fn));
}

inline void Simulator::ScheduleAfter(TimeNs delay, std::function<void()> fn) {
  DRACONIS_CHECK(delay >= 0);
  Push(now_ + delay, std::move(fn));
}

inline EventHandle Simulator::ScheduleAt(TimeNs at, std::function<void()> fn,
                                         CancellableTag) {
  const EventKey key = Push(at, std::move(fn));
  return EventHandle(this, key.slot, key.seq);
}

inline EventHandle Simulator::ScheduleAfter(TimeNs delay,
                                            std::function<void()> fn,
                                            CancellableTag) {
  DRACONIS_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn), kCancellable);
}

// Timer re-arm is the other per-event hot path (executor pull loops re-arm
// from inside the callback), so it inlines the same way.

inline void Simulator::ArmTimer(const Timer& timer, TimeNs at) {
  DRACONIS_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  if (gens_[timer.slot_] == 0) {
    ++live_;
  }
  const uint64_t seq = next_seq_++;
  gens_[timer.slot_] = seq + 1;  // any previously pushed key goes stale
  QueuePush(EventKey{at, seq, timer.slot_});
}

inline void Simulator::DisarmTimer(const Timer& timer) {
  if (gens_[timer.slot_] != 0) {
    gens_[timer.slot_] = 0;
    --live_;
  }
}

inline bool Simulator::TimerPending(const Timer& timer) const {
  return gens_[timer.slot_] != 0;
}

inline void Timer::ScheduleAt(TimeNs at) {
  DRACONIS_CHECK_MSG(sim_ != nullptr, "Timer used before Bind()");
  sim_->ArmTimer(*this, at);
}

inline void Timer::ScheduleAfter(TimeNs delay) {
  DRACONIS_CHECK_MSG(sim_ != nullptr, "Timer used before Bind()");
  DRACONIS_CHECK(delay >= 0);
  sim_->ArmTimer(*this, sim_->Now() + delay);
}

inline void Timer::Cancel() {
  if (sim_ != nullptr) {
    sim_->DisarmTimer(*this);
  }
}

inline bool Timer::pending() const {
  return sim_ != nullptr && sim_->TimerPending(*this);
}

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_SIMULATOR_H_
