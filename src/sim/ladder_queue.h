// Ladder/calendar queue backend for the EventQueue API (event_queue.h).
//
// A discrete-event simulator at data-center scale pushes most events a short
// horizon ahead (network hops, executor pulls) plus a sparse far tail
// (client timeouts, watchdogs). A comparison heap pays O(log n) per event
// for that mix; a ladder queue pays amortized O(1) by *bucketing* events by
// time and only sorting them just before they fire, in small batches:
//
//   bottom   the near-horizon run: a vector sorted by (at, seq), drained by
//            index. Pops come only from here. Covers [now, bottom_end_).
//   rungs    a stack of bucket arrays. Each rung spans a contiguous time
//            range split into power-of-two-width buckets; pushes append to
//            a bucket unsorted. rungs_[0] is the coarsest; the last rung is
//            the finest and is drained next. Coverage is contiguous:
//            the finest rung starts at bottom_end_, each coarser rung starts
//            where the finer one ends.
//   top      the far-future overflow: one unsorted vector for everything
//            beyond the last rung's horizon, with its min/max tracked.
//
// Epoch advance is lazy. When the bottom drains, the finest rung's next
// non-empty bucket is taken: a sparse bucket (<= kSortThreshold keys, or
// 1 ns wide) is batch-sorted into the bottom — consecutive sparse buckets
// are gathered into one batch so lightly-loaded queues amortize the refill
// fixed cost; a dense one is re-spread into a new, finer rung and the walk
// recurses. When every rung is exhausted, `top` is spread into a fresh
// rung[0] sized to kCoverageFactor x its own min..max span — so bucket
// widths adapt to the actual event density, and each key is touched
// O(log_B(span)) ~ 2-3 times in total.
//
// Timer-wheel fast path: dense spans up to kWheelSpan spread straight into
// 1 ns-per-slot buckets. Every append source — direct pushes, bucket
// re-spreads, top spreads — delivers keys in ascending seq, so a 1 ns slot
// is sorted by construction and its drain path never calls sort. This is
// the common case for the sub-microsecond re-arm horizons (network hops,
// executor pulls) that dominate simulation runs.
//
// Ordering is bit-identical to the heap backend: buckets partition time, the
// batch sort and the bottom insertion both use the (at, seq) contract, so
// the pop sequence is the global (at, seq) order no matter how keys were
// bucketed. Inserts that land below bottom_end_ (schedules for the
// already-sorted window) binary-search into the undrained suffix of the
// bottom, which stays small by construction (a gather batch's worth).
//
// `final` so the Simulator's calls through a concrete member devirtualize.

#ifndef DRACONIS_SIM_LADDER_QUEUE_H_
#define DRACONIS_SIM_LADDER_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace draconis::sim {

class LadderQueue final : public EventQueue {
 public:
  bool empty() const override { return live_ == 0; }
  size_t size() const override { return live_; }

  // Hot path, header-inline so the Simulator's monomorphized run loop can
  // flatten it. The cold epoch-advance machinery (EnsureBottom and friends)
  // stays out of line.
  void Push(EventKey key) override {
    ++live_;
    if (key.at < bottom_end_) {
      // Lands in the already-sorted window: binary-search into the
      // undrained suffix. The suffix is at most one bucket's worth of keys,
      // so the insert's memmove stays short.
      const auto it = std::upper_bound(
          bottom_.begin() + static_cast<ptrdiff_t>(bottom_next_),
          bottom_.end(), key, EventKeyBefore);
      bottom_.insert(it, key);
      return;
    }
    // Finest rung first: high-frequency re-arms (executor pulls, network
    // hops) almost always land there, so this loop is one iteration in
    // practice.
    for (size_t r = depth_; r-- > 0;) {
      Rung& rung = rungs_[r];
      if (key.at < rung.end) {
        rung.buckets[static_cast<size_t>(key.at - rung.start) >>
                     rung.width_log2]
            .push_back(key);
        ++rung.count;
        return;
      }
    }
    PushTop(key);
  }

  bool PeekTop(EventKey* out) override {
    if (bottom_next_ >= bottom_.size() && !EnsureBottom()) {
      return false;
    }
    *out = bottom_[bottom_next_];
    return true;
  }

  EventKey PopTop() override {
    // Usually a no-op compare: the run loop peeks first, which already
    // refilled the bottom. Bare pops on a non-empty queue must work too.
    if (bottom_next_ >= bottom_.size()) {
      EnsureBottom();
    }
    --live_;
    return bottom_[bottom_next_++];
  }

  void Clear() override;

 private:
  // 2^6 buckets per rung: one cache-friendly bucket array per spread, and a
  // span shrink factor of 64x per ladder level.
  static constexpr int kRungBucketsLog2 = 6;
  static constexpr size_t kRungBuckets = size_t{1} << kRungBucketsLog2;
  // Buckets at most this large are batch-sorted into the bottom; larger ones
  // re-spread one level finer. Sized so the sort stays in-cache and the
  // bottom's sorted-insert memmove window stays short.
  static constexpr size_t kSortThreshold = 64;
  // SpreadTop covers this multiple of the observed top span: steady-state
  // workloads keep scheduling into the same horizon while the rung drains,
  // and the headroom lets those pushes land in rung buckets directly
  // instead of re-transiting the top every epoch.
  static constexpr TimeNs kCoverageFactor = 4;
  // Spans up to this go straight to a 1 ns-per-bucket timer wheel instead
  // of a coarse rung. A 1 ns bucket only ever receives keys in ascending
  // seq (pushes, bucket spreads, and top spreads all append in global
  // scheduling order), so wheel buckets are sorted by construction and the
  // drain path never sorts at all — the fast path for the sub-microsecond
  // re-arm horizons (network hops, executor pulls) that dominate runs.
  static constexpr int kWheelSpanLog2 = 12;
  static constexpr TimeNs kWheelSpan = TimeNs{1} << kWheelSpanLog2;

  struct Rung {
    TimeNs start = 0;   // time of bucket 0
    TimeNs end = 0;     // exclusive horizon of the whole rung
    int width_log2 = 0; // bucket width is (1 << width_log2) ns
    size_t cur = 0;     // next bucket to drain
    size_t count = 0;   // keys in buckets at index >= cur
    std::vector<std::vector<EventKey>> buckets;
  };

  // Far-future fallback of Push: appends to the top and tracks its span.
  void PushTop(EventKey key);
  // Refills the drained bottom from the rungs/top. Returns false when the
  // queue is empty. Maintains the invariant that bottom_end_ equals the
  // start of the first undrained bucket (or rung/top region) on return.
  bool EnsureBottom();
  // Spreads spread_scratch_ into a new finest rung covering
  // [start, start + 2^parent_width_log2).
  void SpawnRung(TimeNs start, int parent_width_log2);
  // Spreads the whole top into a fresh rung[0] sized to its min..max span.
  void SpreadTop();

  size_t live_ = 0;

  // Bottom: sorted ascending by (at, seq), drained by index.
  std::vector<EventKey> bottom_;
  size_t bottom_next_ = 0;
  TimeNs bottom_end_ = 0;  // exclusive; pushes below this sort into bottom_

  std::vector<Rung> rungs_;  // pool; [0, depth_) are active, [0] coarsest
  size_t depth_ = 0;

  std::vector<EventKey> top_;  // far future, unsorted
  TimeNs top_min_ = 0;
  TimeNs top_max_ = 0;

  std::vector<EventKey> spread_scratch_;  // reused bucket-spread staging
};

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_LADDER_QUEUE_H_
