// Binary min-heap backend for the EventQueue API (event_queue.h).
//
// The simulator's heap used to hold full events (closure + cancellation
// flag, ~64 bytes with non-trivial move constructors); every sift moved
// them log2(n) times. Here the heap orders small keys that point into the
// simulator's slot slab: sifts are plain word copies and the payload never
// moves — which matters when lazily-deleted keys run the heap hundreds of
// thousands of entries deep.
//
// Ordering is the (at, seq) contract of event_queue.h. ARITY is a tuning
// knob (2 measured best on both the shallow executor-pull heaps and the
// ~10^6-entry lazy-deletion heaps; 4 was tried and only helped the deep
// case). The class is `final` so the Simulator's calls through a concrete
// member devirtualize.

#ifndef DRACONIS_SIM_EVENT_HEAP_H_
#define DRACONIS_SIM_EVENT_HEAP_H_

#include <cstddef>
#include <vector>

#include "sim/event_queue.h"

namespace draconis::sim {

class EventHeap final : public EventQueue {
  static constexpr size_t ARITY = 2;

 public:
  bool empty() const override { return heap_.empty(); }
  size_t size() const override { return heap_.size(); }

  void Push(EventKey key) override {
    size_t i = heap_.size();
    heap_.push_back(key);  // placeholder; the hole sifts up below
    while (i > 0) {
      const size_t parent = (i - 1) / ARITY;
      if (!EventKeyBefore(key, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = key;
  }

  bool PeekTop(EventKey* out) override {
    if (heap_.empty()) {
      return false;
    }
    *out = heap_.front();
    return true;
  }

  // Removes and returns the earliest key. Undefined on an empty heap.
  EventKey PopTop() override {
    const EventKey top = heap_.front();
    const EventKey last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n > 0) {
      size_t i = 0;
      for (;;) {
        const size_t first = ARITY * i + 1;
        if (first >= n) {
          break;
        }
        size_t best = first;
        const size_t end = first + ARITY < n ? first + ARITY : n;
        for (size_t c = first + 1; c < end; ++c) {
          if (EventKeyBefore(heap_[c], heap_[best])) {
            best = c;
          }
        }
        if (!EventKeyBefore(heap_[best], last)) {
          break;
        }
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  // O(1); keeps capacity so a cleared simulator can refill without growing.
  void Clear() override { heap_.clear(); }

 private:
  std::vector<EventKey> heap_;
};

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_EVENT_HEAP_H_
