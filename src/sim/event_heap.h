// Binary min-heap over trivially copyable 24-byte event keys.
//
// The simulator's heap used to hold full events (closure + cancellation
// flag, ~64 bytes with non-trivial move constructors); every sift moved
// them log2(n) times. Here the heap orders small keys that point into the
// simulator's slot slab: sifts are plain word copies and the payload never
// moves — which matters when lazily-deleted keys run the heap hundreds of
// thousands of entries deep.
//
// Ordering is (at, seq): `seq` is assigned in scheduling order, which
// preserves the deterministic same-instant tie-break the switch model
// relies on. ARITY is a tuning knob (2 measured best on both the shallow
// executor-pull heaps and the ~10^6-entry lazy-deletion heaps; 4 was tried
// and only helped the deep case).

#ifndef DRACONIS_SIM_EVENT_HEAP_H_
#define DRACONIS_SIM_EVENT_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.h"

namespace draconis::sim {

struct EventKey {
  TimeNs at = 0;     // absolute firing time
  uint64_t seq = 0;  // global scheduling sequence
  uint32_t slot = 0;  // slab slot holding the payload
};

class EventHeap {
  static constexpr size_t ARITY = 2;

 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // The earliest key. Undefined on an empty heap.
  const EventKey& top() const { return heap_.front(); }

  void Push(EventKey key) {
    size_t i = heap_.size();
    heap_.push_back(key);  // placeholder; the hole sifts up below
    while (i > 0) {
      const size_t parent = (i - 1) / ARITY;
      if (!Before(key, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = key;
  }

  // Removes and returns the earliest key. Undefined on an empty heap.
  EventKey PopTop() {
    const EventKey top = heap_.front();
    const EventKey last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n > 0) {
      size_t i = 0;
      for (;;) {
        const size_t first = ARITY * i + 1;
        if (first >= n) {
          break;
        }
        size_t best = first;
        const size_t end = first + ARITY < n ? first + ARITY : n;
        for (size_t c = first + 1; c < end; ++c) {
          if (Before(heap_[c], heap_[best])) {
            best = c;
          }
        }
        if (!Before(heap_[best], last)) {
          break;
        }
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  // O(1); keeps capacity so a cleared simulator can refill without growing.
  void Clear() { heap_.clear(); }

 private:
  static bool Before(const EventKey& a, const EventKey& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  }

  std::vector<EventKey> heap_;
};

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_EVENT_HEAP_H_
