#include "sim/ladder_queue.h"

#include <algorithm>
#include <limits>

namespace draconis::sim {
namespace {

// Rung horizons near the far end of TimeNs must not wrap.
TimeNs SaturatingAdd(TimeNs base, TimeNs delta) {
  const TimeNs sum = base + delta;
  return sum < base ? std::numeric_limits<TimeNs>::max() : sum;
}

}  // namespace

void LadderQueue::PushTop(EventKey key) {
  if (top_.empty()) {
    top_min_ = top_max_ = key.at;
  } else {
    top_min_ = std::min(top_min_, key.at);
    top_max_ = std::max(top_max_, key.at);
  }
  top_.push_back(key);
}

void LadderQueue::Clear() {
  live_ = 0;
  bottom_.clear();
  bottom_next_ = 0;
  bottom_end_ = 0;
  for (size_t r = 0; r < depth_; ++r) {
    for (std::vector<EventKey>& bucket : rungs_[r].buckets) {
      bucket.clear();
    }
    rungs_[r].count = 0;
  }
  depth_ = 0;
  top_.clear();
}

bool LadderQueue::EnsureBottom() {
  if (bottom_next_ < bottom_.size()) {
    return true;
  }
  bottom_.clear();
  bottom_next_ = 0;
  for (;;) {
    if (depth_ == 0) {
      if (top_.empty()) {
        return false;
      }
      SpreadTop();
      continue;
    }
    Rung& rung = rungs_[depth_ - 1];
    if (rung.count == 0) {
      // Rung exhausted: everything up to its horizon has been drained, so
      // later pushes below rung.end belong in the bottom.
      bottom_end_ = rung.end;
      --depth_;
      continue;
    }
    size_t cur = rung.cur;
    while (rung.buckets[cur].empty()) {
      ++cur;
    }
    std::vector<EventKey>& bucket = rung.buckets[cur];
    const TimeNs bucket_start =
        SaturatingAdd(rung.start, static_cast<TimeNs>(cur) << rung.width_log2);
    const TimeNs bucket_end =
        SaturatingAdd(bucket_start, TimeNs{1} << rung.width_log2);
    rung.count -= bucket.size();
    rung.cur = cur + 1;
    if (rung.width_log2 == 0 || bucket.size() <= kSortThreshold) {
      // Sparse (or 1 ns wide, the recursion floor): batch-sort into the
      // bottom. swap() hands the bucket the old bottom's capacity back.
      bottom_.swap(bucket);
      bottom_end_ = bucket_end;
      // Gather further consecutive sparse buckets into the same batch:
      // lightly-loaded queues would otherwise pay the refill fixed cost
      // (swap, sort prologue, this walk) every few pops. Consecutive
      // buckets partition a contiguous window, so sorting the union is
      // still exactly the global (at, seq) order for that window.
      while (bottom_.size() < kSortThreshold && rung.count > 0) {
        size_t next = rung.cur;
        while (rung.buckets[next].empty()) {
          ++next;
        }
        std::vector<EventKey>& more = rung.buckets[next];
        if (more.size() > kSortThreshold && rung.width_log2 != 0) {
          break;  // dense: leave it for the re-spread path
        }
        rung.count -= more.size();
        rung.cur = next + 1;
        bottom_.insert(bottom_.end(), more.begin(), more.end());
        more.clear();
        bottom_end_ = SaturatingAdd(
            rung.start, static_cast<TimeNs>(next + 1) << rung.width_log2);
      }
      // 1 ns buckets are sorted by construction (ascending seq within one
      // instant, ascending time across the gathered run) — see kWheelSpan.
      if (rung.width_log2 != 0) {
        std::sort(bottom_.begin(), bottom_.end(), EventKeyBefore);
      }
      return true;
    }
    // Dense: re-spread one level finer and keep walking. The rung reference
    // dies here — SpawnRung may grow rungs_.
    spread_scratch_.swap(bucket);
    const int parent_width_log2 = rung.width_log2;
    SpawnRung(bucket_start, parent_width_log2);
    bottom_end_ = bucket_start;
  }
}

void LadderQueue::SpawnRung(TimeNs start, int parent_width_log2) {
  // Parents within the wheel span whose keys are dense enough (the drain
  // walks every empty slot, so >= 1 key per 16 slots) skip the
  // intermediate levels and go straight to sorted-by-construction 1 ns
  // buckets.
  int width_log2;
  if (parent_width_log2 <= kRungBucketsLog2) {
    width_log2 = 0;
  } else if (parent_width_log2 <= kWheelSpanLog2 &&
             spread_scratch_.size() >=
                 (size_t{1} << (parent_width_log2 - 4))) {
    width_log2 = 0;
  } else {
    width_log2 = parent_width_log2 - kRungBucketsLog2;
  }
  const size_t nbuckets = size_t{1} << (parent_width_log2 - width_log2);
  if (depth_ == rungs_.size()) {
    rungs_.emplace_back();
  }
  Rung& rung = rungs_[depth_];
  ++depth_;
  rung.start = start;
  rung.end = SaturatingAdd(start, TimeNs{1} << parent_width_log2);
  rung.width_log2 = width_log2;
  rung.cur = 0;
  rung.count = spread_scratch_.size();
  if (rung.buckets.size() < nbuckets) {
    rung.buckets.resize(nbuckets);
  }
  // Buckets past nbuckets may survive from the pooled rung's previous life;
  // they are empty, and cur never reaches them while count > 0.
  for (const EventKey& key : spread_scratch_) {
    rung.buckets[static_cast<size_t>(key.at - start) >> width_log2].push_back(
        key);
  }
  spread_scratch_.clear();
}

void LadderQueue::SpreadTop() {
  // Size bucket width to the actual min..max span so sparse far-future sets
  // (a handful of timeouts ms ahead) land in distinct buckets — but cover
  // kCoverageFactor times the span: steady-state workloads keep scheduling
  // into the same horizon while the rung drains, and the extra coverage
  // lets those pushes land in rung buckets directly instead of cycling
  // through the top again on the next epoch.
  const TimeNs base_span = top_max_ - top_min_ + 1;
  const TimeNs span =
      base_span > std::numeric_limits<TimeNs>::max() / kCoverageFactor
          ? std::numeric_limits<TimeNs>::max()
          : base_span * kCoverageFactor;
  // Short spans with dense-enough keys (>= 1 per 16 slots; the drain walks
  // every empty slot) go straight to the 1 ns timer wheel, which never
  // sorts; longer or sparser ones get kRungBuckets coarse buckets refined
  // lazily.
  int width_log2 = 0;
  if (span > kWheelSpan ||
      top_.size() < static_cast<size_t>(span) / 16) {
    width_log2 = 0;
    while (width_log2 < 56 &&
           (static_cast<TimeNs>(kRungBuckets) << width_log2) < span) {
      ++width_log2;
    }
  }
  if (rungs_.empty()) {
    rungs_.emplace_back();
  }
  // The bucket cap is kWheelSpan for the wheel and kRungBuckets otherwise,
  // unless the width cap above kicked in (a span of centuries); sizing from
  // the real max index keeps the spread in bounds either way.
  const size_t cap =
      width_log2 == 0 ? static_cast<size_t>(kWheelSpan) : kRungBuckets;
  const size_t nbuckets = std::max(
      (static_cast<size_t>(top_max_ - top_min_) >> width_log2) + 1,
      std::min<size_t>(cap, (static_cast<size_t>(span) >> width_log2) + 1));
  Rung& rung = rungs_[0];
  depth_ = 1;
  rung.start = top_min_;
  rung.end = SaturatingAdd(top_min_, static_cast<TimeNs>(nbuckets)
                                         << width_log2);
  rung.width_log2 = width_log2;
  rung.cur = 0;
  rung.count = top_.size();
  if (rung.buckets.size() < nbuckets) {
    rung.buckets.resize(nbuckets);
  }
  for (const EventKey& key : top_) {
    rung.buckets[static_cast<size_t>(key.at - top_min_) >> width_log2]
        .push_back(key);
  }
  top_.clear();
  bottom_end_ = top_min_;
}

}  // namespace draconis::sim
