// The pluggable event-queue API of the simulator.
//
// The engine separates *ordering* from *payload*: pending events live in the
// simulator's slot slab, and the queue backend orders trivially copyable
// 24-byte `EventKey` records that point into it. A backend is anything that
// can replay keys in exact (at, seq) order — the tie-break contract every
// determinism golden in tests/ pins:
//
//   key A fires before key B  iff  A.at < B.at, or A.at == B.at && A.seq < B.seq
//
// `seq` is assigned in scheduling order, so same-instant events fire in the
// order they were scheduled. Both backends implement this contract exactly;
// tests/event_queue_property_test.cc proves them against a naive oracle and
// against each other, and tests/determinism_test.cc proves heap and ladder
// runs of a full fig-5a-shaped experiment are bit-identical.
//
// Backends:
//  - `EventHeap` (event_heap.h): binary min-heap. O(log n) push/pop, no
//    tuning knobs, the reference implementation.
//  - `LadderQueue` (ladder_queue.h): ladder/calendar queue. O(1) amortized
//    push, events bucketed by time into rungs and batch-sorted just before
//    they fire. The default — see docs/simulation.md for when it wins.
//
// The interface is virtual so tests and tools can drive any backend through
// one pointer; the `Simulator` holds both backends as concrete `final`
// members and dispatches on an enum, so its hot path is fully devirtualized.

#ifndef DRACONIS_SIM_EVENT_QUEUE_H_
#define DRACONIS_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace draconis::sim {

struct EventKey {
  TimeNs at = 0;      // absolute firing time
  uint64_t seq = 0;   // global scheduling sequence
  uint32_t slot = 0;  // slab slot holding the payload
};

// The (at, seq) firing-order contract. `slot` never participates.
inline bool EventKeyBefore(const EventKey& a, const EventKey& b) {
  if (a.at != b.at) {
    return a.at < b.at;
  }
  return a.seq < b.seq;
}

// Which queue backend a Simulator runs on. Selected at construction; both
// produce bit-identical execution order.
enum class QueueBackend {
  kLadder,  // ladder/calendar queue (default)
  kHeap,    // binary min-heap (reference)
};

inline constexpr QueueBackend kDefaultQueueBackend = QueueBackend::kLadder;

// Flag spelling ("ladder", "heap").
const char* QueueBackendName(QueueBackend backend);

// Parses a backend name into *out. Returns false on an unknown name.
bool QueueBackendFromName(const std::string& name, QueueBackend* out);

// All backends, default first (the order bench --sim-queue choices show in).
std::vector<QueueBackend> AllQueueBackends();

// Orders EventKeys for the simulator. Push and PopTop may interleave freely;
// PeekTop may reorganize internal storage but never changes the pop order.
// Keys are opaque: a backend must not inspect `slot` or drop keys (the
// simulator cancels lazily, by letting a stale key surface and discarding
// it, so every pushed key must eventually pop).
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual bool empty() const = 0;
  virtual size_t size() const = 0;

  virtual void Push(EventKey key) = 0;

  // Writes the earliest key into *out without removing it. Returns false on
  // an empty queue.
  virtual bool PeekTop(EventKey* out) = 0;

  // Removes and returns the earliest key. Undefined on an empty queue.
  virtual EventKey PopTop() = 0;

  // Drops every key; keeps capacity so a cleared queue refills without
  // growing.
  virtual void Clear() = 0;
};

}  // namespace draconis::sim

#endif  // DRACONIS_SIM_EVENT_QUEUE_H_
