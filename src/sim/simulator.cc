#include "sim/simulator.h"

#include <utility>

namespace draconis::sim {

void EventHandle::Cancel() {
  if (cancelled_ != nullptr) {
    *cancelled_ = true;
  }
}

bool EventHandle::pending() const { return cancelled_ != nullptr && !*cancelled_; }

void Simulator::Push(TimeNs at, std::function<void()> fn, std::shared_ptr<bool> cancelled) {
  DRACONIS_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
}

void Simulator::At(TimeNs at, std::function<void()> fn) { Push(at, std::move(fn), nullptr); }

void Simulator::After(TimeNs delay, std::function<void()> fn) {
  DRACONIS_CHECK(delay >= 0);
  Push(now_ + delay, std::move(fn), nullptr);
}

EventHandle Simulator::CancellableAt(TimeNs at, std::function<void()> fn) {
  auto flag = std::make_shared<bool>(false);
  Push(at, std::move(fn), flag);
  return EventHandle(std::move(flag));
}

EventHandle Simulator::CancellableAfter(TimeNs delay, std::function<void()> fn) {
  DRACONIS_CHECK(delay >= 0);
  return CancellableAt(now_ + delay, std::move(fn));
}

uint64_t Simulator::RunUntil(TimeNs until) {
  uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    // The event's closure may schedule more events, which can reallocate the
    // heap, so move the event out before popping.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.cancelled != nullptr && *ev.cancelled) {
      continue;
    }
    if (ev.cancelled != nullptr) {
      *ev.cancelled = true;  // consumed; handle now reports !pending()
    }
    now_ = ev.at;
    ev.fn();
    ++ran;
    ++executed_;
  }
  if (now_ < until) {
    now_ = until;
  }
  return ran;
}

uint64_t Simulator::RunAll() {
  uint64_t ran = 0;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.cancelled != nullptr && *ev.cancelled) {
      continue;
    }
    if (ev.cancelled != nullptr) {
      *ev.cancelled = true;
    }
    now_ = ev.at;
    ev.fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

void Simulator::Clear() {
  while (!queue_.empty()) {
    queue_.pop();
  }
}

}  // namespace draconis::sim
