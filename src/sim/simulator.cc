#include "sim/simulator.h"

#include <utility>

namespace draconis::sim {

// --- EventHandle -------------------------------------------------------------

void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelHandle(*this);
  }
}

bool EventHandle::pending() const { return sim_ != nullptr && sim_->HandlePending(*this); }

// --- Timer -------------------------------------------------------------------

Timer::~Timer() {
  if (sim_ != nullptr) {
    sim_->UnregisterTimer(*this);
  }
}

void Timer::Bind(Simulator* sim, std::function<void()> fn) {
  DRACONIS_CHECK_MSG(sim_ == nullptr, "Timer bound twice");
  DRACONIS_CHECK(sim != nullptr && fn != nullptr);
  sim_ = sim;
  fn_ = std::move(fn);
  slot_ = sim_->RegisterTimer(this);
}

// --- Simulator: slab ---------------------------------------------------------

void Simulator::FreeSlot(uint32_t slot) {
  Payload& p = payloads_[slot];
  p.fn = nullptr;
  p.timer = nullptr;
  gens_[slot] = 0;
  p.next_free = free_head_;
  free_head_ = slot;
}

// --- Simulator: run loop -----------------------------------------------------

// Monomorphized per backend (Queue is a concrete `final` class, so the
// Peek/Pop calls inline) — the enum dispatch happens once per Run, not per
// event.
template <typename Queue>
uint64_t Simulator::RunLoop(Queue& queue, bool bounded, TimeNs until) {
  uint64_t ran = 0;
  EventKey key;
  while (queue.PeekTop(&key)) {
    if (bounded && key.at > until) {
      break;
    }
    queue.PopTop();
    if (gens_[key.slot] != key.seq + 1) {
      continue;  // cancelled, or a re-armed timer superseded this key
    }
    gens_[key.slot] = 0;
    --live_;
    now_ = key.at;
    ++ran;
    ++executed_;
    Payload& p = payloads_[key.slot];
    if (p.timer != nullptr) {
      // Persistent slot: the callback lives in the Timer (stable storage)
      // and may re-arm it. Don't touch the slot after the call — the closure
      // may schedule events and grow the slab.
      Timer* timer = p.timer;
      timer->fn_();
    } else {
      std::function<void()> fn = std::move(p.fn);
      // Minimal free: `fn` was just moved out (leaving the slot's empty) and
      // one-shot slots never hold a timer, so only relink the freelist.
      p.next_free = free_head_;
      free_head_ = key.slot;
      fn();
    }
  }
  if (bounded && now_ < until) {
    now_ = until;
  }
  return ran;
}

uint64_t Simulator::Run(bool bounded, TimeNs until) {
  if (backend_ == QueueBackend::kLadder) {
    return RunLoop(ladder_, bounded, until);
  }
  return RunLoop(heap_, bounded, until);
}

uint64_t Simulator::RunUntil(TimeNs until) { return Run(/*bounded=*/true, until); }

uint64_t Simulator::RunAll() { return Run(/*bounded=*/false, 0); }

void Simulator::Clear() {
  if (backend_ == QueueBackend::kLadder) {
    ladder_.Clear();
  } else {
    heap_.Clear();
  }
  for (uint32_t slot = 0; slot < gens_.size(); ++slot) {
    if (gens_[slot] == 0) {
      continue;
    }
    gens_[slot] = 0;
    if (payloads_[slot].timer == nullptr) {
      FreeSlot(slot);
    }
  }
  live_ = 0;
}

// --- Simulator: handle plumbing ----------------------------------------------

void Simulator::CancelHandle(const EventHandle& handle) {
  if (gens_[handle.slot_] == handle.gen_ + 1) {
    --live_;
    FreeSlot(handle.slot_);  // releases the closure; the queue key goes stale
  }
}

bool Simulator::HandlePending(const EventHandle& handle) const {
  return gens_[handle.slot_] == handle.gen_ + 1;
}

// --- Simulator: timer plumbing -----------------------------------------------

uint32_t Simulator::RegisterTimer(Timer* timer) {
  const uint32_t slot = AllocSlot();
  payloads_[slot].timer = timer;
  return slot;
}

void Simulator::UnregisterTimer(const Timer& timer) {
  if (gens_[timer.slot_] != 0) {
    --live_;
  }
  FreeSlot(timer.slot_);
}

}  // namespace draconis::sim
