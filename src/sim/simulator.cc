#include "sim/simulator.h"

#include <utility>

namespace draconis::sim {

// --- EventHandle -------------------------------------------------------------

void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelHandle(*this);
  }
}

bool EventHandle::pending() const { return sim_ != nullptr && sim_->HandlePending(*this); }

// --- Timer -------------------------------------------------------------------

Timer::~Timer() {
  if (sim_ != nullptr) {
    sim_->UnregisterTimer(*this);
  }
}

void Timer::Bind(Simulator* sim, std::function<void()> fn) {
  DRACONIS_CHECK_MSG(sim_ == nullptr, "Timer bound twice");
  DRACONIS_CHECK(sim != nullptr && fn != nullptr);
  sim_ = sim;
  fn_ = std::move(fn);
  slot_ = sim_->RegisterTimer(this);
}

void Timer::ScheduleAt(TimeNs at) {
  DRACONIS_CHECK_MSG(sim_ != nullptr, "Timer used before Bind()");
  sim_->ArmTimer(*this, at);
}

void Timer::ScheduleAfter(TimeNs delay) {
  DRACONIS_CHECK_MSG(sim_ != nullptr, "Timer used before Bind()");
  DRACONIS_CHECK(delay >= 0);
  sim_->ArmTimer(*this, sim_->Now() + delay);
}

void Timer::Cancel() {
  if (sim_ != nullptr) {
    sim_->DisarmTimer(*this);
  }
}

bool Timer::pending() const { return sim_ != nullptr && sim_->TimerPending(*this); }

// --- Simulator: slab ---------------------------------------------------------

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  s.timer = nullptr;
  s.live_gen = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

// --- Simulator: scheduling ---------------------------------------------------

EventKey Simulator::Push(TimeNs at, std::function<void()> fn) {
  DRACONIS_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  const uint64_t seq = next_seq_++;
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.live_gen = seq + 1;
  s.fn = std::move(fn);
  heap_.Push(EventKey{at, seq, slot});
  ++live_;
  return EventKey{at, seq, slot};
}

void Simulator::At(TimeNs at, std::function<void()> fn) { Push(at, std::move(fn)); }

void Simulator::After(TimeNs delay, std::function<void()> fn) {
  DRACONIS_CHECK(delay >= 0);
  Push(now_ + delay, std::move(fn));
}

EventHandle Simulator::CancellableAt(TimeNs at, std::function<void()> fn) {
  const EventKey key = Push(at, std::move(fn));
  return EventHandle(this, key.slot, key.seq);
}

EventHandle Simulator::CancellableAfter(TimeNs delay, std::function<void()> fn) {
  DRACONIS_CHECK(delay >= 0);
  return CancellableAt(now_ + delay, std::move(fn));
}

// --- Simulator: run loop -----------------------------------------------------

uint64_t Simulator::Run(bool bounded, TimeNs until) {
  uint64_t ran = 0;
  while (!heap_.empty()) {
    if (bounded && heap_.top().at > until) {
      break;
    }
    const EventKey key = heap_.PopTop();
    Slot& s = slots_[key.slot];
    if (s.live_gen != key.seq + 1) {
      continue;  // cancelled, or a re-armed timer superseded this key
    }
    s.live_gen = 0;
    --live_;
    now_ = key.at;
    ++ran;
    ++executed_;
    if (s.timer != nullptr) {
      // Persistent slot: the callback lives in the Timer (stable storage)
      // and may re-arm it. Don't touch `s` after the call — the closure may
      // schedule events and grow the slab.
      Timer* timer = s.timer;
      timer->fn_();
    } else {
      std::function<void()> fn = std::move(s.fn);
      // Minimal free: `fn` was just moved out (leaving the slot's empty) and
      // one-shot slots never hold a timer, so only relink the freelist.
      s.next_free = free_head_;
      free_head_ = key.slot;
      fn();
    }
  }
  if (bounded && now_ < until) {
    now_ = until;
  }
  return ran;
}

uint64_t Simulator::RunUntil(TimeNs until) { return Run(/*bounded=*/true, until); }

uint64_t Simulator::RunAll() { return Run(/*bounded=*/false, 0); }

void Simulator::Clear() {
  heap_.Clear();
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    Slot& s = slots_[slot];
    if (s.live_gen == 0) {
      continue;
    }
    s.live_gen = 0;
    if (s.timer == nullptr) {
      FreeSlot(slot);
    }
  }
  live_ = 0;
}

// --- Simulator: handle plumbing ----------------------------------------------

void Simulator::CancelHandle(const EventHandle& handle) {
  Slot& s = slots_[handle.slot_];
  if (s.live_gen == handle.gen_ + 1) {
    --live_;
    FreeSlot(handle.slot_);  // releases the closure; the heap key goes stale
  }
}

bool Simulator::HandlePending(const EventHandle& handle) const {
  return slots_[handle.slot_].live_gen == handle.gen_ + 1;
}

// --- Simulator: timer plumbing -----------------------------------------------

uint32_t Simulator::RegisterTimer(Timer* timer) {
  const uint32_t slot = AllocSlot();
  slots_[slot].timer = timer;
  return slot;
}

void Simulator::UnregisterTimer(const Timer& timer) {
  if (slots_[timer.slot_].live_gen != 0) {
    --live_;
  }
  FreeSlot(timer.slot_);
}

void Simulator::ArmTimer(const Timer& timer, TimeNs at) {
  DRACONIS_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  Slot& s = slots_[timer.slot_];
  if (s.live_gen == 0) {
    ++live_;
  }
  const uint64_t seq = next_seq_++;
  s.live_gen = seq + 1;  // any previously pushed key for this slot goes stale
  heap_.Push(EventKey{at, seq, timer.slot_});
}

void Simulator::DisarmTimer(const Timer& timer) {
  Slot& s = slots_[timer.slot_];
  if (s.live_gen != 0) {
    s.live_gen = 0;
    --live_;
  }
}

bool Simulator::TimerPending(const Timer& timer) const {
  return slots_[timer.slot_].live_gen != 0;
}

}  // namespace draconis::sim
