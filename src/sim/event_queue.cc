#include "sim/event_queue.h"

namespace draconis::sim {

const char* QueueBackendName(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kLadder:
      return "ladder";
    case QueueBackend::kHeap:
      return "heap";
  }
  return "unknown";
}

bool QueueBackendFromName(const std::string& name, QueueBackend* out) {
  for (QueueBackend backend : AllQueueBackends()) {
    if (name == QueueBackendName(backend)) {
      *out = backend;
      return true;
    }
  }
  return false;
}

std::vector<QueueBackend> AllQueueBackends() {
  return {QueueBackend::kLadder, QueueBackend::kHeap};
}

}  // namespace draconis::sim
