// Deploys the RackSched baseline (the RackSchedProgram on a SwitchPipeline,
// plus its two-layer workers) on a Testbed. Registered in the
// DeploymentRegistry (cluster/deployment.cc).

#ifndef DRACONIS_BASELINES_RACKSCHED_DEPLOYMENT_H_
#define DRACONIS_BASELINES_RACKSCHED_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "baselines/racksched.h"
#include "cluster/deployment.h"
#include "p4/pipeline.h"

namespace draconis::baselines {

class RackSchedDeployment : public cluster::SchedulerDeployment {
 public:
  explicit RackSchedDeployment(const cluster::ExperimentConfig& config);

  void Build(cluster::Testbed& testbed) override;
  void WireWorkers(cluster::Testbed& testbed) override;
  void ConfigureClient(cluster::ClientConfig& client) override;
  void Harvest(cluster::ExperimentResult& result) override;

 private:
  std::unique_ptr<RackSchedProgram> program_;
  std::unique_ptr<p4::SwitchPipeline> pipeline_;
  std::vector<std::unique_ptr<RackSchedWorker>> workers_;
};

cluster::DeploymentInfo RackSchedDeploymentInfo();

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_RACKSCHED_DEPLOYMENT_H_
