#include "baselines/r2p2_deployment.h"

#include <utility>

namespace draconis::baselines {

R2P2Deployment::R2P2Deployment(const cluster::ExperimentConfig& config)
    : cluster::SchedulerDeployment(config) {}

void R2P2Deployment::Build(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  R2P2Config rc;
  rc.num_executors = cfg.num_workers * cfg.executors_per_worker;
  rc.jbsq_k = cfg.jbsq_k;
  program_ = std::make_unique<R2P2Program>(rc);
  pipeline_ = std::make_unique<p4::SwitchPipeline>(testbed, program_.get(), cfg.pipeline);
  scheduler_nodes_.push_back(pipeline_->node_id());
}

void R2P2Deployment::WireWorkers(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  for (size_t w = 0; w < cfg.num_workers; ++w) {
    std::vector<size_t> slots;
    for (size_t e = 0; e < cfg.executors_per_worker; ++e) {
      slots.push_back(w * cfg.executors_per_worker + e);
    }
    workers_.push_back(std::make_unique<R2P2Worker>(&testbed, slots, static_cast<uint32_t>(w),
                                                    scheduler_nodes_[0]));
    for (size_t slot : slots) {
      program_->BindExecutor(slot, workers_.back()->node_id());
    }
  }
}

void R2P2Deployment::ConfigureClient(cluster::ClientConfig& client) {
  if (client.max_tasks_per_packet == 0) {
    client.max_tasks_per_packet = 1;  // R2P2 routes one RPC per packet
  }
}

void R2P2Deployment::Harvest(cluster::ExperimentResult& result) {
  result.switch_counters = pipeline_->counters();
  result.recirculation_share = result.switch_counters.RecirculationShare();
  result.recirc_drops = result.switch_counters.recirc_drops;

  const R2P2Counters& c = program_->counters();
  result.counters.tasks_pushed = c.tasks_pushed;
  result.counters.credit_wait_recirculations = c.credit_wait_recirculations;
  result.counters.credits = c.credits;
}

cluster::DeploymentInfo R2P2DeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kR2P2;
  info.canonical_name = "R2P2";
  info.flag_name = "r2p2";
  info.policies = {cluster::PolicyKind::kFcfs};
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<R2P2Deployment>(config);
  };
  return info;
}

}  // namespace draconis::baselines
