// Deploys the Sparrow baseline (one or more batch-sampling schedulers plus
// their late-binding workers) on a Testbed. The only multi-scheduler kind:
// num_schedulers > 1 replicates the scheduler and spreads clients across the
// replicas. Registered in the DeploymentRegistry (cluster/deployment.cc).

#ifndef DRACONIS_BASELINES_SPARROW_DEPLOYMENT_H_
#define DRACONIS_BASELINES_SPARROW_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "baselines/sparrow.h"
#include "cluster/deployment.h"

namespace draconis::baselines {

class SparrowDeployment : public cluster::SchedulerDeployment {
 public:
  explicit SparrowDeployment(const cluster::ExperimentConfig& config);

  void Build(cluster::Testbed& testbed) override;
  void WireWorkers(cluster::Testbed& testbed) override;
  void ConfigureClient(cluster::ClientConfig& client) override;
  void Harvest(cluster::ExperimentResult& result) override;

 private:
  std::vector<std::unique_ptr<SparrowScheduler>> schedulers_;
  std::vector<std::unique_ptr<SparrowWorker>> workers_;
};

cluster::DeploymentInfo SparrowDeploymentInfo();

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_SPARROW_DEPLOYMENT_H_
