#include "baselines/central_server_deployment.h"

#include <utility>

namespace draconis::baselines {

CentralServerDeployment::CentralServerDeployment(const cluster::ExperimentConfig& config,
                                                 CentralServerConfig::Transport transport)
    : cluster::PullBasedDeployment(config), transport_(transport) {}

void CentralServerDeployment::Build(cluster::Testbed& testbed) {
  CentralServerConfig sc;
  sc.transport = transport_;
  server_ = std::make_unique<CentralServerScheduler>(&testbed, sc);
  scheduler_nodes_.push_back(server_->node_id());
}

void CentralServerDeployment::Harvest(cluster::ExperimentResult& result) {
  const CentralServerCounters& c = server_->counters();
  result.counters.tasks_enqueued = c.tasks_enqueued;
  result.counters.tasks_assigned = c.tasks_assigned;
  result.counters.parked_requests = c.parked_requests;
  result.counters.queue_full_errors = c.queue_full_errors;
}

cluster::DeploymentInfo DpdkServerDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kDraconisDpdkServer;
  info.canonical_name = "Draconis-DPDK-Server";
  info.flag_name = "dpdk-server";
  info.policies = {cluster::PolicyKind::kFcfs};
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<CentralServerDeployment>(config,
                                                     CentralServerConfig::Transport::kDpdk);
  };
  return info;
}

cluster::DeploymentInfo SocketServerDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kDraconisSocketServer;
  info.canonical_name = "Draconis-Socket-Server";
  info.flag_name = "socket-server";
  info.policies = {cluster::PolicyKind::kFcfs};
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<CentralServerDeployment>(
        config, CentralServerConfig::Transport::kSocket);
  };
  return info;
}

}  // namespace draconis::baselines
