// Sparrow (SOSP '13), re-implemented from scratch with its best-performing
// variant: batch sampling with late binding, as in the paper's optimized C++
// comparison (§8 "Schedulers").
//
// For a job of m tasks the scheduler sends d*m probes (d = 2) to distinct
// workers, which enqueue *reservations*. When a reservation reaches the head
// of a worker's queue and a core is free, the worker asks the scheduler for a
// task (get_task); the scheduler hands out an unlaunched task of that job or
// a "no task" response (the late binding that cancels excess reservations).
//
// The scheduler is an ordinary server: its throughput ceiling and probe RTTs
// come from its HostProfile, and its placement quality from d-choice
// sampling — at high load reservations queue behind running tasks on the
// sampled workers (node-level blocking), which is what pushes Sparrow's tail
// to ~2 service times in the paper's Fig. 5a.

#ifndef DRACONIS_BASELINES_SPARROW_H_
#define DRACONIS_BASELINES_SPARROW_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace draconis::baselines {

struct SparrowConfig {
  size_t probe_ratio = 2;  // d: probes per task
  uint64_t seed = 11;

  // Calibrated per-message cost of the optimized C++/sockets implementation
  // (saturates around the paper's ~500 k decisions/s for one scheduler).
  static constexpr TimeNs kPacketCost = TimeNs{350};
  static constexpr TimeNs kStackLatency = TimeNs{2000};

  static net::HostProfile Profile() {
    return net::HostProfile::Socket(kPacketCost, kStackLatency);
  }
};

struct SparrowCounters {
  uint64_t probes_sent = 0;
  uint64_t tasks_launched = 0;
  uint64_t empty_get_tasks = 0;  // reservations cancelled by late binding
};

class SparrowScheduler : public net::Endpoint {
 public:
  // Registers itself on the testbed's fabric; the testbed must outlive it.
  SparrowScheduler(cluster::Testbed* testbed, const SparrowConfig& config);

  net::NodeId node_id() const { return node_id_; }

  // All candidate workers this scheduler may probe.
  void SetWorkers(std::vector<net::NodeId> workers) { workers_ = std::move(workers); }

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

  const SparrowCounters& counters() const { return counters_; }

 private:
  struct JobState {
    std::deque<net::TaskInfo> unlaunched;
    net::NodeId client = net::kInvalidNode;
  };

  static uint64_t JobKey(uint32_t uid, uint32_t jid) {
    return (static_cast<uint64_t>(uid) << 32) | jid;
  }

  void HandleSubmission(net::Packet pkt);
  void HandleGetTask(const net::Packet& pkt);

  sim::Simulator* simulator_;
  net::Network* network_;
  SparrowConfig config_;
  Rng rng_;
  net::NodeId node_id_;
  std::vector<net::NodeId> workers_;
  std::unordered_map<uint64_t, JobState> jobs_;
  SparrowCounters counters_;
};

// Worker node: a FIFO of reservations feeding `num_executors` cores; each
// core idles for one get_task round trip before running its task (late
// binding's price).
class SparrowWorker : public net::Endpoint {
 public:
  // Registers itself on the testbed's fabric; the testbed must outlive it.
  SparrowWorker(cluster::Testbed* testbed, size_t num_executors, uint32_t worker_node,
                TimeNs pickup_overhead = TimeNs{200});

  net::NodeId node_id() const { return node_id_; }

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

 private:
  struct Reservation {
    net::NodeId scheduler = net::kInvalidNode;
    uint32_t uid = 0;
    uint32_t jid = 0;
  };

  void TryDispatch();
  void FinishTask(size_t core, net::TaskInfo task, net::NodeId client);

  sim::Simulator* simulator_;
  net::Network* network_;
  cluster::MetricsHub* metrics_;
  uint32_t worker_node_;
  TimeNs pickup_overhead_;
  net::NodeId node_id_;
  std::deque<Reservation> reservations_;
  std::vector<bool> core_busy_;
  std::deque<size_t> waiting_cores_;  // cores blocked on a get_task round trip
};

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_SPARROW_H_
