#include "baselines/sparrow.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace draconis::baselines {

SparrowScheduler::SparrowScheduler(cluster::Testbed* testbed, const SparrowConfig& config)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      config_(config),
      rng_(config.seed) {
  DRACONIS_CHECK(config.probe_ratio >= 1);
  node_id_ = network_->Register(this, SparrowConfig::Profile());
}

void SparrowScheduler::HandlePacket(net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kJobSubmission:
      HandleSubmission(std::move(pkt));
      return;
    case net::OpCode::kGetTask:
      HandleGetTask(pkt);
      return;
    default:
      return;
  }
}

void SparrowScheduler::HandleSubmission(net::Packet pkt) {
  DRACONIS_CHECK_MSG(!workers_.empty(), "Sparrow scheduler has no workers configured");
  const TimeNs now = simulator_->Now();
  const uint64_t key = JobKey(pkt.uid, pkt.jid);
  JobState& job = jobs_[key];
  job.client = pkt.src;
  for (net::TaskInfo& task : pkt.tasks) {
    if (task.meta.enqueue_time < 0) {
      task.meta.enqueue_time = now;
    }
    job.unlaunched.push_back(std::move(task));
  }

  // Batch sampling: d * m probes, to distinct workers first (partial
  // Fisher-Yates); jobs larger than the cluster place additional
  // reservations round-robin so every task has somewhere to bind.
  const size_t wanted = config_.probe_ratio * pkt.tasks.size();
  std::vector<net::NodeId> pool = workers_;
  for (size_t i = 0; i < wanted; ++i) {
    net::NodeId target;
    if (i < pool.size()) {
      const size_t j = i + rng_.NextBelow(pool.size() - i);
      std::swap(pool[i], pool[j]);
      target = pool[i];
    } else {
      target = pool[i % pool.size()];
    }
    net::Packet probe;
    probe.op = net::OpCode::kProbe;
    probe.dst = target;
    probe.uid = pkt.uid;
    probe.jid = pkt.jid;
    ++counters_.probes_sent;
    network_->Send(node_id_, std::move(probe));
  }
}

void SparrowScheduler::HandleGetTask(const net::Packet& pkt) {
  auto it = jobs_.find(JobKey(pkt.uid, pkt.jid));
  if (it == jobs_.end() || it->second.unlaunched.empty()) {
    // Late binding: the job's tasks are all placed; cancel the reservation.
    ++counters_.empty_get_tasks;
    net::Packet noop;
    noop.op = net::OpCode::kNoOpTask;
    noop.dst = pkt.src;
    network_->Send(node_id_, std::move(noop));
    return;
  }
  JobState& job = it->second;
  net::TaskInfo task = std::move(job.unlaunched.front());
  job.unlaunched.pop_front();
  ++counters_.tasks_launched;

  net::Packet assignment;
  assignment.op = net::OpCode::kTaskAssignment;
  assignment.dst = pkt.src;
  assignment.tasks = {std::move(task)};
  assignment.client_addr = job.client;
  network_->Send(node_id_, std::move(assignment));

  if (job.unlaunched.empty()) {
    jobs_.erase(it);
  }
}

SparrowWorker::SparrowWorker(cluster::Testbed* testbed, size_t num_executors,
                             uint32_t worker_node, TimeNs pickup_overhead)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      metrics_(testbed->metrics()),
      worker_node_(worker_node),
      pickup_overhead_(pickup_overhead) {
  DRACONIS_CHECK(metrics_ != nullptr);
  DRACONIS_CHECK(num_executors >= 1);
  node_id_ = network_->Register(this, SparrowConfig::Profile());
  core_busy_.assign(num_executors, false);
}

void SparrowWorker::HandlePacket(net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kProbe: {
      reservations_.push_back(Reservation{pkt.src, pkt.uid, pkt.jid});
      TryDispatch();
      return;
    }
    case net::OpCode::kTaskAssignment: {
      DRACONIS_CHECK_MSG(!waiting_cores_.empty(), "assignment without a waiting core");
      const size_t core = waiting_cores_.front();
      waiting_cores_.pop_front();

      net::TaskInfo task = std::move(pkt.tasks.at(0));
      const net::NodeId client = pkt.client_addr;
      const TimeNs exec_start = simulator_->Now() + pickup_overhead_;
      if (metrics_->FirstExecution(task.id)) {
        metrics_->RecordAssignment(task, simulator_->Now());
        metrics_->RecordExecutionStart(task, exec_start);
      }
      const TimeNs done = exec_start + task.meta.exec_duration;
      metrics_->RecordBusyInterval(simulator_->Now(), done);
      simulator_->ScheduleAt(done, [this, core, task = std::move(task), client]() mutable {
        FinishTask(core, std::move(task), client);
      });
      return;
    }
    case net::OpCode::kNoOpTask: {
      // Reservation cancelled; the core goes back to idle.
      DRACONIS_CHECK_MSG(!waiting_cores_.empty(), "cancellation without a waiting core");
      const size_t core = waiting_cores_.front();
      waiting_cores_.pop_front();
      core_busy_[core] = false;
      TryDispatch();
      return;
    }
    default:
      return;
  }
}

void SparrowWorker::TryDispatch() {
  while (!reservations_.empty()) {
    size_t core = core_busy_.size();
    for (size_t c = 0; c < core_busy_.size(); ++c) {
      if (!core_busy_[c]) {
        core = c;
        break;
      }
    }
    if (core == core_busy_.size()) {
      return;  // all cores busy or waiting
    }
    Reservation res = reservations_.front();
    reservations_.pop_front();
    core_busy_[core] = true;
    waiting_cores_.push_back(core);

    net::Packet get;
    get.op = net::OpCode::kGetTask;
    get.dst = res.scheduler;
    get.uid = res.uid;
    get.jid = res.jid;
    network_->Send(node_id_, std::move(get));
  }
}

void SparrowWorker::FinishTask(size_t core, net::TaskInfo task, net::NodeId client) {
  metrics_->RecordNodeCompletion(worker_node_, simulator_->Now());
  if (client != net::kInvalidNode) {
    net::Packet notice;
    notice.op = net::OpCode::kCompletionNotice;
    notice.dst = client;
    notice.tasks = {std::move(task)};
    network_->Send(node_id_, std::move(notice));
  }
  core_busy_[core] = false;
  TryDispatch();
}

}  // namespace draconis::baselines
