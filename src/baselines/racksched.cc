#include "baselines/racksched.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace draconis::baselines {

RackSchedProgram::RackSchedProgram(const RackSchedConfig& config)
    : config_(config), rng_(config.seed) {
  DRACONIS_CHECK(config.num_nodes >= 2);
  queue_len_.assign(config.num_nodes, 0);
  worker_of_node_.assign(config.num_nodes, net::kInvalidNode);
}

void RackSchedProgram::BindNode(size_t node, net::NodeId worker) {
  DRACONIS_CHECK(node < worker_of_node_.size());
  worker_of_node_[node] = worker;
}

void RackSchedProgram::OnPass(p4::PassContext& ctx, net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kCredit: {
      const size_t node = pkt.exec_props;
      DRACONIS_CHECK(node < queue_len_.size());
      queue_len_[node] = std::max(queue_len_[node] - 1, 0);
      ++counters_.credits;
      ctx.Drop(pkt, "info_credit_consumed");
      return;
    }
    case net::OpCode::kJobSubmission:
      break;
    default:
      if (pkt.dst == ctx.SwitchNode() || pkt.dst == net::kInvalidNode) {
        ctx.Drop(pkt, "info_unroutable");
      } else {
        ctx.Emit(std::move(pkt));
      }
      return;
  }

  DRACONIS_CHECK_MSG(pkt.tasks.size() == 1,
                     "RackSched routes one task per packet; batch at the client");
  if (pkt.tasks[0].meta.enqueue_time < 0) {
    pkt.tasks[0].meta.enqueue_time = ctx.Now();
  }

  // Power-of-two choices over node queue lengths.
  const size_t n = queue_len_.size();
  const size_t a = rng_.NextBelow(n);
  size_t b = rng_.NextBelow(n - 1);
  if (b >= a) {
    ++b;
  }
  const size_t chosen = queue_len_[a] <= queue_len_[b] ? a : b;
  queue_len_[chosen] += 1;
  ++counters_.tasks_pushed;

  net::Packet push = std::move(pkt);
  push.op = net::OpCode::kTaskAssignment;
  push.client_addr = push.client_addr != net::kInvalidNode ? push.client_addr : push.src;
  push.exec_props = static_cast<uint32_t>(chosen);
  push.dst = worker_of_node_[chosen];
  DRACONIS_CHECK_MSG(push.dst != net::kInvalidNode, "node not bound to a worker");
  ctx.Emit(std::move(push));
}

RackSchedWorker::RackSchedWorker(cluster::Testbed* testbed, size_t num_executors,
                                 uint32_t worker_node, net::NodeId scheduler,
                                 TimeNs dispatch_overhead, TimeNs pickup_overhead,
                                 IntraNodePolicy policy)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      metrics_(testbed->metrics()),
      worker_node_(worker_node),
      scheduler_(scheduler),
      dispatch_overhead_(dispatch_overhead),
      pickup_overhead_(pickup_overhead),
      policy_(policy) {
  DRACONIS_CHECK(metrics_ != nullptr);
  DRACONIS_CHECK(num_executors >= 1);
  node_id_ = network_->Register(this, net::HostProfile::Dpdk(TimeNs{150}));
  core_busy_.assign(num_executors, false);
}

void RackSchedWorker::HandlePacket(net::Packet pkt) {
  if (pkt.op != net::OpCode::kTaskAssignment) {
    return;
  }
  if (policy_ == IntraNodePolicy::kProcessorSharing) {
    // Admission is delayed by the dispatcher's overhead, then the task joins
    // the sharing pool immediately (preemptive: no queueing behind peers).
    simulator_->ScheduleAfter(dispatch_overhead_ + pickup_overhead_,
                      [this, pkt = std::move(pkt)]() mutable { PsAdmit(std::move(pkt)); });
    return;
  }
  queue_.push_back(std::move(pkt));
  TryDispatch();
}

double RackSchedWorker::PsRate() const {
  if (ps_tasks_.empty()) {
    return 1.0;
  }
  const double cores = static_cast<double>(core_busy_.size());
  const double tasks = static_cast<double>(ps_tasks_.size());
  return tasks <= cores ? 1.0 : cores / tasks;
}

void RackSchedWorker::PsAdmit(net::Packet pkt) {
  net::TaskInfo task = std::move(pkt.tasks.at(0));
  const TimeNs now = simulator_->Now();
  if (metrics_->FirstExecution(task.id)) {
    metrics_->RecordAssignment(task, now);
    metrics_->RecordExecutionStart(task, now);
  }
  // Age the pool to `now` at the old rate before the membership changes.
  PsReschedule();
  PsTask entry;
  entry.remaining = static_cast<double>(task.meta.exec_duration);
  entry.client = pkt.client_addr;
  entry.task = std::move(task);
  ps_tasks_.push_back(std::move(entry));
  PsReschedule();
}

void RackSchedWorker::PsReschedule() {
  const TimeNs now = simulator_->Now();
  const double rate = PsRate();
  const double aged = static_cast<double>(now - ps_last_update_) * rate;
  ps_last_update_ = now;

  // Age everyone, completing any task whose work ran out.
  size_t next = ~size_t{0};
  double min_remaining = 0.0;
  for (size_t i = 0; i < ps_tasks_.size();) {
    ps_tasks_[i].remaining -= aged;
    if (ps_tasks_[i].remaining <= 0.5) {
      PsTask done = std::move(ps_tasks_[i]);
      ps_tasks_[i] = std::move(ps_tasks_.back());
      ps_tasks_.pop_back();
      PsComplete(std::move(done.task), done.client);
      continue;  // re-examine the element swapped into slot i
    }
    if (next == ~size_t{0} || ps_tasks_[i].remaining < min_remaining) {
      next = i;
      min_remaining = ps_tasks_[i].remaining;
    }
    ++i;
  }

  ps_completion_.Cancel();
  if (next != ~size_t{0}) {
    // The earliest finisher completes after remaining / (possibly new) rate.
    const auto wait = static_cast<TimeNs>(min_remaining / PsRate()) + 1;
    ps_completion_ =
        simulator_->ScheduleAfter(wait, [this] { PsReschedule(); }, sim::kCancellable);
  }
}

void RackSchedWorker::PsComplete(net::TaskInfo task, net::NodeId client) {
  metrics_->RecordNodeCompletion(worker_node_, simulator_->Now());

  net::Packet credit;
  credit.op = net::OpCode::kCredit;
  credit.dst = scheduler_;
  credit.exec_props = worker_node_;
  network_->Send(node_id_, std::move(credit));

  if (client != net::kInvalidNode) {
    net::Packet notice;
    notice.op = net::OpCode::kCompletionNotice;
    notice.dst = client;
    notice.tasks = {std::move(task)};
    network_->Send(node_id_, std::move(notice));
  }
}

void RackSchedWorker::TryDispatch() {
  if (queue_.empty()) {
    return;
  }
  for (size_t core = 0; core < core_busy_.size(); ++core) {
    if (core_busy_[core]) {
      continue;
    }
    net::Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    core_busy_[core] = true;

    net::TaskInfo task = std::move(pkt.tasks.at(0));
    const net::NodeId client = pkt.client_addr;
    // Intra-node scheduling adds its dispatch overhead before service starts.
    const TimeNs exec_start = simulator_->Now() + dispatch_overhead_ + pickup_overhead_;
    if (metrics_->FirstExecution(task.id)) {
      metrics_->RecordAssignment(task, simulator_->Now());
      metrics_->RecordExecutionStart(task, exec_start);
    }
    const TimeNs done = exec_start + task.meta.exec_duration;
    metrics_->RecordBusyInterval(simulator_->Now(), done);
    simulator_->ScheduleAt(done, [this, core, task = std::move(task), client]() mutable {
      FinishTask(core, std::move(task), client);
    });
    if (queue_.empty()) {
      return;
    }
  }
}

void RackSchedWorker::FinishTask(size_t core, net::TaskInfo task, net::NodeId client) {
  metrics_->RecordNodeCompletion(worker_node_, simulator_->Now());

  net::Packet credit;
  credit.op = net::OpCode::kCredit;
  credit.dst = scheduler_;
  credit.exec_props = worker_node_;
  network_->Send(node_id_, std::move(credit));

  if (client != net::kInvalidNode) {
    net::Packet notice;
    notice.op = net::OpCode::kCompletionNotice;
    notice.dst = client;
    notice.tasks = {std::move(task)};
    network_->Send(node_id_, std::move(notice));
  }

  core_busy_[core] = false;
  TryDispatch();
}

}  // namespace draconis::baselines
