// Draconis-Socket-Server and Draconis-DPDK-Server (paper §8, "Schedulers").
//
// A server-based scheduler that speaks the Draconis protocol — central FCFS
// queue, pull-based executors — but runs on a commodity machine instead of a
// switch. Its performance ceiling comes from per-packet CPU cost, modeled by
// the endpoint's HostProfile. Being a server, it has none of the switch's
// restrictions: the queue is ordinary memory, and instead of answering an
// empty-queue pull with a no-op (the switch must; it cannot hold packets),
// the server parks the request and answers the moment a task arrives.

#ifndef DRACONIS_BASELINES_CENTRAL_SERVER_H_
#define DRACONIS_BASELINES_CENTRAL_SERVER_H_

#include <cstdint>
#include <deque>

#include "cluster/testbed.h"
#include "common/time.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "trace/recorder.h"

namespace draconis::baselines {

struct CentralServerConfig {
  enum class Transport { kDpdk, kSocket };
  Transport transport = Transport::kDpdk;
  size_t queue_capacity = 1u << 20;  // server RAM is plentiful

  // Calibrated per-packet costs (DESIGN.md §4): a no-op scheduling decision
  // costs one rx + one tx, so DPDK saturates near 1/(2 x 450 ns) ~ 1.1 M
  // decisions/s (paper Fig. 5b) and sockets near 400 k; with the full
  // submission/ack/completion/notice/assignment exchange (5 packets per
  // task) the socket server saturates at ~160 ktps, matching the paper's
  // "systems that use POSIX sockets cannot support more than 160 ktps".
  static constexpr TimeNs kDpdkPacketCost = TimeNs{450};
  static constexpr TimeNs kSocketPacketCost = TimeNs{1250};
  static constexpr TimeNs kSocketStackLatency = TimeNs{3000};

  net::HostProfile Profile() const {
    return transport == Transport::kDpdk
               ? net::HostProfile::Dpdk(kDpdkPacketCost)
               : net::HostProfile::Socket(kSocketPacketCost, kSocketStackLatency);
  }
};

struct CentralServerCounters {
  uint64_t tasks_enqueued = 0;
  uint64_t tasks_assigned = 0;
  uint64_t parked_requests = 0;  // pulls that waited for a task
  uint64_t queue_full_errors = 0;
};

class CentralServerScheduler : public net::Endpoint {
 public:
  // Registers itself on the testbed's fabric and picks up its recorder. The
  // testbed must outlive the scheduler.
  CentralServerScheduler(cluster::Testbed* testbed, const CentralServerConfig& config);

  net::NodeId node_id() const { return node_id_; }
  const CentralServerCounters& counters() const { return counters_; }
  size_t queue_depth() const { return queue_.size(); }

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

 private:
  struct QueuedTask {
    net::TaskInfo task;
    net::NodeId client;
  };

  void HandleSubmission(net::Packet pkt);
  void HandleRequest(const net::Packet& pkt);

  void AssignTo(net::NodeId executor);

  sim::Simulator* simulator_;
  net::Network* network_;
  trace::Recorder* recorder_ = nullptr;
  CentralServerConfig config_;
  net::NodeId node_id_;
  std::deque<QueuedTask> queue_;
  std::deque<net::NodeId> waiting_executors_;
  CentralServerCounters counters_;
};

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_CENTRAL_SERVER_H_
