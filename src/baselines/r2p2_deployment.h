// Deploys the R2P2 JBSQ(k) baseline (the R2P2Program on a SwitchPipeline,
// plus its push-based workers) on a Testbed. Registered in the
// DeploymentRegistry (cluster/deployment.cc).

#ifndef DRACONIS_BASELINES_R2P2_DEPLOYMENT_H_
#define DRACONIS_BASELINES_R2P2_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "baselines/r2p2.h"
#include "cluster/deployment.h"
#include "p4/pipeline.h"

namespace draconis::baselines {

class R2P2Deployment : public cluster::SchedulerDeployment {
 public:
  explicit R2P2Deployment(const cluster::ExperimentConfig& config);

  void Build(cluster::Testbed& testbed) override;
  void WireWorkers(cluster::Testbed& testbed) override;
  void ConfigureClient(cluster::ClientConfig& client) override;
  void Harvest(cluster::ExperimentResult& result) override;

 private:
  std::unique_ptr<R2P2Program> program_;
  std::unique_ptr<p4::SwitchPipeline> pipeline_;
  std::vector<std::unique_ptr<R2P2Worker>> workers_;
};

cluster::DeploymentInfo R2P2DeploymentInfo();

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_R2P2_DEPLOYMENT_H_
