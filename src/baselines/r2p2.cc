#include "baselines/r2p2.h"

#include <utility>

#include "common/check.h"

namespace draconis::baselines {

R2P2Program::R2P2Program(const R2P2Config& config) : config_(config) {
  DRACONIS_CHECK(config.num_executors > 0 && config.jbsq_k >= 1);
  worker_of_slot_.assign(config.num_executors, net::kInvalidNode);
  outstanding_.assign(config.num_executors, 0);
  stale_view_.assign(config.num_executors, 0);
}

void R2P2Program::BindExecutor(size_t slot, net::NodeId worker) {
  DRACONIS_CHECK(slot < worker_of_slot_.size());
  worker_of_slot_[slot] = worker;
}

size_t R2P2Program::cp_credits() const {
  size_t free = 0;
  for (uint32_t o : outstanding_) {
    free += config_.jbsq_k - o;
  }
  return free;
}

void R2P2Program::OnPass(p4::PassContext& ctx, net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kCredit: {
      DRACONIS_CHECK(pkt.exec_props < config_.num_executors);
      DRACONIS_CHECK(outstanding_[pkt.exec_props] > 0);
      outstanding_[pkt.exec_props] -= 1;
      ++counters_.credits;
      ctx.Drop(pkt, "info_credit_consumed");
      return;
    }
    case net::OpCode::kJobSubmission:
      break;  // handled below
    default:
      // Plain forwarding for everything else; self-addressed packets are
      // unroutable.
      if (pkt.dst == ctx.SwitchNode() || pkt.dst == net::kInvalidNode) {
        ctx.Drop(pkt, "info_unroutable");
      } else {
        ctx.Emit(std::move(pkt));
      }
      return;
  }

  DRACONIS_CHECK_MSG(pkt.tasks.size() == 1,
                     "R2P2 routes one RPC per packet; batch at the client");
  if (pkt.tasks[0].meta.enqueue_time < 0) {
    pkt.tasks[0].meta.enqueue_time = ctx.Now();
  }

  // Join the queue that *looks* shortest (the selection view lags by up to
  // selection_staleness), subject to the exact bound. The argmin is
  // deterministic, so every task within one staleness window picks the same
  // "shortest" executor until its exact count hits the bound — the herding
  // the paper describes. If every queue is at the bound, keep circling until
  // a credit frees a slot — or the loopback port drops the task (§8.3).
  if (last_refresh_ < 0 || ctx.Now() - last_refresh_ >= config_.selection_staleness) {
    stale_view_ = outstanding_;
    last_refresh_ = ctx.Now();
  }
  const size_t n = outstanding_.size();
  size_t best = n;
  uint32_t best_count = ~0u;
  for (size_t i = 0; i < n; ++i) {
    if (outstanding_[i] >= config_.jbsq_k) {
      continue;  // the bound is enforced on the exact count
    }
    const uint32_t count = stale_view_[i];
    if (count < best_count) {
      best = i;
      best_count = count;
      if (count == 0) {
        break;
      }
    }
  }
  if (best == n) {
    ++counters_.credit_wait_recirculations;
    ctx.Recirculate(std::move(pkt));
    return;
  }
  const auto slot = static_cast<uint32_t>(best);
  outstanding_[slot] += 1;
  ++counters_.tasks_pushed;

  net::Packet push = std::move(pkt);
  push.op = net::OpCode::kTaskAssignment;
  push.client_addr = push.client_addr != net::kInvalidNode ? push.client_addr : push.src;
  push.exec_props = slot;
  push.dst = worker_of_slot_[slot];
  DRACONIS_CHECK_MSG(push.dst != net::kInvalidNode, "executor slot not bound to a worker");
  ctx.Emit(std::move(push));
}

R2P2Worker::R2P2Worker(cluster::Testbed* testbed, std::vector<size_t> slots,
                       uint32_t worker_node, net::NodeId scheduler, TimeNs pickup_overhead)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      metrics_(testbed->metrics()),
      worker_node_(worker_node),
      scheduler_(scheduler),
      pickup_overhead_(pickup_overhead) {
  DRACONIS_CHECK(metrics_ != nullptr);
  node_id_ = network_->Register(this, net::HostProfile::Dpdk(TimeNs{150}));
  slots_.reserve(slots.size());
  for (size_t slot : slots) {
    ExecutorSlot s;
    s.global_slot = slot;
    slots_.push_back(std::move(s));
  }
}

void R2P2Worker::HandlePacket(net::Packet pkt) {
  if (pkt.op != net::OpCode::kTaskAssignment) {
    return;
  }
  // Find the local executor slot this push targets.
  const size_t global = pkt.exec_props;
  for (size_t local = 0; local < slots_.size(); ++local) {
    if (slots_[local].global_slot == global) {
      slots_[local].queue.push_back(std::move(pkt));
      TryRun(local);
      return;
    }
  }
  DRACONIS_CHECK_MSG(false, "task pushed to a slot this worker does not host");
}

void R2P2Worker::TryRun(size_t local) {
  ExecutorSlot& slot = slots_[local];
  if (slot.busy || slot.queue.empty()) {
    return;
  }
  slot.busy = true;
  net::Packet pkt = std::move(slot.queue.front());
  slot.queue.pop_front();

  net::TaskInfo task = std::move(pkt.tasks.at(0));
  const net::NodeId client = pkt.client_addr;
  const TimeNs exec_start = simulator_->Now() + pickup_overhead_;
  if (metrics_->FirstExecution(task.id)) {
    metrics_->RecordAssignment(task, simulator_->Now());
    metrics_->RecordExecutionStart(task, exec_start);
  }
  const TimeNs done = exec_start + task.meta.exec_duration;
  metrics_->RecordBusyInterval(simulator_->Now(), done);
  simulator_->ScheduleAt(done, [this, local, task = std::move(task), client]() mutable {
    FinishTask(local, std::move(task), client);
  });
}

void R2P2Worker::FinishTask(size_t local, net::TaskInfo task, net::NodeId client) {
  ExecutorSlot& slot = slots_[local];
  metrics_->RecordNodeCompletion(worker_node_, simulator_->Now());

  // Credit back to the switch so it can hand this executor more work.
  net::Packet credit;
  credit.op = net::OpCode::kCredit;
  credit.dst = scheduler_;
  credit.exec_props = static_cast<uint32_t>(slot.global_slot);
  network_->Send(node_id_, std::move(credit));

  // Response to the client.
  if (client != net::kInvalidNode) {
    net::Packet notice;
    notice.op = net::OpCode::kCompletionNotice;
    notice.dst = client;
    notice.tasks = {std::move(task)};
    network_->Send(node_id_, std::move(notice));
  }

  slot.busy = false;
  TryRun(local);
}

}  // namespace draconis::baselines
