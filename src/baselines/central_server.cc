#include "baselines/central_server.h"

#include <utility>

#include "common/check.h"

namespace draconis::baselines {

CentralServerScheduler::CentralServerScheduler(cluster::Testbed* testbed,
                                               const CentralServerConfig& config)
    : simulator_(&testbed->simulator()),
      network_(&testbed->network()),
      recorder_(testbed->recorder()),
      config_(config) {
  node_id_ = network_->Register(this, config.Profile());
}

void CentralServerScheduler::HandlePacket(net::Packet pkt) {
  switch (pkt.op) {
    case net::OpCode::kJobSubmission:
      HandleSubmission(std::move(pkt));
      return;
    case net::OpCode::kTaskRequest:
      HandleRequest(pkt);
      return;
    case net::OpCode::kTaskCompletion: {
      if (pkt.client_addr != net::kInvalidNode) {
        net::Packet notice;
        notice.op = net::OpCode::kCompletionNotice;
        notice.dst = pkt.client_addr;
        notice.tasks = {std::move(pkt.tasks.at(0))};
        network_->Send(node_id_, std::move(notice));
      }
      HandleRequest(pkt);
      return;
    }
    default:
      return;
  }
}

void CentralServerScheduler::HandleSubmission(net::Packet pkt) {
  const TimeNs now = simulator_->Now();
  const net::NodeId client = pkt.src;

  // Enqueue what fits; bounce the rest like the switch does.
  size_t accepted = 0;
  for (net::TaskInfo& task : pkt.tasks) {
    if (queue_.size() >= config_.queue_capacity) {
      break;
    }
    if (task.meta.enqueue_time < 0) {
      task.meta.enqueue_time = now;
    }
    if (recorder_ != nullptr && recorder_->Sampled(task.id)) {
      recorder_->Record(task.id, trace::Kind::kEnqueue, now, now, queue_.size() + 1,
                        node_id_, task.meta.attempt, 0);
    }
    queue_.push_back(QueuedTask{std::move(task), client});
    ++counters_.tasks_enqueued;
    ++accepted;
  }

  // Feed executors that were parked on an empty queue.
  while (!queue_.empty() && !waiting_executors_.empty()) {
    const net::NodeId executor = waiting_executors_.front();
    waiting_executors_.pop_front();
    AssignTo(executor);
  }

  if (accepted < pkt.tasks.size()) {
    ++counters_.queue_full_errors;
    if (recorder_ != nullptr) {
      for (size_t i = accepted; i < pkt.tasks.size(); ++i) {
        const net::TaskInfo& t = pkt.tasks[i];
        if (recorder_->Sampled(t.id)) {
          recorder_->Record(t.id, trace::Kind::kQueueFullError, now, now, 0, node_id_,
                            t.meta.attempt, 0);
        }
      }
    }
    net::Packet error;
    error.op = net::OpCode::kErrorQueueFull;
    error.dst = client;
    error.uid = pkt.uid;
    error.jid = pkt.jid;
    error.tasks.assign(std::make_move_iterator(pkt.tasks.begin() + accepted),
                       std::make_move_iterator(pkt.tasks.end()));
    network_->Send(node_id_, std::move(error));
    return;
  }

  net::Packet ack;
  ack.op = net::OpCode::kJobAck;
  ack.dst = client;
  ack.uid = pkt.uid;
  ack.jid = pkt.jid;
  network_->Send(node_id_, std::move(ack));
}

void CentralServerScheduler::HandleRequest(const net::Packet& pkt) {
  if (queue_.empty()) {
    // Park the pull until a task arrives (a server can hold state that a
    // switch pipeline cannot).
    ++counters_.parked_requests;
    waiting_executors_.push_back(pkt.src);
    return;
  }
  AssignTo(pkt.src);
}

void CentralServerScheduler::AssignTo(net::NodeId executor) {
  QueuedTask next = std::move(queue_.front());
  queue_.pop_front();
  ++counters_.tasks_assigned;
  if (recorder_ != nullptr && recorder_->Sampled(next.task.id)) {
    const TimeNs now = simulator_->Now();
    if (next.task.meta.enqueue_time >= 0) {
      recorder_->Record(next.task.id, trace::Kind::kQueueWait, next.task.meta.enqueue_time,
                        now, 0, node_id_, next.task.meta.attempt, 0);
    }
    recorder_->Record(next.task.id, trace::Kind::kAssign, now, now, 0, executor,
                      next.task.meta.attempt, 0);
  }
  net::Packet assignment;
  assignment.op = net::OpCode::kTaskAssignment;
  assignment.dst = executor;
  assignment.tasks = {std::move(next.task)};
  assignment.client_addr = next.client;
  network_->Send(node_id_, std::move(assignment));
}

}  // namespace draconis::baselines
