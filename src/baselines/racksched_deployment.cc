#include "baselines/racksched_deployment.h"

#include <utility>

namespace draconis::baselines {

RackSchedDeployment::RackSchedDeployment(const cluster::ExperimentConfig& config)
    : cluster::SchedulerDeployment(config) {}

void RackSchedDeployment::Build(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  RackSchedConfig rc;
  rc.num_nodes = cfg.num_workers;
  rc.seed = testbed.SeedFor(cluster::SeedDomain::kRackSched);
  program_ = std::make_unique<RackSchedProgram>(rc);
  pipeline_ = std::make_unique<p4::SwitchPipeline>(testbed, program_.get(), cfg.pipeline);
  scheduler_nodes_.push_back(pipeline_->node_id());
}

void RackSchedDeployment::WireWorkers(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  for (size_t w = 0; w < cfg.num_workers; ++w) {
    workers_.push_back(std::make_unique<RackSchedWorker>(
        &testbed, cfg.executors_per_worker, static_cast<uint32_t>(w), scheduler_nodes_[0],
        TimeNs{3500}, TimeNs{200}, cfg.racksched_intra_policy));
    program_->BindNode(w, workers_.back()->node_id());
  }
}

void RackSchedDeployment::ConfigureClient(cluster::ClientConfig& client) {
  if (client.max_tasks_per_packet == 0) {
    client.max_tasks_per_packet = 1;  // RackSched routes one task per packet
  }
}

void RackSchedDeployment::Harvest(cluster::ExperimentResult& result) {
  result.switch_counters = pipeline_->counters();
  result.recirculation_share = result.switch_counters.RecirculationShare();
  result.recirc_drops = result.switch_counters.recirc_drops;

  const RackSchedCounters& c = program_->counters();
  result.counters.tasks_pushed = c.tasks_pushed;
  result.counters.credits = c.credits;
}

cluster::DeploymentInfo RackSchedDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kRackSched;
  info.canonical_name = "RackSched";
  info.flag_name = "racksched";
  info.policies = {cluster::PolicyKind::kFcfs};
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<RackSchedDeployment>(config);
  };
  return info;
}

}  // namespace draconis::baselines
