// Deploys the Draconis-DPDK-Server / Draconis-Socket-Server baselines (one
// CentralServerScheduler plus the shared pull-based executor fleet) on a
// Testbed. Registered in the DeploymentRegistry (cluster/deployment.cc).

#ifndef DRACONIS_BASELINES_CENTRAL_SERVER_DEPLOYMENT_H_
#define DRACONIS_BASELINES_CENTRAL_SERVER_DEPLOYMENT_H_

#include <memory>

#include "baselines/central_server.h"
#include "cluster/deployment.h"

namespace draconis::baselines {

class CentralServerDeployment : public cluster::PullBasedDeployment {
 public:
  CentralServerDeployment(const cluster::ExperimentConfig& config,
                          CentralServerConfig::Transport transport);

  void Build(cluster::Testbed& testbed) override;
  void Harvest(cluster::ExperimentResult& result) override;

 private:
  CentralServerConfig::Transport transport_;
  std::unique_ptr<CentralServerScheduler> server_;
};

cluster::DeploymentInfo DpdkServerDeploymentInfo();
cluster::DeploymentInfo SocketServerDeploymentInfo();

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_CENTRAL_SERVER_DEPLOYMENT_H_
