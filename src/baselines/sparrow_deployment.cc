#include "baselines/sparrow_deployment.h"

#include <algorithm>
#include <utility>

namespace draconis::baselines {

SparrowDeployment::SparrowDeployment(const cluster::ExperimentConfig& config)
    : cluster::SchedulerDeployment(config) {}

void SparrowDeployment::Build(cluster::Testbed& testbed) {
  SparrowConfig sc;
  for (size_t s = 0; s < std::max<size_t>(1, config().num_schedulers); ++s) {
    sc.seed = testbed.SeedFor(cluster::SeedDomain::kSparrow, s);
    schedulers_.push_back(std::make_unique<SparrowScheduler>(&testbed, sc));
    scheduler_nodes_.push_back(schedulers_.back()->node_id());
  }
}

void SparrowDeployment::WireWorkers(cluster::Testbed& testbed) {
  const cluster::ExperimentConfig& cfg = config();
  std::vector<net::NodeId> worker_nodes;
  for (size_t w = 0; w < cfg.num_workers; ++w) {
    workers_.push_back(std::make_unique<SparrowWorker>(&testbed, cfg.executors_per_worker,
                                                       static_cast<uint32_t>(w)));
    worker_nodes.push_back(workers_.back()->node_id());
  }
  for (auto& scheduler : schedulers_) {
    scheduler->SetWorkers(worker_nodes);
  }
}

void SparrowDeployment::ConfigureClient(cluster::ClientConfig& client) {
  // Sparrow's clients live on the same optimized-sockets stack as its
  // schedulers.
  client.host_profile = SparrowConfig::Profile();
}

void SparrowDeployment::Harvest(cluster::ExperimentResult& result) {
  for (const auto& s : schedulers_) {
    result.counters.probes_sent += s->counters().probes_sent;
    result.counters.tasks_launched += s->counters().tasks_launched;
    result.counters.empty_get_tasks += s->counters().empty_get_tasks;
  }
}

cluster::DeploymentInfo SparrowDeploymentInfo() {
  cluster::DeploymentInfo info;
  info.kind = cluster::SchedulerKind::kSparrow;
  info.canonical_name = "Sparrow";
  info.flag_name = "sparrow";
  info.policies = {cluster::PolicyKind::kFcfs};
  info.multi_scheduler = true;
  info.make = [](const cluster::ExperimentConfig& config) {
    return std::make_unique<SparrowDeployment>(config);
  };
  return info;
}

}  // namespace draconis::baselines
