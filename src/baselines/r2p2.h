// R2P2's in-switch JBSQ(k) scheduler and its push-based workers (paper §2.2,
// §8.3), rebuilt from scratch on the same switch model as Draconis.
//
// The switch tracks one outstanding-task counter per executor, bounded by
// the JBSQ depth k (k slots including the running task). Each task joins the
// executor with the minimum outstanding count ("R2P2 always selects the
// [executor] with the shortest queue"), incrementing the counter at
// assignment; completions return a credit that decrements it.
//
// The dynamics the paper measures fall out of the bound plus *herding*: the
// shortest-queue selection works on queue-length state that lags slightly
// behind the assignments ("batches of tasks are sent to the executor with
// the shortest queue before the queue length is updated", §8.1), modeled as
// a selection snapshot refreshed every `selection_staleness`:
//   - Tasks arriving within one staleness window pile onto the same
//     "shortest" executor up to its bound and queue *behind a running task*
//     even though other executors are idle — node-level blocking, the reason
//     R2P2-3's tail latency equals the task service time from ~30-40%
//     utilization (Figs. 5a, 6, 8). Draconis parks every task in the central
//     switch queue and hands it to the next executor that frees, so its tail
//     stays microseconds.
//   - With k = 1 there is no queue to absorb the excess at all: the overflow
//     tasks spin through the recirculation port until an executor frees, and
//     under bursts the port backlog overflows and tasks are dropped (Figs. 7
//     and 8's yellow markers). With k = 3 scheduling costs zero
//     recirculations, matching the paper's "brings the number of
//     recirculations and dropped tasks to zero".
//
// The counter bank is modeled behaviorally (plain memory) rather than
// through the register layer; like RackSched's replicated counters, the
// reference P4 implementation realizes the search with per-stage register
// arrays and bounded recirculation, and the *scheduling* behavior is what
// the paper's comparison hinges on. See DESIGN.md §1.
//
// Workers hold a bounded FIFO per executor (JBSQ's per-executor queue).

#ifndef DRACONIS_BASELINES_R2P2_H_
#define DRACONIS_BASELINES_R2P2_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "common/time.h"
#include "net/network.h"
#include "net/packet.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"

namespace draconis::baselines {

struct R2P2Config {
  size_t num_executors = 160;
  // JBSQ bound: total slots per executor including the running task.
  // R2P2-1 has no queue (run one task, queue none); R2P2-3 is the authors'
  // default.
  uint32_t jbsq_k = 3;
  // How stale the shortest-queue selection state may be (≈ the switch-worker
  // feedback delay). The JBSQ bound itself is always enforced exactly.
  // Calibrated so that at the paper's Fig. 5a operating point (500 us tasks,
  // 250 ktps) a few percent of tasks herd behind a running task, putting the
  // p99 at ~1 service time.
  TimeNs selection_staleness = TimeNs{250};
};

struct R2P2Counters {
  uint64_t tasks_pushed = 0;
  uint64_t credit_wait_recirculations = 0;
  uint64_t credits = 0;
};

class R2P2Program : public p4::SwitchProgram {
 public:
  explicit R2P2Program(const R2P2Config& config);

  // Routes executor slot -> the worker endpoint hosting it. Must cover
  // [0, num_executors) before traffic flows.
  void BindExecutor(size_t slot, net::NodeId worker);

  void OnPass(p4::PassContext& ctx, net::Packet pkt) override;

  const R2P2Counters& counters() const { return counters_; }
  size_t cp_credits() const;          // free slots across the cluster
  uint32_t cp_outstanding(size_t slot) const { return outstanding_[slot]; }

 private:
  R2P2Config config_;
  std::vector<net::NodeId> worker_of_slot_;
  std::vector<uint32_t> outstanding_;  // per-slot tasks outstanding (<= k), exact
  std::vector<uint32_t> stale_view_;   // what the selection logic believes
  TimeNs last_refresh_ = -1;
  R2P2Counters counters_;
};

// A worker machine hosting several executor slots, each with its own bounded
// FIFO.
class R2P2Worker : public net::Endpoint {
 public:
  // `slots` lists the global executor-slot ids this worker hosts. The worker
  // registers itself on the testbed's fabric; the testbed must outlive it.
  R2P2Worker(cluster::Testbed* testbed, std::vector<size_t> slots, uint32_t worker_node,
             net::NodeId scheduler, TimeNs pickup_overhead = TimeNs{200});

  net::NodeId node_id() const { return node_id_; }

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

  void SetScheduler(net::NodeId scheduler) { scheduler_ = scheduler; }

 private:
  struct ExecutorSlot {
    size_t global_slot = 0;
    bool busy = false;
    std::deque<net::Packet> queue;  // task_assignment packets waiting
  };

  void TryRun(size_t local);
  void FinishTask(size_t local, net::TaskInfo task, net::NodeId client);

  sim::Simulator* simulator_;
  net::Network* network_;
  cluster::MetricsHub* metrics_;
  uint32_t worker_node_;
  net::NodeId scheduler_;
  TimeNs pickup_overhead_;
  net::NodeId node_id_;
  std::vector<ExecutorSlot> slots_;
};

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_R2P2_H_
