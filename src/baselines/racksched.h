// RackSched (paper §2.2, OSDI '20), rebuilt from scratch: a two-layer
// scheduler with an in-switch inter-node component and a worker-side
// intra-node component.
//
// Inter-node: the switch tracks an estimated queue length per worker node,
// samples two distinct nodes per task (power-of-two choices), pushes the task
// to the shorter queue, and increments that node's estimate. Completions
// piggyback a correction that decrements the estimate.
//
// RackSched's real P4 program maintains replicated copies of the queue-length
// array across stages to satisfy the one-access-per-register rule; we model
// the counter state behaviorally (plain memory) and note the substitution in
// DESIGN.md — the *scheduling* behavior (sampling error under load, which is
// what the paper's comparison hinges on) is unchanged.
//
// Intra-node: each worker runs a dispatcher that adds a few microseconds of
// overhead per task — the overhead visible in the paper's Fig. 5a/6 even at
// low load. Two intra-node policies, as RackSched prescribes (§2.2):
//   - cFCFS without preemption (their recommendation for light-tailed
//     workloads; the default everywhere in the paper's comparison), and
//   - Processor Sharing with preemption (their recommendation for
//     heavy-tailed workloads): all admitted tasks share the node's cores
//     equally, so short tasks are not stuck behind long ones.

#ifndef DRACONIS_BASELINES_RACKSCHED_H_
#define DRACONIS_BASELINES_RACKSCHED_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "baselines/intra_node_policy.h"
#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/network.h"
#include "net/packet.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"

namespace draconis::baselines {

struct RackSchedConfig {
  size_t num_nodes = 10;
  uint64_t seed = 7;
};

struct RackSchedCounters {
  uint64_t tasks_pushed = 0;
  uint64_t credits = 0;
};

class RackSchedProgram : public p4::SwitchProgram {
 public:
  explicit RackSchedProgram(const RackSchedConfig& config);

  void BindNode(size_t node, net::NodeId worker);

  void OnPass(p4::PassContext& ctx, net::Packet pkt) override;

  const RackSchedCounters& counters() const { return counters_; }
  int32_t cp_queue_len(size_t node) const { return queue_len_[node]; }

 private:
  RackSchedConfig config_;
  Rng rng_;
  std::vector<int32_t> queue_len_;  // behavioral stand-in for replicated registers
  std::vector<net::NodeId> worker_of_node_;
  RackSchedCounters counters_;
};

// Worker node: one queue feeding `num_executors` cores through an intra-node
// dispatcher that costs `dispatch_overhead` per task.
class RackSchedWorker : public net::Endpoint {
 public:
  // Registers itself on the testbed's fabric; the testbed must outlive it.
  RackSchedWorker(cluster::Testbed* testbed, size_t num_executors, uint32_t worker_node,
                  net::NodeId scheduler, TimeNs dispatch_overhead = TimeNs{3500},
                  TimeNs pickup_overhead = TimeNs{200},
                  IntraNodePolicy policy = IntraNodePolicy::kFcfs);

  net::NodeId node_id() const { return node_id_; }
  void SetScheduler(net::NodeId scheduler) { scheduler_ = scheduler; }
  size_t cp_running() const { return ps_tasks_.size(); }

  // net::Endpoint:
  void HandlePacket(net::Packet pkt) override;

 private:
  // --- cFCFS mode ---
  void TryDispatch();
  void FinishTask(size_t core, net::TaskInfo task, net::NodeId client);

  // --- Processor-Sharing mode ---
  struct PsTask {
    net::TaskInfo task;
    net::NodeId client = net::kInvalidNode;
    double remaining = 0.0;  // ns of work left at full-core speed
  };
  void PsAdmit(net::Packet pkt);
  // Ages all running tasks to `now` at the current sharing rate and
  // reschedules the next-completion event.
  void PsReschedule();
  void PsComplete(net::TaskInfo task, net::NodeId client);
  double PsRate() const;  // per-task service rate (cores / tasks, capped at 1)

  sim::Simulator* simulator_;
  net::Network* network_;
  cluster::MetricsHub* metrics_;
  uint32_t worker_node_;
  net::NodeId scheduler_;
  TimeNs dispatch_overhead_;
  TimeNs pickup_overhead_;
  IntraNodePolicy policy_;
  net::NodeId node_id_;

  std::deque<net::Packet> queue_;
  std::vector<bool> core_busy_;

  std::vector<PsTask> ps_tasks_;
  TimeNs ps_last_update_ = 0;
  sim::EventHandle ps_completion_;
};

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_RACKSCHED_H_
