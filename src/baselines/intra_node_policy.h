// RackSched's intra-node scheduling policy (§2.2), split from racksched.h so
// the experiment API can name it without pulling the whole baseline in.

#ifndef DRACONIS_BASELINES_INTRA_NODE_POLICY_H_
#define DRACONIS_BASELINES_INTRA_NODE_POLICY_H_

namespace draconis::baselines {

enum class IntraNodePolicy {
  kFcfs,              // run-to-completion, no preemption (light-tailed)
  kProcessorSharing,  // preemptive equal sharing of the cores (heavy-tailed)
};

}  // namespace draconis::baselines

#endif  // DRACONIS_BASELINES_INTRA_NODE_POLICY_H_
