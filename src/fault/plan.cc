#include "fault/plan.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/json.h"

namespace draconis::fault {

namespace {

const char* RoleName(NodeRef::Role role) {
  switch (role) {
    case NodeRef::Role::kScheduler:
      return "scheduler";
    case NodeRef::Role::kStandby:
      return "standby";
    case NodeRef::Role::kExecutor:
      return "executor";
    case NodeRef::Role::kClient:
      return "client";
    case NodeRef::Role::kNode:
      return "node";
  }
  return "unknown";
}

bool RoleFromName(const std::string& name, NodeRef::Role* out) {
  for (NodeRef::Role role : {NodeRef::Role::kScheduler, NodeRef::Role::kStandby,
                             NodeRef::Role::kExecutor, NodeRef::Role::kClient,
                             NodeRef::Role::kNode}) {
    if (name == RoleName(role)) {
      *out = role;
      return true;
    }
  }
  return false;
}

bool KindFromName(const std::string& name, EventKind* out) {
  for (EventKind kind : {EventKind::kLossyLink, EventKind::kNodeCrash,
                         EventKind::kLatencyDegrade, EventKind::kSchedulerFailover}) {
    if (name == EventKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// A duration member: integer nanoseconds or a unit string ("250us").
bool ReadDuration(const json::Value& v, TimeNs* out, std::string* error,
                  const std::string& what) {
  if (v.is_number()) {
    *out = v.AsInt();
    return true;
  }
  if (v.is_string() && ParseDuration(v.AsString(), out)) {
    return true;
  }
  *error = what + " must be integer nanoseconds or a duration string like \"250us\"";
  return false;
}

bool ReadNodeRef(const json::Value* v, NodeRef* out, std::string* error,
                 const std::string& what) {
  if (v == nullptr || !v->is_object()) {
    *error = what + " must be an object {\"role\": ..., \"index\": ...}";
    return false;
  }
  for (const std::string& key : v->Keys()) {
    if (key != "role" && key != "index") {
      *error = what + " has unknown key \"" + key + "\"";
      return false;
    }
  }
  const json::Value* role = v->Find("role");
  if (role == nullptr || !role->is_string() || !RoleFromName(role->AsString(), &out->role)) {
    *error = what + ".role must be one of scheduler|standby|executor|client|node";
    return false;
  }
  if (const json::Value* index = v->Find("index"); index != nullptr) {
    if (!index->is_number()) {
      *error = what + ".index must be an integer (-1 = all instances)";
      return false;
    }
    out->index = static_cast<int32_t>(index->AsInt());
  } else {
    out->index = 0;
  }
  return true;
}

void WriteNodeRef(json::Writer& w, const NodeRef& ref) {
  w.BeginObject();
  w.Key("role").String(RoleName(ref.role));
  w.Key("index").Int(ref.index);
  w.EndObject();
}

std::string ValidateEvent(const FaultEvent& e, size_t i) {
  const std::string where = "event " + std::to_string(i) + " (" + EventKindName(e.kind) + ")";
  if (e.start < 0) {
    return where + ": start must be >= 0";
  }
  if (e.end != FaultEvent::kNever && e.end <= e.start) {
    return where + ": end must be > start (or omitted to persist)";
  }
  switch (e.kind) {
    case EventKind::kLossyLink:
      if (e.probability < 0.0 || e.probability > 1.0) {
        return where + ": probability must be in [0, 1]";
      }
      break;
    case EventKind::kNodeCrash:
      break;
    case EventKind::kLatencyDegrade:
      if (e.extra_latency <= 0) {
        return where + ": extra_latency must be > 0";
      }
      break;
    case EventKind::kSchedulerFailover:
      break;
  }
  return "";
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kLossyLink:
      return "lossy_link";
    case EventKind::kNodeCrash:
      return "node_crash";
    case EventKind::kLatencyDegrade:
      return "latency_degrade";
    case EventKind::kSchedulerFailover:
      return "scheduler_failover";
  }
  return "unknown";
}

FaultPlan& FaultPlan::LossyLink(TimeNs start, TimeNs end, double probability, NodeRef src,
                                NodeRef dst) {
  FaultEvent e;
  e.kind = EventKind::kLossyLink;
  e.start = start;
  e.end = end;
  e.probability = probability;
  e.src = src;
  e.dst = dst;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::NodeCrash(TimeNs at, TimeNs recover_at, NodeRef target) {
  FaultEvent e;
  e.kind = EventKind::kNodeCrash;
  e.start = at;
  e.end = recover_at;
  e.target = target;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::LatencyDegrade(TimeNs start, TimeNs end, TimeNs extra_latency) {
  FaultEvent e;
  e.kind = EventKind::kLatencyDegrade;
  e.start = start;
  e.end = end;
  e.extra_latency = extra_latency;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::SchedulerFailover(TimeNs at, TimeNs settle) {
  FaultEvent e;
  e.kind = EventKind::kSchedulerFailover;
  e.start = at;
  e.end = settle;
  events_.push_back(e);
  return *this;
}

bool FaultPlan::has_scheduler_failover() const {
  return failover_at() != FaultEvent::kNever;
}

TimeNs FaultPlan::failover_at() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == EventKind::kSchedulerFailover) {
      return e.start;
    }
  }
  return FaultEvent::kNever;
}

TimeNs FaultPlan::first_onset() const {
  TimeNs first = FaultEvent::kNever;
  for (const FaultEvent& e : events_) {
    if (first == FaultEvent::kNever || e.start < first) {
      first = e.start;
    }
  }
  return first;
}

TimeNs FaultPlan::last_clearance(TimeNs never_fallback) const {
  TimeNs last = FaultEvent::kNever;
  for (const FaultEvent& e : events_) {
    const TimeNs clears = e.end != FaultEvent::kNever ? e.end : never_fallback;
    if (clears > last) {
      last = clears;
    }
  }
  return last;
}

std::string FaultPlan::Validate() const {
  size_t failovers = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    const std::string error = ValidateEvent(events_[i], i);
    if (!error.empty()) {
      return error;
    }
    failovers += events_[i].kind == EventKind::kSchedulerFailover ? 1 : 0;
  }
  if (failovers > 1) {
    return "at most one scheduler_failover per plan (a single standby is deployed)";
  }
  return "";
}

bool FaultPlan::FromJson(const std::string& text, FaultPlan* out, std::string* error) {
  DRACONIS_CHECK(out != nullptr && error != nullptr);
  json::Value doc;
  if (!json::Parse(text, &doc, error)) {
    return false;
  }
  if (!doc.is_object()) {
    *error = "fault plan must be a JSON object";
    return false;
  }
  for (const std::string& key : doc.Keys()) {
    if (key != "schema_version" && key != "name" && key != "events") {
      *error = "unknown top-level key \"" + key + "\"";
      return false;
    }
  }
  if (const json::Value* version = doc.Find("schema_version"); version != nullptr) {
    if (!version->is_number() || version->AsInt() != 1) {
      *error = "unsupported fault plan schema_version (expected 1)";
      return false;
    }
  }
  const json::Value* events = doc.Find("events");
  if (events == nullptr || !events->is_array()) {
    *error = "fault plan needs an \"events\" array";
    return false;
  }

  FaultPlan plan;
  for (size_t i = 0; i < events->AsArray().size(); ++i) {
    const json::Value& ev = events->AsArray()[i];
    const std::string where = "event " + std::to_string(i);
    if (!ev.is_object()) {
      *error = where + " must be an object";
      return false;
    }
    const json::Value* kind_v = ev.Find("kind");
    EventKind kind;
    if (kind_v == nullptr || !kind_v->is_string() || !KindFromName(kind_v->AsString(), &kind)) {
      *error = where +
               ".kind must be one of lossy_link|node_crash|latency_degrade|scheduler_failover";
      return false;
    }
    FaultEvent e;
    e.kind = kind;
    for (const std::string& key : ev.Keys()) {
      const bool common = key == "kind" || key == "start" || key == "end";
      const bool lossy = kind == EventKind::kLossyLink &&
                         (key == "probability" || key == "src" || key == "dst");
      const bool crash = kind == EventKind::kNodeCrash && key == "target";
      const bool degrade = kind == EventKind::kLatencyDegrade && key == "extra_latency";
      if (!common && !lossy && !crash && !degrade) {
        *error = where + " (" + EventKindName(kind) + ") has unknown key \"" + key + "\"";
        return false;
      }
    }
    const json::Value* start = ev.Find("start");
    if (start == nullptr || !ReadDuration(*start, &e.start, error, where + ".start")) {
      if (start == nullptr) {
        *error = where + " needs a start time";
      }
      return false;
    }
    if (const json::Value* end = ev.Find("end"); end != nullptr && !end->is_null()) {
      if (!ReadDuration(*end, &e.end, error, where + ".end")) {
        return false;
      }
    }
    switch (kind) {
      case EventKind::kLossyLink: {
        const json::Value* p = ev.Find("probability");
        if (p == nullptr || !p->is_number()) {
          *error = where + " needs a numeric probability";
          return false;
        }
        e.probability = p->AsDouble();
        if (!ReadNodeRef(ev.Find("src"), &e.src, error, where + ".src") ||
            !ReadNodeRef(ev.Find("dst"), &e.dst, error, where + ".dst")) {
          return false;
        }
        break;
      }
      case EventKind::kNodeCrash:
        if (!ReadNodeRef(ev.Find("target"), &e.target, error, where + ".target")) {
          return false;
        }
        break;
      case EventKind::kLatencyDegrade: {
        const json::Value* extra = ev.Find("extra_latency");
        if (extra == nullptr ||
            !ReadDuration(*extra, &e.extra_latency, error, where + ".extra_latency")) {
          if (extra == nullptr) {
            *error = where + " needs an extra_latency";
          }
          return false;
        }
        break;
      }
      case EventKind::kSchedulerFailover:
        break;
    }
    plan.events_.push_back(e);
  }

  const std::string invalid = plan.Validate();
  if (!invalid.empty()) {
    *error = invalid;
    return false;
  }
  *out = std::move(plan);
  return true;
}

bool FaultPlan::FromJsonFile(const std::string& path, FaultPlan* out, std::string* error) {
  DRACONIS_CHECK(out != nullptr && error != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  if (!FromJson(text, out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string FaultPlan::ToJson() const {
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("events").BeginArray();
  for (const FaultEvent& e : events_) {
    w.BeginObject();
    w.Key("kind").String(EventKindName(e.kind));
    w.Key("start").Int(e.start);
    if (e.end != FaultEvent::kNever) {
      w.Key("end").Int(e.end);
    }
    switch (e.kind) {
      case EventKind::kLossyLink:
        w.Key("probability").Double(e.probability);
        w.Key("src");
        WriteNodeRef(w, e.src);
        w.Key("dst");
        WriteNodeRef(w, e.dst);
        break;
      case EventKind::kNodeCrash:
        w.Key("target");
        WriteNodeRef(w, e.target);
        break;
      case EventKind::kLatencyDegrade:
        w.Key("extra_latency").Int(e.extra_latency);
        break;
      case EventKind::kSchedulerFailover:
        break;
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace draconis::fault
