#include "fault/injector.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "trace/recorder.h"
#include "trace/span.h"

namespace draconis::fault {

Injector::Injector(cluster::Testbed* testbed, FaultPlan plan, InjectorHooks hooks)
    : testbed_(testbed), plan_(std::move(plan)), hooks_(std::move(hooks)) {
  DRACONIS_CHECK(testbed != nullptr);
}

void Injector::Arm() {
  DRACONIS_CHECK_MSG(!armed_, "Injector::Arm called twice");
  armed_ = true;
  const std::string invalid = plan_.Validate();
  DRACONIS_CHECK_MSG(invalid.empty(), "invalid FaultPlan: " + invalid);

  sim::Simulator& simulator = testbed_->simulator();
  for (size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& e = plan_.events()[i];
    simulator.ScheduleAt(e.start, [this, i] { StartEvent(i); });
    // A failover's `end` only bounds the during-fault metric window — the
    // dead scheduler stays dead — so there is nothing to clear.
    if (e.end != FaultEvent::kNever && e.kind != EventKind::kSchedulerFailover) {
      simulator.ScheduleAt(e.end, [this, i] { ClearEvent(i); });
    }
  }
}

std::vector<net::NodeId> Injector::Resolve(const NodeRef& ref) const {
  if (ref.role == NodeRef::Role::kNode) {
    DRACONIS_CHECK_MSG(ref.index >= 0, "a raw node reference needs a concrete id");
    return {static_cast<net::NodeId>(ref.index)};
  }
  if (!hooks_.resolve) {
    return {};
  }
  std::vector<net::NodeId> nodes = hooks_.resolve(ref);
  if (ref.index == NodeRef::kAllInstances || nodes.empty()) {
    return nodes;
  }
  const auto index = static_cast<size_t>(ref.index);
  if (index >= nodes.size()) {
    return {};
  }
  return {nodes[index]};
}

void Injector::RecordWindow(const FaultEvent& e) const {
  trace::Recorder* recorder = testbed_->recorder();
  if (recorder == nullptr) {
    return;
  }
  const TimeNs end = e.end != FaultEvent::kNever ? e.end : testbed_->horizon();
  const std::vector<net::NodeId> targets =
      e.kind == EventKind::kLossyLink
          ? Resolve(e.dst)
          : (e.kind == EventKind::kNodeCrash
                 ? Resolve(e.target)
                 : Resolve(NodeRef{NodeRef::Role::kScheduler, 0}));
  recorder->Record(trace::kGlobalTaskId, trace::Kind::kFaultWindow, e.start,
                   std::max(end, e.start), static_cast<uint64_t>(e.kind),
                   targets.empty() ? 0 : targets.front());
}

void Injector::StartEvent(size_t index) {
  const FaultEvent& e = plan_.events()[index];
  ++events_started_;
  net::Network& network = testbed_->network();
  RecordWindow(e);
  switch (e.kind) {
    case EventKind::kLossyLink:
      for (const net::NodeId src : Resolve(e.src)) {
        for (const net::NodeId dst : Resolve(e.dst)) {
          network.InjectDrop(src, dst, e.probability);
        }
      }
      break;
    case EventKind::kNodeCrash:
      for (const net::NodeId node : Resolve(e.target)) {
        network.Disconnect(node);
      }
      break;
    case EventKind::kLatencyDegrade:
      network.AddLatencyPenalty(e.extra_latency);
      break;
    case EventKind::kSchedulerFailover:
      // §3.3: the active scheduler fails hard — in-flight packets toward it
      // are lost (delivery-time disconnect check) — then the deployment
      // promotes its standby and rehomes the executor fleet. Clients are not
      // told: they discover the failure through timeouts and rehome on their
      // own (cluster/client.cc).
      for (const net::NodeId node : Resolve(NodeRef{NodeRef::Role::kScheduler, 0})) {
        network.Disconnect(node);
      }
      if (hooks_.on_failover) {
        hooks_.on_failover();
      }
      break;
  }
}

void Injector::ClearEvent(size_t index) {
  const FaultEvent& e = plan_.events()[index];
  ++events_cleared_;
  net::Network& network = testbed_->network();
  switch (e.kind) {
    case EventKind::kLossyLink:
      for (const net::NodeId src : Resolve(e.src)) {
        for (const net::NodeId dst : Resolve(e.dst)) {
          network.RemoveDrop(src, dst);
        }
      }
      break;
    case EventKind::kNodeCrash:
      for (const net::NodeId node : Resolve(e.target)) {
        network.Reconnect(node);
      }
      break;
    case EventKind::kLatencyDegrade:
      network.AddLatencyPenalty(-e.extra_latency);
      break;
    case EventKind::kSchedulerFailover:
      break;  // never scheduled
  }
}

}  // namespace draconis::fault
