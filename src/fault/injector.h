// Arms a FaultPlan against a live Testbed (docs/fault_injection.md).
//
// The Injector translates the plan's declarative timeline into simulator
// events: each fault event schedules one callback at its onset (and one at
// its clearance, when it has one) that drives the Network's fault primitives
// — InjectDrop/RemoveDrop, Disconnect/Reconnect, AddLatencyPenalty — and,
// for scheduler_failover, hands control to the deployment through the
// on_failover hook. Role references resolve to fabric NodeIds through the
// resolve hook, which RunExperiment wires to the deployment's node lists.
//
// Determinism: the injector consumes no randomness (per-packet drop draws
// happen inside the Network on its dedicated SeedDomain::kFault stream), and
// an empty plan arms nothing, so a run with an empty — or never-firing —
// plan is bit-identical to a faultless run (tests/determinism_test.cc).

#ifndef DRACONIS_FAULT_INJECTOR_H_
#define DRACONIS_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/testbed.h"
#include "fault/plan.h"
#include "net/packet.h"

namespace draconis::fault {

// Deployment-side callbacks. Both are optional: without `resolve` only raw
// kNode references resolve (enough for substrate-level tests); without
// `on_failover` a scheduler_failover only disconnects the active scheduler.
struct InjectorHooks {
  // Role reference -> fabric node ids (empty: no such instances).
  std::function<std::vector<net::NodeId>(const NodeRef&)> resolve;
  // Called at a scheduler_failover onset, after the active scheduler has
  // been disconnected: promote the standby, rehome the executor fleet.
  std::function<void()> on_failover;
};

class Injector {
 public:
  // The testbed (and the hooks' targets) must outlive the injector; the
  // injector must outlive the simulation run it is armed on.
  Injector(cluster::Testbed* testbed, FaultPlan plan, InjectorHooks hooks);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // Schedules every plan event on the testbed's simulator. Call once, before
  // the run. A valid plan is required (CHECK: plan.Validate() passed).
  void Arm();

  // Observability for tests: onsets / clearances executed so far.
  uint64_t events_started() const { return events_started_; }
  uint64_t events_cleared() const { return events_cleared_; }

 private:
  void StartEvent(size_t index);
  void ClearEvent(size_t index);
  std::vector<net::NodeId> Resolve(const NodeRef& ref) const;
  // The window span rendered by Perfetto as the outage band; clamped to the
  // testbed horizon for events that never clear.
  void RecordWindow(const FaultEvent& e) const;

  cluster::Testbed* testbed_;
  FaultPlan plan_;
  InjectorHooks hooks_;
  bool armed_ = false;
  uint64_t events_started_ = 0;
  uint64_t events_cleared_ = 0;
};

}  // namespace draconis::fault

#endif  // DRACONIS_FAULT_INJECTOR_H_
