// Declarative fault timelines (docs/fault_injection.md).
//
// A FaultPlan is a list of timestamped fault events — lossy-link windows,
// node crashes with recovery, fabric-wide latency degradation, and the §3.3
// scheduler failover — built programmatically (chained builders) or parsed
// from JSON. The plan is pure data: it names targets by *role* (scheduler,
// standby, executor, client) because fabric NodeIds are assigned at
// deployment time; the fault::Injector resolves roles against the live
// deployment when it arms the plan on a Testbed.
//
// Plans are value types (copied freely into ExperimentConfig, including
// across sweep threads) and carry no randomness of their own: per-packet
// drop decisions draw from the network's dedicated fault stream
// (SeedDomain::kFault), and every event fires at a fixed simulated time, so
// the same seed + the same plan is bit-identical across runs.

#ifndef DRACONIS_FAULT_PLAN_H_
#define DRACONIS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace draconis::fault {

// A fault target, named by deployment role. `index` selects one instance;
// kAllInstances targets every node of the role.
struct NodeRef {
  enum class Role : uint8_t {
    kScheduler,  // active scheduler instance(s) (deployment->scheduler_nodes)
    kStandby,    // standby scheduler (only exists when the plan has a failover)
    kExecutor,   // pull-based executor fleet
    kClient,     // submitting clients
    kNode,       // a raw fabric NodeId (index = the id); for low-level tests
  };
  static constexpr int32_t kAllInstances = -1;

  Role role = Role::kScheduler;
  int32_t index = 0;
};

enum class EventKind : uint8_t {
  kLossyLink,          // window: drop src->dst packets with `probability`
  kNodeCrash,          // window: target disconnected, reconnected at `end`
  kLatencyDegrade,     // window: every delivery takes `extra_latency` longer
  kSchedulerFailover,  // instant: active scheduler dies, standby promoted
};

const char* EventKindName(EventKind kind);

// One timeline entry. `start` is when the fault sets in; `end` is when it
// clears (kNever = it persists to the end of the run). Unused fields stay at
// their defaults for kinds that do not read them.
struct FaultEvent {
  static constexpr TimeNs kNever = -1;

  EventKind kind = EventKind::kLossyLink;
  TimeNs start = 0;
  TimeNs end = kNever;
  double probability = 1.0;    // kLossyLink
  TimeNs extra_latency = 0;    // kLatencyDegrade
  NodeRef src{};               // kLossyLink
  NodeRef dst{};               // kLossyLink
  NodeRef target{};            // kNodeCrash
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // --- Programmatic builders (chainable) -----------------------------------
  FaultPlan& LossyLink(TimeNs start, TimeNs end, double probability, NodeRef src, NodeRef dst);
  FaultPlan& NodeCrash(TimeNs at, TimeNs recover_at, NodeRef target);
  FaultPlan& LatencyDegrade(TimeNs start, TimeNs end, TimeNs extra_latency);
  // The §3.3 experiment: at `at` the active scheduler is disconnected, the
  // standby is promoted and executors rehome; clients discover the failover
  // through their own timeouts. `settle` bounds the during-fault metric
  // window (kNever: the ExperimentConfig fault_settle default applies).
  FaultPlan& SchedulerFailover(TimeNs at, TimeNs settle = FaultEvent::kNever);

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  bool has_scheduler_failover() const;
  // Start of the first scheduler_failover event; kNever when none.
  TimeNs failover_at() const;

  // Earliest fault onset across all events; kNever for an empty plan.
  TimeNs first_onset() const;
  // Latest fault clearance; events that never clear (end == kNever,
  // including failovers with no settle) report `never_fallback` instead.
  TimeNs last_clearance(TimeNs never_fallback) const;

  // Schema-level validation (ranges, orderings, role/kind combinations).
  // Returns "" when valid, a descriptive error otherwise.
  std::string Validate() const;

  // --- JSON (docs/fault_injection.md has the schema) -----------------------
  // Accepts durations either as integer nanoseconds or as strings with units
  // ("250us", "5ms"). Returns false + a descriptive error on malformed input
  // or on a plan that fails Validate().
  static bool FromJson(const std::string& text, FaultPlan* out, std::string* error);
  static bool FromJsonFile(const std::string& path, FaultPlan* out, std::string* error);
  // Round-trips through FromJson; used by tests and --fault-plan tooling.
  std::string ToJson() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace draconis::fault

#endif  // DRACONIS_FAULT_PLAN_H_
