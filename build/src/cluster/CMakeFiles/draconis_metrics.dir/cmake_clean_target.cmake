file(REMOVE_RECURSE
  "libdraconis_metrics.a"
)
