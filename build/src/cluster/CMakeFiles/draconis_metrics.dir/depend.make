# Empty dependencies file for draconis_metrics.
# This may be replaced when dependencies are built.
