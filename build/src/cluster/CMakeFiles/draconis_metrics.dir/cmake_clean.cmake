file(REMOVE_RECURSE
  "CMakeFiles/draconis_metrics.dir/metrics.cc.o"
  "CMakeFiles/draconis_metrics.dir/metrics.cc.o.d"
  "libdraconis_metrics.a"
  "libdraconis_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
