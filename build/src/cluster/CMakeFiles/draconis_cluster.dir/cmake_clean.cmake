file(REMOVE_RECURSE
  "CMakeFiles/draconis_cluster.dir/client.cc.o"
  "CMakeFiles/draconis_cluster.dir/client.cc.o.d"
  "CMakeFiles/draconis_cluster.dir/executor.cc.o"
  "CMakeFiles/draconis_cluster.dir/executor.cc.o.d"
  "CMakeFiles/draconis_cluster.dir/experiment.cc.o"
  "CMakeFiles/draconis_cluster.dir/experiment.cc.o.d"
  "libdraconis_cluster.a"
  "libdraconis_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
