file(REMOVE_RECURSE
  "libdraconis_cluster.a"
)
