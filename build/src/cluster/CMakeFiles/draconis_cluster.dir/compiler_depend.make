# Empty compiler generated dependencies file for draconis_cluster.
# This may be replaced when dependencies are built.
