file(REMOVE_RECURSE
  "libdraconis_core.a"
)
