
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/draconis_program.cc" "src/core/CMakeFiles/draconis_core.dir/draconis_program.cc.o" "gcc" "src/core/CMakeFiles/draconis_core.dir/draconis_program.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/draconis_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/draconis_core.dir/policy.cc.o.d"
  "/root/repo/src/core/switch_queue.cc" "src/core/CMakeFiles/draconis_core.dir/switch_queue.cc.o" "gcc" "src/core/CMakeFiles/draconis_core.dir/switch_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4/CMakeFiles/draconis_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/draconis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/draconis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/draconis_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
