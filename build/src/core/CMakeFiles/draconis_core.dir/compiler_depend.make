# Empty compiler generated dependencies file for draconis_core.
# This may be replaced when dependencies are built.
