file(REMOVE_RECURSE
  "CMakeFiles/draconis_core.dir/draconis_program.cc.o"
  "CMakeFiles/draconis_core.dir/draconis_program.cc.o.d"
  "CMakeFiles/draconis_core.dir/policy.cc.o"
  "CMakeFiles/draconis_core.dir/policy.cc.o.d"
  "CMakeFiles/draconis_core.dir/switch_queue.cc.o"
  "CMakeFiles/draconis_core.dir/switch_queue.cc.o.d"
  "libdraconis_core.a"
  "libdraconis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
