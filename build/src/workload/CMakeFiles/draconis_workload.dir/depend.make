# Empty dependencies file for draconis_workload.
# This may be replaced when dependencies are built.
