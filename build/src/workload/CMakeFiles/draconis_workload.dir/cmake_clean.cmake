file(REMOVE_RECURSE
  "CMakeFiles/draconis_workload.dir/generators.cc.o"
  "CMakeFiles/draconis_workload.dir/generators.cc.o.d"
  "CMakeFiles/draconis_workload.dir/google_trace.cc.o"
  "CMakeFiles/draconis_workload.dir/google_trace.cc.o.d"
  "CMakeFiles/draconis_workload.dir/service_time.cc.o"
  "CMakeFiles/draconis_workload.dir/service_time.cc.o.d"
  "CMakeFiles/draconis_workload.dir/trace_io.cc.o"
  "CMakeFiles/draconis_workload.dir/trace_io.cc.o.d"
  "libdraconis_workload.a"
  "libdraconis_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
