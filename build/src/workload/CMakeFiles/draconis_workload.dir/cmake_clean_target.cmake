file(REMOVE_RECURSE
  "libdraconis_workload.a"
)
