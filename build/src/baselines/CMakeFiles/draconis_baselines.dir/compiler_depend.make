# Empty compiler generated dependencies file for draconis_baselines.
# This may be replaced when dependencies are built.
