file(REMOVE_RECURSE
  "CMakeFiles/draconis_baselines.dir/central_server.cc.o"
  "CMakeFiles/draconis_baselines.dir/central_server.cc.o.d"
  "CMakeFiles/draconis_baselines.dir/r2p2.cc.o"
  "CMakeFiles/draconis_baselines.dir/r2p2.cc.o.d"
  "CMakeFiles/draconis_baselines.dir/racksched.cc.o"
  "CMakeFiles/draconis_baselines.dir/racksched.cc.o.d"
  "CMakeFiles/draconis_baselines.dir/sparrow.cc.o"
  "CMakeFiles/draconis_baselines.dir/sparrow.cc.o.d"
  "libdraconis_baselines.a"
  "libdraconis_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
