file(REMOVE_RECURSE
  "libdraconis_baselines.a"
)
