file(REMOVE_RECURSE
  "CMakeFiles/draconis_net.dir/network.cc.o"
  "CMakeFiles/draconis_net.dir/network.cc.o.d"
  "CMakeFiles/draconis_net.dir/packet.cc.o"
  "CMakeFiles/draconis_net.dir/packet.cc.o.d"
  "libdraconis_net.a"
  "libdraconis_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
