file(REMOVE_RECURSE
  "libdraconis_net.a"
)
