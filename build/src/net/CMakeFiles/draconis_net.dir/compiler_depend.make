# Empty compiler generated dependencies file for draconis_net.
# This may be replaced when dependencies are built.
