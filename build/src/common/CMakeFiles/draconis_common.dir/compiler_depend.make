# Empty compiler generated dependencies file for draconis_common.
# This may be replaced when dependencies are built.
