file(REMOVE_RECURSE
  "CMakeFiles/draconis_common.dir/check.cc.o"
  "CMakeFiles/draconis_common.dir/check.cc.o.d"
  "CMakeFiles/draconis_common.dir/flags.cc.o"
  "CMakeFiles/draconis_common.dir/flags.cc.o.d"
  "CMakeFiles/draconis_common.dir/rng.cc.o"
  "CMakeFiles/draconis_common.dir/rng.cc.o.d"
  "CMakeFiles/draconis_common.dir/time.cc.o"
  "CMakeFiles/draconis_common.dir/time.cc.o.d"
  "libdraconis_common.a"
  "libdraconis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
