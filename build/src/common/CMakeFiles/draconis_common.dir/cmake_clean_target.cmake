file(REMOVE_RECURSE
  "libdraconis_common.a"
)
