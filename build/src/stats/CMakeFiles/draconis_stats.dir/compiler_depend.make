# Empty compiler generated dependencies file for draconis_stats.
# This may be replaced when dependencies are built.
