file(REMOVE_RECURSE
  "libdraconis_stats.a"
)
