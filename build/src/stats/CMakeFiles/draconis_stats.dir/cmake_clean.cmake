file(REMOVE_RECURSE
  "CMakeFiles/draconis_stats.dir/histogram.cc.o"
  "CMakeFiles/draconis_stats.dir/histogram.cc.o.d"
  "CMakeFiles/draconis_stats.dir/timeseries.cc.o"
  "CMakeFiles/draconis_stats.dir/timeseries.cc.o.d"
  "libdraconis_stats.a"
  "libdraconis_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
