file(REMOVE_RECURSE
  "libdraconis_p4.a"
)
