file(REMOVE_RECURSE
  "CMakeFiles/draconis_p4.dir/pipeline.cc.o"
  "CMakeFiles/draconis_p4.dir/pipeline.cc.o.d"
  "CMakeFiles/draconis_p4.dir/register.cc.o"
  "CMakeFiles/draconis_p4.dir/register.cc.o.d"
  "CMakeFiles/draconis_p4.dir/tracing.cc.o"
  "CMakeFiles/draconis_p4.dir/tracing.cc.o.d"
  "libdraconis_p4.a"
  "libdraconis_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
