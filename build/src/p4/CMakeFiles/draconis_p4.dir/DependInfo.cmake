
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/pipeline.cc" "src/p4/CMakeFiles/draconis_p4.dir/pipeline.cc.o" "gcc" "src/p4/CMakeFiles/draconis_p4.dir/pipeline.cc.o.d"
  "/root/repo/src/p4/register.cc" "src/p4/CMakeFiles/draconis_p4.dir/register.cc.o" "gcc" "src/p4/CMakeFiles/draconis_p4.dir/register.cc.o.d"
  "/root/repo/src/p4/tracing.cc" "src/p4/CMakeFiles/draconis_p4.dir/tracing.cc.o" "gcc" "src/p4/CMakeFiles/draconis_p4.dir/tracing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/draconis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/draconis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/draconis_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
