# Empty compiler generated dependencies file for draconis_p4.
# This may be replaced when dependencies are built.
