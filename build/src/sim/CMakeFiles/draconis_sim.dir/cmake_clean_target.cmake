file(REMOVE_RECURSE
  "libdraconis_sim.a"
)
