file(REMOVE_RECURSE
  "CMakeFiles/draconis_sim.dir/simulator.cc.o"
  "CMakeFiles/draconis_sim.dir/simulator.cc.o.d"
  "libdraconis_sim.a"
  "libdraconis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
