# Empty compiler generated dependencies file for draconis_sim.
# This may be replaced when dependencies are built.
