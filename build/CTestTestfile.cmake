# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/examples.cmake;19;add_test;/root/repo/examples/examples.cmake;0;;/root/repo/CMakeLists.txt;29;include;/root/repo/CMakeLists.txt;0;")
add_test(example_gpu_inference "/root/repo/build/examples/gpu_inference")
set_tests_properties(example_gpu_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/examples.cmake;20;add_test;/root/repo/examples/examples.cmake;0;;/root/repo/CMakeLists.txt;29;include;/root/repo/CMakeLists.txt;0;")
add_test(example_cluster_sim "/root/repo/build/examples/cluster_sim" "--utilization=0.4" "--duration-ms=10")
set_tests_properties(example_cluster_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/examples.cmake;21;add_test;/root/repo/examples/examples.cmake;0;;/root/repo/CMakeLists.txt;29;include;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
