# Empty compiler generated dependencies file for fig10_locality.
# This may be replaced when dependencies are built.
