file(REMOVE_RECURSE
  "CMakeFiles/fig10_locality.dir/bench/fig10_locality.cc.o"
  "CMakeFiles/fig10_locality.dir/bench/fig10_locality.cc.o.d"
  "bench/fig10_locality"
  "bench/fig10_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
