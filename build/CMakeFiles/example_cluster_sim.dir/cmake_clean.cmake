file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_sim.dir/examples/cluster_sim.cpp.o"
  "CMakeFiles/example_cluster_sim.dir/examples/cluster_sim.cpp.o.d"
  "examples/cluster_sim"
  "examples/cluster_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
