file(REMOVE_RECURSE
  "CMakeFiles/fig06_synthetic_suite.dir/bench/fig06_synthetic_suite.cc.o"
  "CMakeFiles/fig06_synthetic_suite.dir/bench/fig06_synthetic_suite.cc.o.d"
  "bench/fig06_synthetic_suite"
  "bench/fig06_synthetic_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_synthetic_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
