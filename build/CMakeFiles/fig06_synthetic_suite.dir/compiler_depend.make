# Empty compiler generated dependencies file for fig06_synthetic_suite.
# This may be replaced when dependencies are built.
