file(REMOVE_RECURSE
  "CMakeFiles/fig08_jbsq_size.dir/bench/fig08_jbsq_size.cc.o"
  "CMakeFiles/fig08_jbsq_size.dir/bench/fig08_jbsq_size.cc.o.d"
  "bench/fig08_jbsq_size"
  "bench/fig08_jbsq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_jbsq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
