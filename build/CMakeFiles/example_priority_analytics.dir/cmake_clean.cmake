file(REMOVE_RECURSE
  "CMakeFiles/example_priority_analytics.dir/examples/priority_analytics.cpp.o"
  "CMakeFiles/example_priority_analytics.dir/examples/priority_analytics.cpp.o.d"
  "examples/priority_analytics"
  "examples/priority_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_priority_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
