# Empty dependencies file for example_priority_analytics.
# This may be replaced when dependencies are built.
