file(REMOVE_RECURSE
  "CMakeFiles/example_gpu_inference.dir/examples/gpu_inference.cpp.o"
  "CMakeFiles/example_gpu_inference.dir/examples/gpu_inference.cpp.o.d"
  "examples/gpu_inference"
  "examples/gpu_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gpu_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
