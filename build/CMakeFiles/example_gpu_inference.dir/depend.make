# Empty dependencies file for example_gpu_inference.
# This may be replaced when dependencies are built.
