# Empty dependencies file for fig07_recirculation.
# This may be replaced when dependencies are built.
