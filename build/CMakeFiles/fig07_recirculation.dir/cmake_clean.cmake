file(REMOVE_RECURSE
  "CMakeFiles/fig07_recirculation.dir/bench/fig07_recirculation.cc.o"
  "CMakeFiles/fig07_recirculation.dir/bench/fig07_recirculation.cc.o.d"
  "bench/fig07_recirculation"
  "bench/fig07_recirculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_recirculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
