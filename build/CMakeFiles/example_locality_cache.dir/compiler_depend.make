# Empty compiler generated dependencies file for example_locality_cache.
# This may be replaced when dependencies are built.
