file(REMOVE_RECURSE
  "CMakeFiles/example_locality_cache.dir/examples/locality_cache.cpp.o"
  "CMakeFiles/example_locality_cache.dir/examples/locality_cache.cpp.o.d"
  "examples/locality_cache"
  "examples/locality_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_locality_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
