# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_locality_cache.
