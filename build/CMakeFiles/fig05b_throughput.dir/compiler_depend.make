# Empty compiler generated dependencies file for fig05b_throughput.
# This may be replaced when dependencies are built.
