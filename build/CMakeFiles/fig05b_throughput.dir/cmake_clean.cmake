file(REMOVE_RECURSE
  "CMakeFiles/fig05b_throughput.dir/bench/fig05b_throughput.cc.o"
  "CMakeFiles/fig05b_throughput.dir/bench/fig05b_throughput.cc.o.d"
  "bench/fig05b_throughput"
  "bench/fig05b_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
