# Empty dependencies file for fig13_gettask_overhead.
# This may be replaced when dependencies are built.
