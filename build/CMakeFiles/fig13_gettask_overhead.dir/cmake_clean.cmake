file(REMOVE_RECURSE
  "CMakeFiles/fig13_gettask_overhead.dir/bench/fig13_gettask_overhead.cc.o"
  "CMakeFiles/fig13_gettask_overhead.dir/bench/fig13_gettask_overhead.cc.o.d"
  "bench/fig13_gettask_overhead"
  "bench/fig13_gettask_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gettask_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
