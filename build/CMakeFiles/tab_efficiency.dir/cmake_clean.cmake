file(REMOVE_RECURSE
  "CMakeFiles/tab_efficiency.dir/bench/tab_efficiency.cc.o"
  "CMakeFiles/tab_efficiency.dir/bench/tab_efficiency.cc.o.d"
  "bench/tab_efficiency"
  "bench/tab_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
