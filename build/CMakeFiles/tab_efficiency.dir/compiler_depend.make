# Empty compiler generated dependencies file for tab_efficiency.
# This may be replaced when dependencies are built.
