file(REMOVE_RECURSE
  "CMakeFiles/tab_scalability.dir/bench/tab_scalability.cc.o"
  "CMakeFiles/tab_scalability.dir/bench/tab_scalability.cc.o.d"
  "bench/tab_scalability"
  "bench/tab_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
