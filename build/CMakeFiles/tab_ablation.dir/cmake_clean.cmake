file(REMOVE_RECURSE
  "CMakeFiles/tab_ablation.dir/bench/tab_ablation.cc.o"
  "CMakeFiles/tab_ablation.dir/bench/tab_ablation.cc.o.d"
  "bench/tab_ablation"
  "bench/tab_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
