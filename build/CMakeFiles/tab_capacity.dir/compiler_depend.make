# Empty compiler generated dependencies file for tab_capacity.
# This may be replaced when dependencies are built.
