file(REMOVE_RECURSE
  "CMakeFiles/tab_capacity.dir/bench/tab_capacity.cc.o"
  "CMakeFiles/tab_capacity.dir/bench/tab_capacity.cc.o.d"
  "bench/tab_capacity"
  "bench/tab_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
