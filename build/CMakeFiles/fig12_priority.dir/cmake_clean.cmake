file(REMOVE_RECURSE
  "CMakeFiles/fig12_priority.dir/bench/fig12_priority.cc.o"
  "CMakeFiles/fig12_priority.dir/bench/fig12_priority.cc.o.d"
  "bench/fig12_priority"
  "bench/fig12_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
