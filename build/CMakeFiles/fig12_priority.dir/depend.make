# Empty dependencies file for fig12_priority.
# This may be replaced when dependencies are built.
