file(REMOVE_RECURSE
  "CMakeFiles/fig09_google_trace.dir/bench/fig09_google_trace.cc.o"
  "CMakeFiles/fig09_google_trace.dir/bench/fig09_google_trace.cc.o.d"
  "bench/fig09_google_trace"
  "bench/fig09_google_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_google_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
