file(REMOVE_RECURSE
  "CMakeFiles/fig11_resource.dir/bench/fig11_resource.cc.o"
  "CMakeFiles/fig11_resource.dir/bench/fig11_resource.cc.o.d"
  "bench/fig11_resource"
  "bench/fig11_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
