# Empty dependencies file for fig11_resource.
# This may be replaced when dependencies are built.
