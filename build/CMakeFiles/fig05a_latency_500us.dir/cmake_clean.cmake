file(REMOVE_RECURSE
  "CMakeFiles/fig05a_latency_500us.dir/bench/fig05a_latency_500us.cc.o"
  "CMakeFiles/fig05a_latency_500us.dir/bench/fig05a_latency_500us.cc.o.d"
  "bench/fig05a_latency_500us"
  "bench/fig05a_latency_500us.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05a_latency_500us.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
