# Empty compiler generated dependencies file for fig05a_latency_500us.
# This may be replaced when dependencies are built.
