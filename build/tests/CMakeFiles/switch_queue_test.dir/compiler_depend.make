# Empty compiler generated dependencies file for switch_queue_test.
# This may be replaced when dependencies are built.
