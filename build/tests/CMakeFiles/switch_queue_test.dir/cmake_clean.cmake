file(REMOVE_RECURSE
  "CMakeFiles/switch_queue_test.dir/switch_queue_test.cc.o"
  "CMakeFiles/switch_queue_test.dir/switch_queue_test.cc.o.d"
  "switch_queue_test"
  "switch_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
