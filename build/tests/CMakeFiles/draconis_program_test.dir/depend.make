# Empty dependencies file for draconis_program_test.
# This may be replaced when dependencies are built.
