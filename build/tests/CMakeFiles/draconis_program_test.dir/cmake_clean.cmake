file(REMOVE_RECURSE
  "CMakeFiles/draconis_program_test.dir/draconis_program_test.cc.o"
  "CMakeFiles/draconis_program_test.dir/draconis_program_test.cc.o.d"
  "draconis_program_test"
  "draconis_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draconis_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
