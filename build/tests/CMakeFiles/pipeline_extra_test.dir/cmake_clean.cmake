file(REMOVE_RECURSE
  "CMakeFiles/pipeline_extra_test.dir/pipeline_extra_test.cc.o"
  "CMakeFiles/pipeline_extra_test.dir/pipeline_extra_test.cc.o.d"
  "pipeline_extra_test"
  "pipeline_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
