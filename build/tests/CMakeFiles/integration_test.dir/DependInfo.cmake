
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/draconis_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/draconis_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/draconis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/draconis_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/draconis_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/draconis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/draconis_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/draconis_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/draconis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/draconis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
