// Reproduces paper Fig. 12: queueing delay per priority level under the
// priority-aware policy vs plain FCFS, on a heavily loaded Google-like trace
// with 5 ms mean task durations and the paper's 4-level priority mix
// (1.2% / 1.7% / 64.6% / 32.2%).
//
// Paper headline: median queueing delays of 1.4 ms / 2.9 ms / 13.3 ms /
// 53.5 ms for priorities 1-4, vs 39.5 ms for priority-unaware FCFS.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

ExperimentConfig PriorityTraceConfig(PolicyKind policy, TimeNs horizon) {
  workload::GoogleTraceSpec spec;
  spec.duration = horizon / 2;  // submissions stop halfway; backlog drains
  spec.mean_task_duration = FromMillis(5);
  // Oversampled (paper: "increased the sampling rate to place higher load on
  // the cluster, thereby increasing the queuing delays"): ~1.1x capacity.
  spec.mean_tasks_per_second = 1.1 * kTotalExecutors / 5e-3;
  spec.priority_levels = 4;
  spec.seed = 77;

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.policy = policy;
  config.priority_levels = 4;
  config.num_workers = kWorkers;
  config.executors_per_worker = kExecutorsPerWorker;
  config.num_clients = 4;
  config.warmup = 1;
  config.horizon = horizon;
  config.max_tasks_per_packet = 1;
  config.run_to_completion = true;
  config.timeout_multiplier = 1000.0;  // queueing is the point, not loss recovery
  config.stream = workload::GenerateGoogleTrace(spec);
  // Track per-priority histograms even for the FCFS run.
  if (policy == PolicyKind::kFcfs) {
    config.policy = PolicyKind::kPriority;
    config.priority_levels = 1;  // one class-of-service queue == FCFS
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Figure 12",
                     "queueing delay per priority level vs FCFS (5 ms Google-like trace)",
                     Quick() ? FromSeconds(2) : FromSeconds(6));
  runner.ParseFlagsOrExit(argc, argv);

  sweep::SweepSpec spec;
  spec.name = "fig12";
  spec.title = "queueing delay per priority level vs FCFS (5 ms Google-like trace)";
  spec.axis = {"policy", "n/a"};
  {
    sweep::SweepPoint point;
    point.label = "priority";
    point.series = "Draconis-Priority";
    point.config = PriorityTraceConfig(PolicyKind::kPriority, runner.horizon());
    spec.points.push_back(std::move(point));
  }
  {
    sweep::SweepPoint point;
    point.label = "fcfs";
    point.series = "Draconis-FCFS";
    point.x = 1;
    point.config = PriorityTraceConfig(PolicyKind::kFcfs, runner.horizon());
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec);
  const ExperimentResult& prio = results[0].result;
  const ExperimentResult& fcfs = results[1].result;

  PrintQuantileHeader("queueing delay");
  for (size_t level = 1; level <= 4; ++level) {
    char name[32];
    std::snprintf(name, sizeof(name), "priority %zu", level);
    PrintQuantileRow(name, prio.metrics->priority_queueing(level));
  }
  PrintQuantileRow("FCFS (all tasks)", fcfs.metrics->queueing_delay());

  std::printf(
      "\nShape check: medians ordered p1 < p2 < p3 < p4, spanning roughly two orders\n"
      "of magnitude (paper: 1.4 / 2.9 / 13.3 / 53.5 ms); the FCFS median sits between\n"
      "p3 and p4 (paper: 39.5 ms).\n");
  return 0;
}
