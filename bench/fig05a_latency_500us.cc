// Reproduces paper Fig. 5a: throughput vs p99 scheduling delay for all
// scheduling alternatives, 500 us fixed tasks on the 160-executor testbed.
//
// Paper headline: Draconis p99 = 4.7 us — 3x / 20x / 120x / 200x lower than
// RackSched / Draconis-DPDK-Server / R2P2 / Sparrow; socket-based systems
// cannot exceed ~160 ktps.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

struct System {
  const char* name;
  SchedulerKind kind;
  size_t num_schedulers = 1;
};

}  // namespace

int main() {
  PrintHeader("Figure 5a", "throughput vs p99 scheduling delay, 500 us tasks");

  const std::vector<System> systems = {
      {"Draconis", SchedulerKind::kDraconis},
      {"RackSched", SchedulerKind::kRackSched},
      {"R2P2-3", SchedulerKind::kR2P2},
      {"Draconis-DPDK-Server", SchedulerKind::kDraconisDpdkServer},
      {"Draconis-Socket-Server", SchedulerKind::kDraconisSocketServer},
      {"1 Sparrow", SchedulerKind::kSparrow, 1},
      {"2 Sparrow", SchedulerKind::kSparrow, 2},
  };
  std::vector<double> loads_ktps = {50, 100, 150, 200, 250, 290};
  if (Quick()) {
    loads_ktps = {100, 250};
  }

  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(500));

  std::printf("%-24s", "p99 sched delay");
  for (double load : loads_ktps) {
    std::printf(" %9.0fk", load);
  }
  std::printf("   (offered tasks/s)\n");

  for (const System& system : systems) {
    std::printf("%-24s", system.name);
    for (double load : loads_ktps) {
      ExperimentConfig config = SyntheticConfig(system.kind, load * 1000.0, service);
      config.num_schedulers = system.num_schedulers;
      config.jbsq_k = 3;
      ExperimentResult result = RunExperiment(config);
      std::printf(" %10s", P99OrNone(result.metrics->sched_delay()).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: Draconis lowest and flat; RackSched a few-x higher (intra-node\n"
      "dispatch); server schedulers blow up as they saturate; R2P2 pinned near the\n"
      "500 us service time (node-level blocking); Sparrow worst overall.\n");
  return 0;
}
