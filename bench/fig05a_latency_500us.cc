// Reproduces paper Fig. 5a: throughput vs p99 scheduling delay for all
// scheduling alternatives, 500 us fixed tasks on the 160-executor testbed.
//
// Paper headline: Draconis p99 = 4.7 us — 3x / 20x / 120x / 200x lower than
// RackSched / Draconis-DPDK-Server / R2P2 / Sparrow; socket-based systems
// cannot exceed ~160 ktps.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

struct System {
  const char* name;
  SchedulerKind kind;
  size_t num_schedulers = 1;
};

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Figure 5a", "throughput vs p99 scheduling delay, 500 us tasks");
  std::string scheduler = "all";
  runner.parser().AddChoice("scheduler", &scheduler, SchedulerChoices(),
                            "restrict the sweep to one scheduler kind");
  runner.ParseFlagsOrExit(argc, argv);

  const std::vector<System> all_systems = {
      {"Draconis", SchedulerKind::kDraconis},
      {"RackSched", SchedulerKind::kRackSched},
      {"R2P2-3", SchedulerKind::kR2P2},
      {"Draconis-DPDK-Server", SchedulerKind::kDraconisDpdkServer},
      {"Draconis-Socket-Server", SchedulerKind::kDraconisSocketServer},
      {"1 Sparrow", SchedulerKind::kSparrow, 1},
      {"2 Sparrow", SchedulerKind::kSparrow, 2},
  };
  std::vector<System> systems;
  for (const System& system : all_systems) {
    if (KeepScheduler(scheduler, system.kind)) {
      systems.push_back(system);
    }
  }
  std::vector<double> loads_ktps = {50, 100, 150, 200, 250, 290};
  if (Quick()) {
    loads_ktps = {100, 250};
  }

  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(500));

  sweep::SweepSpec spec;
  spec.name = "fig05a";
  spec.title = "throughput vs p99 scheduling delay, 500 us tasks";
  spec.axis = {"offered load", "ktasks/s"};
  for (const System& system : systems) {
    for (double load : loads_ktps) {
      sweep::SweepPoint point;
      point.series = system.name;
      point.x = load;
      char label[64];
      std::snprintf(label, sizeof(label), "%s@%.0fk", system.name, load);
      point.label = label;
      point.config =
          SyntheticConfig(system.kind, load * 1000.0, service, 42, 10, runner.horizon());
      point.config.num_schedulers = system.num_schedulers;
      point.config.jbsq_k = 3;
      spec.points.push_back(std::move(point));
    }
  }

  const std::vector<sweep::SweepPointResult> results = runner.Run(spec);

  std::printf("%-24s", "p99 sched delay");
  for (double load : loads_ktps) {
    std::printf(" %9.0fk", load);
  }
  std::printf("   (offered tasks/s)\n");

  size_t i = 0;
  for (const System& system : systems) {
    std::printf("%-24s", system.name);
    for (size_t col = 0; col < loads_ktps.size(); ++col, ++i) {
      std::printf(" %10s", P99OrNone(results[i].result.metrics->sched_delay()).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: Draconis lowest and flat; RackSched a few-x higher (intra-node\n"
      "dispatch); server schedulers blow up as they saturate; R2P2 pinned near the\n"
      "500 us service time (node-level blocking); Sparrow worst overall.\n");
  return 0;
}
