// Reproduces paper Fig. 9: CDF of scheduling delay on the (synthesized)
// bursty Google-trace workload, mean task duration 500 us, for Draconis,
// RackSched, R2P2 with JBSQ sizes 3/5/7/9, and the DPDK server.
//
// Paper headline: Draconis' median is 4.18 us — 24% lower than the best
// R2P2 variant (R2P2-5, 5.2 us) and 39% lower than RackSched (5.83 us);
// R2P2-1 drops 6.3% of tasks and is omitted; the DPDK server's median is
// orders of magnitude higher; increasing the JBSQ size past 5 does not help.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

workload::JobStream MakeTrace(TimeNs horizon) {
  workload::GoogleTraceSpec spec;
  spec.duration = horizon;
  // The accelerated trace drives the 160-executor cluster at a bursty ~75%
  // mean utilization; individual bursts of several hundred tasks transiently
  // exceed cluster capacity (and exhaust R2P2's credit pool).
  spec.mean_tasks_per_second = 0.75 * kTotalExecutors / 500e-6;
  spec.mean_task_duration = FromMicros(500);
  spec.max_job_size = 400;
  spec.seed = 2024;
  return workload::GenerateGoogleTrace(spec);
}

ExperimentConfig TraceConfig(SchedulerKind kind, uint32_t jbsq_k, TimeNs horizon,
                             const workload::JobStream& trace) {
  ExperimentConfig config;
  config.scheduler = kind;
  config.num_workers = kWorkers;
  config.executors_per_worker = kExecutorsPerWorker;
  config.num_clients = 4;
  config.warmup = RunWarmup();
  config.horizon = horizon;
  config.max_tasks_per_packet = 1;
  config.timeout_multiplier = 5.0;
  config.stream = trace;
  if (jbsq_k > 0) {
    config.jbsq_k = jbsq_k;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Figure 9",
                     "scheduling-delay CDF on the bursty Google-like trace (500 us mean)",
                     Quick() ? FromMillis(30) : FromMillis(120));
  runner.ParseFlagsOrExit(argc, argv);

  struct System {
    const char* name;
    SchedulerKind kind;
    uint32_t jbsq_k;
  };
  const System systems[] = {
      {"Draconis", SchedulerKind::kDraconis, 0},
      {"RackSched", SchedulerKind::kRackSched, 0},
      {"R2P2-3", SchedulerKind::kR2P2, 3},
      {"R2P2-5", SchedulerKind::kR2P2, 5},
      {"R2P2-7", SchedulerKind::kR2P2, 7},
      {"R2P2-9", SchedulerKind::kR2P2, 9},
      {"Draconis-DPDK-Server", SchedulerKind::kDraconisDpdkServer, 0},
  };

  const TimeNs horizon = runner.horizon();
  const workload::JobStream trace = MakeTrace(horizon);

  sweep::SweepSpec spec;
  spec.name = "fig09";
  spec.title = "scheduling-delay CDF on the bursty Google-like trace (500 us mean)";
  spec.axis = {"system", "n/a"};
  // The paper omits R2P2-1 from the figure because it dropped 6.3% of the
  // trace's tasks; reproduce the claim as the sweep's first point.
  {
    sweep::SweepPoint point;
    point.label = "R2P2-1";
    point.series = "R2P2-1";
    point.x = 0;
    point.config = TraceConfig(SchedulerKind::kR2P2, 1, horizon, trace);
    spec.points.push_back(std::move(point));
  }
  for (size_t s = 0; s < std::size(systems); ++s) {
    sweep::SweepPoint point;
    point.label = systems[s].name;
    point.series = systems[s].name;
    point.x = static_cast<double>(s + 1);
    point.config = TraceConfig(systems[s].kind, systems[s].jbsq_k, horizon, trace);
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec);

  std::printf("R2P2-1 dropped %.1f%% of tasks on this trace (omitted from the CDF,\n"
              "as in the paper which reports 6.3%%).\n\n",
              results[0].result.drop_fraction * 100);

  PrintQuantileHeader("sched delay");
  for (size_t s = 0; s < std::size(systems); ++s) {
    const ExperimentResult& result = results[s + 1].result;
    PrintQuantileRow(systems[s].name, result.metrics->sched_delay());
    if (result.drop_fraction > 0.0) {
      std::printf("%-24s   (dropped %.2f%% of tasks at the switch)\n", "",
                  result.drop_fraction * 100);
    }
  }

  std::printf(
      "\nShape check: Draconis' median is the lowest; R2P2-5 beats R2P2-7/9 (bigger\n"
      "JBSQ queues mean more node-level blocking) and R2P2-3 pays queueing at the\n"
      "switch; the DPDK server is orders of magnitude worse under the bursts.\n");
  return 0;
}
