// PIFO policy platform (docs/pifo.md): the same switch, five queueing
// disciplines. Sweeps the rank-ordered switch policies (strict priority,
// SRPT, EDF, per-tenant WFQ) against the FIFO baseline on the fig05a-shaped
// 500 us fixed workload and on the paper's bimodal workload (where the rank
// actually has something to separate), plus a fig05b-style no-op throughput
// point per policy showing the PIFO does not throttle the decision rate.
//
// Not a paper figure: Draconis hard-codes FIFO; this bench is the repo's
// "Programmable Packet Scheduling" extension (Sivaraman et al.). Expected
// shape: strict-priority-on-untagged and SRPT-on-fixed degenerate to FIFO;
// SRPT cuts p50/mean slowdown on the bimodal mix at high load; EDF tracks
// FIFO on homogeneous deadlines; WFQ isolates the heavy tenant.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

struct Family {
  const char* name;
  workload::ServiceTime service;
};

// Tags the stream with whatever TPROPS payload the policy ranks on. The
// arrivals and durations are identical across policies — only the tag
// interpretation differs — so the comparison isolates the discipline.
void TagForPolicy(core::SwitchPolicy policy, workload::JobStream& stream, uint64_t seed) {
  switch (policy) {
    case core::SwitchPolicy::kStrictPriority:
      workload::TagPriorities(stream, workload::PaperPriorityMix(), seed + 101);
      break;
    case core::SwitchPolicy::kEdf:
      workload::TagDeadlines(stream, /*slack=*/3.0, /*jitter_us=*/200, seed + 102);
      break;
    case core::SwitchPolicy::kWfq:
      workload::TagTenants(stream, /*num_tenants=*/2, seed + 103);
      break;
    default:
      break;  // fifo and srpt rank on arrival order / declared duration
  }
}

// A fig05b-style no-op throughput point on a 26-executor slice (small enough
// that every policy's point generates a tractable stream, large enough that
// the switch queue sees real occupancy).
ExperimentConfig NoOpConfig(TimeNs horizon) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.num_workers = 2;
  config.executors_per_worker = 13;
  config.num_clients = 8;
  config.noop_executors = true;
  config.warmup = FromMillis(5);
  config.horizon = horizon;
  config.seed = 7;
  config.max_tasks_per_packet = 1;

  // Per-executor no-op pull rate (fig05b calibration) x 26, fed 2% under so
  // the executors — not the submission plane — stay the cap.
  const double feed_tps = 0.98 * 280e3 * 26.0;
  workload::OpenLoopSpec spec;
  spec.tasks_per_second = feed_tps;
  spec.duration = config.horizon;
  spec.tasks_per_job = 16;
  spec.service = workload::ServiceTime::Fixed(0);
  spec.seed = 7;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

double SlowdownX(const stats::Histogram& slowdown_milli, double q) {
  return slowdown_milli.count() == 0
             ? 0.0
             : static_cast<double>(slowdown_milli.Percentile(q)) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("PIFO policies",
                     "switch queueing disciplines on the fig05a/fig05b workloads");
  runner.ParseFlagsOrExit(argc, argv);

  const std::vector<Family> families = {
      {"500us", workload::ServiceTime::Fixed(FromMicros(500))},
      {"bimodal", workload::ServiceTime::PaperBimodal()},
  };
  std::vector<double> utils = {0.4, 0.7, 0.9};
  if (Quick()) {
    utils = {0.5, 0.8};
  }

  sweep::SweepSpec spec;
  spec.name = "pifo_policies";
  spec.title = "switch queueing disciplines on the fig05a/fig05b workloads";
  spec.axis = {"offered utilization", "fraction"};
  for (core::SwitchPolicy policy : core::AllSwitchPolicies()) {
    const char* pname = core::SwitchPolicyName(policy);
    for (const Family& family : families) {
      for (double util : utils) {
        sweep::SweepPoint point;
        point.series = std::string(pname) + "/" + family.name;
        point.x = util;
        char label[64];
        std::snprintf(label, sizeof(label), "%s-%s@u%.0f", pname, family.name, util * 100);
        point.label = label;
        const double tps = UtilToTps(util, family.service.Mean());
        point.config = SyntheticConfig(SchedulerKind::kDraconis, tps, family.service, 42,
                                       10, runner.horizon());
        point.config.switch_policy = policy;
        point.config.wfq_weights = {3, 1};
        TagForPolicy(policy, point.config.stream, point.config.seed);
        spec.points.push_back(std::move(point));
      }
    }
    // One no-op decision-throughput point per policy (fig05b workload).
    sweep::SweepPoint noop;
    noop.series = std::string("noop/") + pname;
    noop.x = 1.0;
    noop.label = std::string("noop-") + pname;
    noop.config = NoOpConfig(runner.horizon());
    noop.config.switch_policy = policy;
    noop.config.wfq_weights = {3, 1};
    spec.points.push_back(std::move(noop));
  }

  const std::vector<sweep::SweepPointResult> results = runner.Run(
      spec, [](std::vector<sweep::SweepPointResult>& points) {
        for (sweep::SweepPointResult& point : points) {
          if (point.result.metrics == nullptr) {
            continue;
          }
          point.scalars["slowdown_p50_x"] =
              SlowdownX(point.result.metrics->slowdown_milli(), 0.50);
          point.scalars["slowdown_p99_x"] =
              SlowdownX(point.result.metrics->slowdown_milli(), 0.99);
        }
      });

  // The latency table: per policy x family row, e2e p50/p99 per utilization.
  const size_t per_policy = families.size() * utils.size() + 1;  // + the noop point
  std::printf("%-16s", "e2e delay");
  for (double util : utils) {
    char head[32];
    std::snprintf(head, sizeof(head), "u=%.2f p50/p99", util);
    std::printf(" %23s", head);
  }
  std::printf("\n");
  for (size_t p = 0; p < core::AllSwitchPolicies().size(); ++p) {
    for (size_t f = 0; f < families.size(); ++f) {
      const size_t base = p * per_policy + f * utils.size();
      std::printf("%-16s", results[base].series.c_str());
      for (size_t u = 0; u < utils.size(); ++u) {
        const cluster::MetricsHub& m = *results[base + u].result.metrics;
        std::printf(" %11s/%-11s", FormatDuration(m.e2e_delay().Percentile(0.50)).c_str(),
                    P99OrNone(m.e2e_delay()).c_str());
      }
      std::printf("\n");
    }
  }

  std::printf("\n%-16s", "slowdown (x)");
  for (double util : utils) {
    char head[32];
    std::snprintf(head, sizeof(head), "u=%.2f p50/p99", util);
    std::printf(" %23s", head);
  }
  std::printf("\n");
  for (size_t p = 0; p < core::AllSwitchPolicies().size(); ++p) {
    for (size_t f = 0; f < families.size(); ++f) {
      const size_t base = p * per_policy + f * utils.size();
      std::printf("%-16s", results[base].series.c_str());
      for (size_t u = 0; u < utils.size(); ++u) {
        const stats::Histogram& s = results[base + u].result.metrics->slowdown_milli();
        std::printf(" %11.2f/%-11.2f", SlowdownX(s, 0.50), SlowdownX(s, 0.99));
      }
      std::printf("\n");
    }
  }

  std::printf("\nno-op decision rate (fig05b workload, 26 executors):\n");
  for (size_t p = 0; p < core::AllSwitchPolicies().size(); ++p) {
    const sweep::SweepPointResult& noop = results[p * per_policy + per_policy - 1];
    std::printf("  %-6s %8.2f M decisions/s\n",
                core::SwitchPolicyName(core::AllSwitchPolicies()[p]),
                noop.result.throughput_tps / 1e6);
  }

  std::printf(
      "\nShape check: sp/srpt track fifo on the fixed 500 us workload (equal ranks\n"
      "degenerate to FIFO); srpt cuts the bimodal slowdown tail; wfq holds the\n"
      "weight-3 tenant's latency under contention; the no-op rate is flat across\n"
      "policies (the PIFO block costs no extra passes).\n");
  return 0;
}
