// Reproduces paper Fig. 5b: scheduling throughput with a no-op workload as
// the number of executors grows.
//
// Paper headline: Draconis scales linearly to 58 M decisions/s at 208
// executors (52x the best server scheduler); Draconis-DPDK-Server ~1.1 Mtps;
// Sparrow ~500 ktps (1 scheduler) / ~900 ktps (2).

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

// Per-executor no-op pull-loop rate (calibration: 58 Mtps / 208 executors).
constexpr double kPullRatePerExecutor = 280e3;

ExperimentConfig NoOpConfig(SchedulerKind kind, size_t executors, size_t num_schedulers,
                            TimeNs horizon) {
  ExperimentConfig config;
  config.scheduler = kind;
  config.num_schedulers = num_schedulers;
  // Executors spread over 13 "machines" like the paper's no-op experiment.
  config.num_workers = 13;
  config.executors_per_worker = (executors + config.num_workers - 1) / config.num_workers;
  // Feeding a 58 M decisions/s pull plane takes a fleet of submitters; the
  // paper notes even 208 no-op executors could not stress the switch itself.
  config.num_clients = kind == SchedulerKind::kDraconis ? 32 : 8;
  config.noop_executors = true;
  config.warmup = FromMillis(5);
  config.horizon = horizon;
  config.seed = 7;

  // Feed each system ~30% past its expected ceiling so the scheduler — not
  // the submission plane — is the measured bottleneck (overfeeding a server
  // by 50x would just melt its submission path, which is not what Fig. 5b
  // measures).
  const double total = config.num_workers * config.executors_per_worker;
  double feed_tps = 1.3 * 1.1e6;  // DPDK server ceiling
  switch (kind) {
    case SchedulerKind::kDraconis:
      feed_tps = 0.98 * kPullRatePerExecutor * total;  // executors are the cap
      break;
    case SchedulerKind::kDraconisSocketServer:
      feed_tps = 1.3 * 0.4e6;
      break;
    case SchedulerKind::kSparrow:
      feed_tps = 1.3 * 0.5e6 * static_cast<double>(num_schedulers);
      break;
    default:
      break;
  }
  workload::OpenLoopSpec spec;
  spec.tasks_per_second = feed_tps;
  spec.duration = config.horizon;
  spec.tasks_per_job = 16;
  spec.service = workload::ServiceTime::Fixed(0);
  spec.seed = 7;
  config.stream = workload::GenerateOpenLoop(spec);
  // Single-task packets for the switch (multi-task submissions would fight
  // over the loopback port at these rates); MTU batches for the servers.
  config.max_tasks_per_packet = kind == SchedulerKind::kDraconis ? 1 : 0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Figure 5b", "no-op scheduling throughput vs number of executors",
                     Quick() ? FromMillis(10) : FromMillis(20));
  std::string scheduler = "all";
  runner.parser().AddChoice("scheduler", &scheduler, SchedulerChoices(),
                            "restrict the sweep to one scheduler kind");
  runner.ParseFlagsOrExit(argc, argv);

  std::vector<size_t> executor_counts = {16, 52, 104, 160, 208};
  if (Quick()) {
    executor_counts = {52, 208};
  }

  struct System {
    const char* name;
    SchedulerKind kind;
    size_t schedulers;
  };
  const System all_systems[] = {
      {"Draconis", SchedulerKind::kDraconis, 1},
      {"Draconis-DPDK-Server", SchedulerKind::kDraconisDpdkServer, 1},
      {"Draconis-Socket-Server", SchedulerKind::kDraconisSocketServer, 1},
      {"1 Sparrow", SchedulerKind::kSparrow, 1},
      {"2 Sparrow", SchedulerKind::kSparrow, 2},
  };
  std::vector<System> systems;
  for (const System& system : all_systems) {
    if (KeepScheduler(scheduler, system.kind)) {
      systems.push_back(system);
    }
  }

  sweep::SweepSpec spec;
  spec.name = "fig05b";
  spec.title = "no-op scheduling throughput vs number of executors";
  spec.axis = {"executors", "count"};
  for (const System& system : systems) {
    for (size_t n : executor_counts) {
      sweep::SweepPoint point;
      point.series = system.name;
      point.x = static_cast<double>(n);
      char label[64];
      std::snprintf(label, sizeof(label), "%s@%zu", system.name, n);
      point.label = label;
      point.config = NoOpConfig(system.kind, n, system.schedulers, runner.horizon());
      spec.points.push_back(std::move(point));
    }
  }

  const auto results = runner.Run(spec);

  std::printf("%-24s", "decisions/s");
  for (size_t n : executor_counts) {
    std::printf(" %9zu", n);
  }
  std::printf("   (executors)\n");

  size_t i = 0;
  for (const System& system : systems) {
    std::printf("%-24s", system.name);
    for (size_t col = 0; col < executor_counts.size(); ++col, ++i) {
      std::printf(" %8.2fM", results[i].result.throughput_tps / 1e6);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: Draconis grows linearly with executors (the switch is never the\n"
      "bottleneck); every server scheduler plateaus at its packet-processing ceiling\n"
      "(DPDK ~1.1M, sockets ~0.4M, Sparrow ~0.5M / ~0.9M for 1 / 2 schedulers).\n");
  return 0;
}
