// Microbenchmarks (google-benchmark) for the core data structures: the
// switch queue's register operations, the event queue, histograms, RNG and
// policy checks. These guard against performance regressions in the
// simulator substrate; they do not correspond to a paper figure.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/policy.h"
#include "core/switch_queue.h"
#include "core/topology.h"
#include "sim/simulator.h"
#include "stats/histogram.h"

namespace draconis {
namespace {

core::QueueEntry MakeEntry(uint32_t tid) {
  core::QueueEntry e;
  e.task.id = net::TaskId{1, 1, tid};
  e.valid = true;
  return e;
}

void BM_SwitchQueueEnqueueDequeue(benchmark::State& state) {
  core::SwitchQueue queue("bench", 1 << 16);
  uint32_t tid = 0;
  for (auto _ : state) {
    p4::PacketPass enq;
    benchmark::DoNotOptimize(queue.Enqueue(enq, MakeEntry(tid++)));
    p4::PacketPass deq;
    benchmark::DoNotOptimize(queue.Dequeue(deq));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchQueueEnqueueDequeue);

void BM_SwitchQueueSwap(benchmark::State& state) {
  core::SwitchQueue queue("bench", 1 << 16);
  for (uint32_t i = 0; i < 1024; ++i) {
    p4::PacketPass pass;
    queue.Enqueue(pass, MakeEntry(i));
  }
  uint64_t index = 0;
  core::QueueEntry carried = MakeEntry(9999);
  for (auto _ : state) {
    p4::PacketPass pass;
    auto result = queue.SwapAt(pass, 0, index % 1024, carried);
    if (result.swapped) {
      carried = result.previous;
    }
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchQueueSwap);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.ScheduleAt(i, [&fired] { ++fired; });
    }
    simulator.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(1);
  for (auto _ : state) {
    histogram.Record(static_cast<TimeNs>(rng.NextBelow(10'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  stats::Histogram histogram;
  Rng rng(1);
  for (int i = 0; i < 1'000'000; ++i) {
    histogram.Record(static_cast<TimeNs>(rng.NextBelow(10'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Percentile(0.99));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextExponential(250.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_LocalityPolicyExamine(benchmark::State& state) {
  core::Topology topology = core::Topology::Uniform(10, 3);
  core::LocalityPolicy policy(&topology, core::LocalityPolicy::Limits{3, 9});
  core::QueueEntry entry = MakeEntry(1);
  entry.task.tprops = 4;
  uint32_t exec = 0;
  for (auto _ : state) {
    entry.skip_counter = 0;
    benchmark::DoNotOptimize(policy.ShouldAssign(entry, exec));
    exec = (exec + 1) % 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityPolicyExamine);

}  // namespace
}  // namespace draconis

BENCHMARK_MAIN();
