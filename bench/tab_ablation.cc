// Design-choice ablations (DESIGN.md §7). Not a paper figure — these isolate
// the cost/benefit of two implementation decisions:
//
// 1. Shadow-copy dequeue vs the paper's textbook overrun-and-repair dequeue:
//    how many repair recirculations each incurs and what that does to the
//    tail under an empty-queue-heavy (moderate load) workload.
// 2. Multi-task job_submission packets (one recirculation per extra task,
//    §4.3) vs trains of single-task packets: the recirculation bill of
//    batched submission.
// 3. RackSched's intra-node policy (§2.2): cFCFS (light-tailed) vs
//    preemptive Processor Sharing (heavy-tailed) on the exponential
//    workload — and how both compare to Draconis' central queue.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Table: design ablations", "shadow-copy dequeue; batched submissions");
  runner.ParseFlagsOrExit(argc, argv);

  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(100));
  const workload::ServiceTime heavy = workload::ServiceTime::PaperExponential();

  sweep::SweepSpec spec;
  spec.name = "tab_ablation";
  spec.title = "design ablations: dequeue scheme, batching, intra-node policy";
  spec.axis = {"variant", "n/a"};

  // Points 0-1: dequeue scheme (100 us tasks, 50% load: queue often empty).
  for (bool shadow : {true, false}) {
    sweep::SweepPoint point;
    point.label = shadow ? "dequeue-shadow" : "dequeue-textbook";
    point.series = "dequeue";
    point.config = SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(0.5, service.Mean()),
                                   service, 21, 10, runner.horizon());
    point.config.shadow_copy_dequeue = shadow;
    spec.points.push_back(std::move(point));
  }

  // Points 2-3: submission batching (30-task jobs, 60% load).
  for (size_t per_packet : {1, 30}) {
    sweep::SweepPoint point;
    point.label = per_packet == 1 ? "batch-1" : "batch-30";
    point.series = "batching";
    point.x = static_cast<double>(per_packet);
    point.config = SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(0.6, service.Mean()),
                                   service, 22, /*tasks_per_job=*/30, runner.horizon());
    point.config.max_tasks_per_packet = per_packet;
    spec.points.push_back(std::move(point));
  }

  // Points 4-6: RackSched intra-node policy (exponential 250 us, 70% load).
  {
    struct Row {
      const char* label;
      SchedulerKind kind;
      baselines::IntraNodePolicy intra;
    };
    const Row rows[] = {
        {"intra-cfcfs", SchedulerKind::kRackSched, baselines::IntraNodePolicy::kFcfs},
        {"intra-ps", SchedulerKind::kRackSched, baselines::IntraNodePolicy::kProcessorSharing},
        {"intra-draconis", SchedulerKind::kDraconis, baselines::IntraNodePolicy::kFcfs},
    };
    for (const Row& row : rows) {
      sweep::SweepPoint point;
      point.label = row.label;
      point.series = "intra-node";
      point.config =
          SyntheticConfig(row.kind, UtilToTps(0.7, heavy.Mean()), heavy, 23, 10,
                          runner.horizon());
      point.config.racksched_intra_policy = row.intra;
      spec.points.push_back(std::move(point));
    }
  }

  const auto results = runner.Run(spec);

  std::printf("--- dequeue scheme (100 us tasks, 50%% load: the queue is often empty) ---\n");
  std::printf("%-28s %14s %14s %12s %14s\n", "scheme", "recirc share", "repairs/s",
              "p99 sched", "drops");
  for (size_t i = 0; i < 2; ++i) {
    const ExperimentResult& result = results[i].result;
    const double seconds = ToSeconds(spec.points[i].config.horizon);
    std::printf("%-28s %13.3f%% %14.0f %12s %14llu\n",
                i == 0 ? "shadow-copy (production)" : "overrun+repair (paper §4.5)",
                result.recirculation_share * 100,
                static_cast<double>(result.counters.retrieve_repairs) / seconds,
                FormatDuration(result.metrics->sched_delay().Percentile(0.99)).c_str(),
                static_cast<unsigned long long>(result.recirc_drops));
  }

  std::printf("\n--- submission batching (30-task jobs, 60%% load) ---\n");
  std::printf("%-28s %14s %14s %12s\n", "packetization", "recirc share", "acks/s",
              "p99 sched");
  for (size_t i = 2; i < 4; ++i) {
    const ExperimentResult& result = results[i].result;
    const double seconds = ToSeconds(spec.points[i].config.horizon);
    std::printf("%-28s %13.3f%% %14.0f %12s\n",
                i == 2 ? "single-task packets" : "one 30-task packet per job",
                result.recirculation_share * 100,
                static_cast<double>(result.counters.acks_sent) / seconds,
                FormatDuration(result.metrics->sched_delay().Percentile(0.99)).c_str());
  }

  std::printf("\n--- RackSched intra-node policy (exponential 250 us tasks, 70%% load) ---\n");
  std::printf("(PS admits instantly — queueing vanishes — but stretches service;\n"
              " end-to-end shows the whole trade)\n");
  std::printf("%-28s %12s %12s %12s %12s\n", "configuration", "p50 sched", "p99 sched",
              "p50 e2e", "p99 e2e");
  const char* intra_names[] = {"RackSched + cFCFS", "RackSched + PS", "Draconis (cFCFS)"};
  for (size_t i = 4; i < 7; ++i) {
    const ExperimentResult& result = results[i].result;
    const auto& sched = result.metrics->sched_delay();
    const auto& e2e = result.metrics->e2e_delay();
    std::printf("%-28s %12s %12s %12s %12s\n", intra_names[i - 4],
                FormatDuration(sched.Percentile(0.5)).c_str(),
                FormatDuration(sched.Percentile(0.99)).c_str(),
                FormatDuration(e2e.Percentile(0.5)).c_str(),
                FormatDuration(e2e.Percentile(0.99)).c_str());
  }

  std::printf(
      "\nShape check: the textbook dequeue repairs the retrieve pointer after nearly\n"
      "every empty-queue dip while the shadow copy makes recirculation vanish; a\n"
      "30-task packet costs 29 recirculations (one enqueue per pass, §4.3) but 30x\n"
      "fewer submission packets and acks.\n");
  return 0;
}
