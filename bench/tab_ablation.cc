// Design-choice ablations (DESIGN.md §7). Not a paper figure — these isolate
// the cost/benefit of two implementation decisions:
//
// 1. Shadow-copy dequeue vs the paper's textbook overrun-and-repair dequeue:
//    how many repair recirculations each incurs and what that does to the
//    tail under an empty-queue-heavy (moderate load) workload.
// 2. Multi-task job_submission packets (one recirculation per extra task,
//    §4.3) vs trains of single-task packets: the recirculation bill of
//    batched submission.
// 3. RackSched's intra-node policy (§2.2): cFCFS (light-tailed) vs
//    preemptive Processor Sharing (heavy-tailed) on the exponential
//    workload — and how both compare to Draconis' central queue.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main() {
  PrintHeader("Table: design ablations", "shadow-copy dequeue; batched submissions");

  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(100));

  std::printf("--- dequeue scheme (100 us tasks, 50%% load: the queue is often empty) ---\n");
  std::printf("%-28s %14s %14s %12s %14s\n", "scheme", "recirc share", "repairs/s",
              "p99 sched", "drops");
  for (bool shadow : {true, false}) {
    ExperimentConfig config =
        SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(0.5, service.Mean()), service, 21);
    config.shadow_copy_dequeue = shadow;
    ExperimentResult result = RunExperiment(config);
    const double seconds = ToSeconds(config.horizon);
    std::printf("%-28s %13.3f%% %14.0f %12s %14llu\n",
                shadow ? "shadow-copy (production)" : "overrun+repair (paper §4.5)",
                result.recirculation_share * 100,
                static_cast<double>(result.draconis.retrieve_repairs) / seconds,
                FormatDuration(result.metrics->sched_delay().Percentile(0.99)).c_str(),
                static_cast<unsigned long long>(result.recirc_drops));
    std::fflush(stdout);
  }

  std::printf("\n--- submission batching (30-task jobs, 60%% load) ---\n");
  std::printf("%-28s %14s %14s %12s\n", "packetization", "recirc share", "acks/s",
              "p99 sched");
  for (size_t per_packet : {1, 30}) {
    ExperimentConfig config = SyntheticConfig(SchedulerKind::kDraconis,
                                              UtilToTps(0.6, service.Mean()), service, 22,
                                              /*tasks_per_job=*/30);
    config.max_tasks_per_packet = per_packet;
    ExperimentResult result = RunExperiment(config);
    const double seconds = ToSeconds(config.horizon);
    std::printf("%-28s %13.3f%% %14.0f %12s\n",
                per_packet == 1 ? "single-task packets" : "one 30-task packet per job",
                result.recirculation_share * 100,
                static_cast<double>(result.draconis.acks_sent) / seconds,
                FormatDuration(result.metrics->sched_delay().Percentile(0.99)).c_str());
    std::fflush(stdout);
  }

  std::printf("\n--- RackSched intra-node policy (exponential 250 us tasks, 70%% load) ---\n");
  std::printf("(PS admits instantly — queueing vanishes — but stretches service;\n"
              " end-to-end shows the whole trade)\n");
  std::printf("%-28s %12s %12s %12s %12s\n", "configuration", "p50 sched", "p99 sched",
              "p50 e2e", "p99 e2e");
  {
    const workload::ServiceTime heavy = workload::ServiceTime::PaperExponential();
    struct Row {
      const char* name;
      SchedulerKind kind;
      baselines::IntraNodePolicy intra;
    };
    const Row rows[] = {
        {"RackSched + cFCFS", SchedulerKind::kRackSched, baselines::IntraNodePolicy::kFcfs},
        {"RackSched + PS", SchedulerKind::kRackSched,
         baselines::IntraNodePolicy::kProcessorSharing},
        {"Draconis (cFCFS)", SchedulerKind::kDraconis, baselines::IntraNodePolicy::kFcfs},
    };
    for (const Row& row : rows) {
      ExperimentConfig config =
          SyntheticConfig(row.kind, UtilToTps(0.7, heavy.Mean()), heavy, 23);
      config.racksched_intra_policy = row.intra;
      ExperimentResult result = RunExperiment(config);
      const auto& sched = result.metrics->sched_delay();
      const auto& e2e = result.metrics->e2e_delay();
      std::printf("%-28s %12s %12s %12s %12s\n", row.name,
                  FormatDuration(sched.Percentile(0.5)).c_str(),
                  FormatDuration(sched.Percentile(0.99)).c_str(),
                  FormatDuration(e2e.Percentile(0.5)).c_str(),
                  FormatDuration(e2e.Percentile(0.99)).c_str());
      std::fflush(stdout);
    }
  }

  std::printf(
      "\nShape check: the textbook dequeue repairs the retrieve pointer after nearly\n"
      "every empty-queue dip while the shadow copy makes recirculation vanish; a\n"
      "30-task packet costs 29 recirculations (one enqueue per pass, §4.3) but 30x\n"
      "fewer submission packets and acks.\n");
  return 0;
}
