// Reproduces §8.2's scalability claim: "Our simulations show that Draconis
// supports clusters of millions of cores when running 500 us tasks."
//
// Three parts:
//  1. A measured small-scale run showing throughput grows linearly with
//     executors (the switch never becomes the bottleneck at testbed scale).
//  2. Measured multi-rack points on the hierarchical topology
//     (docs/topology.md): the same per-executor load spread over independent
//     ToR pipelines; bench/fig_scalability_racks pushes this to >= 10^5
//     executors. Every point's sweep JSON records num_racks and
//     cross_rack_fraction so the two series stay distinguishable downstream.
//  3. The analytic headroom model the claim rests on: per scheduling
//     decision the switch processes a fixed handful of packets (submission,
//     pull, assignment, ack/notice), so a pipeline rated at billions of
//     packets per second supports N = rate_budget * T / packets_per_decision
//     cores at task duration T; queue memory bounds the backlog it can park.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/queue_entry.h"
#include "topology/topology.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

// Packets the switch handles per scheduled task: job_submission + ack +
// completion(pull) + assignment + completion notice.
constexpr double kPacketsPerDecision = 5.0;
constexpr double kSwitchPps = 4.7e9;  // the paper's Tofino figure

double MaxCores(TimeNs task_duration) {
  // Each core generates 1/T decisions per second.
  const double decisions_budget = kSwitchPps / kPacketsPerDecision;
  return decisions_budget * ToSeconds(task_duration);
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Table: scalability analysis",
                     "switch headroom vs cluster size (paper §8.2)", FromMillis(12));
  runner.ParseFlagsOrExit(argc, argv);

  const std::vector<size_t> executor_counts = {16, 64, 160};
  const std::vector<size_t> rack_counts = {2, 4};

  sweep::SweepSpec spec;
  spec.name = "tab_scalability";
  spec.title = "switch headroom vs cluster size (paper §8.2)";
  spec.axis = {"executors", "count"};
  for (size_t executors : executor_counts) {
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kDraconis;
    config.num_workers = 8;
    config.executors_per_worker = (executors + 7) / 8;
    config.num_clients = 16;
    config.noop_executors = true;
    config.warmup = FromMillis(5);
    config.horizon = runner.horizon();
    config.max_tasks_per_packet = 1;
    const double total =
        static_cast<double>(config.num_workers * config.executors_per_worker);
    workload::OpenLoopSpec stream_spec;
    stream_spec.tasks_per_second = 0.98 * 280e3 * total;
    stream_spec.duration = config.horizon;
    stream_spec.tasks_per_job = 16;
    stream_spec.service = workload::ServiceTime::Fixed(0);
    stream_spec.seed = 70;
    config.stream = workload::GenerateOpenLoop(stream_spec);

    sweep::SweepPoint point;
    char label[32];
    std::snprintf(label, sizeof(label), "executors-%zu", executors);
    point.label = label;
    point.series = "Draconis";
    point.x = static_cast<double>(executors);
    point.config = std::move(config);
    spec.points.push_back(std::move(point));
  }
  for (size_t racks : rack_counts) {
    // Same per-executor offered load as the single-switch series, sharded
    // over `racks` independent ToR pipelines (64 executors per rack).
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kDraconis;
    config.cluster = topology::ClusterTopology::Uniform(racks, 8, 8);
    // A client is a 150 ns/packet busy server (~3M tasks/s with acks);
    // provision one per 1M offered tasks/s so the clients never become the
    // bottleneck the single-switch series doesn't have.
    config.num_clients =
        racks * std::max<size_t>(8, static_cast<size_t>(0.98 * 280e3 * 64 / 1e6) + 1);
    config.noop_executors = true;
    config.warmup = FromMillis(5);
    config.horizon = runner.horizon();
    config.max_tasks_per_packet = 1;
    const double total = static_cast<double>(config.cluster.total_executors());
    workload::OpenLoopSpec stream_spec;
    stream_spec.tasks_per_second = 0.98 * 280e3 * total;
    stream_spec.duration = config.horizon;
    stream_spec.tasks_per_job = 16;
    stream_spec.service = workload::ServiceTime::Fixed(0);
    stream_spec.seed = 70;
    config.stream = workload::GenerateOpenLoop(stream_spec);

    sweep::SweepPoint point;
    char label[32];
    std::snprintf(label, sizeof(label), "racks-%zu", racks);
    point.label = label;
    point.series = "Draconis-multirack";
    point.x = total;
    point.config = std::move(config);
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec, [&](std::vector<sweep::SweepPointResult>& rs) {
    for (sweep::SweepPointResult& r : rs) {
      // Recorded for every point (0 racks = the legacy single switch) so the
      // JSON keeps the two measured series distinguishable.
      r.scalars["num_racks"] = static_cast<double>(r.result.num_racks);
      r.scalars["cross_rack_fraction"] = r.result.cross_rack_fraction;
    }
  });

  std::printf("--- measured: pull throughput grows linearly with executors ---\n");
  std::printf("%12s %16s %18s\n", "executors", "decisions/s", "per-executor");
  for (size_t i = 0; i < executor_counts.size(); ++i) {
    const ExperimentConfig& config = spec.points[i].config;
    const double total =
        static_cast<double>(config.num_workers * config.executors_per_worker);
    std::printf("%12.0f %15.2fM %17.0fk\n", total, results[i].result.throughput_tps / 1e6,
                results[i].result.throughput_tps / total / 1e3);
  }

  std::printf("\n--- measured: multi-rack topology, same load per executor ---\n");
  std::printf("%12s %12s %16s %18s\n", "racks", "executors", "decisions/s", "per-executor");
  for (size_t i = 0; i < rack_counts.size(); ++i) {
    const sweep::SweepPointResult& r = results[executor_counts.size() + i];
    const double total = r.x;
    std::printf("%12zu %12.0f %15.2fM %17.0fk\n", rack_counts[i], total,
                r.result.throughput_tps / 1e6, r.result.throughput_tps / total / 1e3);
  }

  std::printf("\n--- analytic: cores supported at the switch packet budget ---\n");
  std::printf("(%g packets per decision against %.1f Bpps)\n\n", kPacketsPerDecision,
              kSwitchPps / 1e9);
  std::printf("%16s %20s\n", "task duration", "max cores");
  for (TimeNs duration : {FromMicros(10), FromMicros(100), FromMicros(500), FromMillis(5)}) {
    std::printf("%16s %19.1fM\n", FormatDuration(duration).c_str(),
                MaxCores(duration) / 1e6);
  }

  std::printf("\n--- queue memory: tasks the switch can park (§7) ---\n");
  std::printf("per-entry footprint %zu B: 164K entries = %.1f MiB (Tofino-1), "
              "1M entries = %.1f MiB (Tofino-2)\n",
              core::QueueEntry::kWireSize,
              164.0 * 1024 * core::QueueEntry::kWireSize / (1024 * 1024),
              1024.0 * 1024 * core::QueueEntry::kWireSize / (1024 * 1024));

  std::printf(
      "\nShape check: measured throughput is ~280k decisions/s per executor with no\n"
      "switch-side plateau in sight; the packet budget alone supports clusters of\n"
      "hundreds of thousands of cores at 500 us tasks and millions at millisecond\n"
      "tasks — matching the paper's simulation-based claim.\n");
  return 0;
}
