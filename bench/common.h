// Shared helpers for the figure-reproduction benches.
//
// Every bench binary reproduces one table or figure from the paper: it
// builds a sweep::SweepSpec for the figure's points (paper scale: 10 workers
// x 16 executors unless the experiment says otherwise), runs it through
// SweepRunner — which owns the standard flags (--parallelism, --json,
// --csv-dir, --horizon, --progress) — and prints the series as an aligned
// text table from the ordered results.
//
// Environment:
//   DRACONIS_BENCH_QUICK=1   shrink run horizons / sweep points (dev mode)

#ifndef DRACONIS_BENCH_COMMON_H_
#define DRACONIS_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "core/rank_function.h"
#include "fault/plan.h"
#include "sim/event_queue.h"
#include "sweep/report.h"
#include "sweep/sweep.h"
#include "trace/export.h"
#include "workload/generators.h"
#include "workload/google_trace.h"

namespace draconis::bench {

inline bool Quick() {
  const char* env = std::getenv("DRACONIS_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

// Measurement horizon per run.
inline TimeNs RunHorizon() { return Quick() ? FromMillis(15) : FromMillis(40); }
inline TimeNs RunWarmup() { return FromMillis(5); }

// The paper's testbed shape.
inline constexpr size_t kWorkers = 10;
inline constexpr size_t kExecutorsPerWorker = 16;
inline constexpr size_t kTotalExecutors = kWorkers * kExecutorsPerWorker;

// Tasks/s that produce `util` cluster utilization for a mean service time.
inline double UtilToTps(double util, TimeNs mean_service) {
  return util * static_cast<double>(kTotalExecutors) / ToSeconds(mean_service);
}

// A paper-scale cluster running an open-loop synthetic workload. The paper's
// clients "submit jobs with configurable sizes"; jobs default to 10-task
// batches submitted as trains of single-task packets (see EXPERIMENTS.md) —
// the burstiness behind R2P2's node-level blocking and drops.
// `horizon` = 0 uses RunHorizon(); benches pass SweepRunner::horizon() so
// --horizon reaches every point.
inline cluster::ExperimentConfig SyntheticConfig(cluster::SchedulerKind kind, double tps,
                                                 const workload::ServiceTime& service,
                                                 uint64_t seed = 42,
                                                 size_t tasks_per_job = 10,
                                                 TimeNs horizon = 0) {
  cluster::ExperimentConfig config;
  config.scheduler = kind;
  config.num_workers = kWorkers;
  config.executors_per_worker = kExecutorsPerWorker;
  config.num_clients = 4;
  config.warmup = RunWarmup();
  config.horizon = horizon > 0 ? horizon : RunHorizon();
  config.max_tasks_per_packet = 1;
  // The paper sets client timeouts to 2x the execution time and notes that
  // typical clients use 5-10x. Our simulated baselines' tails sit closer to
  // the timeout than the authors' testbed did, and at 2-3x R2P2-3 collapses
  // into a resubmission spiral the paper's R2P2-3 did not exhibit — so the
  // suite runs at the bottom of the typical band.
  config.timeout_multiplier = 5.0;
  config.seed = seed;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = tps;
  spec.duration = config.horizon;
  spec.tasks_per_job = tasks_per_job;
  spec.service = service;
  spec.seed = seed;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

// p99 of a histogram, or "(none)" when nothing completed in the window (a
// saturated scheduler).
inline std::string P99OrNone(const stats::Histogram& h) {
  return h.count() == 0 ? "(none)" : FormatDuration(h.Percentile(0.99));
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==========================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated reproduction; see EXPERIMENTS.md for paper-vs-measured notes)\n");
  std::printf("==========================================================================\n");
}

// Prints a CDF as a fixed set of quantiles, one line per system.
inline void PrintQuantileRow(const char* name, const stats::Histogram& h) {
  std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", name,
              FormatDuration(h.Percentile(0.50)).c_str(),
              FormatDuration(h.Percentile(0.66)).c_str(),
              FormatDuration(h.Percentile(0.90)).c_str(),
              FormatDuration(h.Percentile(0.95)).c_str(),
              FormatDuration(h.Percentile(0.99)).c_str(),
              FormatDuration(h.Percentile(0.999)).c_str());
}

inline void PrintQuantileHeader(const char* label) {
  std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", label, "p50", "p66", "p90", "p95",
              "p99", "p99.9");
}

// Valid values for a --scheduler flag (AddChoice); "all" disables filtering.
// The kind names come from the DeploymentRegistry, so a newly registered
// scheduler is selectable in every bench without touching this file.
inline std::vector<std::string> SchedulerChoices() {
  std::vector<std::string> choices = {"all"};
  for (const std::string& flag : cluster::DeploymentRegistry::Get().FlagChoices()) {
    choices.push_back(flag);
  }
  return choices;
}

// True when a --scheduler choice selects systems of this kind.
inline bool KeepScheduler(const std::string& choice, cluster::SchedulerKind kind) {
  if (choice == "all") {
    return true;
  }
  cluster::SchedulerKind want;
  return cluster::SchedulerKindFromName(choice, &want) && want == kind;
}

// Valid values for the --switch-policy flag (AddChoice): the switch
// queueing disciplines of docs/pifo.md, "fifo" first (the default).
inline std::vector<std::string> SwitchPolicyChoices() {
  std::vector<std::string> choices;
  for (core::SwitchPolicy policy : core::AllSwitchPolicies()) {
    choices.push_back(core::SwitchPolicyName(policy));
  }
  return choices;
}

// Valid values for the --sim-queue flag (AddChoice): the event-queue
// backends of src/sim/event_queue.h, the default backend first.
inline std::vector<std::string> SimQueueChoices() {
  std::vector<std::string> choices;
  for (sim::QueueBackend backend : sim::AllQueueBackends()) {
    choices.push_back(sim::QueueBackendName(backend));
  }
  return choices;
}

// Drives one bench binary: owns the flag parser with the standard sweep
// flags, executes the spec via sweep::RunSweep, and writes the --json /
// --csv-dir reports. Bench-specific flags register through parser() before
// ParseFlagsOrExit.
class SweepRunner {
 public:
  // Benches whose run window is not a plain horizon (phased workloads, the
  // static capacity table) pass kNoHorizonFlag so --horizon is not offered.
  static constexpr TimeNs kNoHorizonFlag = -1;

  // `default_horizon` = 0 uses RunHorizon(); benches whose paper setup runs a
  // different window (e.g. the no-op throughput test) pass their own.
  SweepRunner(const std::string& figure, const std::string& description,
              TimeNs default_horizon = 0)
      : figure_(figure),
        description_(description),
        parser_(figure + " — " + description) {
    if (default_horizon > 0) {
      horizon_ = default_horizon;
    }
    parser_.AddInt64("parallelism", &parallelism_,
                     "sweep worker threads (0 = all hardware threads, 1 = serial)");
    parser_.AddString("json", &json_path_, "write the sweep report as JSON to this path");
    parser_.AddString("csv-dir", &csv_dir_,
                      "dump per-point latency CDFs as CSVs into this directory");
    parser_.AddBool("progress", &progress_, "print per-point progress to stderr");
    if (default_horizon != kNoHorizonFlag) {
      parser_.AddDuration("horizon", &horizon_, "measurement horizon per experiment point");
    }
    parser_.AddBool("trace", &trace_,
                    "record sampled task-lifecycle traces per point (docs/observability.md)");
    parser_.AddInt64("trace-sample", &trace_sample_,
                     "trace 1-in-N tasks by deterministic id hash (1 = every task)");
    parser_.AddString("trace-dir", &trace_dir_,
                      "directory for <bench>_<point>_{trace,attribution}.json outputs");
    parser_.AddString("fault-plan", &fault_plan_path_,
                      "apply this JSON fault plan to every sweep point "
                      "(docs/fault_injection.md)");
    parser_.AddChoice("switch-policy", &switch_policy_, SwitchPolicyChoices(),
                      "switch queueing discipline for every point (docs/pifo.md); "
                      "non-fifo values need a PIFO-capable kind — combine with "
                      "--scheduler=draconis");
    parser_.AddChoice("sim-queue", &sim_queue_, SimQueueChoices(),
                      "event-queue backend for every point's simulator "
                      "(docs/simulation.md); both produce bit-identical runs");
  }

  flags::Parser& parser() { return parser_; }
  TimeNs horizon() const { return horizon_; }
  bool has_fault_plan() const { return !fault_plan_path_.empty(); }

  // Loads the --fault-plan file (exits on parse errors) and disowns it, so
  // Run() will not auto-apply it to every point — for benches that assign
  // the plan to their own subset of points (fig14's failover series keeps a
  // no-fault baseline series next to it). Returns false when the flag was
  // not passed.
  bool TakeFaultPlan(fault::FaultPlan* out) {
    if (fault_plan_path_.empty()) {
      return false;
    }
    std::string error;
    if (!fault::FaultPlan::FromJsonFile(fault_plan_path_, out, &error)) {
      std::fprintf(stderr, "--fault-plan: %s\n", error.c_str());
      std::exit(2);
    }
    fault_plan_path_.clear();
    return true;
  }

  void ParseFlagsOrExit(int argc, const char* const* argv) {
    std::string error;
    if (!parser_.Parse(argc, argv, &error)) {
      std::fprintf(stderr, "%s\n\n%s", error.c_str(), parser_.Usage().c_str());
      std::exit(2);
    }
    if (parser_.help_requested()) {
      std::fputs(parser_.Usage().c_str(), stdout);
      std::exit(0);
    }
  }

  // Prints the figure header, runs the sweep, and writes the --json /
  // --csv-dir outputs. `annotate` (optional) fills per-point scalars before
  // the report is rendered. Results come back in point order.
  std::vector<sweep::SweepPointResult> Run(
      const sweep::SweepSpec& spec,
      const std::function<void(std::vector<sweep::SweepPointResult>&)>& annotate = nullptr) {
    PrintHeader(figure_.c_str(), description_.c_str());
    // --trace: run the same points with the recorder enabled. Sampling is a
    // pure hash of each task id, so traced results are bit-identical to
    // untraced ones (tests/determinism_test.cc).
    const sweep::SweepSpec* active = &spec;
    sweep::SweepSpec modified;
    const std::string default_sim_queue =
        sim::QueueBackendName(sim::kDefaultQueueBackend);
    if (trace_ || !fault_plan_path_.empty() || switch_policy_ != "fifo" ||
        sim_queue_ != default_sim_queue) {
      modified = spec;
      // --sim-queue: the same event-queue backend in every point's
      // simulator. Results are bit-identical across backends (the (time,
      // seq) contract); the flag exists for cross-checking exactly that and
      // for timing comparisons.
      if (sim_queue_ != default_sim_queue) {
        sim::QueueBackend backend = sim::kDefaultQueueBackend;
        sim::QueueBackendFromName(sim_queue_, &backend);  // choices pre-validated
        for (sweep::SweepPoint& point : modified.points) {
          point.config.sim_queue = backend;
          const std::string invalid = point.config.Validate();
          if (!invalid.empty()) {
            std::fprintf(stderr, "--sim-queue: point %s: %s\n", point.label.c_str(),
                         invalid.c_str());
            std::exit(2);
          }
        }
      }
      // --switch-policy: the same switch queueing discipline on every point.
      // Points whose scheduler kind cannot host a PIFO fail validation, so a
      // mixed-kind sweep needs a --scheduler filter first.
      if (switch_policy_ != "fifo") {
        core::SwitchPolicy sp = core::SwitchPolicy::kFifo;
        core::SwitchPolicyFromName(switch_policy_, &sp);  // choices pre-validated
        for (sweep::SweepPoint& point : modified.points) {
          point.config.switch_policy = sp;
          const std::string invalid = point.config.Validate();
          if (!invalid.empty()) {
            std::fprintf(stderr, "--switch-policy: point %s: %s\n", point.label.c_str(),
                         invalid.c_str());
            std::exit(2);
          }
        }
      }
      if (trace_) {
        for (sweep::SweepPoint& point : modified.points) {
          point.config.trace.enabled = true;
          point.config.trace.sample_period =
              trace_sample_ <= 0 ? 1 : static_cast<uint64_t>(trace_sample_);
        }
      }
      // --fault-plan: the same deterministic fault timeline on every point.
      if (!fault_plan_path_.empty()) {
        fault::FaultPlan plan;
        std::string error;
        if (!fault::FaultPlan::FromJsonFile(fault_plan_path_, &plan, &error)) {
          std::fprintf(stderr, "--fault-plan: %s\n", error.c_str());
          std::exit(2);
        }
        for (sweep::SweepPoint& point : modified.points) {
          point.config.fault_plan = plan;
          const std::string invalid = point.config.Validate();
          if (!invalid.empty()) {
            std::fprintf(stderr, "--fault-plan: point %s: %s\n", point.label.c_str(),
                         invalid.c_str());
            std::exit(2);
          }
        }
      }
      active = &modified;
    }
    sweep::SweepOptions options;
    options.parallelism = parallelism_ < 0 ? 1 : static_cast<size_t>(parallelism_);
    if (progress_) {
      options.on_progress = [](size_t completed, size_t total,
                               const sweep::SweepPointResult& done) {
        std::fprintf(stderr, "[%zu/%zu] %s\n", completed, total, done.label.c_str());
      };
    }
    std::vector<sweep::SweepPointResult> results = sweep::RunSweep(*active, options);
    if (annotate) {
      annotate(results);
    }
    if (trace_) {
      for (const sweep::SweepPointResult& r : results) {
        if (r.result.trace == nullptr) {
          continue;
        }
        const std::string dir = trace_dir_.empty() ? std::string(".") : trace_dir_;
        const std::string base =
            dir + "/" + spec.name + "_" + trace::SanitizeForFilename(r.label);
        const std::string tag = spec.name + "/" + r.label;
        trace::WriteChromeTraceFile(base + "_trace.json", *r.result.trace, tag);
        const trace::AttributionReport attribution = trace::BuildAttribution(*r.result.trace);
        trace::WriteAttributionFile(base + "_attribution.json", attribution, *r.result.trace,
                                    tag);
        std::fprintf(stderr, "trace: %s_{trace,attribution}.json\n", base.c_str());
      }
    }
    sweep::ReportOptions report;
    report.parallelism = sweep::EffectiveParallelism(options.parallelism, spec.points.size());
    report.quick = Quick();
    // Report against *active, not spec: per-point flag overrides
    // (--sim-queue, --switch-policy, --fault-plan) must be visible in the
    // recorded configs.
    if (!json_path_.empty()) {
      sweep::WriteJsonFile(json_path_, *active, results, report);
    }
    if (!csv_dir_.empty()) {
      sweep::WriteCsvDir(csv_dir_, *active, results);
    }
    return results;
  }

 private:
  std::string figure_;
  std::string description_;
  flags::Parser parser_;
  int64_t parallelism_ = 0;
  std::string json_path_;
  std::string csv_dir_;
  bool progress_ = true;
  bool trace_ = false;
  int64_t trace_sample_ = 64;
  std::string trace_dir_ = ".";
  std::string fault_plan_path_;
  std::string switch_policy_ = "fifo";
  std::string sim_queue_ = sim::QueueBackendName(sim::kDefaultQueueBackend);
  TimeNs horizon_ = RunHorizon();
};

}  // namespace draconis::bench

#endif  // DRACONIS_BENCH_COMMON_H_
