// Shared helpers for the figure-reproduction benches.
//
// Every bench binary reproduces one table or figure from the paper: it
// configures the simulated testbed (paper scale: 10 workers x 16 executors
// unless the experiment says otherwise), sweeps the figure's x-axis, and
// prints the series as an aligned text table.
//
// Environment:
//   DRACONIS_BENCH_QUICK=1   shrink run horizons / sweep points (dev mode)

#ifndef DRACONIS_BENCH_COMMON_H_
#define DRACONIS_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "workload/generators.h"
#include "workload/google_trace.h"

namespace draconis::bench {

inline bool Quick() {
  const char* env = std::getenv("DRACONIS_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

// Measurement horizon per run.
inline TimeNs RunHorizon() { return Quick() ? FromMillis(15) : FromMillis(40); }
inline TimeNs RunWarmup() { return FromMillis(5); }

// The paper's testbed shape.
inline constexpr size_t kWorkers = 10;
inline constexpr size_t kExecutorsPerWorker = 16;
inline constexpr size_t kTotalExecutors = kWorkers * kExecutorsPerWorker;

// Tasks/s that produce `util` cluster utilization for a mean service time.
inline double UtilToTps(double util, TimeNs mean_service) {
  return util * static_cast<double>(kTotalExecutors) / ToSeconds(mean_service);
}

// A paper-scale cluster running an open-loop synthetic workload. The paper's
// clients "submit jobs with configurable sizes"; jobs default to 10-task
// batches submitted as trains of single-task packets (see EXPERIMENTS.md) —
// the burstiness behind R2P2's node-level blocking and drops.
inline cluster::ExperimentConfig SyntheticConfig(cluster::SchedulerKind kind, double tps,
                                                 const workload::ServiceTime& service,
                                                 uint64_t seed = 42,
                                                 size_t tasks_per_job = 10) {
  cluster::ExperimentConfig config;
  config.scheduler = kind;
  config.num_workers = kWorkers;
  config.executors_per_worker = kExecutorsPerWorker;
  config.num_clients = 4;
  config.warmup = RunWarmup();
  config.horizon = RunHorizon();
  config.max_tasks_per_packet = 1;
  // The paper sets client timeouts to 2x the execution time and notes that
  // typical clients use 5-10x. Our simulated baselines' tails sit closer to
  // the timeout than the authors' testbed did, and at 2-3x R2P2-3 collapses
  // into a resubmission spiral the paper's R2P2-3 did not exhibit — so the
  // suite runs at the bottom of the typical band.
  config.timeout_multiplier = 5.0;
  config.seed = seed;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = tps;
  spec.duration = config.horizon;
  spec.tasks_per_job = tasks_per_job;
  spec.service = service;
  spec.seed = seed;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

// p99 of a histogram, or "(none)" when nothing completed in the window (a
// saturated scheduler).
inline std::string P99OrNone(const stats::Histogram& h) {
  return h.count() == 0 ? "(none)" : FormatDuration(h.Percentile(0.99));
}

// When DRACONIS_BENCH_CSV_DIR is set, dumps the histogram's CDF to
// <dir>/<figure>_<series>.csv (value_ns,fraction) for external plotting.
inline void MaybeDumpCdf(const char* figure, const std::string& series,
                         const stats::Histogram& h) {
  const char* dir = std::getenv("DRACONIS_BENCH_CSV_DIR");
  if (dir == nullptr || h.count() == 0) {
    return;
  }
  std::string name = series;
  for (char& c : name) {
    if (c == ' ' || c == '/' || c == '(' || c == ')') {
      c = '_';
    }
  }
  const std::string path = std::string(dir) + "/" + figure + "_" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return;
  }
  std::fprintf(f, "value_ns,fraction\n");
  for (const stats::CdfPoint& p : h.Cdf()) {
    std::fprintf(f, "%lld,%.6f\n", static_cast<long long>(p.value), p.fraction);
  }
  std::fclose(f);
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==========================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(simulated reproduction; see EXPERIMENTS.md for paper-vs-measured notes)\n");
  std::printf("==========================================================================\n");
}

// Prints a CDF as a fixed set of quantiles, one line per system.
inline void PrintQuantileRow(const char* name, const stats::Histogram& h) {
  std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", name,
              FormatDuration(h.Percentile(0.50)).c_str(),
              FormatDuration(h.Percentile(0.66)).c_str(),
              FormatDuration(h.Percentile(0.90)).c_str(),
              FormatDuration(h.Percentile(0.95)).c_str(),
              FormatDuration(h.Percentile(0.99)).c_str(),
              FormatDuration(h.Percentile(0.999)).c_str());
}

inline void PrintQuantileHeader(const char* label) {
  std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", label, "p50", "p66", "p90", "p95",
              "p99", "p99.9");
}

}  // namespace draconis::bench

#endif  // DRACONIS_BENCH_COMMON_H_
