// Reproduces §7's capacity analysis: how much switch SRAM the Draconis
// queues consume, and what queue sizes / priority-level counts fit on
// Tofino-1 vs Tofino-2 class hardware.
//
// Paper numbers: 164 K tasks on their (first-generation) switch, an
// estimated 1 M tasks and 12 priority levels on Tofino 2.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "p4/register.h"

using namespace draconis;
using namespace draconis::bench;

namespace {

// Register SRAM budgets available to a user program (order-of-magnitude
// figures for the two switch generations).
constexpr double kTofino1Sram = 12.0 * 1024 * 1024;  // ~12 MiB
constexpr double kTofino2Sram = 64.0 * 1024 * 1024;  // ~64 MiB

size_t QueueBytes(size_t capacity, size_t levels) {
  core::PriorityPolicy policy(levels);
  p4::ResourceLedger ledger;
  core::DraconisConfig config;
  config.queue_capacity = capacity;
  core::DraconisProgram program(&policy, config, &ledger);
  return ledger.total_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Table: switch memory capacity", "queue sizes vs switch SRAM budgets (§7)",
                     SweepRunner::kNoHorizonFlag);
  runner.ParseFlagsOrExit(argc, argv);

  struct Config {
    const char* name;
    size_t capacity;
    size_t levels;
  };
  const std::vector<Config> configs = {
      {"FCFS, 164K entries", 164 * 1024, 1},
      {"FCFS, 1M entries", 1024 * 1024, 1},
      {"4 levels x 64K", 64 * 1024, 4},
      {"4 levels x 164K", 164 * 1024, 4},
      {"12 levels x 64K", 64 * 1024, 12},
      {"12 levels x 164K", 164 * 1024, 12},
  };

  sweep::SweepSpec spec;
  spec.name = "tab_capacity";
  spec.title = "queue sizes vs switch SRAM budgets (§7)";
  spec.axis = {"queue capacity", "entries"};
  // No simulation: each point is a static SRAM-footprint computation, done in
  // the annotate pass below.
  spec.run = [](const cluster::ExperimentConfig&) { return cluster::ExperimentResult{}; };
  for (const Config& config : configs) {
    sweep::SweepPoint point;
    point.label = config.name;
    point.series = "capacity";
    point.x = static_cast<double>(config.capacity);
    point.config.queue_capacity = config.capacity;
    point.config.priority_levels = config.levels;
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec, [&spec](std::vector<sweep::SweepPointResult>& points) {
    for (sweep::SweepPointResult& point : points) {
      const cluster::ExperimentConfig& config = spec.points[point.index].config;
      point.scalars["register_sram_bytes"] =
          static_cast<double>(QueueBytes(config.queue_capacity, config.priority_levels));
    }
  });

  std::printf("per-entry footprint: %zu bytes (TASK_INFO %zu + client 6 + skip/valid 4)\n\n",
              core::QueueEntry::kWireSize, net::TaskInfo::kWireSize);

  std::printf("%-28s %14s %12s %12s\n", "configuration", "register SRAM", "Tofino-1?",
              "Tofino-2?");
  for (size_t i = 0; i < configs.size(); ++i) {
    const double bytes = results[i].scalars.at("register_sram_bytes");
    std::printf("%-28s %11.2f MiB %12s %12s\n", configs[i].name, bytes / (1024 * 1024),
                bytes <= kTofino1Sram ? "fits" : "no", bytes <= kTofino2Sram ? "fits" : "no");
  }

  std::printf(
      "\nShape check: the paper's 164K-task FCFS queue fits first-generation hardware;\n"
      "a ~1M-task queue and ~12 priority levels need a Tofino-2 class budget (§7).\n");
  return 0;
}
