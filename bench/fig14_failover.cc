// Reproduces the paper's §3.3 failover experiment (we label it Fig. 14; the
// paper describes it in prose): mid-run the active Draconis switch fails
// hard, a cold standby is promoted, executors rehome immediately and clients
// rehome through their own timeouts. Queue state on the dead switch is NOT
// replicated — it is reconstructed by client timeout resubmission, which is
// safe because duplicate completions are suppressed (§8.3).
//
// Shape check: zero tasks lost with resubmission on, a bounded
// time-to-recover (the unavailability window is a few client timeouts), and
// post-recovery p99 back within noise of the pre-fault p99.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

std::string DurationOrNone(TimeNs t) { return t < 0 ? "(none)" : FormatDuration(t); }

}  // namespace

int main(int argc, char** argv) {
  // Fixed 40 ms horizon even under DRACONIS_BENCH_QUICK: the post-fault
  // phase needs room after the recovery tail to show steady-state latency.
  SweepRunner runner("Figure 14", "§3.3 scheduler failover: recovery after switch failure",
                     FromMillis(40));
  runner.ParseFlagsOrExit(argc, argv);

  // Default plan: the active switch dies halfway through the measurement
  // window. --fault-plan substitutes a custom timeline for the same series.
  const TimeNs warmup = RunWarmup();
  const TimeNs failover_at = warmup + (runner.horizon() - warmup) / 2;
  fault::FaultPlan plan;
  if (!runner.TakeFaultPlan(&plan)) {
    plan.SchedulerFailover(failover_at);
  }

  std::vector<double> loads_ktps = {50, 150, 250};
  if (Quick()) {
    loads_ktps = {150};
  }
  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(500));

  sweep::SweepSpec spec;
  spec.name = "fig14";
  spec.title = "scheduler failover: recovery after switch failure";
  spec.axis = {"offered load", "ktasks/s"};
  for (const bool faulted : {false, true}) {
    for (double load : loads_ktps) {
      sweep::SweepPoint point;
      point.series = faulted ? "Draconis+failover" : "Draconis";
      point.x = load;
      char label[64];
      std::snprintf(label, sizeof(label), "%s@%.0fk", faulted ? "failover" : "baseline", load);
      point.label = label;
      point.config = SyntheticConfig(SchedulerKind::kDraconis, load * 1000.0, service, 42, 10,
                                     runner.horizon());
      if (faulted) {
        point.config.fault_plan = plan;
        // During->post boundary: reconstruction-by-resubmission needs a few
        // client timeouts (~2.5 ms each at 500 us tasks), so completions up
        // to 10 ms past the onset count as the recovery tail, not as
        // post-recovery steady state.
        point.config.fault_settle = FromMillis(10);
      }
      spec.points.push_back(std::move(point));
    }
  }

  const std::vector<sweep::SweepPointResult> results = runner.Run(spec);

  const size_t n = loads_ktps.size();
  std::printf("%-12s %12s %12s %12s %10s %10s %8s %8s %8s\n", "load", "recover", "unavail",
              "resubmits", "lost", "rehomes", "pre p99", "dur p99", "post p99");
  for (size_t col = 0; col < n; ++col) {
    const sweep::SweepPointResult& base = results[col];
    const sweep::SweepPointResult& fail = results[n + col];
    const RecoveryStats& rec = fail.result.recovery;
    const MetricsHub& m = *fail.result.metrics;
    char load[24];
    std::snprintf(load, sizeof(load), "%.0fk", loads_ktps[col]);
    std::printf("%-12s %12s %12s %12llu %10llu %10llu %8s %8s %8s\n", load,
                DurationOrNone(rec.time_to_recover).c_str(),
                DurationOrNone(rec.unavailability).c_str(),
                static_cast<unsigned long long>(rec.tasks_resubmitted),
                static_cast<unsigned long long>(rec.tasks_lost),
                static_cast<unsigned long long>(rec.client_rehomes + rec.executor_rehomes),
                P99OrNone(m.e2e_pre_fault()).c_str(), P99OrNone(m.e2e_during_fault()).c_str(),
                P99OrNone(m.e2e_post_fault()).c_str());
    std::printf("%-12s %12s %12s %12llu %10s %10s %8s %8s %8s   (no-fault baseline)\n", "",
                "-", "-",
                static_cast<unsigned long long>(
                    base.result.metrics->timeout_resubmissions()),
                "-", "-", "-", "-", P99OrNone(base.result.metrics->e2e_delay()).c_str());
  }

  std::printf(
      "\nShape check: zero lost tasks (timeout resubmission reconstructs the dead\n"
      "switch's queue, duplicates suppressed per §8.3); recovery within a few client\n"
      "timeouts; post-recovery p99 within noise of the no-fault baseline p99.\n");
  return 0;
}
