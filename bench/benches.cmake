# Bench binaries land directly in build/bench/ with no CMake bookkeeping
# directories, so `for b in build/bench/*; do $b; done` runs them all.

set(DRACONIS_BENCH_LIBS
  draconis_sweep
  draconis_cluster
  draconis_fault
  draconis_baselines
  draconis_core
  draconis_workload
  draconis_p4
  draconis_trace
  draconis_net
  draconis_metrics
  draconis_stats
  draconis_sim
  draconis_common
)

function(draconis_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE ${DRACONIS_BENCH_LIBS})
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

draconis_add_bench(fig05a_latency_500us)
draconis_add_bench(fig05b_throughput)
draconis_add_bench(fig06_synthetic_suite)
draconis_add_bench(fig07_recirculation)
draconis_add_bench(fig08_jbsq_size)
draconis_add_bench(fig09_google_trace)
draconis_add_bench(fig10_locality)
draconis_add_bench(fig11_resource)
draconis_add_bench(fig12_priority)
draconis_add_bench(fig13_gettask_overhead)
draconis_add_bench(fig14_failover)
# Not a paper figure: the PIFO switch-policy platform (docs/pifo.md);
# emits BENCH_pifo.json in CI.
draconis_add_bench(fig_pifo_policies)
# Not a paper figure: measured multi-rack scalability on the hierarchical
# topology (docs/topology.md); emits BENCH_scalability.json in CI.
draconis_add_bench(fig_scalability_racks)
draconis_add_bench(tab_efficiency)
draconis_add_bench(tab_capacity)
draconis_add_bench(tab_ablation)
draconis_add_bench(tab_scalability)

draconis_add_bench(micro_core)
target_link_libraries(micro_core PRIVATE benchmark::benchmark)

# Event-core wall-clock bench; emits BENCH_sim_core.json (see EXPERIMENTS.md).
draconis_add_bench(micro_sim)

# Tracing-overhead bench; emits BENCH_trace.json (see docs/observability.md).
draconis_add_bench(micro_trace)
