// Reproduces paper Fig. 13: get_task() latency per priority level — the cost
// of probing the per-level queues via packet recirculation (§8.7).
//
// Paper headline: the median and p90 get_task() latencies differ by only
// 1-2 us between the highest and lowest priority level; recirculation
// overhead is negligible.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Figure 13", "get_task() latency per priority level");
  runner.ParseFlagsOrExit(argc, argv);

  // A mixed-priority workload slightly over capacity, matching the paper's
  // loaded Fig. 12/13 setup: the low-priority queue holds a standing backlog
  // so every pull is a real fetch (an *idle* fleet would hammer the loopback
  // port with empty-level probes — see EXPERIMENTS.md). Level-p fetches cost
  // p-1 recirculating probes.
  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(500));
  ExperimentConfig config =
      SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(1.05, service.Mean()), service, 55,
                      10, runner.horizon());
  config.policy = PolicyKind::kPriority;
  config.priority_levels = 4;
  config.timeout_multiplier = 1e9;  // the backlog is intentional
  workload::TagPriorities(config.stream, {0.25, 0.25, 0.25, 0.25}, 99);

  sweep::SweepSpec spec;
  spec.name = "fig13";
  spec.title = "get_task() latency per priority level";
  spec.axis = {"priority level", "level"};
  {
    sweep::SweepPoint point;
    point.label = "priority-mix";
    point.series = "Draconis-Priority";
    point.config = std::move(config);
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec);
  const ExperimentResult& result = results[0].result;

  std::printf("%-14s %10s %10s %10s\n", "level", "p50", "p90", "p99");
  for (size_t level = 1; level <= 4; ++level) {
    const auto& h = result.metrics->priority_get_task(level);
    std::printf("priority %-5zu %10s %10s %10s\n", level,
                FormatDuration(h.Percentile(0.5)).c_str(),
                FormatDuration(h.Percentile(0.9)).c_str(),
                FormatDuration(h.Percentile(0.99)).c_str());
  }
  std::printf("(priority probes recirculated: %llu)\n",
              static_cast<unsigned long long>(result.counters.priority_probes));

  std::printf(
      "\nShape check: each lower priority level adds roughly one recirculation\n"
      "(~1 us) to the get_task() path; medians differ by only 1-2 us end to end.\n");
  return 0;
}
