// Reproduces paper Fig. 10 + §8.5 text: locality-aware scheduling vs FCFS on
// a 3-rack cluster with 100 us CPU tasks whose (unreplicated) input data
// lives on exactly one node. Intra-rack data access costs 20 us, inter-rack
// 100 us.
//
// Paper headline: with rack_start_limit=3 / global_start_limit=9 the policy
// places 27.66% of tasks data-local and 38.82% rack-local (vs 10.03% /
// 24.05% for FCFS); median end-to-end latency drops from 203.87 us to
// 131.35 us, with FCFS winning again past the ~66th percentile.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

ExperimentConfig LocalityConfig(PolicyKind policy, TimeNs horizon) {
  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(100));
  // ~55% CPU utilization before data-access penalties; single-task jobs (the
  // workload models a steady stream of independent scan chunks).
  ExperimentConfig config =
      SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(0.55, service.Mean()), service, 91,
                      /*tasks_per_job=*/1, horizon);
  config.policy = policy;
  config.num_racks = 3;
  config.locality_access_model = true;
  config.locality_limits = core::LocalityPolicy::Limits{3, 9};
  // Completion = scheduling delay (deliberately stretched by the locality
  // escalation) + data access (up to 100 us) + 100 us of execution: use a
  // client timeout in the paper's "typical 5-10x" band so the policy's
  // intentional delays don't trigger duplicate storms.
  config.timeout_multiplier = 10.0;
  workload::TagLocality(config.stream, kWorkers, 17);
  return config;
}

void Report(const char* name, const ExperimentResult& result) {
  const double local =
      static_cast<double>(result.metrics->placements(net::TaskInfo::Placement::kLocal));
  const double rack =
      static_cast<double>(result.metrics->placements(net::TaskInfo::Placement::kSameRack));
  const double remote =
      static_cast<double>(result.metrics->placements(net::TaskInfo::Placement::kRemote));
  const double total = local + rack + remote;
  std::printf("%-20s placement: %5.2f%% local  %5.2f%% same-rack  %5.2f%% remote\n", name,
              100 * local / total, 100 * rack / total, 100 * remote / total);
  PrintQuantileRow(name, result.metrics->e2e_delay());
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Figure 10", "locality-aware scheduling vs FCFS (end-to-end delay CDF)");
  runner.ParseFlagsOrExit(argc, argv);

  sweep::SweepSpec spec;
  spec.name = "fig10";
  spec.title = "locality-aware scheduling vs FCFS (end-to-end delay CDF)";
  spec.axis = {"policy", "n/a"};
  {
    sweep::SweepPoint point;
    point.label = "Draconis-FCFS";
    point.series = "Draconis-FCFS";
    point.config = LocalityConfig(PolicyKind::kFcfs, runner.horizon());
    spec.points.push_back(std::move(point));
  }
  {
    sweep::SweepPoint point;
    point.label = "Draconis-Locality";
    point.series = "Draconis-Locality";
    point.x = 1;
    point.config = LocalityConfig(PolicyKind::kLocality, runner.horizon());
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec);

  PrintQuantileHeader("end-to-end delay");
  Report("Draconis-FCFS", results[0].result);
  Report("Draconis-Locality", results[1].result);

  std::printf(
      "\nShape check: the locality policy multiplies the data-local placement share\n"
      "(~10%% -> ~28%% in the paper) and wins the median by ~1.5x; FCFS catches up at\n"
      "the upper percentiles because locality delays hard-to-place tasks.\n");
  return 0;
}
