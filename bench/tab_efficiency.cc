// Quantifies §3.1's trade-off: a pull-based executor idles for one RTT per
// task while fetching work, so even a saturated cluster cannot exceed
// service/(service + RTT) utilization. The paper states the loss is under 3%
// for 100 us tasks.
//
// We overfeed the queue (no timeouts) so executors run flat out, and report
// the achieved busy fraction per task duration.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Table: pull-model CPU efficiency",
                     "maximum executor utilization under the pull model (§3.1)");
  runner.ParseFlagsOrExit(argc, argv);

  const std::vector<TimeNs> durations = {FromMicros(25), FromMicros(50), FromMicros(100),
                                         FromMicros(250), FromMicros(500)};

  sweep::SweepSpec spec;
  spec.name = "tab_efficiency";
  spec.title = "maximum executor utilization under the pull model (§3.1)";
  spec.axis = {"task duration", "us"};
  for (TimeNs duration : durations) {
    const workload::ServiceTime service = workload::ServiceTime::Fixed(duration);
    sweep::SweepPoint point;
    point.label = FormatDuration(duration);
    point.series = "Draconis";
    point.x = static_cast<double>(duration) / 1000.0;
    // 30% overfeed keeps the central queue non-empty throughout.
    point.config = SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(1.3, duration), service,
                                   3, 10, runner.horizon());
    point.config.timeout_multiplier = 1e9;  // the backlog is intentional; no resubmission
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec, [](std::vector<sweep::SweepPointResult>& points) {
    for (sweep::SweepPointResult& point : points) {
      point.scalars["efficiency_loss"] = 1.0 - point.result.executor_busy_fraction;
    }
  });

  std::printf("%-14s %14s %14s\n", "task duration", "max busy frac", "efficiency loss");
  for (size_t i = 0; i < durations.size(); ++i) {
    const double busy = results[i].result.executor_busy_fraction;
    std::printf("%-14s %13.2f%% %13.2f%%\n", FormatDuration(durations[i]).c_str(), busy * 100,
                (1.0 - busy) * 100);
  }

  std::printf(
      "\nShape check: the loss is one pull RTT (~3.5 us) per task — ~3%% at 100 us and\n"
      "shrinking as tasks get longer (paper §3.1: \"less than 3%% when running 100 us\n"
      "tasks\").\n");
  return 0;
}
