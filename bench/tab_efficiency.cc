// Quantifies §3.1's trade-off: a pull-based executor idles for one RTT per
// task while fetching work, so even a saturated cluster cannot exceed
// service/(service + RTT) utilization. The paper states the loss is under 3%
// for 100 us tasks.
//
// We overfeed the queue (no timeouts) so executors run flat out, and report
// the achieved busy fraction per task duration.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main() {
  PrintHeader("Table: pull-model CPU efficiency",
              "maximum executor utilization under the pull model (§3.1)");

  std::printf("%-14s %14s %14s\n", "task duration", "max busy frac", "efficiency loss");
  for (TimeNs duration : {FromMicros(25), FromMicros(50), FromMicros(100), FromMicros(250),
                          FromMicros(500)}) {
    const workload::ServiceTime service = workload::ServiceTime::Fixed(duration);
    // 30% overfeed keeps the central queue non-empty throughout.
    ExperimentConfig config =
        SyntheticConfig(SchedulerKind::kDraconis, UtilToTps(1.3, duration), service, 3);
    config.timeout_multiplier = 1e9;  // the backlog is intentional; no resubmission
    ExperimentResult result = RunExperiment(config);

    const double busy = result.executor_busy_fraction;
    std::printf("%-14s %13.2f%% %13.2f%%\n", FormatDuration(duration).c_str(), busy * 100,
                (1.0 - busy) * 100);
    std::fflush(stdout);
  }

  std::printf(
      "\nShape check: the loss is one pull RTT (~3.5 us) per task — ~3%% at 100 us and\n"
      "shrinking as tasks get longer (paper §3.1: \"less than 3%% when running 100 us\n"
      "tasks\").\n");
  return 0;
}
