// Wall-clock benchmark of the simulator's event core (events/sec).
//
// Every figure reproduction in bench/ funnels millions of events through
// `sim::Simulator`; this bench measures that substrate directly and emits
// `BENCH_sim_core.json` so the repo has a perf trajectory to track. To keep
// the comparison honest across machines and PRs, the *seed* engine (heap of
// full events, `std::function` + `shared_ptr<bool>` per cancellable event)
// is embedded below as `legacy::Simulator` and measured in the same
// process, interleaved with the current engine on both of its queue
// backends ("current" = ladder, the default; "heap" alongside).
//
// Workloads:
//   schedule_heavy  self-rescheduling chains, plain events only
//   cancel_heavy    watchdog pattern: arm a far-future cancellable event,
//                   cancel + re-arm on every firing
//   timer_loop      executor-pull shape: one periodic callback per actor,
//                   re-armed from inside the callback
//   mixed_fig05a    per-task shape of the fig05a runs: a chain of network
//                   hops plus client-timeout arm/cancel and a pull re-arm
//
// Environment:
//   DRACONIS_BENCH_QUICK=1    ~10x fewer events (CI smoke)
// Flags:
//   --json=path               where to write the JSON (default
//                             ./BENCH_sim_core.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace legacy {

using draconis::TimeNs;

// The seed event engine, verbatim modulo namespace: one heap-allocated
// std::function per event moved through every heap sift, plus a
// shared_ptr<bool> per cancellable event.
class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}

  void Cancel() {
    if (cancelled_ != nullptr) {
      *cancelled_ = true;
    }
  }
  bool pending() const { return cancelled_ != nullptr && !*cancelled_; }

 private:
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  TimeNs Now() const { return now_; }

  void At(TimeNs at, std::function<void()> fn) { Push(at, std::move(fn), nullptr); }
  void After(TimeNs delay, std::function<void()> fn) {
    DRACONIS_CHECK(delay >= 0);
    Push(now_ + delay, std::move(fn), nullptr);
  }
  EventHandle CancellableAt(TimeNs at, std::function<void()> fn) {
    auto flag = std::make_shared<bool>(false);
    Push(at, std::move(fn), flag);
    return EventHandle(std::move(flag));
  }
  EventHandle CancellableAfter(TimeNs delay, std::function<void()> fn) {
    DRACONIS_CHECK(delay >= 0);
    return CancellableAt(now_ + delay, std::move(fn));
  }

  uint64_t RunUntil(TimeNs until) {
    uint64_t ran = 0;
    while (!queue_.empty() && queue_.top().at <= until) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (ev.cancelled != nullptr && *ev.cancelled) {
        continue;
      }
      if (ev.cancelled != nullptr) {
        *ev.cancelled = true;
      }
      now_ = ev.at;
      ev.fn();
      ++ran;
      ++executed_;
    }
    if (now_ < until) {
      now_ = until;
    }
    return ran;
  }

  uint64_t RunAll() {
    uint64_t ran = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (ev.cancelled != nullptr && *ev.cancelled) {
        continue;
      }
      if (ev.cancelled != nullptr) {
        *ev.cancelled = true;
      }
      now_ = ev.at;
      ev.fn();
      ++ran;
      ++executed_;
    }
    return ran;
  }

  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs at = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  void Push(TimeNs at, std::function<void()> fn, std::shared_ptr<bool> cancelled) {
    DRACONIS_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
    queue_.push(Event{at, next_seq_++, std::move(fn), std::move(cancelled)});
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

// Timer emulation on the legacy engine: the cancel + fresh CancellableAfter
// dance the executor's pull watchdog used to do.
class RearmTimer {
 public:
  RearmTimer(Simulator* sim, std::function<void()> fn) : sim_(sim), fn_(std::move(fn)) {}
  void ScheduleAfter(TimeNs delay) {
    handle_.Cancel();
    handle_ = sim_->CancellableAfter(delay, fn_);  // copies fn_ into the event
  }
  void Cancel() { handle_.Cancel(); }

 private:
  Simulator* sim_;
  std::function<void()> fn_;
  EventHandle handle_;
};

}  // namespace legacy

namespace draconis::bench {
namespace {

// Adapter so the workloads below compile against either engine with the
// same scheduling and Timer spelling (the legacy engine keeps the seed's
// At/After/CancellableAfter surface verbatim).
struct CurrentEngine {
  using Sim = sim::Simulator;
  using Handle = sim::EventHandle;
  class RearmTimer {
   public:
    RearmTimer(Sim* s, std::function<void()> fn) { timer_.Bind(s, std::move(fn)); }
    void ScheduleAfter(TimeNs delay) { timer_.ScheduleAfter(delay); }
    void Cancel() { timer_.Cancel(); }

   private:
    sim::Timer timer_;
  };
  static void After(Sim& sim, TimeNs delay, std::function<void()> fn) {
    sim.ScheduleAfter(delay, std::move(fn));
  }
  static Handle CancellableAfter(Sim& sim, TimeNs delay, std::function<void()> fn) {
    return sim.ScheduleAfter(delay, std::move(fn), sim::kCancellable);
  }
};

struct LegacyEngine {
  using Sim = legacy::Simulator;
  using Handle = legacy::EventHandle;
  using RearmTimer = legacy::RearmTimer;
  static void After(Sim& sim, TimeNs delay, std::function<void()> fn) {
    sim.After(delay, std::move(fn));
  }
  static Handle CancellableAfter(Sim& sim, TimeNs delay, std::function<void()> fn) {
    return sim.CancellableAfter(delay, std::move(fn));
  }
};

// --- Workloads ---------------------------------------------------------------
// Each runs `budget` events through the engine and returns the executed
// count. Callbacks stay tiny (and inside std::function's small-buffer
// optimization) so the measurement is the engine, not the payload.

template <typename E>
struct ChainState {
  typename E::Sim* sim;
  Rng rng{7};
  uint64_t budget;
};

template <typename E>
void ChainTick(ChainState<E>* st) {
  if (st->budget > 0) {
    --st->budget;
    E::After(*st->sim, 1 + static_cast<TimeNs>(st->rng.NextU64() & 255),
             [st] { ChainTick<E>(st); });
  }
}

template <typename E>
uint64_t ScheduleHeavy(typename E::Sim& sim, uint64_t budget) {
  constexpr uint64_t kChains = 1024;  // steady-state heap size
  ChainState<E> st{&sim, Rng(7), budget};
  for (uint64_t k = 0; k < kChains && st.budget > 0; ++k) {
    --st.budget;
    E::After(sim, static_cast<TimeNs>(k + 1), [p = &st] { ChainTick<E>(p); });
  }
  sim.RunAll();
  return sim.executed_events();
}

// Watchdog pattern: every firing cancels the actor's previous far-future
// cancellable event, arms a new one, and reschedules itself.
template <typename E>
struct WatchdogState {
  typename E::Sim* sim;
  Rng rng{11};
  uint64_t budget;
  std::vector<typename E::Handle> watchdogs;
};

template <typename E>
void WatchdogTick(WatchdogState<E>* st, uint32_t k) {
  st->watchdogs[k].Cancel();
  st->watchdogs[k] = E::CancellableAfter(*st->sim, FromMillis(1), [] {});
  if (st->budget > 0) {
    --st->budget;
    E::After(*st->sim, 1 + static_cast<TimeNs>(st->rng.NextU64() & 255),
             [st, k] { WatchdogTick<E>(st, k); });
  }
}

template <typename E>
uint64_t CancelHeavy(typename E::Sim& sim, uint64_t budget) {
  constexpr uint32_t kActors = 256;
  WatchdogState<E> st{&sim, Rng(11), budget, {}};
  st.watchdogs.resize(kActors);
  for (uint32_t k = 0; k < kActors && st.budget > 0; ++k) {
    --st.budget;
    E::After(sim, static_cast<TimeNs>(k + 1), [p = &st, k] { WatchdogTick<E>(p, k); });
  }
  // Stop before the surviving watchdogs fire: only the chain is measured.
  sim.RunUntil(sim.Now() + FromSeconds(3600));
  return sim.executed_events();
}

// Executor-pull shape: a periodic callback per actor, re-armed from inside
// the callback (the engine's reusable-event path; the legacy engine pays a
// cancel + fresh cancellable event per period).
template <typename E>
struct TimerLoopState {
  typename E::Sim* sim;
  Rng rng{13};
  uint64_t budget;
  std::vector<std::unique_ptr<typename E::RearmTimer>> timers;
};

template <typename E>
uint64_t TimerLoop(typename E::Sim& sim, uint64_t budget) {
  constexpr uint32_t kActors = 256;
  TimerLoopState<E> st{&sim, Rng(13), budget, {}};
  for (uint32_t k = 0; k < kActors; ++k) {
    st.timers.push_back(std::make_unique<typename E::RearmTimer>(&sim, [p = &st, k] {
      if (p->budget > 0) {
        --p->budget;
        p->timers[k]->ScheduleAfter(1 + static_cast<TimeNs>(p->rng.NextU64() & 255));
      }
    }));
  }
  for (uint32_t k = 0; k < kActors && st.budget > 0; ++k) {
    --st.budget;
    st.timers[k]->ScheduleAfter(static_cast<TimeNs>(k + 1));
  }
  sim.RunAll();
  return sim.executed_events();
}

// The fig05a per-task shape: a client submit fans into a fixed chain of
// network-hop events (plain), guarded by a client timeout (cancellable,
// cancelled at completion) and an executor pull re-arm per hop pair.
template <typename E>
struct MixedState {
  typename E::Sim* sim;
  Rng rng{17};
  uint64_t budget;  // tasks
  std::vector<typename E::Handle> timeouts;
  std::vector<std::unique_ptr<typename E::RearmTimer>> pulls;
};

template <typename E>
void MixedHop(MixedState<E>* st, uint32_t k, int hop);

template <typename E>
void MixedSubmit(MixedState<E>* st, uint32_t k) {
  // Client-side timeout for the task (cancelled when it completes).
  st->timeouts[k].Cancel();
  st->timeouts[k] = E::CancellableAfter(*st->sim, FromMicros(2500), [] {});
  MixedHop<E>(st, k, 0);
}

template <typename E>
void MixedHop(MixedState<E>* st, uint32_t k, int hop) {
  if (hop < 6) {
    // tx occupancy / propagation / rx occupancy / stack, twice (to the
    // switch and on to the executor).
    E::After(*st->sim, 100 + static_cast<TimeNs>(st->rng.NextU64() & 127),
             [st, k, hop] { MixedHop<E>(st, k, hop + 1); });
    if (hop % 3 == 0) {
      st->pulls[k]->ScheduleAfter(FromMillis(1));  // watchdog re-arm per leg
    }
    return;
  }
  // Completion: cancel the timeout, re-arm the pull, next task.
  st->timeouts[k].Cancel();
  st->pulls[k]->ScheduleAfter(FromMillis(1));
  if (st->budget > 0) {
    --st->budget;
    E::After(*st->sim, 1 + static_cast<TimeNs>(st->rng.NextU64() & 255),
             [st, k] { MixedSubmit<E>(st, k); });
  }
}

template <typename E>
uint64_t MixedFig05a(typename E::Sim& sim, uint64_t budget) {
  constexpr uint32_t kClients = 64;
  MixedState<E> st{&sim, Rng(17), budget, {}, {}};
  st.timeouts.resize(kClients);
  for (uint32_t k = 0; k < kClients; ++k) {
    st.pulls.push_back(std::make_unique<typename E::RearmTimer>(&sim, [] {}));
  }
  for (uint32_t k = 0; k < kClients && st.budget > 0; ++k) {
    --st.budget;
    E::After(sim, static_cast<TimeNs>(k + 1), [p = &st, k] { MixedSubmit<E>(p, k); });
  }
  sim.RunUntil(sim.Now() + FromSeconds(3600));
  return sim.executed_events();
}

// --- Harness -----------------------------------------------------------------

struct Result {
  std::string name;
  uint64_t events = 0;
  double current_eps = 0;  // events/sec, current engine, ladder backend
  double heap_eps = 0;     // events/sec, current engine, heap backend
  double legacy_eps = 0;   // events/sec, seed engine
  double speedup() const { return legacy_eps > 0 ? current_eps / legacy_eps : 0; }
};

template <typename Fn>
double TimeOnce(uint64_t* events_out, Fn&& run) {
  const auto start = std::chrono::steady_clock::now();
  *events_out = run();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(*events_out) / elapsed.count();
}

template <typename WorkloadFn>
Result Measure(const char* name, uint64_t budget, int reps, WorkloadFn&& workload) {
  Result result;
  result.name = name;
  // Strictly alternate the engines rep by rep so frequency scaling and
  // thermal drift hit all of them equally; keep each engine's best rep.
  for (int r = 0; r < reps; ++r) {
    {
      sim::Simulator sim(sim::QueueBackend::kLadder);
      const double eps =
          TimeOnce(&result.events, [&] { return workload(CurrentEngine{}, sim, budget); });
      result.current_eps = std::max(result.current_eps, eps);
    }
    {
      sim::Simulator sim(sim::QueueBackend::kHeap);
      const double eps =
          TimeOnce(&result.events, [&] { return workload(CurrentEngine{}, sim, budget); });
      result.heap_eps = std::max(result.heap_eps, eps);
    }
    {
      legacy::Simulator sim;
      const double eps =
          TimeOnce(&result.events, [&] { return workload(LegacyEngine{}, sim, budget); });
      result.legacy_eps = std::max(result.legacy_eps, eps);
    }
  }
  std::printf(
      "%-16s %11llu events   ladder %9.0f ev/s   heap %9.0f ev/s   seed %9.0f ev/s   %.2fx\n",
      name, static_cast<unsigned long long>(result.events), result.current_eps, result.heap_eps,
      result.legacy_eps, result.speedup());
  std::fflush(stdout);
  return result;
}

bool Quick() {
  const char* env = std::getenv("DRACONIS_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

bool WriteJson(const std::string& path, const std::vector<Result>& results, bool quick) {
  json::Writer w;
  w.BeginObject();
  w.Key("bench").String("sim_core");
  w.Key("unit").String("events_per_sec");
  w.Key("quick").Bool(quick);
  w.Key("workloads").BeginArray();
  for (const Result& r : results) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("events").UInt(r.events);
    w.Key("current").Double(r.current_eps);
    w.Key("heap").Double(r.heap_eps);
    w.Key("seed_engine").Double(r.legacy_eps);
    w.Key("speedup").Double(r.speedup());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string doc = w.str() + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_sim_core.json";
  flags::Parser parser("micro_sim — wall-clock benchmark of the simulator event core");
  parser.AddString("json", &json_path, "where to write the benchmark JSON");
  std::string error;
  if (!parser.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n\n%s", error.c_str(), parser.Usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::fputs(parser.Usage().c_str(), stdout);
    return 0;
  }

  const bool quick = Quick();
  // Quick mode keeps best-of-3 and a meaty budget: a single cold 100k-event
  // rep measures allocator warm-up and an un-ramped clock more than the
  // engine, and CI gates on these ratios.
  const uint64_t budget = quick ? 250'000 : 2'000'000;
  const int reps = 3;
  std::printf("sim event-core benchmark — %llu events/workload, best of %d\n",
              static_cast<unsigned long long>(budget), reps);

  std::vector<Result> results;
  results.push_back(Measure("schedule_heavy", budget, reps, [](auto e, auto& sim, uint64_t b) {
    return ScheduleHeavy<decltype(e)>(sim, b);
  }));
  results.push_back(Measure("cancel_heavy", budget, reps, [](auto e, auto& sim, uint64_t b) {
    return CancelHeavy<decltype(e)>(sim, b);
  }));
  results.push_back(Measure("timer_loop", budget, reps, [](auto e, auto& sim, uint64_t b) {
    return TimerLoop<decltype(e)>(sim, b);
  }));
  results.push_back(Measure("mixed_fig05a", budget / 8, reps, [](auto e, auto& sim, uint64_t b) {
    return MixedFig05a<decltype(e)>(sim, b);
  }));
  return WriteJson(json_path, results, quick) ? 0 : 1;
}

}  // namespace
}  // namespace draconis::bench

int main(int argc, char** argv) { return draconis::bench::Main(argc, argv); }
