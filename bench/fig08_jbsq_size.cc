// Reproduces paper Figs. 8a/8b: cluster utilization vs p99 scheduling delay
// for Draconis, R2P2-1 and R2P2-3, with 100 us and 250 us tasks. Runs with
// dropped tasks are flagged (the paper's yellow triangles).
//
// Paper headline: R2P2-1 matches Draconis at low load but drops tasks under
// pressure (5% at 82% load for 100 us tasks; 9% at 93% for 250 us), spiking
// its tail; R2P2-3 never drops but its tail equals the task service time
// from 30-40% utilization onward.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Figure 8", "utilization vs p99 for Draconis / R2P2-1 / R2P2-3");
  runner.ParseFlagsOrExit(argc, argv);

  struct Panel {
    const char* name;
    TimeNs service;
  };
  const Panel panels[] = {
      {"(a) 100us tasks", FromMicros(100)},
      {"(b) 250us tasks", FromMicros(250)},
  };

  std::vector<double> utils = {0.3, 0.5, 0.7, 0.82, 0.88, 0.93, 0.96};
  if (Quick()) {
    utils = {0.5, 0.93};
  }

  struct System {
    const char* name;
    SchedulerKind kind;
    uint32_t jbsq_k;
  };
  const System systems[] = {
      {"Draconis", SchedulerKind::kDraconis, 0},
      {"R2P2-1", SchedulerKind::kR2P2, 1},
      {"R2P2-3", SchedulerKind::kR2P2, 3},
  };

  sweep::SweepSpec spec;
  spec.name = "fig08";
  spec.title = "utilization vs p99 for Draconis / R2P2-1 / R2P2-3";
  spec.axis = {"cluster load", "fraction"};
  for (const Panel& panel : panels) {
    const workload::ServiceTime service = workload::ServiceTime::Fixed(panel.service);
    for (const System& system : systems) {
      for (double util : utils) {
        sweep::SweepPoint point;
        point.series = std::string(panel.name) + " " + system.name;
        point.x = util;
        char label[96];
        std::snprintf(label, sizeof(label), "%s %s@%.0f%%", panel.name, system.name,
                      util * 100);
        point.label = label;
        point.config = SyntheticConfig(system.kind, UtilToTps(util, panel.service), service,
                                       42, 10, runner.horizon());
        if (system.jbsq_k > 0) {
          point.config.jbsq_k = system.jbsq_k;
        }
        spec.points.push_back(std::move(point));
      }
    }
  }

  const auto results = runner.Run(spec);

  size_t i = 0;
  for (const Panel& panel : panels) {
    std::printf("\n--- %s ---  (* = run had dropped tasks)\n", panel.name);
    std::printf("%-12s", "p99");
    for (double util : utils) {
      std::printf("   %3.0f%%    ", util * 100);
    }
    std::printf("\n");
    for (const System& system : systems) {
      std::printf("%-12s", system.name);
      for (size_t col = 0; col < utils.size(); ++col, ++i) {
        const ExperimentResult& result = results[i].result;
        std::printf(" %9s%c", P99OrNone(result.metrics->sched_delay()).c_str(),
                    result.recirc_drops > 0 ? '*' : ' ');
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nShape check: R2P2-1 tracks Draconis at low utilization, then spikes with\n"
      "drop markers at high utilization; R2P2-3's tail is pinned at ~the task\n"
      "service time from 30-40%% utilization while Draconis stays in microseconds.\n");
  return 0;
}
