// Reproduces paper Fig. 6 (a-f): throughput vs p99 scheduling delay across
// the full synthetic suite — fixed 100/250/500 us, bimodal, trimodal, and
// exponential service times.
//
// Paper headline: Draconis holds 4.7-20 us tails across the suite while
// RackSched, R2P2 and the DPDK server are one to two orders of magnitude
// higher.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Figure 6", "p99 scheduling delay vs load, synthetic workload suite");
  std::string scheduler = "all";
  runner.parser().AddChoice("scheduler", &scheduler, SchedulerChoices(),
                            "restrict the sweep to one scheduler kind");
  runner.ParseFlagsOrExit(argc, argv);

  struct Panel {
    const char* name;
    workload::ServiceTime service;
  };
  const Panel panels[] = {
      {"(a) 100us fixed", workload::ServiceTime::Fixed(FromMicros(100))},
      {"(b) 250us fixed", workload::ServiceTime::Fixed(FromMicros(250))},
      {"(c) 500us fixed", workload::ServiceTime::Fixed(FromMicros(500))},
      {"(d) bimodal", workload::ServiceTime::PaperBimodal()},
      {"(e) trimodal", workload::ServiceTime::PaperTrimodal()},
      {"(f) exponential", workload::ServiceTime::PaperExponential()},
  };

  struct System {
    const char* name;
    SchedulerKind kind;
  };
  const System all_systems[] = {
      {"Draconis", SchedulerKind::kDraconis},
      {"RackSched", SchedulerKind::kRackSched},
      {"R2P2-3", SchedulerKind::kR2P2},
      {"Draconis-DPDK-Server", SchedulerKind::kDraconisDpdkServer},
  };
  std::vector<System> systems;
  for (const System& system : all_systems) {
    if (KeepScheduler(scheduler, system.kind)) {
      systems.push_back(system);
    }
  }

  std::vector<double> utils = {0.3, 0.5, 0.7, 0.8, 0.9};
  if (Quick()) {
    utils = {0.5, 0.8};
  }

  sweep::SweepSpec spec;
  spec.name = "fig06";
  spec.title = "p99 scheduling delay vs load, synthetic workload suite";
  spec.axis = {"cluster load", "fraction"};
  for (const Panel& panel : panels) {
    for (const System& system : systems) {
      for (double util : utils) {
        sweep::SweepPoint point;
        point.series = std::string(panel.name) + " " + system.name;
        point.x = util;
        char label[96];
        std::snprintf(label, sizeof(label), "%s %s@%.0f%%", panel.name, system.name,
                      util * 100);
        point.label = label;
        const double tps = UtilToTps(util, panel.service.Mean());
        point.config =
            SyntheticConfig(system.kind, tps, panel.service, 42, 10, runner.horizon());
        spec.points.push_back(std::move(point));
      }
    }
  }

  const auto results = runner.Run(spec);

  size_t i = 0;
  for (const Panel& panel : panels) {
    std::printf("\n--- %s (mean %s) ---\n", panel.name,
                FormatDuration(panel.service.Mean()).c_str());
    std::printf("%-24s", "p99 sched delay");
    for (double util : utils) {
      std::printf("    %3.0f%%  ", util * 100);
    }
    std::printf("  (cluster load)\n");
    for (const System& system : systems) {
      std::printf("%-24s", system.name);
      for (size_t col = 0; col < utils.size(); ++col, ++i) {
        std::printf(" %9s ", P99OrNone(results[i].result.metrics->sched_delay()).c_str());
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nShape check: Draconis stays microseconds until ~90%% load in every panel;\n"
      "R2P2-3 is pinned near the task service time (node-level blocking); RackSched\n"
      "sits a few microseconds above Draconis at low load and degrades with\n"
      "utilization; the DPDK server blows up once its packet ceiling nears.\n");
  return 0;
}
