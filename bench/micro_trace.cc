// Wall-clock overhead of the task-lifecycle tracer (src/trace/).
//
// Runs the same fig05a-shaped Draconis experiment in four modes and compares
// best-of-N wall time:
//
//   baseline    tracing off (the reference timing)
//   disabled    tracing off again — the disabled-path cost is one null check
//               per record site, so this doubles as the noise floor and
//               catches regressions that make "off" expensive (CI gates this
//               at < 2% over baseline)
//   sample_64   the default 1-in-64 sampling rate
//   sample_1    every task traced (the worst case)
//
// Tracing must never change results: the bench also asserts the completed
// task count is identical across all four modes and emits BENCH_trace.json.
//
// Environment:
//   DRACONIS_BENCH_QUICK=1    shorter horizon, fewer reps (CI smoke)
// Flags:
//   --json=path               where to write the JSON (default
//                             ./BENCH_trace.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/time.h"
#include "workload/generators.h"

namespace draconis::bench {
namespace {

bool Quick() {
  const char* env = std::getenv("DRACONIS_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

cluster::ExperimentConfig MakeConfig(bool enabled, uint64_t period, TimeNs horizon) {
  cluster::ExperimentConfig config;
  config.scheduler = cluster::SchedulerKind::kDraconis;
  config.num_workers = 4;
  config.executors_per_worker = 4;
  config.num_clients = 2;
  config.warmup = FromMillis(2);
  config.horizon = horizon;
  config.max_tasks_per_packet = 1;
  config.jbsq_k = 3;
  config.timeout_multiplier = 5.0;
  config.seed = 42;
  config.trace.enabled = enabled;
  config.trace.sample_period = period;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 100e3 * 16.0 / 160.0;
  spec.duration = config.horizon;
  spec.tasks_per_job = 10;
  spec.service = workload::ServiceTime::Fixed(FromMicros(500));
  spec.seed = config.seed;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

struct Mode {
  const char* name;
  bool enabled;
  uint64_t period;
  double best_seconds = 1e100;
  uint64_t tasks_completed = 0;
  uint64_t trace_records = 0;
};

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_trace.json";
  flags::Parser parser("micro_trace — wall-clock overhead of task-lifecycle tracing");
  parser.AddString("json", &json_path, "where to write the benchmark JSON");
  std::string error;
  if (!parser.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n\n%s", error.c_str(), parser.Usage().c_str());
    return 2;
  }
  if (parser.help_requested()) {
    std::fputs(parser.Usage().c_str(), stdout);
    return 0;
  }

  const bool quick = Quick();
  const TimeNs horizon = quick ? FromMillis(15) : FromMillis(60);
  const int reps = quick ? 3 : 5;
  std::printf("trace overhead benchmark — fig05a-shaped run, horizon %s, best of %d\n",
              FormatDuration(horizon).c_str(), reps);

  std::vector<Mode> modes = {
      {"baseline", false, 64},
      {"disabled", false, 64},
      {"sample_64", true, 64},
      {"sample_1", true, 1},
  };

  // Interleave the modes rep by rep so frequency scaling and thermal drift
  // hit all of them equally; keep each mode's best (minimum) wall time.
  for (int r = 0; r < reps; ++r) {
    for (Mode& mode : modes) {
      cluster::ExperimentConfig config = MakeConfig(mode.enabled, mode.period, horizon);
      const auto start = std::chrono::steady_clock::now();
      cluster::ExperimentResult result = cluster::RunExperiment(config);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      mode.best_seconds = std::min(mode.best_seconds, elapsed.count());
      mode.tasks_completed = result.metrics->tasks_completed();
      mode.trace_records = result.trace != nullptr ? result.trace->records().size() : 0;
    }
  }

  // Tracing is a pure observer: every mode must complete the same tasks.
  for (const Mode& mode : modes) {
    DRACONIS_CHECK_MSG(mode.tasks_completed == modes[0].tasks_completed,
                       "tracing changed the experiment outcome");
  }

  const double base = modes[0].best_seconds;
  auto overhead_pct = [base](const Mode& m) {
    return (m.best_seconds - base) / base * 100.0;
  };
  for (const Mode& mode : modes) {
    std::printf("%-10s %8.2f ms   %+6.2f%%   %llu tasks, %llu records\n", mode.name,
                mode.best_seconds * 1e3, overhead_pct(mode),
                static_cast<unsigned long long>(mode.tasks_completed),
                static_cast<unsigned long long>(mode.trace_records));
  }

  json::Writer w;
  w.BeginObject();
  w.Key("bench").String("trace_overhead");
  w.Key("unit").String("seconds_best_of_n");
  w.Key("quick").Bool(quick);
  w.Key("reps").Int(reps);
  w.Key("tasks_completed").UInt(modes[0].tasks_completed);
  w.Key("modes").BeginArray();
  for (const Mode& mode : modes) {
    w.BeginObject();
    w.Key("name").String(mode.name);
    w.Key("seconds").Double(mode.best_seconds);
    w.Key("overhead_pct").Double(overhead_pct(mode));
    w.Key("trace_records").UInt(mode.trace_records);
    w.EndObject();
  }
  w.EndArray();
  w.Key("overhead_disabled_pct").Double(overhead_pct(modes[1]));
  w.Key("overhead_sample64_pct").Double(overhead_pct(modes[2]));
  w.Key("overhead_full_pct").Double(overhead_pct(modes[3]));
  w.EndObject();
  const std::string doc = w.str() + "\n";
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace draconis::bench

int main(int argc, char** argv) { return draconis::bench::Main(argc, argv); }
