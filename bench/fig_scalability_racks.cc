// Multi-rack scalability: replaces tab_scalability's extrapolation with a
// measured sweep over a hierarchical topology (docs/topology.md).
//
// Three series:
//  1. "balanced" — racks x executors-per-rack grows to >= 10^5 executors
//     (no-op executors, the default ladder event queue). Clients home
//     round-robin across racks, each rack's offered load sits well below its
//     ToR packet budget, and aggregate decision throughput should grow
//     near-linearly with rack count: racks are independent ToR pipelines, not
//     shards of one switch. No-op executors drop tasks without completing
//     them, so this series reports the pull round-trip instead of e2e.
//  2. "latency" — the same balanced homing with completing executors at a
//     paper-scale rack, so the table carries a real e2e p50/p99 and shows the
//     rack count leaving in-rack latency untouched.
//  3. "skewed" — every client homes on rack 0 and offers more than one rack
//     can serve, so the power-of-two-choices placement layer must forward the
//     overflow across the aggregation tier (cross_rack_fraction > 0), with
//     the forwarded share paying the aggregation-tier hops in its e2e.
//
// Per point the sweep JSON records num_racks, rack_decisions,
// cross_rack_fraction, and the summary/uplink traffic (src/sweep/report.cc).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "topology/topology.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

namespace {

enum class Mode { kBalanced, kLatency, kSkewed };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kBalanced:
      return "balanced";
    case Mode::kLatency:
      return "latency";
    case Mode::kSkewed:
      return "skewed";
  }
  return "?";
}

struct RackPoint {
  size_t racks;
  size_t workers_per_rack;
  size_t executors_per_worker;
  // Offered tasks/s per executor (balanced/latency) or total (skewed).
  double offered_tps;
  Mode mode;

  size_t executors() const { return racks * workers_per_rack * executors_per_worker; }
  bool skewed() const { return mode == Mode::kSkewed; }
  bool noop() const { return mode == Mode::kBalanced; }
};

ExperimentConfig PointConfig(const RackPoint& p, TimeNs horizon) {
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.cluster = topology::ClusterTopology::Uniform(p.racks, p.workers_per_rack,
                                                      p.executors_per_worker);
  config.cluster.client_homing = p.skewed() ? topology::ClientHoming::kFirstRack
                                            : topology::ClientHoming::kRoundRobin;
  const double offered = p.skewed()
                             ? p.offered_tps
                             : p.offered_tps * static_cast<double>(p.executors());
  // A client node is a 150 ns/packet busy server shared by its submissions
  // and the returning acks, so it sustains ~3M tasks/s; provision one client
  // per 1M offered tasks/s so the fleet, not the clients, is what the sweep
  // measures.
  const size_t clients_per_rack = std::max<size_t>(
      4, static_cast<size_t>(offered / static_cast<double>(p.racks) / 1e6) + 1);
  config.num_clients = clients_per_rack * p.racks;
  config.noop_executors = p.noop();
  config.warmup = FromMicros(500);
  config.horizon = horizon;
  // The 50 ms default drain would spend ~25x the measured window on idle
  // executor polls; no-op tasks are done within microseconds of assignment.
  config.drain_margin = FromMicros(50);
  config.max_tasks_per_packet = 1;
  config.seed = 97;
  if (p.mode == Mode::kBalanced) {
    // Balanced executors are mostly idle between tasks; stretch the pull
    // backoff so the sweep's event count tracks tasks, not empty polls.
    config.executor_template.max_retry = FromMicros(64);
  }

  workload::OpenLoopSpec stream_spec;
  stream_spec.tasks_per_second = offered;
  stream_spec.duration = config.horizon;
  stream_spec.tasks_per_job = 1;
  stream_spec.service = workload::ServiceTime::Fixed(0);
  stream_spec.seed = 97;
  config.stream = workload::GenerateOpenLoop(stream_spec);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  SweepRunner runner("Figure: multi-rack scalability",
                     "measured racks x executors sweep on the hierarchical topology (§8.2)",
                     FromMillis(2));
  runner.ParseFlagsOrExit(argc, argv);

  // Balanced: constant per-executor load (3k tasks/s), rack count doubles up
  // to 107,520 executors. Skewed: one rack's clients offer ~1.2x what rack 0
  // alone can absorb, so placement has to spill.
  std::vector<RackPoint> points;
  if (Quick()) {
    for (size_t racks : {1, 2, 4}) {
      points.push_back({racks, 8, 4, 3000.0, Mode::kBalanced});
    }
    for (size_t racks : {1, 2}) {
      points.push_back({racks, 4, 4, 3000.0, Mode::kLatency});
    }
    points.push_back({2, 4, 4, 6.0e6, Mode::kSkewed});
  } else {
    for (size_t racks : {1, 2, 4, 8, 16}) {
      points.push_back({racks, 420, 16, 3000.0, Mode::kBalanced});
    }
    for (size_t racks : {1, 4}) {
      points.push_back({racks, 10, 16, 3000.0, Mode::kLatency});
    }
    points.push_back({4, 8, 16, 40.0e6, Mode::kSkewed});
  }

  sweep::SweepSpec spec;
  spec.name = "fig_scalability_racks";
  spec.title = "measured racks x executors sweep on the hierarchical topology (§8.2)";
  spec.axis = {"executors", "count"};
  for (const RackPoint& p : points) {
    sweep::SweepPoint point;
    char label[48];
    std::snprintf(label, sizeof(label), "racks-%zu-%s", p.racks, ModeName(p.mode));
    point.label = label;
    point.series = ModeName(p.mode);
    point.x = static_cast<double>(p.executors());
    point.config = PointConfig(p, runner.horizon());
    spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(spec, [&](std::vector<sweep::SweepPointResult>& rs) {
    for (size_t i = 0; i < rs.size(); ++i) {
      const RackPoint& p = points[i];
      rs[i].scalars["total_executors"] = static_cast<double>(p.executors());
      rs[i].scalars["per_executor_tps"] =
          rs[i].result.throughput_tps / static_cast<double>(p.executors());
      const std::vector<uint64_t>& decisions = rs[i].result.rack_decisions;
      if (!decisions.empty()) {
        uint64_t total = 0;
        for (uint64_t d : decisions) {
          total += d;
        }
        const double mean = static_cast<double>(total) / static_cast<double>(decisions.size());
        const uint64_t max = *std::max_element(decisions.begin(), decisions.end());
        rs[i].scalars["rack_decision_imbalance"] =
            mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
      }
    }
  });

  std::printf("--- balanced (no-op): aggregate decision rate vs rack count ---\n");
  std::printf("%6s %10s %12s %14s %12s %10s %10s\n", "racks", "executors", "offered/s",
              "decisions/s", "per-exec/s", "pull p50", "pull p99");
  for (size_t i = 0; i < points.size(); ++i) {
    const RackPoint& p = points[i];
    if (p.mode != Mode::kBalanced) {
      continue;
    }
    const ExperimentResult& r = results[i].result;
    std::printf("%6zu %10zu %11.1fM %13.1fM %11.1fk %10s %10s\n", p.racks, p.executors(),
                r.offered_tasks_per_second / 1e6, r.throughput_tps / 1e6,
                r.throughput_tps / static_cast<double>(p.executors()) / 1e3,
                FormatDuration(r.metrics->get_task_delay().Percentile(0.50)).c_str(),
                P99OrNone(r.metrics->get_task_delay()).c_str());
  }

  std::printf("\n--- per-rack decision shares (largest balanced point) ---\n");
  for (size_t i = points.size(); i-- > 0;) {
    if (points[i].mode != Mode::kBalanced) {
      continue;
    }
    const ExperimentResult& r = results[i].result;
    uint64_t total = 0;
    for (uint64_t d : r.rack_decisions) {
      total += d;
    }
    for (size_t rack = 0; rack < r.rack_decisions.size(); ++rack) {
      std::printf("  rack %2zu: %9llu decisions (%.1f%%)\n", rack,
                  static_cast<unsigned long long>(r.rack_decisions[rack]),
                  total > 0 ? 100.0 * static_cast<double>(r.rack_decisions[rack]) /
                                  static_cast<double>(total)
                            : 0.0);
    }
    break;
  }

  std::printf("\n--- latency (completing tasks): e2e vs rack count, balanced homing ---\n");
  std::printf("%6s %10s %14s %10s %10s\n", "racks", "executors", "decisions/s", "e2e p50",
              "e2e p99");
  for (size_t i = 0; i < points.size(); ++i) {
    const RackPoint& p = points[i];
    if (p.mode != Mode::kLatency) {
      continue;
    }
    const ExperimentResult& r = results[i].result;
    std::printf("%6zu %10zu %13.2fM %10s %10s\n", p.racks, p.executors(),
                r.throughput_tps / 1e6,
                FormatDuration(r.metrics->e2e_delay().Percentile(0.50)).c_str(),
                P99OrNone(r.metrics->e2e_delay()).c_str());
  }

  std::printf("\n--- skewed: every client homes on rack 0, load > one rack ---\n");
  std::printf("%6s %10s %12s %14s %12s %12s %10s %10s\n", "racks", "executors", "offered/s",
              "decisions/s", "cross-frac", "cross-subs", "e2e p50", "e2e p99");
  for (size_t i = 0; i < points.size(); ++i) {
    const RackPoint& p = points[i];
    if (!p.skewed()) {
      continue;
    }
    const ExperimentResult& r = results[i].result;
    std::printf("%6zu %10zu %11.1fM %13.1fM %12.3f %12llu %10s %10s\n", p.racks,
                p.executors(), r.offered_tasks_per_second / 1e6, r.throughput_tps / 1e6,
                r.cross_rack_fraction,
                static_cast<unsigned long long>(r.cross_rack_submissions),
                FormatDuration(r.metrics->e2e_delay().Percentile(0.50)).c_str(),
                P99OrNone(r.metrics->e2e_delay()).c_str());
  }

  std::printf(
      "\nShape check: per-rack pipelines are independent, so balanced decisions/s\n"
      "should track rack count (near-linear in the table above), and the skewed\n"
      "series should show cross_rack_fraction > 0 once rack 0's queue-depth\n"
      "summaries cross the overflow watermark.\n");
  return 0;
}
