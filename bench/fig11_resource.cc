// Reproduces paper Fig. 11: resource-constraint-aware scheduling. The
// cluster is split into three groups — G1 offers resource A, G2 offers A+B,
// G3 offers A+B+C — and the workload runs three equal phases whose tasks
// demand A, then B, then C.
//
// Paper headline: in phase 1 all groups are busy; in phase 2 only G2+G3; in
// phase 3 only G3, which is overloaded — the last task is submitted at the
// 90 s mark but execution finishes around 110 s.
//
// Scaling note (DESIGN.md): the paper runs 3 x 30 s phases on 160 executors;
// we run a time-scaled version (3 x 3 s phases, 10 ms tasks, 48 executors)
// that preserves the per-phase utilization ratios and the ~2/3-phase
// overrun.

#include <cstdio>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Figure 11", "per-group node throughput under phased resource constraints",
                     SweepRunner::kNoHorizonFlag);
  TimeNs phase = Quick() ? FromSeconds(1) : FromSeconds(3);
  runner.parser().AddDuration("phase", &phase, "duration of each resource-demand phase");
  runner.ParseFlagsOrExit(argc, argv);

  constexpr size_t kNodes = 6;          // 2 nodes per group
  constexpr size_t kExecsPerNode = 8;   // 48 executors
  const TimeNs task = FromMillis(10);

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.policy = PolicyKind::kResource;
  config.num_workers = kNodes;
  config.executors_per_worker = kExecsPerNode;
  config.num_clients = 2;
  // G1 = nodes {0,1}: A; G2 = nodes {2,3}: A+B; G3 = nodes {4,5}: A+B+C.
  config.worker_resources = {0b001, 0b001, 0b011, 0b011, 0b111, 0b111};
  config.max_tasks_per_packet = 1;

  workload::ResourcePhasesSpec spec;
  // ~55% of cluster capacity per phase: phase 3's demand is 3x G3's own
  // capacity, so G3 needs ~1.65 extra phases to drain.
  spec.tasks_per_second = 0.55 * kNodes * kExecsPerNode / ToSeconds(task);
  spec.phase_duration = phase;
  spec.service = workload::ServiceTime::Fixed(task);
  spec.seed = 33;
  config.stream = workload::GenerateResourcePhases(spec);

  config.warmup = 1;  // measure everything
  config.horizon = 8 * phase;
  config.run_to_completion = true;
  config.node_series_bucket = phase / 10;
  // Constrained tasks legitimately wait a large fraction of a phase for a
  // capable executor; resubmission would only duplicate them.
  config.timeout_multiplier = 2000.0;
  // Slow the idle-executor poll loop: G1/G2 executors have nothing runnable
  // for whole phases and each of their pulls starts a swap walk.
  config.executor_template.max_retry = FromMicros(500);

  sweep::SweepSpec sweep_spec;
  sweep_spec.name = "fig11";
  sweep_spec.title = "per-group node throughput under phased resource constraints";
  sweep_spec.axis = {"phase", "index"};
  {
    sweep::SweepPoint point;
    point.label = "resource-phases";
    point.series = "Draconis-Resource";
    point.config = std::move(config);
    sweep_spec.points.push_back(std::move(point));
  }

  const auto results = runner.Run(sweep_spec);
  const ExperimentResult& result = results[0].result;
  const TimeNs bucket = sweep_spec.points[0].config.node_series_bucket;

  std::printf("last task submitted at %s; all tasks finished at %s (paper: 90 s -> ~110 s)\n\n",
              FormatDuration(3 * phase).c_str(), FormatDuration(result.drain_time).c_str());

  std::printf("avg tasks/s per node in each group (bucket = %s):\n",
              FormatDuration(bucket).c_str());
  std::printf("%8s %12s %12s %12s\n", "time", "G1 (A)", "G2 (AB)", "G3 (ABC)");
  const size_t buckets = static_cast<size_t>(result.drain_time / bucket) + 1;
  for (size_t b = 0; b < buckets; ++b) {
    double g[3] = {0, 0, 0};
    for (uint32_t node = 0; node < kNodes; ++node) {
      g[node / 2] += result.metrics->node_completions(node).BucketRate(b);
    }
    std::printf("%8s %12.1f %12.1f %12.1f\n",
                FormatDuration(static_cast<TimeNs>(b) * bucket).c_str(), g[0] / 2, g[1] / 2,
                g[2] / 2);
  }

  std::printf(
      "\nShape check: all groups busy in phase 1; G1 idles in phase 2; only G3 works\n"
      "in phase 3 and overruns well past the end of submissions (paper: 20 s of\n"
      "overrun on 30 s phases; here the same ~2/3-phase overrun, time-scaled).\n");
  return 0;
}
