// Reproduces paper Fig. 7: the share of processed packets that are
// recirculations, and the resulting task drops, for R2P2-1, R2P2-3 and
// Draconis with the 250 us workload as cluster load grows.
//
// Paper headline: R2P2-1 recirculates ~50% of all packets at 93% load (75%
// at 97%) and drops tasks; R2P2-3 and Draconis recirculate (almost) nothing.
// Draconis' recirculations are 0.02-0.05% in the paper — pointer repairs
// only.

#include <cstdio>
#include <vector>

#include "bench/common.h"

using namespace draconis;
using namespace draconis::bench;
using namespace draconis::cluster;

int main(int argc, char** argv) {
  SweepRunner runner("Figure 7", "recirculated packets and task drops vs load, 250 us tasks");
  runner.ParseFlagsOrExit(argc, argv);

  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(250));
  std::vector<double> utils = {0.70, 0.82, 0.88, 0.93, 0.97};
  if (Quick()) {
    utils = {0.82, 0.93};
  }

  struct System {
    const char* name;
    SchedulerKind kind;
    uint32_t jbsq_k;
  };
  const System systems[] = {
      {"R2P2-1", SchedulerKind::kR2P2, 1},
      {"R2P2-3", SchedulerKind::kR2P2, 3},
      {"Draconis", SchedulerKind::kDraconis, 0},
  };

  sweep::SweepSpec spec;
  spec.name = "fig07";
  spec.title = "recirculated packets and task drops vs load, 250 us tasks";
  spec.axis = {"cluster load", "fraction"};
  for (const System& system : systems) {
    for (double util : utils) {
      sweep::SweepPoint point;
      point.series = system.name;
      point.x = util;
      char label[64];
      std::snprintf(label, sizeof(label), "%s@%.0f%%", system.name, util * 100);
      point.label = label;
      point.config = SyntheticConfig(system.kind, UtilToTps(util, service.Mean()), service,
                                     42, 10, runner.horizon());
      if (system.jbsq_k > 0) {
        point.config.jbsq_k = system.jbsq_k;
      }
      spec.points.push_back(std::move(point));
    }
  }

  const auto results = runner.Run(spec);

  std::printf("%-12s %6s %18s %14s %16s\n", "system", "load", "recirc share", "drop share",
              "p99 sched delay");
  size_t i = 0;
  for (const System& system : systems) {
    for (double util : utils) {
      const ExperimentResult& result = results[i++].result;
      std::printf("%-12s %5.0f%% %17.3f%% %13.3f%% %16s\n", system.name, util * 100,
                  result.recirculation_share * 100, result.drop_fraction * 100,
                  FormatDuration(result.metrics->sched_delay().Percentile(0.99)).c_str());
    }
  }

  std::printf(
      "\nShape check: R2P2-1's recirculation share climbs into the tens of percent and\n"
      "it drops tasks at high load; R2P2-3 ~0%%; Draconis recirculates only pointer\n"
      "repairs (well under 1%%) and never drops.\n");
  return 0;
}
