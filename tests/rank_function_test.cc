// Comparator-law and policy-behaviour tests for the RankFunction layer
// (docs/pifo.md). The laws follow *Formal Abstractions for Packet
// Scheduling*: the order a rank function induces must be total and
// transitive, and each policy must be monotone in its declared key. The
// behaviour tests drive each rank function through a real p4::Pifo and check
// the pop order a scheduler would actually see: SRPT picks the shortest
// declared service, EDF the earliest absolute deadline, and WFQ converges to
// the configured tenant weights on a synthetic two-tenant stream.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/time.h"
#include "core/rank_function.h"
#include "net/packet.h"
#include "p4/pifo.h"
#include "p4/register.h"

namespace draconis::core {
namespace {

net::TaskInfo MakeTask(uint32_t tprops, TimeNs exec_duration) {
  net::TaskInfo task;
  task.tprops = tprops;
  task.meta.exec_duration = exec_duration;
  return task;
}

uint64_t RankOf(RankFunction& fn, const net::TaskInfo& task, TimeNs now) {
  p4::PacketPass pass;
  return fn.Rank(pass, task, now);
}

// ---------------------------------------------------------------------------
// Naming and construction.

TEST(RankFunctionTest, PolicyNamesRoundTrip) {
  for (SwitchPolicy policy : AllSwitchPolicies()) {
    SwitchPolicy parsed;
    ASSERT_TRUE(SwitchPolicyFromName(SwitchPolicyName(policy), &parsed))
        << SwitchPolicyName(policy);
    EXPECT_EQ(parsed, policy);
  }
  SwitchPolicy parsed;
  EXPECT_TRUE(SwitchPolicyFromName("SRPT", &parsed));  // case-insensitive
  EXPECT_EQ(parsed, SwitchPolicy::kSrpt);
  EXPECT_FALSE(SwitchPolicyFromName("lifo", &parsed));
  EXPECT_FALSE(SwitchPolicyFromName("", &parsed));
}

TEST(RankFunctionTest, MakeRankFunctionCoversEveryPolicy) {
  RankFunctionConfig config;
  EXPECT_EQ(MakeRankFunction(SwitchPolicy::kFifo, config), nullptr);
  for (SwitchPolicy policy : AllSwitchPolicies()) {
    if (policy == SwitchPolicy::kFifo) {
      continue;
    }
    std::unique_ptr<RankFunction> fn = MakeRankFunction(policy, config);
    ASSERT_NE(fn, nullptr) << SwitchPolicyName(policy);
    EXPECT_STREQ(fn->name(), SwitchPolicyName(policy));
  }
}

TEST(RankFunctionTest, WfqRejectsDegenerateWeights) {
  EXPECT_THROW(WfqRank(std::vector<uint32_t>{}), draconis::CheckFailure);
  EXPECT_THROW(WfqRank(std::vector<uint32_t>{3, 0}), draconis::CheckFailure);
}

TEST(RankFunctionTest, WfqAccountsItsRegisters) {
  p4::ResourceLedger ledger;
  WfqRank wfq({3, 1}, &ledger);
  // One finish tag per tenant plus the virtual clock, 8 bytes each.
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.total_bytes(), (2 + 1) * 8u);
}

// ---------------------------------------------------------------------------
// Comparator laws. Ranks are plain uint64_t, so totality and transitivity of
// the induced order reduce to the laws of integer comparison — but a rank
// function could still break them by being non-deterministic (two calls on
// the same task disagreeing). The law tests pin determinism plus the
// integer-order laws on ranks actually produced by each policy.

std::vector<std::unique_ptr<RankFunction>> StatelessRankFunctions() {
  // WFQ is excluded: its rank is intentionally stateful (virtual start
  // times), covered by its own monotonicity and convergence tests below.
  RankFunctionConfig config;
  std::vector<std::unique_ptr<RankFunction>> fns;
  fns.push_back(MakeRankFunction(SwitchPolicy::kStrictPriority, config));
  fns.push_back(MakeRankFunction(SwitchPolicy::kSrpt, config));
  fns.push_back(MakeRankFunction(SwitchPolicy::kEdf, config));
  return fns;
}

TEST(RankFunctionTest, ComparatorLawsHoldOnRandomTasks) {
  Rng rng(42);
  for (const std::unique_ptr<RankFunction>& fn : StatelessRankFunctions()) {
    for (int trial = 0; trial < 200; ++trial) {
      const TimeNs now = static_cast<TimeNs>(rng.NextBelow(1000000000));
      net::TaskInfo tasks[3];
      uint64_t ranks[3];
      for (int i = 0; i < 3; ++i) {
        tasks[i] = MakeTask(static_cast<uint32_t>(rng.NextBelow(1000)),
                            static_cast<TimeNs>(rng.NextBelow(FromMillis(2))));
        ranks[i] = RankOf(*fn, tasks[i], now);
        // Determinism: the same task at the same time gets the same rank.
        ASSERT_EQ(RankOf(*fn, tasks[i], now), ranks[i]) << fn->name();
      }
      // Totality: exactly one of <, >, == holds for each pair.
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          ASSERT_EQ((ranks[a] < ranks[b]) + (ranks[b] < ranks[a]) +
                        (ranks[a] == ranks[b]),
                    1)
              << fn->name();
        }
      }
      // Transitivity on the sampled triple.
      if (ranks[0] <= ranks[1] && ranks[1] <= ranks[2]) {
        ASSERT_LE(ranks[0], ranks[2]) << fn->name();
      }
    }
  }
}

TEST(RankFunctionTest, StrictPriorityIsMonotoneInPriorityLevel) {
  StrictPriorityRank sp;
  uint64_t prev = 0;
  for (uint32_t level = 0; level < 8; ++level) {
    const uint64_t rank = RankOf(sp, MakeTask(level, FromMicros(100)), FromMillis(3));
    EXPECT_GE(rank, prev);
    EXPECT_EQ(rank, level);  // the level IS the rank (1 = most urgent)
    prev = rank;
  }
}

TEST(RankFunctionTest, SrptIsMonotoneInDeclaredService) {
  SrptRank srpt;
  uint64_t prev = 0;
  for (TimeNs d : {TimeNs{0}, FromMicros(1), FromMicros(100), FromMicros(500), FromMillis(5)}) {
    const uint64_t rank = RankOf(srpt, MakeTask(0, d), FromMillis(3));
    EXPECT_GE(rank, prev);
    prev = rank;
  }
  // Defensive clamp: a negative declared duration never wraps to a huge rank.
  EXPECT_EQ(RankOf(srpt, MakeTask(0, TimeNs{-1}), 0), 0u);
}

TEST(RankFunctionTest, EdfIsMonotoneInDeadlineAndTime) {
  EdfRank edf;
  // Fixed now, growing relative deadline.
  uint64_t prev = 0;
  for (uint32_t deadline_us : {0u, 10u, 200u, 5000u}) {
    const uint64_t rank = RankOf(edf, MakeTask(deadline_us, FromMicros(100)), FromMillis(1));
    EXPECT_GE(rank, prev);
    prev = rank;
  }
  // Fixed deadline, advancing clock: a later arrival with the same slack
  // ranks later (absolute deadlines, not relative).
  const uint64_t early = RankOf(edf, MakeTask(200, 0), FromMillis(1));
  const uint64_t late = RankOf(edf, MakeTask(200, 0), FromMillis(2));
  EXPECT_LT(early, late);
  EXPECT_EQ(late - early, static_cast<uint64_t>(FromMillis(1)));
}

TEST(RankFunctionTest, WfqStartTagsAreMonotonePerTenant) {
  WfqRank wfq({3, 1});
  uint64_t prev[2] = {0, 0};
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const uint32_t tenant = static_cast<uint32_t>(rng.NextBelow(2));
    const uint64_t rank =
        RankOf(wfq, MakeTask(tenant, FromMicros(50 + rng.NextBelow(200))), 0);
    ASSERT_GE(rank, prev[tenant]) << "i=" << i;
    prev[tenant] = rank;
  }
}

// ---------------------------------------------------------------------------
// Policy behaviour through a real PIFO.

// Pushes `task` through `fn` into `pifo` the way DraconisProgram's enqueue
// pass does: rank computation and admit share one PacketPass.
void PushVia(RankFunction& fn, p4::Pifo<int>& pifo, const net::TaskInfo& task, TimeNs now,
             int id) {
  p4::PacketPass pass;
  const uint64_t rank = fn.Rank(pass, task, now);
  ASSERT_TRUE(pifo.Push(pass, rank, id).admitted);
}

int PopVia(RankFunction& fn, p4::Pifo<int>& pifo) {
  p4::PacketPass pass;
  const p4::Pifo<int>::PopResult pop = pifo.Pop(pass);
  EXPECT_TRUE(pop.got);
  fn.OnDequeue(pass, pop.rank);
  return pop.got ? pop.value : -1;
}

TEST(RankFunctionTest, SrptPopsShortestDeclaredServiceFirst) {
  SrptRank srpt;
  p4::Pifo<int> pifo("srpt_pifo", 8);
  const TimeNs durations[] = {FromMicros(500), FromMicros(100), FromMicros(300),
                              FromMicros(100)};
  for (int id = 0; id < 4; ++id) {
    PushVia(srpt, pifo, MakeTask(0, durations[id]), 0, id);
  }
  // Shortest first; the two 100 us tasks tie and resolve FIFO (1 before 3).
  EXPECT_EQ(PopVia(srpt, pifo), 1);
  EXPECT_EQ(PopVia(srpt, pifo), 3);
  EXPECT_EQ(PopVia(srpt, pifo), 2);
  EXPECT_EQ(PopVia(srpt, pifo), 0);
}

TEST(RankFunctionTest, EdfPopsEarliestAbsoluteDeadlineFirst) {
  EdfRank edf;
  p4::Pifo<int> pifo("edf_pifo", 8);
  // id 0: arrives at 0 with 900 us slack -> deadline 900 us.
  // id 1: arrives at 500 us with 100 us slack -> deadline 600 us.
  // id 2: arrives at 100 us with 1000 us slack -> deadline 1100 us.
  PushVia(edf, pifo, MakeTask(900, FromMicros(50)), 0, 0);
  PushVia(edf, pifo, MakeTask(100, FromMicros(50)), FromMicros(500), 1);
  PushVia(edf, pifo, MakeTask(1000, FromMicros(50)), FromMicros(100), 2);
  EXPECT_EQ(PopVia(edf, pifo), 1);
  EXPECT_EQ(PopVia(edf, pifo), 0);
  EXPECT_EQ(PopVia(edf, pifo), 2);
}

// Two continuously-backlogged tenants with weights 3:1 and equal task costs:
// the served mix must converge to 75% / 25%.
TEST(RankFunctionTest, WfqSharesConvergeToConfiguredWeights) {
  WfqRank wfq({3, 1});
  p4::Pifo<int> pifo("wfq_pifo", 64);
  int backlog[2] = {0, 0};
  int served[2] = {0, 0};
  const int kPops = 400;
  for (int i = 0; i < kPops; ++i) {
    for (int tenant = 0; tenant < 2; ++tenant) {
      while (backlog[tenant] < 4) {
        PushVia(wfq, pifo, MakeTask(static_cast<uint32_t>(tenant), FromMicros(100)), 0,
                tenant);
        ++backlog[tenant];
      }
    }
    const int tenant = PopVia(wfq, pifo);
    ASSERT_GE(tenant, 0);
    ++served[tenant];
    --backlog[tenant];
  }
  const double share0 = static_cast<double>(served[0]) / kPops;
  EXPECT_NEAR(share0, 0.75, 0.05) << "served " << served[0] << "/" << served[1];
  // The virtual clock advanced with service (SFQ), so a late-joining tenant
  // cannot claim credit for the time it was idle.
  EXPECT_GT(wfq.cp_virtual_time(), 0u);
}

// An out-of-range tenant id clamps to the last configured weight instead of
// indexing out of bounds (mirrors the FIFO pipeline's queue-index clamp).
TEST(RankFunctionTest, WfqClampsUnknownTenants) {
  WfqRank wfq({3, 1});
  const uint64_t r = RankOf(wfq, MakeTask(/*tprops=*/17, FromMicros(100)), 0);
  EXPECT_EQ(r, 0u);  // first push starts at virtual time zero
  EXPECT_GT(wfq.cp_finish_tag(1), 0u);  // billed to the clamped (last) tenant
}

}  // namespace
}  // namespace draconis::core
