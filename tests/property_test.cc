// Property-based tests: random operation interleavings against the switch
// queue and whole-system invariants, swept across parameter grids with
// parameterized gtest.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cluster/experiment.h"
#include "common/rng.h"
#include "core/switch_queue.h"
#include "workload/generators.h"

namespace draconis {
namespace {

using core::QueueEntry;
using core::SwitchQueue;

QueueEntry Entry(uint32_t tid) {
  QueueEntry e;
  e.task.id = net::TaskId{9, 9, tid};
  e.valid = true;
  return e;
}

// ---------------------------------------------------------------------------
// Queue fuzz: a random mix of enqueues, dequeues and repairs must never lose
// or duplicate a task, and FCFS order must hold among retrievals.
// ---------------------------------------------------------------------------

struct QueueFuzzParam {
  size_t capacity;
  uint64_t seed;
  bool shadow;
};

class QueueFuzzTest : public ::testing::TestWithParam<QueueFuzzParam> {};

TEST_P(QueueFuzzTest, NoTaskLostOrDuplicated) {
  const QueueFuzzParam param = GetParam();
  SwitchQueue queue("fuzz", param.capacity, nullptr, param.shadow);
  Rng rng(param.seed);

  uint32_t next_tid = 0;
  std::set<uint32_t> accepted;   // enqueued and not yet retrieved
  std::vector<uint32_t> retrieved;
  // Repairs the program would have in flight (kNoRepair = none pending).
  constexpr uint64_t kNoRepair = ~0ull;
  uint64_t pending_add_repair = kNoRepair;
  uint64_t pending_retrieve_repair = kNoRepair;

  for (int op = 0; op < 5000; ++op) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 45) {  // enqueue
      p4::PacketPass pass;
      const uint32_t tid = next_tid++;
      auto res = queue.Enqueue(pass, Entry(tid));
      if (res.added) {
        accepted.insert(tid);
      }
      if (res.need_add_repair) {
        ASSERT_EQ(pending_add_repair, kNoRepair);
        pending_add_repair = res.add_repair_value;
      }
      if (res.need_retrieve_repair) {
        ASSERT_EQ(pending_retrieve_repair, kNoRepair);
        pending_retrieve_repair = res.retrieve_repair_value;
      }
    } else if (dice < 90) {  // dequeue
      p4::PacketPass pass;
      auto res = queue.Dequeue(pass);
      if (res.got_task) {
        const uint32_t tid = res.entry.task.id.tid;
        ASSERT_TRUE(accepted.count(tid)) << "retrieved a task never accepted: " << tid;
        accepted.erase(tid);
        retrieved.push_back(tid);
      }
    } else {  // land any pending repair (repairs are prompt in practice)
      if (pending_add_repair != kNoRepair) {
        p4::PacketPass pass;
        queue.ApplyRepair(pass, net::RepairTarget::kAddPtr, pending_add_repair);
        pending_add_repair = kNoRepair;
      } else if (pending_retrieve_repair != kNoRepair) {
        p4::PacketPass pass;
        queue.ApplyRepair(pass, net::RepairTarget::kRetrievePtr, pending_retrieve_repair);
        pending_retrieve_repair = kNoRepair;
      }
    }
  }

  // Land stragglers and drain: every accepted task must come out exactly once.
  if (pending_add_repair != kNoRepair) {
    p4::PacketPass pass;
    queue.ApplyRepair(pass, net::RepairTarget::kAddPtr, pending_add_repair);
  }
  if (pending_retrieve_repair != kNoRepair) {
    p4::PacketPass pass;
    queue.ApplyRepair(pass, net::RepairTarget::kRetrievePtr, pending_retrieve_repair);
  }
  for (size_t i = 0; i < param.capacity + 8 && !accepted.empty(); ++i) {
    p4::PacketPass pass;
    auto res = queue.Dequeue(pass);
    if (res.got_task) {
      const uint32_t tid = res.entry.task.id.tid;
      ASSERT_TRUE(accepted.count(tid));
      accepted.erase(tid);
      retrieved.push_back(tid);
    }
  }
  EXPECT_TRUE(accepted.empty()) << accepted.size() << " tasks lost in the queue";

  // FCFS: retrieval order must be increasing (tids are assigned in
  // submission order and every accepted task is retrieved exactly once).
  for (size_t i = 1; i < retrieved.size(); ++i) {
    ASSERT_LT(retrieved[i - 1], retrieved[i]) << "FCFS order violated at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QueueFuzzTest,
    ::testing::Values(QueueFuzzParam{2, 1, true}, QueueFuzzParam{2, 2, false},
                      QueueFuzzParam{3, 3, true}, QueueFuzzParam{3, 4, false},
                      QueueFuzzParam{8, 5, true}, QueueFuzzParam{8, 6, false},
                      QueueFuzzParam{64, 7, true}, QueueFuzzParam{64, 8, false},
                      QueueFuzzParam{7, 9, true}, QueueFuzzParam{7, 10, false}),
    [](const ::testing::TestParamInfo<QueueFuzzParam>& fuzz_info) {
      return "cap" + std::to_string(fuzz_info.param.capacity) + "_seed" +
             std::to_string(fuzz_info.param.seed) + (fuzz_info.param.shadow ? "_shadow" : "_textbook");
    });

// ---------------------------------------------------------------------------
// Queue + swap fuzz: interleave swaps with traffic; tasks must be conserved
// (each ends up either retrieved once or still stored once).
// ---------------------------------------------------------------------------

class SwapFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwapFuzzTest, SwapsConserveTasks) {
  SwitchQueue queue("swapfuzz", 16);
  Rng rng(GetParam());

  uint32_t next_tid = 0;
  std::multiset<uint32_t> live;  // in queue or carried by the "walk"
  std::vector<uint32_t> retrieved;
  std::optional<QueueEntry> carried;
  uint64_t carried_rptr = 0;
  uint64_t carried_indx = 0;

  // Enqueue with prompt repairs (the pipeline lands them within a pass or
  // two; here they land immediately).
  const auto enqueue = [&](const QueueEntry& entry) {
    p4::PacketPass pass;
    auto res = queue.Enqueue(pass, entry);
    if (res.need_add_repair) {
      p4::PacketPass repair;
      queue.ApplyRepair(repair, net::RepairTarget::kAddPtr, res.add_repair_value);
    }
    if (res.need_retrieve_repair) {
      p4::PacketPass repair;
      queue.ApplyRepair(repair, net::RepairTarget::kRetrievePtr, res.retrieve_repair_value);
    }
    return res.added;
  };

  for (int op = 0; op < 4000; ++op) {
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 30) {
      const uint32_t tid = next_tid++;
      if (enqueue(Entry(tid))) {
        live.insert(tid);
      }
    } else if (dice < 60) {
      p4::PacketPass pass;
      auto res = queue.Dequeue(pass);
      if (res.got_task) {
        // Half the time, start a swap walk with the dequeued task.
        if (carried == std::nullopt && rng.NextBool(0.5)) {
          carried = res.entry;
          carried_rptr = res.slot + 1;
          carried_indx = res.slot + 1;
        } else {
          live.erase(live.find(res.entry.task.id.tid));
          retrieved.push_back(res.entry.task.id.tid);
        }
      }
    } else if (carried.has_value()) {
      p4::PacketPass pass;
      auto res = queue.SwapAt(pass, carried_rptr, carried_indx, *carried);
      if (res.past_end) {
        // Re-enqueue the carried task like the program does.
        if (enqueue(*carried)) {
          carried.reset();
        }
      } else if (res.swapped) {
        carried = res.previous;
        carried_indx = res.slot + 1;
        carried_rptr = res.head;
      } else {
        carried.reset();  // absorbed into the queue
      }
    }
  }

  // Finish any walk, then drain.
  if (carried.has_value()) {
    ASSERT_TRUE(enqueue(*carried)) << "could not re-enqueue carried task";
    carried.reset();
  }
  for (int i = 0; i < 64 && !live.empty(); ++i) {
    p4::PacketPass pass;
    auto res = queue.Dequeue(pass);
    if (res.got_task) {
      const uint32_t tid = res.entry.task.id.tid;
      ASSERT_TRUE(live.count(tid)) << "duplicated or phantom task " << tid;
      live.erase(live.find(tid));
      retrieved.push_back(tid);
    }
  }
  EXPECT_TRUE(live.empty()) << live.size() << " tasks lost across swaps";

  // No duplicates among retrievals.
  std::set<uint32_t> unique(retrieved.begin(), retrieved.end());
  EXPECT_EQ(unique.size(), retrieved.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapFuzzTest, ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// End-to-end conservation: for every scheduler kind and a grid of loads, all
// submitted tasks complete when the system runs to completion.
// ---------------------------------------------------------------------------

struct ConservationParam {
  cluster::SchedulerKind kind;
  double utilization;
};

class ConservationTest : public ::testing::TestWithParam<ConservationParam> {};

TEST_P(ConservationTest, EveryTaskCompletesExactlyOnce) {
  const ConservationParam param = GetParam();
  cluster::ExperimentConfig config;
  config.scheduler = param.kind;
  config.num_workers = 4;
  config.executors_per_worker = 4;
  config.num_clients = 2;
  config.warmup = 1;
  config.horizon = FromSeconds(3);
  config.run_to_completion = true;
  config.max_tasks_per_packet = 1;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = param.utilization * 16 / 100e-6;
  spec.duration = FromMillis(20);
  spec.service = workload::ServiceTime::Fixed(FromMicros(100));
  spec.seed = 1234;
  config.stream = workload::GenerateOpenLoop(spec);

  cluster::ExperimentResult result = cluster::RunExperiment(config);
  EXPECT_GE(result.drain_time, 0) << "cluster did not drain";
  EXPECT_EQ(result.metrics->tasks_completed(), result.metrics->tasks_submitted());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationTest,
    ::testing::Values(
        ConservationParam{cluster::SchedulerKind::kDraconis, 0.3},
        ConservationParam{cluster::SchedulerKind::kDraconis, 0.8},
        ConservationParam{cluster::SchedulerKind::kDraconisDpdkServer, 0.5},
        ConservationParam{cluster::SchedulerKind::kDraconisSocketServer, 0.3},
        ConservationParam{cluster::SchedulerKind::kR2P2, 0.3},
        ConservationParam{cluster::SchedulerKind::kR2P2, 0.7},
        ConservationParam{cluster::SchedulerKind::kRackSched, 0.5},
        ConservationParam{cluster::SchedulerKind::kSparrow, 0.5}),
    [](const ::testing::TestParamInfo<ConservationParam>& cons_info) {
      std::string name = cluster::SchedulerKindName(cons_info.param.kind);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_u" + std::to_string(static_cast<int>(cons_info.param.utilization * 100));
    });

// ---------------------------------------------------------------------------
// Register discipline sweep: every policy's full packet flow stays within the
// one-access-per-register budget (the p4 layer throws otherwise). Running a
// busy mixed workload through each policy is a property check by itself.
// ---------------------------------------------------------------------------

class PolicyDisciplineTest : public ::testing::TestWithParam<cluster::PolicyKind> {};

TEST_P(PolicyDisciplineTest, NoRegisterViolationsUnderLoad) {
  cluster::ExperimentConfig config;
  config.scheduler = cluster::SchedulerKind::kDraconis;
  config.policy = GetParam();
  config.num_workers = 6;
  config.executors_per_worker = 4;
  config.num_racks = 3;
  config.num_clients = 2;
  config.warmup = FromMillis(2);
  config.horizon = FromMillis(30);
  config.max_tasks_per_packet = 1;
  config.priority_levels = 4;
  config.worker_resources = {0b1, 0b1, 0b11, 0b11, 0b111, 0b111};
  config.locality_access_model = config.policy == cluster::PolicyKind::kLocality;
  config.timeout_multiplier = 10.0;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 0.7 * 24 / 100e-6;
  spec.duration = FromMillis(30);
  spec.service = workload::ServiceTime::Fixed(FromMicros(100));
  spec.seed = 5;
  config.stream = workload::GenerateOpenLoop(spec);
  switch (config.policy) {
    case cluster::PolicyKind::kPriority:
      workload::TagPriorities(config.stream, {1, 2, 3, 4}, 6);
      break;
    case cluster::PolicyKind::kLocality:
      workload::TagLocality(config.stream, 6, 7);
      break;
    case cluster::PolicyKind::kResource:
      for (auto& job : config.stream) {
        for (auto& task : job.tasks) {
          task.tprops = 1u << (task.fn_id % 3);
        }
      }
      break;
    default:
      break;
  }

  // A register-discipline violation throws CheckFailure out of RunExperiment.
  EXPECT_NO_THROW({
    cluster::ExperimentResult result = cluster::RunExperiment(config);
    EXPECT_GT(result.metrics->tasks_completed(), 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyDisciplineTest,
                         ::testing::Values(cluster::PolicyKind::kFcfs,
                                           cluster::PolicyKind::kPriority,
                                           cluster::PolicyKind::kResource,
                                           cluster::PolicyKind::kLocality),
                         [](const ::testing::TestParamInfo<cluster::PolicyKind>& pol_info) {
                           switch (pol_info.param) {
                             case cluster::PolicyKind::kFcfs:
                               return std::string("Fcfs");
                             case cluster::PolicyKind::kPriority:
                               return std::string("Priority");
                             case cluster::PolicyKind::kResource:
                               return std::string("Resource");
                             case cluster::PolicyKind::kLocality:
                               return std::string("Locality");
                           }
                           return std::string("Unknown");
                         });

}  // namespace
}  // namespace draconis
