// Oracle differential tests for the event engine.
//
// A naive reference queue — a sorted std::vector of (at, seq, id) with
// eager cancellation — is driven through the same randomized interleavings
// of schedule / cancel / timer-arm / run-until as the real slab+queue
// engine, on each queue backend. At every step the firing order, the clock,
// and the live-event count must match exactly; after each drain every
// outstanding handle's pending() must agree with the model. 32 seeds x
// ~10k operations per backend. A second differential drives the raw
// EventQueue backends against each other below the Simulator entirely.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/event_heap.h"
#include "sim/ladder_queue.h"
#include "sim/simulator.h"

namespace draconis::sim {
namespace {

struct RefEvent {
  TimeNs at = 0;
  uint64_t seq = 0;
  int id = 0;
};

// The oracle: keeps live events in a flat vector, fires them in exact
// (at, seq) order, removes cancellations eagerly. Mirrors the engine's seq
// allocation: every schedule or timer re-arm consumes one seq.
class ReferenceQueue {
 public:
  uint64_t Schedule(TimeNs at, int id) {
    const uint64_t seq = next_seq_++;
    events_.push_back(RefEvent{at, seq, id});
    return seq;
  }

  // Returns true if the seq was still pending (and removes it).
  bool Cancel(uint64_t seq) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->seq == seq) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool IsPending(uint64_t seq) const {
    return std::any_of(events_.begin(), events_.end(),
                       [seq](const RefEvent& e) { return e.seq == seq; });
  }

  // Fires everything with at <= until, in (at, seq) order; advances now().
  std::vector<int> RunUntil(TimeNs until) {
    std::vector<int> fired;
    for (;;) {
      auto next = std::min_element(events_.begin(), events_.end(),
                                   [](const RefEvent& a, const RefEvent& b) {
                                     return a.at != b.at ? a.at < b.at : a.seq < b.seq;
                                   });
      if (next == events_.end() || next->at > until) {
        break;
      }
      now_ = next->at;
      fired.push_back(next->id);
      events_.erase(next);
    }
    if (now_ < until) {
      now_ = until;
    }
    return fired;
  }

  void Clear() { events_.clear(); }

  TimeNs now() const { return now_; }
  size_t live() const { return events_.size(); }

 private:
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<RefEvent> events_;
};

struct LiveHandle {
  EventHandle handle;
  uint64_t ref_seq = 0;
};

constexpr int kTimerCount = 3;

struct Fixture {
  explicit Fixture(QueueBackend backend) : sim(backend) {}

  Simulator sim;
  ReferenceQueue ref;
  std::vector<int> fired;  // ids recorded by real-engine callbacks
  std::vector<LiveHandle> handles;
  std::vector<std::unique_ptr<Timer>> timers;
  // ref seq of each timer's pending occurrence, if armed.
  std::optional<uint64_t> timer_seq[kTimerCount];
  int next_id = 0;
};

void DriveSeed(QueueBackend backend, uint64_t seed, int steps) {
  Fixture fx(backend);
  // Timer ids are negative so they can't collide with one-shot ids; timer t
  // fires id -(t+1).
  for (int t = 0; t < kTimerCount; ++t) {
    fx.timers.push_back(
        std::make_unique<Timer>(&fx.sim, [&fx, t] { fx.fired.push_back(-(t + 1)); }));
  }

  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 40) {
      // Plain one-shot event.
      const TimeNs at = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(1000));
      const int id = fx.next_id++;
      fx.sim.ScheduleAt(at, [&fx, id] { fx.fired.push_back(id); });
      fx.ref.Schedule(at, id);
    } else if (op < 60) {
      // Cancellable one-shot event; keep the handle.
      const TimeNs at = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(1000));
      const int id = fx.next_id++;
      EventHandle h =
          fx.sim.ScheduleAt(at, [&fx, id] { fx.fired.push_back(id); }, kCancellable);
      fx.handles.push_back(LiveHandle{h, fx.ref.Schedule(at, id)});
    } else if (op < 70) {
      // Cancel a random tracked handle (may already have fired).
      if (!fx.handles.empty()) {
        LiveHandle& lh = fx.handles[rng.NextBelow(fx.handles.size())];
        const bool was_pending = fx.ref.IsPending(lh.ref_seq);
        ASSERT_EQ(lh.handle.pending(), was_pending) << "seed=" << seed << " step=" << step;
        lh.handle.Cancel();
        fx.ref.Cancel(lh.ref_seq);
        ASSERT_FALSE(lh.handle.pending());
      }
    } else if (op < 78) {
      // Arm (or re-arm) a timer: replaces its pending occurrence and
      // consumes one seq, exactly like the engine.
      const int t = static_cast<int>(rng.NextBelow(kTimerCount));
      const TimeNs at = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(1000));
      fx.timers[t]->ScheduleAt(at);
      if (fx.timer_seq[t].has_value()) {
        fx.ref.Cancel(*fx.timer_seq[t]);
      }
      fx.timer_seq[t] = fx.ref.Schedule(at, -(t + 1));
    } else if (op < 82) {
      // Cancel a timer.
      const int t = static_cast<int>(rng.NextBelow(kTimerCount));
      fx.timers[t]->Cancel();
      if (fx.timer_seq[t].has_value()) {
        fx.ref.Cancel(*fx.timer_seq[t]);
        fx.timer_seq[t].reset();
      }
      ASSERT_FALSE(fx.timers[t]->pending());
    } else if (op < 97) {
      // Run a bounded slice and compare the firing order id-for-id.
      const TimeNs until = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(400));
      fx.fired.clear();
      const uint64_t ran = fx.sim.RunUntil(until);
      const std::vector<int> expected = fx.ref.RunUntil(until);
      ASSERT_EQ(fx.fired, expected) << "seed=" << seed << " step=" << step;
      ASSERT_EQ(ran, expected.size());
      // Fired timers are no longer pending in the model either.
      for (int t = 0; t < kTimerCount; ++t) {
        if (fx.timer_seq[t].has_value() && !fx.ref.IsPending(*fx.timer_seq[t])) {
          fx.timer_seq[t].reset();
        }
        ASSERT_EQ(fx.timers[t]->pending(), fx.timer_seq[t].has_value());
      }
    } else {
      // Tear down the run: everything pending is dropped.
      fx.sim.Clear();
      fx.ref.Clear();
      for (int t = 0; t < kTimerCount; ++t) {
        fx.timer_seq[t].reset();
      }
    }

    // Invariants after every operation.
    ASSERT_EQ(fx.sim.Now(), fx.ref.now()) << "seed=" << seed << " step=" << step;
    ASSERT_EQ(fx.sim.pending_events(), fx.ref.live()) << "seed=" << seed << " step=" << step;

    // Cap the tracked-handle set so cancels keep hitting live events.
    if (fx.handles.size() > 512) {
      fx.handles.erase(fx.handles.begin(), fx.handles.begin() + 256);
    }
  }

  // Final drain must agree event-for-event too.
  fx.fired.clear();
  fx.sim.RunAll();
  const std::vector<int> expected = fx.ref.RunUntil(fx.sim.Now());
  ASSERT_EQ(fx.fired, expected) << "seed=" << seed;
  ASSERT_EQ(fx.sim.pending_events(), 0u);
  for (const LiveHandle& lh : fx.handles) {
    ASSERT_FALSE(lh.handle.pending());
  }
}

class EventQueuePropertyTest : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(EventQueuePropertyTest, MatchesNaiveReferenceAcross32Seeds) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    DriveSeed(GetParam(), seed, 10000);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// A deliberately adversarial clustering: many events at the same instant,
// interleaved with cancellations, so the (at, seq) tie-break is exercised
// hard.
TEST_P(EventQueuePropertyTest, SameInstantClustersKeepSchedulingOrder) {
  for (uint64_t seed = 100; seed < 108; ++seed) {
    Simulator sim(GetParam());
    ReferenceQueue ref;
    std::vector<int> fired;
    std::vector<LiveHandle> handles;
    Rng rng(seed);
    int next_id = 0;
    for (int round = 0; round < 200; ++round) {
      const TimeNs t = sim.Now() + static_cast<TimeNs>(rng.NextBelow(3));
      for (int burst = 0; burst < 20; ++burst) {
        const int id = next_id++;
        if (rng.NextBool(0.5)) {
          EventHandle h =
              sim.ScheduleAt(t, [&fired, id] { fired.push_back(id); }, kCancellable);
          handles.push_back(LiveHandle{h, ref.Schedule(t, id)});
        } else {
          sim.ScheduleAt(t, [&fired, id] { fired.push_back(id); });
          ref.Schedule(t, id);
        }
      }
      // Cancel half of the tracked handles.
      for (size_t i = 0; i + 1 < handles.size(); i += 2) {
        handles[i].handle.Cancel();
        ref.Cancel(handles[i].ref_seq);
      }
      handles.clear();
      fired.clear();
      const TimeNs until = sim.Now() + static_cast<TimeNs>(rng.NextBelow(4));
      sim.RunUntil(until);
      ASSERT_EQ(fired, ref.RunUntil(until)) << "seed=" << seed << " round=" << round;
      ASSERT_EQ(sim.pending_events(), ref.live());
    }
    sim.RunAll();
    // (drain; counts already compared each round)
  }
}

std::string BackendName(const ::testing::TestParamInfo<QueueBackend>& param) {
  return QueueBackendName(param.param);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventQueuePropertyTest,
                         ::testing::ValuesIn(AllQueueBackends()), BackendName);

// Differential below the Simulator: drive the raw backends through the
// EventQueue interface with randomized push/pop interleavings (including
// duplicate instants, far-future spikes, and pushes into the already-sorted
// near window) and require the pop streams to be identical key-for-key.
TEST(EventQueueDifferentialTest, HeapAndLadderPopIdenticalStreams) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    EventHeap heap;
    LadderQueue ladder;
    EventQueue* const queues[] = {&heap, &ladder};
    Rng rng(seed);
    uint64_t next_seq = 0;
    TimeNs low_watermark = 0;  // keys are never pushed below the last pop
    for (int step = 0; step < 20000; ++step) {
      const uint64_t op = rng.NextBelow(100);
      if (op < 55 || heap.empty()) {
        TimeNs at = low_watermark;
        const uint64_t shape = rng.NextBelow(10);
        if (shape < 6) {
          at += static_cast<TimeNs>(rng.NextBelow(256));  // near horizon
        } else if (shape < 9) {
          at += static_cast<TimeNs>(rng.NextBelow(1'000'000));  // ~ms ahead
        }  // else: exactly at the watermark (same-instant cluster)
        const EventKey key{at, next_seq++, static_cast<uint32_t>(step)};
        for (EventQueue* q : queues) {
          q->Push(key);
        }
      } else {
        EventKey heap_peek{};
        EventKey ladder_peek{};
        ASSERT_TRUE(heap.PeekTop(&heap_peek));
        ASSERT_TRUE(ladder.PeekTop(&ladder_peek));
        const EventKey a = heap.PopTop();
        const EventKey b = ladder.PopTop();
        ASSERT_EQ(a.at, b.at) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(a.seq, b.seq) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(a.slot, b.slot) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(heap_peek.seq, a.seq);
        ASSERT_EQ(ladder_peek.seq, b.seq);
        low_watermark = a.at;
      }
      ASSERT_EQ(heap.size(), ladder.size());
      ASSERT_EQ(heap.empty(), ladder.empty());
    }
    // Drain both; the tails must agree too.
    EventKey peek{};
    while (heap.PeekTop(&peek)) {
      ASSERT_TRUE(ladder.PeekTop(&peek));
      const EventKey a = heap.PopTop();
      const EventKey b = ladder.PopTop();
      ASSERT_EQ(a.at, b.at) << "seed=" << seed;
      ASSERT_EQ(a.seq, b.seq) << "seed=" << seed;
    }
    ASSERT_TRUE(ladder.empty());
  }
}

// Clear() must reset the backends to a reusable state (capacity kept,
// nothing replayed).
TEST(EventQueueDifferentialTest, ClearResetsBothBackends) {
  EventHeap heap;
  LadderQueue ladder;
  for (EventQueue* q : std::initializer_list<EventQueue*>{&heap, &ladder}) {
    for (uint64_t i = 0; i < 1000; ++i) {
      q->Push(EventKey{static_cast<TimeNs>(i * 7 % 113), i, 0});
    }
    q->Clear();
    EXPECT_TRUE(q->empty());
    EXPECT_EQ(q->size(), 0u);
    EventKey out{};
    EXPECT_FALSE(q->PeekTop(&out));
    // Refill after Clear and pop in order.
    q->Push(EventKey{10, 1, 0});
    q->Push(EventKey{5, 2, 0});
    ASSERT_TRUE(q->PeekTop(&out));
    EXPECT_EQ(out.at, 5);
    EXPECT_EQ(q->PopTop().seq, 2u);
    EXPECT_EQ(q->PopTop().seq, 1u);
    EXPECT_TRUE(q->empty());
  }
}

}  // namespace
}  // namespace draconis::sim
