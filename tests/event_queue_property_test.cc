// Oracle differential test for the event engine.
//
// A naive reference queue — a sorted std::vector of (at, seq, id) with
// eager cancellation — is driven through the same randomized interleavings
// of schedule / cancel / timer-arm / run-until as the real slab+heap
// engine. At every step the firing order, the clock, and the live-event
// count must match exactly; after each drain every outstanding handle's
// pending() must agree with the model. 32 seeds x ~10k operations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace draconis::sim {
namespace {

struct RefEvent {
  TimeNs at = 0;
  uint64_t seq = 0;
  int id = 0;
};

// The oracle: keeps live events in a flat vector, fires them in exact
// (at, seq) order, removes cancellations eagerly. Mirrors the engine's seq
// allocation: every schedule or timer re-arm consumes one seq.
class ReferenceQueue {
 public:
  uint64_t Schedule(TimeNs at, int id) {
    const uint64_t seq = next_seq_++;
    events_.push_back(RefEvent{at, seq, id});
    return seq;
  }

  // Returns true if the seq was still pending (and removes it).
  bool Cancel(uint64_t seq) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->seq == seq) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool IsPending(uint64_t seq) const {
    return std::any_of(events_.begin(), events_.end(),
                       [seq](const RefEvent& e) { return e.seq == seq; });
  }

  // Fires everything with at <= until, in (at, seq) order; advances now().
  std::vector<int> RunUntil(TimeNs until) {
    std::vector<int> fired;
    for (;;) {
      auto next = std::min_element(events_.begin(), events_.end(),
                                   [](const RefEvent& a, const RefEvent& b) {
                                     return a.at != b.at ? a.at < b.at : a.seq < b.seq;
                                   });
      if (next == events_.end() || next->at > until) {
        break;
      }
      now_ = next->at;
      fired.push_back(next->id);
      events_.erase(next);
    }
    if (now_ < until) {
      now_ = until;
    }
    return fired;
  }

  void Clear() { events_.clear(); }

  TimeNs now() const { return now_; }
  size_t live() const { return events_.size(); }

 private:
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<RefEvent> events_;
};

struct LiveHandle {
  EventHandle handle;
  uint64_t ref_seq = 0;
};

constexpr int kTimerCount = 3;

struct Fixture {
  Simulator sim;
  ReferenceQueue ref;
  std::vector<int> fired;  // ids recorded by real-engine callbacks
  std::vector<LiveHandle> handles;
  std::vector<std::unique_ptr<Timer>> timers;
  // ref seq of each timer's pending occurrence, if armed.
  std::optional<uint64_t> timer_seq[kTimerCount];
  int next_id = 0;
};

void DriveSeed(uint64_t seed, int steps) {
  Fixture fx;
  // Timer ids are negative so they can't collide with one-shot ids; timer t
  // fires id -(t+1).
  for (int t = 0; t < kTimerCount; ++t) {
    fx.timers.push_back(
        std::make_unique<Timer>(&fx.sim, [&fx, t] { fx.fired.push_back(-(t + 1)); }));
  }

  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 40) {
      // Plain one-shot event.
      const TimeNs at = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(1000));
      const int id = fx.next_id++;
      fx.sim.At(at, [&fx, id] { fx.fired.push_back(id); });
      fx.ref.Schedule(at, id);
    } else if (op < 60) {
      // Cancellable one-shot event; keep the handle.
      const TimeNs at = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(1000));
      const int id = fx.next_id++;
      EventHandle h = fx.sim.CancellableAt(at, [&fx, id] { fx.fired.push_back(id); });
      fx.handles.push_back(LiveHandle{h, fx.ref.Schedule(at, id)});
    } else if (op < 70) {
      // Cancel a random tracked handle (may already have fired).
      if (!fx.handles.empty()) {
        LiveHandle& lh = fx.handles[rng.NextBelow(fx.handles.size())];
        const bool was_pending = fx.ref.IsPending(lh.ref_seq);
        ASSERT_EQ(lh.handle.pending(), was_pending) << "seed=" << seed << " step=" << step;
        lh.handle.Cancel();
        fx.ref.Cancel(lh.ref_seq);
        ASSERT_FALSE(lh.handle.pending());
      }
    } else if (op < 78) {
      // Arm (or re-arm) a timer: replaces its pending occurrence and
      // consumes one seq, exactly like the engine.
      const int t = static_cast<int>(rng.NextBelow(kTimerCount));
      const TimeNs at = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(1000));
      fx.timers[t]->ScheduleAt(at);
      if (fx.timer_seq[t].has_value()) {
        fx.ref.Cancel(*fx.timer_seq[t]);
      }
      fx.timer_seq[t] = fx.ref.Schedule(at, -(t + 1));
    } else if (op < 82) {
      // Cancel a timer.
      const int t = static_cast<int>(rng.NextBelow(kTimerCount));
      fx.timers[t]->Cancel();
      if (fx.timer_seq[t].has_value()) {
        fx.ref.Cancel(*fx.timer_seq[t]);
        fx.timer_seq[t].reset();
      }
      ASSERT_FALSE(fx.timers[t]->pending());
    } else if (op < 97) {
      // Run a bounded slice and compare the firing order id-for-id.
      const TimeNs until = fx.sim.Now() + static_cast<TimeNs>(rng.NextBelow(400));
      fx.fired.clear();
      const uint64_t ran = fx.sim.RunUntil(until);
      const std::vector<int> expected = fx.ref.RunUntil(until);
      ASSERT_EQ(fx.fired, expected) << "seed=" << seed << " step=" << step;
      ASSERT_EQ(ran, expected.size());
      // Fired timers are no longer pending in the model either.
      for (int t = 0; t < kTimerCount; ++t) {
        if (fx.timer_seq[t].has_value() && !fx.ref.IsPending(*fx.timer_seq[t])) {
          fx.timer_seq[t].reset();
        }
        ASSERT_EQ(fx.timers[t]->pending(), fx.timer_seq[t].has_value());
      }
    } else {
      // Tear down the run: everything pending is dropped.
      fx.sim.Clear();
      fx.ref.Clear();
      for (int t = 0; t < kTimerCount; ++t) {
        fx.timer_seq[t].reset();
      }
    }

    // Invariants after every operation.
    ASSERT_EQ(fx.sim.Now(), fx.ref.now()) << "seed=" << seed << " step=" << step;
    ASSERT_EQ(fx.sim.pending_events(), fx.ref.live()) << "seed=" << seed << " step=" << step;

    // Cap the tracked-handle set so cancels keep hitting live events.
    if (fx.handles.size() > 512) {
      fx.handles.erase(fx.handles.begin(), fx.handles.begin() + 256);
    }
  }

  // Final drain must agree event-for-event too.
  fx.fired.clear();
  fx.sim.RunAll();
  const std::vector<int> expected = fx.ref.RunUntil(fx.sim.Now());
  ASSERT_EQ(fx.fired, expected) << "seed=" << seed;
  ASSERT_EQ(fx.sim.pending_events(), 0u);
  for (const LiveHandle& lh : fx.handles) {
    ASSERT_FALSE(lh.handle.pending());
  }
}

TEST(EventQueuePropertyTest, MatchesNaiveReferenceAcross32Seeds) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    DriveSeed(seed, 10000);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// A deliberately adversarial clustering: many events at the same instant,
// interleaved with cancellations, so the (at, seq) tie-break is exercised
// hard.
TEST(EventQueuePropertyTest, SameInstantClustersKeepSchedulingOrder) {
  for (uint64_t seed = 100; seed < 108; ++seed) {
    Simulator sim;
    ReferenceQueue ref;
    std::vector<int> fired;
    std::vector<LiveHandle> handles;
    Rng rng(seed);
    int next_id = 0;
    for (int round = 0; round < 200; ++round) {
      const TimeNs t = sim.Now() + static_cast<TimeNs>(rng.NextBelow(3));
      for (int burst = 0; burst < 20; ++burst) {
        const int id = next_id++;
        if (rng.NextBool(0.5)) {
          EventHandle h = sim.CancellableAt(t, [&fired, id] { fired.push_back(id); });
          handles.push_back(LiveHandle{h, ref.Schedule(t, id)});
        } else {
          sim.At(t, [&fired, id] { fired.push_back(id); });
          ref.Schedule(t, id);
        }
      }
      // Cancel half of the tracked handles.
      for (size_t i = 0; i + 1 < handles.size(); i += 2) {
        handles[i].handle.Cancel();
        ref.Cancel(handles[i].ref_seq);
      }
      handles.clear();
      fired.clear();
      const TimeNs until = sim.Now() + static_cast<TimeNs>(rng.NextBelow(4));
      sim.RunUntil(until);
      ASSERT_EQ(fired, ref.RunUntil(until)) << "seed=" << seed << " round=" << round;
      ASSERT_EQ(sim.pending_events(), ref.live());
    }
    sim.RunAll();
    // (drain; counts already compared each round)
  }
}

}  // namespace
}  // namespace draconis::sim
