#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "workload/generators.h"
#include "workload/google_trace.h"
#include "workload/service_time.h"

namespace draconis::workload {
namespace {

// --- ServiceTime -------------------------------------------------------------

TEST(ServiceTimeTest, FixedAlwaysSame) {
  ServiceTime st = ServiceTime::Fixed(FromMicros(250));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(st.Sample(rng), FromMicros(250));
  }
  EXPECT_EQ(st.Mean(), FromMicros(250));
}

TEST(ServiceTimeTest, BimodalHitsBothModes) {
  ServiceTime st = ServiceTime::PaperBimodal();
  Rng rng(2);
  std::map<TimeNs, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[st.Sample(rng)]++;
  }
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_NEAR(counts[FromMicros(100)], 5000, 300);
  EXPECT_NEAR(counts[FromMicros(500)], 5000, 300);
  EXPECT_EQ(st.Mean(), FromMicros(300));
}

TEST(ServiceTimeTest, TrimodalEvenThirds) {
  ServiceTime st = ServiceTime::PaperTrimodal();
  Rng rng(3);
  std::map<TimeNs, int> counts;
  for (int i = 0; i < 30000; ++i) {
    counts[st.Sample(rng)]++;
  }
  ASSERT_EQ(counts.size(), 3u);
  for (auto& [value, n] : counts) {
    EXPECT_NEAR(n, 10000, 600) << FormatDuration(value);
  }
}

TEST(ServiceTimeTest, ExponentialMeanMatches) {
  ServiceTime st = ServiceTime::PaperExponential();
  Rng rng(4);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const TimeNs v = st.Sample(rng);
    ASSERT_GT(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kN, static_cast<double>(FromMicros(250)), FromMicros(3));
}

TEST(ServiceTimeTest, LognormalMeanMatches) {
  ServiceTime st = ServiceTime::Lognormal(FromMicros(500), 1.2);
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(st.Sample(rng));
  }
  EXPECT_NEAR(sum / kN, static_cast<double>(FromMicros(500)), FromMicros(15));
}

TEST(ServiceTimeTest, LabelsAreInformative) {
  EXPECT_NE(ServiceTime::PaperBimodal().label().find("bimodal"), std::string::npos);
  EXPECT_NE(ServiceTime::Fixed(FromMicros(100)).label().find("fixed"), std::string::npos);
}

// --- Open-loop generator -------------------------------------------------------

TEST(OpenLoopTest, RateIsRespected) {
  OpenLoopSpec spec;
  spec.tasks_per_second = 200000.0;
  spec.duration = FromMillis(500);
  spec.seed = 6;
  JobStream stream = GenerateOpenLoop(spec);
  const double rate = static_cast<double>(TotalTasks(stream)) / ToSeconds(spec.duration);
  EXPECT_NEAR(rate, 200000.0, 6000.0);
}

TEST(OpenLoopTest, ArrivalsSortedWithinDuration) {
  OpenLoopSpec spec;
  spec.duration = FromMillis(50);
  JobStream stream = GenerateOpenLoop(spec);
  ASSERT_FALSE(stream.empty());
  TimeNs prev = 0;
  for (const JobArrival& job : stream) {
    EXPECT_GE(job.at, prev);
    EXPECT_LT(job.at, spec.duration);
    prev = job.at;
  }
}

TEST(OpenLoopTest, BatchedJobs) {
  OpenLoopSpec spec;
  spec.tasks_per_job = 10;
  spec.duration = FromMillis(20);
  JobStream stream = GenerateOpenLoop(spec);
  for (const JobArrival& job : stream) {
    EXPECT_EQ(job.tasks.size(), 10u);
  }
}

TEST(OpenLoopTest, Deterministic) {
  OpenLoopSpec spec;
  spec.seed = 77;
  spec.duration = FromMillis(10);
  JobStream a = GenerateOpenLoop(spec);
  JobStream b = GenerateOpenLoop(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
  }
}

TEST(OpenLoopTest, TotalWorkMatchesMeanService) {
  OpenLoopSpec spec;
  spec.tasks_per_second = 100000.0;
  spec.duration = FromMillis(200);
  spec.service = ServiceTime::Fixed(FromMicros(100));
  JobStream stream = GenerateOpenLoop(spec);
  EXPECT_EQ(TotalWork(stream),
            static_cast<TimeNs>(TotalTasks(stream)) * FromMicros(100));
}

// --- Taggers -------------------------------------------------------------------

TEST(TaggerTest, LocalityCoversAllNodesRoughlyEvenly) {
  OpenLoopSpec spec;
  spec.duration = FromMillis(200);
  spec.tasks_per_second = 100000.0;
  JobStream stream = GenerateOpenLoop(spec);
  TagLocality(stream, 10, 9);
  std::map<uint32_t, int> counts;
  for (const auto& job : stream) {
    for (const auto& task : job.tasks) {
      ASSERT_LT(task.tprops, 10u);
      counts[task.tprops]++;
    }
  }
  EXPECT_EQ(counts.size(), 10u);
  const double expected = static_cast<double>(TotalTasks(stream)) / 10;
  for (auto& [node, n] : counts) {
    EXPECT_NEAR(n, expected, expected * 0.15);
  }
}

TEST(TaggerTest, PriorityMixMatchesFractions) {
  OpenLoopSpec spec;
  spec.duration = FromMillis(400);
  spec.tasks_per_second = 100000.0;
  JobStream stream = GenerateOpenLoop(spec);
  TagPriorities(stream, PaperPriorityMix(), 4);
  std::map<uint32_t, double> counts;
  for (const auto& job : stream) {
    for (const auto& task : job.tasks) {
      counts[task.tprops]++;
    }
  }
  const double total = static_cast<double>(TotalTasks(stream));
  // The paper's 12->4 mapping: 1.2% / 1.7% / 64.6% / 32.2%.
  EXPECT_NEAR(counts[1] / total, 0.012, 0.004);
  EXPECT_NEAR(counts[2] / total, 0.017, 0.004);
  EXPECT_NEAR(counts[3] / total, 0.646, 0.02);
  EXPECT_NEAR(counts[4] / total, 0.322, 0.02);
}

// --- Resource phases -------------------------------------------------------------

TEST(ResourcePhasesTest, ThreePhasesWithEscalatingBits) {
  ResourcePhasesSpec spec;
  spec.phase_duration = FromMillis(100);
  spec.tasks_per_second = 50000.0;
  JobStream stream = GenerateResourcePhases(spec);
  ASSERT_FALSE(stream.empty());
  for (const JobArrival& job : stream) {
    const auto phase = static_cast<uint32_t>(job.at / spec.phase_duration);
    ASSERT_LT(phase, 3u);
    EXPECT_EQ(job.tasks.at(0).tprops, 1u << phase);
  }
  EXPECT_LT(stream.back().at, 3 * spec.phase_duration);
}

// --- Google-like trace -------------------------------------------------------------

TEST(GoogleTraceTest, MeanRateAndDuration) {
  GoogleTraceSpec spec;
  spec.duration = FromSeconds(1);
  spec.mean_tasks_per_second = 100000.0;
  spec.seed = 12;
  JobStream stream = GenerateGoogleTrace(spec);
  const double rate = static_cast<double>(TotalTasks(stream)) / 1.0;
  EXPECT_NEAR(rate, 100000.0, 15000.0);
}

TEST(GoogleTraceTest, TaskDurationsAverageToTarget) {
  GoogleTraceSpec spec;
  spec.duration = FromSeconds(1);
  spec.mean_tasks_per_second = 100000.0;
  spec.mean_task_duration = FromMicros(500);
  spec.seed = 13;
  JobStream stream = GenerateGoogleTrace(spec);
  const double mean =
      static_cast<double>(TotalWork(stream)) / static_cast<double>(TotalTasks(stream));
  EXPECT_NEAR(mean, static_cast<double>(FromMicros(500)), FromMicros(40));
}

TEST(GoogleTraceTest, IsBursty) {
  GoogleTraceSpec spec;
  spec.duration = FromSeconds(1);
  spec.mean_tasks_per_second = 100000.0;
  spec.max_job_size = 300;
  spec.seed = 14;
  JobStream stream = GenerateGoogleTrace(spec);
  size_t biggest = 0;
  for (const auto& job : stream) {
    biggest = std::max(biggest, job.tasks.size());
  }
  // "may submit hundreds of tasks at once"
  EXPECT_GE(biggest, 100u);
  EXPECT_LE(biggest, 300u);
}

TEST(GoogleTraceTest, PriorityTaggingOptional) {
  GoogleTraceSpec spec;
  spec.duration = FromMillis(200);
  spec.priority_levels = 4;
  spec.seed = 15;
  JobStream stream = GenerateGoogleTrace(spec);
  for (const auto& job : stream) {
    for (const auto& task : job.tasks) {
      ASSERT_GE(task.tprops, 1u);
      ASSERT_LE(task.tprops, 4u);
    }
  }
}

}  // namespace
}  // namespace draconis::workload
