// End-to-end runs of the full testbed (clients -> scheduler -> workers) for
// every scheduler kind, checking completion accounting and the qualitative
// properties the paper's comparison rests on.

#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "workload/generators.h"

namespace draconis::cluster {
namespace {

using workload::GenerateOpenLoop;
using workload::OpenLoopSpec;

ExperimentConfig SmallCluster(SchedulerKind kind, double tasks_per_second,
                              TimeNs task_duration = FromMicros(100)) {
  ExperimentConfig config;
  config.scheduler = kind;
  config.num_workers = 4;
  config.executors_per_worker = 4;
  config.num_clients = 2;
  config.warmup = FromMillis(5);

  OpenLoopSpec spec;
  spec.tasks_per_second = tasks_per_second;
  spec.duration = FromMillis(40);
  spec.service = workload::ServiceTime::Fixed(task_duration);
  spec.seed = 9;
  config.stream = GenerateOpenLoop(spec);
  config.horizon = FromMillis(40);
  return config;
}

class IntegrationTest : public ::testing::TestWithParam<SchedulerKind> {};

ExperimentConfig PaperCluster(SchedulerKind kind, double tasks_per_second,
                              TimeNs task_duration, size_t tasks_per_job = 10) {
  // The paper's testbed: 10 workers x 16 executors, clients submitting
  // jobs as trains of single-task packets.
  ExperimentConfig config;
  config.scheduler = kind;
  config.num_workers = 10;
  config.executors_per_worker = 16;
  config.num_clients = 4;
  config.warmup = FromMillis(5);
  config.max_tasks_per_packet = 1;

  OpenLoopSpec spec;
  spec.tasks_per_second = tasks_per_second;
  spec.duration = FromMillis(40);
  spec.tasks_per_job = tasks_per_job;
  spec.service = workload::ServiceTime::Fixed(task_duration);
  spec.seed = 9;
  config.stream = GenerateOpenLoop(spec);
  config.horizon = FromMillis(40);
  return config;
}

TEST_P(IntegrationTest, ModerateLoadCompletesNearlyAllTasks) {
  // 16 executors x 100 us tasks -> capacity 160 ktps; offer ~40% of it.
  ExperimentConfig config = SmallCluster(GetParam(), 60000.0);
  ExperimentResult result = RunExperiment(config);

  const auto submitted = result.metrics->tasks_submitted();
  const auto completed = result.metrics->tasks_completed();
  ASSERT_GT(submitted, 1000u);
  // Allow a sliver of in-flight stragglers at the horizon.
  EXPECT_GE(completed, submitted * 97 / 100)
      << SchedulerKindName(GetParam()) << ": " << completed << "/" << submitted;

  // Latency sanity: the p50 scheduling delay is between 1 us and 5 ms.
  const TimeNs p50 = result.metrics->sched_delay().Median();
  EXPECT_GT(p50, kMicrosecond) << SchedulerKindName(GetParam());
  EXPECT_LT(p50, FromMillis(5)) << SchedulerKindName(GetParam());

  // Busy fraction roughly matches offered utilization.
  EXPECT_NEAR(result.executor_busy_fraction, result.offered_utilization, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, IntegrationTest,
    ::testing::Values(SchedulerKind::kDraconis, SchedulerKind::kDraconisDpdkServer,
                      SchedulerKind::kDraconisSocketServer, SchedulerKind::kR2P2,
                      SchedulerKind::kRackSched, SchedulerKind::kSparrow),
    [](const ::testing::TestParamInfo<SchedulerKind>& param_info) {
      std::string name = SchedulerKindName(param_info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(IntegrationDraconis, LowLoadLatencyIsMicrosecondScale) {
  // The paper reports ~4.7 us p99 at low load on the 160-executor cluster.
  ExperimentConfig config =
      PaperCluster(SchedulerKind::kDraconis, 100000.0, FromMicros(500));
  ExperimentResult result = RunExperiment(config);
  EXPECT_LT(result.metrics->sched_delay().Percentile(0.99), FromMicros(25));
  EXPECT_LT(result.metrics->sched_delay().Median(), FromMicros(10));
}

TEST(IntegrationDraconis, NodeLevelBlockingAdvantageOverR2P2AtHighLoad) {
  // At ~80% utilization with 100 us tasks, R2P2's JBSQ queues tasks behind
  // running tasks (p99 ~ service time) while Draconis' central queue keeps
  // the tail an order of magnitude lower. This is the paper's headline.
  ExperimentConfig draconis =
      PaperCluster(SchedulerKind::kDraconis, 1280000.0, FromMicros(100));
  ExperimentConfig r2p2 = PaperCluster(SchedulerKind::kR2P2, 1280000.0, FromMicros(100));
  const TimeNs draconis_p99 = RunExperiment(draconis).metrics->sched_delay().Percentile(0.99);
  const TimeNs r2p2_p99 = RunExperiment(r2p2).metrics->sched_delay().Percentile(0.99);
  EXPECT_LT(draconis_p99 * 2, r2p2_p99)
      << "draconis=" << FormatDuration(draconis_p99) << " r2p2=" << FormatDuration(r2p2_p99);
}

TEST(IntegrationDraconis, RecirculationShareIsTinyAtHighLoad) {
  // Paper Fig. 7: Draconis recirculates well under 1% of processed packets
  // at high cluster load (recirculation = pointer repairs only).
  // (Recirculations here are retrieve-pointer repairs after empty-queue
  // dips; see EXPERIMENTS.md for the calibration note versus the paper's
  // 0.02-0.05%.)
  ExperimentConfig config =
      PaperCluster(SchedulerKind::kDraconis, 600000.0, FromMicros(250));  // ~94% util
  ExperimentResult result = RunExperiment(config);
  EXPECT_LT(result.recirculation_share, 0.05);
  EXPECT_EQ(result.recirc_drops, 0u);
}

TEST(IntegrationR2P2, JbsqOneDropsTasksUnderPressure) {
  // Paper Fig. 7/8: at high load, R2P2-1's overflow tasks have nowhere to
  // queue; they spin through the loopback port, many are dropped, and the
  // client-timeout resubmissions spike the tail (the yellow markers).
  ExperimentConfig r1 =
      PaperCluster(SchedulerKind::kR2P2, 1536000.0, FromMicros(100), /*tasks_per_job=*/1);
  r1.jbsq_k = 1;
  ExperimentResult res1 = RunExperiment(r1);
  EXPECT_GT(res1.recirculation_share, 0.1);
  EXPECT_GT(res1.drop_fraction, 0.01);
  EXPECT_GT(res1.metrics->timeout_resubmissions(), 100u);
  EXPECT_GT(res1.metrics->sched_delay().Percentile(0.99), FromMicros(300));
}

TEST(IntegrationR2P2, JbsqThreeAbsorbsLoadWithoutRecirculationButBlocks) {
  // Same load family, one JBSQ notch up: no recirculation, no drops — but
  // node-level blocking puts the tail at task-service scale (Figs. 6, 8).
  ExperimentConfig r3 =
      PaperCluster(SchedulerKind::kR2P2, 1408000.0, FromMicros(100), /*tasks_per_job=*/1);
  r3.jbsq_k = 3;
  ExperimentResult res3 = RunExperiment(r3);
  EXPECT_LT(res3.recirculation_share, 0.01);
  EXPECT_EQ(res3.recirc_drops, 0u);
  EXPECT_GT(res3.metrics->sched_delay().Percentile(0.99), FromMicros(90));
  EXPECT_LT(res3.metrics->sched_delay().Percentile(0.99), FromMicros(1000));
}

TEST(IntegrationServer, SocketServerSaturatesBelowDpdkServer) {
  // No-op throughput mode: the socket server's per-packet cost caps its
  // decision rate far below the DPDK server's (paper Fig. 5b).
  for (auto [kind, lo, hi] :
       {std::tuple{SchedulerKind::kDraconisDpdkServer, 700e3, 2e6},
        std::tuple{SchedulerKind::kDraconisSocketServer, 100e3, 450e3}}) {
    ExperimentConfig config = PaperCluster(kind, 1.0, 0);  // stream replaced below
    OpenLoopSpec spec;
    spec.tasks_per_second = 4e6;  // far beyond both servers' capacity
    spec.duration = FromMillis(40);
    spec.tasks_per_job = 64;  // batched submissions, as a framework would
    spec.service = workload::ServiceTime::Fixed(0);
    config.stream = GenerateOpenLoop(spec);
    config.max_tasks_per_packet = 0;  // MTU-sized batches, not 1-task trains
    config.noop_executors = true;
    config.horizon = FromMillis(40);
    ExperimentResult result = RunExperiment(config);
    EXPECT_GT(result.throughput_tps, lo) << SchedulerKindName(kind);
    EXPECT_LT(result.throughput_tps, hi) << SchedulerKindName(kind);
  }
}

TEST(IntegrationDraconis, RunToCompletionDrains) {
  ExperimentConfig config = SmallCluster(SchedulerKind::kDraconis, 50000.0);
  config.run_to_completion = true;
  config.horizon = FromSeconds(2);
  ExperimentResult result = RunExperiment(config);
  EXPECT_GE(result.drain_time, 0);
  EXPECT_LT(result.drain_time, FromSeconds(1));
  EXPECT_EQ(result.metrics->tasks_completed(), result.metrics->tasks_submitted());
}

TEST(IntegrationDraconis, PriorityPolicyEndToEnd) {
  ExperimentConfig config = SmallCluster(SchedulerKind::kDraconis, 140000.0);
  config.policy = PolicyKind::kPriority;
  config.priority_levels = 4;
  workload::TagPriorities(config.stream, {0.1, 0.2, 0.3, 0.4}, 3);
  ExperimentResult result = RunExperiment(config);
  ASSERT_GT(result.metrics->tasks_completed(), 1000u);
  // Under load, high-priority queueing delay must not exceed low-priority.
  const TimeNs p1 = result.metrics->priority_queueing(1).Percentile(0.9);
  const TimeNs p4 = result.metrics->priority_queueing(4).Percentile(0.9);
  EXPECT_LE(p1, p4);
}

TEST(IntegrationDraconis, LocalityPolicyImprovesPlacement) {
  auto make = [](PolicyKind policy) {
    ExperimentConfig config = SmallCluster(SchedulerKind::kDraconis, 90000.0);
    config.policy = policy;
    config.num_racks = 2;
    config.locality_access_model = true;
    workload::TagLocality(config.stream, static_cast<uint32_t>(config.num_workers), 17);
    return config;
  };
  ExperimentResult fcfs = RunExperiment(make(PolicyKind::kFcfs));
  ExperimentResult local = RunExperiment(make(PolicyKind::kLocality));

  const auto frac_local = [](const ExperimentResult& r) {
    const double total =
        static_cast<double>(r.metrics->placements(net::TaskInfo::Placement::kLocal) +
                            r.metrics->placements(net::TaskInfo::Placement::kSameRack) +
                            r.metrics->placements(net::TaskInfo::Placement::kRemote));
    return static_cast<double>(r.metrics->placements(net::TaskInfo::Placement::kLocal)) / total;
  };
  // FCFS places ~1/num_workers locally; the locality policy several times more.
  EXPECT_GT(frac_local(local), 2.0 * frac_local(fcfs));
  // And buys a better median end-to-end latency.
  EXPECT_LT(local.metrics->e2e_delay().Median(), fcfs.metrics->e2e_delay().Median());
}

TEST(IntegrationDraconis, ResourcePolicyRespectsHardConstraints) {
  ExperimentConfig config = SmallCluster(SchedulerKind::kDraconis, 40000.0);
  config.policy = PolicyKind::kResource;
  config.worker_resources = {0b001, 0b011, 0b111, 0b111};
  // All tasks require resource C (bit 2): only workers 2 and 3 qualify.
  for (auto& job : config.stream) {
    for (auto& task : job.tasks) {
      task.tprops = 0b100;
    }
  }
  config.run_to_completion = true;
  config.horizon = FromSeconds(2);
  ExperimentResult result = RunExperiment(config);
  ASSERT_GT(result.metrics->tasks_completed(), 100u);
  // Workers 0 and 1 must have executed nothing.
  size_t forbidden = 0;
  for (uint32_t node : {0u, 1u}) {
    const auto& series = result.metrics->node_completions(node);
    for (size_t b = 0; b < series.NumBuckets(); ++b) {
      forbidden += static_cast<size_t>(series.BucketSum(b));
    }
  }
  EXPECT_EQ(forbidden, 0u);
}

TEST(IntegrationClient, PacketLossIsRecoveredByTimeoutResubmission) {
  // Force-drop 30% of submissions on their way to the switch: every task
  // must still eventually complete, via client timeouts.
  ExperimentConfig config = SmallCluster(SchedulerKind::kDraconis, 20000.0);
  config.run_to_completion = true;
  config.horizon = FromSeconds(5);
  // Shrink the stream so the test stays fast.
  config.stream.resize(200);

  // RunExperiment owns the network, so inject loss indirectly: run with a
  // tiny queue that bounces submissions instead. Queue capacity 1 forces
  // constant full-queue errors and retries.
  config.queue_capacity = 1;
  ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.metrics->tasks_completed(), result.metrics->tasks_submitted());
  EXPECT_GT(result.metrics->queue_full_retries() + result.metrics->timeout_resubmissions(), 0u);
}

}  // namespace
}  // namespace draconis::cluster
