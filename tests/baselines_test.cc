// Unit tests for the baseline schedulers: R2P2's credit-bounded JBSQ,
// RackSched's power-of-two inter-node layer, Sparrow's batch sampling + late
// binding, and the central Draconis-protocol servers.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/central_server.h"
#include "baselines/r2p2.h"
#include "baselines/racksched.h"
#include "baselines/sparrow.h"
#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"

namespace draconis::baselines {
namespace {

class Probe : public net::Endpoint {
 public:
  void HandlePacket(net::Packet pkt) override { received.push_back(std::move(pkt)); }
  size_t CountOf(net::OpCode op) const {
    size_t n = 0;
    for (const auto& p : received) {
      n += p.op == op ? 1 : 0;
    }
    return n;
  }
  std::vector<net::Packet> received;
};

net::Packet Task(uint32_t tid, TimeNs duration = FromMicros(100)) {
  net::Packet p;
  p.op = net::OpCode::kJobSubmission;
  net::TaskInfo t;
  t.id = net::TaskId{1, 1, tid};
  t.meta.exec_duration = duration;
  t.meta.first_submit_time = 0;
  p.tasks = {t};
  return p;
}

// --- R2P2 --------------------------------------------------------------------

class R2P2Test : public ::testing::Test {
 protected:
  void Build(size_t executors, uint32_t k, TimeNs staleness = TimeNs{250}) {
    R2P2Config config;
    config.num_executors = executors;
    config.jbsq_k = k;
    config.selection_staleness = staleness;
    program = std::make_unique<R2P2Program>(config);
    pipeline = std::make_unique<p4::SwitchPipeline>(testbed, program.get(),
                                                    p4::PipelineConfig{});
    switch_node = pipeline->node_id();
    std::vector<size_t> slots(executors);
    for (size_t i = 0; i < executors; ++i) {
      slots[i] = i;
    }
    worker = std::make_unique<R2P2Worker>(&testbed, slots, 0, switch_node);
    for (size_t i = 0; i < executors; ++i) {
      program->BindExecutor(i, worker->node_id());
    }
    client_node = network.Register(&client, net::HostProfile::Wire());
  }

  void Submit(net::Packet p) {
    p.dst = switch_node;
    network.Send(client_node, std::move(p));
  }

  cluster::Testbed testbed{cluster::TestbedConfig{}};
  sim::Simulator& simulator = testbed.simulator();
  net::Network& network = testbed.network();
  std::unique_ptr<R2P2Program> program;
  std::unique_ptr<p4::SwitchPipeline> pipeline;
  std::unique_ptr<R2P2Worker> worker;
  Probe client;
  net::NodeId switch_node = net::kInvalidNode;
  net::NodeId client_node = net::kInvalidNode;
};

TEST_F(R2P2Test, CreditsStartAtKPerExecutor) {
  Build(4, 3);
  EXPECT_EQ(program->cp_credits(), 12u);
}

TEST_F(R2P2Test, TaskConsumesCreditAndRunsToCompletion) {
  Build(2, 3);
  Submit(Task(0));
  simulator.RunUntil(FromMicros(20));
  EXPECT_EQ(program->cp_credits(), 5u);
  EXPECT_EQ(program->counters().tasks_pushed, 1u);
  simulator.RunAll();
  EXPECT_EQ(program->cp_credits(), 6u);  // credit returned on completion
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 1u);
}

TEST_F(R2P2Test, BoundIsEnforcedExactly) {
  Build(2, 2);  // 4 slots total
  for (uint32_t i = 0; i < 4; ++i) {
    Submit(Task(i, FromMillis(10)));
  }
  simulator.RunUntil(FromMicros(50));
  EXPECT_EQ(program->cp_credits(), 0u);
  EXPECT_EQ(program->cp_outstanding(0), 2u);
  EXPECT_EQ(program->cp_outstanding(1), 2u);
}

TEST_F(R2P2Test, OverflowSpinsUntilACreditFrees) {
  Build(1, 1);
  Submit(Task(0, FromMicros(200)));
  simulator.RunUntil(FromMicros(20));
  Submit(Task(1, FromMicros(200)));
  simulator.RunUntil(FromMicros(100));
  // Task 1 is circling the loopback port.
  EXPECT_GT(program->counters().credit_wait_recirculations, 0u);
  EXPECT_EQ(program->counters().tasks_pushed, 1u);
  simulator.RunAll();
  // Once the first task completed, the spinner claimed the freed credit.
  EXPECT_EQ(program->counters().tasks_pushed, 2u);
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 2u);
}

TEST_F(R2P2Test, HerdingWithinStalenessWindowPilesOntoOneExecutor) {
  Build(4, 3, /*staleness=*/FromMicros(5));
  // Two tasks in the same instant: the second sees the stale snapshot and
  // joins the same "shortest" executor even though three others are idle.
  Submit(Task(0, FromMillis(1)));
  Submit(Task(1, FromMillis(1)));
  simulator.RunUntil(FromMicros(50));
  uint32_t loaded = 0;
  uint32_t busy_executors = 0;
  for (size_t i = 0; i < 4; ++i) {
    if (program->cp_outstanding(i) > 0) {
      ++busy_executors;
      loaded = std::max(loaded, program->cp_outstanding(i));
    }
  }
  EXPECT_EQ(busy_executors, 1u);
  EXPECT_EQ(loaded, 2u);
}

TEST_F(R2P2Test, MultiTaskPacketIsRejected) {
  Build(2, 3);
  net::Packet p = Task(0);
  p.tasks.push_back(p.tasks[0]);
  Submit(std::move(p));
  EXPECT_THROW(simulator.RunAll(), draconis::CheckFailure);
}

// --- RackSched -----------------------------------------------------------------

class RackSchedTest : public ::testing::Test {
 protected:
  void Build(size_t nodes, size_t executors_per_node,
             IntraNodePolicy policy = IntraNodePolicy::kFcfs) {
    RackSchedConfig config;
    config.num_nodes = nodes;
    program = std::make_unique<RackSchedProgram>(config);
    pipeline = std::make_unique<p4::SwitchPipeline>(testbed, program.get(),
                                                    p4::PipelineConfig{});
    switch_node = pipeline->node_id();
    for (size_t n = 0; n < nodes; ++n) {
      workers.push_back(std::make_unique<RackSchedWorker>(
          &testbed, executors_per_node, static_cast<uint32_t>(n), switch_node,
          TimeNs{3500}, TimeNs{200}, policy));
      program->BindNode(n, workers.back()->node_id());
    }
    client_node = network.Register(&client, net::HostProfile::Wire());
  }

  void Submit(net::Packet p) {
    p.dst = switch_node;
    network.Send(client_node, std::move(p));
  }

  cluster::Testbed testbed{cluster::TestbedConfig{}};
  sim::Simulator& simulator = testbed.simulator();
  net::Network& network = testbed.network();
  cluster::MetricsHub* metrics = testbed.metrics();
  std::unique_ptr<RackSchedProgram> program;
  std::unique_ptr<p4::SwitchPipeline> pipeline;
  std::vector<std::unique_ptr<RackSchedWorker>> workers;
  Probe client;
  net::NodeId switch_node = net::kInvalidNode;
  net::NodeId client_node = net::kInvalidNode;
};

TEST_F(RackSchedTest, TasksCompleteAndCountersBalance) {
  Build(4, 2);
  for (uint32_t i = 0; i < 8; ++i) {
    Submit(Task(i));
  }
  simulator.RunAll();
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 8u);
  EXPECT_EQ(program->counters().tasks_pushed, 8u);
  EXPECT_EQ(program->counters().credits, 8u);
  for (size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(program->cp_queue_len(n), 0);
  }
}

TEST_F(RackSchedTest, PowerOfTwoSpreadsLoadAcrossNodes) {
  Build(4, 2);
  for (uint32_t i = 0; i < 64; ++i) {
    Submit(Task(i, FromMillis(5)));
  }
  simulator.RunUntil(FromMillis(1));
  // All 64 queued somewhere; the po2 sampler with live counters must not put
  // everything on one node.
  int max_len = 0;
  int total = 0;
  for (size_t n = 0; n < 4; ++n) {
    max_len = std::max(max_len, program->cp_queue_len(n));
    total += program->cp_queue_len(n);
  }
  EXPECT_EQ(total, 64);
  EXPECT_LT(max_len, 2 * 64 / 4 + 2);
}

class RackSchedPsTest : public RackSchedTest {
 protected:
  void Build(size_t nodes, size_t executors_per_node) {
    RackSchedTest::Build(nodes, executors_per_node, IntraNodePolicy::kProcessorSharing);
  }
};

TEST_F(RackSchedPsTest, SingleTaskRunsAtFullSpeed) {
  Build(2, 2);
  Submit(Task(0, FromMicros(100)));
  simulator.RunAll();
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 1u);
  // Completed in roughly dispatch (3.5us) + pickup + 100us + network.
  EXPECT_LT(simulator.Now(), FromMicros(130));
}

TEST_F(RackSchedPsTest, SharingSlowsConcurrentTasksFairly) {
  // 1 core, two concurrent 100 us tasks: under PS both run at half speed and
  // finish around 200 us of service time each (not 100/200 as under FCFS).
  Build(2, 1);
  // Force both onto node 0 by saturating node 1 with a long task first.
  Submit(Task(0, FromMillis(50)));
  Submit(Task(1, FromMillis(50)));
  simulator.RunUntil(FromMicros(20));
  Submit(Task(2, FromMicros(100)));
  Submit(Task(3, FromMicros(100)));
  simulator.RunUntil(FromMillis(1));
  // Tasks 2 and 3 shared a core with one 50ms giant on whichever node they
  // landed: at 1/3 (or 1/2) speed each they still finish within a
  // millisecond — FCFS would have parked them for 50 ms.
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 2u);
}

TEST_F(RackSchedPsTest, PreemptionRescuesShortTasksBehindLongOnes) {
  // The heavy-tail scenario PS exists for: a long task occupies the node; a
  // short task arriving later must not wait for it.
  Build(2, 1);
  Submit(Task(0, FromMillis(10)));  // long
  Submit(Task(1, FromMillis(10)));  // long (covers the other node)
  simulator.RunUntil(FromMicros(50));
  Submit(Task(2, FromMicros(50)));  // short, lands behind a long task
  simulator.RunUntil(FromMillis(2));
  // Short task done in ~2x its service time (half speed), not 10 ms.
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 1u);
  simulator.RunAll();
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 3u);
}

TEST_F(RackSchedTest, DispatchOverheadDelaysExecution) {
  Build(2, 1);
  Submit(Task(0, FromMicros(100)));
  simulator.RunAll();
  ASSERT_EQ(metrics->sched_delay().count(), 1u);
  // Delay includes the intra-node dispatcher's ~3.5 us.
  EXPECT_GT(metrics->sched_delay().max(), FromMicros(3));
}

// --- Sparrow --------------------------------------------------------------------

class SparrowTest : public ::testing::Test {
 protected:
  void Build(size_t num_workers, size_t executors_per_node) {
    scheduler = std::make_unique<SparrowScheduler>(&testbed, SparrowConfig{});
    std::vector<net::NodeId> nodes;
    for (size_t n = 0; n < num_workers; ++n) {
      workers.push_back(std::make_unique<SparrowWorker>(&testbed, executors_per_node,
                                                        static_cast<uint32_t>(n)));
      nodes.push_back(workers.back()->node_id());
    }
    scheduler->SetWorkers(nodes);
    client_node = network.Register(&client, net::HostProfile::Wire());
  }

  net::Packet Job(uint32_t jid, size_t tasks, TimeNs duration = FromMicros(100)) {
    net::Packet p;
    p.op = net::OpCode::kJobSubmission;
    p.dst = scheduler->node_id();
    p.uid = 1;
    p.jid = jid;
    for (size_t i = 0; i < tasks; ++i) {
      net::TaskInfo t;
      t.id = net::TaskId{1, jid, static_cast<uint32_t>(i)};
      t.meta.exec_duration = duration;
      t.meta.first_submit_time = 0;
      p.tasks.push_back(t);
    }
    return p;
  }

  cluster::Testbed testbed{cluster::TestbedConfig{}};
  sim::Simulator& simulator = testbed.simulator();
  net::Network& network = testbed.network();
  std::unique_ptr<SparrowScheduler> scheduler;
  std::vector<std::unique_ptr<SparrowWorker>> workers;
  Probe client;
  net::NodeId client_node = net::kInvalidNode;
};

TEST_F(SparrowTest, ProbesAreTwicePerTask) {
  Build(8, 1);
  network.Send(client_node, Job(1, 3));
  simulator.RunUntil(FromMicros(100));
  EXPECT_EQ(scheduler->counters().probes_sent, 6u);

  // Jobs larger than the cluster wrap around: every task still gets d
  // reservations so none can strand.
  network.Send(client_node, Job(2, 10));
  simulator.RunUntil(FromMicros(200));
  EXPECT_EQ(scheduler->counters().probes_sent, 6u + 20u);
}

TEST_F(SparrowTest, AllTasksCompleteViaLateBinding) {
  Build(4, 2);
  network.Send(client_node, Job(1, 6));
  simulator.RunAll();
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 6u);
  EXPECT_EQ(scheduler->counters().tasks_launched, 6u);
}

TEST_F(SparrowTest, ExcessReservationsAreCancelled) {
  Build(8, 4);
  network.Send(client_node, Job(1, 4));  // 8 probes, 4 tasks
  simulator.RunAll();
  EXPECT_EQ(scheduler->counters().tasks_launched, 4u);
  EXPECT_EQ(scheduler->counters().empty_get_tasks, 4u);
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 4u);
}

TEST_F(SparrowTest, LateBindingPicksFreeWorkers) {
  // One worker is clogged with a long job; a second job's tasks must land on
  // the free workers that answer get_task first.
  Build(2, 1);
  network.Send(client_node, Job(1, 2, FromMillis(50)));  // fills both workers
  simulator.RunUntil(FromMillis(1));
  network.Send(client_node, Job(2, 1, FromMicros(100)));
  simulator.RunAll();
  EXPECT_EQ(client.CountOf(net::OpCode::kCompletionNotice), 3u);
}

// --- Central server -----------------------------------------------------------

class CentralServerTest : public ::testing::Test {
 protected:
  void Build(CentralServerConfig::Transport transport, size_t capacity = 1024) {
    CentralServerConfig config;
    config.transport = transport;
    config.queue_capacity = capacity;
    server = std::make_unique<CentralServerScheduler>(&testbed, config);
    client_node = network.Register(&client, net::HostProfile::Wire());
    executor_node = network.Register(&executor, net::HostProfile::Wire());
  }

  void SendRequest() {
    net::Packet p;
    p.op = net::OpCode::kTaskRequest;
    p.dst = server->node_id();
    network.Send(executor_node, std::move(p));
  }

  cluster::Testbed testbed{cluster::TestbedConfig{}};
  sim::Simulator& simulator = testbed.simulator();
  net::Network& network = testbed.network();
  std::unique_ptr<CentralServerScheduler> server;
  Probe client;
  Probe executor;
  net::NodeId client_node = net::kInvalidNode;
  net::NodeId executor_node = net::kInvalidNode;
};

TEST_F(CentralServerTest, FcfsAssignment) {
  Build(CentralServerConfig::Transport::kDpdk);
  net::Packet job = Task(7);
  job.dst = server->node_id();
  network.Send(client_node, std::move(job));
  simulator.RunUntil(FromMicros(50));
  SendRequest();
  simulator.RunAll();
  ASSERT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 1u);
  EXPECT_EQ(client.CountOf(net::OpCode::kJobAck), 1u);
}

TEST_F(CentralServerTest, ParksRequestsOnEmptyQueue) {
  Build(CentralServerConfig::Transport::kDpdk);
  SendRequest();
  simulator.RunUntil(FromMicros(50));
  EXPECT_EQ(server->counters().parked_requests, 1u);
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 0u);

  net::Packet job = Task(1);
  job.dst = server->node_id();
  network.Send(client_node, std::move(job));
  simulator.RunAll();
  EXPECT_EQ(executor.CountOf(net::OpCode::kTaskAssignment), 1u);
}

TEST_F(CentralServerTest, FullQueueBouncesTasks) {
  Build(CentralServerConfig::Transport::kDpdk, /*capacity=*/1);
  net::Packet job = Task(0);
  job.tasks.push_back(job.tasks[0]);
  job.tasks[1].id.tid = 1;
  job.dst = server->node_id();
  network.Send(client_node, std::move(job));
  simulator.RunAll();
  EXPECT_EQ(server->counters().tasks_enqueued, 1u);
  ASSERT_EQ(client.CountOf(net::OpCode::kErrorQueueFull), 1u);
}

TEST_F(CentralServerTest, SocketTransportIsSlowerPerPacket) {
  const auto run = [&](CentralServerConfig::Transport transport) {
    cluster::Testbed tb{cluster::TestbedConfig{}};
    CentralServerConfig config;
    config.transport = transport;
    CentralServerScheduler srv(&tb, config);
    Probe probe;
    const net::NodeId src = tb.network().Register(&probe, net::HostProfile::Wire());
    net::Packet job = Task(0);
    job.dst = srv.node_id();
    tb.network().Send(src, std::move(job));
    tb.simulator().RunAll();
    return tb.simulator().Now();
  };
  EXPECT_GT(run(CentralServerConfig::Transport::kSocket),
            run(CentralServerConfig::Transport::kDpdk));
}

}  // namespace
}  // namespace draconis::baselines
