// Tests for the sweep engine: result ordering, error propagation, the
// parallel == serial bit-identity guarantee on a fig05a-shaped sweep, and
// the JSON report (golden output).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sweep/report.h"
#include "sweep/sweep.h"
#include "workload/generators.h"

namespace draconis::sweep {
namespace {

using cluster::ExperimentConfig;
using cluster::ExperimentResult;
using cluster::SchedulerKind;

// A spec whose runner never touches the simulator: each point's result
// encodes its own seed so ordering is observable.
SweepSpec StubSpec(size_t num_points) {
  SweepSpec spec;
  spec.name = "stub";
  spec.title = "stub sweep";
  spec.axis = {"index", "n"};
  for (size_t i = 0; i < num_points; ++i) {
    SweepPoint point;
    point.label = "point-" + std::to_string(i);
    point.series = "stub";
    point.x = static_cast<double>(i);
    point.config.seed = i;
    spec.points.push_back(std::move(point));
  }
  spec.run = [](const ExperimentConfig& config) {
    ExperimentResult result;
    result.throughput_tps = static_cast<double>(config.seed) * 10.0;
    return result;
  };
  return spec;
}

TEST(SweepTest, EffectiveParallelismResolvesZeroToHardware) {
  EXPECT_GE(EffectiveParallelism(0, 100), 1u);
  EXPECT_EQ(EffectiveParallelism(1, 100), 1u);
  EXPECT_EQ(EffectiveParallelism(3, 100), 3u);
  // Never more workers than points.
  EXPECT_EQ(EffectiveParallelism(8, 2), 2u);
}

TEST(SweepTest, ResultsComeBackInPointOrder) {
  const SweepSpec spec = StubSpec(16);
  SweepOptions options;
  options.parallelism = 4;
  const std::vector<SweepPointResult> results = RunSweep(spec, options);
  ASSERT_EQ(results.size(), 16u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, "point-" + std::to_string(i));
    EXPECT_DOUBLE_EQ(results[i].x, static_cast<double>(i));
    EXPECT_DOUBLE_EQ(results[i].result.throughput_tps, static_cast<double>(i) * 10.0);
  }
}

TEST(SweepTest, ProgressReportsEveryPointExactlyOnce) {
  const SweepSpec spec = StubSpec(9);
  SweepOptions options;
  options.parallelism = 3;
  std::vector<bool> seen(9, false);
  size_t calls = 0;
  options.on_progress = [&](size_t completed, size_t total, const SweepPointResult& done) {
    ++calls;
    EXPECT_EQ(total, 9u);
    EXPECT_EQ(completed, calls);  // progress callbacks are serialized
    ASSERT_LT(done.index, seen.size());
    EXPECT_FALSE(seen[done.index]);
    seen[done.index] = true;
  };
  RunSweep(spec, options);
  EXPECT_EQ(calls, 9u);
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(SweepTest, ThrowingPointPropagatesEarliestError) {
  SweepSpec spec = StubSpec(8);
  spec.run = [](const ExperimentConfig& config) -> ExperimentResult {
    if (config.seed == 2 || config.seed == 5) {
      throw std::runtime_error("boom " + std::to_string(config.seed));
    }
    return {};
  };
  SweepOptions options;
  options.parallelism = 4;
  try {
    RunSweep(spec, options);
    FAIL() << "expected RunSweep to rethrow the point's exception";
  } catch (const std::runtime_error& e) {
    // Point 2 is in the first dispatch wave, so it always runs; the earliest
    // failing index wins even if point 5 also threw.
    EXPECT_STREQ(e.what(), "boom 2");
  }
}

TEST(SweepTest, ThrowingPointStopsDispatchingNewPoints) {
  SweepSpec spec = StubSpec(64);
  std::atomic<size_t> started{0};
  spec.run = [&started](const ExperimentConfig& config) -> ExperimentResult {
    started.fetch_add(1);
    if (config.seed == 0) {
      throw std::runtime_error("first point fails");
    }
    // Give the failing point (always dispatched first) time to stop the
    // cursor; without this a fast worker could drain the whole spec before
    // the throw lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return {};
  };
  SweepOptions options;
  options.parallelism = 2;
  EXPECT_THROW(RunSweep(spec, options), std::runtime_error);
  // The failure surfaced before the whole sweep was dispatched (in-flight
  // points finish, but no new ones start).
  EXPECT_LT(started.load(), 64u);
}

// The tentpole guarantee: a parallel run of real experiments is
// bit-identical to the serial run, point by point. Shaped like fig05a
// (multiple schedulers x offered loads on the paper testbed), scaled down in
// horizon so the test stays fast.
TEST(SweepTest, ParallelMatchesSerialBitForBit) {
  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(500));
  SweepSpec spec;
  spec.name = "fig05a-shaped";
  spec.title = "bit-identity check";
  spec.axis = {"offered load", "ktasks/s"};
  const SchedulerKind kinds[] = {SchedulerKind::kDraconis, SchedulerKind::kR2P2};
  const double loads_ktps[] = {60, 140, 240};
  for (SchedulerKind kind : kinds) {
    for (double load : loads_ktps) {
      SweepPoint point;
      point.label = std::string(cluster::SchedulerKindName(kind)) + "@" +
                    std::to_string(static_cast<int>(load)) + "k";
      point.series = cluster::SchedulerKindName(kind);
      point.x = load;
      ExperimentConfig config;
      config.scheduler = kind;
      config.num_workers = 10;
      config.executors_per_worker = 16;
      config.num_clients = 4;
      config.warmup = FromMillis(1);
      config.horizon = FromMillis(5);
      config.max_tasks_per_packet = 1;
      config.timeout_multiplier = 5.0;
      config.jbsq_k = 3;
      config.seed = 42;
      workload::OpenLoopSpec stream;
      stream.tasks_per_second = load * 1000.0;
      stream.duration = config.horizon;
      stream.tasks_per_job = 10;
      stream.service = service;
      stream.seed = 42;
      config.stream = workload::GenerateOpenLoop(stream);
      point.config = std::move(config);
      spec.points.push_back(std::move(point));
    }
  }
  ASSERT_EQ(spec.points.size(), 6u);

  SweepOptions serial;
  serial.parallelism = 1;
  const std::vector<SweepPointResult> a = RunSweep(spec, serial);
  SweepOptions parallel;
  parallel.parallelism = 4;
  const std::vector<SweepPointResult> b = RunSweep(spec, parallel);

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].label);
    const ExperimentResult& ra = a[i].result;
    const ExperimentResult& rb = b[i].result;
    // Exact equality on every derived scalar — no tolerance.
    EXPECT_EQ(ra.throughput_tps, rb.throughput_tps);
    EXPECT_EQ(ra.executor_busy_fraction, rb.executor_busy_fraction);
    EXPECT_EQ(ra.recirculation_share, rb.recirculation_share);
    EXPECT_EQ(ra.drop_fraction, rb.drop_fraction);
    EXPECT_EQ(ra.counters.tasks_assigned, rb.counters.tasks_assigned);
    EXPECT_EQ(ra.counters.noops_sent, rb.counters.noops_sent);
    EXPECT_EQ(ra.counters.credits, rb.counters.credits);
    EXPECT_EQ(ra.switch_counters.passes, rb.switch_counters.passes);
    EXPECT_EQ(ra.switch_counters.recirculations, rb.switch_counters.recirculations);
    ASSERT_NE(ra.metrics, nullptr);
    ASSERT_NE(rb.metrics, nullptr);
    EXPECT_GT(ra.metrics->sched_delay().count(), 0u);
    // The serialized result covers every histogram digest and counter: string
    // equality here is the bit-identity claim.
    EXPECT_EQ(ToJson(ra), ToJson(rb));
  }
}

// --- JSON report -------------------------------------------------------------

TEST(SweepReportTest, GoldenDocument) {
  SweepSpec spec;
  spec.name = "golden";
  spec.title = "golden sweep";
  spec.axis = {"load", "ktps"};
  SweepPoint point;
  point.label = "p0";
  point.series = "s";
  point.x = 1.5;
  point.config.seed = 9;
  spec.points.push_back(std::move(point));
  spec.run = [](const ExperimentConfig&) {
    ExperimentResult result;
    result.offered_tasks_per_second = 1000.0;
    result.offered_utilization = 0.25;
    result.throughput_tps = 998.5;
    result.executor_busy_fraction = 0.125;
    result.drain_time = 123456;
    result.counters.tasks_assigned = 42;
    return result;
  };
  std::vector<SweepPointResult> results = RunSweep(spec, {});
  results[0].scalars["extra_metric"] = 7.5;

  ReportOptions options;
  options.parallelism = 2;
  options.quick = true;
  const std::string doc = RenderJson(spec, results, options);
  const std::string expected = R"({
  "bench": "golden",
  "title": "golden sweep",
  "schema_version": 1,
  "axis": {
    "name": "load",
    "unit": "ktps"
  },
  "quick": true,
  "parallelism": 2,
  "points": [
    {
      "label": "p0",
      "series": "s",
      "x": 1.5,
      "scheduler": "Draconis",
      "policy": "fcfs",
      "sim_queue": "ladder",
      "seed": 9,
      "offered_tasks_per_second": 1000,
      "offered_utilization": 0.25,
      "throughput_tps": 998.5,
      "executor_busy_fraction": 0.125,
      "recirculation_share": 0,
      "drop_fraction": 0,
      "recirc_drops": 0,
      "drain_time_ns": 123456,
      "counters": {
        "tasks_enqueued": 0,
        "tasks_assigned": 42,
        "noops_sent": 0,
        "queue_full_errors": 0,
        "acks_sent": 0,
        "add_repairs": 0,
        "retrieve_repairs": 0,
        "swap_walks_started": 0,
        "swap_exchanges": 0,
        "swap_requeues": 0,
        "priority_probes": 0,
        "tasks_pushed": 0,
        "credit_wait_recirculations": 0,
        "credits": 0,
        "probes_sent": 0,
        "tasks_launched": 0,
        "empty_get_tasks": 0,
        "parked_requests": 0
      },
      "extra": {
        "extra_metric": 7.5
      }
    }
  ]
}
)";
  EXPECT_EQ(doc, expected);
}

TEST(SweepReportTest, ResultJsonIncludesHistograms) {
  const workload::ServiceTime service = workload::ServiceTime::Fixed(FromMicros(100));
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kDraconis;
  config.num_workers = 2;
  config.executors_per_worker = 4;
  config.num_clients = 1;
  config.warmup = FromMillis(1);
  config.horizon = FromMillis(5);
  config.max_tasks_per_packet = 1;
  workload::OpenLoopSpec stream;
  stream.tasks_per_second = 30000.0;
  stream.duration = config.horizon;
  stream.service = service;
  stream.seed = 5;
  config.stream = workload::GenerateOpenLoop(stream);
  const ExperimentResult result = cluster::RunExperiment(config);
  const std::string doc = ToJson(result);
  EXPECT_NE(doc.find("\"sched_delay\""), std::string::npos);
  EXPECT_NE(doc.find("\"queueing_delay\""), std::string::npos);
  EXPECT_NE(doc.find("\"e2e_delay\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(doc.find("\"tasks_submitted\""), std::string::npos);
}

}  // namespace
}  // namespace draconis::sweep
