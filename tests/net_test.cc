#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace draconis::net {
namespace {

class Recorder : public Endpoint {
 public:
  void HandlePacket(Packet pkt) override { received.push_back(std::move(pkt)); }
  std::vector<Packet> received;
};

struct Fixture {
  Fixture() : network(&simulator, Config()) {}

  static NetworkConfig Config() {
    NetworkConfig c;
    c.propagation = 1000;
    c.ns_per_byte = 0.0;
    c.max_jitter = 0;  // deterministic timing for the assertions below
    return c;
  }

  sim::Simulator simulator;
  net::Network network;
};

TEST(PacketTest, WireSizeScalesWithTasks) {
  Packet p;
  p.op = OpCode::kJobSubmission;
  const size_t base = p.WireSize();
  p.tasks.resize(3);
  EXPECT_EQ(p.WireSize(), base + 3 * TaskInfo::kWireSize);
}

TEST(PacketTest, MaxTasksPerPacketFitsMtu) {
  const size_t n = MaxTasksPerPacket();
  EXPECT_GT(n, 0u);
  Packet p;
  p.tasks.resize(n);
  EXPECT_LE(p.WireSize(), kMtuBytes);
  p.tasks.resize(n + 1);
  EXPECT_GT(p.WireSize(), kMtuBytes);
}

TEST(PacketTest, TaskIdEqualityAndHash) {
  TaskId a{1, 2, 3};
  TaskId b{1, 2, 3};
  TaskId c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  TaskIdHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

TEST(PacketTest, OpCodeNamesAreDistinctive) {
  EXPECT_STREQ(OpCodeName(OpCode::kJobSubmission), "job_submission");
  EXPECT_STREQ(OpCodeName(OpCode::kTaskRequest), "task_request");
  EXPECT_STREQ(OpCodeName(OpCode::kRepair), "repair");
}

TEST(PacketTest, DescribeMentionsOpcode) {
  Packet p;
  p.op = OpCode::kSwapTask;
  EXPECT_NE(p.Describe().find("swap_task"), std::string::npos);
}

TEST(NetworkTest, DeliversPacketToDestination) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());

  Packet p;
  p.op = OpCode::kOther;
  p.dst = idb;
  f.network.Send(ida, std::move(p));
  f.simulator.RunAll();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, ida);
  EXPECT_TRUE(a.received.empty());
}

TEST(NetworkTest, NodeToNodeCostsTwoHopsWithoutSwitchInvolvement) {
  Fixture f;
  Recorder a;
  Recorder b;
  Recorder sw;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  const NodeId ids = f.network.Register(&sw, HostProfile::Wire());
  f.network.SetSwitchNode(ids);

  Packet p1;
  p1.dst = idb;
  f.network.Send(ida, std::move(p1));  // node -> node: 2 hops
  Packet p2;
  p2.dst = ids;
  f.network.Send(ida, std::move(p2));  // node -> switch: 1 hop

  f.simulator.RunUntil(1000);
  EXPECT_EQ(sw.received.size(), 1u);
  EXPECT_TRUE(b.received.empty());
  f.simulator.RunUntil(2000);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, HostRxCostSerializesDeliveries) {
  Fixture f;
  Recorder src;
  Recorder busy;
  const NodeId ids = f.network.Register(&src, HostProfile::Wire());
  const NodeId idb = f.network.Register(&busy, HostProfile{0, 1000, 0});

  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.dst = idb;
    f.network.Send(ids, std::move(p));
  }
  // All arrive at the NIC at t=2000 (two hops, no switch registered), then
  // the single rx core spaces them 1000 ns apart.
  f.simulator.RunUntil(3000);
  EXPECT_EQ(busy.received.size(), 1u);
  f.simulator.RunUntil(4000);
  EXPECT_EQ(busy.received.size(), 2u);
  f.simulator.RunUntil(5000);
  EXPECT_EQ(busy.received.size(), 3u);
}

TEST(NetworkTest, StackLatencyAddsDelayWithoutOccupancy) {
  Fixture f;
  Recorder src;
  Recorder sock;
  const NodeId ids = f.network.Register(&src, HostProfile::Wire());
  const NodeId idk = f.network.Register(&sock, HostProfile{0, 0, 5000});

  Packet p;
  p.dst = idk;
  f.network.Send(ids, std::move(p));
  f.simulator.RunUntil(6000);
  EXPECT_TRUE(sock.received.empty());
  f.simulator.RunUntil(7000);
  EXPECT_EQ(sock.received.size(), 1u);
}

TEST(NetworkTest, TxCostSerializesSends) {
  Fixture f;
  Recorder slow_tx;
  Recorder sink;
  const NodeId idt = f.network.Register(&slow_tx, HostProfile{2000, 0, 0});
  const NodeId idr = f.network.Register(&sink, HostProfile::Wire());

  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.dst = idr;
    f.network.Send(idt, std::move(p));
  }
  // First departs at 2000, arrives 4000; second departs 4000, arrives 6000.
  f.simulator.RunUntil(4500);
  EXPECT_EQ(sink.received.size(), 1u);
  f.simulator.RunUntil(6500);
  EXPECT_EQ(sink.received.size(), 2u);
}

TEST(NetworkTest, SerializationDelayScalesWithSize) {
  sim::Simulator simulator;
  NetworkConfig cfg;
  cfg.propagation = 0;
  cfg.ns_per_byte = 10.0;
  cfg.max_jitter = 0;
  Network network(&simulator, cfg);
  Recorder a;
  Recorder b;
  const NodeId ida = network.Register(&a, HostProfile::Wire());
  const NodeId idb = network.Register(&b, HostProfile::Wire());
  network.SetSwitchNode(idb);

  Packet p;
  p.dst = idb;
  p.tasks.resize(10);  // bigger packet
  const auto wire = static_cast<TimeNs>(10.0 * p.WireSize());
  network.Send(ida, std::move(p));
  simulator.RunUntil(wire - 1);
  EXPECT_TRUE(b.received.empty());
  simulator.RunUntil(wire + 1);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, InjectDropLosesPackets) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  f.network.InjectDrop(ida, idb, 1.0);

  Packet p;
  p.dst = idb;
  f.network.Send(ida, std::move(p));
  f.simulator.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(f.network.packets_dropped(), 1u);
}

TEST(NetworkTest, DropRuleIsDirectional) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  f.network.InjectDrop(ida, idb, 1.0);

  Packet p;
  p.dst = ida;
  f.network.Send(idb, std::move(p));  // reverse direction unaffected
  f.simulator.RunAll();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(NetworkTest, ClearDropRulesRestoresDelivery) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  f.network.InjectDrop(ida, idb, 1.0);
  f.network.ClearDropRules();

  Packet p;
  p.dst = idb;
  f.network.Send(ida, std::move(p));
  f.simulator.RunAll();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, DisconnectDropsBothDirections) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  f.network.Disconnect(idb);
  EXPECT_TRUE(f.network.IsDisconnected(idb));

  Packet to_dead;
  to_dead.dst = idb;
  f.network.Send(ida, std::move(to_dead));
  Packet from_dead;
  from_dead.dst = ida;
  f.network.Send(idb, std::move(from_dead));
  f.simulator.RunAll();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(f.network.packets_dropped(), 2u);
}

TEST(NetworkTest, ReconnectRestoresDelivery) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  f.network.Disconnect(idb);
  f.network.Reconnect(idb);
  EXPECT_FALSE(f.network.IsDisconnected(idb));

  Packet p;
  p.dst = idb;
  f.network.Send(ida, std::move(p));
  f.simulator.RunAll();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, RemoveDropRestoresDelivery) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  f.network.InjectDrop(ida, idb, 1.0);
  f.network.RemoveDrop(ida, idb);

  Packet p;
  p.dst = idb;
  f.network.Send(ida, std::move(p));
  f.simulator.RunAll();
  EXPECT_EQ(b.received.size(), 1u);
}

// Delivery times with jitter enabled must be bit-identical with and without a
// p=0 drop rule installed: the rule's probability draws come from the
// dedicated fault stream, not the jitter stream.
TEST(NetworkTest, ZeroProbabilityDropRuleDoesNotPerturbJitter) {
  class TimedRecorder : public Endpoint {
   public:
    explicit TimedRecorder(sim::Simulator* simulator) : simulator_(simulator) {}
    void HandlePacket(Packet) override { times.push_back(simulator_->Now()); }
    std::vector<TimeNs> times;

   private:
    sim::Simulator* simulator_;
  };

  NetworkConfig cfg;
  cfg.max_jitter = 500;  // jitter stream active
  cfg.seed = 7;

  std::vector<TimeNs> baseline;
  for (const bool with_rule : {false, true}) {
    sim::Simulator simulator;
    Network network(&simulator, cfg);
    TimedRecorder a(&simulator);
    TimedRecorder b(&simulator);
    const NodeId ida = network.Register(&a, HostProfile::Wire());
    const NodeId idb = network.Register(&b, HostProfile::Wire());
    if (with_rule) {
      network.InjectDrop(ida, idb, 0.0);
    }
    for (int i = 0; i < 32; ++i) {
      Packet p;
      p.dst = idb;
      network.Send(ida, std::move(p));
    }
    simulator.RunAll();
    ASSERT_EQ(b.times.size(), 32u);
    if (!with_rule) {
      baseline = b.times;
    } else {
      EXPECT_EQ(b.times, baseline);
    }
  }
}

// §3.3: a hard node failure also loses packets already in flight toward the
// node — disconnection is re-checked at delivery time.
TEST(NetworkTest, DisconnectDropsInFlightPackets) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());

  Packet p;
  p.dst = idb;
  f.network.Send(ida, std::move(p));  // arrives at t=2000 (two hops)
  f.simulator.ScheduleAt(1000, [&] { f.network.Disconnect(idb); });
  f.simulator.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(f.network.packets_dropped(), 1u);
  EXPECT_EQ(f.network.packets_delivered(), 0u);
}

TEST(NetworkTest, LatencyPenaltyStacksAndUndoes) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());

  f.network.AddLatencyPenalty(5000);
  Packet slow;
  slow.dst = idb;
  f.network.Send(ida, std::move(slow));  // 2000 ns base + 5000 penalty
  f.simulator.RunUntil(6999);
  EXPECT_TRUE(b.received.empty());
  f.simulator.RunUntil(7001);
  EXPECT_EQ(b.received.size(), 1u);

  f.network.AddLatencyPenalty(-5000);
  EXPECT_EQ(f.network.latency_penalty(), 0);
  Packet fast;
  fast.dst = idb;
  f.network.Send(ida, std::move(fast));
  f.simulator.RunAll();
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(PacketTest, PayloadBytesCountTowardWireSize) {
  Packet p;
  p.op = OpCode::kParamData;
  const size_t base = p.WireSize();
  p.payload_bytes = 4096;
  EXPECT_EQ(p.WireSize(), base + 4096);
}

TEST(NetworkTest, CountsDeliveredPackets) {
  Fixture f;
  Recorder a;
  Recorder b;
  const NodeId ida = f.network.Register(&a, HostProfile::Wire());
  const NodeId idb = f.network.Register(&b, HostProfile::Wire());
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.dst = idb;
    f.network.Send(ida, std::move(p));
  }
  f.simulator.RunAll();
  EXPECT_EQ(f.network.packets_delivered(), 5u);
}

}  // namespace
}  // namespace draconis::net
