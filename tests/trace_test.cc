// Task-lifecycle tracing (src/trace/): sampler determinism, recorder
// finalization, end-to-end timeline ordering through a real experiment, the
// telescoping attribution invariant, and the §3.3/§8.3 failure paths
// (duplicate suppression after timeout resubmission, executor rehoming).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/executor.h"
#include "cluster/experiment.h"
#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"
#include "trace/export.h"
#include "trace/recorder.h"
#include "workload/generators.h"

namespace draconis {
namespace {

using trace::Kind;
using trace::Recorder;
using trace::SpanRecord;
using trace::TraceConfig;

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TEST(TraceSamplerTest, HashIsAPureFunctionOfTheId) {
  const net::TaskId id{3, 17, 112};
  EXPECT_EQ(Recorder::HashOf(id), Recorder::HashOf(id));
  EXPECT_NE(Recorder::HashOf(id), Recorder::HashOf(net::TaskId{3, 17, 113}));

  // Two recorders with the same period agree on every id, regardless of any
  // other configuration — sampling depends on nothing but the id.
  TraceConfig a;
  a.sample_period = 8;
  TraceConfig b;
  b.sample_period = 8;
  b.max_records = 16;
  Recorder ra(a);
  Recorder rb(b);
  for (uint32_t t = 0; t < 1000; ++t) {
    const net::TaskId task{1, 2, t};
    EXPECT_EQ(ra.Sampled(task), rb.Sampled(task)) << "tid=" << t;
  }
}

TEST(TraceSamplerTest, PeriodOneSamplesEverything) {
  TraceConfig config;
  config.sample_period = 1;
  Recorder recorder(config);
  for (uint32_t t = 0; t < 100; ++t) {
    EXPECT_TRUE(recorder.Sampled(net::TaskId{0, 0, t}));
  }
  // Period 0 is clamped to 1, not treated as "never".
  TraceConfig zero;
  zero.sample_period = 0;
  Recorder rz(zero);
  EXPECT_TRUE(rz.Sampled(net::TaskId{9, 9, 9}));
}

TEST(TraceSamplerTest, SampleDensityTracksThePeriod) {
  TraceConfig config;
  config.sample_period = 64;
  Recorder recorder(config);
  size_t sampled = 0;
  const size_t kIds = 64 * 256;
  for (uint32_t j = 0; j < 64; ++j) {
    for (uint32_t t = 0; t < 256; ++t) {
      sampled += recorder.Sampled(net::TaskId{0, j, t}) ? 1 : 0;
    }
  }
  // Expected kIds/64 = 256; the hash should land within a loose 2x band.
  EXPECT_GT(sampled, kIds / 128);
  EXPECT_LT(sampled, kIds / 32);
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, FinalizeCensorsTasksWithoutATerminal) {
  TraceConfig config;
  config.sample_period = 1;
  Recorder recorder(config);
  const net::TaskId done{0, 0, 1};
  const net::TaskId stuck{0, 0, 2};
  recorder.Record(done, Kind::kSubmit, 10, 10);
  recorder.Record(stuck, Kind::kSubmit, 20, 20);
  recorder.Record(done, Kind::kComplete, 500, 500);
  recorder.RecordGlobal(Kind::kRehome, 600, 3, 4);  // global: never censored
  recorder.FinalizeAt(1000);

  std::vector<SpanRecord> censored;
  for (const SpanRecord& rec : recorder.records()) {
    if (rec.kind == Kind::kCensored) {
      censored.push_back(rec);
    }
  }
  ASSERT_EQ(censored.size(), 1u);
  EXPECT_EQ(censored[0].id, stuck);
  EXPECT_EQ(censored[0].begin, 1000);
  EXPECT_EQ(censored[0].end, 1000);
}

TEST(TraceRecorderTest, RecordCapCountsDrops) {
  TraceConfig config;
  config.sample_period = 1;
  config.max_records = 2;
  Recorder recorder(config);
  const net::TaskId id{0, 0, 1};
  recorder.Record(id, Kind::kSubmit, 1, 1);
  recorder.Record(id, Kind::kClientSend, 2, 2);
  recorder.Record(id, Kind::kComplete, 3, 3);
  EXPECT_EQ(recorder.records().size(), 2u);
  EXPECT_EQ(recorder.dropped_records(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: a real Draconis experiment with full sampling
// ---------------------------------------------------------------------------

cluster::ExperimentConfig TracedConfig() {
  cluster::ExperimentConfig config;
  config.scheduler = cluster::SchedulerKind::kDraconis;
  config.num_workers = 4;
  config.executors_per_worker = 4;
  config.num_clients = 2;
  config.warmup = FromMillis(1);
  config.horizon = FromMillis(10);
  config.max_tasks_per_packet = 1;
  config.timeout_multiplier = 5.0;
  config.seed = 42;
  config.trace.enabled = true;
  config.trace.sample_period = 1;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 0.5 * 16 / 100e-6;
  spec.duration = config.horizon;
  spec.tasks_per_job = 10;
  spec.service = workload::ServiceTime::Fixed(FromMicros(100));
  spec.seed = config.seed;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

// First record of `kind` (optionally for one attempt) in a task's timeline.
const SpanRecord* FindFirst(const std::vector<const SpanRecord*>& timeline, Kind kind,
                            int attempt = -1) {
  for (const SpanRecord* rec : timeline) {
    if (rec->kind == kind && (attempt < 0 || rec->attempt == attempt)) {
      return rec;
    }
  }
  return nullptr;
}

TEST(TraceExperimentTest, TimelinesCoverEveryLayerInOrder) {
  cluster::ExperimentResult result = cluster::RunExperiment(TracedConfig());
  ASSERT_NE(result.trace, nullptr);
  const Recorder& recorder = *result.trace;
  EXPECT_EQ(recorder.dropped_records(), 0u);
  EXPECT_GT(recorder.records().size(), 0u);

  std::map<net::TaskId, std::vector<const SpanRecord*>,
           bool (*)(const net::TaskId&, const net::TaskId&)>
      by_task([](const net::TaskId& a, const net::TaskId& b) {
        return std::tie(a.uid, a.jid, a.tid) < std::tie(b.uid, b.jid, b.tid);
      });
  for (const SpanRecord& rec : recorder.records()) {
    EXPECT_LE(rec.begin, rec.end);
    EXPECT_GE(rec.begin, 0);
    if (!(rec.id == trace::kGlobalTaskId)) {
      by_task[rec.id].push_back(&rec);
    }
  }

  size_t completed = 0;
  size_t terminals = 0;
  for (const auto& [id, timeline] : by_task) {
    // Exactly one terminal record per sampled task.
    size_t task_terminals = 0;
    for (const SpanRecord* rec : timeline) {
      task_terminals += trace::IsTerminal(rec->kind) ? 1 : 0;
    }
    EXPECT_EQ(task_terminals, 1u) << "uid=" << id.uid << " jid=" << id.jid
                                  << " tid=" << id.tid;
    terminals += task_terminals;

    const SpanRecord* complete = FindFirst(timeline, Kind::kComplete);
    if (complete == nullptr) {
      continue;
    }
    ++completed;
    const int win = complete->attempt;
    const SpanRecord* submit = FindFirst(timeline, Kind::kSubmit);
    const SpanRecord* send = FindFirst(timeline, Kind::kClientSend, win);
    const SpanRecord* enqueue = FindFirst(timeline, Kind::kEnqueue, win);
    const SpanRecord* assign = FindFirst(timeline, Kind::kAssign, win);
    const SpanRecord* arrive = FindFirst(timeline, Kind::kExecArrive, win);
    const SpanRecord* service = FindFirst(timeline, Kind::kExecService, win);
    ASSERT_NE(submit, nullptr);
    ASSERT_NE(send, nullptr);
    ASSERT_NE(enqueue, nullptr);
    ASSERT_NE(assign, nullptr);
    ASSERT_NE(arrive, nullptr);
    ASSERT_NE(service, nullptr);
    EXPECT_LE(submit->begin, send->begin);
    EXPECT_LE(send->begin, enqueue->begin);
    EXPECT_LE(enqueue->begin, assign->begin);
    EXPECT_LE(assign->begin, arrive->begin);
    EXPECT_LE(arrive->begin, service->begin);
    EXPECT_LE(service->end, complete->begin);
  }
  EXPECT_GT(completed, 100u) << "experiment should complete plenty of sampled tasks";
  EXPECT_EQ(terminals, by_task.size());
}

TEST(TraceExperimentTest, AttributionTelescopesExactly) {
  cluster::ExperimentResult result = cluster::RunExperiment(TracedConfig());
  ASSERT_NE(result.trace, nullptr);
  const trace::AttributionReport report = trace::BuildAttribution(*result.trace);

  EXPECT_EQ(report.sampled_tasks, report.completed_tasks + report.censored_tasks);
  // Draconis records every milestone, so no completed task is partial.
  EXPECT_EQ(report.partial_timelines, 0u);
  EXPECT_EQ(report.tasks.size(), report.completed_tasks);
  EXPECT_GT(report.tasks.size(), 0u);

  for (const trace::TaskAttribution& task : report.tasks) {
    const trace::StageBreakdown& s = task.stages;
    EXPECT_GE(s.client, 0);
    EXPECT_GE(s.wire, 0);
    EXPECT_GE(s.scheduling, 0);
    EXPECT_GE(s.queue, 0);
    EXPECT_GE(s.executor, 0);
    // The telescoping invariant: stages sum *exactly* to the total.
    EXPECT_EQ(s.client + s.wire + s.scheduling + s.queue + s.executor, s.total);
    EXPECT_EQ(task.completed - task.first_submit, s.total);
  }
  EXPECT_EQ(report.total.count(), report.tasks.size());

  // Top-K slowest is sorted by total, descending.
  ASSERT_FALSE(report.slowest.empty());
  for (size_t i = 1; i < report.slowest.size(); ++i) {
    EXPECT_GE(report.tasks[report.slowest[i - 1]].stages.total,
              report.tasks[report.slowest[i]].stages.total);
  }
}

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceExperimentTest, ChromeExportIsBalanced) {
  cluster::ExperimentResult result = cluster::RunExperiment(TracedConfig());
  ASSERT_NE(result.trace, nullptr);
  const std::string json = trace::RenderChromeTrace(*result.trace, "trace_test");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Every duration span opens and closes.
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""), CountOccurrences(json, "\"ph\": \"E\""));
  EXPECT_GT(CountOccurrences(json, "\"ph\": \"B\""), 0u);
  // Attribution JSON renders and self-identifies.
  const trace::AttributionReport report = trace::BuildAttribution(*result.trace);
  const std::string attribution =
      trace::RenderAttribution(report, *result.trace, "trace_test");
  EXPECT_NE(attribution.find("\"trace_attribution\""), std::string::npos);
  EXPECT_NE(attribution.find("\"top_slowest\""), std::string::npos);
}

TEST(TraceExperimentTest, DisabledTracingProducesNoRecorder) {
  cluster::ExperimentConfig config = TracedConfig();
  config.trace.enabled = false;
  cluster::ExperimentResult result = cluster::RunExperiment(config);
  EXPECT_EQ(result.trace, nullptr);
}

// ---------------------------------------------------------------------------
// §8.3 duplicate suppression: the timeline shows the task traced twice but
// completed once, with the duplicate notice suppressed after the first.
// ---------------------------------------------------------------------------

TEST(TraceFailureTest, TimeoutResubmissionTimelineShowsDuplicateSuppression) {
  cluster::TestbedConfig tbc;
  tbc.trace.enabled = true;
  tbc.trace.sample_period = 1;
  cluster::Testbed testbed(tbc);
  sim::Simulator& simulator = testbed.simulator();
  cluster::MetricsHub& metrics = *testbed.metrics();
  Recorder& recorder = *testbed.recorder();

  core::FcfsPolicy policy;
  core::DraconisProgram program(&policy, core::DraconisConfig{});
  program.SetRecorder(&recorder);
  p4::SwitchPipeline pipeline(testbed, &program, p4::PipelineConfig{});
  const net::NodeId switch_node = pipeline.node_id();

  cluster::ExecutorConfig ec;
  cluster::Executor executor(&testbed, ec);
  executor.Start(switch_node, 1);

  // A 500 us task with a 50 us client timeout (0.1x, clamped to the floor):
  // the resubmission fires while the first copy is still executing, so the
  // duplicate also runs and its completion notice must be suppressed.
  cluster::ClientConfig cc;
  cc.timeout_multiplier = 0.1;
  cluster::Client client(&testbed, cc);
  client.SetScheduler(switch_node);
  cluster::TaskSpec spec;
  spec.duration = FromMicros(500);
  client.SubmitJob({spec});
  simulator.RunUntil(FromMillis(20));
  recorder.FinalizeAt(simulator.Now());

  // The client-facing outcome: one logical completion, metrics deduped.
  EXPECT_EQ(client.completions(), 1u);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(metrics.e2e_delay().count(), 1u);
  EXPECT_GT(metrics.timeout_resubmissions(), 0u);
  EXPECT_GE(executor.tasks_executed(), 2u) << "the duplicate should also execute";

  // The timeline: sends on >= 2 distinct attempts, >= 1 resubmit marker,
  // exactly one kComplete, and every duplicate notice after it.
  std::set<int> send_attempts;
  std::vector<const SpanRecord*> completes;
  std::vector<const SpanRecord*> duplicates;
  size_t resubmits = 0;
  for (const SpanRecord& rec : recorder.records()) {
    switch (rec.kind) {
      case Kind::kClientSend:
        send_attempts.insert(rec.attempt);
        break;
      case Kind::kTimeoutResubmit:
        ++resubmits;
        break;
      case Kind::kComplete:
        completes.push_back(&rec);
        break;
      case Kind::kDuplicateComplete:
        duplicates.push_back(&rec);
        break;
      default:
        break;
    }
  }
  EXPECT_GE(send_attempts.size(), 2u);
  EXPECT_GE(resubmits, 1u);
  ASSERT_EQ(completes.size(), 1u);
  ASSERT_GE(duplicates.size(), 1u);
  for (const SpanRecord* dup : duplicates) {
    EXPECT_LT(completes[0]->begin, dup->begin)
        << "the accepted completion must precede every suppressed duplicate";
  }
  // The winning attempt is recorded on the completion.
  EXPECT_TRUE(send_attempts.count(completes[0]->attempt) > 0);
}

// ---------------------------------------------------------------------------
// §3.3 rehoming: the trace shows the control-plane re-point and the
// post-failover recovery, again with single-completion semantics.
// ---------------------------------------------------------------------------

TEST(TraceFailureTest, RehomingTimelineSpansSwitchFailover) {
  cluster::TestbedConfig tbc;
  tbc.trace.enabled = true;
  tbc.trace.sample_period = 1;
  cluster::Testbed testbed(tbc);
  sim::Simulator& simulator = testbed.simulator();
  net::Network& network = testbed.network();
  Recorder& recorder = *testbed.recorder();

  core::FcfsPolicy policy;
  core::DraconisConfig dc;
  core::DraconisProgram program_a(&policy, dc);
  core::DraconisProgram program_b(&policy, dc);
  program_a.SetRecorder(&recorder);
  program_b.SetRecorder(&recorder);
  p4::SwitchPipeline switch_a(testbed, &program_a, p4::PipelineConfig{});
  p4::SwitchPipeline switch_b(&simulator, &program_b, p4::PipelineConfig{});
  switch_b.SetRecorder(&recorder);
  const net::NodeId node_a = switch_a.node_id();
  const net::NodeId node_b = switch_b.AttachNetwork(&network);

  std::vector<std::unique_ptr<cluster::Executor>> executors;
  for (int i = 0; i < 4; ++i) {
    cluster::ExecutorConfig config;
    config.request_timeout = FromMicros(500);
    executors.push_back(std::make_unique<cluster::Executor>(&testbed, config));
    executors.back()->Start(node_a, 1 + i * 100);
  }
  cluster::ClientConfig cc;
  cc.timeout_multiplier = 3.0;
  cluster::Client client(&testbed, cc);
  client.SetScheduler(node_a);

  for (int burst = 0; burst < 10; ++burst) {
    simulator.ScheduleAt(1 + burst * FromMicros(500), [&] {
      client.SubmitJob(
          std::vector<cluster::TaskSpec>(16, cluster::TaskSpec{FromMicros(100), 0, 0, 0, 0}));
    });
  }
  simulator.ScheduleAt(FromMillis(2) + FromMicros(60), [&] {
    network.Disconnect(node_a);
    client.SetScheduler(node_b);
    for (auto& executor : executors) {
      executor->Rehome(node_b);
    }
  });

  simulator.RunUntil(FromSeconds(2));
  recorder.FinalizeAt(simulator.Now());

  EXPECT_EQ(client.completions(), 160u);
  EXPECT_EQ(client.outstanding(), 0u);

  // One kRehome global record per executor, pointing at the standby.
  size_t rehomes = 0;
  std::set<uint32_t> rehomed_nodes;
  size_t resubmits = 0;
  for (const SpanRecord& rec : recorder.records()) {
    if (rec.kind == Kind::kRehome) {
      ++rehomes;
      EXPECT_EQ(rec.id, trace::kGlobalTaskId);
      EXPECT_EQ(rec.detail, static_cast<uint64_t>(node_b));
      rehomed_nodes.insert(rec.node);
    } else if (rec.kind == Kind::kTimeoutResubmit) {
      ++resubmits;
    }
  }
  EXPECT_EQ(rehomes, 4u);
  EXPECT_EQ(rehomed_nodes.size(), 4u);
  EXPECT_GT(resubmits, 0u) << "tasks parked in the dead switch must resubmit";

  // Every task completes exactly once in the trace, despite resubmissions,
  // and tasks resubmitted after the failover re-enter on the standby.
  std::map<uint32_t, size_t> completes_per_tid;
  size_t enqueues_on_b = 0;
  for (const SpanRecord& rec : recorder.records()) {
    if (rec.kind == Kind::kComplete) {
      completes_per_tid[rec.id.jid * 1000 + rec.id.tid] += 1;
    }
    if (rec.kind == Kind::kEnqueue && rec.node == node_b) {
      ++enqueues_on_b;
    }
  }
  EXPECT_EQ(completes_per_tid.size(), 160u);
  for (const auto& [key, count] : completes_per_tid) {
    EXPECT_EQ(count, 1u) << "task key " << key;
  }
  EXPECT_GT(enqueues_on_b, 0u);
}

// ---------------------------------------------------------------------------
// Injector-driven failover through RunExperiment: the outage renders as one
// kFaultWindow global span, and every rehome (executor fleet at promotion,
// clients through their own timeouts) is exactly one kRehome global record.
// ---------------------------------------------------------------------------

TEST(TraceFaultTest, FailoverExperimentEmitsFaultWindowAndRehomeSpans) {
  cluster::ExperimentConfig config = TracedConfig();
  const TimeNs failover_at = FromMillis(4);
  config.fault_plan.SchedulerFailover(failover_at);
  cluster::ExperimentResult result = cluster::RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);

  std::vector<const SpanRecord*> windows;
  std::map<uint32_t, size_t> rehomes_per_node;
  for (const SpanRecord& rec : result.trace->records()) {
    if (rec.kind == Kind::kFaultWindow) {
      windows.push_back(&rec);
    } else if (rec.kind == Kind::kRehome) {
      EXPECT_TRUE(rec.id == trace::kGlobalTaskId);
      rehomes_per_node[rec.node] += 1;
    }
  }

  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0]->id == trace::kGlobalTaskId);
  EXPECT_EQ(windows[0]->begin, failover_at);
  EXPECT_GT(windows[0]->end, windows[0]->begin) << "the outage band must have extent";

  // One kRehome per rehomed node: the whole executor fleet re-points at the
  // standby at promotion, and each client that hit its timeout streak flips
  // exactly once (the stale-timeout guard prevents ping-pong back to the
  // dead switch).
  const uint64_t expected =
      result.recovery.executor_rehomes + result.recovery.client_rehomes;
  EXPECT_GT(result.recovery.executor_rehomes, 0u);
  uint64_t total = 0;
  for (const auto& [node, count] : rehomes_per_node) {
    EXPECT_EQ(count, 1u) << "node " << node << " rehomed more than once";
    total += count;
  }
  EXPECT_EQ(total, expected);
  EXPECT_EQ(result.recovery.tasks_lost, 0u);
}

}  // namespace
}  // namespace draconis
