// The multi-rack topology subsystem (docs/topology.md): the ClusterTopology
// description, the placement-policy determinism contract, the summary
// fabric, the rack-indexed placement seed domain, and the network's
// two-tier (aggregation) link model.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/testbed.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "topology/fabric.h"
#include "topology/placement.h"
#include "topology/topology.h"

namespace draconis::topology {
namespace {

// --- ClusterTopology ---------------------------------------------------------

TEST(ClusterTopologyTest, PlacementKindNamesRoundTrip) {
  for (PlacementKind kind : {PlacementKind::kHome, PlacementKind::kPowerOfTwo}) {
    PlacementKind parsed;
    ASSERT_TRUE(PlacementKindFromName(PlacementKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PlacementKind out;
  EXPECT_FALSE(PlacementKindFromName("round-robin", &out));
  EXPECT_TRUE(PlacementKindFromName("Power-Of-Two", &out));
  EXPECT_EQ(out, PlacementKind::kPowerOfTwo);
}

TEST(ClusterTopologyTest, EmptyTopologyIsDisabledAndValid) {
  ClusterTopology topo;
  EXPECT_FALSE(topo.enabled());
  EXPECT_EQ(topo.num_racks(), 0u);
  EXPECT_EQ(topo.total_executors(), 0u);
  EXPECT_EQ(topo.Validate(), "");
}

TEST(ClusterTopologyTest, UniformBuildsIdenticalRacks) {
  const ClusterTopology topo = ClusterTopology::Uniform(4, 8, 16);
  EXPECT_TRUE(topo.enabled());
  EXPECT_EQ(topo.num_racks(), 4u);
  EXPECT_EQ(topo.total_workers(), 32u);
  EXPECT_EQ(topo.total_executors(), 4u * 8 * 16);
  EXPECT_EQ(topo.Validate(), "");
}

TEST(ClusterTopologyTest, ValidateRejectsDegenerateShapes) {
  ClusterTopology topo = ClusterTopology::Uniform(2, 4, 4);
  topo.racks[1].num_workers = 0;
  EXPECT_NE(topo.Validate().find("rack 1"), std::string::npos);

  topo = ClusterTopology::Uniform(2, 4, 4);
  topo.racks[0].executors_per_worker = 0;
  EXPECT_NE(topo.Validate().find("executors"), std::string::npos);

  topo = ClusterTopology::Uniform(2, 4, 4);
  topo.aggregation_latency = -1;
  EXPECT_NE(topo.Validate().find("aggregation_latency"), std::string::npos);

  topo = ClusterTopology::Uniform(2, 4, 4);
  topo.agg_ns_per_byte = -0.5;
  EXPECT_NE(topo.Validate().find("agg_ns_per_byte"), std::string::npos);

  topo = ClusterTopology::Uniform(2, 4, 4);
  topo.summary_period = 0;
  EXPECT_NE(topo.Validate().find("summary_period"), std::string::npos);
}

// --- Placement policies ------------------------------------------------------

TEST(PlacementTest, DepthDirectoryStartsEmptyAndUpdates) {
  DepthDirectory dir(3);
  EXPECT_EQ(dir.num_racks(), 3u);
  EXPECT_EQ(dir.rack(1).depth, 0u);
  EXPECT_EQ(dir.rack(1).updated_at, -1);
  dir.Update(1, 77, 1234);
  EXPECT_EQ(dir.rack(1).depth, 77u);
  EXPECT_EQ(dir.rack(1).updated_at, 1234);
  EXPECT_EQ(dir.rack(0).depth, 0u);
}

TEST(PlacementTest, HomeOnlyAlwaysReturnsHome) {
  HomeOnlyPlacement policy;
  DepthDirectory dir(4);
  dir.Update(2, 1000000, 0);  // even a drowning home rack stays home
  EXPECT_EQ(policy.ChooseRack(2, dir), 2u);
}

// The determinism contract: at or below the watermark ChooseRack returns
// home without drawing randomness, so two same-seed policies stay in
// lockstep however many fast-path calls are interleaved between overflows.
TEST(PlacementTest, PowerOfTwoDrawsNoRandomnessBelowWatermark) {
  const uint64_t kSeed = 9;
  PowerOfTwoPlacement busy(8, kSeed);
  PowerOfTwoPlacement idle(8, kSeed);

  DepthDirectory hot(5);
  hot.Update(0, 9, 0);  // home above watermark; siblings idle
  DepthDirectory cold(5);
  cold.Update(0, 8, 0);  // home at the watermark: fast path

  // `idle` burns thousands of fast-path calls; `busy` none.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(idle.ChooseRack(0, cold), 0u);
  }
  // If the fast path drew randomness the two streams would have diverged.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(busy.ChooseRack(0, hot), idle.ChooseRack(0, hot)) << "call " << i;
  }
}

TEST(PlacementTest, PowerOfTwoWithTwoRacksForwardsToTheOnlySibling) {
  PowerOfTwoPlacement policy(4, 1);
  DepthDirectory dir(2);
  dir.Update(0, 100, 0);
  dir.Update(1, 2, 0);
  EXPECT_EQ(policy.ChooseRack(0, dir), 1u);
  dir.Update(1, 150, 0);  // sibling looks hotter than home: stay home
  EXPECT_EQ(policy.ChooseRack(0, dir), 0u);
}

TEST(PlacementTest, PowerOfTwoPrefersTheShallowerSiblingAndNeverSamplesHome) {
  PowerOfTwoPlacement policy(0, 33);
  DepthDirectory dir(4);
  dir.Update(1, 50, 0);  // home, above watermark 0
  dir.Update(0, 40, 0);
  dir.Update(2, 40, 0);
  dir.Update(3, 1, 0);
  int to_shallowest = 0;
  for (int i = 0; i < 200; ++i) {
    const uint32_t choice = policy.ChooseRack(1, dir);
    ASSERT_NE(choice, 1u);  // sampling skips the home rack
    if (choice == 3) {
      ++to_shallowest;
    }
  }
  // Rack 3 wins every sample that includes it: > half of 200 in expectation.
  EXPECT_GT(to_shallowest, 60);
}

TEST(PlacementTest, MakePlacementPolicySelectsTheConfiguredKind) {
  ClusterTopology topo = ClusterTopology::Uniform(3, 1, 1);
  topo.overflow_watermark = 0;
  DepthDirectory dir(3);
  dir.Update(0, 10, 0);
  dir.Update(1, 1, 0);
  dir.Update(2, 1, 0);

  topo.placement = PlacementKind::kHome;
  EXPECT_EQ(MakePlacementPolicy(topo, 1)->ChooseRack(0, dir), 0u);
  topo.placement = PlacementKind::kPowerOfTwo;
  EXPECT_NE(MakePlacementPolicy(topo, 1)->ChooseRack(0, dir), 0u);
}

// --- SubmissionRouter --------------------------------------------------------

TEST(RouterTest, HomePlacementReturnsTheCallerAddressVerbatim) {
  // The client may have rehomed to a promoted standby; the router must not
  // undo that by looking the home rack up in the ToR table.
  const std::vector<net::NodeId> tors = {10, 11};
  DepthDirectory dir(2);
  HomeOnlyPlacement policy;
  SubmissionRouter router(0, &tors, &dir, &policy);
  EXPECT_EQ(router.Route(99), 99u);  // 99 = rehomed standby, not tors[0]
  EXPECT_EQ(router.routed_home(), 1u);
  EXPECT_EQ(router.routed_cross(), 0u);
}

TEST(RouterTest, CrossPlacementUsesTheSharedTorTableAndCounts) {
  const uint64_t kWatermark = 4;
  std::vector<net::NodeId> tors = {10, 11};
  DepthDirectory dir(2);
  dir.Update(0, kWatermark + 1, 0);
  PowerOfTwoPlacement policy(kWatermark, 5);
  SubmissionRouter router(0, &tors, &dir, &policy);
  EXPECT_EQ(router.Route(10), 11u);
  EXPECT_EQ(router.routed_cross(), 1u);
  // The deployment swaps a failed ToR's entry to its standby in place; the
  // router picks the swap up on the next call.
  tors[1] = 42;
  EXPECT_EQ(router.Route(10), 42u);
  EXPECT_EQ(router.routed_cross(), 2u);
}

// --- The rack-indexed placement seed domain ----------------------------------

TEST(SeedDomainTest, PlacementSeedsArePinnedAndRackIndexed) {
  cluster::TestbedConfig tc;
  tc.seed = 42;
  cluster::Testbed testbed(tc);
  // Pinned constants: seed * 9973 + 257 + rack * 0x9E3779B97F4A7C15. Rack r's
  // stream is a pure function of (seed, r) — growing the cluster never
  // perturbs existing racks.
  EXPECT_EQ(testbed.SeedFor(cluster::SeedDomain::kPlacement, 0), 419123ull);
  EXPECT_EQ(testbed.SeedFor(cluster::SeedDomain::kPlacement, 1), 11400714819323617608ull);
  EXPECT_EQ(testbed.SeedFor(cluster::SeedDomain::kPlacement, 2), 4354685564937264477ull);
}

TEST(SeedDomainTest, PlacementSeedsAreStableUnderClusterShapeChanges) {
  cluster::TestbedConfig small;
  small.seed = 7;
  small.num_workers = 4;
  cluster::TestbedConfig big;
  big.seed = 7;
  big.num_workers = 400;
  big.num_racks = 16;
  cluster::Testbed a(small);
  cluster::Testbed b(big);
  for (uint64_t rack = 0; rack < 16; ++rack) {
    EXPECT_EQ(a.SeedFor(cluster::SeedDomain::kPlacement, rack),
              b.SeedFor(cluster::SeedDomain::kPlacement, rack));
  }
  // Distinct per rack, and distinct from the other per-index domain.
  EXPECT_NE(a.SeedFor(cluster::SeedDomain::kPlacement, 0),
            a.SeedFor(cluster::SeedDomain::kPlacement, 1));
  EXPECT_NE(a.SeedFor(cluster::SeedDomain::kPlacement, 3),
            a.SeedFor(cluster::SeedDomain::kSparrow, 3));
}

// --- The two-tier network model ----------------------------------------------

class ArrivalRecorder : public net::Endpoint {
 public:
  explicit ArrivalRecorder(sim::Simulator* sim) : sim_(sim) {}
  void HandlePacket(net::Packet pkt) override {
    arrivals.push_back(sim_->Now());
    packets.push_back(std::move(pkt));
  }
  std::vector<TimeNs> arrivals;
  std::vector<net::Packet> packets;

 private:
  sim::Simulator* sim_;
};

net::NetworkConfig FlatNetConfig() {
  net::NetworkConfig c;
  c.propagation = 1000;
  c.ns_per_byte = 0.0;
  c.max_jitter = 0;
  return c;
}

TEST(TwoTierNetworkTest, CrossRackPacketsPayTwoAggregationHops) {
  sim::Simulator sim;
  net::NetworkConfig cfg = FlatNetConfig();
  cfg.aggregation_latency = 700;
  net::Network network(&sim, cfg);
  ArrivalRecorder same(&sim);
  ArrivalRecorder cross(&sim);
  const net::NodeId src = network.Register(&same, net::HostProfile::Wire());
  const net::NodeId dst_same = network.Register(&same, net::HostProfile::Wire());
  const net::NodeId dst_cross = network.Register(&cross, net::HostProfile::Wire());
  network.SetNodeRack(dst_cross, 1);

  net::Packet a;
  a.op = net::OpCode::kJobSubmission;
  a.dst = dst_same;
  network.Send(src, std::move(a));
  net::Packet b;
  b.op = net::OpCode::kJobSubmission;
  b.dst = dst_cross;
  network.Send(src, std::move(b));
  sim.RunAll();

  ASSERT_EQ(same.arrivals.size(), 1u);
  ASSERT_EQ(cross.arrivals.size(), 1u);
  EXPECT_EQ(cross.arrivals[0] - same.arrivals[0], 2 * cfg.aggregation_latency);
  EXPECT_EQ(network.cross_rack_packets(), 1u);
}

TEST(TwoTierNetworkTest, AggregationKnobsAreInertWhileEveryNodeIsInRackZero) {
  auto run = [](TimeNs agg_latency, double agg_ns_per_byte) {
    sim::Simulator sim;
    net::NetworkConfig cfg = FlatNetConfig();
    cfg.aggregation_latency = agg_latency;
    cfg.agg_ns_per_byte = agg_ns_per_byte;
    net::Network network(&sim, cfg);
    ArrivalRecorder rx(&sim);
    const net::NodeId src = network.Register(&rx, net::HostProfile::Wire());
    const net::NodeId dst = network.Register(&rx, net::HostProfile::Wire());
    net::Packet p;
    p.op = net::OpCode::kJobSubmission;
    p.dst = dst;
    network.Send(src, std::move(p));
    sim.RunAll();
    return rx.arrivals.at(0);
  };
  EXPECT_EQ(run(0, 0.0), run(FromMicros(50), 8.0));
}

TEST(TwoTierNetworkTest, UplinkSerializationIsABusyServerPerSourceRack) {
  sim::Simulator sim;
  net::NetworkConfig cfg = FlatNetConfig();
  cfg.agg_ns_per_byte = 1.0;  // 1 ns per wire byte on the rack uplink
  net::Network network(&sim, cfg);
  ArrivalRecorder rx(&sim);
  const net::NodeId src = network.Register(&rx, net::HostProfile::Wire());
  const net::NodeId dst = network.Register(&rx, net::HostProfile::Wire());
  network.SetNodeRack(dst, 1);

  size_t wire_size = 0;
  for (int i = 0; i < 2; ++i) {
    net::Packet p;
    p.op = net::OpCode::kJobSubmission;
    p.dst = dst;
    wire_size = p.WireSize();
    network.Send(src, std::move(p));
  }
  sim.RunAll();

  ASSERT_EQ(rx.arrivals.size(), 2u);
  // Both left the host at t=0; the second queued behind the first on the
  // shared uplink, so the arrivals are one serialization time apart.
  EXPECT_EQ(rx.arrivals[1] - rx.arrivals[0], static_cast<TimeNs>(wire_size));
}

// --- The summary fabric ------------------------------------------------------

TEST(SummaryFabricTest, PublisherRefreshesLocalDirectoryAndBroadcastsRealPackets) {
  sim::Simulator sim;
  net::Network network(&sim, FlatNetConfig());
  ArrivalRecorder tor(&sim);
  const net::NodeId tor_node = network.Register(&tor, net::HostProfile::Wire());

  DepthDirectory local(2);
  DepthDirectory remote(2);
  SummaryExchange exchange(&network, &remote);
  network.SetNodeRack(exchange.node_id(), 1);

  uint64_t depth = 40;
  SummaryPublisher publisher(&sim, &network, /*rack=*/0, tor_node,
                             [&depth] { return depth; }, /*period=*/FromMicros(10));
  publisher.SetLocalDirectory(&local);
  publisher.AddSubscriber(exchange.node_id());
  publisher.Start(/*first_at=*/100);

  sim.RunUntil(FromMicros(5));
  // First tick at t=100: local view updates synchronously...
  EXPECT_EQ(local.rack(0).depth, 40u);
  EXPECT_EQ(local.rack(0).updated_at, 100);
  // ...and the broadcast arrived as a real packet, so the remote view is
  // stale by the flight time but stamped with the generation time.
  ASSERT_EQ(exchange.summaries_received(), 1u);
  EXPECT_EQ(remote.rack(0).depth, 40u);
  EXPECT_EQ(remote.rack(0).updated_at, 100);

  depth = 75;
  sim.RunUntil(FromMicros(15));
  // Second tick at t=100 + 10us.
  EXPECT_EQ(local.rack(0).depth, 75u);
  EXPECT_EQ(local.rack(0).updated_at, 100 + FromMicros(10));
  EXPECT_EQ(remote.rack(0).depth, 75u);
  EXPECT_EQ(publisher.summaries_sent(), 2u);
}

TEST(SummaryFabricTest, ExchangeIgnoresStrayTraffic) {
  sim::Simulator sim;
  net::Network network(&sim, FlatNetConfig());
  DepthDirectory dir(2);
  SummaryExchange exchange(&network, &dir);
  ArrivalRecorder sender(&sim);
  const net::NodeId src = network.Register(&sender, net::HostProfile::Wire());

  net::Packet p;
  p.op = net::OpCode::kJobSubmission;
  p.dst = exchange.node_id();
  network.Send(src, std::move(p));
  sim.RunAll();
  EXPECT_EQ(exchange.summaries_received(), 0u);
  EXPECT_EQ(dir.rack(0).updated_at, -1);
}

TEST(SummaryFabricTest, RetargetSwitchesSourceAndProbe) {
  sim::Simulator sim;
  net::Network network(&sim, FlatNetConfig());
  ArrivalRecorder active(&sim);
  ArrivalRecorder standby(&sim);
  const net::NodeId active_node = network.Register(&active, net::HostProfile::Wire());
  const net::NodeId standby_node = network.Register(&standby, net::HostProfile::Wire());

  DepthDirectory remote(2);
  SummaryExchange exchange(&network, &remote);
  network.SetNodeRack(exchange.node_id(), 1);

  SummaryPublisher publisher(&sim, &network, /*rack=*/0, active_node, [] { return 5; },
                             /*period=*/FromMicros(10));
  publisher.AddSubscriber(exchange.node_id());
  publisher.Start(1);
  sim.RunUntil(FromMicros(5));
  EXPECT_EQ(remote.rack(0).depth, 5u);

  publisher.Retarget(standby_node, [] { return 11; });
  sim.RunUntil(FromMicros(15));
  EXPECT_EQ(remote.rack(0).depth, 11u);
  ASSERT_EQ(exchange.summaries_received(), 2u);
}

}  // namespace
}  // namespace draconis::topology
