// Tests for the supporting tooling: the flag parser, the packet tracer, and
// trace file I/O.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/flags.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "net/network.h"
#include "p4/tracing.h"
#include "sim/simulator.h"
#include "workload/generators.h"
#include "workload/trace_io.h"

namespace draconis {
namespace {

// --- flags -------------------------------------------------------------------

struct FlagsFixture {
  double rate = 1.5;
  int64_t workers = 10;
  bool verbose = false;
  std::string name = "default";
  flags::Parser parser{"test program"};

  FlagsFixture() {
    parser.AddDouble("rate", &rate, "a rate");
    parser.AddInt64("workers", &workers, "worker count");
    parser.AddBool("verbose", &verbose, "chatty output");
    parser.AddString("name", &name, "a label");
  }

  bool Parse(std::vector<const char*> args, std::string* error) {
    args.insert(args.begin(), "prog");
    return parser.Parse(static_cast<int>(args.size()), args.data(), error);
  }
};

TEST(FlagsTest, DefaultsSurviveEmptyArgs) {
  FlagsFixture f;
  std::string error;
  EXPECT_TRUE(f.Parse({}, &error)) << error;
  EXPECT_DOUBLE_EQ(f.rate, 1.5);
  EXPECT_EQ(f.workers, 10);
  EXPECT_FALSE(f.verbose);
  EXPECT_EQ(f.name, "default");
}

TEST(FlagsTest, EqualsForm) {
  FlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--rate=2.75", "--workers=160", "--name=fig5a"}, &error)) << error;
  EXPECT_DOUBLE_EQ(f.rate, 2.75);
  EXPECT_EQ(f.workers, 160);
  EXPECT_EQ(f.name, "fig5a");
}

TEST(FlagsTest, SpaceForm) {
  FlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--workers", "42"}, &error)) << error;
  EXPECT_EQ(f.workers, 42);
}

TEST(FlagsTest, BareBooleanEnables) {
  FlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--verbose"}, &error)) << error;
  EXPECT_TRUE(f.verbose);
}

TEST(FlagsTest, ExplicitBooleanValues) {
  FlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--verbose=true"}, &error));
  EXPECT_TRUE(f.verbose);
  ASSERT_TRUE(f.Parse({"--verbose=false"}, &error));
  EXPECT_FALSE(f.verbose);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagsFixture f;
  std::string error;
  EXPECT_FALSE(f.Parse({"--nope=1"}, &error));
  EXPECT_NE(error.find("unknown flag"), std::string::npos);
}

TEST(FlagsTest, BadValueFails) {
  FlagsFixture f;
  std::string error;
  EXPECT_FALSE(f.Parse({"--workers=ten"}, &error));
  EXPECT_NE(error.find("bad value"), std::string::npos);
}

TEST(FlagsTest, MissingValueFails) {
  FlagsFixture f;
  std::string error;
  EXPECT_FALSE(f.Parse({"--workers"}, &error));
}

TEST(FlagsTest, HelpShortCircuits) {
  FlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--help"}, &error));
  EXPECT_TRUE(f.parser.help_requested());
  EXPECT_NE(f.parser.Usage().find("--workers"), std::string::npos);
}

struct SweepFlagsFixture {
  TimeNs horizon = FromMillis(40);
  std::string scheduler = "all";
  flags::Parser parser{"sweep flags"};

  SweepFlagsFixture() {
    parser.AddDuration("horizon", &horizon, "measurement horizon");
    parser.AddChoice("scheduler", &scheduler, {"all", "draconis", "r2p2"}, "system filter");
  }

  bool Parse(std::vector<const char*> args, std::string* error) {
    args.insert(args.begin(), "prog");
    return parser.Parse(static_cast<int>(args.size()), args.data(), error);
  }
};

TEST(FlagsTest, DurationAcceptsUnitSuffixes) {
  SweepFlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--horizon=500us"}, &error)) << error;
  EXPECT_EQ(f.horizon, FromMicros(500));
  ASSERT_TRUE(f.Parse({"--horizon", "40ms"}, &error)) << error;
  EXPECT_EQ(f.horizon, FromMillis(40));
  ASSERT_TRUE(f.Parse({"--horizon=1.5s"}, &error)) << error;
  EXPECT_EQ(f.horizon, FromMillis(1500));
}

TEST(FlagsTest, DurationRejectsMissingOrUnknownUnit) {
  SweepFlagsFixture f;
  std::string error;
  EXPECT_FALSE(f.Parse({"--horizon=40"}, &error));
  EXPECT_FALSE(f.Parse({"--horizon=40min"}, &error));
  EXPECT_FALSE(f.Parse({"--horizon=fast"}, &error));
}

TEST(FlagsTest, DurationDefaultAppearsInUsage) {
  SweepFlagsFixture f;
  EXPECT_NE(f.parser.Usage().find("40.00ms"), std::string::npos);
}

TEST(FlagsTest, ChoiceAcceptsListedValue) {
  SweepFlagsFixture f;
  std::string error;
  ASSERT_TRUE(f.Parse({"--scheduler=r2p2"}, &error)) << error;
  EXPECT_EQ(f.scheduler, "r2p2");
}

TEST(FlagsTest, ChoiceRejectsUnlistedValue) {
  SweepFlagsFixture f;
  std::string error;
  EXPECT_FALSE(f.Parse({"--scheduler=sparrow"}, &error));
  EXPECT_NE(error.find("bad value"), std::string::npos);
}

TEST(FlagsTest, ChoiceAlternativesListedInUsage) {
  SweepFlagsFixture f;
  EXPECT_NE(f.parser.Usage().find("[all|draconis|r2p2]"), std::string::npos);
}

// --- tracer ------------------------------------------------------------------

TEST(TracingTest, RecordsPassesThroughToInnerProgram) {
  sim::Simulator simulator;
  net::NetworkConfig nc;
  nc.max_jitter = 0;
  net::Network network(&simulator, nc);
  core::FcfsPolicy policy;
  core::DraconisProgram program(&policy, core::DraconisConfig{});
  p4::TracingProgram tracer(&program, 16);
  p4::SwitchPipeline pipeline(&simulator, &tracer, p4::PipelineConfig{});
  const net::NodeId sw = pipeline.AttachNetwork(&network);

  class Sink : public net::Endpoint {
   public:
    void HandlePacket(net::Packet) override {}
  } sink;
  const net::NodeId client = network.Register(&sink, net::HostProfile::Wire());

  net::Packet submission;
  submission.op = net::OpCode::kJobSubmission;
  submission.dst = sw;
  net::TaskInfo task;
  task.id = net::TaskId{1, 1, 1};
  submission.tasks = {task};
  network.Send(client, std::move(submission));
  simulator.RunAll();

  EXPECT_EQ(program.counters().tasks_enqueued, 1u);  // the inner program ran
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].op, net::OpCode::kJobSubmission);
  EXPECT_NE(events[0].summary().find("job_submission"), std::string::npos);
}

TEST(TracingTest, FilterAndEviction) {
  sim::Simulator simulator;
  net::NetworkConfig nc;
  nc.max_jitter = 0;
  net::Network network(&simulator, nc);
  core::FcfsPolicy policy;
  core::DraconisProgram program(&policy, core::DraconisConfig{});
  p4::TracingProgram tracer(&program, /*capacity=*/3);
  tracer.SetFilter(
      [](const net::Packet& pkt) { return pkt.op == net::OpCode::kTaskRequest; });
  p4::SwitchPipeline pipeline(&simulator, &tracer, p4::PipelineConfig{});
  const net::NodeId sw = pipeline.AttachNetwork(&network);

  class Sink : public net::Endpoint {
   public:
    void HandlePacket(net::Packet) override {}
  } sink;
  const net::NodeId node = network.Register(&sink, net::HostProfile::Wire());

  for (int i = 0; i < 5; ++i) {
    net::Packet request;
    request.op = net::OpCode::kTaskRequest;
    request.dst = sw;
    request.rtrv_prio = 1;
    network.Send(node, std::move(request));
  }
  net::Packet other;
  other.op = net::OpCode::kOther;
  other.dst = sw;
  network.Send(node, std::move(other));
  simulator.RunAll();

  EXPECT_EQ(tracer.recorded(), 5u);         // the kOther packet was filtered
  EXPECT_EQ(tracer.events().size(), 3u);    // ring capacity
}

// --- trace I/O ----------------------------------------------------------------

TEST(TraceIoTest, RoundTrip) {
  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 50000;
  spec.duration = FromMillis(5);
  spec.tasks_per_job = 3;
  spec.seed = 99;
  workload::JobStream original = workload::GenerateOpenLoop(spec);
  original[0].tasks[0].tprops = 7;
  original[0].tasks[1].oversized_param_bytes = 4096;

  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_TRUE(workload::SaveJobStream(path, original));

  workload::JobStream loaded;
  std::string error;
  ASSERT_TRUE(workload::LoadJobStream(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t j = 0; j < original.size(); ++j) {
    EXPECT_EQ(loaded[j].at, original[j].at);
    ASSERT_EQ(loaded[j].tasks.size(), original[j].tasks.size());
    for (size_t t = 0; t < original[j].tasks.size(); ++t) {
      EXPECT_EQ(loaded[j].tasks[t].duration, original[j].tasks[t].duration);
      EXPECT_EQ(loaded[j].tasks[t].tprops, original[j].tasks[t].tprops);
      EXPECT_EQ(loaded[j].tasks[t].oversized_param_bytes,
                original[j].tasks[t].oversized_param_bytes);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, HandAuthoredMinimalColumns) {
  const std::string path = ::testing::TempDir() + "/trace_minimal.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# comment\n0,1000,100000,2\n0,1000,200000,1\n1,5000,50000,0\n");
  std::fclose(f);

  workload::JobStream stream;
  std::string error;
  ASSERT_TRUE(workload::LoadJobStream(path, &stream, &error)) << error;
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].at, 1000);
  EXPECT_EQ(stream[0].tasks.size(), 2u);
  EXPECT_EQ(stream[0].tasks[1].duration, 200000);
  EXPECT_EQ(stream[1].tasks[0].tprops, 0u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsUnsortedArrivals) {
  const std::string path = ::testing::TempDir() + "/trace_unsorted.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "0,5000,100,0\n1,1000,100,0\n");
  std::fclose(f);

  workload::JobStream stream;
  std::string error;
  EXPECT_FALSE(workload::LoadJobStream(path, &stream, &error));
  EXPECT_NE(error.find("not sorted"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileFails) {
  workload::JobStream stream;
  std::string error;
  EXPECT_FALSE(workload::LoadJobStream("/nonexistent/trace.csv", &stream, &error));
}

}  // namespace
}  // namespace draconis
