#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/time.h"

namespace draconis {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(ToMicros(FromMicros(4.7)), 4.7);
  EXPECT_DOUBLE_EQ(ToMillis(FromMillis(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToSeconds(FromSeconds(0.25)), 0.25);
  EXPECT_EQ(FromMicros(1.0), kMicrosecond);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(FromMicros(4.7)), "4.70us");
  EXPECT_EQ(FormatDuration(FromMillis(13.3)), "13.30ms");
  EXPECT_EQ(FormatDuration(FromSeconds(2)), "2.000s");
}

TEST(TimeTest, FormatDurationNegative) { EXPECT_EQ(FormatDuration(-1500), "-1.50us"); }

TEST(CheckTest, PassingCheckDoesNothing) { EXPECT_NO_THROW(DRACONIS_CHECK(1 + 1 == 2)); }

TEST(CheckTest, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(DRACONIS_CHECK(false), CheckFailure);
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    DRACONIS_CHECK_MSG(false, "queue wedged");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("queue wedged"), std::string::npos);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(13);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) {
    seen[rng.NextBelow(8)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(21);
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(250.0);
  }
  EXPECT_NEAR(sum / kN, 250.0, 5.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LognormalMeanMatchesTarget) {
  Rng rng(8);
  double sum = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextLognormalWithMean(500.0, 1.0);
  }
  EXPECT_NEAR(sum / kN, 500.0, 15.0);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextBoundedPareto(1.0, 300.0, 1.3);
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 300.0);
  }
}

TEST(RngTest, BoundedParetoIsSkewed) {
  Rng rng(11);
  int small = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    small += rng.NextBoundedPareto(1.0, 300.0, 1.3) < 10.0 ? 1 : 0;
  }
  // Most mass near the lower bound.
  EXPECT_GT(small, kN * 3 / 4);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(12);
  int yes = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    yes += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(yes) / kN, 0.25, 0.01);
}

TEST(RngTest, PoissonGapPositiveAndMeanMatches) {
  Rng rng(14);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const TimeNs gap = rng.NextPoissonGap(100000.0);  // mean 10us
    ASSERT_GT(gap, 0);
    sum += static_cast<double>(gap);
  }
  EXPECT_NEAR(sum / kN, 10000.0, 200.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(ParseDurationTest, AcceptsEveryUnit) {
  TimeNs out = 0;
  ASSERT_TRUE(ParseDuration("250ns", &out));
  EXPECT_EQ(out, 250);
  ASSERT_TRUE(ParseDuration("500us", &out));
  EXPECT_EQ(out, FromMicros(500));
  ASSERT_TRUE(ParseDuration("40ms", &out));
  EXPECT_EQ(out, FromMillis(40));
  ASSERT_TRUE(ParseDuration("2s", &out));
  EXPECT_EQ(out, FromSeconds(2));
}

TEST(ParseDurationTest, AcceptsFractionsAndBareZero) {
  TimeNs out = 0;
  ASSERT_TRUE(ParseDuration("1.5s", &out));
  EXPECT_EQ(out, FromMillis(1500));
  ASSERT_TRUE(ParseDuration("0.25ms", &out));
  EXPECT_EQ(out, FromMicros(250));
  ASSERT_TRUE(ParseDuration("0", &out));
  EXPECT_EQ(out, 0);
}

TEST(ParseDurationTest, RejectsMalformedInput) {
  TimeNs out = 0;
  EXPECT_FALSE(ParseDuration("", &out));
  EXPECT_FALSE(ParseDuration("40", &out));       // unit required
  EXPECT_FALSE(ParseDuration("40min", &out));    // unknown unit
  EXPECT_FALSE(ParseDuration("ms", &out));       // no number
  EXPECT_FALSE(ParseDuration("40ms extra", &out));
  EXPECT_FALSE(ParseDuration("-5ms", &out));     // durations are non-negative
}

TEST(ParseDurationTest, RoundTripsFormatDuration) {
  for (TimeNs value : {TimeNs{250}, FromMicros(500), FromMillis(40), FromSeconds(3)}) {
    TimeNs out = 0;
    ASSERT_TRUE(ParseDuration(FormatDuration(value), &out)) << FormatDuration(value);
    EXPECT_EQ(out, value);
  }
}

TEST(JsonWriterTest, NestedDocument) {
  json::Writer w;
  w.BeginObject();
  w.Key("name").String("fig05a");
  w.Key("n").Int(-3);
  w.Key("u").UInt(7);
  w.Key("ok").Bool(true);
  w.Key("nothing").Null();
  w.Key("xs").BeginArray();
  w.Double(0.5);
  w.Double(1000);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\n  \"name\": \"fig05a\",\n  \"n\": -3,\n  \"u\": 7,\n  \"ok\": true,\n"
            "  \"nothing\": null,\n  \"xs\": [\n    0.5,\n    1000\n  ]\n}");
}

TEST(JsonWriterTest, EscapesStrings) {
  json::Writer w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\nd\te");
  w.EndObject();
  EXPECT_NE(w.str().find(R"(a\"b\\c\nd\te)"), std::string::npos);
}

TEST(JsonWriterTest, DoubleFormattingRoundTrips) {
  // Shortest representation that parses back to the same bits.
  EXPECT_EQ(json::Writer::FormatDouble(0.1), "0.1");
  EXPECT_EQ(json::Writer::FormatDouble(1.0 / 3.0), "0.33333333333333331");
  EXPECT_EQ(json::Writer::FormatDouble(1e21), "1e+21");
  EXPECT_EQ(json::Writer::FormatDouble(42.0), "42");
}

// ---------------------------------------------------------------------------
// json::Parse (the reader side, used by fault plans)
// ---------------------------------------------------------------------------

TEST(JsonParseTest, ParsesEveryValueType) {
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Parse(
      R"({"s": "hi\n", "i": -42, "d": 2.5, "t": true, "f": false, "n": null,
          "a": [1, 2, 3], "o": {"nested": "yes"}})",
      &doc, &error))
      << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("s")->AsString(), "hi\n");
  EXPECT_EQ(doc.Find("i")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(doc.Find("d")->AsDouble(), 2.5);
  EXPECT_TRUE(doc.Find("t")->AsBool());
  EXPECT_FALSE(doc.Find("f")->AsBool());
  EXPECT_TRUE(doc.Find("n")->is_null());
  ASSERT_TRUE(doc.Find("a")->is_array());
  ASSERT_EQ(doc.Find("a")->AsArray().size(), 3u);
  EXPECT_EQ(doc.Find("a")->AsArray()[2].AsInt(), 3);
  EXPECT_EQ(doc.Find("o")->Find("nested")->AsString(), "yes");
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParseTest, KeysPreserveDocumentOrder) {
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Parse(R"({"z": 1, "a": 2, "m": 3})", &doc, &error)) << error;
  EXPECT_EQ(doc.Keys(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  json::Writer w;
  w.BeginObject();
  w.Key("name").String("plan \"x\"\n");
  w.Key("count").Int(7);
  w.Key("ratio").Double(0.125);
  w.Key("items").BeginArray();
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Parse(w.str(), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("name")->AsString(), "plan \"x\"\n");
  EXPECT_EQ(doc.Find("count")->AsInt(), 7);
  EXPECT_DOUBLE_EQ(doc.Find("ratio")->AsDouble(), 0.125);
  ASSERT_EQ(doc.Find("items")->AsArray().size(), 2u);
  EXPECT_TRUE(doc.Find("items")->AsArray()[0].AsBool());
  EXPECT_TRUE(doc.Find("items")->AsArray()[1].is_null());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  for (const char* bad : {
           "",                       // empty input
           "{",                      // unterminated object
           "[1, 2",                  // unterminated array
           "{\"a\" 1}",              // missing colon
           "{\"a\": 1,}",            // trailing comma
           "\"unterminated",         // unterminated string
           "{\"a\": 1e}",            // malformed number
           "tru",                    // truncated literal
           "{\"a\": 1} extra",       // trailing garbage
       }) {
    json::Value doc;
    std::string error;
    EXPECT_FALSE(json::Parse(bad, &doc, &error)) << "input: " << bad;
    EXPECT_FALSE(error.empty()) << "input: " << bad;
  }
}

TEST(JsonParseTest, ErrorsCarryLineNumbers) {
  json::Value doc;
  std::string error;
  ASSERT_FALSE(json::Parse("{\n  \"a\": 1,\n  oops\n}", &doc, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

}  // namespace
}  // namespace draconis
