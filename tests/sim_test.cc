#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace draconis::sim {
namespace {

// Every engine test runs on both queue backends: the contract (ordering,
// cancellation, clock behavior) is backend-independent.
class SimulatorTest : public ::testing::TestWithParam<QueueBackend> {};

std::string BackendName(const ::testing::TestParamInfo<QueueBackend>& info) {
  return QueueBackendName(info.param);
}

TEST_P(SimulatorTest, StartsAtZero) {
  Simulator s(GetParam());
  EXPECT_EQ(s.Now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.queue_backend(), GetParam());
}

TEST_P(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator s(GetParam());
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST_P(SimulatorTest, SameTimeEventsRunInSchedulingOrder) {
  Simulator s(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST_P(SimulatorTest, AfterIsRelative) {
  Simulator s(GetParam());
  TimeNs fired_at = -1;
  s.ScheduleAt(100, [&] { s.ScheduleAfter(50, [&] { fired_at = s.Now(); }); });
  s.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST_P(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator s(GetParam());
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(20, [&] { ++fired; });
  s.ScheduleAt(21, [&] { ++fired; });
  const uint64_t ran = s.RunUntil(20);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 20);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST_P(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator s(GetParam());
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST_P(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s(GetParam());
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      s.ScheduleAfter(1, chain);
    }
  };
  s.ScheduleAfter(1, chain);
  s.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.Now(), 100);
}

TEST_P(SimulatorTest, SchedulingInThePastThrows) {
  Simulator s(GetParam());
  s.ScheduleAt(100, [] {});
  s.RunAll();
  EXPECT_THROW(s.ScheduleAt(50, [] {}), CheckFailure);
}

TEST_P(SimulatorTest, NegativeDelayThrows) {
  Simulator s(GetParam());
  EXPECT_THROW(s.ScheduleAfter(-1, [] {}), CheckFailure);
}

TEST_P(SimulatorTest, CancelPreventsExecution) {
  Simulator s(GetParam());
  bool fired = false;
  EventHandle h = s.ScheduleAfter(10, [&] { fired = true; }, kCancellable);
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST_P(SimulatorTest, CancelAfterFiringIsSafe) {
  Simulator s(GetParam());
  bool fired = false;
  EventHandle h = s.ScheduleAfter(10, [&] { fired = true; }, kCancellable);
  s.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.pending());
  h.Cancel();  // no effect, no crash
}

TEST_P(SimulatorTest, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.Cancel();
}

TEST_P(SimulatorTest, ClearDropsPendingEvents) {
  Simulator s(GetParam());
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(20, [&] { ++fired; });
  s.Clear();
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulatorTest, ClearFromWithinEventStopsTheRun) {
  Simulator s(GetParam());
  int fired = 0;
  s.ScheduleAt(10, [&] {
    ++fired;
    s.Clear();
  });
  s.ScheduleAt(20, [&] { ++fired; });
  s.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, ExecutedEventsCounter) {
  Simulator s(GetParam());
  for (int i = 0; i < 5; ++i) {
    s.ScheduleAt(i, [] {});
  }
  s.RunAll();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST_P(SimulatorTest, CancelledEventsAreNotCountedAsExecuted) {
  Simulator s(GetParam());
  EventHandle h = s.ScheduleAt(5, [] {}, kCancellable);
  h.Cancel();
  s.ScheduleAt(6, [] {});
  s.RunAll();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST_P(SimulatorTest, DoubleCancelIsSafe) {
  Simulator s(GetParam());
  bool fired = false;
  EventHandle h = s.ScheduleAfter(10, [&] { fired = true; }, kCancellable);
  h.Cancel();
  h.Cancel();  // idempotent
  EXPECT_FALSE(h.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST_P(SimulatorTest, HandleCopiesObserveEachOthersCancellation) {
  Simulator s(GetParam());
  bool fired = false;
  EventHandle a = s.ScheduleAfter(10, [&] { fired = true; }, kCancellable);
  EventHandle b = a;
  EXPECT_TRUE(b.pending());
  a.Cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  b.Cancel();  // already cancelled via the copy; still safe
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST_P(SimulatorTest, PendingFlipsExactlyAtFireTime) {
  Simulator s(GetParam());
  EventHandle h;
  bool pending_during_fire = true;
  h = s.ScheduleAt(10, [&] { pending_during_fire = h.pending(); }, kCancellable);
  s.RunUntil(9);
  EXPECT_TRUE(h.pending());  // one tick before the deadline
  s.RunUntil(10);
  EXPECT_FALSE(pending_during_fire);  // already consumed while running
  EXPECT_FALSE(h.pending());
}

TEST_P(SimulatorTest, StaleHandleCannotCancelRecycledSlot) {
  Simulator s(GetParam());
  // Fire (and thereby free) the first cancellable event's slot...
  EventHandle stale = s.ScheduleAt(1, [] {}, kCancellable);
  s.RunAll();
  EXPECT_FALSE(stale.pending());
  // ...then let a fresh event recycle that slot (LIFO free list: the very
  // next allocation reuses it). The stale handle sees the new generation:
  // pending() stays false and Cancel() must not touch the new occupant.
  bool fired = false;
  EventHandle fresh = s.ScheduleAt(5, [&] { fired = true; }, kCancellable);
  EXPECT_FALSE(stale.pending());
  stale.Cancel();
  EXPECT_TRUE(fresh.pending());
  s.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(stale.pending());
}

TEST_P(SimulatorTest, ClearInvalidatesOutstandingHandles) {
  Simulator s(GetParam());
  bool fired = false;
  EventHandle h = s.ScheduleAt(10, [&] { fired = true; }, kCancellable);
  s.Clear();
  EXPECT_FALSE(h.pending());
  h.Cancel();  // no-op on the cleared engine
  s.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending_events(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SimulatorTest,
                         ::testing::ValuesIn(AllQueueBackends()), BackendName);

// --- Timer (the reusable-event path) ----------------------------------------

class TimerTest : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(TimerTest, FiresAtScheduledTime) {
  Simulator s(GetParam());
  TimeNs fired_at = -1;
  Timer t(&s, [&] { fired_at = s.Now(); });
  EXPECT_FALSE(t.pending());
  t.ScheduleAt(25);
  EXPECT_TRUE(t.pending());
  s.RunAll();
  EXPECT_EQ(fired_at, 25);
  EXPECT_FALSE(t.pending());
}

TEST_P(TimerTest, RearmReplacesPendingOccurrence) {
  Simulator s(GetParam());
  int fired = 0;
  Timer t(&s, [&] { ++fired; });
  t.ScheduleAt(10);
  t.ScheduleAt(30);  // supersedes the first occurrence
  s.RunUntil(20);
  EXPECT_EQ(fired, 0);  // the time-10 occurrence was replaced, not fired
  s.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 30);
}

TEST_P(TimerTest, CancelDisarms) {
  Simulator s(GetParam());
  int fired = 0;
  Timer t(&s, [&] { ++fired; });
  t.ScheduleAfter(10);
  t.Cancel();
  EXPECT_FALSE(t.pending());
  t.Cancel();  // idempotent
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST_P(TimerTest, CallbackCanRearmItsOwnTimer) {
  Simulator s(GetParam());
  int fired = 0;
  Timer t;
  t.Bind(&s, [&] {
    if (++fired < 5) {
      t.ScheduleAfter(10);
    }
  });
  t.ScheduleAt(10);
  s.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.Now(), 50);
}

TEST_P(TimerTest, RearmKeepsSchedulingOrderSemantics) {
  // A timer occurrence armed after a one-shot event at the same instant
  // runs after it (seq is assigned at arm time), and vice versa.
  Simulator s(GetParam());
  std::vector<int> order;
  Timer t(&s, [&] { order.push_back(2); });
  s.ScheduleAt(5, [&] { order.push_back(1); });
  t.ScheduleAt(5);
  s.ScheduleAt(5, [&] { order.push_back(3); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(TimerTest, DestructorCancelsPendingOccurrence) {
  Simulator s(GetParam());
  int fired = 0;
  {
    Timer t(&s, [&] { ++fired; });
    t.ScheduleAfter(10);
    EXPECT_EQ(s.pending_events(), 1u);
  }
  EXPECT_EQ(s.pending_events(), 0u);
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST_P(TimerTest, SlotRecyclingAfterTimerDeathIsSafe) {
  Simulator s(GetParam());
  {
    Timer t(&s, [] {});
    t.ScheduleAfter(100);
  }  // timer dies with an occurrence still keyed in the queue
  // The freed slot is recycled by ordinary events; the stale timer key must
  // not fire them early or at all.
  int fired = 0;
  s.ScheduleAt(100, [&] { ++fired; });
  s.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.executed_events(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, TimerTest,
                         ::testing::ValuesIn(AllQueueBackends()), BackendName);

}  // namespace
}  // namespace draconis::sim
