#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace draconis::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(5, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator s;
  TimeNs fired_at = -1;
  s.At(100, [&] { s.After(50, [&] { fired_at = s.Now(); }); });
  s.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] { ++fired; });
  s.At(20, [&] { ++fired; });
  s.At(21, [&] { ++fired; });
  const uint64_t ran = s.RunUntil(20);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 20);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      s.After(1, chain);
    }
  };
  s.After(1, chain);
  s.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.Now(), 100);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator s;
  s.At(100, [] {});
  s.RunAll();
  EXPECT_THROW(s.At(50, [] {}), CheckFailure);
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.After(-1, [] {}), CheckFailure);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.CancellableAfter(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFiringIsSafe) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.CancellableAfter(10, [&] { fired = true; });
  s.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.pending());
  h.Cancel();  // no effect, no crash
}

TEST(SimulatorTest, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.Cancel();
}

TEST(SimulatorTest, ClearDropsPendingEvents) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] { ++fired; });
  s.At(20, [&] { ++fired; });
  s.Clear();
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ClearFromWithinEventStopsTheRun) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] {
    ++fired;
    s.Clear();
  });
  s.At(20, [&] { ++fired; });
  s.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) {
    s.At(i, [] {});
  }
  s.RunAll();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(SimulatorTest, CancelledEventsAreNotCountedAsExecuted) {
  Simulator s;
  EventHandle h = s.CancellableAt(5, [] {});
  h.Cancel();
  s.At(6, [] {});
  s.RunAll();
  EXPECT_EQ(s.executed_events(), 1u);
}

}  // namespace
}  // namespace draconis::sim
