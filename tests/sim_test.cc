#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulator.h"

namespace draconis::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.At(30, [&] { order.push_back(3); });
  s.At(10, [&] { order.push_back(1); });
  s.At(20, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.At(5, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator s;
  TimeNs fired_at = -1;
  s.At(100, [&] { s.After(50, [&] { fired_at = s.Now(); }); });
  s.RunAll();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] { ++fired; });
  s.At(20, [&] { ++fired; });
  s.At(21, [&] { ++fired; });
  const uint64_t ran = s.RunUntil(20);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 20);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      s.After(1, chain);
    }
  };
  s.After(1, chain);
  s.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.Now(), 100);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator s;
  s.At(100, [] {});
  s.RunAll();
  EXPECT_THROW(s.At(50, [] {}), CheckFailure);
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.After(-1, [] {}), CheckFailure);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.CancellableAfter(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.Cancel();
  EXPECT_FALSE(h.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFiringIsSafe) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.CancellableAfter(10, [&] { fired = true; });
  s.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.pending());
  h.Cancel();  // no effect, no crash
}

TEST(SimulatorTest, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.Cancel();
}

TEST(SimulatorTest, ClearDropsPendingEvents) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] { ++fired; });
  s.At(20, [&] { ++fired; });
  s.Clear();
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ClearFromWithinEventStopsTheRun) {
  Simulator s;
  int fired = 0;
  s.At(10, [&] {
    ++fired;
    s.Clear();
  });
  s.At(20, [&] { ++fired; });
  s.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, ExecutedEventsCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) {
    s.At(i, [] {});
  }
  s.RunAll();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(SimulatorTest, CancelledEventsAreNotCountedAsExecuted) {
  Simulator s;
  EventHandle h = s.CancellableAt(5, [] {});
  h.Cancel();
  s.At(6, [] {});
  s.RunAll();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(SimulatorTest, DoubleCancelIsSafe) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.CancellableAfter(10, [&] { fired = true; });
  h.Cancel();
  h.Cancel();  // idempotent
  EXPECT_FALSE(h.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, HandleCopiesObserveEachOthersCancellation) {
  Simulator s;
  bool fired = false;
  EventHandle a = s.CancellableAfter(10, [&] { fired = true; });
  EventHandle b = a;
  EXPECT_TRUE(b.pending());
  a.Cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  b.Cancel();  // already cancelled via the copy; still safe
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, PendingFlipsExactlyAtFireTime) {
  Simulator s;
  EventHandle h;
  bool pending_during_fire = true;
  h = s.CancellableAt(10, [&] { pending_during_fire = h.pending(); });
  s.RunUntil(9);
  EXPECT_TRUE(h.pending());  // one tick before the deadline
  s.RunUntil(10);
  EXPECT_FALSE(pending_during_fire);  // already consumed while running
  EXPECT_FALSE(h.pending());
}

TEST(SimulatorTest, StaleHandleCannotCancelRecycledSlot) {
  Simulator s;
  // Fire (and thereby free) the first cancellable event's slot...
  EventHandle stale = s.CancellableAt(1, [] {});
  s.RunAll();
  EXPECT_FALSE(stale.pending());
  // ...then let a fresh event recycle that slot (LIFO free list: the very
  // next allocation reuses it).
  bool fired = false;
  EventHandle fresh = s.CancellableAt(5, [&] { fired = true; });
  stale.Cancel();  // generation mismatch: must not touch the new occupant
  EXPECT_TRUE(fresh.pending());
  s.RunAll();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ClearInvalidatesOutstandingHandles) {
  Simulator s;
  bool fired = false;
  EventHandle h = s.CancellableAt(10, [&] { fired = true; });
  s.Clear();
  EXPECT_FALSE(h.pending());
  h.Cancel();  // no-op on the cleared engine
  s.RunAll();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending_events(), 0u);
}

// --- Timer (the reusable-event path) ----------------------------------------

TEST(TimerTest, FiresAtScheduledTime) {
  Simulator s;
  TimeNs fired_at = -1;
  Timer t(&s, [&] { fired_at = s.Now(); });
  EXPECT_FALSE(t.pending());
  t.ScheduleAt(25);
  EXPECT_TRUE(t.pending());
  s.RunAll();
  EXPECT_EQ(fired_at, 25);
  EXPECT_FALSE(t.pending());
}

TEST(TimerTest, RearmReplacesPendingOccurrence) {
  Simulator s;
  int fired = 0;
  Timer t(&s, [&] { ++fired; });
  t.ScheduleAt(10);
  t.ScheduleAt(30);  // supersedes the first occurrence
  s.RunUntil(20);
  EXPECT_EQ(fired, 0);  // the time-10 occurrence was replaced, not fired
  s.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 30);
}

TEST(TimerTest, CancelDisarms) {
  Simulator s;
  int fired = 0;
  Timer t(&s, [&] { ++fired; });
  t.ScheduleAfter(10);
  t.Cancel();
  EXPECT_FALSE(t.pending());
  t.Cancel();  // idempotent
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, CallbackCanRearmItsOwnTimer) {
  Simulator s;
  int fired = 0;
  Timer t;
  t.Bind(&s, [&] {
    if (++fired < 5) {
      t.ScheduleAfter(10);
    }
  });
  t.ScheduleAt(10);
  s.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.Now(), 50);
}

TEST(TimerTest, RearmKeepsSchedulingOrderSemantics) {
  // A timer occurrence armed after a one-shot event at the same instant
  // runs after it (seq is assigned at arm time), and vice versa.
  Simulator s;
  std::vector<int> order;
  Timer t(&s, [&] { order.push_back(2); });
  s.At(5, [&] { order.push_back(1); });
  t.ScheduleAt(5);
  s.At(5, [&] { order.push_back(3); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerTest, DestructorCancelsPendingOccurrence) {
  Simulator s;
  int fired = 0;
  {
    Timer t(&s, [&] { ++fired; });
    t.ScheduleAfter(10);
    EXPECT_EQ(s.pending_events(), 1u);
  }
  EXPECT_EQ(s.pending_events(), 0u);
  s.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, SlotRecyclingAfterTimerDeathIsSafe) {
  Simulator s;
  {
    Timer t(&s, [] {});
    t.ScheduleAfter(100);
  }  // timer dies with an occurrence still keyed in the heap
  // The freed slot is recycled by ordinary events; the stale timer key must
  // not fire them early or at all.
  int fired = 0;
  s.At(100, [&] { ++fired; });
  s.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.executed_events(), 1u);
}

}  // namespace
}  // namespace draconis::sim
