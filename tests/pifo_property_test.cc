// Oracle differential test for the p4::Pifo primitive (docs/pifo.md).
//
// A naive reference — a flat vector of (rank, seq, id) whose pop is a linear
// scan for the minimum under the (rank, seq) lexicographic order — is driven
// through the same randomized push/pop interleavings as the real bounded
// heap, at small capacities so overflow fires constantly. At every step the
// admit/reject/evict decision, the popped element, the size, and the head
// rank must match exactly. 32 seeds x 10k operations per overflow policy,
// the same rigor as event_queue_property_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "p4/pifo.h"
#include "p4/register.h"

namespace draconis::p4 {
namespace {

struct RefItem {
  uint64_t rank = 0;
  uint64_t seq = 0;
  int id = 0;
};

bool RefBefore(const RefItem& a, const RefItem& b) {
  return a.rank != b.rank ? a.rank < b.rank : a.seq < b.seq;
}

// The oracle: mirrors the PIFO contract directly from its spec — every push
// attempt consumes one seq; pop removes the (rank, seq) minimum; at capacity
// kRejectArrival refuses, kEvictLowestPriority displaces the (rank, seq)
// maximum iff the incoming element orders before it.
class ReferencePifo {
 public:
  ReferencePifo(size_t capacity, PifoOverflow overflow)
      : capacity_(capacity), overflow_(overflow) {}

  struct PushOutcome {
    bool admitted = false;
    bool evicted = false;
    int evicted_id = 0;
    uint64_t evicted_rank = 0;
  };

  PushOutcome Push(uint64_t rank, int id) {
    const uint64_t seq = next_seq_++;
    PushOutcome outcome;
    if (items_.size() == capacity_) {
      if (overflow_ == PifoOverflow::kRejectArrival) {
        return outcome;
      }
      auto worst = std::max_element(items_.begin(), items_.end(), RefBefore);
      const RefItem incoming{rank, seq, id};
      if (!RefBefore(incoming, *worst)) {
        return outcome;
      }
      outcome.evicted = true;
      outcome.evicted_id = worst->id;
      outcome.evicted_rank = worst->rank;
      items_.erase(worst);
    }
    items_.push_back(RefItem{rank, seq, id});
    outcome.admitted = true;
    return outcome;
  }

  struct PopOutcome {
    bool got = false;
    int id = 0;
    uint64_t rank = 0;
  };

  PopOutcome Pop() {
    PopOutcome outcome;
    if (items_.empty()) {
      return outcome;
    }
    auto head = std::min_element(items_.begin(), items_.end(), RefBefore);
    outcome.got = true;
    outcome.id = head->id;
    outcome.rank = head->rank;
    items_.erase(head);
    return outcome;
  }

  size_t size() const { return items_.size(); }
  uint64_t min_rank() const {
    return std::min_element(items_.begin(), items_.end(), RefBefore)->rank;
  }

 private:
  size_t capacity_;
  PifoOverflow overflow_;
  uint64_t next_seq_ = 0;
  std::vector<RefItem> items_;
};

void DriveSeed(uint64_t seed, int steps, size_t capacity, PifoOverflow overflow) {
  Pifo<int> pifo("pifo_under_test", capacity, overflow);
  ReferencePifo ref(capacity, overflow);
  Rng rng(seed);
  int next_id = 0;

  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.NextBelow(100);
    if (op < 55) {
      // Push. Half the ranks land in a tiny range so rank ties (and the FIFO
      // tie-break) are exercised hard; the rest spread wide.
      const uint64_t rank = rng.NextBool(0.5) ? rng.NextBelow(4) : rng.NextBelow(1000000);
      const int id = next_id++;
      PacketPass pass;
      const Pifo<int>::PushResult got = pifo.Push(pass, rank, id);
      const ReferencePifo::PushOutcome want = ref.Push(rank, id);
      ASSERT_EQ(got.admitted, want.admitted) << "seed=" << seed << " step=" << step;
      ASSERT_EQ(got.evicted, want.evicted) << "seed=" << seed << " step=" << step;
      if (want.evicted) {
        ASSERT_EQ(got.evicted_value, want.evicted_id) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(got.evicted_rank, want.evicted_rank) << "seed=" << seed << " step=" << step;
      }
    } else {
      // Pop.
      PacketPass pass;
      const Pifo<int>::PopResult got = pifo.Pop(pass);
      const ReferencePifo::PopOutcome want = ref.Pop();
      ASSERT_EQ(got.got, want.got) << "seed=" << seed << " step=" << step;
      if (want.got) {
        ASSERT_EQ(got.value, want.id) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(got.rank, want.rank) << "seed=" << seed << " step=" << step;
      }
    }

    // Invariants after every operation.
    ASSERT_EQ(pifo.cp_size(), ref.size()) << "seed=" << seed << " step=" << step;
    if (ref.size() > 0) {
      ASSERT_EQ(pifo.cp_min_rank(), ref.min_rank()) << "seed=" << seed << " step=" << step;
    }
  }

  // Final drain must agree element-for-element.
  while (ref.size() > 0) {
    PacketPass pass;
    const Pifo<int>::PopResult got = pifo.Pop(pass);
    const ReferencePifo::PopOutcome want = ref.Pop();
    ASSERT_TRUE(got.got);
    ASSERT_EQ(got.value, want.id) << "seed=" << seed;
    ASSERT_EQ(got.rank, want.rank) << "seed=" << seed;
  }
  ASSERT_TRUE(pifo.cp_empty());
}

TEST(PifoPropertyTest, RejectArrivalMatchesReferenceAcross32Seeds) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    DriveSeed(seed, 10000, /*capacity=*/16, PifoOverflow::kRejectArrival);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(PifoPropertyTest, EvictLowestPriorityMatchesReferenceAcross32Seeds) {
  for (uint64_t seed = 201; seed <= 232; ++seed) {
    DriveSeed(seed, 10000, /*capacity=*/8, PifoOverflow::kEvictLowestPriority);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// A deliberately adversarial clustering: every rank equal, so the pop order
// must be exactly the arrival order (the FIFO tie-break), across overflow.
TEST(PifoPropertyTest, EqualRanksDequeueInArrivalOrder) {
  Pifo<int> pifo("ties", 64);
  for (int id = 0; id < 64; ++id) {
    PacketPass pass;
    ASSERT_TRUE(pifo.Push(pass, 7, id).admitted);
  }
  {
    // Full: the arrival is refused, never an earlier resident.
    PacketPass pass;
    EXPECT_FALSE(pifo.Push(pass, 7, 999).admitted);
  }
  for (int id = 0; id < 64; ++id) {
    PacketPass pass;
    const Pifo<int>::PopResult pop = pifo.Pop(pass);
    ASSERT_TRUE(pop.got);
    EXPECT_EQ(pop.value, id);
  }
}

// Under kEvictLowestPriority a rank tie with the worst resident refuses the
// incoming element (it carries the youngest arrival), so FIFO-within-rank
// survives evictions.
TEST(PifoPropertyTest, EvictionPrefersResidentOnRankTie) {
  Pifo<int> pifo("evict_ties", 2, PifoOverflow::kEvictLowestPriority);
  PacketPass p1, p2, p3, p4;
  ASSERT_TRUE(pifo.Push(p1, 5, 1).admitted);
  ASSERT_TRUE(pifo.Push(p2, 9, 2).admitted);
  // Equal-to-worst rank: refused.
  EXPECT_FALSE(pifo.Push(p3, 9, 3).admitted);
  // Better rank: evicts the rank-9 resident.
  const Pifo<int>::PushResult push = pifo.Push(p4, 6, 4);
  EXPECT_TRUE(push.admitted);
  EXPECT_TRUE(push.evicted);
  EXPECT_EQ(push.evicted_value, 2);
  EXPECT_EQ(pifo.cp_evictions(), 1u);
}

// The PIFO block is one register group: a second operation in the same
// packet pass is impossible in hardware and throws in the model.
TEST(PifoPropertyTest, SecondAccessInOnePassThrows) {
  Pifo<int> pifo("single_access", 4);
  PacketPass pass;
  ASSERT_TRUE(pifo.Push(pass, 1, 1).admitted);
  EXPECT_THROW(pifo.Push(pass, 2, 2), draconis::CheckFailure);
  EXPECT_THROW(pifo.Pop(pass), draconis::CheckFailure);
  PacketPass fresh;
  EXPECT_TRUE(pifo.Pop(fresh).got);
}

// Register-budget accounting: capacity x (payload + 8-byte rank).
TEST(PifoPropertyTest, AccountsRegisterBudget) {
  ResourceLedger ledger;
  Pifo<int> pifo("budget", 128, PifoOverflow::kRejectArrival, &ledger,
                 /*wire_bytes_per_element=*/10);
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].name, "budget");
  EXPECT_EQ(ledger.entries()[0].elements, 128u);
  EXPECT_EQ(ledger.total_bytes(), 128u * (10 + 8));
}

}  // namespace
}  // namespace draconis::p4
