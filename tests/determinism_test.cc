// Reproducibility guarantees: identical configurations produce bit-identical
// results, different seeds produce different (but statistically similar)
// runs, and the simulated clock never observes wall time.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/experiment.h"
#include "common/rng.h"
#include "fault/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"
#include "workload/generators.h"
#include "workload/google_trace.h"

namespace draconis {
namespace {

cluster::ExperimentConfig MakeConfig(uint64_t seed) {
  cluster::ExperimentConfig config;
  config.scheduler = cluster::SchedulerKind::kDraconis;
  config.num_workers = 4;
  config.executors_per_worker = 4;
  config.num_clients = 2;
  config.warmup = FromMillis(2);
  config.horizon = FromMillis(20);
  config.max_tasks_per_packet = 1;
  config.seed = seed;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 0.6 * 16 / 100e-6;
  spec.duration = config.horizon;
  spec.service = workload::ServiceTime::PaperExponential();
  spec.seed = seed;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

TEST(DeterminismTest, IdenticalConfigsProduceIdenticalResults) {
  cluster::ExperimentResult a = RunExperiment(MakeConfig(5));
  cluster::ExperimentResult b = RunExperiment(MakeConfig(5));

  EXPECT_EQ(a.metrics->tasks_submitted(), b.metrics->tasks_submitted());
  EXPECT_EQ(a.metrics->tasks_completed(), b.metrics->tasks_completed());
  EXPECT_EQ(a.metrics->sched_delay().count(), b.metrics->sched_delay().count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.metrics->sched_delay().Percentile(q), b.metrics->sched_delay().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(a.metrics->e2e_delay().Percentile(q), b.metrics->e2e_delay().Percentile(q))
        << "q=" << q;
  }
  EXPECT_EQ(a.switch_counters.passes, b.switch_counters.passes);
  EXPECT_EQ(a.counters.tasks_assigned, b.counters.tasks_assigned);
  EXPECT_EQ(a.counters.noops_sent, b.counters.noops_sent);
}

TEST(DeterminismTest, DifferentSeedsDifferButAgreeStatistically) {
  cluster::ExperimentResult a = RunExperiment(MakeConfig(5));
  cluster::ExperimentResult b = RunExperiment(MakeConfig(6));

  // Different event interleavings...
  EXPECT_NE(a.switch_counters.passes, b.switch_counters.passes);
  // ...but the same physics: medians within 2x of each other.
  const double ma = static_cast<double>(a.metrics->sched_delay().Median());
  const double mb = static_cast<double>(b.metrics->sched_delay().Median());
  EXPECT_LT(ma / mb, 2.0);
  EXPECT_LT(mb / ma, 2.0);
}

TEST(DeterminismTest, GoogleTraceGenerationIsSeedStable) {
  workload::GoogleTraceSpec spec;
  spec.duration = FromMillis(50);
  spec.priority_levels = 4;
  spec.seed = 33;
  workload::JobStream a = workload::GenerateGoogleTrace(spec);
  workload::JobStream b = workload::GenerateGoogleTrace(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].at, b[i].at);
    ASSERT_EQ(a[i].tasks.size(), b[i].tasks.size());
    for (size_t t = 0; t < a[i].tasks.size(); ++t) {
      ASSERT_EQ(a[i].tasks[t].duration, b[i].tasks[t].duration);
      ASSERT_EQ(a[i].tasks[t].tprops, b[i].tasks[t].tprops);
    }
  }
}

TEST(DeterminismTest, ParallelPriorityStagesMatchProbingResults) {
  // Both retrieval layouts implement the same service discipline; on the
  // same workload they must schedule every task (completions equal), with
  // the parallel layout recirculating strictly less.
  auto run = [](bool parallel) {
    cluster::ExperimentConfig config = MakeConfig(9);
    config.policy = cluster::PolicyKind::kPriority;
    config.priority_levels = 4;
    workload::TagPriorities(config.stream, {1, 1, 1, 1}, 4);
    // (parallel stages require the shadow-copy dequeue, the default)
    config.parallel_priority_stages = parallel;
    return cluster::RunExperiment(config);
  };
  cluster::ExperimentResult probing = run(false);
  cluster::ExperimentResult parallel = run(true);
  // Nearly everything completes (a sliver may be in flight at the horizon).
  EXPECT_GE(probing.metrics->tasks_completed(),
            probing.metrics->tasks_submitted() * 98 / 100);
  EXPECT_GE(parallel.metrics->tasks_completed(),
            parallel.metrics->tasks_submitted() * 98 / 100);
  EXPECT_LT(parallel.switch_counters.recirculations,
            probing.switch_counters.recirculations);
}

// A shrunk Fig. 5a point: Draconis scheduler, fixed 500 us tasks, open-loop
// load. Guards the event-engine's ordering guarantee end to end — a
// same-seed run must reproduce every metric bit for bit, including the
// cancellation-heavy executor-watchdog and client-timeout traffic.
cluster::ExperimentConfig Fig05aMiniConfig() {
  cluster::ExperimentConfig config;
  config.scheduler = cluster::SchedulerKind::kDraconis;
  config.num_workers = 4;
  config.executors_per_worker = 4;
  config.num_clients = 2;
  config.warmup = FromMillis(2);
  config.horizon = FromMillis(15);
  config.max_tasks_per_packet = 1;
  config.jbsq_k = 3;
  config.timeout_multiplier = 5.0;
  config.seed = 42;

  workload::OpenLoopSpec spec;
  spec.tasks_per_second = 100e3 * 16.0 / 160.0;  // the 100 ktps point, scaled
  spec.duration = config.horizon;
  spec.tasks_per_job = 10;
  spec.service = workload::ServiceTime::Fixed(FromMicros(500));
  spec.seed = config.seed;
  config.stream = workload::GenerateOpenLoop(spec);
  return config;
}

TEST(DeterminismTest, Fig05aShapedRunIsBitIdentical) {
  cluster::ExperimentResult a = RunExperiment(Fig05aMiniConfig());
  cluster::ExperimentResult b = RunExperiment(Fig05aMiniConfig());

  EXPECT_EQ(a.metrics->tasks_submitted(), b.metrics->tasks_submitted());
  EXPECT_EQ(a.metrics->tasks_completed(), b.metrics->tasks_completed());
  EXPECT_GT(a.metrics->tasks_completed(), 0u);
  EXPECT_EQ(a.metrics->sched_delay().count(), b.metrics->sched_delay().count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.metrics->sched_delay().Percentile(q), b.metrics->sched_delay().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(a.metrics->e2e_delay().Percentile(q), b.metrics->e2e_delay().Percentile(q))
        << "q=" << q;
  }
  EXPECT_EQ(a.switch_counters.passes, b.switch_counters.passes);
  EXPECT_EQ(a.counters.tasks_assigned, b.counters.tasks_assigned);
  EXPECT_EQ(a.counters.noops_sent, b.counters.noops_sent);
}

// Pinned goldens: the Fig. 5a mini run, per scheduler kind, against numbers
// captured from a known-good build. These freeze the whole deterministic
// contract — fabric NodeId registration order (scheduler, then workers, then
// clients), the SeedFor domain constants, and the event-engine ordering — so
// any refactor that silently perturbs a stream shows up as a concrete diff
// here, not as a drifted figure. Update the table only for an intentional
// behaviour change, and say so in the commit message.
struct SchedulerGolden {
  cluster::SchedulerKind kind;
  uint64_t completions;
  TimeNs sched_p50;
  TimeNs sched_p99;
  TimeNs e2e_p50;
  TimeNs e2e_p99;
  double throughput_tps;
};

TEST(DeterminismTest, PinnedGoldensPerSchedulerKind) {
  const SchedulerGolden goldens[] = {
      {cluster::SchedulerKind::kDraconis, 130, 7679, 366517, 516095, 869596, 10000.0},
      {cluster::SchedulerKind::kDraconisDpdkServer, 130, 13823, 18132, 523919, 523919,
       10000.0},
      {cluster::SchedulerKind::kDraconisSocketServer, 130, 31231, 44031, 557055, 557055,
       10000.0},
      {cluster::SchedulerKind::kR2P2, 130, 507903, 1004785, 1015807, 1507327, 10000.0},
      {cluster::SchedulerKind::kRackSched, 130, 7551, 369897, 516095, 872611, 10000.0},
      {cluster::SchedulerKind::kSparrow, 130, 24063, 393215, 540671, 899701, 10000.0},
  };
  // The same table must hold on every queue backend — the goldens pin the
  // (at, seq) contract, not one queue implementation.
  for (sim::QueueBackend backend : sim::AllQueueBackends()) {
    SCOPED_TRACE(sim::QueueBackendName(backend));
    for (const SchedulerGolden& golden : goldens) {
      SCOPED_TRACE(cluster::SchedulerKindName(golden.kind));
      cluster::ExperimentConfig config = Fig05aMiniConfig();
      config.scheduler = golden.kind;
      config.sim_queue = backend;
      cluster::ExperimentResult result = RunExperiment(config);
      EXPECT_EQ(result.metrics->tasks_completed(), golden.completions);
      EXPECT_EQ(result.metrics->sched_delay().Percentile(0.50), golden.sched_p50);
      EXPECT_EQ(result.metrics->sched_delay().Percentile(0.99), golden.sched_p99);
      EXPECT_EQ(result.metrics->e2e_delay().Percentile(0.50), golden.e2e_p50);
      EXPECT_EQ(result.metrics->e2e_delay().Percentile(0.99), golden.e2e_p99);
      EXPECT_DOUBLE_EQ(result.throughput_tps, golden.throughput_tps);
    }
  }
}

// The cross-backend contract head-on: a heap run and a ladder run of the
// fig05a-shaped experiment are bit-identical in every metric. Combined with
// the pinned table above this proves the backends interchangeable for every
// published number.
TEST(DeterminismTest, HeapAndLadderBackendsAreBitIdenticalOnFig05a) {
  cluster::ExperimentConfig heap_config = Fig05aMiniConfig();
  heap_config.sim_queue = sim::QueueBackend::kHeap;
  cluster::ExperimentConfig ladder_config = Fig05aMiniConfig();
  ladder_config.sim_queue = sim::QueueBackend::kLadder;

  cluster::ExperimentResult a = RunExperiment(heap_config);
  cluster::ExperimentResult b = RunExperiment(ladder_config);

  EXPECT_EQ(a.metrics->tasks_submitted(), b.metrics->tasks_submitted());
  EXPECT_EQ(a.metrics->tasks_completed(), b.metrics->tasks_completed());
  EXPECT_GT(a.metrics->tasks_completed(), 0u);
  EXPECT_EQ(a.metrics->sched_delay().count(), b.metrics->sched_delay().count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.metrics->sched_delay().Percentile(q), b.metrics->sched_delay().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(a.metrics->e2e_delay().Percentile(q), b.metrics->e2e_delay().Percentile(q))
        << "q=" << q;
  }
  EXPECT_EQ(a.switch_counters.passes, b.switch_counters.passes);
  EXPECT_EQ(a.counters.tasks_assigned, b.counters.tasks_assigned);
  EXPECT_EQ(a.counters.noops_sent, b.counters.noops_sent);
  // And both equal the pinned kDraconis golden.
  EXPECT_EQ(b.metrics->tasks_completed(), 130u);
  EXPECT_EQ(b.metrics->sched_delay().Percentile(0.50), 7679);
  EXPECT_EQ(b.metrics->e2e_delay().Percentile(0.99), 869596);
}

// The PIFO equivalence golden (docs/pifo.md): on an untagged fcfs workload
// every strict-priority rank is zero, so the rank-ordered PIFO degenerates to
// pure FIFO and the run must be bit-identical to the circular-queue pipeline
// — including the pinned kDraconis golden above. Guards both directions: the
// PIFO path cannot drift from the paper pipeline, and the pinned numbers
// cannot silently absorb a PIFO regression.
TEST(DeterminismTest, StrictPriorityPifoIsBitIdenticalToFifoPipeline) {
  cluster::ExperimentResult fifo = RunExperiment(Fig05aMiniConfig());

  cluster::ExperimentConfig config = Fig05aMiniConfig();
  config.switch_policy = core::SwitchPolicy::kStrictPriority;
  cluster::ExperimentResult pifo = RunExperiment(config);

  EXPECT_EQ(fifo.metrics->tasks_submitted(), pifo.metrics->tasks_submitted());
  EXPECT_EQ(fifo.metrics->tasks_completed(), pifo.metrics->tasks_completed());
  EXPECT_EQ(fifo.metrics->sched_delay().count(), pifo.metrics->sched_delay().count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(fifo.metrics->sched_delay().Percentile(q),
              pifo.metrics->sched_delay().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(fifo.metrics->e2e_delay().Percentile(q), pifo.metrics->e2e_delay().Percentile(q))
        << "q=" << q;
  }
  EXPECT_EQ(fifo.switch_counters.passes, pifo.switch_counters.passes);
  EXPECT_EQ(fifo.counters.tasks_assigned, pifo.counters.tasks_assigned);
  EXPECT_EQ(fifo.counters.noops_sent, pifo.counters.noops_sent);

  // And both match the pinned kDraconis golden numbers.
  EXPECT_EQ(pifo.metrics->tasks_completed(), 130u);
  EXPECT_EQ(pifo.metrics->sched_delay().Percentile(0.50), 7679);
  EXPECT_EQ(pifo.metrics->sched_delay().Percentile(0.99), 366517);
  EXPECT_EQ(pifo.metrics->e2e_delay().Percentile(0.50), 516095);
  EXPECT_EQ(pifo.metrics->e2e_delay().Percentile(0.99), 869596);
  EXPECT_DOUBLE_EQ(pifo.throughput_tps, 10000.0);
}

// Every non-default switch policy replays bit-identically for a fixed seed —
// on streams tagged so the ranks are actually non-trivial (priorities,
// deadlines, tenants).
TEST(DeterminismTest, NonDefaultSwitchPoliciesReplayBitIdentically) {
  auto make = [](core::SwitchPolicy policy) {
    cluster::ExperimentConfig config = Fig05aMiniConfig();
    config.switch_policy = policy;
    config.wfq_weights = {3, 1};
    switch (policy) {
      case core::SwitchPolicy::kStrictPriority:
        workload::TagPriorities(config.stream, {1, 2, 3, 4}, 11);
        break;
      case core::SwitchPolicy::kEdf:
        workload::TagDeadlines(config.stream, /*slack=*/3.0, /*jitter_us=*/200, 12);
        break;
      case core::SwitchPolicy::kWfq:
        workload::TagTenants(config.stream, /*num_tenants=*/2, 13);
        break;
      default:
        break;
    }
    return config;
  };
  for (core::SwitchPolicy policy : core::AllSwitchPolicies()) {
    if (policy == core::SwitchPolicy::kFifo) {
      continue;
    }
    SCOPED_TRACE(core::SwitchPolicyName(policy));
    cluster::ExperimentResult a = RunExperiment(make(policy));
    cluster::ExperimentResult b = RunExperiment(make(policy));
    EXPECT_GT(a.metrics->tasks_completed(), 0u);
    EXPECT_EQ(a.metrics->tasks_submitted(), b.metrics->tasks_submitted());
    EXPECT_EQ(a.metrics->tasks_completed(), b.metrics->tasks_completed());
    EXPECT_EQ(a.metrics->sched_delay().count(), b.metrics->sched_delay().count());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(a.metrics->sched_delay().Percentile(q),
                b.metrics->sched_delay().Percentile(q))
          << "q=" << q;
      EXPECT_EQ(a.metrics->e2e_delay().Percentile(q), b.metrics->e2e_delay().Percentile(q))
          << "q=" << q;
    }
    EXPECT_EQ(a.switch_counters.passes, b.switch_counters.passes);
    EXPECT_EQ(a.counters.tasks_assigned, b.counters.tasks_assigned);
    EXPECT_EQ(a.counters.noops_sent, b.counters.noops_sent);
  }
}

// Tracing must be a pure observer: sampling is a hash of the task id (no
// RNG, no scheduled events), so a traced run — at any sampling rate — is
// bit-identical to an untraced one. Guards the recorder threading through
// client/network/switch/executor against accidental behaviour branches.
TEST(DeterminismTest, TracingAtAnyRateIsBitIdenticalToUntraced) {
  auto run = [](bool enabled, uint64_t period) {
    cluster::ExperimentConfig config = Fig05aMiniConfig();
    config.trace.enabled = enabled;
    config.trace.sample_period = period;
    return RunExperiment(config);
  };
  cluster::ExperimentResult off = run(false, 64);
  cluster::ExperimentResult sampled = run(true, 64);
  cluster::ExperimentResult full = run(true, 1);

  ASSERT_EQ(off.trace, nullptr);
  ASSERT_NE(sampled.trace, nullptr);
  ASSERT_NE(full.trace, nullptr);
  EXPECT_GT(full.trace->records().size(), sampled.trace->records().size());

  for (const cluster::ExperimentResult* traced : {&sampled, &full}) {
    EXPECT_EQ(off.metrics->tasks_submitted(), traced->metrics->tasks_submitted());
    EXPECT_EQ(off.metrics->tasks_completed(), traced->metrics->tasks_completed());
    EXPECT_EQ(off.metrics->sched_delay().count(), traced->metrics->sched_delay().count());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(off.metrics->sched_delay().Percentile(q),
                traced->metrics->sched_delay().Percentile(q))
          << "q=" << q;
      EXPECT_EQ(off.metrics->e2e_delay().Percentile(q),
                traced->metrics->e2e_delay().Percentile(q))
          << "q=" << q;
    }
    EXPECT_EQ(off.switch_counters.passes, traced->switch_counters.passes);
    EXPECT_EQ(off.counters.tasks_assigned, traced->counters.tasks_assigned);
    EXPECT_EQ(off.counters.noops_sent, traced->counters.noops_sent);
  }
}

// The fault subsystem's determinism contract (src/fault/): arming an empty —
// or never-firing — plan consumes no randomness and schedules nothing that
// changes behaviour, so the run is bit-identical to a faultless one.
TEST(DeterminismTest, EmptyOrNeverFiringFaultPlanIsBitIdenticalToFaultless) {
  cluster::ExperimentResult faultless = RunExperiment(Fig05aMiniConfig());

  cluster::ExperimentConfig empty_plan = Fig05aMiniConfig();
  empty_plan.fault_plan = fault::FaultPlan{};
  cluster::ExperimentResult with_empty = RunExperiment(empty_plan);

  cluster::ExperimentConfig never_firing = Fig05aMiniConfig();
  // Onset far past the horizon: armed, never fires.
  never_firing.fault_plan.LatencyDegrade(FromSeconds(100), fault::FaultEvent::kNever,
                                         FromMicros(5));
  cluster::ExperimentResult with_never = RunExperiment(never_firing);

  EXPECT_FALSE(with_empty.recovery.fault_plan_active);
  EXPECT_TRUE(with_never.recovery.fault_plan_active);
  EXPECT_EQ(with_never.recovery.fault_events_started, 0u);

  for (const cluster::ExperimentResult* r : {&with_empty, &with_never}) {
    EXPECT_EQ(faultless.metrics->tasks_submitted(), r->metrics->tasks_submitted());
    EXPECT_EQ(faultless.metrics->tasks_completed(), r->metrics->tasks_completed());
    EXPECT_EQ(faultless.metrics->timeout_resubmissions(), r->metrics->timeout_resubmissions());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(faultless.metrics->sched_delay().Percentile(q),
                r->metrics->sched_delay().Percentile(q))
          << "q=" << q;
      EXPECT_EQ(faultless.metrics->e2e_delay().Percentile(q),
                r->metrics->e2e_delay().Percentile(q))
          << "q=" << q;
    }
    EXPECT_EQ(faultless.switch_counters.passes, r->switch_counters.passes);
    EXPECT_EQ(faultless.counters.tasks_assigned, r->counters.tasks_assigned);
    EXPECT_EQ(faultless.counters.noops_sent, r->counters.noops_sent);
  }
}

// Same seed + same fault plan => bit-identical results, including every
// recovery metric — the §3.3 failover (standby build, executor rehoming,
// client timeout rehoming) is as reproducible as a faultless run.
TEST(DeterminismTest, FailoverRunIsBitIdentical) {
  auto make = [] {
    cluster::ExperimentConfig config = Fig05aMiniConfig();
    config.fault_plan.SchedulerFailover(FromMillis(7));
    config.fault_settle = FromMillis(6);
    return config;
  };
  cluster::ExperimentResult a = RunExperiment(make());
  cluster::ExperimentResult b = RunExperiment(make());

  EXPECT_GT(a.counters.failovers, 0u);
  EXPECT_GT(a.recovery.executor_rehomes, 0u);
  EXPECT_EQ(a.metrics->tasks_submitted(), b.metrics->tasks_submitted());
  EXPECT_EQ(a.metrics->tasks_completed(), b.metrics->tasks_completed());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.metrics->e2e_delay().Percentile(q), b.metrics->e2e_delay().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(a.metrics->e2e_during_fault().Percentile(q),
              b.metrics->e2e_during_fault().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(a.metrics->e2e_post_fault().Percentile(q),
              b.metrics->e2e_post_fault().Percentile(q))
        << "q=" << q;
  }
  EXPECT_EQ(a.recovery.time_to_recover, b.recovery.time_to_recover);
  EXPECT_EQ(a.recovery.unavailability, b.recovery.unavailability);
  EXPECT_EQ(a.recovery.tasks_resubmitted, b.recovery.tasks_resubmitted);
  EXPECT_EQ(a.recovery.tasks_lost, b.recovery.tasks_lost);
  EXPECT_EQ(a.recovery.client_rehomes, b.recovery.client_rehomes);
  EXPECT_EQ(a.recovery.executor_rehomes, b.recovery.executor_rehomes);
  EXPECT_EQ(a.recovery.packets_dropped, b.recovery.packets_dropped);
  EXPECT_EQ(a.counters.failovers, b.counters.failovers);
}

// The multi-rack degenerate case (docs/topology.md): a 1-rack ClusterTopology
// builds the same scheduler, the same registration order, and no fabric
// machinery (no summary publishers, no routers), so it must reproduce the
// single-switch pinned golden bit for bit. This is the topology subsystem's
// whole backward-compatibility contract in one assertion block.
TEST(DeterminismTest, OneRackTopologyIsBitIdenticalToSingleSwitchGolden) {
  cluster::ExperimentConfig config = Fig05aMiniConfig();
  config.cluster = topology::ClusterTopology::Uniform(1, 4, 4);
  cluster::ExperimentResult result = RunExperiment(config);

  EXPECT_EQ(result.num_racks, 1u);
  EXPECT_EQ(result.cross_rack_submissions, 0u);
  EXPECT_EQ(result.metrics->tasks_completed(), 130u);
  EXPECT_EQ(result.metrics->sched_delay().Percentile(0.50), 7679);
  EXPECT_EQ(result.metrics->sched_delay().Percentile(0.99), 366517);
  EXPECT_EQ(result.metrics->e2e_delay().Percentile(0.50), 516095);
  EXPECT_EQ(result.metrics->e2e_delay().Percentile(0.99), 869596);
  EXPECT_DOUBLE_EQ(result.throughput_tps, 10000.0);
}

// Captured from a known-good build of the 2-rack mini run below; update only
// for an intentional behaviour change, and say so in the commit message.
constexpr uint64_t kTwoRackGoldenCompletions = 130;
constexpr TimeNs kTwoRackGoldenSchedP50 = 7679;
constexpr TimeNs kTwoRackGoldenE2eP99 = 516095;

cluster::ExperimentConfig TwoRackMiniConfig() {
  cluster::ExperimentConfig config = Fig05aMiniConfig();
  // Two racks of the fig05a shape; the two clients home round-robin, one per
  // rack, so both ToR pipelines see traffic and the summary fabric runs.
  config.cluster = topology::ClusterTopology::Uniform(2, 4, 4);
  return config;
}

// Same seed + same topology => bit-identical multi-rack runs, pinned against
// numbers captured from a known-good build (same update policy as the
// single-switch golden table above). Freezes the multi-rack registration
// order, the rack-indexed placement seed domain, and the summary-fabric
// event schedule.
TEST(DeterminismTest, TwoRackRunReplaysBitIdenticallyAndMatchesPin) {
  cluster::ExperimentResult a = RunExperiment(TwoRackMiniConfig());
  cluster::ExperimentResult b = RunExperiment(TwoRackMiniConfig());

  EXPECT_EQ(a.metrics->tasks_submitted(), b.metrics->tasks_submitted());
  EXPECT_EQ(a.metrics->tasks_completed(), b.metrics->tasks_completed());
  EXPECT_EQ(a.metrics->sched_delay().count(), b.metrics->sched_delay().count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.metrics->sched_delay().Percentile(q), b.metrics->sched_delay().Percentile(q))
        << "q=" << q;
    EXPECT_EQ(a.metrics->e2e_delay().Percentile(q), b.metrics->e2e_delay().Percentile(q))
        << "q=" << q;
  }
  EXPECT_EQ(a.switch_counters.passes, b.switch_counters.passes);
  EXPECT_EQ(a.counters.tasks_assigned, b.counters.tasks_assigned);
  EXPECT_EQ(a.cross_rack_submissions, b.cross_rack_submissions);
  ASSERT_EQ(a.rack_decisions.size(), 2u);
  EXPECT_EQ(a.rack_decisions, b.rack_decisions);
  // Both racks schedule: the feeder really does split the stream.
  EXPECT_GT(a.rack_decisions[0], 0u);
  EXPECT_GT(a.rack_decisions[1], 0u);

  // The pinned golden (see the comment on PinnedGoldensPerSchedulerKind).
  EXPECT_EQ(a.num_racks, 2u);
  EXPECT_EQ(a.metrics->tasks_completed(), kTwoRackGoldenCompletions);
  EXPECT_EQ(a.metrics->sched_delay().Percentile(0.50), kTwoRackGoldenSchedP50);
  EXPECT_EQ(a.metrics->e2e_delay().Percentile(0.99), kTwoRackGoldenE2eP99);
}

// §3.3 failover on a 2-rack topology: rack 0's ToR fails and its standby is
// promoted while rack 1 keeps scheduling. A smoke, not a golden — it guards
// that the per-rack fault path (standby build, executor rehoming, summary
// publisher retarget) composes with the topology at all.
TEST(DeterminismTest, TwoRackTorFailoverRecovers) {
  cluster::ExperimentConfig config = TwoRackMiniConfig();
  config.fault_plan.SchedulerFailover(FromMillis(7));
  config.fault_settle = FromMillis(6);
  cluster::ExperimentResult result = RunExperiment(config);

  EXPECT_GT(result.counters.failovers, 0u);
  EXPECT_GT(result.recovery.executor_rehomes, 0u);
  EXPECT_GT(result.metrics->tasks_completed(), 0u);
  ASSERT_EQ(result.rack_decisions.size(), 2u);
  // The surviving rack keeps scheduling through the fault.
  EXPECT_GT(result.rack_decisions[1], 0u);
}

// Builds a randomized self-extending event graph on `sim`: chains that
// reschedule themselves, cancellable watchdogs that are armed and torn
// down, and a periodic timer — all driven off one seeded Rng so two
// instances evolve identically.
struct ScriptedWorkload {
  sim::Simulator* sim;
  Rng rng;
  std::vector<int>* order;
  int remaining;
  sim::EventHandle watchdog;
  sim::Timer pulse;

  ScriptedWorkload(sim::Simulator* s, uint64_t seed, std::vector<int>* out, int events)
      : sim(s), rng(seed), order(out), remaining(events) {
    pulse.Bind(sim, [this] {
      order->push_back(-1);
      if (remaining > 0) {
        pulse.ScheduleAfter(17);
      }
    });
    pulse.ScheduleAfter(17);
    Tick(0);
  }

  void Tick(int id) {
    order->push_back(id);
    if (remaining-- <= 0) {
      return;
    }
    const int next = static_cast<int>(rng.NextBelow(1 << 30));
    sim->ScheduleAfter(1 + static_cast<TimeNs>(rng.NextBelow(37)),
                       [this, next] { Tick(next); });
    // Churn a watchdog like the executor pull loop does.
    watchdog.Cancel();
    watchdog = sim->ScheduleAfter(500 + static_cast<TimeNs>(rng.NextBelow(100)),
                                  [this] { order->push_back(-2); }, sim::kCancellable);
  }
};

TEST(DeterminismTest, RunUntilInSmallStepsEqualsOneRunAll) {
  // On every backend — and the histories must also agree across backends.
  std::vector<std::vector<int>> per_backend_orders;
  for (sim::QueueBackend backend : sim::AllQueueBackends()) {
    SCOPED_TRACE(sim::QueueBackendName(backend));
    std::vector<int> order_all;
    std::vector<int> order_stepped;
    uint64_t executed_all = 0;
    uint64_t executed_stepped = 0;

    {
      sim::Simulator sim(backend);
      ScriptedWorkload wl(&sim, 77, &order_all, 3000);
      sim.RunAll();
      executed_all = sim.executed_events();
    }
    {
      sim::Simulator sim(backend);
      ScriptedWorkload wl(&sim, 77, &order_stepped, 3000);
      // Many tiny uneven steps must replay the exact same history.
      TimeNs t = 0;
      Rng step_rng(123);
      while (sim.pending_events() > 0) {
        t += 1 + static_cast<TimeNs>(step_rng.NextBelow(23));
        sim.RunUntil(t);
      }
      executed_stepped = sim.executed_events();
    }

    EXPECT_EQ(order_all, order_stepped);
    EXPECT_EQ(executed_all, executed_stepped);
    EXPECT_GT(executed_all, 3000u);
    per_backend_orders.push_back(std::move(order_all));
  }
  for (size_t i = 1; i < per_backend_orders.size(); ++i) {
    EXPECT_EQ(per_backend_orders[0], per_backend_orders[i]);
  }
}

}  // namespace
}  // namespace draconis
