#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/testbed.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "trace/span.h"

namespace draconis::fault {
namespace {

using cluster::Testbed;
using cluster::TestbedConfig;

NodeRef Node(net::NodeId id) {
  return NodeRef{NodeRef::Role::kNode, static_cast<int32_t>(id)};
}

// ---------------------------------------------------------------------------
// FaultPlan builders and introspection
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, BuildersChainAndIntrospect) {
  FaultPlan plan;
  plan.LossyLink(FromMicros(10), FromMicros(20), 0.5, Node(1), Node(2))
      .NodeCrash(FromMicros(5), FromMicros(50), Node(3))
      .LatencyDegrade(FromMicros(30), FaultEvent::kNever, FromMicros(2));
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_FALSE(plan.has_scheduler_failover());
  EXPECT_EQ(plan.failover_at(), FaultEvent::kNever);
  EXPECT_EQ(plan.first_onset(), FromMicros(5));
  // The latency event never clears, so the fallback wins over the crash end.
  EXPECT_EQ(plan.last_clearance(FromMillis(1)), FromMillis(1));
  EXPECT_EQ(plan.Validate(), "");

  plan.SchedulerFailover(FromMicros(100));
  EXPECT_TRUE(plan.has_scheduler_failover());
  EXPECT_EQ(plan.failover_at(), FromMicros(100));
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanTest, EmptyPlanIntrospection) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.first_onset(), FaultEvent::kNever);
  EXPECT_EQ(plan.last_clearance(FromMillis(1)), FaultEvent::kNever);
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanTest, ValidateRejectsBadRanges) {
  {
    FaultPlan plan;
    plan.LatencyDegrade(-1, FaultEvent::kNever, 100);
    EXPECT_NE(plan.Validate().find("start must be >= 0"), std::string::npos);
  }
  {
    FaultPlan plan;
    plan.NodeCrash(FromMicros(10), FromMicros(10), Node(1));
    EXPECT_NE(plan.Validate().find("end must be > start"), std::string::npos);
  }
  {
    FaultPlan plan;
    plan.LossyLink(0, FromMicros(1), 1.5, Node(1), Node(2));
    EXPECT_NE(plan.Validate().find("probability must be in [0, 1]"), std::string::npos);
  }
  {
    FaultPlan plan;
    plan.LatencyDegrade(0, FromMicros(1), 0);
    EXPECT_NE(plan.Validate().find("extra_latency must be > 0"), std::string::npos);
  }
  {
    FaultPlan plan;
    plan.SchedulerFailover(FromMicros(1)).SchedulerFailover(FromMicros(2));
    EXPECT_NE(plan.Validate().find("at most one scheduler_failover"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// JSON round-trip and parse errors
// ---------------------------------------------------------------------------

TEST(FaultPlanJsonTest, RoundTripPreservesEveryKind) {
  FaultPlan plan;
  plan.LossyLink(FromMicros(10), FromMicros(20), 0.25,
                 NodeRef{NodeRef::Role::kScheduler, 0},
                 NodeRef{NodeRef::Role::kExecutor, NodeRef::kAllInstances})
      .NodeCrash(FromMicros(5), FaultEvent::kNever, NodeRef{NodeRef::Role::kClient, 1})
      .LatencyDegrade(FromMicros(30), FromMicros(40), FromMicros(2))
      .SchedulerFailover(FromMicros(100), FromMicros(200));

  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::FromJson(plan.ToJson(), &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = parsed.events()[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.start, b.start) << "event " << i;
    EXPECT_EQ(a.end, b.end) << "event " << i;
    EXPECT_DOUBLE_EQ(a.probability, b.probability) << "event " << i;
    EXPECT_EQ(a.extra_latency, b.extra_latency) << "event " << i;
    EXPECT_EQ(a.src.role, b.src.role) << "event " << i;
    EXPECT_EQ(a.src.index, b.src.index) << "event " << i;
    EXPECT_EQ(a.dst.role, b.dst.role) << "event " << i;
    EXPECT_EQ(a.dst.index, b.dst.index) << "event " << i;
    EXPECT_EQ(a.target.role, b.target.role) << "event " << i;
    EXPECT_EQ(a.target.index, b.target.index) << "event " << i;
  }
}

TEST(FaultPlanJsonTest, ParsesDurationStrings) {
  FaultPlan plan;
  std::string error;
  const std::string text = R"({
    "schema_version": 1,
    "name": "latency blip",
    "events": [
      {"kind": "latency_degrade", "start": "250us", "end": "1ms", "extra_latency": "5us"}
    ]
  })";
  ASSERT_TRUE(FaultPlan::FromJson(text, &plan, &error)) << error;
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.events()[0].start, FromMicros(250));
  EXPECT_EQ(plan.events()[0].end, FromMillis(1));
  EXPECT_EQ(plan.events()[0].extra_latency, FromMicros(5));
}

TEST(FaultPlanJsonTest, NullEndMeansNever) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::FromJson(
      R"({"events": [{"kind": "latency_degrade", "start": 0, "end": null,
                      "extra_latency": 100}]})",
      &plan, &error))
      << error;
  EXPECT_EQ(plan.events()[0].end, FaultEvent::kNever);
}

struct BadPlanCase {
  const char* text;
  const char* expected_error;  // substring
};

TEST(FaultPlanJsonTest, RejectsMalformedPlans) {
  const std::vector<BadPlanCase> cases = {
      {R"([1, 2])", "must be a JSON object"},
      {R"({"events": [], "bogus": 1})", "unknown top-level key \"bogus\""},
      {R"({"schema_version": 2, "events": []})", "unsupported fault plan schema_version"},
      {R"({"name": "no events"})", "needs an \"events\" array"},
      {R"({"events": [{"kind": "meteor_strike", "start": 0}]})", "kind must be one of"},
      {R"({"events": [{"kind": "scheduler_failover"}]})", "needs a start time"},
      {R"({"events": [{"kind": "scheduler_failover", "start": "fast"}]})",
       "integer nanoseconds or a duration string"},
      {R"({"events": [{"kind": "scheduler_failover", "start": 0, "probability": 1}]})",
       "unknown key \"probability\""},
      {R"({"events": [{"kind": "lossy_link", "start": 0, "probability": 1,
                       "src": {"role": "tor"}, "dst": {"role": "client"}}]})",
       "role must be one of"},
      {R"({"events": [{"kind": "lossy_link", "start": 0, "probability": 1,
                       "src": {"role": "node", "id": 3}, "dst": {"role": "client"}}]})",
       "unknown key \"id\""},
      {R"({"events": [{"kind": "lossy_link", "start": 0,
                       "src": {"role": "node"}, "dst": {"role": "client"}}]})",
       "needs a numeric probability"},
      {R"({"events": [{"kind": "node_crash", "start": 0}]})", "target must be an object"},
      {R"({"events": [{"kind": "latency_degrade", "start": 0}]})", "needs an extra_latency"},
      {R"({"events": [{"kind": "latency_degrade", "start": 0, "extra_latency": -5}]})",
       "extra_latency must be > 0"},
  };
  for (const BadPlanCase& c : cases) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::FromJson(c.text, &plan, &error)) << c.text;
    EXPECT_NE(error.find(c.expected_error), std::string::npos)
        << "input: " << c.text << "\nerror: " << error;
  }
}

TEST(FaultPlanJsonTest, CheckedInExamplePlanIsValid) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::FromJsonFile(DRACONIS_SOURCE_DIR "/bench/plans/failover.json", &plan,
                                      &error))
      << error;
  EXPECT_TRUE(plan.has_scheduler_failover());
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanJsonTest, FromJsonFileReportsMissingFile) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::FromJsonFile("/nonexistent/plan.json", &plan, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Injector against a tiny Testbed (raw node references)
// ---------------------------------------------------------------------------

class Probe : public net::Endpoint {
 public:
  void HandlePacket(net::Packet) override { ++received; }
  uint64_t received = 0;
};

struct InjectorFixture {
  explicit InjectorFixture(TestbedConfig config = TestbedConfig{}) : testbed(config) {
    src_id = testbed.network().Register(&src, net::HostProfile::Wire());
    dst_id = testbed.network().Register(&dst, net::HostProfile::Wire());
  }

  // One kNoop packet src -> dst at `at`.
  void SendAt(TimeNs at) {
    testbed.simulator().ScheduleAt(at, [this] {
      net::Packet pkt;
      pkt.op = net::OpCode::kOther;
      pkt.dst = dst_id;
      testbed.network().Send(src_id, std::move(pkt));
    });
  }

  Testbed testbed;
  Probe src;
  Probe dst;
  net::NodeId src_id = net::kInvalidNode;
  net::NodeId dst_id = net::kInvalidNode;
};

TEST(InjectorTest, CrashWindowDropsThenRestores) {
  InjectorFixture f;
  FaultPlan plan;
  plan.NodeCrash(FromMicros(10), FromMicros(30), Node(f.dst_id));
  Injector injector(&f.testbed, plan, InjectorHooks{});
  injector.Arm();

  f.SendAt(FromMicros(5));   // delivered before the crash
  f.SendAt(FromMicros(15));  // lost in the window
  f.SendAt(FromMicros(40));  // delivered after recovery
  f.testbed.simulator().RunAll();

  EXPECT_EQ(f.dst.received, 2u);
  EXPECT_EQ(f.testbed.network().packets_dropped(), 1u);
  EXPECT_FALSE(f.testbed.network().IsDisconnected(f.dst_id));
  EXPECT_EQ(injector.events_started(), 1u);
  EXPECT_EQ(injector.events_cleared(), 1u);
}

TEST(InjectorTest, LossyWindowDropsWithCertainty) {
  InjectorFixture f;
  FaultPlan plan;
  plan.LossyLink(FromMicros(10), FromMicros(30), 1.0, Node(f.src_id), Node(f.dst_id));
  Injector injector(&f.testbed, plan, InjectorHooks{});
  injector.Arm();

  f.SendAt(FromMicros(15));  // dropped, p = 1
  f.SendAt(FromMicros(40));  // rule removed at clearance
  f.testbed.simulator().RunAll();

  EXPECT_EQ(f.dst.received, 1u);
  EXPECT_EQ(f.testbed.network().packets_dropped(), 1u);
}

TEST(InjectorTest, LatencyDegradeWindowRestoresPenalty) {
  InjectorFixture f;
  FaultPlan plan;
  plan.LatencyDegrade(FromMicros(10), FromMicros(30), FromMicros(7));
  Injector injector(&f.testbed, plan, InjectorHooks{});
  injector.Arm();

  f.testbed.simulator().ScheduleAt(FromMicros(20), [&] {
    EXPECT_EQ(f.testbed.network().latency_penalty(), FromMicros(7));
  });
  f.testbed.simulator().RunAll();
  EXPECT_EQ(f.testbed.network().latency_penalty(), 0);
  EXPECT_EQ(injector.events_started(), 1u);
  EXPECT_EQ(injector.events_cleared(), 1u);
}

TEST(InjectorTest, NeverFiringPlanArmsPastHorizonWithoutEffect) {
  InjectorFixture f;
  FaultPlan plan;
  plan.LatencyDegrade(FromSeconds(100), FaultEvent::kNever, FromMicros(7));
  Injector injector(&f.testbed, plan, InjectorHooks{});
  injector.Arm();

  f.SendAt(FromMicros(5));
  f.testbed.simulator().RunUntil(f.testbed.horizon());
  EXPECT_EQ(f.dst.received, 1u);
  EXPECT_EQ(injector.events_started(), 0u);
  EXPECT_EQ(injector.events_cleared(), 0u);
}

TEST(InjectorTest, FailoverDisconnectsSchedulerAndFiresHook) {
  InjectorFixture f;
  FaultPlan plan;
  plan.SchedulerFailover(FromMicros(10));

  bool promoted = false;
  TimeNs promoted_at = -1;
  InjectorHooks hooks;
  hooks.resolve = [&](const NodeRef& ref) -> std::vector<net::NodeId> {
    if (ref.role == NodeRef::Role::kScheduler) {
      return {f.dst_id};
    }
    return {};
  };
  hooks.on_failover = [&] {
    promoted = true;
    promoted_at = f.testbed.simulator().Now();
    // The active scheduler is already off the fabric when the deployment
    // promotes its standby.
    EXPECT_TRUE(f.testbed.network().IsDisconnected(f.dst_id));
  };
  Injector injector(&f.testbed, plan, std::move(hooks));
  injector.Arm();

  f.SendAt(FromMicros(20));  // toward the dead scheduler: lost
  f.testbed.simulator().RunAll();

  EXPECT_TRUE(promoted);
  EXPECT_EQ(promoted_at, FromMicros(10));
  EXPECT_EQ(f.dst.received, 0u);
  EXPECT_TRUE(f.testbed.network().IsDisconnected(f.dst_id));
  EXPECT_EQ(injector.events_started(), 1u);
  EXPECT_EQ(injector.events_cleared(), 0u);  // a failover never clears
}

TEST(InjectorTest, RoleReferencesResolveThroughHook) {
  InjectorFixture f;
  FaultPlan plan;
  // Crash "executor 1" out of a two-instance fleet: only dst goes dark.
  plan.NodeCrash(FromMicros(10), FaultEvent::kNever, NodeRef{NodeRef::Role::kExecutor, 1});
  InjectorHooks hooks;
  hooks.resolve = [&](const NodeRef& ref) -> std::vector<net::NodeId> {
    if (ref.role == NodeRef::Role::kExecutor) {
      return {f.src_id, f.dst_id};
    }
    return {};
  };
  Injector injector(&f.testbed, plan, std::move(hooks));
  injector.Arm();
  f.testbed.simulator().RunUntil(FromMicros(20));
  EXPECT_FALSE(f.testbed.network().IsDisconnected(f.src_id));
  EXPECT_TRUE(f.testbed.network().IsDisconnected(f.dst_id));
}

TEST(InjectorTest, UnresolvableRoleIsANoOp) {
  InjectorFixture f;
  FaultPlan plan;
  plan.NodeCrash(FromMicros(10), FaultEvent::kNever, NodeRef{NodeRef::Role::kStandby, 0});
  Injector injector(&f.testbed, plan, InjectorHooks{});  // no resolve hook
  injector.Arm();
  f.SendAt(FromMicros(20));
  f.testbed.simulator().RunAll();
  EXPECT_EQ(f.dst.received, 1u);
  EXPECT_EQ(injector.events_started(), 1u);
}

TEST(InjectorTest, RecordsFaultWindowGlobalSpan) {
  TestbedConfig config;
  config.trace.enabled = true;
  config.trace.sample_period = 1;
  InjectorFixture f(config);
  FaultPlan plan;
  plan.NodeCrash(FromMicros(10), FromMicros(30), Node(f.dst_id));
  plan.LatencyDegrade(FromMicros(50), FaultEvent::kNever, FromMicros(1));
  Injector injector(&f.testbed, plan, InjectorHooks{});
  injector.Arm();
  f.testbed.simulator().RunUntil(FromMicros(100));

  ASSERT_NE(f.testbed.recorder(), nullptr);
  std::vector<trace::SpanRecord> windows;
  for (const trace::SpanRecord& rec : f.testbed.recorder()->records()) {
    if (rec.kind == trace::Kind::kFaultWindow) {
      windows.push_back(rec);
    }
  }
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].id, trace::kGlobalTaskId);
  EXPECT_EQ(windows[0].begin, FromMicros(10));
  EXPECT_EQ(windows[0].end, FromMicros(30));
  EXPECT_EQ(windows[0].node, f.dst_id);
  // The never-clearing window is clamped to the testbed horizon.
  EXPECT_EQ(windows[1].begin, FromMicros(50));
  EXPECT_EQ(windows[1].end, f.testbed.horizon());
}

}  // namespace
}  // namespace draconis::fault
