#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/timeseries.h"

namespace draconis::stats {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(4700);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 4700);
  EXPECT_EQ(h.max(), 4700);
  EXPECT_EQ(h.Percentile(0.0), h.Percentile(1.0));
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (TimeNs v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 63);
  EXPECT_EQ(h.Median(), 31);
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
  Histogram h;
  Rng rng(3);
  std::vector<TimeNs> values;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<TimeNs>(rng.NextExponential(50000.0)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const TimeNs exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const TimeNs approx = h.Percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.04 + 2)
        << "q=" << q;
  }
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(600);
  EXPECT_DOUBLE_EQ(h.Mean(), 300.0);
}

TEST(HistogramTest, RecordNWeights) {
  Histogram h;
  h.RecordN(10, 99);
  h.RecordN(1000000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Median(), 10);
  EXPECT_EQ(h.max(), 1000000);
}

TEST(HistogramTest, RecordNZeroIsNoOp) {
  Histogram h;
  h.RecordN(10, 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, NegativeValueThrows) {
  Histogram h;
  EXPECT_THROW(h.Record(-1), draconis::CheckFailure);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, MergeEmptyIsNoOp) {
  Histogram a;
  a.Record(42);
  Histogram b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 42);
}

TEST(HistogramTest, CdfIsMonotonicAndEndsAtOne) {
  Histogram h;
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<TimeNs>(rng.NextBelow(1000000)));
  }
  const auto cdf = h.Cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0.0;
  TimeNs prev_v = -1;
  for (const CdfPoint& p : cdf) {
    EXPECT_GE(p.fraction, prev);
    EXPECT_GT(p.value, prev_v);
    prev = p.fraction;
    prev_v = p.value;
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(HistogramTest, PercentileNeverExceedsMax) {
  Histogram h;
  h.Record(1000003);
  h.Record(17);
  EXPECT_LE(h.Percentile(1.0), 1000003);
  EXPECT_LE(h.Percentile(0.999), 1000003);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(100);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, MergeEqualsUnionRecording) {
  // Property: merging two histograms is indistinguishable from recording
  // the union of their samples.
  draconis::Rng rng(21);
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<TimeNs>(rng.NextExponential(30000.0));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, RecordNEqualsRepeatedRecord) {
  Histogram weighted;
  Histogram repeated;
  weighted.RecordN(12345, 57);
  for (int i = 0; i < 57; ++i) {
    repeated.Record(12345);
  }
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_EQ(weighted.Percentile(0.5), repeated.Percentile(0.5));
  EXPECT_DOUBLE_EQ(weighted.Mean(), repeated.Mean());
}

TEST(HistogramTest, PercentilesAreMonotonic) {
  Histogram h;
  draconis::Rng rng(22);
  for (int i = 0; i < 50000; ++i) {
    h.Record(static_cast<TimeNs>(rng.NextBelow(100000000)));
  }
  TimeNs prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const TimeNs v = h.Percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(TimeSeriesTest, BucketsByInterval) {
  TimeSeries ts(kSecond);
  ts.Record(FromSeconds(0.5));
  ts.Record(FromSeconds(1.5));
  ts.Record(FromSeconds(1.7));
  EXPECT_EQ(ts.NumBuckets(), 2u);
  EXPECT_DOUBLE_EQ(ts.BucketSum(0), 1.0);
  EXPECT_DOUBLE_EQ(ts.BucketSum(1), 2.0);
  EXPECT_DOUBLE_EQ(ts.BucketSum(7), 0.0);
}

TEST(TimeSeriesTest, RateDividesByWidth) {
  TimeSeries ts(FromMillis(100));
  for (int i = 0; i < 50; ++i) {
    ts.Record(FromMillis(1) * i, 1.0);
  }
  EXPECT_DOUBLE_EQ(ts.BucketRate(0), 500.0);  // 50 events in 0.1 s
}

TEST(TimeSeriesTest, WeightsAccumulate) {
  TimeSeries ts(kSecond);
  ts.Record(10, 2.5);
  ts.Record(20, 0.5);
  EXPECT_DOUBLE_EQ(ts.BucketSum(0), 3.0);
}

TEST(HistogramTest, ToJsonCarriesTheDigest) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(FromMicros(i));
  }
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  for (const char* key :
       {"mean_ns", "min_ns", "max_ns", "p50_ns", "p90_ns", "p95_ns", "p99_ns", "p999_ns"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"min_ns\": 1000"), std::string::npos);
}

TEST(HistogramTest, EmptyToJsonOmitsPercentiles) {
  Histogram h;
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_EQ(json.find("p99_ns"), std::string::npos);
}

}  // namespace
}  // namespace draconis::stats
