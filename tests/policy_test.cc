#include <gtest/gtest.h>

#include "common/check.h"
#include "core/policy.h"
#include "core/topology.h"

namespace draconis::core {
namespace {

QueueEntry Entry(uint32_t tprops, uint32_t skip = 0) {
  QueueEntry e;
  e.task.id = net::TaskId{1, 1, 0};
  e.task.tprops = tprops;
  e.skip_counter = skip;
  e.valid = true;
  return e;
}

// --- Topology ---------------------------------------------------------------

TEST(TopologyTest, UniformRoundRobin) {
  Topology topo = Topology::Uniform(9, 3);
  EXPECT_EQ(topo.num_nodes(), 9u);
  EXPECT_EQ(topo.num_racks(), 3u);
  EXPECT_EQ(topo.RackOf(0), 0u);
  EXPECT_EQ(topo.RackOf(4), 1u);
  EXPECT_EQ(topo.RackOf(8), 2u);
}

TEST(TopologyTest, SameRack) {
  Topology topo = Topology::Uniform(9, 3);
  EXPECT_TRUE(topo.SameRack(0, 3));
  EXPECT_TRUE(topo.SameRack(2, 8));
  EXPECT_FALSE(topo.SameRack(0, 1));
}

TEST(TopologyTest, UnknownNodeThrows) {
  Topology topo = Topology::Uniform(4, 2);
  EXPECT_THROW(topo.RackOf(4), draconis::CheckFailure);
}

TEST(TopologyTest, CustomMapping) {
  Topology topo({0, 0, 1});
  EXPECT_EQ(topo.num_racks(), 2u);
  EXPECT_TRUE(topo.SameRack(0, 1));
  EXPECT_FALSE(topo.SameRack(1, 2));
}

// --- FCFS -------------------------------------------------------------------

TEST(FcfsPolicyTest, SingleQueueAssignsEverything) {
  FcfsPolicy policy;
  EXPECT_EQ(policy.num_queues(), 1u);
  EXPECT_EQ(policy.max_swaps(), 0u);
  QueueEntry e = Entry(1234);
  EXPECT_TRUE(policy.ShouldAssign(e, 0));
  EXPECT_EQ(e.skip_counter, 0u);
}

// --- Priority ---------------------------------------------------------------

TEST(PriorityPolicyTest, QueuePerLevel) {
  PriorityPolicy policy(4);
  EXPECT_EQ(policy.num_queues(), 4u);
  EXPECT_EQ(policy.QueueForTask(Entry(1).task), 0u);
  EXPECT_EQ(policy.QueueForTask(Entry(4).task), 3u);
}

TEST(PriorityPolicyTest, ClampsMalformedLevels) {
  PriorityPolicy policy(4);
  EXPECT_EQ(policy.QueueForTask(Entry(0).task), 0u);    // below range
  EXPECT_EQ(policy.QueueForTask(Entry(99).task), 3u);   // above range
}

TEST(PriorityPolicyTest, AlwaysAssigns) {
  PriorityPolicy policy(4);
  QueueEntry e = Entry(2);
  EXPECT_TRUE(policy.ShouldAssign(e, 0));
}

TEST(PriorityPolicyTest, NeedsAtLeastOneLevel) {
  EXPECT_THROW(PriorityPolicy(0), draconis::CheckFailure);
}

// --- Resource ---------------------------------------------------------------

TEST(ResourcePolicyTest, SubsetMatch) {
  ResourcePolicy policy;
  QueueEntry needs_ab = Entry(0b011);
  EXPECT_TRUE(policy.ShouldAssign(needs_ab, 0b111));   // superset ok
  EXPECT_TRUE(policy.ShouldAssign(needs_ab, 0b011));   // exact ok
  EXPECT_FALSE(policy.ShouldAssign(needs_ab, 0b001));  // missing B
  EXPECT_FALSE(policy.ShouldAssign(needs_ab, 0b100));  // disjoint
}

TEST(ResourcePolicyTest, NoRequirementsRunAnywhere) {
  ResourcePolicy policy;
  QueueEntry plain = Entry(0);
  EXPECT_TRUE(policy.ShouldAssign(plain, 0));
}

TEST(ResourcePolicyTest, SkipCounterGrowsOnMismatchOnly) {
  ResourcePolicy policy;
  QueueEntry e = Entry(0b100);
  policy.ShouldAssign(e, 0b001);
  policy.ShouldAssign(e, 0b010);
  EXPECT_EQ(e.skip_counter, 2u);
  policy.ShouldAssign(e, 0b100);
  EXPECT_EQ(e.skip_counter, 2u);  // match does not bump the counter
}

TEST(ResourcePolicyTest, SwapBoundConfigurable) {
  ResourcePolicy policy(5);
  EXPECT_EQ(policy.max_swaps(), 5u);
}

// --- Locality ---------------------------------------------------------------

class LocalityPolicyTest : public ::testing::Test {
 protected:
  LocalityPolicyTest() : topo(Topology::Uniform(6, 3)), policy(&topo, {3, 9}) {}
  Topology topo;
  LocalityPolicy policy;
};

TEST_F(LocalityPolicyTest, DataLocalAssignsImmediately) {
  QueueEntry e = Entry(/*data node=*/2);
  EXPECT_TRUE(policy.ShouldAssign(e, /*exec node=*/2));
  EXPECT_EQ(e.skip_counter, 0u);
  EXPECT_EQ(e.task.meta.placement, net::TaskInfo::Placement::kLocal);
}

TEST_F(LocalityPolicyTest, NodeOnlyPhaseRejectsEveryoneElse) {
  QueueEntry e = Entry(2);
  // Skips 1..3 stay node-local; even a same-rack executor (node 5, rack 2)
  // is rejected.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(policy.ShouldAssign(e, 5));
  }
  EXPECT_EQ(e.skip_counter, 3u);
}

TEST_F(LocalityPolicyTest, RackPhaseAcceptsSameRack) {
  QueueEntry e = Entry(2, /*skip=*/3);  // past the node-only phase
  EXPECT_TRUE(policy.ShouldAssign(e, 5));  // node 5 shares rack 2
  EXPECT_EQ(e.task.meta.placement, net::TaskInfo::Placement::kSameRack);
}

TEST_F(LocalityPolicyTest, RackPhaseRejectsOtherRacks) {
  QueueEntry e = Entry(2, /*skip=*/3);
  EXPECT_FALSE(policy.ShouldAssign(e, 1));  // node 1 is rack 1
  EXPECT_EQ(e.skip_counter, 4u);
}

TEST_F(LocalityPolicyTest, GlobalPhaseAcceptsAnyone) {
  QueueEntry e = Entry(2, /*skip=*/9);  // past the global limit after ++
  EXPECT_TRUE(policy.ShouldAssign(e, 1));
  EXPECT_EQ(e.task.meta.placement, net::TaskInfo::Placement::kRemote);
}

TEST_F(LocalityPolicyTest, EscalationLadderEndsWithinGlobalLimit) {
  // A task repeatedly offered to a wrong-rack executor is released after
  // global_start_limit examinations.
  QueueEntry e = Entry(2);
  int examinations = 0;
  while (!policy.ShouldAssign(e, 1)) {
    ++examinations;
    ASSERT_LT(examinations, 20);
  }
  EXPECT_EQ(examinations, 9);
}

TEST_F(LocalityPolicyTest, DataLocalAlwaysWinsEvenLate) {
  QueueEntry e = Entry(2, /*skip=*/7);
  EXPECT_TRUE(policy.ShouldAssign(e, 2));
  EXPECT_EQ(e.task.meta.placement, net::TaskInfo::Placement::kLocal);
}

TEST_F(LocalityPolicyTest, InvalidLimitsRejected) {
  EXPECT_THROW(LocalityPolicy(&topo, {9, 3}), draconis::CheckFailure);
}

TEST(ClassifyPlacementTest, AllThreeClasses) {
  Topology topo = Topology::Uniform(6, 3);
  EXPECT_EQ(ClassifyPlacement(topo, 2, 2), net::TaskInfo::Placement::kLocal);
  EXPECT_EQ(ClassifyPlacement(topo, 2, 5), net::TaskInfo::Placement::kSameRack);
  EXPECT_EQ(ClassifyPlacement(topo, 2, 1), net::TaskInfo::Placement::kRemote);
}

}  // namespace
}  // namespace draconis::core
