#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "p4/register.h"
#include "sim/simulator.h"

namespace draconis::p4 {
namespace {

// ---------------------------------------------------------------------------
// RegisterArray: the single-access rule and the stateful-ALU operations.
// ---------------------------------------------------------------------------

TEST(RegisterTest, ReadReturnsInitialValue) {
  RegisterArray<uint32_t> reg("r", 4, 7);
  PacketPass pass;
  EXPECT_EQ(reg.Read(pass, 2), 7u);
}

TEST(RegisterTest, WriteThenControlPlaneRead) {
  RegisterArray<uint32_t> reg("r", 4);
  PacketPass pass;
  reg.Write(pass, 1, 99);
  EXPECT_EQ(reg.ControlPlaneRead(1), 99u);
}

TEST(RegisterTest, SecondAccessInSamePassThrows) {
  RegisterArray<uint32_t> reg("r", 4);
  PacketPass pass;
  reg.Read(pass, 0);
  EXPECT_THROW(reg.Read(pass, 0), draconis::CheckFailure);
}

TEST(RegisterTest, SecondAccessEvenAtDifferentIndexThrows) {
  // Hardware indexes a register array once per packet, period.
  RegisterArray<uint32_t> reg("r", 4);
  PacketPass pass;
  reg.Read(pass, 0);
  EXPECT_THROW(reg.Write(pass, 3, 1), draconis::CheckFailure);
}

TEST(RegisterTest, TheNaiveCheckThenIncrementQueueIsImpossible) {
  // The textbook enqueue — read the pointer to check fullness, then bump
  // it — is exactly what the hardware forbids. This is the constraint that
  // motivates the paper's delayed-pointer-correction design.
  RegisterArray<uint64_t> add_ptr("add_ptr", 1, 0);
  PacketPass pass;
  const uint64_t head = add_ptr.Read(pass, 0);
  EXPECT_THROW(add_ptr.Write(pass, 0, head + 1), draconis::CheckFailure);
}

TEST(RegisterTest, DifferentArraysAreIndependent) {
  RegisterArray<uint32_t> a("a", 1);
  RegisterArray<uint32_t> b("b", 1);
  PacketPass pass;
  a.Read(pass, 0);
  EXPECT_NO_THROW(b.Read(pass, 0));
}

TEST(RegisterTest, FreshPassResetsBudget) {
  RegisterArray<uint32_t> reg("r", 1);
  PacketPass pass1;
  reg.ReadAndAdd(pass1, 0, 1);
  PacketPass pass2;  // recirculation: new traversal, new budget
  EXPECT_EQ(reg.ReadAndAdd(pass2, 0, 1), 1u);
}

TEST(RegisterTest, ReadAndAddReturnsOldValue) {
  RegisterArray<uint64_t> reg("r", 1, 10);
  PacketPass pass;
  EXPECT_EQ(reg.ReadAndAdd(pass, 0, 5), 10u);
  EXPECT_EQ(reg.ControlPlaneRead(0), 15u);
}

TEST(RegisterTest, ExchangeSwapsValue) {
  RegisterArray<int> reg("r", 1, 42);
  PacketPass pass;
  EXPECT_EQ(reg.Exchange(pass, 0, 7), 42);
  EXPECT_EQ(reg.ControlPlaneRead(0), 7);
}

TEST(RegisterTest, ConditionalExchangeWritesOnlyWhenTrue) {
  RegisterArray<int> reg("r", 1, 1);
  {
    PacketPass pass;
    EXPECT_EQ(reg.ConditionalExchange(pass, 0, false, 9), 1);
    EXPECT_EQ(reg.ControlPlaneRead(0), 1);
  }
  {
    PacketPass pass;
    EXPECT_EQ(reg.ConditionalExchange(pass, 0, true, 9), 1);
    EXPECT_EQ(reg.ControlPlaneRead(0), 9);
  }
}

TEST(RegisterTest, ConditionalExchangeStillConsumesAccess) {
  RegisterArray<int> reg("r", 1);
  PacketPass pass;
  reg.ConditionalExchange(pass, 0, false, 9);
  EXPECT_THROW(reg.Read(pass, 0), draconis::CheckFailure);
}

TEST(RegisterTest, AddIfAtMostClaims) {
  RegisterArray<uint32_t> reg("r", 1, 0);
  PacketPass p1;
  auto [old1, ok1] = reg.AddIfAtMost(p1, 0, 0, 1);
  EXPECT_EQ(old1, 0u);
  EXPECT_TRUE(ok1);
  PacketPass p2;
  auto [old2, ok2] = reg.AddIfAtMost(p2, 0, 0, 1);
  EXPECT_EQ(old2, 1u);
  EXPECT_FALSE(ok2);
  EXPECT_EQ(reg.ControlPlaneRead(0), 1u);
}

TEST(RegisterTest, OutOfRangeIndexThrows) {
  RegisterArray<uint32_t> reg("r", 2);
  PacketPass pass;
  EXPECT_THROW(reg.Read(pass, 2), draconis::CheckFailure);
}

TEST(RegisterTest, ControlPlaneWriteBypassesBudget) {
  RegisterArray<uint32_t> reg("r", 1);
  PacketPass pass;
  reg.Read(pass, 0);
  reg.ControlPlaneWrite(0, 5);  // control plane is out of band
  EXPECT_EQ(reg.ControlPlaneRead(0), 5u);
}

TEST(RegisterTest, LedgerAccountsMemory) {
  ResourceLedger ledger;
  RegisterArray<uint64_t> a("a", 100, 0, &ledger, 8);
  RegisterArray<uint8_t> b("b", 16, 0, &ledger, 1);
  EXPECT_EQ(ledger.total_bytes(), 816u);
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries()[0].name, "a");
  EXPECT_EQ(ledger.entries()[0].elements, 100u);
}

// ---------------------------------------------------------------------------
// SwitchPipeline: pass timing, recirculation port, drops.
// ---------------------------------------------------------------------------

// A program that echoes packets back to their source, recirculating `bounces`
// times first.
class BounceProgram : public SwitchProgram {
 public:
  explicit BounceProgram(uint32_t bounces) : bounces_(bounces) {}

  void OnPass(PassContext& ctx, net::Packet pkt) override {
    if (ctx.pass_number() < bounces_) {
      ctx.Recirculate(std::move(pkt), guaranteed_);
      return;
    }
    pkt.dst = pkt.src;
    ctx.Emit(std::move(pkt));
  }

  void set_guaranteed(bool g) { guaranteed_ = g; }

 private:
  uint32_t bounces_;
  bool guaranteed_ = false;
};

class PipelineFixture : public ::testing::Test {
 protected:
  struct Sink : net::Endpoint {
    void HandlePacket(net::Packet pkt) override { received.push_back(std::move(pkt)); }
    std::vector<net::Packet> received;
  };

  static net::NetworkConfig NetConfig() {
    net::NetworkConfig c;
    c.propagation = 1000;
    c.ns_per_byte = 0.0;
    c.max_jitter = 0;
    return c;
  }

  void Build(SwitchProgram* program, PipelineConfig cfg) {
    network = std::make_unique<net::Network>(&simulator, NetConfig());
    pipeline = std::make_unique<SwitchPipeline>(&simulator, program, cfg);
    switch_node = pipeline->AttachNetwork(network.get());
    sink_node = network->Register(&sink, net::HostProfile::Wire());
  }

  void SendOne() {
    net::Packet p;
    p.op = net::OpCode::kOther;
    p.dst = switch_node;
    network->Send(sink_node, std::move(p));
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<SwitchPipeline> pipeline;
  Sink sink;
  net::NodeId switch_node = net::kInvalidNode;
  net::NodeId sink_node = net::kInvalidNode;
};

TEST_F(PipelineFixture, ForwardsAfterPassLatency) {
  BounceProgram program(0);
  PipelineConfig cfg;
  cfg.pass_latency = 450;
  Build(&program, cfg);
  SendOne();
  // 1000 (to switch) + 450 (pass) + 1000 (back) = 2450.
  simulator.RunUntil(2400);
  EXPECT_TRUE(sink.received.empty());
  simulator.RunUntil(2500);
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(pipeline->counters().packets_in, 1u);
  EXPECT_EQ(pipeline->counters().passes, 1u);
  EXPECT_EQ(pipeline->counters().emitted, 1u);
}

TEST_F(PipelineFixture, RecirculationCountsPasses) {
  BounceProgram program(3);
  Build(&program, PipelineConfig{});
  SendOne();
  simulator.RunAll();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(pipeline->counters().passes, 4u);
  EXPECT_EQ(pipeline->counters().recirculations, 3u);
  EXPECT_EQ(sink.received[0].pipeline_passes, 3u);
  EXPECT_NEAR(pipeline->counters().RecirculationShare(), 0.75, 1e-9);
}

TEST_F(PipelineFixture, RecirculationAddsLatency) {
  BounceProgram program(1);
  PipelineConfig cfg;
  cfg.pass_latency = 450;
  cfg.recirc_latency = 750;
  cfg.recirc_rate_pps = 1e9;
  Build(&program, cfg);
  SendOne();
  // 1000 + 750 (recirc) + 450 (final pass) + 1000 = 3200 + recirc service ~1.
  simulator.RunUntil(3100);
  EXPECT_TRUE(sink.received.empty());
  simulator.RunUntil(3300);
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(PipelineFixture, RecirculationPortOverflowDrops) {
  BounceProgram program(1);
  PipelineConfig cfg;
  cfg.recirc_rate_pps = 1e6;    // 1 us per recirculated packet
  cfg.recirc_queue_depth = 4;
  Build(&program, cfg);
  for (int i = 0; i < 20; ++i) {
    SendOne();
  }
  simulator.RunAll();
  EXPECT_GT(pipeline->counters().recirc_drops, 0u);
  EXPECT_EQ(sink.received.size() + pipeline->counters().recirc_drops, 20u);
}

TEST_F(PipelineFixture, GuaranteedRecirculationNeverDrops) {
  BounceProgram program(1);
  program.set_guaranteed(true);
  PipelineConfig cfg;
  cfg.recirc_rate_pps = 1e6;
  cfg.recirc_queue_depth = 4;
  Build(&program, cfg);
  for (int i = 0; i < 20; ++i) {
    SendOne();
  }
  simulator.RunAll();
  EXPECT_EQ(pipeline->counters().recirc_drops, 0u);
  EXPECT_EQ(sink.received.size(), 20u);
}

TEST_F(PipelineFixture, ProgramDropsAreCountedByReason) {
  class Dropper : public SwitchProgram {
   public:
    void OnPass(PassContext& ctx, net::Packet pkt) override { ctx.Drop(pkt, "testing"); }
  };
  Dropper program;
  Build(&program, PipelineConfig{});
  SendOne();
  SendOne();
  simulator.RunAll();
  EXPECT_EQ(pipeline->counters().program_drops.at("testing"), 2u);
  EXPECT_TRUE(sink.received.empty());
}

}  // namespace
}  // namespace draconis::p4
