// Unit tests for the arrival feeder: round-robin client assignment in
// arrival order, one simulator event at a time, and graceful handling of an
// empty stream.

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "cluster/feeder.h"
#include "common/check.h"
#include "sim/simulator.h"
#include "workload/spec.h"

namespace draconis::cluster {
namespace {

workload::JobStream MakeStream(size_t jobs, TimeNs spacing = FromMicros(10)) {
  workload::JobStream stream;
  for (size_t j = 0; j < jobs; ++j) {
    workload::JobArrival job;
    job.at = static_cast<TimeNs>(j + 1) * spacing;
    job.tasks.resize(j + 1);  // job j carries j+1 tasks: distinguishable sizes
    for (workload::TaskSpec& t : job.tasks) {
      t.duration = FromMicros(100);
    }
    stream.push_back(std::move(job));
  }
  return stream;
}

TEST(FeederTest, AssignsJobsRoundRobinInArrivalOrder) {
  sim::Simulator simulator;
  const workload::JobStream stream = MakeStream(7);
  std::vector<std::pair<size_t, size_t>> fed;  // (client, tasks in job)
  Feeder feeder(&simulator, &stream, 3,
                [&fed](size_t client, const std::vector<workload::TaskSpec>& tasks) {
                  fed.emplace_back(client, tasks.size());
                });
  EXPECT_FALSE(feeder.done());
  feeder.Start();
  simulator.RunAll();

  ASSERT_EQ(fed.size(), 7u);
  for (size_t j = 0; j < fed.size(); ++j) {
    EXPECT_EQ(fed[j].first, j % 3) << "job " << j;
    EXPECT_EQ(fed[j].second, j + 1) << "job " << j;
  }
  EXPECT_TRUE(feeder.done());
  EXPECT_EQ(feeder.jobs_fed(), 7u);
}

TEST(FeederTest, DeliversJobsAtTheirArrivalTimes) {
  sim::Simulator simulator;
  const workload::JobStream stream = MakeStream(3, FromMicros(50));
  std::vector<TimeNs> at;
  Feeder feeder(&simulator, &stream, 1,
                [&](size_t, const std::vector<workload::TaskSpec>&) {
                  at.push_back(simulator.Now());
                });
  feeder.Start();
  simulator.RunAll();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], FromMicros(50));
  EXPECT_EQ(at[1], FromMicros(100));
  EXPECT_EQ(at[2], FromMicros(150));
}

TEST(FeederTest, EmptyStreamIsDoneImmediately) {
  sim::Simulator simulator;
  const workload::JobStream stream;
  size_t calls = 0;
  Feeder feeder(&simulator, &stream, 4,
                [&calls](size_t, const std::vector<workload::TaskSpec>&) { ++calls; });
  EXPECT_TRUE(feeder.done());
  feeder.Start();  // must not schedule anything
  simulator.RunAll();
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(feeder.jobs_fed(), 0u);
  EXPECT_EQ(simulator.Now(), 0);
}

TEST(FeederTest, SingleClientTakesEveryJob) {
  sim::Simulator simulator;
  const workload::JobStream stream = MakeStream(5);
  std::vector<size_t> clients;
  Feeder feeder(&simulator, &stream, 1,
                [&clients](size_t client, const std::vector<workload::TaskSpec>&) {
                  clients.push_back(client);
                });
  feeder.Start();
  simulator.RunAll();
  ASSERT_EQ(clients.size(), 5u);
  for (size_t client : clients) {
    EXPECT_EQ(client, 0u);
  }
}

TEST(FeederTest, RejectsZeroClients) {
  sim::Simulator simulator;
  const workload::JobStream stream = MakeStream(1);
  EXPECT_THROW(Feeder(&simulator, &stream, 0,
                      [](size_t, const std::vector<workload::TaskSpec>&) {}),
               draconis::CheckFailure);
}

}  // namespace
}  // namespace draconis::cluster
