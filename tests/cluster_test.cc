// Unit and small-scenario tests for the cluster layer: clients (timeouts,
// retries, MTU splitting, parameter serving), executors (pull loop, backoff,
// watchdog, §4.4 parameter fetch), the metrics hub, and §3.3 switch failover.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/client.h"
#include "cluster/executor.h"
#include "cluster/metrics.h"
#include "cluster/testbed.h"
#include "core/draconis_program.h"
#include "core/policy.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/network.h"
#include "p4/pipeline.h"
#include "sim/simulator.h"

namespace draconis::cluster {
namespace {

class Probe : public net::Endpoint {
 public:
  void HandlePacket(net::Packet pkt) override { received.push_back(std::move(pkt)); }
  size_t CountOf(net::OpCode op) const {
    size_t n = 0;
    for (const auto& p : received) {
      n += p.op == op ? 1 : 0;
    }
    return n;
  }
  std::vector<net::Packet> received;
};

// ---------------------------------------------------------------------------
// MetricsHub
// ---------------------------------------------------------------------------

TEST(MetricsHubTest, WindowFiltersByFirstSubmission) {
  MetricsHub hub(100, 200);
  net::TaskInfo in_window;
  in_window.id = net::TaskId{0, 0, 1};
  in_window.meta.first_submit_time = 150;
  net::TaskInfo before;
  before.id = net::TaskId{0, 0, 2};
  before.meta.first_submit_time = 50;
  net::TaskInfo after;
  after.id = net::TaskId{0, 0, 3};
  after.meta.first_submit_time = 250;

  hub.RecordExecutionStart(in_window, 160);
  hub.RecordExecutionStart(before, 60);
  hub.RecordExecutionStart(after, 260);
  EXPECT_EQ(hub.sched_delay().count(), 1u);
  EXPECT_EQ(hub.sched_delay().max(), 10);
}

TEST(MetricsHubTest, FirstExecutionDeduplicates) {
  MetricsHub hub(0, 1000);
  const net::TaskId id{1, 2, 3};
  EXPECT_TRUE(hub.FirstExecution(id));
  EXPECT_FALSE(hub.FirstExecution(id));
  EXPECT_TRUE(hub.FirstExecution(net::TaskId{1, 2, 4}));
}

TEST(MetricsHubTest, BusyIntervalClampedToWindow) {
  MetricsHub hub(100, 200);
  hub.RecordBusyInterval(50, 150);   // clipped to [100, 150]
  hub.RecordBusyInterval(150, 250);  // clipped to [150, 200]
  hub.RecordBusyInterval(300, 400);  // outside entirely
  EXPECT_EQ(hub.total_busy(), 100);
}

TEST(MetricsHubTest, PriorityHistogramsClampLevels) {
  MetricsHub hub(0, 1000, 0, 4);
  net::TaskInfo task;
  task.meta.first_submit_time = 1;
  task.meta.enqueue_time = 1;
  task.tprops = 99;  // clamps to level 4
  hub.RecordAssignment(task, 11);
  EXPECT_EQ(hub.priority_queueing(4).count(), 1u);
}

TEST(MetricsHubTest, PlacementCounters) {
  MetricsHub hub(0, 1000);
  hub.RecordPlacement(net::TaskInfo::Placement::kLocal);
  hub.RecordPlacement(net::TaskInfo::Placement::kLocal);
  hub.RecordPlacement(net::TaskInfo::Placement::kRemote);
  EXPECT_EQ(hub.placements(net::TaskInfo::Placement::kLocal), 2u);
  EXPECT_EQ(hub.placements(net::TaskInfo::Placement::kSameRack), 0u);
  EXPECT_EQ(hub.placements(net::TaskInfo::Placement::kRemote), 1u);
}

TEST(MetricsHubTest, NodeCompletionTotals) {
  MetricsHub hub(0, kSecond, 2);
  hub.RecordNodeCompletion(0, 10);
  hub.RecordNodeCompletion(1, 20);
  hub.RecordNodeCompletion(7, 30);  // unknown node: counted in the total only
  EXPECT_EQ(hub.total_node_completions(), 3u);
  EXPECT_DOUBLE_EQ(hub.node_completions(0).BucketSum(0), 1.0);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : simulator(testbed.simulator()),
        network(testbed.network()),
        metrics(*testbed.metrics()) {}

  Client& MakeClient(ClientConfig config = {}) {
    client = std::make_unique<Client>(&testbed, config);
    scheduler_node = network.Register(&scheduler, net::HostProfile::Wire());
    client->SetScheduler(scheduler_node);
    return *client;
  }

  Testbed testbed{TestbedConfig{}};
  sim::Simulator& simulator;
  net::Network& network;
  MetricsHub& metrics;
  std::unique_ptr<Client> client;
  Probe scheduler;
  net::NodeId scheduler_node = net::kInvalidNode;
};

TEST_F(ClientTest, SubmitsJobAsOnePacketWhenItFits) {
  Client& c = MakeClient();
  c.SubmitJob(std::vector<TaskSpec>(5));
  simulator.RunUntil(FromMicros(50));
  ASSERT_EQ(scheduler.received.size(), 1u);
  EXPECT_EQ(scheduler.received[0].tasks.size(), 5u);
  EXPECT_EQ(c.outstanding(), 5u);
}

TEST_F(ClientTest, SplitsLargeJobsAtTheMtu) {
  Client& c = MakeClient();
  const size_t max = net::MaxTasksPerPacket();
  c.SubmitJob(std::vector<TaskSpec>(max + 3));
  simulator.RunUntil(FromMicros(40));  // before the no-reply timeouts fire
  ASSERT_EQ(scheduler.received.size(), 2u);
  EXPECT_EQ(scheduler.received[0].tasks.size(), max);
  EXPECT_EQ(scheduler.received[1].tasks.size(), 3u);
  for (const auto& pkt : scheduler.received) {
    EXPECT_LE(pkt.WireSize(), net::kMtuBytes);
  }
}

TEST_F(ClientTest, SingleTaskPacketModeSendsTrains) {
  ClientConfig config;
  config.max_tasks_per_packet = 1;
  Client& c = MakeClient(config);
  c.SubmitJob(std::vector<TaskSpec>(4));
  simulator.RunUntil(FromMicros(40));  // before the no-reply timeouts fire
  EXPECT_EQ(scheduler.received.size(), 4u);
}

TEST_F(ClientTest, TimeoutResubmitsWithBackoff) {
  ClientConfig config;
  config.timeout_multiplier = 2.0;
  Client& c = MakeClient(config);
  TaskSpec spec;
  spec.duration = FromMicros(100);
  c.SubmitJob({spec});  // the scheduler probe never answers

  simulator.RunUntil(FromMicros(250));  // past the 200 us timeout
  EXPECT_EQ(metrics.timeout_resubmissions(), 1u);
  EXPECT_EQ(scheduler.CountOf(net::OpCode::kJobSubmission), 2u);

  // Second timeout doubles: fires at ~200 + 400 us.
  simulator.RunUntil(FromMicros(500));
  EXPECT_EQ(metrics.timeout_resubmissions(), 1u);
  simulator.RunUntil(FromMicros(700));
  EXPECT_EQ(metrics.timeout_resubmissions(), 2u);
}

TEST_F(ClientTest, CompletionCancelsTimeoutAndIgnoresDuplicates) {
  Client& c = MakeClient();
  TaskSpec spec;
  spec.duration = FromMicros(100);
  c.SubmitJob({spec});
  simulator.RunUntil(FromMicros(20));
  ASSERT_EQ(scheduler.received.size(), 1u);
  net::TaskInfo task = scheduler.received[0].tasks[0];

  net::Packet notice;
  notice.op = net::OpCode::kCompletionNotice;
  notice.dst = c.node_id();
  notice.tasks = {task};
  network.Send(scheduler_node, notice);
  network.Send(scheduler_node, notice);  // duplicate
  simulator.RunUntil(FromSeconds(1));

  EXPECT_EQ(c.outstanding(), 0u);
  EXPECT_EQ(c.completions(), 1u);
  EXPECT_EQ(metrics.timeout_resubmissions(), 0u);
  EXPECT_EQ(metrics.e2e_delay().count(), 1u);
}

TEST_F(ClientTest, QueueFullErrorRetriesAfterWait) {
  Client& c = MakeClient();
  TaskSpec spec;
  spec.duration = FromMicros(100);
  c.SubmitJob({spec});
  simulator.RunUntil(FromMicros(20));
  net::TaskInfo task = scheduler.received[0].tasks[0];

  net::Packet error;
  error.op = net::OpCode::kErrorQueueFull;
  error.dst = c.node_id();
  error.tasks = {task};
  network.Send(scheduler_node, std::move(error));
  simulator.RunUntil(FromMicros(100));  // the 50 us wait is still running
  EXPECT_EQ(scheduler.CountOf(net::OpCode::kJobSubmission), 2u);
  EXPECT_EQ(metrics.queue_full_retries(), 1u);
}

TEST_F(ClientTest, FireAndForgetTracksNothing) {
  ClientConfig config;
  config.fire_and_forget = true;
  Client& c = MakeClient(config);
  c.SubmitJob(std::vector<TaskSpec>(8));
  simulator.RunUntil(FromSeconds(5));
  EXPECT_EQ(c.outstanding(), 0u);
  EXPECT_EQ(metrics.timeout_resubmissions(), 0u);
}

TEST_F(ClientTest, ServesParamFetches) {
  Client& c = MakeClient();
  TaskSpec spec;
  spec.duration = FromMicros(100);
  spec.oversized_param_bytes = 4096;
  c.SubmitJob({spec});
  simulator.RunUntil(FromMicros(20));
  net::TaskInfo task = scheduler.received[0].tasks[0];
  EXPECT_EQ(task.fn_id, net::kTransmissionFnId);
  EXPECT_EQ(task.fn_par, 4096u);

  net::Packet fetch;
  fetch.op = net::OpCode::kParamFetch;
  fetch.dst = c.node_id();
  fetch.tasks = {task};
  network.Send(scheduler_node, std::move(fetch));
  simulator.RunUntil(FromMicros(100));
  ASSERT_EQ(scheduler.CountOf(net::OpCode::kParamData), 1u);
  for (const auto& pkt : scheduler.received) {
    if (pkt.op == net::OpCode::kParamData) {
      EXPECT_EQ(pkt.payload_bytes, 4096u);
    }
  }
}

// ---------------------------------------------------------------------------
// Executor against a real switch
// ---------------------------------------------------------------------------

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : simulator(testbed.simulator()),
        network(testbed.network()),
        metrics(*testbed.metrics()),
        program(&policy, core::DraconisConfig{}),
        pipeline(testbed, &program, p4::PipelineConfig{}) {
    switch_node = pipeline.node_id();
    client = std::make_unique<Client>(&testbed, ClientConfig{});
    client->SetScheduler(switch_node);
  }

  Executor& MakeExecutor(ExecutorConfig config = {}) {
    executor = std::make_unique<Executor>(&testbed, config);
    executor->Start(switch_node, 1);
    return *executor;
  }

  Testbed testbed{TestbedConfig{}};
  sim::Simulator& simulator;
  net::Network& network;
  MetricsHub& metrics;
  core::FcfsPolicy policy;
  core::DraconisProgram program;
  p4::SwitchPipeline pipeline;
  std::unique_ptr<Client> client;
  std::unique_ptr<Executor> executor;
  net::NodeId switch_node = net::kInvalidNode;
};

TEST_F(ExecutorTest, PullLoopExecutesSubmittedTask) {
  Executor& ex = MakeExecutor();
  TaskSpec spec;
  spec.duration = FromMicros(100);
  simulator.ScheduleAt(FromMicros(30), [&] { client->SubmitJob({spec}); });
  simulator.RunUntil(FromMillis(1));
  EXPECT_EQ(ex.tasks_executed(), 1u);
  EXPECT_EQ(client->completions(), 1u);
  EXPECT_GE(ex.busy_time(), FromMicros(100));
}

TEST_F(ExecutorTest, BacksOffWhileIdle) {
  MakeExecutor();
  simulator.RunUntil(FromMillis(2));
  // With 2 us initial and 8 us cap (plus ~3.5 us RTT), an idle executor
  // polls a few hundred times in 2 ms — not thousands (no 2 us hammering),
  // not a handful.
  const uint64_t polls = program.counters().noops_sent;
  EXPECT_GT(polls, 100u);
  EXPECT_LT(polls, 1000u);
}

TEST_F(ExecutorTest, WatchdogRecoversFromLostReply) {
  ExecutorConfig config;
  config.request_timeout = FromMicros(200);
  Executor& ex = MakeExecutor(config);
  // Black-hole the switch->executor direction briefly: replies are lost.
  network.InjectDrop(switch_node, ex.node_id(), 1.0);
  simulator.RunUntil(FromMillis(1));
  network.ClearDropRules();
  TaskSpec spec;
  spec.duration = FromMicros(50);
  client->SubmitJob({spec});
  simulator.RunUntil(FromMillis(3));
  EXPECT_EQ(ex.tasks_executed(), 1u) << "watchdog failed to re-request";
}

TEST_F(ExecutorTest, FetchesOversizedParamsBeforeRunning) {
  Executor& ex = MakeExecutor();
  TaskSpec spec;
  spec.duration = FromMicros(100);
  spec.oversized_param_bytes = 32 * 1024;
  simulator.ScheduleAt(FromMicros(30), [&] { client->SubmitJob({spec}); });
  simulator.RunUntil(FromMillis(2));
  EXPECT_EQ(ex.tasks_executed(), 1u);
  EXPECT_EQ(client->completions(), 1u);
  // The execution start includes the client round trip for the parameters:
  // at least two extra one-way hops beyond the normal ~3-4 us pull path.
  EXPECT_GT(metrics.sched_delay().max(), FromMicros(7));
}

TEST_F(ExecutorTest, ParamFetchSurvivesLostData) {
  ExecutorConfig config;
  config.request_timeout = FromMicros(300);
  Executor& ex = MakeExecutor(config);
  TaskSpec spec;
  spec.duration = FromMicros(100);
  spec.oversized_param_bytes = 1024;
  simulator.ScheduleAt(FromMicros(30), [&] { client->SubmitJob({spec}); });
  // Lose the first fetch request(s).
  network.InjectDrop(ex.node_id(), client->node_id(), 1.0);
  simulator.ScheduleAt(FromMillis(1), [&] { network.ClearDropRules(); });
  simulator.RunUntil(FromMillis(5));
  // The client may have resubmitted (duplicates execute too), but it counts
  // exactly one completion and the fetch retry eventually succeeded.
  EXPECT_GE(ex.tasks_executed(), 1u);
  EXPECT_EQ(client->completions(), 1u);
}

// ---------------------------------------------------------------------------
// §3.3 switch failover
// ---------------------------------------------------------------------------

TEST(FailoverTest, ClusterSurvivesSwitchFailure) {
  Testbed testbed{TestbedConfig{}};
  sim::Simulator& simulator = testbed.simulator();
  net::Network& network = testbed.network();
  MetricsHub& metrics = *testbed.metrics();

  core::FcfsPolicy policy;
  core::DraconisConfig dc;
  core::DraconisProgram program_a(&policy, dc);
  core::DraconisProgram program_b(&policy, dc);
  p4::SwitchPipeline switch_a(testbed, &program_a, p4::PipelineConfig{});
  p4::SwitchPipeline switch_b(&simulator, &program_b, p4::PipelineConfig{});
  const net::NodeId node_a = switch_a.node_id();
  const net::NodeId node_b = switch_b.AttachNetwork(&network);
  // (The fabric treats the most recently attached pipeline as the ToR for
  // hop accounting; immaterial for this test.)

  std::vector<std::unique_ptr<Executor>> executors;
  for (int i = 0; i < 4; ++i) {
    ExecutorConfig config;
    config.request_timeout = FromMicros(500);
    executors.push_back(std::make_unique<Executor>(&testbed, config));
    executors.back()->Start(node_a, 1 + i * 100);
  }
  ClientConfig cc;
  cc.timeout_multiplier = 3.0;
  Client client(&testbed, cc);
  client.SetScheduler(node_a);

  // Submit 16-task bursts (4 executors -> each burst queues deep); the
  // primary switch dies mid-burst with tasks parked in its queue, and the
  // control plane re-points everyone at the standby.
  for (int burst = 0; burst < 10; ++burst) {
    simulator.ScheduleAt(1 + burst * FromMicros(500), [&] {
      client.SubmitJob(std::vector<TaskSpec>(16, TaskSpec{FromMicros(100), 0, 0, 0, 0}));
    });
  }
  simulator.ScheduleAt(FromMillis(2) + FromMicros(60), [&] {
    network.Disconnect(node_a);
    client.SetScheduler(node_b);
    for (auto& executor : executors) {
      executor->Rehome(node_b);
    }
  });

  simulator.RunUntil(FromSeconds(2));
  // Every task completes: tasks parked in the dead switch's queue are
  // resubmitted by client timeouts, and executor watchdogs re-pull.
  EXPECT_EQ(client.completions(), 160u);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_GT(metrics.timeout_resubmissions(), 0u);
  EXPECT_GT(program_b.counters().tasks_assigned, 0u);
}

// The same crash -> rehome -> recover arc, but driven by a fault::Injector
// plan instead of hand-scheduled callbacks, and with the client left to
// discover the failure through its own timeout streak (SetStandby). No task
// is lost and §8.3 duplicate suppression keeps the completion count exact.
TEST(FailoverTest, InjectorDrivenFailoverLosesNoTasks) {
  Testbed testbed{TestbedConfig{}};
  sim::Simulator& simulator = testbed.simulator();
  MetricsHub& metrics = *testbed.metrics();

  core::FcfsPolicy policy;
  core::DraconisConfig dc;
  core::DraconisProgram program_a(&policy, dc);
  core::DraconisProgram program_b(&policy, dc);
  p4::SwitchPipeline switch_a(testbed, &program_a, p4::PipelineConfig{});
  p4::SwitchPipeline switch_b(&simulator, &program_b, p4::PipelineConfig{});
  const net::NodeId node_a = switch_a.node_id();
  const net::NodeId node_b = switch_b.AttachNetwork(&testbed.network());

  std::vector<std::unique_ptr<Executor>> executors;
  for (int i = 0; i < 4; ++i) {
    ExecutorConfig config;
    config.request_timeout = FromMicros(500);
    executors.push_back(std::make_unique<Executor>(&testbed, config));
    executors.back()->Start(node_a, 1 + i * 100);
  }
  ClientConfig cc;
  // Generous timeouts (3 ms on the 100 us tasks): queueing on the live
  // standby never looks like a failure, so only the real crash triggers the
  // timeout streak and the client flips exactly once.
  cc.timeout_multiplier = 30.0;
  Client client(&testbed, cc);
  client.SetScheduler(node_a);
  client.SetStandby(node_b);

  fault::FaultPlan plan;
  plan.SchedulerFailover(FromMillis(2) + FromMicros(60));
  fault::InjectorHooks hooks;
  hooks.resolve = [&](const fault::NodeRef& ref) -> std::vector<net::NodeId> {
    if (ref.role == fault::NodeRef::Role::kScheduler) {
      return {node_a};
    }
    return {};
  };
  hooks.on_failover = [&] {
    for (auto& executor : executors) {
      executor->Rehome(node_b);
      metrics.RecordExecutorRehome();
    }
  };
  fault::Injector injector(&testbed, plan, std::move(hooks));
  injector.Arm();

  for (int burst = 0; burst < 10; ++burst) {
    simulator.ScheduleAt(1 + burst * FromMicros(500), [&] {
      client.SubmitJob(std::vector<TaskSpec>(16, TaskSpec{FromMicros(100), 0, 0, 0, 0}));
    });
  }
  simulator.RunUntil(FromSeconds(2));

  // Reconstruction by resubmission: every task completes exactly once.
  EXPECT_EQ(client.completions(), 160u);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(metrics.e2e_delay().count(), 160u) << "duplicates must be suppressed";
  EXPECT_GT(metrics.timeout_resubmissions(), 0u);
  EXPECT_GT(program_b.counters().tasks_assigned, 0u);
  EXPECT_TRUE(testbed.network().IsDisconnected(node_a));
  EXPECT_EQ(injector.events_started(), 1u);
  // The stale-timeout guard means the client flips exactly once — never back
  // to the dead switch — and the hub saw both rehome flavours.
  EXPECT_EQ(client.rehomes(), 1u);
  EXPECT_EQ(metrics.client_rehomes(), 1u);
  EXPECT_EQ(metrics.executor_rehomes(), 4u);
}

}  // namespace
}  // namespace draconis::cluster
